// End-to-end attack scenarios on a mid-size IXP: miniature versions of the
// paper's §2.4 (RTBH fails against a booter attack) and §5.3 (Stellar
// succeeds: shape to 200 Mbps, then drop to ~0) experiments, asserting the
// qualitative shapes the full benches regenerate.
#include <gtest/gtest.h>

#include "core/stellar.hpp"
#include "mitigation/rtbh.hpp"
#include "net/ports.hpp"
#include "traffic/collector.hpp"
#include "traffic/generators.hpp"

namespace stellar {
namespace {

net::Prefix4 P4(const char* text) { return net::Prefix4::Parse(text).value(); }
constexpr bgp::Asn kVictimAsn = 63'000;

struct Scenario {
  sim::EventQueue queue;
  std::unique_ptr<ixp::Ixp> ixp;
  ixp::MemberRouter* victim;
  std::unique_ptr<traffic::AmplificationAttackGenerator> attack;
  std::unique_ptr<traffic::WebTrafficGenerator> web;
  net::IPv4Address target{net::IPv4Address(100, 10, 10, 10)};

  explicit Scenario(double honor_fraction) {
    ixp::LargeIxpParams params;
    params.member_count = 60;
    params.rtbh_honor_fraction = honor_fraction;
    params.seed = 99;
    ixp = ixp::MakeLargeIxp(queue, params);
    ixp::MemberSpec v;
    v.asn = kVictimAsn;
    v.port_capacity_mbps = 10'000.0;  // Paper §2.4: 10 Gbps port, 1 Gbps attack.
    v.address_space = P4("100.10.10.0/24");
    victim = &ixp->add_member(v);
    ixp->settle(60.0);

    auto sources = ixp->source_members(kVictimAsn);
    auto attack_config = traffic::BooterNtpAttack(target, 1000.0, 100.0, 700.0);
    attack_config.source_members = 40;
    attack = std::make_unique<traffic::AmplificationAttackGenerator>(attack_config, sources,
                                                                     1234);
    traffic::WebTrafficGenerator::Config web_config;
    web_config.target = target;
    web_config.rate_mbps = 100.0;
    web = std::make_unique<traffic::WebTrafficGenerator>(web_config, sources, 4321);
  }

  /// Runs one bin and returns (delivered attack mbps, delivered benign mbps,
  /// attacking peers still getting through).
  struct BinOutcome {
    double attack_mbps = 0.0;
    double benign_mbps = 0.0;
    std::size_t peers = 0;
  };
  BinOutcome run_bin(double t, double bin_s = 10.0) {
    queue.run_until(sim::Seconds(t));
    std::vector<net::FlowSample> offered = web->bin(t, bin_s);
    for (auto& s : attack->bin(t, bin_s)) offered.push_back(s);
    const auto report = ixp->deliver_bin(offered, bin_s);
    BinOutcome out;
    std::set<net::MacAddress> peers;
    for (const auto& f : report.delivered) {
      if (f.key.proto == net::IpProto::kUdp && f.key.src_port == net::kPortNtp) {
        out.attack_mbps += f.mbps(bin_s);
        peers.insert(f.key.src_mac);
      } else {
        out.benign_mbps += f.mbps(bin_s);
      }
    }
    out.peers = peers.size();
    return out;
  }
};

TEST(EndToEndTest, RtbhLeavesMostAttackTraffic) {
  // §2.4: with ~70% of members not honoring, RTBH removes only a minority of
  // the attack — and kills ALL legitimate traffic from honoring peers.
  Scenario s(/*honor_fraction=*/0.30);

  const auto before = s.run_bin(300.0);
  EXPECT_NEAR(before.attack_mbps, 1000.0, 150.0);

  mitigation::TriggerRtbh(*s.victim, net::Prefix4::HostRoute(s.target));
  s.ixp->settle(20.0);
  const auto compliance =
      mitigation::MeasureCompliance(*s.ixp, net::Prefix4::HostRoute(s.target), kVictimAsn);
  EXPECT_NEAR(compliance.honored_fraction(), 0.30, 0.15);

  const auto after = s.run_bin(400.0);
  // The paper observes 600-800 Mbps surviving a ~1 Gbps attack.
  EXPECT_GT(after.attack_mbps, 500.0);
  EXPECT_LT(after.attack_mbps, 900.0);
  // Peers drop by roughly the honoring share (paper: −25%).
  EXPECT_LT(after.peers, before.peers);
  EXPECT_GT(after.peers, before.peers / 2);
}

TEST(EndToEndTest, RtbhWithFullComplianceKillsEverything) {
  // Even with 100% compliance RTBH has total collateral damage: benign
  // traffic to the prefix dies with the attack.
  Scenario s(/*honor_fraction=*/1.0);
  mitigation::TriggerRtbh(*s.victim, net::Prefix4::HostRoute(s.target));
  s.ixp->settle(20.0);
  const auto after = s.run_bin(400.0);
  EXPECT_NEAR(after.attack_mbps, 0.0, 1.0);
  EXPECT_NEAR(after.benign_mbps, 0.0, 1.0);  // The collateral damage.
}

TEST(EndToEndTest, StellarShapesThenDrops) {
  // §5.3 / Fig. 10c: shape UDP/123 to 200 Mbps at t=300, drop at t=500.
  Scenario s(/*honor_fraction=*/0.30);
  core::StellarSystem stellar(*s.ixp);
  s.ixp->settle(10.0);

  const auto before = s.run_bin(290.0);
  EXPECT_NEAR(before.attack_mbps, 1000.0, 150.0);
  const std::size_t peers_before = before.peers;

  // Phase 1: shaping for telemetry.
  core::Signal shape;
  shape.rules.push_back({core::RuleKind::kUdpSrcPort, net::kPortNtp});
  shape.shape_rate_mbps = 200.0;
  core::SignalAdvancedBlackholing(*s.victim, s.ixp->route_server(),
                                  net::Prefix4::HostRoute(s.target), shape);
  s.ixp->settle(20.0);
  const auto shaped = s.run_bin(400.0);
  EXPECT_NEAR(shaped.attack_mbps, 200.0, 20.0);
  // Paper: "the number of peers remains constant" while shaping.
  EXPECT_NEAR(static_cast<double>(shaped.peers), static_cast<double>(peers_before),
              static_cast<double>(peers_before) * 0.3);
  // Benign traffic is untouched.
  EXPECT_NEAR(shaped.benign_mbps, 100.0, 30.0);

  // Phase 2: drop.
  core::Signal drop;
  drop.rules.push_back({core::RuleKind::kUdpSrcPort, net::kPortNtp});
  core::SignalAdvancedBlackholing(*s.victim, s.ixp->route_server(),
                                  net::Prefix4::HostRoute(s.target), drop);
  s.ixp->settle(20.0);
  const auto dropped = s.run_bin(600.0);
  EXPECT_NEAR(dropped.attack_mbps, 0.0, 1.0);
  EXPECT_EQ(dropped.peers, 0u);
  EXPECT_NEAR(dropped.benign_mbps, 100.0, 30.0);

  // Telemetry shows the attack is still ongoing (matched bytes grow).
  const auto telemetry = stellar.telemetry(kVictimAsn);
  ASSERT_FALSE(telemetry.empty());
  EXPECT_GT(telemetry[0].counters.matched_bytes, 0u);
}

TEST(EndToEndTest, StellarBeatsRtbhOnSameScenario) {
  Scenario rtbh_run(/*honor_fraction=*/0.30);
  mitigation::TriggerRtbh(*rtbh_run.victim, net::Prefix4::HostRoute(rtbh_run.target));
  rtbh_run.ixp->settle(20.0);
  const auto rtbh_outcome = rtbh_run.run_bin(400.0);

  Scenario stellar_run(/*honor_fraction=*/0.30);
  core::StellarSystem stellar(*stellar_run.ixp);
  stellar_run.ixp->settle(10.0);
  core::Signal drop;
  drop.rules.push_back({core::RuleKind::kUdpSrcPort, net::kPortNtp});
  core::SignalAdvancedBlackholing(*stellar_run.victim, stellar_run.ixp->route_server(),
                                  net::Prefix4::HostRoute(stellar_run.target), drop);
  stellar_run.ixp->settle(20.0);
  const auto stellar_outcome = stellar_run.run_bin(400.0);

  // Stellar removes the attack completely; RTBH leaves the majority.
  EXPECT_LT(stellar_outcome.attack_mbps, 0.05 * rtbh_outcome.attack_mbps);
  // Stellar preserves benign traffic; RTBH partially destroys it.
  EXPECT_GT(stellar_outcome.benign_mbps, rtbh_outcome.benign_mbps);
}

}  // namespace
}  // namespace stellar
