// Closed-loop automated mitigation on a mid-size IXP: the detect/ engine
// watches the victim's delivered traffic, and the test asserts the full
// detect -> synthesize -> signal -> install -> withdraw cycle without any
// manual signal injection (miniature of bench/fig10c_auto_detect).
#include <gtest/gtest.h>

#include <algorithm>

#include "core/stellar.hpp"
#include "detect/engine.hpp"
#include "net/ports.hpp"
#include "traffic/generators.hpp"

namespace stellar {
namespace {

net::Prefix4 P4(const char* text) { return net::Prefix4::Parse(text).value(); }
constexpr bgp::Asn kVictimAsn = 63'000;

struct Scenario {
  sim::EventQueue queue;
  std::unique_ptr<ixp::Ixp> ixp;
  ixp::MemberRouter* victim;
  std::unique_ptr<traffic::AmplificationAttackGenerator> attack;
  std::unique_ptr<traffic::WebTrafficGenerator> web;
  net::IPv4Address target{net::IPv4Address(100, 10, 10, 10)};
  double epoch_s = -1.0;  ///< Sim-clock time of experiment t=0 (see run_bin).

  Scenario(double attack_mbps, double attack_start_s, double attack_end_s) {
    ixp::LargeIxpParams params;
    params.member_count = 60;
    params.seed = 99;
    ixp = ixp::MakeLargeIxp(queue, params);
    ixp::MemberSpec v;
    v.asn = kVictimAsn;
    v.port_capacity_mbps = 10'000.0;
    v.address_space = P4("100.10.10.0/24");
    victim = &ixp->add_member(v);
    ixp->settle(60.0);

    auto sources = ixp->source_members(kVictimAsn);
    auto attack_config =
        traffic::BooterNtpAttack(target, attack_mbps, attack_start_s, attack_end_s);
    attack_config.source_members = 40;
    attack = std::make_unique<traffic::AmplificationAttackGenerator>(attack_config,
                                                                     sources, 1234);
    traffic::WebTrafficGenerator::Config web_config;
    web_config.target = target;
    web_config.rate_mbps = 60.0;
    std::vector<traffic::SourceMember> web_sources(
        sources.begin(), sources.begin() + std::min<std::size_t>(10, sources.size()));
    web = std::make_unique<traffic::WebTrafficGenerator>(web_config, web_sources, 4321);
  }

  struct BinOutcome {
    double attack_mbps = 0.0;
    double benign_mbps = 0.0;
    std::vector<net::FlowSample> delivered;
  };

  /// Runs one bin through the fabric and feeds the delivered stream to the
  /// system's observers. Bin time t is anchored to the sim clock at the first
  /// call (construction already consumed sim time settling sessions).
  BinOutcome run_bin(core::StellarSystem& system, double t, double bin_s = 20.0) {
    if (epoch_s < 0.0) epoch_s = queue.now().count();
    queue.run_until(sim::Seconds(epoch_s + t));
    std::vector<net::FlowSample> offered = web->bin(t, bin_s);
    for (auto& s : attack->bin(t, bin_s)) offered.push_back(s);
    auto report = ixp->deliver_bin(offered, bin_s);
    BinOutcome out;
    for (const auto& f : report.delivered) {
      if (f.key.proto == net::IpProto::kUdp && f.key.src_port == net::kPortNtp) {
        out.attack_mbps += f.mbps(bin_s);
      } else {
        out.benign_mbps += f.mbps(bin_s);
      }
    }
    out.delivered = std::move(report.delivered);
    system.observe_bin(out.delivered, t, bin_s);
    return out;
  }
};

TEST(AutoDetectTest, ClosedLoopDetectsMitigatesAndWithdraws) {
  Scenario scenario(1'000.0, 100.0, 400.0);
  core::StellarSystem system(*scenario.ixp);
  detect::AutoMitigator::Config cfg;
  cfg.shape_rate_mbps = 200.0;
  cfg.escalate_after_s = 40.0;
  cfg.withdraw_quiet_s = 40.0;
  auto& mitigator = detect::EnableAutoMitigation(system, kVictimAsn, cfg);
  EXPECT_EQ(system.observer_count(), 1u);

  double peak = 0.0;
  double min_during_attack = 1e9;
  double benign_during_mitigation = 0.0;
  int mitigated_bins = 0;
  for (double t = 0.0; t <= 600.0; t += 20.0) {
    const auto bin = scenario.run_bin(system, t);
    if (t < 100.0) {
      EXPECT_EQ(mitigator.stats().signals_sent, 0u)
          << "no signal before the attack, t=" << t;
    }
    if (t >= 100.0 && t < 400.0) {
      peak = std::max(peak, bin.attack_mbps);
      min_during_attack = std::min(min_during_attack, bin.attack_mbps);
      if (mitigator.mitigation(scenario.target)) {
        benign_during_mitigation += bin.benign_mbps;
        ++mitigated_bins;
      }
    }
  }

  const auto& stats = mitigator.stats();
  EXPECT_EQ(stats.detections, 1u);
  EXPECT_GE(stats.last_detection_s, 100.0);
  EXPECT_LE(stats.last_detection_s, 200.0) << "detection should take a few bins";
  EXPECT_GE(stats.rules_emitted, 1u);
  EXPECT_GE(stats.escalations, 1u) << "persistent attack escalates shape -> drop";
  EXPECT_GT(peak, 500.0);
  EXPECT_LT(min_during_attack, 0.05 * peak) << "drop phase zeroes the attack";
  ASSERT_GT(mitigated_bins, 0);
  EXPECT_GT(benign_during_mitigation / mitigated_bins, 30.0)
      << "benign traffic must keep flowing under mitigation";
  EXPECT_EQ(stats.withdrawals, 1u) << "rules come out once the attack ends";
  EXPECT_FALSE(mitigator.mitigation(scenario.target).has_value());
  // Anti-flap invariant: one shape signal + one escalation, nothing more.
  EXPECT_LE(stats.signals_sent, 2 * stats.detections + stats.escalations);
}

TEST(AutoDetectTest, BenignTrafficNeverSignals) {
  // Two hours of benign-only bins: zero signals, zero rules (the
  // false-positive budget of the detection loop is exactly zero here).
  Scenario scenario(0.0, 1e9, 2e9);
  core::StellarSystem system(*scenario.ixp);
  auto& mitigator = detect::EnableAutoMitigation(system, kVictimAsn, {});
  for (double t = 0.0; t <= 7'200.0; t += 20.0) {
    scenario.run_bin(system, t);
  }
  EXPECT_EQ(mitigator.stats().signals_sent, 0u);
  EXPECT_EQ(mitigator.stats().detections, 0u);
  EXPECT_TRUE(system.controller().desired().empty());
}

TEST(AutoDetectTest, UnknownMemberAsnThrows) {
  Scenario scenario(0.0, 1e9, 2e9);
  core::StellarSystem system(*scenario.ixp);
  EXPECT_THROW(detect::EnableAutoMitigation(system, 64'999, {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace stellar
