// Reproduces the paper's §5.2 functionality lab validation: a hardware
// traffic generator pushes NTP, DNS and benign flows at 10 Gbps towards IPs
// behind a 1 Gbps member port. Expectations from the paper:
//   - flows redirected to a dropping queue are not forwarded,
//   - flows redirected to a shaping queue share the shaping queue's rate,
//   - forwarded flows share the forwarding queue's rate limit,
//   - with NTP/DNS dropped or shaped, benign traffic passes untouched,
//     per targeted IP address.
#include <gtest/gtest.h>

#include "core/stellar.hpp"
#include "net/ports.hpp"

namespace stellar {
namespace {

net::Prefix4 P4(const char* text) { return net::Prefix4::Parse(text).value(); }

struct LabFixture {
  sim::EventQueue queue;
  std::unique_ptr<ixp::Ixp> ixp;
  std::unique_ptr<core::StellarSystem> stellar;
  ixp::MemberRouter* member;   ///< The monitored member: 1 Gbps port.
  ixp::MemberRouter* source;   ///< Stand-in for the traffic generator.

  LabFixture() {
    ixp = std::make_unique<ixp::Ixp>(queue);
    ixp::MemberSpec m;
    m.asn = 65001;
    m.port_capacity_mbps = 1000.0;  // Paper: member port 1 Gbps.
    m.address_space = P4("100.10.10.0/24");
    member = &ixp->add_member(m);
    ixp::MemberSpec s;
    s.asn = 65002;
    s.port_capacity_mbps = 100'000.0;
    s.address_space = P4("60.0.0.0/20");
    source = &ixp->add_member(s);
    stellar = std::make_unique<core::StellarSystem>(*ixp);
    ixp->settle(30.0);
  }

  net::FlowSample Flow(net::IPv4Address dst, net::IpProto proto, std::uint16_t src_port,
                       double mbps) const {
    net::FlowSample f;
    f.key.src_mac = source->info().mac;
    f.key.src_ip = net::IPv4Address(60, 0, 0, 1);
    f.key.dst_ip = dst;
    f.key.proto = proto;
    f.key.src_port = src_port;
    f.key.dst_port = proto == net::IpProto::kTcp ? 443 : 5555;
    f.bytes = static_cast<std::uint64_t>(mbps * 1e6 / 8.0);
    return f;
  }

  /// The 10 Gbps generator mix towards two IPs in the member's prefix.
  std::vector<net::FlowSample> GeneratorMix() const {
    const net::IPv4Address ip_a(100, 10, 10, 10);
    const net::IPv4Address ip_b(100, 10, 10, 20);
    return {
        Flow(ip_a, net::IpProto::kUdp, net::kPortNtp, 4000.0),
        Flow(ip_a, net::IpProto::kTcp, 50'000, 300.0),
        Flow(ip_b, net::IpProto::kUdp, net::kPortDns, 5000.0),
        Flow(ip_b, net::IpProto::kTcp, 50'001, 400.0),
    };
  }

  void settle() { ixp->settle(10.0); }
};

TEST(FunctionalityLabTest, CongestionWithoutMitigation) {
  LabFixture lab;
  const auto report = lab.ixp->deliver_bin(lab.GeneratorMix(), 1.0);
  // 9.7 Gbps into a 1 Gbps port: immediately congested, benign traffic
  // crushed proportionally.
  EXPECT_NEAR(report.delivered_mbps, 1000.0, 5.0);
  EXPECT_GT(report.congestion_dropped_mbps, 8000.0);
  double benign = 0.0;
  for (const auto& f : report.delivered) {
    if (f.key.proto == net::IpProto::kTcp) benign += f.mbps(1.0);
  }
  EXPECT_LT(benign, 100.0);  // Far below the offered 700 Mbps.
}

TEST(FunctionalityLabTest, DroppingQueueForwardsNothing) {
  LabFixture lab;
  core::Signal drop_ntp;
  drop_ntp.rules.push_back({core::RuleKind::kUdpSrcPort, net::kPortNtp});
  core::SignalAdvancedBlackholing(*lab.member, lab.ixp->route_server(),
                                  P4("100.10.10.10/32"), drop_ntp);
  core::Signal drop_dns;
  drop_dns.rules.push_back({core::RuleKind::kUdpSrcPort, net::kPortDns});
  core::SignalAdvancedBlackholing(*lab.member, lab.ixp->route_server(),
                                  P4("100.10.10.20/32"), drop_dns);
  lab.settle();

  const auto report = lab.ixp->deliver_bin(lab.GeneratorMix(), 1.0);
  EXPECT_NEAR(report.rule_dropped_mbps, 9000.0, 50.0);
  // All benign flows pass untouched for each targeted IP.
  double benign = 0.0;
  for (const auto& f : report.delivered) {
    EXPECT_EQ(f.key.proto, net::IpProto::kTcp);
    benign += f.mbps(1.0);
  }
  EXPECT_NEAR(benign, 700.0, 10.0);
  EXPECT_NEAR(report.congestion_dropped_mbps, 0.0, 1.0);
}

TEST(FunctionalityLabTest, ShapingQueueSharesItsRateLimit) {
  LabFixture lab;
  core::Signal shape_ntp;
  shape_ntp.rules.push_back({core::RuleKind::kUdpSrcPort, net::kPortNtp});
  shape_ntp.shape_rate_mbps = 100.0;
  core::SignalAdvancedBlackholing(*lab.member, lab.ixp->route_server(),
                                  P4("100.10.10.10/32"), shape_ntp);
  core::Signal drop_dns;
  drop_dns.rules.push_back({core::RuleKind::kUdpSrcPort, net::kPortDns});
  core::SignalAdvancedBlackholing(*lab.member, lab.ixp->route_server(),
                                  P4("100.10.10.20/32"), drop_dns);
  lab.settle();

  const auto report = lab.ixp->deliver_bin(lab.GeneratorMix(), 1.0);
  double ntp = 0.0;
  double benign = 0.0;
  for (const auto& f : report.delivered) {
    if (f.key.proto == net::IpProto::kUdp && f.key.src_port == net::kPortNtp) {
      ntp += f.mbps(1.0);
    }
    if (f.key.proto == net::IpProto::kTcp) benign += f.mbps(1.0);
  }
  EXPECT_NEAR(ntp, 100.0, 2.0);      // Shaping queue rate shared by NTP flows.
  EXPECT_NEAR(benign, 700.0, 10.0);  // Benign untouched.
}

TEST(FunctionalityLabTest, PerIpIsolation) {
  // Only the rule's target IP is affected; the other IP's flows are not.
  LabFixture lab;
  core::Signal drop_ntp;
  drop_ntp.rules.push_back({core::RuleKind::kUdpSrcPort, net::kPortNtp});
  core::SignalAdvancedBlackholing(*lab.member, lab.ixp->route_server(),
                                  P4("100.10.10.10/32"), drop_ntp);
  lab.settle();

  // Send NTP towards both IPs; only ip_a's is dropped by the rule.
  const std::vector<net::FlowSample> mix{
      lab.Flow(net::IPv4Address(100, 10, 10, 10), net::IpProto::kUdp, net::kPortNtp, 300.0),
      lab.Flow(net::IPv4Address(100, 10, 10, 20), net::IpProto::kUdp, net::kPortNtp, 300.0),
  };
  const auto report = lab.ixp->deliver_bin(mix, 1.0);
  EXPECT_NEAR(report.rule_dropped_mbps, 300.0, 2.0);
  ASSERT_EQ(report.delivered.size(), 1u);
  EXPECT_EQ(report.delivered[0].key.dst_ip, net::IPv4Address(100, 10, 10, 20));
}

TEST(FunctionalityLabTest, TelemetryMatchesDataPlane) {
  LabFixture lab;
  core::Signal shape_ntp;
  shape_ntp.rules.push_back({core::RuleKind::kUdpSrcPort, net::kPortNtp});
  shape_ntp.shape_rate_mbps = 100.0;
  core::SignalAdvancedBlackholing(*lab.member, lab.ixp->route_server(),
                                  P4("100.10.10.10/32"), shape_ntp);
  // Also drop the DNS flood so the forwarding queue is uncongested and the
  // shaper's 100 Mbps actually leaves the port.
  core::Signal drop_dns;
  drop_dns.rules.push_back({core::RuleKind::kUdpSrcPort, net::kPortDns});
  core::SignalAdvancedBlackholing(*lab.member, lab.ixp->route_server(),
                                  P4("100.10.10.20/32"), drop_dns);
  lab.settle();
  lab.ixp->deliver_bin(lab.GeneratorMix(), 1.0);

  auto records = lab.stellar->telemetry(65001);
  // Keep only the shaping rule's record.
  std::erase_if(records, [](const auto& r) {
    return r.rule.action != filter::FilterAction::kShape;
  });
  ASSERT_EQ(records.size(), 1u);
  // 4000 Mbps matched; 100 Mbps delivered; rest shaped away.
  EXPECT_NEAR(static_cast<double>(records[0].counters.matched_bytes) * 8.0 / 1e6, 4000.0, 50.0);
  EXPECT_NEAR(static_cast<double>(records[0].counters.delivered_bytes) * 8.0 / 1e6, 100.0, 5.0);
  EXPECT_NEAR(static_cast<double>(records[0].counters.dropped_bytes) * 8.0 / 1e6, 3900.0, 50.0);
}

}  // namespace
}  // namespace stellar
