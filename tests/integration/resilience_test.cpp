// Failure-injection tests for the signaling layer's resilience requirements
// (paper §4.1.2 / §4.2.1): filters must be implicitly withdrawn when the
// signaling path fails, and the platform must fall back to simple forwarding
// rather than strand members behind stale filters.
#include <gtest/gtest.h>

#include "core/stellar.hpp"
#include "mitigation/rtbh.hpp"
#include "net/ports.hpp"

namespace stellar {
namespace {

net::Prefix4 P4(const char* text) { return net::Prefix4::Parse(text).value(); }

struct ResilienceFixture {
  sim::EventQueue queue;
  std::unique_ptr<ixp::Ixp> ixp;
  std::unique_ptr<core::StellarSystem> stellar;
  ixp::MemberRouter* victim;
  ixp::MemberRouter* honoring;

  ResilienceFixture() {
    ixp = std::make_unique<ixp::Ixp>(queue);
    ixp::MemberSpec v;
    v.asn = 65001;
    v.port_capacity_mbps = 1000.0;
    v.address_space = P4("100.10.10.0/24");
    victim = &ixp->add_member(v);
    ixp::MemberSpec h;
    h.asn = 65002;
    h.address_space = P4("60.2.0.0/20");
    h.policy.accepts_more_specifics = true;
    honoring = &ixp->add_member(h);
    stellar = std::make_unique<core::StellarSystem>(*ixp);
    ixp->settle(30.0);
  }

  void settle(double s = 10.0) { ixp->settle(s); }

  void signal_ntp_drop() {
    core::Signal s;
    s.rules.push_back({core::RuleKind::kUdpSrcPort, net::kPortNtp});
    core::SignalAdvancedBlackholing(*victim, ixp->route_server(), P4("100.10.10.10/32"), s);
    settle();
  }
};

TEST(ResilienceTest, MemberSessionFailureImplicitlyWithdrawsStellarRules) {
  ResilienceFixture f;
  f.signal_ntp_drop();
  ASSERT_EQ(f.ixp->edge_router().policy(f.victim->info().port).rule_count(), 1u);

  // The victim's router dies (no graceful withdraw): hold timer expires.
  f.victim->session()->stop();
  f.settle(30.0);
  EXPECT_EQ(f.ixp->edge_router().policy(f.victim->info().port).rule_count(), 0u);
  EXPECT_TRUE(
      f.ixp->route_server().adj_rib_in().routes_for(P4("100.10.10.10/32")).empty());
}

TEST(ResilienceTest, MemberSessionFailureWithdrawsRtbhAtOtherMembers) {
  ResilienceFixture f;
  mitigation::TriggerRtbh(*f.victim, P4("100.10.10.10/32"));
  f.settle();
  ASSERT_TRUE(f.honoring->blackholes(net::IPv4Address(100, 10, 10, 10)));

  f.victim->session()->stop();
  f.settle(30.0);
  EXPECT_FALSE(f.honoring->blackholes(net::IPv4Address(100, 10, 10, 10)));
}

TEST(ResilienceTest, MemberSessionFailureAlsoWithdrawsRegularRoutes) {
  ResilienceFixture f;
  ASSERT_FALSE(f.honoring->rib().routes_for(P4("100.10.10.0/24")).empty());
  f.victim->session()->stop();
  f.settle(30.0);
  EXPECT_TRUE(f.honoring->rib().routes_for(P4("100.10.10.0/24")).empty());
}

TEST(ResilienceTest, ControllerSessionFailureFlushesAllRulesFailSafe) {
  ResilienceFixture f;
  f.signal_ntp_drop();
  ASSERT_EQ(f.ixp->edge_router().policy(f.victim->info().port).rule_count(), 1u);

  // The route server side of the controller session dies.
  f.stellar->controller().session().stop();
  f.settle(30.0);
  EXPECT_EQ(f.stellar->controller().stats().failsafe_flushes, 1u);
  EXPECT_EQ(f.ixp->edge_router().policy(f.victim->info().port).rule_count(), 0u);
  EXPECT_TRUE(f.stellar->controller().desired().empty());
  // TCAM resources are back.
  EXPECT_EQ(f.ixp->edge_router().tcam().l3l4_in_use(), 0);
}

TEST(ResilienceTest, FailSafeRestoresForwarding) {
  ResilienceFixture f;
  f.signal_ntp_drop();

  net::FlowSample ntp;
  ntp.key.src_mac = f.honoring->info().mac;
  ntp.key.src_ip = net::IPv4Address(60, 2, 0, 5);
  ntp.key.dst_ip = net::IPv4Address(100, 10, 10, 10);
  ntp.key.proto = net::IpProto::kUdp;
  ntp.key.src_port = net::kPortNtp;
  ntp.key.dst_port = 5555;
  ntp.bytes = static_cast<std::uint64_t>(100e6 / 8.0);

  const auto filtered = f.ixp->deliver_bin({&ntp, 1}, 1.0);
  EXPECT_NEAR(filtered.rule_dropped_mbps, 100.0, 1.0);

  f.stellar->controller().session().stop();
  f.settle(30.0);
  const auto restored = f.ixp->deliver_bin({&ntp, 1}, 1.0);
  EXPECT_NEAR(restored.delivered_mbps, 100.0, 1.0);  // Simple forwarding again.
}

TEST(ResilienceTest, MemberReconnectsAndProtectionResumes) {
  // Full lifecycle: session dies (rules implicitly withdrawn), the member
  // router reconnects on a fresh session, re-announces, and re-signals —
  // the platform must converge back to the protected state.
  ResilienceFixture f;
  f.signal_ntp_drop();
  ASSERT_EQ(f.ixp->edge_router().policy(f.victim->info().port).rule_count(), 1u);

  f.victim->session()->stop();
  f.settle(30.0);
  ASSERT_EQ(f.ixp->edge_router().policy(f.victim->info().port).rule_count(), 0u);

  // Reconnect: new transport from the route server, new session, resync.
  f.victim->connect(f.ixp->route_server().accept_member(65001));
  f.settle(10.0);
  ASSERT_TRUE(f.victim->session()->established());
  f.victim->announce(f.victim->info().address_space);
  f.signal_ntp_drop();
  EXPECT_EQ(f.ixp->edge_router().policy(f.victim->info().port).rule_count(), 1u);
  EXPECT_FALSE(
      f.ixp->route_server().adj_rib_in().routes_for(P4("100.10.10.0/24")).empty());
  // The honoring member sees the member's prefix again.
  EXPECT_FALSE(f.honoring->rib().routes_for(P4("100.10.10.0/24")).empty());
}

TEST(ResilienceTest, MalformedPeerIsIsolatedFromThePlatform) {
  // A compromised/buggy member router sends garbage on its BGP session: the
  // route server must tear down THAT session (and implicitly withdraw its
  // routes) while every other member and Stellar keep working.
  ResilienceFixture f;
  f.signal_ntp_drop();

  // Raw endpoint posing as a new member whose announcements turn to garbage.
  auto endpoint = f.ixp->route_server().accept_member(65099);
  f.settle(5.0);
  endpoint->send(std::vector<std::uint8_t>(64, 0xAB));
  f.settle(5.0);

  // The honoring member and the installed Stellar rule are unaffected.
  EXPECT_TRUE(f.honoring->session()->established());
  EXPECT_TRUE(f.victim->session()->established());
  EXPECT_EQ(f.ixp->edge_router().policy(f.victim->info().port).rule_count(), 1u);
  // The garbage peer's session is gone.
  EXPECT_EQ(f.ixp->route_server().established_member_sessions(), 2u);
}

TEST(ResilienceTest, WithdrawBeforeFailureIsNotDoubleRemoved) {
  ResilienceFixture f;
  f.signal_ntp_drop();
  core::WithdrawAdvancedBlackholing(*f.victim, P4("100.10.10.10/32"));
  f.settle();
  const auto removals = f.stellar->controller().stats().removals_emitted;
  f.victim->session()->stop();
  f.settle(30.0);
  // Nothing further to remove: the rule was already gone.
  EXPECT_EQ(f.stellar->controller().stats().removals_emitted, removals);
  EXPECT_EQ(f.stellar->manager().stats().failed, 0u);
}

}  // namespace
}  // namespace stellar
