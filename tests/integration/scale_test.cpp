// Full L-IXP-scale smoke test: the paper's deployment target is >800 members
// at >6 Tbps. Builds the complete platform at that size — 800 real BGP
// sessions through the route server — and checks the control plane converges
// and a Stellar signal lands while every session stays up.
#include <gtest/gtest.h>

#include "core/stellar.hpp"
#include "net/ports.hpp"

namespace stellar {
namespace {

TEST(ScaleTest, EightHundredMemberPlatformConverges) {
  sim::EventQueue queue;
  ixp::LargeIxpParams params;
  params.member_count = 800;  // Paper: "interconnects more than 800 networks".
  params.seed = 800;
  auto ixp = ixp::MakeLargeIxp(queue, params);

  EXPECT_EQ(ixp->members().size(), 800u);
  EXPECT_EQ(ixp->route_server().established_member_sessions(), 800u);
  EXPECT_EQ(ixp->route_server().adj_rib_in().size(), 800u);
  EXPECT_EQ(ixp->route_server().rejects().total(), 0u);

  // Every member holds everyone else's prefix (799 routes).
  for (const auto& member : {ixp->members().front().get(), ixp->members().back().get()}) {
    EXPECT_EQ(member->rib().size(), 799u);
  }

  // Aggregate connected capacity is Tbps-scale, as at DE-CIX/AMS-IX.
  double connected_mbps = 0.0;
  for (const auto& member : ixp->members()) {
    connected_mbps += member->info().port_capacity_mbps;
  }
  EXPECT_GT(connected_mbps, 5e6);  // > 5 Tbps.

  // Deploy Stellar and signal from one member: the controller must digest
  // the 800-route initial sync plus the signal.
  core::StellarSystem stellar(*ixp);
  ixp->settle(30.0);
  EXPECT_EQ(stellar.controller().rib().size(), 800u);

  auto& victim = *ixp->members().front();
  core::Signal signal;
  signal.rules.push_back({core::RuleKind::kUdpSrcPort, net::kPortNtp});
  const net::Prefix4 target =
      net::Prefix4::HostRoute(net::IPv4Address(victim.info().address_space.address().value() | 7));
  core::SignalAdvancedBlackholing(victim, ixp->route_server(), target, signal);
  ixp->settle(10.0);
  EXPECT_EQ(ixp->edge_router().policy(victim.info().port).rule_count(), 1u);
  EXPECT_EQ(ixp->route_server().established_member_sessions(), 800u);
}

}  // namespace
}  // namespace stellar
