// Chaos harness: the Fig 10c attack scenario run under randomized (but
// seeded) fault plans — message drops/corruption/jitter storms, scheduled
// session kills, total partitions, and transient compiler failures — with the
// self-healing signaling plane enabled. The platform must converge back to
// the protected state with zero residual attack traffic, benign traffic
// intact, and a data plane byte-identical to the controller's desired state.
//
// Custom main: `--seed=N` restricts the multi-seed tests to one seed so CI
// can sweep seeds as separate jobs.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/stellar.hpp"
#include "net/ports.hpp"
#include "obs/journal.hpp"
#include "sim/fault.hpp"

namespace stellar {
namespace {

std::vector<std::uint64_t> g_seeds = {1, 2, 3};

net::Prefix4 P4(const char* text) { return net::Prefix4::Parse(text).value(); }

constexpr bgp::Asn kVictimAsn = 65001;
constexpr bgp::Asn kHonoringAsn = 65002;
constexpr bgp::Asn kSecondVictimAsn = 65003;

bgp::ReconnectPolicy ChaosReconnectPolicy(std::uint64_t seed) {
  bgp::ReconnectPolicy p;
  p.initial_backoff_s = 1.0;
  p.max_backoff_s = 8.0;
  p.jitter_frac = 0.2;
  p.dial_timeout_s = 10.0;
  // Damping headroom: the storm itself causes a handful of flaps; suppression
  // behaviour is exercised by its own starvation test below.
  p.suppress_threshold = 10'000.0;
  p.seed = seed;
  return p;
}

struct ChaosFixture {
  sim::EventQueue queue;
  std::unique_ptr<sim::FaultInjector> injector;
  std::unique_ptr<ixp::Ixp> ixp;
  std::unique_ptr<core::StellarSystem> stellar;
  ixp::MemberRouter* victim = nullptr;
  ixp::MemberRouter* honoring = nullptr;
  ixp::MemberRouter* second_victim = nullptr;
  sim::FlakyCompiler* flaky = nullptr;  // Set when flaky_probability > 0.

  ChaosFixture(const sim::FaultPlan& plan, double flaky_probability,
               bool self_healing = true) {
    injector = std::make_unique<sim::FaultInjector>(queue, plan);
    injector->arm();  // Every BGP link created from here on is wrapped.

    ixp = std::make_unique<ixp::Ixp>(queue);
    ixp::MemberSpec v;
    v.asn = kVictimAsn;
    v.port_capacity_mbps = 1000.0;
    v.address_space = P4("100.10.10.0/24");
    victim = &ixp->add_member(v);
    ixp::MemberSpec h;
    h.asn = kHonoringAsn;
    h.address_space = P4("60.2.0.0/20");
    h.policy.accepts_more_specifics = true;
    honoring = &ixp->add_member(h);
    ixp::MemberSpec s;
    s.asn = kSecondVictimAsn;
    s.port_capacity_mbps = 1000.0;
    s.address_space = P4("100.30.30.0/24");
    second_victim = &ixp->add_member(s);

    core::StellarSystem::Config config;
    if (self_healing) {
      config.controller_reconnect = ChaosReconnectPolicy(plan.seed);
    }
    if (flaky_probability > 0.0) {
      const std::uint64_t seed = plan.seed;
      config.compiler_decorator = [this, flaky_probability,
                                   seed](core::ConfigCompiler& inner)
          -> std::unique_ptr<core::ConfigCompiler> {
        auto c = std::make_unique<sim::FlakyCompiler>(inner, flaky_probability, seed);
        flaky = c.get();
        return c;
      };
    }
    stellar = std::make_unique<core::StellarSystem>(*ixp, config);
    if (self_healing) {
      victim->connect_resilient(
          [this] { return ixp->route_server().accept_member(kVictimAsn); },
          ChaosReconnectPolicy(plan.seed + 100));
    }
    ixp->settle(30.0);
  }

  void settle_until(double t_s) {
    const double now = queue.now().count();
    if (t_s > now) ixp->settle(t_s - now);
  }

  void signal_ntp_drop(ixp::MemberRouter& member, const char* host) {
    core::Signal s;
    s.rules.push_back({core::RuleKind::kUdpSrcPort, net::kPortNtp});
    core::SignalAdvancedBlackholing(member, ixp->route_server(), P4(host), s);
  }

  net::FlowSample attack_flow(double mbps) const {
    net::FlowSample f;
    f.key.src_mac = honoring->info().mac;
    f.key.src_ip = net::IPv4Address(60, 2, 0, 5);
    f.key.dst_ip = net::IPv4Address(100, 10, 10, 10);
    f.key.proto = net::IpProto::kUdp;
    f.key.src_port = net::kPortNtp;
    f.key.dst_port = 5555;
    f.bytes = static_cast<std::uint64_t>(mbps * 1e6 / 8.0);
    return f;
  }

  net::FlowSample benign_flow(double mbps) const {
    net::FlowSample f;
    f.key.src_mac = honoring->info().mac;
    f.key.src_ip = net::IPv4Address(60, 2, 0, 9);
    f.key.dst_ip = net::IPv4Address(100, 10, 10, 10);
    f.key.proto = net::IpProto::kTcp;
    f.key.src_port = 443;
    f.key.dst_port = 33000;
    f.bytes = static_cast<std::uint64_t>(mbps * 1e6 / 8.0);
    return f;
  }

  /// Data-plane truth == control-plane intent: every desired rule installed,
  /// nothing extra, nothing still in flight, nothing dead-lettered.
  void expect_converged() const {
    std::vector<std::string> installed = stellar->compiler().installed_keys();
    std::vector<std::string> desired;
    for (const auto& [key, change] : stellar->controller().desired()) {
      desired.push_back(key);
    }
    std::sort(installed.begin(), installed.end());
    std::sort(desired.begin(), desired.end());
    EXPECT_EQ(installed, desired);
    EXPECT_TRUE(stellar->manager().in_flight().empty());
    EXPECT_TRUE(stellar->manager().dead_letter().empty());
  }
};

struct ChaosOutcome {
  double residual_attack_mbps = 0.0;
  double benign_delivered_mbps = 0.0;
  std::string fault_trace;
  std::string journal_csv;
  std::uint64_t injected_compiler_failures = 0;
  std::uint64_t retries = 0;
  std::uint64_t reconciliations = 0;
};

/// One full storm scenario: establish, signal mitigation, then a 60 s fault
/// storm (drops + corruption + jitter) capped by a full-outage kill of every
/// signaling link, followed by unattended recovery.
ChaosOutcome RunStormScenario(std::uint64_t seed) {
  // The global journal accumulates across scenarios; each run captures only
  // its own events so same-seed runs can be compared byte-for-byte.
  obs::journal().clear();
  sim::FaultPlan plan;
  plan.seed = seed;
  plan.drop_probability = 0.05;
  plan.corrupt_probability = 0.05;
  plan.jitter_max_s = 0.2;
  plan.window_start_s = 40.0;
  plan.window_end_s = 100.0;
  plan.session_kills.push_back({100.0, sim::FaultPlan::kAllLinks});

  ChaosFixture f(plan, /*flaky_probability=*/0.1);
  f.settle_until(35.0);
  f.signal_ntp_drop(*f.victim, "100.10.10.10/32");

  // Ride out the storm and the terminal kill, then give backoff + replay +
  // reconciliation time to quiesce (unattended — no operator actions here).
  f.settle_until(300.0);

  EXPECT_TRUE(f.victim->reconnector()->established()) << "seed " << seed;
  EXPECT_TRUE(f.stellar->controller().reconnector().established()) << "seed " << seed;
  f.expect_converged();

  const auto attack = f.attack_flow(100.0);
  const auto benign = f.benign_flow(50.0);
  const net::FlowSample flows[] = {attack, benign};
  const auto report = f.ixp->deliver_bin(flows, 1.0);

  ChaosOutcome outcome;
  outcome.residual_attack_mbps = report.delivered_mbps - 50.0;
  outcome.benign_delivered_mbps = report.delivered_mbps - outcome.residual_attack_mbps;
  outcome.fault_trace = f.injector->trace_text();
  outcome.journal_csv = obs::journal().csv();
  const auto& mstats = f.stellar->manager().stats();
  outcome.retries = mstats.retries;
  outcome.reconciliations = f.stellar->controller().stats().reconciliations;
  return outcome;
}

TEST(ChaosTest, StormConvergesToProtectedStateAcrossSeeds) {
  for (const std::uint64_t seed : g_seeds) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const ChaosOutcome outcome = RunStormScenario(seed);
    // Mitigation holds: no residual attack traffic...
    EXPECT_NEAR(outcome.residual_attack_mbps, 0.0, 0.5);
    // ...and benign traffic to the same /32 within 1% of offered.
    EXPECT_NEAR(outcome.benign_delivered_mbps, 50.0, 0.5);
    // The storm actually exercised the machinery.
    EXPECT_FALSE(outcome.fault_trace.empty());
    EXPECT_GE(outcome.reconciliations, 1u);
  }
}

TEST(ChaosTest, SameSeedYieldsByteIdenticalFaultTrace) {
  const std::uint64_t seed = g_seeds.front();
  const ChaosOutcome first = RunStormScenario(seed);
  const ChaosOutcome second = RunStormScenario(seed);
  EXPECT_EQ(first.fault_trace, second.fault_trace);
  EXPECT_EQ(first.retries, second.retries);
  ASSERT_FALSE(first.fault_trace.empty());
  // The observability journal (faults + session lifecycle + rule lifecycle)
  // is part of the determinism contract too.
  EXPECT_EQ(first.journal_csv, second.journal_csv);
  EXPECT_GT(first.journal_csv.size(), std::string("t_s,kind,subject,detail\n").size());
  EXPECT_NE(first.journal_csv.find("rule_installed"), std::string::npos);
  EXPECT_NE(first.journal_csv.find("fault_"), std::string::npos);
}

TEST(ChaosTest, TransientCompilerFailuresAreRetriedNotLost) {
  // Heavier flakiness, no link faults: isolates the retry path. Every change
  // must eventually land despite ~30% of applies failing transiently.
  sim::FaultPlan plan;
  plan.seed = g_seeds.front();
  ChaosFixture f(plan, /*flaky_probability=*/0.3);
  f.settle_until(35.0);
  // Guarantee the retry path fires under any seed: the first attempt at each
  // signal's install fails deterministically on top of the random flakiness.
  ASSERT_NE(f.flaky, nullptr);
  f.flaky->fail_next(2);
  f.signal_ntp_drop(*f.victim, "100.10.10.10/32");
  f.signal_ntp_drop(*f.second_victim, "100.30.30.30/32");
  f.settle_until(120.0);

  f.expect_converged();
  EXPECT_EQ(f.ixp->edge_router().policy(f.victim->info().port).rule_count(), 1u);
  EXPECT_EQ(f.ixp->edge_router().policy(f.second_victim->info().port).rule_count(), 1u);
  const auto& stats = f.stellar->manager().stats();
  EXPECT_GT(stats.transient_failures, 0u);
  EXPECT_GT(stats.retries, 0u);
  EXPECT_EQ(stats.dead_lettered, 0u);
}

TEST(ChaosTest, PartitionTriggersFailSafeThenUnattendedRecovery) {
  // A 100 s total partition outlives the 90 s hold time: every session
  // hold-expires, the fail-safe flushes all rules (partitioned members must
  // not be stranded behind stale filters), and after the heal the platform
  // re-establishes, replays, reconciles, and restores protection — with no
  // operator in the loop.
  sim::FaultPlan plan;
  plan.seed = g_seeds.front();
  plan.partitions.push_back({50.0, 150.0});

  ChaosFixture f(plan, /*flaky_probability=*/0.0);
  f.settle_until(35.0);
  f.signal_ntp_drop(*f.victim, "100.10.10.10/32");
  f.settle_until(45.0);
  ASSERT_EQ(f.ixp->edge_router().policy(f.victim->info().port).rule_count(), 1u);

  // Deep in the partition, past hold expiry: fail-safe has flushed the rule.
  f.settle_until(148.0);
  EXPECT_EQ(f.ixp->edge_router().policy(f.victim->info().port).rule_count(), 0u);
  EXPECT_GE(f.stellar->controller().stats().failsafe_flushes, 1u);
  EXPECT_GT(f.injector->stats().partition_drops, 0u);

  // Healed: recovery is fully automatic.
  f.settle_until(400.0);
  EXPECT_TRUE(f.victim->reconnector()->established());
  EXPECT_TRUE(f.stellar->controller().reconnector().established());
  EXPECT_EQ(f.ixp->edge_router().policy(f.victim->info().port).rule_count(), 1u);
  f.expect_converged();

  const auto attack = f.attack_flow(100.0);
  const auto report = f.ixp->deliver_bin({&attack, 1}, 1.0);
  EXPECT_NEAR(report.rule_dropped_mbps, 100.0, 1.0);
}

TEST(ChaosTest, FlapDampingPreventsQueueStarvation) {
  // A member flapping 10x/min must be suppressed by damping and consume <5%
  // of the token-bucket capacity, leaving headroom for another victim to
  // install within one rate-limit interval.
  sim::FaultPlan plan;  // No injected link faults: flaps are explicit kills.
  plan.seed = g_seeds.front();
  ChaosFixture f(plan, /*flaky_probability=*/0.0);

  // Default RFC 2439-ish damping on the flapper (suppress after 3 flaps).
  bgp::ReconnectPolicy damped;
  damped.initial_backoff_s = 1.0;
  damped.max_backoff_s = 8.0;
  damped.jitter_frac = 0.0;
  damped.dial_timeout_s = 10.0;
  damped.seed = 7;
  f.victim->connect_resilient(
      [&f] { return f.ixp->route_server().accept_member(kVictimAsn); }, damped);
  f.settle_until(40.0);
  f.signal_ntp_drop(*f.victim, "100.10.10.10/32");
  f.settle_until(50.0);
  ASSERT_EQ(f.ixp->edge_router().policy(f.victim->info().port).rule_count(), 1u);

  const double t0 = f.queue.now().count();
  const std::uint64_t applied_before = f.stellar->manager().stats().applied;

  // One minute of 10x/min flapping; halfway through, a second victim signals.
  bool second_signaled = false;
  double second_signal_at = 0.0;
  for (int i = 0; i < 10; ++i) {
    f.settle_until(t0 + 6.0 * (i + 1));
    if (!second_signaled && f.queue.now().count() >= t0 + 30.0) {
      f.signal_ntp_drop(*f.second_victim, "100.30.30.30/32");
      second_signal_at = f.queue.now().count();
      second_signaled = true;
      // One rate-limit interval (1/rate) plus the controller processing
      // cadence: the other victim must not be starved by the flapper.
      f.ixp->settle(1.0 / 4.33 + 2 * 0.5 + 0.1);
      EXPECT_EQ(f.ixp->edge_router().policy(f.second_victim->info().port).rule_count(),
                1u)
          << "second victim starved at t=" << second_signal_at;
    }
    if (f.victim->reconnector()->established()) {
      f.victim->session()->stop();  // Unexpected close from our side: a flap.
    }
  }
  f.settle_until(t0 + 66.0);

  const auto& rstats = f.victim->reconnector()->stats();
  EXPECT_GE(rstats.flaps, 3u);
  EXPECT_GE(rstats.suppressed_dials, 1u);  // Damping engaged.
  // Flap churn consumed <5% of the minute's token-bucket capacity (the
  // second victim's two changes are excluded from the flapper's budget).
  const std::uint64_t applied_during =
      f.stellar->manager().stats().applied - applied_before - (second_signaled ? 1 : 0);
  const double capacity = 4.33 * 60.0;
  EXPECT_LT(static_cast<double>(applied_during), 0.05 * capacity)
      << "flapper consumed " << applied_during << " of " << capacity;
}

}  // namespace
}  // namespace stellar

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--seed=", 0) == 0) {
      stellar::g_seeds = {std::stoull(arg.substr(7))};
    }
  }
  return RUN_ALL_TESTS();
}
