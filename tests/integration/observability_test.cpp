// End-to-end exercise of the observability plane: one advanced-blackholing
// signal through a small IXP must leave (a) a complete signal-path trace
// whose per-stage deltas sum exactly to the end-to-end latency, (b) journal
// entries for the rule lifecycle, and (c) live registry counters readable
// through the looking glass.
#include <cmath>

#include <gtest/gtest.h>

#include "core/stellar.hpp"
#include "ixp/looking_glass.hpp"
#include "net/ports.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace stellar {
namespace {

net::Prefix4 P4(const char* text) { return net::Prefix4::Parse(text).value(); }
constexpr bgp::Asn kVictimAsn = 63'000;

struct Scenario {
  sim::EventQueue queue;
  std::unique_ptr<ixp::Ixp> ixp;
  ixp::MemberRouter* victim;
  net::IPv4Address target{net::IPv4Address(100, 10, 10, 10)};

  Scenario() {
    // Global tracer/journal carry state across tests in this binary.
    obs::tracer().clear();
    obs::journal().clear();
    ixp::LargeIxpParams params;
    params.member_count = 12;
    params.seed = 7;
    ixp = ixp::MakeLargeIxp(queue, params);
    ixp::MemberSpec v;
    v.asn = kVictimAsn;
    v.address_space = P4("100.10.10.0/24");
    victim = &ixp->add_member(v);
    ixp->settle(60.0);
  }
};

TEST(ObservabilityIntegration, SignalPathTraceTelescopesToEndToEndLatency) {
  Scenario s;
  core::StellarSystem stellar(*s.ixp);
  s.ixp->settle(10.0);

  const std::uint64_t applied_before =
      obs::registry().counter_total("core.manager.applied");

  core::Signal sig;
  sig.rules.push_back({core::RuleKind::kUdpSrcPort, net::kPortNtp});
  const net::Prefix4 prefix = net::Prefix4::HostRoute(s.target);
  core::SignalAdvancedBlackholing(*s.victim, s.ixp->route_server(), prefix, sig);
  s.ixp->settle(20.0);

  // The trace must cover the whole signal path, in causal order.
  const auto stages = obs::tracer().breakdown(prefix.str());
  const char* expected[] = {"member_announce", "route_server_accept", "controller_rx",
                            "controller_decode", "config_enqueued", "config_applied"};
  ASSERT_EQ(stages.size(), std::size(expected));
  for (std::size_t i = 0; i < std::size(expected); ++i) {
    EXPECT_EQ(stages[i].stage, expected[i]) << "stage " << i;
    if (i > 0) {
      EXPECT_GE(stages[i].at_s, stages[i - 1].at_s) << "stage " << i;
      EXPECT_DOUBLE_EQ(stages[i].delta_s, stages[i].at_s - stages[i - 1].at_s);
    }
  }
  // The telescoping guarantee: per-stage deltas sum exactly (double identity,
  // not within-epsilon) to the signal -> install latency.
  double delta_sum = 0.0;
  for (const auto& st : stages) delta_sum += st.delta_s;
  EXPECT_DOUBLE_EQ(delta_sum, stages.back().at_s - stages.front().at_s);
  // Token-bucket pacing means install strictly follows the announcement.
  EXPECT_GT(stages.back().at_s, stages.front().at_s);

  // The journal saw the install, and the registry counted it.
  EXPECT_GE(obs::journal().count(obs::EventKind::kRuleInstalled), 1u);
  EXPECT_GT(obs::registry().counter_total("core.manager.applied"), applied_before);

  // The looking glass exposes both views.
  ixp::LookingGlass glass(s.ixp->route_server());
  const std::string metrics = glass.show_metrics();
  EXPECT_NE(metrics.find("core_manager_applied"), std::string::npos);
  EXPECT_NE(metrics.find("core_manager_wait_seconds"), std::string::npos);
  const auto path_lines = glass.show_signal_path(prefix);
  ASSERT_EQ(path_lines.size(), std::size(expected));
  EXPECT_NE(path_lines[0].find("member_announce"), std::string::npos);

  // Withdrawal journals the removal.
  core::WithdrawAdvancedBlackholing(*s.victim, prefix);
  s.ixp->settle(20.0);
  EXPECT_GE(obs::journal().count(obs::EventKind::kRuleRemoved), 1u);
}

TEST(ObservabilityIntegration, ShapeSignalTracesEveryRule) {
  Scenario s;
  core::StellarSystem stellar(*s.ixp);
  s.ixp->settle(10.0);

  core::Signal shape;
  shape.rules.push_back({core::RuleKind::kUdpSrcPort, net::kPortNtp});
  shape.rules.push_back({core::RuleKind::kUdpSrcPort, net::kPortDns});
  shape.shape_rate_mbps = 200.0;
  const net::Prefix4 prefix = net::Prefix4::HostRoute(s.target);
  core::SignalAdvancedBlackholing(*s.victim, s.ixp->route_server(), prefix, shape);
  s.ixp->settle(20.0);

  // Two rules, one trace: the per-prefix trace records the first install but
  // the journal records each rule's lifecycle.
  const auto stages = obs::tracer().breakdown(prefix.str());
  ASSERT_FALSE(stages.empty());
  EXPECT_EQ(stages.front().stage, "member_announce");
  EXPECT_EQ(stages.back().stage, "config_applied");
  EXPECT_GE(obs::journal().count(obs::EventKind::kRuleInstalled), 2u);
}

}  // namespace
}  // namespace stellar
