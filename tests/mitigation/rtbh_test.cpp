#include "mitigation/rtbh.hpp"

#include <gtest/gtest.h>

namespace stellar::mitigation {
namespace {

net::Prefix4 P4(const char* text) { return net::Prefix4::Parse(text).value(); }

struct RtbhFixture {
  sim::EventQueue queue;
  std::unique_ptr<ixp::Ixp> ixp;
  ixp::MemberRouter* victim;

  RtbhFixture() {
    ixp = std::make_unique<ixp::Ixp>(queue);
    ixp::MemberSpec v;
    v.asn = 65001;
    v.address_space = P4("100.10.10.0/24");
    victim = &ixp->add_member(v);
    // Two honoring members, two that filter more-specifics.
    for (int i = 0; i < 4; ++i) {
      ixp::MemberSpec s;
      s.asn = static_cast<bgp::Asn>(65002 + i);
      s.address_space = net::Prefix4(
          net::IPv4Address((60u << 24) | (static_cast<std::uint32_t>(i) << 12)), 20);
      s.policy.accepts_more_specifics = i < 2;
      s.policy.participates_in_rtbh = true;
      ixp->add_member(s);
    }
    ixp->settle(60.0);
  }
};

TEST(RtbhTest, TriggerReachesHonoringMembersOnly) {
  RtbhFixture f;
  TriggerRtbh(*f.victim, P4("100.10.10.10/32"));
  f.ixp->settle(10.0);
  const auto compliance = MeasureCompliance(*f.ixp, P4("100.10.10.10/32"), 65001);
  EXPECT_EQ(compliance.total, 4u);
  EXPECT_EQ(compliance.honoring, 2u);
  EXPECT_DOUBLE_EQ(compliance.honored_fraction(), 0.5);
}

TEST(RtbhTest, WithdrawRestoresTraffic) {
  RtbhFixture f;
  TriggerRtbh(*f.victim, P4("100.10.10.10/32"));
  f.ixp->settle(10.0);
  ASSERT_EQ(MeasureCompliance(*f.ixp, P4("100.10.10.10/32"), 65001).honoring, 2u);
  WithdrawRtbh(*f.victim, P4("100.10.10.10/32"));
  f.ixp->settle(10.0);
  EXPECT_EQ(MeasureCompliance(*f.ixp, P4("100.10.10.10/32"), 65001).honoring, 0u);
}

TEST(RtbhTest, HonoringMembersDropAtIngress) {
  RtbhFixture f;
  TriggerRtbh(*f.victim, P4("100.10.10.10/32"));
  f.ixp->settle(10.0);

  // Traffic from an honoring member (65002) and a non-honoring one (65004).
  auto make_flow = [&](bgp::Asn src_asn) {
    net::FlowSample s;
    s.key.src_mac = f.ixp->member(src_asn)->info().mac;
    s.key.src_ip = net::IPv4Address(60, 0, 0, 1);
    s.key.dst_ip = net::IPv4Address(100, 10, 10, 10);
    s.key.proto = net::IpProto::kUdp;
    s.key.src_port = 123;
    s.key.dst_port = 5555;
    s.bytes = static_cast<std::uint64_t>(100e6 / 8.0);
    return s;
  };
  const std::vector<net::FlowSample> offered{make_flow(65002), make_flow(65004)};
  const auto report = f.ixp->deliver_bin(offered, 1.0);
  EXPECT_NEAR(report.rtbh_dropped_mbps, 100.0, 1.0);
  EXPECT_NEAR(report.delivered_mbps, 100.0, 1.0);
}

TEST(RtbhTest, ScopedTriggerExcludesPeer) {
  RtbhFixture f;
  TriggerRtbh(*f.victim, P4("100.10.10.10/32"),
              {f.ixp->route_server().exclude_peer(65002)});
  f.ixp->settle(10.0);
  EXPECT_FALSE(f.ixp->member(65002)->blackholes(net::IPv4Address(100, 10, 10, 10)));
  EXPECT_TRUE(f.ixp->member(65003)->blackholes(net::IPv4Address(100, 10, 10, 10)));
}

TEST(RtbhTest, CollateralDamageIsTotalForBlackholedPrefix) {
  RtbhFixture f;
  TriggerRtbh(*f.victim, P4("100.10.10.10/32"));
  f.ixp->settle(10.0);
  // Benign HTTPS from an honoring member is dropped too — the core RTBH flaw.
  net::FlowSample benign;
  benign.key.src_mac = f.ixp->member(65002)->info().mac;
  benign.key.src_ip = net::IPv4Address(60, 0, 0, 1);
  benign.key.dst_ip = net::IPv4Address(100, 10, 10, 10);
  benign.key.proto = net::IpProto::kTcp;
  benign.key.src_port = 50'000;
  benign.key.dst_port = 443;
  benign.bytes = static_cast<std::uint64_t>(50e6 / 8.0);
  const auto report = f.ixp->deliver_bin({&benign, 1}, 1.0);
  EXPECT_NEAR(report.rtbh_dropped_mbps, 50.0, 1.0);
  EXPECT_DOUBLE_EQ(report.delivered_mbps, 0.0);
}

}  // namespace
}  // namespace stellar::mitigation
