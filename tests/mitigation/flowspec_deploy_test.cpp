#include "mitigation/flowspec_deploy.hpp"

#include <gtest/gtest.h>

#include "net/ports.hpp"

namespace stellar::mitigation {
namespace {

bgp::flowspec::Rule NtpRule() {
  bgp::flowspec::Rule rule;
  rule.components.push_back({bgp::flowspec::ComponentType::kDstPrefix,
                             net::Prefix4::Parse("100.10.10.10/32").value(),
                             {}});
  rule.components.push_back(
      {bgp::flowspec::ComponentType::kIpProtocol, {}, {bgp::flowspec::Eq(17)}});
  rule.components.push_back(
      {bgp::flowspec::ComponentType::kSrcPort, {}, {bgp::flowspec::Eq(net::kPortNtp)}});
  return rule;
}

net::FlowKey NtpFlow() {
  net::FlowKey k;
  k.src_ip = net::IPv4Address(1, 2, 3, 4);
  k.dst_ip = net::IPv4Address(100, 10, 10, 10);
  k.proto = net::IpProto::kUdp;
  k.src_port = net::kPortNtp;
  k.dst_port = 5555;
  return k;
}

std::vector<bgp::Asn> Peers(int n) {
  std::vector<bgp::Asn> out;
  for (int i = 0; i < n; ++i) out.push_back(static_cast<bgp::Asn>(65001 + i));
  return out;
}

TEST(InterdomainFlowspecTest, AcceptanceFractionApproximatesProbability) {
  InterdomainFlowspec fs(Peers(400), 0.15, 42);
  EXPECT_NEAR(static_cast<double>(fs.accepting_peers()) / 400.0, 0.15, 0.06);
}

TEST(InterdomainFlowspecTest, ZeroAndFullAcceptance) {
  InterdomainFlowspec none(Peers(50), 0.0, 1);
  EXPECT_EQ(none.accepting_peers(), 0u);
  InterdomainFlowspec all(Peers(50), 1.0, 1);
  EXPECT_EQ(all.accepting_peers(), 50u);
}

TEST(InterdomainFlowspecTest, OnlyAcceptingPeersFilter) {
  InterdomainFlowspec fs(Peers(100), 0.5, 7);
  const std::size_t installed = fs.announce(NtpRule(), bgp::flowspec::Action{0.0f});
  EXPECT_EQ(installed, fs.accepting_peers());
  int droppers = 0;
  for (bgp::Asn peer : Peers(100)) {
    const bool drops = fs.peer_drops(peer, NtpFlow());
    EXPECT_EQ(drops, fs.peer_accepts(peer));
    if (drops) ++droppers;
  }
  EXPECT_EQ(static_cast<std::size_t>(droppers), installed);
}

TEST(InterdomainFlowspecTest, NonMatchingFlowNotDropped) {
  InterdomainFlowspec fs(Peers(10), 1.0, 7);
  fs.announce(NtpRule(), bgp::flowspec::Action{0.0f});
  auto flow = NtpFlow();
  flow.src_port = 53;
  for (bgp::Asn peer : Peers(10)) EXPECT_FALSE(fs.peer_drops(peer, flow));
}

TEST(InterdomainFlowspecTest, RateLimitActionIsNotADrop) {
  InterdomainFlowspec fs(Peers(10), 1.0, 7);
  fs.announce(NtpRule(), bgp::flowspec::Action{1'000'000.0f});
  for (bgp::Asn peer : Peers(10)) EXPECT_FALSE(fs.peer_drops(peer, NtpFlow()));
}

TEST(InterdomainFlowspecTest, WithdrawAllStopsFiltering) {
  InterdomainFlowspec fs(Peers(10), 1.0, 7);
  fs.announce(NtpRule(), bgp::flowspec::Action{0.0f});
  ASSERT_TRUE(fs.peer_drops(65001, NtpFlow()));
  fs.withdraw_all();
  EXPECT_FALSE(fs.peer_drops(65001, NtpFlow()));
}

TEST(InterdomainFlowspecTest, UnknownPeerNeverFilters) {
  InterdomainFlowspec fs(Peers(2), 1.0, 7);
  fs.announce(NtpRule(), bgp::flowspec::Action{0.0f});
  EXPECT_FALSE(fs.peer_drops(60'000, NtpFlow()));
  EXPECT_FALSE(fs.peer_accepts(60'000));
}

TEST(InterdomainFlowspecTest, UnencodableRuleThrows) {
  InterdomainFlowspec fs(Peers(2), 1.0, 7);
  EXPECT_THROW(fs.announce(bgp::flowspec::Rule{}, bgp::flowspec::Action{0.0f}),
               std::invalid_argument);
}

TEST(InterdomainFlowspecTest, DeterministicAcceptanceBySeed) {
  InterdomainFlowspec a(Peers(100), 0.3, 9);
  InterdomainFlowspec b(Peers(100), 0.3, 9);
  for (bgp::Asn peer : Peers(100)) EXPECT_EQ(a.peer_accepts(peer), b.peer_accepts(peer));
}

}  // namespace
}  // namespace stellar::mitigation
