#include "mitigation/scrubbing.hpp"

#include <gtest/gtest.h>

#include "net/ports.hpp"

namespace stellar::mitigation {
namespace {

net::FlowSample Flow(net::IpProto proto, std::uint16_t src_port, double mbps) {
  net::FlowSample s;
  s.key.src_mac = net::MacAddress::ForRouter(65001);
  s.key.src_ip = net::IPv4Address(1, 2, 3, 4);
  s.key.dst_ip = net::IPv4Address(100, 10, 10, 10);
  s.key.proto = proto;
  s.key.src_port = src_port;
  s.key.dst_port = 5555;
  s.bytes = static_cast<std::uint64_t>(mbps * 1e6 / 8.0);
  s.packets = s.bytes / 1000;
  return s;
}

bool IsNtp(const net::FlowKey& k) {
  return k.proto == net::IpProto::kUdp && k.src_port == net::kPortNtp;
}

TEST(ScrubbingServiceTest, DropsAttackPassesBenign) {
  ScrubbingService::Config config;
  config.attack_detection_rate = 1.0;
  config.false_positive_rate = 0.0;
  ScrubbingService tss(config);
  const std::vector<net::FlowSample> diverted{Flow(net::IpProto::kUdp, 123, 900),
                                              Flow(net::IpProto::kTcp, 443, 100)};
  const auto r = tss.scrub(diverted, 1.0, IsNtp);
  EXPECT_NEAR(r.dropped_attack_mbps, 900.0, 1.0);
  EXPECT_NEAR(r.dropped_benign_mbps, 0.0, 1e-9);
  ASSERT_EQ(r.clean.size(), 1u);
  EXPECT_EQ(r.clean[0].key.proto, net::IpProto::kTcp);
}

TEST(ScrubbingServiceTest, ImperfectClassifierLeaksAndOverblocks) {
  ScrubbingService::Config config;
  config.attack_detection_rate = 0.9;
  config.false_positive_rate = 0.1;
  ScrubbingService tss(config);
  const std::vector<net::FlowSample> diverted{Flow(net::IpProto::kUdp, 123, 1000),
                                              Flow(net::IpProto::kTcp, 443, 100)};
  const auto r = tss.scrub(diverted, 1.0, IsNtp);
  EXPECT_NEAR(r.passed_attack_mbps, 100.0, 2.0);   // 10% leaks.
  EXPECT_NEAR(r.dropped_benign_mbps, 10.0, 1.0);   // 10% false positives.
}

TEST(ScrubbingServiceTest, OverloadShedsIndiscriminately) {
  ScrubbingService::Config config;
  config.capacity_mbps = 500.0;
  ScrubbingService tss(config);
  const std::vector<net::FlowSample> diverted{Flow(net::IpProto::kUdp, 123, 900),
                                              Flow(net::IpProto::kTcp, 443, 100)};
  const auto r = tss.scrub(diverted, 1.0, IsNtp);
  EXPECT_NEAR(r.overload_dropped_mbps, 500.0, 2.0);
}

TEST(ScrubbingServiceTest, VolumeCostCharged) {
  ScrubbingService tss(ScrubbingService::Config{});
  const std::vector<net::FlowSample> diverted{Flow(net::IpProto::kUdp, 123, 800)};
  const auto r = tss.scrub(diverted, 1.0, IsNtp);
  // 800 Mbit = 100 MB = 0.1 GB at cost_per_gb 0.05.
  EXPECT_NEAR(r.cost, 0.1 * 0.05, 1e-4);
  tss.charge(r.cost);
  EXPECT_GT(tss.total_cost(), 0.0);
}

TEST(ScrubbingServiceTest, EmptyInput) {
  ScrubbingService tss(ScrubbingService::Config{});
  const auto r = tss.scrub({}, 1.0, IsNtp);
  EXPECT_TRUE(r.clean.empty());
  EXPECT_DOUBLE_EQ(r.cost, 0.0);
}

}  // namespace
}  // namespace stellar::mitigation
