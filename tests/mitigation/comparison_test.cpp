// The Table-1 comparison harness as a test: the *orderings* the paper's
// table encodes must hold on a reduced scenario regardless of calibration.
#include <gtest/gtest.h>

#include "mitigation/comparison.hpp"

namespace stellar::mitigation {
namespace {

class ComparisonTest : public ::testing::Test {
 protected:
  static const std::vector<TechniqueMetrics>& rows() {
    // Run the (expensive) scenario suite once for all assertions.
    static const std::vector<TechniqueMetrics> kRows = [] {
      ComparisonConfig config;
      config.members = 24;
      config.seed = 99;
      return RunComparison(config);
    }();
    return kRows;
  }

  static const TechniqueMetrics& find(const std::string& name) {
    for (const auto& r : rows()) {
      if (r.name == name) return r;
    }
    throw std::logic_error("missing technique " + name);
  }
};

TEST_F(ComparisonTest, AllSixTechniquesPresent) {
  EXPECT_EQ(rows().size(), 6u);
  for (const char* name : {"none", "TSS", "ACL", "RTBH", "Flowspec", "AdvancedBH"}) {
    EXPECT_NO_THROW(find(name));
  }
}

TEST_F(ComparisonTest, AdvancedBlackholingDominates) {
  const auto& adv = find("AdvancedBH");
  EXPECT_LT(adv.attack_delivered_pct, 5.0);
  EXPECT_GT(adv.benign_delivered_pct, 95.0);
  EXPECT_EQ(adv.cooperating_parties, 0);
  EXPECT_TRUE(adv.telemetry);
  EXPECT_FALSE(adv.resource_sharing_required);
  EXPECT_LT(adv.reaction_time_s, 60.0);
  EXPECT_EQ(adv.measured_cost, 0.0);
}

TEST_F(ComparisonTest, RtbhIneffectiveAtRealisticCompliance) {
  const auto& rtbh = find("RTBH");
  const auto& none = find("none");
  // Most of the attack survives, and benign delivery is WORSE than doing
  // nothing (honoring members drop legitimate traffic too).
  EXPECT_GT(rtbh.attack_delivered_pct, 50.0);
  EXPECT_LE(rtbh.benign_delivered_pct, none.benign_delivered_pct + 1.0);
}

TEST_F(ComparisonTest, AclFiltersButCannotProtectThePort) {
  const auto& acl = find("ACL");
  const auto& none = find("none");
  EXPECT_LT(acl.attack_delivered_pct, 5.0);  // Inside the member network.
  // But the port congestion upstream is unchanged: benign no better than none.
  EXPECT_NEAR(acl.benign_delivered_pct, none.benign_delivered_pct, 5.0);
  EXPECT_GT(acl.reaction_time_s, 100.0);  // Manual deployment.
}

TEST_F(ComparisonTest, TssEffectiveButSlowAndCostly) {
  const auto& tss = find("TSS");
  EXPECT_LT(tss.attack_delivered_pct, 10.0);
  EXPECT_GT(tss.benign_delivered_pct, 90.0);
  EXPECT_GT(tss.reaction_time_s, 1000.0);  // Onboarding.
  EXPECT_GT(tss.measured_cost, 0.0);       // Per-volume fees.
  EXPECT_TRUE(tss.resource_sharing_required);
}

TEST_F(ComparisonTest, FlowspecLimitedByAcceptance) {
  const auto& flowspec = find("Flowspec");
  // At ~15% inter-domain acceptance most of the attack still arrives.
  EXPECT_GT(flowspec.attack_delivered_pct, 40.0);
  EXPECT_TRUE(flowspec.resource_sharing_required);
  EXPECT_GT(flowspec.cooperating_parties, 1);
}

TEST_F(ComparisonTest, RenderedTableContainsAllDimensions) {
  const std::string table = RenderComparisonTable(rows());
  for (const char* dim :
       {"granularity", "cooperation", "resource sharing", "telemetry", "scalability",
        "reaction time", "signaling complexity", "resources", "performance", "costs"}) {
    EXPECT_NE(table.find(dim), std::string::npos) << dim;
  }
  EXPECT_NE(table.find("AdvBH"), std::string::npos);
}

}  // namespace
}  // namespace stellar::mitigation
