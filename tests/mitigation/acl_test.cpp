#include "mitigation/acl.hpp"

#include <gtest/gtest.h>

#include "net/ports.hpp"

namespace stellar::mitigation {
namespace {

net::FlowSample Flow(net::IpProto proto, std::uint16_t src_port, double mbps) {
  net::FlowSample s;
  s.key.src_mac = net::MacAddress::ForRouter(65001);
  s.key.src_ip = net::IPv4Address(1, 2, 3, 4);
  s.key.dst_ip = net::IPv4Address(100, 10, 10, 10);
  s.key.proto = proto;
  s.key.src_port = src_port;
  s.key.dst_port = 5555;
  s.bytes = static_cast<std::uint64_t>(mbps * 1e6 / 8.0);
  return s;
}

filter::FilterRule DropNtp() {
  filter::FilterRule rule;
  rule.match.proto = net::IpProto::kUdp;
  rule.match.src_port = filter::PortRange::Single(net::kPortNtp);
  rule.action = filter::FilterAction::kDrop;
  return rule;
}

TEST(MemberAclFilterTest, RuleInactiveBeforeDeploymentLatency) {
  MemberAclFilter acl(300.0);
  acl.add_rule(100.0, DropNtp());
  EXPECT_EQ(acl.rule_count(100.0), 0u);
  EXPECT_EQ(acl.rule_count(399.0), 0u);
  EXPECT_EQ(acl.rule_count(400.0), 1u);
  const std::vector<net::FlowSample> flows{Flow(net::IpProto::kUdp, 123, 100)};
  const auto before = acl.apply(200.0, flows, 1.0);
  EXPECT_NEAR(before.delivered_mbps, 100.0, 1.0);
  const auto after = acl.apply(500.0, flows, 1.0);
  EXPECT_NEAR(after.rule_dropped_mbps, 100.0, 1.0);
  EXPECT_DOUBLE_EQ(after.delivered_mbps, 0.0);
}

TEST(MemberAclFilterTest, FiltersOnlyMatchingTraffic) {
  MemberAclFilter acl(0.0);
  acl.add_rule(0.0, DropNtp());
  const std::vector<net::FlowSample> flows{Flow(net::IpProto::kUdp, 123, 500),
                                           Flow(net::IpProto::kTcp, 443, 100)};
  const auto r = acl.apply(1.0, flows, 1.0);
  EXPECT_NEAR(r.rule_dropped_mbps, 500.0, 1.0);
  EXPECT_NEAR(r.delivered_mbps, 100.0, 1.0);
}

TEST(MemberAclFilterTest, ClearRemovesRules) {
  MemberAclFilter acl(0.0);
  acl.add_rule(0.0, DropNtp());
  acl.clear();
  EXPECT_EQ(acl.rule_count(100.0), 0u);
}

TEST(MemberAclFilterTest, NoPortCapacityLimitInsideMemberNetwork) {
  // ACL filtering happens after the congested port; the filter itself must
  // not impose another bottleneck.
  MemberAclFilter acl(0.0);
  const std::vector<net::FlowSample> flows{Flow(net::IpProto::kTcp, 443, 50'000)};
  const auto r = acl.apply(1.0, flows, 1.0);
  EXPECT_NEAR(r.delivered_mbps, 50'000.0, 10.0);
  EXPECT_DOUBLE_EQ(r.congestion_dropped_mbps, 0.0);
}

}  // namespace
}  // namespace stellar::mitigation
