#include "bgp/session.hpp"

#include <gtest/gtest.h>

namespace stellar::bgp {
namespace {

net::Prefix4 P4(const char* text) { return net::Prefix4::Parse(text).value(); }

struct SessionPair {
  sim::EventQueue queue;
  std::unique_ptr<Session> a;
  std::unique_ptr<Session> b;
  std::vector<UpdateMessage> a_received;
  std::vector<UpdateMessage> b_received;

  explicit SessionPair(SessionConfig ca, SessionConfig cb) {
    auto [ea, eb] = MakeLink(queue);
    a = std::make_unique<Session>(queue, ea, ca);
    b = std::make_unique<Session>(queue, eb, cb);
    a->set_update_handler([this](const UpdateMessage& u) { a_received.push_back(u); });
    b->set_update_handler([this](const UpdateMessage& u) { b_received.push_back(u); });
  }

  void establish() {
    a->start();
    b->start();
    queue.run_until(sim::Seconds(1.0));
  }
};

SessionConfig Cfg(Asn asn, std::uint8_t id) {
  SessionConfig c;
  c.local_asn = asn;
  c.router_id = net::IPv4Address(10, 0, 0, id);
  return c;
}

TEST(SessionTest, EstablishesViaOpenKeepalive) {
  SessionPair pair(Cfg(65001, 1), Cfg(65002, 2));
  pair.establish();
  EXPECT_TRUE(pair.a->established());
  EXPECT_TRUE(pair.b->established());
  EXPECT_EQ(pair.a->peer_asn(), 65002u);
  EXPECT_EQ(pair.b->peer_asn(), 65001u);
  EXPECT_FALSE(pair.a->is_ibgp());
}

TEST(SessionTest, IbgpDetected) {
  SessionPair pair(Cfg(64500, 1), Cfg(64500, 2));
  pair.establish();
  EXPECT_TRUE(pair.a->is_ibgp());
}

TEST(SessionTest, HoldTimeNegotiatedToMinimum) {
  SessionConfig ca = Cfg(65001, 1);
  ca.hold_time_s = 90;
  SessionConfig cb = Cfg(65002, 2);
  cb.hold_time_s = 30;
  SessionPair pair(ca, cb);
  pair.establish();
  EXPECT_EQ(pair.a->negotiated_hold_time_s(), 30);
  EXPECT_EQ(pair.b->negotiated_hold_time_s(), 30);
}

TEST(SessionTest, UpdateDelivered) {
  SessionPair pair(Cfg(65001, 1), Cfg(65002, 2));
  pair.establish();
  UpdateMessage u;
  u.attrs.origin = Origin::kIgp;
  u.attrs.as_path = {{AsPathSegment::Type::kSequence, {65001}}};
  u.attrs.next_hop = net::IPv4Address(10, 0, 0, 1);
  u.announced = {{0, P4("60.1.0.0/20")}};
  pair.a->announce(u);
  pair.queue.run_until(sim::Seconds(2.0));
  ASSERT_EQ(pair.b_received.size(), 1u);
  EXPECT_EQ(pair.b_received[0], u);
  EXPECT_EQ(pair.a->updates_sent(), 1u);
  EXPECT_EQ(pair.b->updates_received(), 1u);
}

TEST(SessionTest, UpdatesBufferedUntilEstablished) {
  SessionPair pair(Cfg(65001, 1), Cfg(65002, 2));
  UpdateMessage u;
  u.attrs.origin = Origin::kIgp;
  u.attrs.next_hop = net::IPv4Address(10, 0, 0, 1);
  u.announced = {{0, P4("60.1.0.0/20")}};
  pair.a->announce(u);  // Before start: must queue, not crash.
  EXPECT_EQ(pair.a->updates_sent(), 0u);
  pair.establish();
  pair.queue.run_until(sim::Seconds(2.0));
  ASSERT_EQ(pair.b_received.size(), 1u);
}

TEST(SessionTest, AddPathNegotiationDirections) {
  SessionConfig ca = Cfg(64500, 1);
  ca.add_path_tx = true;  // a wants to send path ids.
  SessionConfig cb = Cfg(64500, 2);
  cb.add_path_rx = true;  // b is willing to receive them.
  SessionPair pair(ca, cb);
  pair.establish();
  EXPECT_TRUE(pair.a->add_path_tx_negotiated());
  EXPECT_FALSE(pair.a->add_path_rx_negotiated());
  EXPECT_TRUE(pair.b->add_path_rx_negotiated());
  EXPECT_FALSE(pair.b->add_path_tx_negotiated());

  UpdateMessage u;
  u.attrs.origin = Origin::kIgp;
  u.attrs.next_hop = net::IPv4Address(1, 1, 1, 1);
  u.announced = {{7, P4("100.10.10.10/32")}, {9, P4("100.10.10.10/32")}};
  pair.a->announce(u);
  pair.queue.run_until(sim::Seconds(2.0));
  ASSERT_EQ(pair.b_received.size(), 1u);
  ASSERT_EQ(pair.b_received[0].announced.size(), 2u);
  EXPECT_EQ(pair.b_received[0].announced[0].path_id, 7u);
  EXPECT_EQ(pair.b_received[0].announced[1].path_id, 9u);
}

TEST(SessionTest, AddPathNotNegotiatedWithoutBothSides) {
  SessionConfig ca = Cfg(65001, 1);
  ca.add_path_tx = true;
  SessionPair pair(ca, Cfg(65002, 2));  // b has no ADD-PATH capability.
  pair.establish();
  EXPECT_FALSE(pair.a->add_path_tx_negotiated());
}

TEST(SessionTest, KeepalivesKeepSessionAlive) {
  SessionConfig ca = Cfg(65001, 1);
  ca.hold_time_s = 9;
  SessionConfig cb = Cfg(65002, 2);
  cb.hold_time_s = 9;
  SessionPair pair(ca, cb);
  pair.establish();
  pair.queue.run_until(sim::Seconds(120.0));
  EXPECT_TRUE(pair.a->established());
  EXPECT_TRUE(pair.b->established());
  EXPECT_GT(pair.a->keepalives_received(), 10u);
}

TEST(SessionTest, RouteRefreshCapabilityNegotiatedAndDelivered) {
  SessionPair pair(Cfg(65001, 1), Cfg(65002, 2));
  pair.establish();
  EXPECT_TRUE(pair.a->peer_supports_route_refresh());
  EXPECT_TRUE(pair.b->peer_supports_route_refresh());

  std::vector<bgp::RouteRefreshMessage> received;
  pair.b->set_refresh_handler(
      [&received](const RouteRefreshMessage& m) { received.push_back(m); });
  pair.a->request_route_refresh(kAfiIPv6);
  pair.queue.run_until(pair.queue.now() + sim::Seconds(1.0));
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].afi, kAfiIPv6);
  EXPECT_TRUE(pair.a->established());
}

TEST(SessionTest, RouteRefreshNotSentBeforeEstablished) {
  SessionPair pair(Cfg(65001, 1), Cfg(65002, 2));
  std::vector<bgp::RouteRefreshMessage> received;
  pair.b->set_refresh_handler(
      [&received](const RouteRefreshMessage& m) { received.push_back(m); });
  pair.a->request_route_refresh();  // Idle: must be a no-op, not a crash.
  pair.establish();
  pair.queue.run_until(pair.queue.now() + sim::Seconds(1.0));
  EXPECT_TRUE(received.empty());
}

TEST(SessionTest, StopSendsCeaseAndCloses) {
  SessionPair pair(Cfg(65001, 1), Cfg(65002, 2));
  pair.establish();
  pair.a->stop();
  pair.queue.run_until(sim::Seconds(3.0));
  EXPECT_EQ(pair.a->state(), SessionState::kClosed);
  EXPECT_EQ(pair.b->state(), SessionState::kClosed);
}

TEST(SessionTest, HoldTimerExpiryClosesSilentSession) {
  SessionConfig ca = Cfg(65001, 1);
  ca.hold_time_s = 9;
  SessionConfig cb = Cfg(65002, 2);
  cb.hold_time_s = 9;
  auto pair = std::make_unique<SessionPair>(ca, cb);
  pair->establish();
  ASSERT_TRUE(pair->a->established());
  // The peer's router dies silently: destroying the Session stops its
  // keepalives without closing the transport.
  sim::EventQueue& queue = pair->queue;
  Session& a = *pair->a;
  pair->b.reset();
  queue.run_until(queue.now() + sim::Seconds(30.0));
  EXPECT_EQ(a.state(), SessionState::kClosed);
}

TEST(SessionTest, GarbageBytesTerminateSession) {
  sim::EventQueue queue;
  auto [ea, eb] = MakeLink(queue);
  Session session(queue, ea, Cfg(65001, 1));
  session.start();
  queue.run_until(sim::Seconds(0.5));
  eb->send(std::vector<std::uint8_t>(32, 0x00));  // Invalid marker.
  queue.run_until(sim::Seconds(1.0));
  EXPECT_EQ(session.state(), SessionState::kClosed);
}

TEST(SessionTest, StateCallbacksFire) {
  SessionPair pair(Cfg(65001, 1), Cfg(65002, 2));
  std::vector<SessionState> states;
  pair.a->set_state_handler([&](SessionState s) { states.push_back(s); });
  pair.establish();
  ASSERT_GE(states.size(), 3u);
  EXPECT_EQ(states[0], SessionState::kOpenSent);
  EXPECT_EQ(states[1], SessionState::kOpenConfirm);
  EXPECT_EQ(states[2], SessionState::kEstablished);
}

TEST(EndpointTest, CloseReachesPeer) {
  sim::EventQueue queue;
  auto [ea, eb] = MakeLink(queue);
  bool closed = false;
  eb->set_close_handler([&] { closed = true; });
  ea->close();
  queue.run_until(sim::Seconds(1.0));
  EXPECT_TRUE(closed);
  EXPECT_TRUE(eb->closed());
}

TEST(EndpointTest, SendAfterCloseIsNoop) {
  sim::EventQueue queue;
  auto [ea, eb] = MakeLink(queue);
  int received = 0;
  eb->set_receive_handler([&](std::span<const std::uint8_t>) { ++received; });
  ea->close();
  queue.run_until(sim::Seconds(1.0));
  ea->send({1, 2, 3});
  queue.run_until(sim::Seconds(2.0));
  EXPECT_EQ(received, 0);
}

TEST(EndpointTest, SendAfterLocalCloseIsCounted) {
  sim::EventQueue queue;
  auto [ea, eb] = MakeLink(queue);
  ea->close();
  ea->send({1, 2, 3});
  ea->send({4, 5});
  EXPECT_EQ(ea->stats().sends_after_close, 2u);
  EXPECT_EQ(ea->stats().dropped_bytes, 5u);
  EXPECT_EQ(eb->stats().sends_after_close, 0u);
}

TEST(EndpointTest, SendToGonePeerIsCounted) {
  sim::EventQueue queue;
  auto [ea, eb] = MakeLink(queue);
  eb->close();  // The remote side goes away first.
  ea->send({1, 2, 3, 4});
  queue.run_until(sim::Seconds(1.0));
  EXPECT_EQ(ea->stats().sends_after_close, 1u);
  EXPECT_EQ(ea->stats().dropped_bytes, 4u);
}

TEST(EndpointTest, InFlightBytesDroppedOnPeerCloseAreCounted) {
  sim::EventQueue queue;
  auto [ea, eb] = MakeLink(queue);
  int received = 0;
  eb->set_receive_handler([&](std::span<const std::uint8_t>) { ++received; });
  ea->send({1, 2, 3});  // In flight (delivery is scheduled, not immediate)...
  eb->close();          // ...and the peer closes before it lands.
  queue.run_until(sim::Seconds(1.0));
  EXPECT_EQ(received, 0);
  EXPECT_EQ(ea->stats().sends_after_close, 0u);  // The send itself was legal.
  EXPECT_EQ(ea->stats().dropped_bytes, 3u);
}

// ---- BGP timer edge cases (keepalive cadence, zero hold time, boundary) ----

TEST(SessionTimerTest, KeepaliveCadenceIsOneThirdOfHoldTime) {
  SessionConfig ca = Cfg(65001, 1);
  ca.hold_time_s = 9;  // Keepalive interval: 3 s.
  SessionConfig cb = Cfg(65002, 2);
  cb.hold_time_s = 9;
  SessionPair pair(ca, cb);
  pair.establish();
  const std::uint64_t at_establish = pair.a->keepalives_received();
  pair.queue.run_until(pair.queue.now() + sim::Seconds(30.0));
  const std::uint64_t received = pair.a->keepalives_received() - at_establish;
  // 30 s at one keepalive per 3 s: exactly 10 modulo boundary rounding.
  EXPECT_GE(received, 9u);
  EXPECT_LE(received, 11u);
}

TEST(SessionTimerTest, ZeroHoldTimeDisablesTimers) {
  SessionConfig ca = Cfg(65001, 1);
  ca.hold_time_s = 0;
  SessionConfig cb = Cfg(65002, 2);
  cb.hold_time_s = 0;
  auto pair = std::make_unique<SessionPair>(ca, cb);
  pair->establish();
  ASSERT_TRUE(pair->a->established());
  EXPECT_EQ(pair->a->negotiated_hold_time_s(), 0);
  // Kill the peer silently: with hold_time 0 there is no hold timer, so the
  // survivor must stay Established indefinitely (RFC 4271 §4.2 semantics).
  sim::EventQueue& queue = pair->queue;
  Session& a = *pair->a;
  pair->b.reset();
  queue.run_until(queue.now() + sim::Seconds(3600.0));
  EXPECT_TRUE(a.established());
  // Only the establishing keepalive: no periodic ones with timers disabled.
  EXPECT_LE(a.keepalives_received(), 1u);
}

// Drives the peer side of a session by hand so the test controls exactly
// which messages (and when) reach the session under test.
struct ManualPeer {
  sim::EventQueue queue;
  std::shared_ptr<Endpoint> wire;  // The manual side's endpoint.
  std::unique_ptr<Session> session;

  explicit ManualPeer(std::uint16_t hold_time_s) {
    auto [ea, eb] = MakeLink(queue);
    SessionConfig config = Cfg(65001, 1);
    config.hold_time_s = hold_time_s;
    session = std::make_unique<Session>(queue, ea, config);
    wire = eb;
    session->start();
    queue.run_until(sim::Seconds(0.1));  // Session's OPEN is on the wire.
    OpenMessage open;
    open.my_asn = 65002;
    open.hold_time_s = hold_time_s;
    open.bgp_identifier = net::IPv4Address(10, 0, 0, 2);
    open.add_four_octet_as_capability();
    wire->send(Encode(open));
    wire->send(Encode(KeepaliveMessage{}));
    queue.run_until(sim::Seconds(0.5));
  }

  void send_keepalive() { wire->send(Encode(KeepaliveMessage{})); }
  void send_update() {
    UpdateMessage u;
    u.attrs.origin = Origin::kIgp;
    u.attrs.as_path = {{AsPathSegment::Type::kSequence, {65002}}};
    u.attrs.next_hop = net::IPv4Address(10, 0, 0, 2);
    u.announced = {{0, P4("60.1.0.0/20")}};
    wire->send(Encode(u));
  }
};

TEST(SessionTimerTest, HoldTimerExpiresExactlyAtBoundary) {
  ManualPeer peer(9);
  ASSERT_TRUE(peer.session->established());
  // Re-arm the hold timer at a known instant: the keepalive sent at t=2.0
  // arrives at 2.0 + link latency (1 ms), so expiry is at ~11.001 s.
  peer.queue.run_until(sim::Seconds(2.0));
  peer.send_keepalive();
  // Just short of the 9 s hold time: still up.
  peer.queue.run_until(sim::Seconds(10.9));
  EXPECT_TRUE(peer.session->established());
  // Just past it: hold timer fired, session closed.
  peer.queue.run_until(sim::Seconds(11.1));
  EXPECT_EQ(peer.session->state(), SessionState::kClosed);
}

TEST(SessionTimerTest, KeepalivesResetHoldTimer) {
  ManualPeer peer(9);
  ASSERT_TRUE(peer.session->established());
  // Keepalives every 4 s (< 9 s hold): the session must outlive many hold
  // periods.
  for (int i = 0; i < 10; ++i) {
    peer.queue.run_until(peer.queue.now() + sim::Seconds(4.0));
    ASSERT_TRUE(peer.session->established()) << "died after " << i << " keepalives";
    peer.send_keepalive();
  }
  // Stop feeding it: expiry one hold time later.
  peer.queue.run_until(peer.queue.now() + sim::Seconds(10.0));
  EXPECT_EQ(peer.session->state(), SessionState::kClosed);
}

TEST(SessionTimerTest, UpdatesResetHoldTimerToo) {
  ManualPeer peer(9);
  ASSERT_TRUE(peer.session->established());
  // RFC 4271 §4.4: *any* message restarts the hold timer, not just
  // KEEPALIVE. Feed only UPDATEs.
  for (int i = 0; i < 10; ++i) {
    peer.queue.run_until(peer.queue.now() + sim::Seconds(4.0));
    ASSERT_TRUE(peer.session->established()) << "died after " << i << " updates";
    peer.send_update();
  }
  peer.queue.run_until(peer.queue.now() + sim::Seconds(10.0));
  EXPECT_GE(peer.session->updates_received(), 10u);
  EXPECT_EQ(peer.session->state(), SessionState::kClosed);
}

}  // namespace
}  // namespace stellar::bgp
