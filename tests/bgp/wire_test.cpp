#include "bgp/wire.hpp"

#include <gtest/gtest.h>

namespace stellar::bgp {
namespace {

TEST(ByteWriterTest, BigEndianEncoding) {
  ByteWriter w;
  w.u8(0x01);
  w.u16(0x0203);
  w.u32(0x04050607);
  w.u64(0x08090a0b0c0d0e0fULL);
  const std::vector<std::uint8_t> expected{0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08,
                                           0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f};
  EXPECT_EQ(w.data(), expected);
}

TEST(ByteWriterTest, PatchU16) {
  ByteWriter w;
  w.u16(0);
  w.u8(0xaa);
  w.patch_u16(0, 0x1234);
  EXPECT_EQ(w.data(), (std::vector<std::uint8_t>{0x12, 0x34, 0xaa}));
}

TEST(ByteWriterTest, PatchOutOfRangeThrows) {
  ByteWriter w;
  w.u8(0);
  EXPECT_THROW(w.patch_u16(5, 1), std::out_of_range);
}

TEST(ByteReaderTest, ReadsBackWhatWriterWrote) {
  ByteWriter w;
  w.u8(7);
  w.u16(300);
  w.u32(70000);
  w.u64(1ULL << 40);
  ByteReader r(w.data());
  EXPECT_EQ(*r.u8(), 7);
  EXPECT_EQ(*r.u16(), 300);
  EXPECT_EQ(*r.u32(), 70000u);
  EXPECT_EQ(*r.u64(), 1ULL << 40);
  EXPECT_TRUE(r.empty());
}

TEST(ByteReaderTest, TruncationIsAnErrorNotUb) {
  const std::vector<std::uint8_t> buf{0x01};
  ByteReader r(buf);
  EXPECT_FALSE(r.u16().ok());
  // The failed read must not consume anything.
  EXPECT_EQ(r.remaining(), 1u);
  EXPECT_TRUE(r.u8().ok());
  EXPECT_FALSE(r.u8().ok());
}

TEST(ByteReaderTest, SubReaderScopesBytes) {
  const std::vector<std::uint8_t> buf{1, 2, 3, 4, 5};
  ByteReader r(buf);
  auto sub = r.sub(3);
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub->remaining(), 3u);
  EXPECT_EQ(*sub->u8(), 1);
  EXPECT_EQ(r.remaining(), 2u);
  EXPECT_EQ(*r.u8(), 4);
}

TEST(ByteReaderTest, SubTooLargeFails) {
  const std::vector<std::uint8_t> buf{1, 2};
  ByteReader r(buf);
  EXPECT_FALSE(r.sub(3).ok());
  EXPECT_EQ(r.remaining(), 2u);
}

TEST(ByteReaderTest, BytesExact) {
  const std::vector<std::uint8_t> buf{9, 8, 7};
  ByteReader r(buf);
  auto v = r.bytes(2);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, (std::vector<std::uint8_t>{9, 8}));
  EXPECT_EQ(r.remaining(), 1u);
}

}  // namespace
}  // namespace stellar::bgp
