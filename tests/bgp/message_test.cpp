#include "bgp/message.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace stellar::bgp {
namespace {

net::Prefix4 P4(const char* text) { return net::Prefix4::Parse(text).value(); }

TEST(CommunityTest, WellKnownValues) {
  EXPECT_EQ(kBlackhole.asn(), 65535);
  EXPECT_EQ(kBlackhole.value(), 666);
  EXPECT_EQ(kBlackhole.str(), "65535:666");
  EXPECT_EQ(kNoExport.raw(), 0xFFFFFF01u);
}

TEST(ExtendedCommunityTest, TwoOctetAsLayout) {
  const auto ec = ExtendedCommunity::TwoOctetAs(0x80, 64500, 0x0200007B);
  EXPECT_EQ(ec.type(), ExtendedCommunity::kTypeTwoOctetAs);
  EXPECT_TRUE(ec.transitive());
  EXPECT_EQ(ec.subtype(), 0x80);
  EXPECT_EQ(ec.as_number(), 64500);
  EXPECT_EQ(ec.local_admin(), 0x0200007Bu);
}

TEST(ExtendedCommunityTest, NonTransitiveBit) {
  const auto ec = ExtendedCommunity::TwoOctetAs(1, 1, 1, /*transitive=*/false);
  EXPECT_FALSE(ec.transitive());
}

TEST(ExtendedCommunityTest, FlowspecTrafficRateRoundTrip) {
  const auto ec = ExtendedCommunity::FlowspecTrafficRate(64500, 12'500'000.0f);
  EXPECT_EQ(ec.subtype(), ExtendedCommunity::kSubTypeFlowspecTrafficRate);
  EXPECT_FLOAT_EQ(ec.traffic_rate_bytes_per_second(), 12'500'000.0f);
  EXPECT_FLOAT_EQ(ExtendedCommunity::FlowspecTrafficRate(1, 0.0f).traffic_rate_bytes_per_second(),
                  0.0f);
}

TEST(OpenMessageTest, EncodeDecodeRoundTrip) {
  OpenMessage open;
  open.my_asn = 64500;
  open.hold_time_s = 90;
  open.bgp_identifier = net::IPv4Address(10, 0, 0, 1);
  open.add_four_octet_as_capability();
  open.add_multiprotocol_capability(kAfiIPv4, kSafiUnicast);
  const AddPathTuple tuple{kAfiIPv4, kSafiUnicast, 3};
  open.add_add_path_capability({&tuple, 1});

  const auto bytes = Encode(open);
  const auto decoded = Decode(bytes);
  ASSERT_TRUE(decoded.ok());
  const auto& m = std::get<OpenMessage>(*decoded);
  EXPECT_EQ(m.my_asn, 64500u);
  EXPECT_EQ(m.hold_time_s, 90);
  EXPECT_EQ(m.bgp_identifier, net::IPv4Address(10, 0, 0, 1));
  EXPECT_TRUE(m.supports_multiprotocol(kAfiIPv4, kSafiUnicast));
  ASSERT_EQ(m.add_path_tuples().size(), 1u);
  EXPECT_EQ(m.add_path_tuples()[0].send_receive, 3);
}

TEST(OpenMessageTest, FourOctetAsnUsesAsTrans) {
  OpenMessage open;
  open.my_asn = 200'000;  // Needs 4 octets.
  open.add_four_octet_as_capability();
  const auto bytes = Encode(open);
  // Wire 2-octet field must be AS_TRANS.
  EXPECT_EQ((bytes[kHeaderSize + 1] << 8) | bytes[kHeaderSize + 2], kAsTrans);
  const auto decoded = Decode(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(std::get<OpenMessage>(*decoded).my_asn, 200'000u);
}

TEST(KeepaliveTest, RoundTrip) {
  const auto bytes = Encode(KeepaliveMessage{});
  EXPECT_EQ(bytes.size(), kHeaderSize);
  const auto decoded = Decode(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(std::holds_alternative<KeepaliveMessage>(*decoded));
}

TEST(NotificationTest, RoundTrip) {
  NotificationMessage n;
  n.code = NotificationCode::kHoldTimerExpired;
  n.subcode = 0;
  n.data = {1, 2, 3};
  const auto decoded = Decode(Encode(n));
  ASSERT_TRUE(decoded.ok());
  const auto& m = std::get<NotificationMessage>(*decoded);
  EXPECT_EQ(m.code, NotificationCode::kHoldTimerExpired);
  EXPECT_EQ(m.data, (std::vector<std::uint8_t>{1, 2, 3}));
}

UpdateMessage RichUpdate() {
  UpdateMessage u;
  u.attrs.origin = Origin::kIgp;
  u.attrs.as_path = {{AsPathSegment::Type::kSequence, {65001, 200'000}},
                     {AsPathSegment::Type::kSet, {65002, 65003}}};
  u.attrs.next_hop = net::IPv4Address(10, 0, 0, 9);
  u.attrs.med = 50;
  u.attrs.local_pref = 200;
  u.attrs.atomic_aggregate = true;
  u.attrs.aggregator = {65001, net::IPv4Address(10, 0, 0, 9)};
  u.attrs.communities = {kBlackhole, Community(0, 64500)};
  u.attrs.extended_communities = {ExtendedCommunity::TwoOctetAs(0x80, 64500, 123)};
  u.attrs.large_communities = {{64500, 1, 2}};
  u.announced = {{0, P4("100.10.10.10/32")}, {0, P4("60.1.0.0/20")}};
  u.withdrawn = {{0, P4("60.2.0.0/20")}};
  return u;
}

TEST(UpdateMessageTest, FullRoundTrip) {
  const UpdateMessage u = RichUpdate();
  const auto decoded = Decode(Encode(u));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(std::get<UpdateMessage>(*decoded), u);
}

TEST(UpdateMessageTest, AddPathRoundTrip) {
  CodecOptions opts;
  opts.add_path_ipv4_unicast = true;
  UpdateMessage u = RichUpdate();
  u.announced = {{7, P4("100.10.10.10/32")}, {9, P4("100.10.10.10/32")}};
  u.withdrawn = {{3, P4("60.2.0.0/20")}};
  const auto decoded = Decode(Encode(u, opts), opts);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(std::get<UpdateMessage>(*decoded), u);
}

TEST(UpdateMessageTest, AddPathMismatchFailsCleanly) {
  CodecOptions with;
  with.add_path_ipv4_unicast = true;
  UpdateMessage u;
  u.attrs.origin = Origin::kIgp;
  u.attrs.next_hop = net::IPv4Address(1, 1, 1, 1);
  u.announced = {{42, P4("1.2.3.0/24")}};
  const auto bytes = Encode(u, with);
  // Decoding with the wrong negotiated state must error or mis-parse, never crash.
  const auto decoded = Decode(bytes, CodecOptions{});
  if (decoded.ok()) {
    EXPECT_NE(std::get<UpdateMessage>(*decoded), u);
  }
}

TEST(UpdateMessageTest, TwoOctetAsPathEncoding) {
  CodecOptions opts;
  opts.four_octet_as = false;
  UpdateMessage u;
  u.attrs.origin = Origin::kEgp;
  u.attrs.as_path = {{AsPathSegment::Type::kSequence, {65001, 200'000}}};
  u.attrs.next_hop = net::IPv4Address(1, 1, 1, 1);
  u.announced = {{0, P4("1.2.3.0/24")}};
  const auto decoded = Decode(Encode(u, opts), opts);
  ASSERT_TRUE(decoded.ok());
  const auto& path = std::get<UpdateMessage>(*decoded).attrs.as_path;
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path[0].asns[0], 65001u);
  EXPECT_EQ(path[0].asns[1], kAsTrans);  // 4-octet ASN collapses to AS_TRANS.
}

TEST(UpdateMessageTest, MpReachIPv6RoundTrip) {
  UpdateMessage u;
  u.attrs.origin = Origin::kIgp;
  u.attrs.as_path = {{AsPathSegment::Type::kSequence, {65001}}};
  MpReachIPv6 reach;
  reach.next_hop = net::IPv6Address::Parse("2001:db8::1").value();
  reach.nlri = {net::Prefix6::Parse("2001:db8:1::/48").value(),
                net::Prefix6::Parse("::/0").value()};
  u.attrs.mp_reach_ipv6 = reach;
  MpUnreachIPv6 unreach;
  unreach.withdrawn = {net::Prefix6::Parse("2001:db8:2::/48").value()};
  u.attrs.mp_unreach_ipv6 = unreach;
  const auto decoded = Decode(Encode(u));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(std::get<UpdateMessage>(*decoded), u);
}

TEST(UpdateMessageTest, UnrecognizedOptionalAttributePreserved) {
  UpdateMessage u;
  u.attrs.origin = Origin::kIgp;
  u.attrs.next_hop = net::IPv4Address(1, 1, 1, 1);
  u.attrs.unrecognized = {{0xC0, 99, {0xde, 0xad}}};
  u.announced = {{0, P4("9.9.9.0/24")}};
  const auto decoded = Decode(Encode(u));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(std::get<UpdateMessage>(*decoded).attrs.unrecognized, u.attrs.unrecognized);
}

TEST(UpdateMessageTest, EndOfRibMarker) {
  UpdateMessage eor;
  EXPECT_TRUE(eor.is_end_of_rib());
  const auto decoded = Decode(Encode(eor));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(std::get<UpdateMessage>(*decoded).is_end_of_rib());
}

TEST(DecodeTest, RejectsBadMarker) {
  auto bytes = Encode(KeepaliveMessage{});
  bytes[0] = 0x00;
  EXPECT_FALSE(Decode(bytes).ok());
}

TEST(DecodeTest, RejectsBadLength) {
  auto bytes = Encode(KeepaliveMessage{});
  bytes[16] = 0xff;
  bytes[17] = 0xff;  // 65535 > kMaxMessageSize.
  EXPECT_FALSE(Decode(bytes).ok());
}

TEST(DecodeTest, RejectsUnknownType) {
  auto bytes = Encode(KeepaliveMessage{});
  bytes[18] = 99;
  EXPECT_FALSE(Decode(bytes).ok());
}

TEST(DecodeTest, RejectsTruncatedAttributes) {
  UpdateMessage u = RichUpdate();
  auto bytes = Encode(u);
  // Corrupt the total-path-attributes length to exceed the message.
  // Withdrawn-routes length is at kHeaderSize; find the attr length field.
  const std::size_t wlen = (bytes[kHeaderSize] << 8) | bytes[kHeaderSize + 1];
  const std::size_t attr_len_pos = kHeaderSize + 2 + wlen;
  bytes[attr_len_pos] = 0xff;
  bytes[attr_len_pos + 1] = 0xff;
  EXPECT_FALSE(Decode(bytes).ok());
}

TEST(DecodeFramedTest, NeedsMoreBytes) {
  const auto bytes = Encode(KeepaliveMessage{});
  const auto partial = DecodeFramed({bytes.data(), bytes.size() - 1});
  ASSERT_TRUE(partial.ok());
  EXPECT_FALSE(partial->message.has_value());
  EXPECT_EQ(partial->consumed, 0u);
}

TEST(DecodeFramedTest, ConsumesExactlyOneMessage) {
  auto bytes = Encode(KeepaliveMessage{});
  const auto second = Encode(KeepaliveMessage{});
  bytes.insert(bytes.end(), second.begin(), second.end());
  const auto framed = DecodeFramed(bytes);
  ASSERT_TRUE(framed.ok());
  ASSERT_TRUE(framed->message.has_value());
  EXPECT_EQ(framed->consumed, kHeaderSize);
}

TEST(EncodeTest, OversizedUpdateThrows) {
  UpdateMessage u;
  u.attrs.origin = Origin::kIgp;
  u.attrs.next_hop = net::IPv4Address(1, 1, 1, 1);
  for (int i = 0; i < 2000; ++i) {
    u.announced.push_back(
        {0, net::Prefix4(net::IPv4Address(static_cast<std::uint32_t>(i) << 8), 24)});
  }
  EXPECT_THROW(Encode(u), std::length_error);
}

TEST(PathAttributesTest, Helpers) {
  PathAttributes attrs;
  attrs.as_path = {{AsPathSegment::Type::kSequence, {1, 2, 3}},
                   {AsPathSegment::Type::kSet, {4, 5}}};
  EXPECT_EQ(attrs.as_path_length(), 4u);  // Set counts as one hop.
  EXPECT_EQ(attrs.origin_asn(), 3u);
  attrs.add_community(kBlackhole);
  attrs.add_community(kBlackhole);
  EXPECT_EQ(attrs.communities.size(), 1u);
  EXPECT_TRUE(attrs.has_community(kBlackhole));
  attrs.remove_community(kBlackhole);
  EXPECT_FALSE(attrs.has_community(kBlackhole));
  attrs.prepend_asn(99);
  EXPECT_EQ(attrs.as_path.front().asns.front(), 99u);
}

TEST(PathAttributesTest, OriginAsnEmptyPath) {
  PathAttributes attrs;
  EXPECT_FALSE(attrs.origin_asn().has_value());
  attrs.as_path = {{AsPathSegment::Type::kSet, {1}}};
  EXPECT_FALSE(attrs.origin_asn().has_value());
}

// Property sweep: random updates round-trip bit-exactly under both codec
// configurations.
class UpdateRoundTripTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UpdateRoundTripTest, RandomizedRoundTrip) {
  util::Rng rng(GetParam());
  for (int iter = 0; iter < 50; ++iter) {
    CodecOptions opts;
    opts.add_path_ipv4_unicast = rng.chance(0.5);
    UpdateMessage u;
    u.attrs.origin = static_cast<Origin>(rng.uniform_int(0, 2));
    AsPathSegment seg;
    seg.type = AsPathSegment::Type::kSequence;
    const int hops = static_cast<int>(rng.uniform_int(1, 5));
    for (int i = 0; i < hops; ++i) {
      seg.asns.push_back(static_cast<Asn>(rng.uniform_int(1, 4'000'000'000ll)));
    }
    u.attrs.as_path.push_back(seg);
    u.attrs.next_hop = net::IPv4Address(static_cast<std::uint32_t>(
        rng.uniform_int(1, 0xfffffffell)));
    if (rng.chance(0.5)) u.attrs.med = static_cast<std::uint32_t>(rng.uniform_int(0, 1000));
    if (rng.chance(0.5)) {
      u.attrs.local_pref = static_cast<std::uint32_t>(rng.uniform_int(0, 1000));
    }
    const int ncomm = static_cast<int>(rng.uniform_int(0, 6));
    for (int i = 0; i < ncomm; ++i) {
      u.attrs.add_community(Community(static_cast<std::uint16_t>(rng.uniform_int(0, 0xffff)),
                                      static_cast<std::uint16_t>(rng.uniform_int(0, 0xffff))));
    }
    const int necs = static_cast<int>(rng.uniform_int(0, 3));
    for (int i = 0; i < necs; ++i) {
      u.attrs.extended_communities.push_back(ExtendedCommunity::TwoOctetAs(
          static_cast<std::uint8_t>(rng.uniform_int(0, 255)),
          static_cast<std::uint16_t>(rng.uniform_int(0, 0xffff)),
          static_cast<std::uint32_t>(rng.uniform_int(0, 0xffffffffll))));
    }
    const int nannounce = static_cast<int>(rng.uniform_int(0, 8));
    for (int i = 0; i < nannounce; ++i) {
      u.announced.push_back(
          {opts.add_path_ipv4_unicast ? static_cast<PathId>(rng.uniform_int(1, 100)) : 0,
           net::Prefix4(
               net::IPv4Address(static_cast<std::uint32_t>(rng.uniform_int(0, 0xffffffffll))),
               static_cast<std::uint8_t>(rng.uniform_int(0, 32)))});
    }
    const auto decoded = Decode(Encode(u, opts), opts);
    ASSERT_TRUE(decoded.ok()) << decoded.error().message;
    EXPECT_EQ(std::get<UpdateMessage>(*decoded), u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UpdateRoundTripTest, ::testing::Values(101, 202, 303, 404, 505));

}  // namespace
}  // namespace stellar::bgp
