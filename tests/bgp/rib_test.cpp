#include "bgp/rib.hpp"

#include <gtest/gtest.h>

namespace stellar::bgp {
namespace {

net::Prefix4 P4(const char* text) { return net::Prefix4::Parse(text).value(); }

Route MakeRoute(const char* prefix, PeerId peer, PathId path_id = 0, Asn origin = 65001) {
  Route r;
  r.prefix = P4(prefix);
  r.peer = peer;
  r.path_id = path_id;
  r.attrs.origin = Origin::kIgp;
  r.attrs.as_path = {{AsPathSegment::Type::kSequence, {origin}}};
  r.attrs.next_hop = net::IPv4Address(10, 0, 0, 1);
  return r;
}

TEST(RibTest, InsertAndLookup) {
  Rib rib;
  EXPECT_TRUE(rib.insert(MakeRoute("60.1.0.0/20", 1)));
  EXPECT_EQ(rib.size(), 1u);
  EXPECT_EQ(rib.routes_for(P4("60.1.0.0/20")).size(), 1u);
  EXPECT_TRUE(rib.routes_for(P4("60.2.0.0/20")).empty());
}

TEST(RibTest, ReinsertSameAttributesIsNoChange) {
  Rib rib;
  EXPECT_TRUE(rib.insert(MakeRoute("60.1.0.0/20", 1)));
  EXPECT_FALSE(rib.insert(MakeRoute("60.1.0.0/20", 1)));
  Route modified = MakeRoute("60.1.0.0/20", 1);
  modified.attrs.med = 10;
  EXPECT_TRUE(rib.insert(modified));
  EXPECT_EQ(rib.size(), 1u);
}

TEST(RibTest, AddPathKeepsMultiplePathsPerPrefixAndPeer) {
  Rib rib;
  rib.insert(MakeRoute("100.10.10.10/32", 1, 1));
  rib.insert(MakeRoute("100.10.10.10/32", 1, 2));
  rib.insert(MakeRoute("100.10.10.10/32", 2, 1));
  EXPECT_EQ(rib.routes_for(P4("100.10.10.10/32")).size(), 3u);
}

TEST(RibTest, WithdrawSpecificPath) {
  Rib rib;
  rib.insert(MakeRoute("100.10.10.10/32", 1, 1));
  rib.insert(MakeRoute("100.10.10.10/32", 1, 2));
  EXPECT_TRUE(rib.withdraw(P4("100.10.10.10/32"), 1, 1));
  EXPECT_FALSE(rib.withdraw(P4("100.10.10.10/32"), 1, 1));
  EXPECT_EQ(rib.routes_for(P4("100.10.10.10/32")).size(), 1u);
}

TEST(RibTest, WithdrawPeerRemovesAll) {
  Rib rib;
  rib.insert(MakeRoute("60.1.0.0/20", 1));
  rib.insert(MakeRoute("60.2.0.0/20", 1));
  rib.insert(MakeRoute("60.3.0.0/20", 2));
  EXPECT_EQ(rib.withdraw_peer(1), 2u);
  EXPECT_EQ(rib.size(), 1u);
}

TEST(RibTest, ApplyUpdate) {
  Rib rib;
  UpdateMessage u;
  u.attrs.origin = Origin::kIgp;
  u.attrs.next_hop = net::IPv4Address(1, 1, 1, 1);
  u.announced = {{0, P4("60.1.0.0/20")}, {0, P4("60.2.0.0/20")}};
  EXPECT_EQ(rib.apply_update(3, u), 2u);
  UpdateMessage w;
  w.withdrawn = {{0, P4("60.1.0.0/20")}};
  EXPECT_EQ(rib.apply_update(3, w), 1u);
  EXPECT_EQ(rib.size(), 1u);
}

TEST(BetterPathTest, DecisionProcessOrder) {
  Route base = MakeRoute("60.1.0.0/20", 2);

  Route higher_lp = base;
  higher_lp.attrs.local_pref = 200;
  EXPECT_TRUE(BetterPath(higher_lp, base));  // Default local-pref = 100.

  Route shorter = base;
  shorter.attrs.as_path = {{AsPathSegment::Type::kSequence, {1}}};
  Route longer = base;
  longer.attrs.as_path = {{AsPathSegment::Type::kSequence, {1, 2, 3}}};
  EXPECT_TRUE(BetterPath(shorter, longer));

  Route igp = base;
  igp.attrs.origin = Origin::kIgp;
  Route incomplete = base;
  incomplete.attrs.origin = Origin::kIncomplete;
  EXPECT_TRUE(BetterPath(igp, incomplete));

  Route low_med = base;
  low_med.attrs.med = 1;
  Route high_med = base;
  high_med.attrs.med = 9;
  EXPECT_TRUE(BetterPath(low_med, high_med));

  Route peer1 = MakeRoute("60.1.0.0/20", 1);
  EXPECT_TRUE(BetterPath(peer1, base));  // Deterministic tie-break.
}

TEST(RibTest, BestSelectsByDecisionProcess) {
  Rib rib;
  Route good = MakeRoute("60.1.0.0/20", 2);
  good.attrs.local_pref = 500;
  rib.insert(MakeRoute("60.1.0.0/20", 1));
  rib.insert(good);
  const auto best = rib.best(P4("60.1.0.0/20"));
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->peer, 2u);
  EXPECT_FALSE(rib.best(P4("1.0.0.0/8")).has_value());
}

TEST(RibTest, PrefixesAreDistinctAndSorted) {
  Rib rib;
  rib.insert(MakeRoute("60.2.0.0/20", 1));
  rib.insert(MakeRoute("60.1.0.0/20", 1));
  rib.insert(MakeRoute("60.1.0.0/20", 2));
  const auto prefixes = rib.prefixes();
  ASSERT_EQ(prefixes.size(), 2u);
  EXPECT_EQ(prefixes[0], P4("60.1.0.0/20"));
  EXPECT_EQ(prefixes[1], P4("60.2.0.0/20"));
}

TEST(DiffSnapshotsTest, AddRemoveModify) {
  Rib rib;
  rib.insert(MakeRoute("60.1.0.0/20", 1));
  rib.insert(MakeRoute("60.2.0.0/20", 1));
  const auto before = rib.snapshot();

  rib.withdraw(P4("60.1.0.0/20"), 1);          // Removed.
  Route modified = MakeRoute("60.2.0.0/20", 1);
  modified.attrs.med = 77;
  rib.insert(modified);                        // Modified.
  rib.insert(MakeRoute("60.3.0.0/20", 2));     // Added.
  const auto after = rib.snapshot();

  const RibDiff diff = DiffSnapshots(before, after);
  ASSERT_EQ(diff.added.size(), 1u);
  EXPECT_EQ(diff.added[0].prefix, P4("60.3.0.0/20"));
  ASSERT_EQ(diff.removed.size(), 1u);
  EXPECT_EQ(diff.removed[0].prefix, P4("60.1.0.0/20"));
  ASSERT_EQ(diff.modified.size(), 1u);
  EXPECT_EQ(diff.modified[0].attrs.med, 77u);
  EXPECT_EQ(diff.size(), 3u);
}

TEST(DiffSnapshotsTest, IdenticalSnapshotsAreEmptyDiff) {
  Rib rib;
  rib.insert(MakeRoute("60.1.0.0/20", 1));
  EXPECT_TRUE(DiffSnapshots(rib.snapshot(), rib.snapshot()).empty());
}

TEST(DiffSnapshotsTest, EmptyToFullAndBack) {
  Rib rib;
  rib.insert(MakeRoute("60.1.0.0/20", 1));
  rib.insert(MakeRoute("60.2.0.0/20", 2));
  const auto full = rib.snapshot();
  const RibDiff grow = DiffSnapshots({}, full);
  EXPECT_EQ(grow.added.size(), 2u);
  EXPECT_TRUE(grow.removed.empty());
  const RibDiff shrink = DiffSnapshots(full, {});
  EXPECT_EQ(shrink.removed.size(), 2u);
  EXPECT_TRUE(shrink.added.empty());
}

}  // namespace
}  // namespace stellar::bgp
