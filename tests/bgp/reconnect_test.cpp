#include "bgp/reconnect.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace stellar::bgp {
namespace {

SessionConfig Cfg(Asn asn, std::uint8_t id) {
  SessionConfig c;
  c.local_asn = asn;
  c.router_id = net::IPv4Address(10, 0, 0, id);
  return c;
}

/// Accepts one responder session per dial — the route-server stand-in.
struct Responder {
  sim::EventQueue& queue;
  std::vector<std::unique_ptr<Session>> sessions;
  int accepts = 0;

  explicit Responder(sim::EventQueue& q) : queue(q) {}

  std::shared_ptr<Endpoint> accept() {
    ++accepts;
    auto [ea, eb] = MakeLink(queue);
    auto s = std::make_unique<Session>(queue, eb, Cfg(65002, 2));
    s->start();
    sessions.push_back(std::move(s));
    return ea;
  }

  /// Kills the most recent responder session (unexpected close for the peer).
  void kill_current() { sessions.back()->stop(); }
};

ReconnectPolicy FastPolicy() {
  ReconnectPolicy p;
  p.initial_backoff_s = 1.0;
  p.max_backoff_s = 16.0;
  p.backoff_multiplier = 2.0;
  p.jitter_frac = 0.0;  // Exact delays for assertions.
  p.flap_penalty = 0.0;  // Damping isolated in its own tests.
  return p;
}

TEST(ReconnectTest, EstablishesThenRecoversFromUnexpectedClose) {
  sim::EventQueue queue;
  Responder responder(queue);
  ReconnectingSession rs(queue, [&] { return responder.accept(); }, Cfg(65001, 1),
                         FastPolicy());
  int established_count = 0;
  rs.set_established_handler([&](Session&) { ++established_count; });
  rs.start();
  queue.run_until(sim::Seconds(1.0));
  ASSERT_TRUE(rs.established());
  EXPECT_EQ(established_count, 1);

  responder.kill_current();
  queue.run_until(queue.now() + sim::Seconds(5.0));
  EXPECT_TRUE(rs.established());
  EXPECT_EQ(established_count, 2);
  EXPECT_EQ(rs.stats().flaps, 1u);
  EXPECT_EQ(rs.stats().reconnects, 1u);
  EXPECT_EQ(rs.stats().dial_attempts, 2u);
  EXPECT_EQ(responder.accepts, 2);
}

TEST(ReconnectTest, HandlersSurviveReconnect) {
  sim::EventQueue queue;
  Responder responder(queue);
  ReconnectingSession rs(queue, [&] { return responder.accept(); }, Cfg(65001, 1),
                         FastPolicy());
  std::vector<UpdateMessage> received;
  rs.set_update_handler([&](const UpdateMessage& u) { received.push_back(u); });
  rs.start();
  queue.run_until(sim::Seconds(1.0));
  responder.kill_current();
  queue.run_until(queue.now() + sim::Seconds(5.0));
  ASSERT_TRUE(rs.established());

  // An update through the *new* responder session must reach the handler
  // attached before the flap.
  UpdateMessage u;
  u.attrs.origin = Origin::kIgp;
  u.attrs.next_hop = net::IPv4Address(10, 0, 0, 2);
  u.announced = {{0, net::Prefix4::Parse("60.1.0.0/20").value()}};
  responder.sessions.back()->announce(u);
  queue.run_until(queue.now() + sim::Seconds(1.0));
  ASSERT_EQ(received.size(), 1u);
}

TEST(ReconnectTest, BackoffGrowsExponentiallyAndCaps) {
  sim::EventQueue queue;
  // Dead transports: the peer endpoint is closed before handing ours out, so
  // every dial flaps ~one link latency later.
  auto dead_factory = [&queue] {
    auto [ea, eb] = MakeLink(queue);
    eb->close();
    return ea;
  };
  ReconnectingSession rs(queue, dead_factory, Cfg(65001, 1), FastPolicy());
  rs.start();

  std::vector<double> backoffs;
  std::uint64_t seen_flaps = 0;
  // Sample last_backoff_s after each new flap.
  while (backoffs.size() < 7) {
    queue.run_until(queue.now() + sim::Seconds(0.5));
    if (rs.stats().flaps > seen_flaps) {
      seen_flaps = rs.stats().flaps;
      backoffs.push_back(rs.stats().last_backoff_s);
    }
  }
  // 1, 2, 4, 8, 16, then capped at max_backoff_s = 16.
  EXPECT_DOUBLE_EQ(backoffs[0], 1.0);
  EXPECT_DOUBLE_EQ(backoffs[1], 2.0);
  EXPECT_DOUBLE_EQ(backoffs[2], 4.0);
  EXPECT_DOUBLE_EQ(backoffs[3], 8.0);
  EXPECT_DOUBLE_EQ(backoffs[4], 16.0);
  EXPECT_DOUBLE_EQ(backoffs[5], 16.0);
  EXPECT_DOUBLE_EQ(backoffs[6], 16.0);
}

TEST(ReconnectTest, JitterIsDeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    sim::EventQueue queue;
    auto dead_factory = [&queue] {
      auto [ea, eb] = MakeLink(queue);
      eb->close();
      return ea;
    };
    ReconnectPolicy p = FastPolicy();
    p.jitter_frac = 0.25;
    p.seed = seed;
    ReconnectingSession rs(queue, dead_factory, Cfg(65001, 1), p);
    rs.start();
    queue.run_until(sim::Seconds(40.0));
    return std::pair{rs.stats().dial_attempts, rs.stats().last_backoff_s};
  };
  const auto [attempts1, backoff1] = run(7);
  const auto [attempts2, backoff2] = run(7);
  EXPECT_EQ(attempts1, attempts2);
  EXPECT_DOUBLE_EQ(backoff1, backoff2);
  // Jitter is real: delays deviate from the exact exponential sequence.
  EXPECT_NE(backoff1, 1.0);
  EXPECT_NE(backoff1, 2.0);
}

TEST(ReconnectTest, GivesUpAfterMaxRetries) {
  sim::EventQueue queue;
  auto dead_factory = [&queue] {
    auto [ea, eb] = MakeLink(queue);
    eb->close();
    return ea;
  };
  ReconnectPolicy p = FastPolicy();
  p.max_retries = 3;
  ReconnectingSession rs(queue, dead_factory, Cfg(65001, 1), p);
  rs.start();
  queue.run_until(sim::Seconds(300.0));
  // First dial + 3 retries, then permanent give-up.
  EXPECT_EQ(rs.stats().dial_attempts, 4u);
  EXPECT_EQ(rs.stats().give_ups, 1u);
  EXPECT_FALSE(rs.established());
}

TEST(ReconnectTest, MaxRetriesZeroIsOneShot) {
  sim::EventQueue queue;
  Responder responder(queue);
  ReconnectPolicy p = FastPolicy();
  p.max_retries = 0;
  ReconnectingSession rs(queue, [&] { return responder.accept(); }, Cfg(65001, 1), p);
  rs.start();
  queue.run_until(sim::Seconds(1.0));
  ASSERT_TRUE(rs.established());
  responder.kill_current();
  queue.run_until(queue.now() + sim::Seconds(60.0));
  EXPECT_FALSE(rs.established());
  EXPECT_EQ(rs.stats().dial_attempts, 1u);
  EXPECT_EQ(rs.stats().give_ups, 1u);
}

TEST(ReconnectTest, StopIsNotAFlap) {
  sim::EventQueue queue;
  Responder responder(queue);
  ReconnectingSession rs(queue, [&] { return responder.accept(); }, Cfg(65001, 1),
                         FastPolicy());
  rs.start();
  queue.run_until(sim::Seconds(1.0));
  ASSERT_TRUE(rs.established());
  rs.stop();
  queue.run_until(queue.now() + sim::Seconds(60.0));
  EXPECT_FALSE(rs.established());
  EXPECT_EQ(rs.stats().flaps, 0u);
  EXPECT_EQ(rs.stats().dial_attempts, 1u);
}

TEST(ReconnectTest, NullFactoryAbortsRecovery) {
  sim::EventQueue queue;
  Responder responder(queue);
  int dials = 0;
  ReconnectingSession rs(
      queue,
      [&]() -> std::shared_ptr<Endpoint> {
        return ++dials == 1 ? responder.accept() : nullptr;
      },
      Cfg(65001, 1), FastPolicy());
  rs.start();
  queue.run_until(sim::Seconds(1.0));
  responder.kill_current();
  queue.run_until(queue.now() + sim::Seconds(60.0));
  EXPECT_FALSE(rs.established());
  EXPECT_EQ(rs.stats().give_ups, 1u);
}

// ---- Flap damping ----------------------------------------------------------

TEST(FlapDampingTest, PenaltyDecaysWithHalfLife) {
  ReconnectPolicy p;
  p.flap_penalty = 1000.0;
  p.half_life_s = 60.0;
  FlapDamping d(p);
  d.record_flap(0.0);
  EXPECT_DOUBLE_EQ(d.penalty(0.0), 1000.0);
  EXPECT_DOUBLE_EQ(d.penalty(60.0), 500.0);
  EXPECT_DOUBLE_EQ(d.penalty(120.0), 250.0);
}

TEST(FlapDampingTest, SuppressesAboveThresholdReusesBelow) {
  ReconnectPolicy p;
  p.flap_penalty = 1000.0;
  p.suppress_threshold = 3000.0;
  p.reuse_threshold = 1500.0;
  p.half_life_s = 60.0;
  FlapDamping d(p);
  d.record_flap(0.0);
  d.record_flap(1.0);
  EXPECT_FALSE(d.suppressed(1.0));  // ~1988 < 3000.
  d.record_flap(2.0);
  EXPECT_FALSE(d.suppressed(2.0));  // ~2965: decay kept it just under.
  d.record_flap(3.0);
  EXPECT_TRUE(d.suppressed(3.0));  // ~3931 >= 3000.
  // Decay from ~3931 to 1500 takes log2(3931/1500) ~= 1.39 half-lives.
  EXPECT_TRUE(d.suppressed(30.0));
  EXPECT_FALSE(d.suppressed(3.0 + 90.0));
}

TEST(FlapDampingTest, ReuseDelayMatchesDecayMath) {
  ReconnectPolicy p;
  p.flap_penalty = 3000.0;
  p.suppress_threshold = 3000.0;
  p.reuse_threshold = 1500.0;
  p.half_life_s = 60.0;
  FlapDamping d(p);
  d.record_flap(0.0);
  ASSERT_TRUE(d.suppressed(0.0));
  EXPECT_NEAR(d.reuse_delay(0.0), 60.0, 1e-9);  // One half-life to halve.
  EXPECT_DOUBLE_EQ(d.reuse_delay(120.0), 0.0);  // Already below reuse.
}

TEST(FlapDampingTest, MaxSuppressCapsEpisode) {
  ReconnectPolicy p;
  p.flap_penalty = 1e9;  // Would take ages to decay...
  p.suppress_threshold = 3000.0;
  p.reuse_threshold = 1500.0;
  p.half_life_s = 60.0;
  p.max_suppress_s = 100.0;  // ...but the cap ends the episode.
  FlapDamping d(p);
  d.record_flap(0.0);
  ASSERT_TRUE(d.suppressed(50.0));
  EXPECT_FALSE(d.suppressed(101.0));
  EXPECT_LE(d.reuse_delay(0.0), 100.0);
}

TEST(ReconnectTest, RapidFlapsAreDampened) {
  sim::EventQueue queue;
  Responder responder(queue);
  ReconnectPolicy p = FastPolicy();
  p.flap_penalty = 1000.0;
  p.suppress_threshold = 3000.0;
  p.reuse_threshold = 1500.0;
  p.half_life_s = 60.0;
  ReconnectingSession rs(queue, [&] { return responder.accept(); }, Cfg(65001, 1), p);
  rs.start();
  // Kill every session as soon as it establishes, ~10x/min.
  for (int i = 0; i < 10; ++i) {
    queue.run_until(queue.now() + sim::Seconds(6.0));
    if (rs.established()) responder.kill_current();
  }
  queue.run_until(queue.now() + sim::Seconds(1.0));
  EXPECT_GE(rs.stats().flaps, 3u);
  EXPECT_GE(rs.stats().suppressed_dials, 1u);
  // While suppressed, the scheduled delay is the damping reuse delay, far
  // beyond plain backoff.
  EXPECT_GT(rs.stats().last_backoff_s, 16.0);
}

}  // namespace
}  // namespace stellar::bgp
