#include "bgp/flowspec.hpp"

#include <gtest/gtest.h>

#include "net/ports.hpp"
#include "util/rng.hpp"

namespace stellar::bgp::flowspec {
namespace {

net::Prefix4 P4(const char* text) { return net::Prefix4::Parse(text).value(); }

Rule NtpToVictimRule() {
  Rule rule;
  rule.components.push_back({ComponentType::kDstPrefix, P4("100.10.10.10/32"), {}});
  rule.components.push_back({ComponentType::kIpProtocol, {}, {Eq(17)}});
  rule.components.push_back({ComponentType::kSrcPort, {}, {Eq(net::kPortNtp)}});
  return rule;
}

net::FlowKey NtpFlow() {
  net::FlowKey k;
  k.src_ip = net::IPv4Address(1, 2, 3, 4);
  k.dst_ip = net::IPv4Address(100, 10, 10, 10);
  k.proto = net::IpProto::kUdp;
  k.src_port = net::kPortNtp;
  k.dst_port = 5555;
  return k;
}

TEST(FlowspecCodecTest, RoundTripSimpleRule) {
  const Rule rule = NtpToVictimRule();
  const auto encoded = EncodeNlri(rule);
  ASSERT_TRUE(encoded.ok());
  const auto decoded = DecodeNlri(*encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->rule, rule);
  EXPECT_EQ(decoded->consumed, encoded->size());
}

TEST(FlowspecCodecTest, RoundTripRangeOperators) {
  Rule rule;
  rule.components.push_back({ComponentType::kDstPrefix, P4("10.0.0.0/8"), {}});
  rule.components.push_back({ComponentType::kDstPort, {}, Range(1024, 2048)});
  const auto encoded = EncodeNlri(rule);
  ASSERT_TRUE(encoded.ok());
  const auto decoded = DecodeNlri(*encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->rule, rule);
}

TEST(FlowspecCodecTest, MultiByteValuesUseWiderEncoding) {
  Rule rule;
  rule.components.push_back({ComponentType::kPacketLength, {}, {Eq(1500)}});
  const auto encoded = EncodeNlri(rule);
  ASSERT_TRUE(encoded.ok());
  const auto decoded = DecodeNlri(*encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->rule.components[0].ops[0].value, 1500u);
}

TEST(FlowspecCodecTest, RejectsOutOfOrderComponents) {
  Rule rule;
  rule.components.push_back({ComponentType::kSrcPort, {}, {Eq(123)}});
  rule.components.push_back({ComponentType::kDstPrefix, P4("1.0.0.0/8"), {}});
  EXPECT_FALSE(EncodeNlri(rule).ok());
}

TEST(FlowspecCodecTest, RejectsEmptyRule) { EXPECT_FALSE(EncodeNlri(Rule{}).ok()); }

TEST(FlowspecCodecTest, RejectsNumericComponentWithoutOps) {
  Rule rule;
  rule.components.push_back({ComponentType::kSrcPort, {}, {}});
  EXPECT_FALSE(EncodeNlri(rule).ok());
}

TEST(FlowspecCodecTest, DecodeRejectsTruncatedOps) {
  const Rule rule = NtpToVictimRule();
  auto encoded = EncodeNlri(rule).value();
  encoded[0] = static_cast<std::uint8_t>(encoded.size() - 2);  // Lie about length.
  encoded.resize(encoded.size() - 1);
  EXPECT_FALSE(DecodeNlri(encoded).ok());
}

TEST(FlowspecMatchTest, MatchesIntendedFlow) {
  const Rule rule = NtpToVictimRule();
  EXPECT_TRUE(rule.matches(NtpFlow()));
}

TEST(FlowspecMatchTest, RejectsWrongPortProtoDst) {
  const Rule rule = NtpToVictimRule();
  auto wrong_port = NtpFlow();
  wrong_port.src_port = 53;
  EXPECT_FALSE(rule.matches(wrong_port));
  auto wrong_proto = NtpFlow();
  wrong_proto.proto = net::IpProto::kTcp;
  EXPECT_FALSE(rule.matches(wrong_proto));
  auto wrong_dst = NtpFlow();
  wrong_dst.dst_ip = net::IPv4Address(100, 10, 10, 11);
  EXPECT_FALSE(rule.matches(wrong_dst));
}

TEST(FlowspecMatchTest, RangeMatchesInclusive) {
  Rule rule;
  rule.components.push_back({ComponentType::kDstPort, {}, Range(1000, 2000)});
  auto flow = NtpFlow();
  flow.dst_port = 1000;
  EXPECT_TRUE(rule.matches(flow));
  flow.dst_port = 2000;
  EXPECT_TRUE(rule.matches(flow));
  flow.dst_port = 999;
  EXPECT_FALSE(rule.matches(flow));
  flow.dst_port = 2001;
  EXPECT_FALSE(rule.matches(flow));
}

TEST(FlowspecMatchTest, OrOfEqualities) {
  // port == 123 OR port == 53.
  Rule rule;
  Component c;
  c.type = ComponentType::kSrcPort;
  c.ops = {Eq(123), Eq(53)};
  rule.components.push_back(c);
  auto flow = NtpFlow();
  EXPECT_TRUE(rule.matches(flow));
  flow.src_port = 53;
  EXPECT_TRUE(rule.matches(flow));
  flow.src_port = 80;
  EXPECT_FALSE(rule.matches(flow));
}

TEST(FlowspecMatchTest, PortComponentMatchesEitherDirection) {
  Rule rule;
  rule.components.push_back({ComponentType::kPort, {}, {Eq(123)}});
  auto flow = NtpFlow();  // src_port = 123.
  EXPECT_TRUE(rule.matches(flow));
  flow.src_port = 9;
  flow.dst_port = 123;
  EXPECT_TRUE(rule.matches(flow));
  flow.dst_port = 9;
  EXPECT_FALSE(rule.matches(flow));
}

TEST(FlowspecActionTest, TrafficRateExtendedCommunity) {
  Action drop{0.0f};
  const auto ec = drop.to_extended_community(64500);
  const auto parsed = Action::from_extended_communities({&ec, 1});
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FLOAT_EQ(*parsed->rate_limit_bytes_per_s, 0.0f);

  Action limit{25'000'000.0f};
  const auto ec2 = limit.to_extended_community(64500);
  const auto parsed2 = Action::from_extended_communities({&ec2, 1});
  ASSERT_TRUE(parsed2.has_value());
  EXPECT_FLOAT_EQ(*parsed2->rate_limit_bytes_per_s, 25'000'000.0f);
}

TEST(FlowspecActionTest, AbsentWhenNoRateCommunity) {
  const auto ec = ExtendedCommunity::TwoOctetAs(0x02, 64500, 1);
  EXPECT_FALSE(Action::from_extended_communities({&ec, 1}).has_value());
}

// Property: random well-formed rules round-trip through the codec.
class FlowspecRoundTripTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlowspecRoundTripTest, RandomRules) {
  util::Rng rng(GetParam());
  for (int iter = 0; iter < 100; ++iter) {
    Rule rule;
    if (rng.chance(0.8)) {
      rule.components.push_back(
          {ComponentType::kDstPrefix,
           net::Prefix4(
               net::IPv4Address(static_cast<std::uint32_t>(rng.uniform_int(0, 0xffffffffll))),
               static_cast<std::uint8_t>(rng.uniform_int(0, 32))),
           {}});
    }
    if (rng.chance(0.5)) {
      rule.components.push_back({ComponentType::kIpProtocol, {}, {Eq(rng.chance(0.5) ? 17 : 6)}});
    }
    if (rng.chance(0.7)) {
      Component c;
      c.type = ComponentType::kSrcPort;
      if (rng.chance(0.5)) {
        c.ops = {Eq(static_cast<std::uint32_t>(rng.uniform_int(0, 65535)))};
      } else {
        const auto lo = static_cast<std::uint32_t>(rng.uniform_int(0, 60000));
        c.ops = Range(lo, lo + static_cast<std::uint32_t>(rng.uniform_int(0, 5000)));
      }
      rule.components.push_back(c);
    }
    if (rule.components.empty()) continue;
    const auto encoded = EncodeNlri(rule);
    ASSERT_TRUE(encoded.ok());
    const auto decoded = DecodeNlri(*encoded);
    ASSERT_TRUE(decoded.ok()) << decoded.error().message;
    EXPECT_EQ(decoded->rule, rule);
    EXPECT_EQ(decoded->consumed, encoded->size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowspecRoundTripTest, ::testing::Values(7, 77, 777));

}  // namespace
}  // namespace stellar::bgp::flowspec
