#include "ixp/irr.hpp"

#include <gtest/gtest.h>

namespace stellar::ixp {
namespace {

net::Prefix4 P4(const char* text) { return net::Prefix4::Parse(text).value(); }

TEST(IrrDatabaseTest, ExactAuthorization) {
  IrrDatabase irr;
  irr.add_route_object(P4("60.1.0.0/20"), 65001);
  EXPECT_TRUE(irr.authorized(P4("60.1.0.0/20"), 65001));
  EXPECT_FALSE(irr.authorized(P4("60.1.0.0/20"), 65002));
  EXPECT_FALSE(irr.authorized(P4("60.2.0.0/20"), 65001));
}

TEST(IrrDatabaseTest, CoveringObjectAuthorizesMoreSpecifics) {
  IrrDatabase irr;
  irr.add_route_object(P4("100.10.10.0/24"), 65001);
  // The /32 blackhole route out of the registered /24 must validate.
  EXPECT_TRUE(irr.authorized(P4("100.10.10.10/32"), 65001));
  EXPECT_FALSE(irr.authorized(P4("100.10.11.10/32"), 65001));
  // A less specific is NOT covered.
  EXPECT_FALSE(irr.authorized(P4("100.10.0.0/16"), 65001));
}

TEST(IrrDatabaseTest, RemoveRouteObject) {
  IrrDatabase irr;
  irr.add_route_object(P4("60.1.0.0/20"), 65001);
  irr.remove_route_object(P4("60.1.0.0/20"), 65001);
  EXPECT_FALSE(irr.authorized(P4("60.1.0.0/20"), 65001));
  EXPECT_EQ(irr.size(), 0u);
}

TEST(IrrDatabaseTest, MultipleOriginsForSamePrefix) {
  IrrDatabase irr;
  irr.add_route_object(P4("60.1.0.0/20"), 65001);
  irr.add_route_object(P4("60.1.0.0/20"), 65002);
  EXPECT_TRUE(irr.authorized(P4("60.1.0.0/20"), 65001));
  EXPECT_TRUE(irr.authorized(P4("60.1.0.0/20"), 65002));
}

TEST(RpkiValidatorTest, ValidInvalidNotFound) {
  RpkiValidator rpki;
  rpki.add_roa({P4("60.1.0.0/20"), 24, 65001});
  EXPECT_EQ(rpki.validate(P4("60.1.0.0/20"), 65001), RpkiState::kValid);
  EXPECT_EQ(rpki.validate(P4("60.1.0.0/24"), 65001), RpkiState::kValid);  // Within maxLength.
  EXPECT_EQ(rpki.validate(P4("60.1.0.0/25"), 65001), RpkiState::kInvalid);  // Too specific.
  EXPECT_EQ(rpki.validate(P4("60.1.0.0/20"), 65002), RpkiState::kInvalid);  // Wrong origin.
  EXPECT_EQ(rpki.validate(P4("61.0.0.0/8"), 65001), RpkiState::kNotFound);
}

TEST(RpkiValidatorTest, AnyMatchingRoaValidates) {
  RpkiValidator rpki;
  rpki.add_roa({P4("60.1.0.0/20"), 20, 65001});
  rpki.add_roa({P4("60.1.0.0/20"), 32, 65002});
  EXPECT_EQ(rpki.validate(P4("60.1.0.0/24"), 65002), RpkiState::kValid);
  EXPECT_EQ(rpki.validate(P4("60.1.0.0/24"), 65001), RpkiState::kInvalid);
}

TEST(BogonListTest, StandardBogonsDetected) {
  const BogonList bogons = BogonList::Standard();
  EXPECT_TRUE(bogons.is_bogon(P4("10.1.2.0/24")));      // RFC 1918 more-specific.
  EXPECT_TRUE(bogons.is_bogon(P4("192.168.0.0/16")));   // Exact.
  EXPECT_TRUE(bogons.is_bogon(P4("0.0.0.0/0")));        // Covers bogons.
  EXPECT_TRUE(bogons.is_bogon(P4("127.0.0.1/32")));
  EXPECT_TRUE(bogons.is_bogon(P4("224.0.0.0/4")));
  EXPECT_FALSE(bogons.is_bogon(P4("60.1.0.0/20")));
  EXPECT_FALSE(bogons.is_bogon(P4("100.10.10.0/24")));
  EXPECT_FALSE(bogons.is_bogon(P4("8.8.8.0/24")));
}

TEST(BogonListTest, CustomBogon) {
  BogonList bogons;
  bogons.add(P4("55.0.0.0/8"));
  EXPECT_TRUE(bogons.is_bogon(P4("55.1.0.0/16")));
  EXPECT_FALSE(bogons.is_bogon(P4("56.0.0.0/8")));
}

}  // namespace
}  // namespace stellar::ixp
