#include "ixp/ixp.hpp"

#include <gtest/gtest.h>

#include "ixp/looking_glass.hpp"

namespace stellar::ixp {
namespace {

net::Prefix4 P4(const char* text) { return net::Prefix4::Parse(text).value(); }

TEST(IxpTest, AddMemberWiresEverything) {
  sim::EventQueue queue;
  Ixp ixp(queue);
  MemberSpec spec;
  spec.asn = 65001;
  spec.port_capacity_mbps = 1000.0;
  spec.address_space = P4("60.1.0.0/20");
  auto& member = ixp.add_member(spec);
  ixp.settle(30.0);

  EXPECT_TRUE(member.session()->established());
  EXPECT_TRUE(ixp.edge_router().has_port(member.info().port));
  EXPECT_TRUE(ixp.irr().authorized(P4("60.1.0.0/20"), 65001));
  EXPECT_TRUE(ixp.irr().authorized(P4("60.1.0.5/32"), 65001));
  filter::PortId port = 0;
  EXPECT_TRUE(ixp.fabric().lookup_egress(net::IPv4Address(60, 1, 0, 5), port));
  EXPECT_EQ(port, member.info().port);
  // The member's own prefix is accepted by the route server.
  EXPECT_EQ(ixp.route_server().adj_rib_in().size(), 1u);
}

TEST(IxpTest, DuplicateAsnRejected) {
  sim::EventQueue queue;
  Ixp ixp(queue);
  MemberSpec spec;
  spec.asn = 65001;
  spec.address_space = P4("60.1.0.0/20");
  ixp.add_member(spec);
  EXPECT_THROW(ixp.add_member(spec), std::invalid_argument);
}

TEST(IxpTest, MemberLookup) {
  sim::EventQueue queue;
  Ixp ixp(queue);
  MemberSpec spec;
  spec.asn = 65001;
  spec.address_space = P4("60.1.0.0/20");
  ixp.add_member(spec);
  EXPECT_NE(ixp.member(65001), nullptr);
  EXPECT_EQ(ixp.member(65002), nullptr);
}

TEST(IxpTest, SourceMembersExcludesVictim) {
  sim::EventQueue queue;
  Ixp ixp(queue);
  for (bgp::Asn asn : {65001u, 65002u, 65003u}) {
    MemberSpec spec;
    spec.asn = asn;
    spec.address_space = net::Prefix4(
        net::IPv4Address((60u << 24) | ((asn - 65001u) << 12)), 20);
    ixp.add_member(spec);
  }
  EXPECT_EQ(ixp.source_members().size(), 3u);
  const auto sources = ixp.source_members(65002);
  EXPECT_EQ(sources.size(), 2u);
  for (const auto& s : sources) {
    EXPECT_NE(s.mac, net::MacAddress::ForRouter(65002));
  }
}

TEST(MakeLargeIxpTest, BuildsConfiguredPopulation) {
  sim::EventQueue queue;
  LargeIxpParams params;
  params.member_count = 60;
  params.rtbh_honor_fraction = 0.3;
  params.seed = 11;
  auto ixp = MakeLargeIxp(queue, params);
  EXPECT_EQ(ixp->members().size(), 60u);
  EXPECT_EQ(ixp->route_server().established_member_sessions(), 60u);
  // All member prefixes accepted.
  EXPECT_EQ(ixp->route_server().adj_rib_in().size(), 60u);
  // Honor fraction roughly matches.
  int honoring = 0;
  for (const auto& m : ixp->members()) {
    if (m->info().policy.honors_rtbh()) ++honoring;
  }
  EXPECT_NEAR(static_cast<double>(honoring) / 60.0, 0.3, 0.15);
  // Address spaces are disjoint /20s.
  for (const auto& m : ixp->members()) EXPECT_EQ(m->info().address_space.length(), 20);
}

TEST(MakeLargeIxpTest, DeterministicForSeed) {
  sim::EventQueue q1;
  sim::EventQueue q2;
  LargeIxpParams params;
  params.member_count = 20;
  params.seed = 5;
  auto a = MakeLargeIxp(q1, params);
  auto b = MakeLargeIxp(q2, params);
  for (std::size_t i = 0; i < a->members().size(); ++i) {
    EXPECT_EQ(a->members()[i]->info().port_capacity_mbps,
              b->members()[i]->info().port_capacity_mbps);
    EXPECT_EQ(a->members()[i]->info().policy.accepts_more_specifics,
              b->members()[i]->info().policy.accepts_more_specifics);
  }
}

TEST(LookingGlassTest, ShowsRoutesAndStatus) {
  sim::EventQueue queue;
  Ixp ixp(queue);
  MemberSpec spec;
  spec.asn = 65001;
  spec.address_space = P4("100.10.10.0/24");
  auto& member = ixp.add_member(spec);
  ixp.settle(30.0);
  member.announce(P4("100.10.10.10/32"), {bgp::kBlackhole});
  ixp.settle(10.0);

  LookingGlass lg(ixp.route_server());
  const auto routes = lg.show_route(P4("100.10.10.10/32"));
  ASSERT_EQ(routes.size(), 1u);
  EXPECT_NE(routes[0].find("AS65001"), std::string::npos);
  EXPECT_NE(routes[0].find("65535:666"), std::string::npos);

  const auto summary = lg.show_rib_summary();
  EXPECT_EQ(summary.size(), 2u);  // /24 and /32.

  const std::string status = lg.show_status();
  EXPECT_NE(status.find("members=1"), std::string::npos);
  EXPECT_NE(status.find("established=1"), std::string::npos);
}

}  // namespace
}  // namespace stellar::ixp
