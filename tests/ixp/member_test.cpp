#include "ixp/member.hpp"

#include <gtest/gtest.h>

namespace stellar::ixp {
namespace {

net::Prefix4 P4(const char* text) { return net::Prefix4::Parse(text).value(); }

const net::IPv4Address kBlackholeIp(10, 99, 0, 66);

struct MemberFixture {
  sim::EventQueue queue;
  MemberInfo info;
  std::unique_ptr<MemberRouter> member;
  std::unique_ptr<bgp::Session> server;  ///< Stand-in for the route server side.
  std::vector<bgp::UpdateMessage> server_received;

  explicit MemberFixture(MemberPolicy policy = {}) {
    info.asn = 65010;
    info.name = "m1";
    info.port = 10;
    info.mac = net::MacAddress::ForRouter(65010);
    info.router_ip = net::IPv4Address(10, 99, 1, 1);
    info.address_space = P4("60.1.0.0/20");
    info.policy = policy;
    member = std::make_unique<MemberRouter>(queue, info, kBlackholeIp);

    auto [server_side, member_side] = bgp::MakeLink(queue);
    bgp::SessionConfig config;
    config.local_asn = 64500;
    config.router_id = net::IPv4Address(10, 99, 0, 1);
    server = std::make_unique<bgp::Session>(queue, server_side, config);
    server->set_update_handler(
        [this](const bgp::UpdateMessage& u) { server_received.push_back(u); });
    server->start();
    member->connect(member_side);
    queue.run_until(sim::Seconds(1.0));
  }

  void push_route(const net::Prefix4& prefix, bool blackhole,
                  std::vector<bgp::Community> communities = {}) {
    bgp::UpdateMessage u;
    u.attrs.origin = bgp::Origin::kIgp;
    u.attrs.as_path = {{bgp::AsPathSegment::Type::kSequence, {65099}}};
    u.attrs.next_hop = blackhole ? kBlackholeIp : net::IPv4Address(10, 99, 2, 2);
    if (blackhole) communities.push_back(bgp::kBlackhole);
    u.attrs.communities = std::move(communities);
    u.announced = {{0, prefix}};
    server->announce(u);
    queue.run_until(queue.now() + sim::Seconds(1.0));
  }
};

TEST(MemberRouterTest, AnnounceBeforeConnectThrows) {
  sim::EventQueue queue;
  MemberInfo info;
  info.asn = 65010;
  info.address_space = P4("60.1.0.0/20");
  MemberRouter router(queue, info, kBlackholeIp);
  EXPECT_THROW(router.announce(P4("60.1.0.0/20")), std::logic_error);
  EXPECT_THROW(router.withdraw(P4("60.1.0.0/20")), std::logic_error);
}

TEST(MemberRouterTest, SessionEstablishes) {
  MemberFixture f;
  EXPECT_TRUE(f.member->session()->established());
  EXPECT_EQ(f.server->peer_asn(), 65010u);
}

TEST(MemberRouterTest, AnnounceCarriesOriginAsPathAndCommunities) {
  MemberFixture f;
  f.member->announce(P4("60.1.0.0/20"), {bgp::Community(0, 64500)},
                     {bgp::ExtendedCommunity::TwoOctetAs(0x80, 64500, 123)});
  f.queue.run_until(sim::Seconds(2.0));
  ASSERT_EQ(f.server_received.size(), 1u);
  const auto& u = f.server_received[0];
  EXPECT_EQ(u.attrs.origin_asn(), 65010u);
  EXPECT_EQ(u.attrs.next_hop, f.info.router_ip);
  EXPECT_TRUE(u.attrs.has_community(bgp::Community(0, 64500)));
  EXPECT_EQ(u.attrs.extended_communities.size(), 1u);
  ASSERT_EQ(u.announced.size(), 1u);
  EXPECT_EQ(u.announced[0].prefix, P4("60.1.0.0/20"));
}

TEST(MemberRouterTest, WithdrawSendsWithdrawal) {
  MemberFixture f;
  f.member->announce(P4("60.1.0.0/20"));
  f.member->withdraw(P4("60.1.0.0/20"));
  f.queue.run_until(sim::Seconds(2.0));
  ASSERT_EQ(f.server_received.size(), 2u);
  ASSERT_EQ(f.server_received[1].withdrawn.size(), 1u);
  EXPECT_EQ(f.server_received[1].withdrawn[0].prefix, P4("60.1.0.0/20"));
}

TEST(MemberRouterTest, DefaultPolicyRejectsMoreSpecificsThanSlash24) {
  MemberFixture f;  // Default: accepts_more_specifics = false.
  f.push_route(P4("100.10.10.10/32"), /*blackhole=*/true);
  EXPECT_FALSE(f.member->blackholes(net::IPv4Address(100, 10, 10, 10)));
  EXPECT_EQ(f.member->rejected_more_specifics(), 1u);
  EXPECT_TRUE(f.member->rib().empty());
}

TEST(MemberRouterTest, HonoringMemberInstallsBlackhole) {
  MemberPolicy policy;
  policy.accepts_more_specifics = true;
  policy.participates_in_rtbh = true;
  MemberFixture f(policy);
  f.push_route(P4("100.10.10.10/32"), /*blackhole=*/true);
  EXPECT_TRUE(f.member->blackholes(net::IPv4Address(100, 10, 10, 10)));
  EXPECT_FALSE(f.member->blackholes(net::IPv4Address(100, 10, 10, 11)));
  EXPECT_TRUE(policy.honors_rtbh());
}

TEST(MemberRouterTest, NonParticipantAcceptsRouteButDoesNotBlackhole) {
  MemberPolicy policy;
  policy.accepts_more_specifics = true;
  policy.participates_in_rtbh = false;
  MemberFixture f(policy);
  f.push_route(P4("100.10.10.10/32"), /*blackhole=*/true);
  EXPECT_FALSE(f.member->blackholes(net::IPv4Address(100, 10, 10, 10)));
  EXPECT_EQ(f.member->rib().size(), 1u);
  EXPECT_FALSE(policy.honors_rtbh());
}

TEST(MemberRouterTest, RegularRouteIsNotBlackholed) {
  MemberPolicy policy;
  policy.accepts_more_specifics = true;
  MemberFixture f(policy);
  f.push_route(P4("61.0.0.0/20"), /*blackhole=*/false);
  EXPECT_FALSE(f.member->blackholes(net::IPv4Address(61, 0, 0, 1)));
  EXPECT_EQ(f.member->rib().size(), 1u);
}

TEST(MemberRouterTest, WithdrawalRemovesBlackhole) {
  MemberPolicy policy;
  policy.accepts_more_specifics = true;
  MemberFixture f(policy);
  f.push_route(P4("100.10.10.10/32"), /*blackhole=*/true);
  ASSERT_TRUE(f.member->blackholes(net::IPv4Address(100, 10, 10, 10)));
  bgp::UpdateMessage w;
  w.withdrawn = {{0, P4("100.10.10.10/32")}};
  f.server->announce(w);
  f.queue.run_until(f.queue.now() + sim::Seconds(1.0));
  EXPECT_FALSE(f.member->blackholes(net::IPv4Address(100, 10, 10, 10)));
}

TEST(MemberRouterTest, ReplacingBlackholeWithRegularRouteClearsIt) {
  MemberPolicy policy;
  policy.accepts_more_specifics = true;
  MemberFixture f(policy);
  f.push_route(P4("100.10.10.10/32"), /*blackhole=*/true);
  ASSERT_TRUE(f.member->blackholes(net::IPv4Address(100, 10, 10, 10)));
  f.push_route(P4("100.10.10.10/32"), /*blackhole=*/false);
  EXPECT_FALSE(f.member->blackholes(net::IPv4Address(100, 10, 10, 10)));
}

}  // namespace
}  // namespace stellar::ixp
