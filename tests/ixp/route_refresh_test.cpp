// ROUTE-REFRESH (RFC 2918) and runtime policy changes — the §2.4 remediation
// story: most members do not honor /32 blackholes because their default
// import policy filters more-specifics; an operator fixing that config must
// regain the filtered routes without bouncing the session.
#include <gtest/gtest.h>

#include "ixp/ixp.hpp"
#include "mitigation/rtbh.hpp"

namespace stellar::ixp {
namespace {

net::Prefix4 P4(const char* text) { return net::Prefix4::Parse(text).value(); }
net::Prefix6 P6(const char* text) { return net::Prefix6::Parse(text).value(); }

struct RefreshFixture {
  sim::EventQueue queue;
  std::unique_ptr<Ixp> ixp;
  MemberRouter* victim;
  MemberRouter* fixable;  ///< Starts with the default (filtering) config.

  RefreshFixture() {
    ixp = std::make_unique<Ixp>(queue);
    MemberSpec v;
    v.asn = 65001;
    v.address_space = P4("100.10.10.0/24");
    v.address_space6 = P6("2001:678:a::/48");
    victim = &ixp->add_member(v);
    MemberSpec f;
    f.asn = 65002;
    f.address_space = P4("60.2.0.0/20");
    f.address_space6 = P6("2001:678:b::/48");
    f.policy.accepts_more_specifics = false;
    fixable = &ixp->add_member(f);
    ixp->settle(30.0);
  }

  void settle() { ixp->settle(10.0); }
};

TEST(RouteRefreshTest, MessageRoundTrip) {
  const bgp::RouteRefreshMessage m{bgp::kAfiIPv6, bgp::kSafiUnicast};
  const auto decoded = bgp::Decode(bgp::Encode(m));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(std::get<bgp::RouteRefreshMessage>(*decoded), m);
  EXPECT_EQ(bgp::Encode(m).size(), bgp::kHeaderSize + 4);
}

TEST(RouteRefreshTest, FixingPolicyRecoversFilteredBlackhole) {
  RefreshFixture f;
  // The attack: victim triggers RTBH; the fixable member filters the /32.
  mitigation::TriggerRtbh(*f.victim, P4("100.10.10.10/32"));
  f.settle();
  EXPECT_FALSE(f.fixable->blackholes(net::IPv4Address(100, 10, 10, 10)));
  EXPECT_GE(f.fixable->rejected_more_specifics(), 1u);

  // The remediation: operator enables the blackhole exception; ROUTE-REFRESH
  // re-delivers the /32 without a session reset.
  MemberPolicy fixed;
  fixed.accepts_more_specifics = true;
  fixed.participates_in_rtbh = true;
  f.fixable->update_policy(fixed);
  f.settle();
  EXPECT_TRUE(f.fixable->blackholes(net::IPv4Address(100, 10, 10, 10)));
  EXPECT_TRUE(f.fixable->session()->established());  // No reset.
}

TEST(RouteRefreshTest, RefreshIsIdempotentForUnchangedPolicy) {
  RefreshFixture f;
  const auto routes_before = f.fixable->rib().size();
  f.fixable->session()->request_route_refresh();
  f.settle();
  EXPECT_EQ(f.fixable->rib().size(), routes_before);
}

TEST(RouteRefreshTest, TighteningPolicyDropsMoreSpecifics) {
  RefreshFixture f;
  MemberPolicy open;
  open.accepts_more_specifics = true;
  f.fixable->update_policy(open);
  mitigation::TriggerRtbh(*f.victim, P4("100.10.10.10/32"));
  f.settle();
  ASSERT_TRUE(f.fixable->blackholes(net::IPv4Address(100, 10, 10, 10)));

  MemberPolicy strict;
  strict.accepts_more_specifics = false;
  f.fixable->update_policy(strict);
  EXPECT_FALSE(f.fixable->blackholes(net::IPv4Address(100, 10, 10, 10)));
  EXPECT_TRUE(f.fixable->rib().routes_for(P4("100.10.10.10/32")).empty());
  f.settle();
  // The refresh re-sent the /32 but the strict policy filters it again.
  EXPECT_FALSE(f.fixable->blackholes(net::IPv4Address(100, 10, 10, 10)));
}

TEST(RouteRefreshTest, Ipv6RefreshRecoversV6Blackhole) {
  RefreshFixture f;
  f.victim->announce6(P6("2001:678:a::1/128"), {bgp::kBlackhole});
  f.settle();
  EXPECT_FALSE(f.fixable->blackholes6(net::IPv6Address::Parse("2001:678:a::1").value()));

  MemberPolicy fixed;
  fixed.accepts_more_specifics = true;
  f.fixable->update_policy(fixed);
  f.settle();
  EXPECT_TRUE(f.fixable->blackholes6(net::IPv6Address::Parse("2001:678:a::1").value()));
}

TEST(RouteRefreshTest, RefreshDoesNotLeakOtherMembersOwnRoutes) {
  RefreshFixture f;
  f.fixable->session()->request_route_refresh();
  f.settle();
  // Still no self-route and no unauthorized routes.
  EXPECT_TRUE(f.fixable->rib().routes_for(P4("60.2.0.0/20")).empty());
  EXPECT_FALSE(f.fixable->rib().routes_for(P4("100.10.10.0/24")).empty());
}

}  // namespace
}  // namespace stellar::ixp
