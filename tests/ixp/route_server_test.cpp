#include "ixp/route_server.hpp"

#include <gtest/gtest.h>

#include "ixp/ixp.hpp"

namespace stellar::ixp {
namespace {

net::Prefix4 P4(const char* text) { return net::Prefix4::Parse(text).value(); }

/// Small IXP with three members: m1 (victim, honors RTBH irrelevant), m2
/// honors RTBH, m3 does not accept more-specifics.
struct RsFixture {
  sim::EventQueue queue;
  std::unique_ptr<Ixp> ixp;
  MemberRouter* m1;
  MemberRouter* m2;
  MemberRouter* m3;

  RsFixture() {
    ixp = std::make_unique<Ixp>(queue);
    MemberSpec s1;
    s1.asn = 65001;
    s1.address_space = P4("100.10.10.0/24");
    s1.policy.accepts_more_specifics = true;
    m1 = &ixp->add_member(s1);
    MemberSpec s2;
    s2.asn = 65002;
    s2.address_space = P4("60.2.0.0/20");
    s2.policy.accepts_more_specifics = true;
    s2.policy.participates_in_rtbh = true;
    m2 = &ixp->add_member(s2);
    MemberSpec s3;
    s3.asn = 65003;
    s3.address_space = P4("60.3.0.0/20");
    s3.policy.accepts_more_specifics = false;
    m3 = &ixp->add_member(s3);
    ixp->settle(30.0);
  }

  RouteServer& rs() { return ixp->route_server(); }
  void settle() { ixp->settle(10.0); }
};

TEST(RouteServerTest, SessionsEstablishAndPrefixesPropagate) {
  RsFixture f;
  EXPECT_EQ(f.rs().established_member_sessions(), 3u);
  EXPECT_EQ(f.rs().adj_rib_in().size(), 3u);  // One prefix per member.
  // m2 sees m1's and m3's prefixes, not its own.
  EXPECT_EQ(f.m2->rib().size(), 2u);
  EXPECT_FALSE(f.m2->rib().routes_for(P4("100.10.10.0/24")).empty());
  EXPECT_FALSE(f.m2->rib().routes_for(P4("60.3.0.0/20")).empty());
}

TEST(RouteServerTest, RejectsUnauthorizedPrefix) {
  RsFixture f;
  f.m1->announce(P4("61.0.0.0/20"));  // Not in m1's IRR objects.
  f.settle();
  EXPECT_GE(f.rs().rejects().irr_unauthorized, 1u);
  EXPECT_TRUE(f.rs().adj_rib_in().routes_for(P4("61.0.0.0/20")).empty());
}

TEST(RouteServerTest, RejectsBogon) {
  RsFixture f;
  // Register the bogon in the IRR so only the bogon check can reject it.
  f.ixp->irr().add_route_object(P4("10.0.0.0/8"), 65001);
  f.m1->announce(P4("10.1.0.0/16"));
  f.settle();
  EXPECT_GE(f.rs().rejects().bogon, 1u);
}

TEST(RouteServerTest, RejectsRpkiInvalid) {
  RsFixture f;
  // IRR authorizes, but a ROA for a different origin makes it RPKI-invalid.
  f.ixp->irr().add_route_object(P4("62.0.0.0/16"), 65001);
  f.ixp->rpki().add_roa({P4("62.0.0.0/16"), 24, 65099});
  f.m1->announce(P4("62.0.0.0/16"));
  f.settle();
  EXPECT_GE(f.rs().rejects().rpki_invalid, 1u);
}

TEST(RouteServerTest, RejectsTooSpecificWithoutBlackhole) {
  RsFixture f;
  f.m1->announce(P4("100.10.10.10/32"));  // No blackhole community.
  f.settle();
  EXPECT_GE(f.rs().rejects().too_specific, 1u);
}

TEST(RouteServerTest, AcceptsBlackholeSlash32AndRewritesNextHop) {
  RsFixture f;
  f.m1->announce(P4("100.10.10.10/32"), {bgp::kBlackhole});
  f.settle();
  // Accepted at the route server.
  EXPECT_EQ(f.rs().adj_rib_in().routes_for(P4("100.10.10.10/32")).size(), 1u);
  // m2 (honors) received it with the blackhole next-hop and installs it.
  const auto routes = f.m2->rib().routes_for(P4("100.10.10.10/32"));
  ASSERT_EQ(routes.size(), 1u);
  EXPECT_EQ(routes[0].attrs.next_hop, f.ixp->config().blackhole_next_hop);
  EXPECT_TRUE(routes[0].attrs.has_community(bgp::kBlackhole));
  EXPECT_TRUE(routes[0].attrs.has_community(bgp::kNoExport));
  EXPECT_TRUE(f.m2->blackholes(net::IPv4Address(100, 10, 10, 10)));
  // m3 (default config) filtered the /32.
  EXPECT_FALSE(f.m3->blackholes(net::IPv4Address(100, 10, 10, 10)));
}

TEST(RouteServerTest, ScopeExcludePeer) {
  RsFixture f;
  f.m1->announce(P4("100.10.10.10/32"),
                 {bgp::kBlackhole, f.rs().exclude_peer(65002)});
  f.settle();
  EXPECT_TRUE(f.m2->rib().routes_for(P4("100.10.10.10/32")).empty());
}

TEST(RouteServerTest, ScopeAnnounceToNoneWithInclude) {
  RsFixture f;
  f.m1->announce(P4("100.10.10.10/32"),
                 {bgp::kBlackhole, f.rs().announce_to_none(), f.rs().include_peer(65002)});
  f.settle();
  EXPECT_FALSE(f.m2->rib().routes_for(P4("100.10.10.10/32")).empty());
  // Scope communities are stripped on export.
  const auto routes = f.m2->rib().routes_for(P4("100.10.10.10/32"));
  ASSERT_EQ(routes.size(), 1u);
  EXPECT_FALSE(routes[0].attrs.has_community(f.rs().announce_to_none()));
  EXPECT_FALSE(routes[0].attrs.has_community(f.rs().include_peer(65002)));
}

TEST(RouteServerTest, AnnounceToNoneReachesNoMember) {
  RsFixture f;
  f.m1->announce(P4("100.10.10.10/32"), {bgp::kBlackhole, f.rs().announce_to_none()});
  f.settle();
  EXPECT_TRUE(f.m2->rib().routes_for(P4("100.10.10.10/32")).empty());
  EXPECT_TRUE(f.m3->rib().routes_for(P4("100.10.10.10/32")).empty());
  // But the RIB (and thus the controller session) still has it.
  EXPECT_EQ(f.rs().adj_rib_in().routes_for(P4("100.10.10.10/32")).size(), 1u);
}

TEST(RouteServerTest, WithdrawPropagates) {
  RsFixture f;
  f.m1->announce(P4("100.10.10.10/32"), {bgp::kBlackhole});
  f.settle();
  ASSERT_TRUE(f.m2->blackholes(net::IPv4Address(100, 10, 10, 10)));
  f.m1->withdraw(P4("100.10.10.10/32"));
  f.settle();
  EXPECT_FALSE(f.m2->blackholes(net::IPv4Address(100, 10, 10, 10)));
  EXPECT_TRUE(f.rs().adj_rib_in().routes_for(P4("100.10.10.10/32")).empty());
}

TEST(RouteServerTest, BlackholeEventsLogged) {
  RsFixture f;
  f.m1->announce(P4("100.10.10.10/32"), {bgp::kBlackhole, f.rs().exclude_peer(65002)});
  f.settle();
  ASSERT_GE(f.rs().blackhole_events().size(), 1u);
  const auto& ev = f.rs().blackhole_events().back();
  EXPECT_EQ(ev.member, 65001u);
  EXPECT_EQ(ev.prefix, P4("100.10.10.10/32"));
  EXPECT_EQ(ev.excluded_peers, 1);
  EXPECT_FALSE(ev.announce_to_none);
  EXPECT_FALSE(ev.withdrawn);
}

TEST(RouteServerTest, SessionFailureLogsBlackholeWithdrawEvent) {
  // Regression: the session-failure path used to call controller_withdraw but
  // never log_blackhole_event, so implicit withdraws were invisible to the
  // journal / looking glass while explicit withdraws were logged.
  RsFixture f;
  f.m1->announce(P4("100.10.10.10/32"), {bgp::kBlackhole, f.rs().exclude_peer(65002)});
  f.settle();
  ASSERT_EQ(f.rs().blackhole_events().size(), 1u);  // The announce.

  f.m1->session()->stop();
  f.settle();
  ASSERT_TRUE(f.rs().adj_rib_in().routes_for(P4("100.10.10.10/32")).empty());

  // Journal parity with the explicit-withdraw path: every logged announce has
  // a matching withdrawn=true event once the route is gone.
  ASSERT_EQ(f.rs().blackhole_events().size(), 2u);
  const auto& ev = f.rs().blackhole_events().back();
  EXPECT_TRUE(ev.withdrawn);
  EXPECT_EQ(ev.member, 65001u);
  EXPECT_EQ(ev.prefix, P4("100.10.10.10/32"));
  // Scope attrs of the torn-down route are preserved in the event.
  EXPECT_EQ(ev.excluded_peers, 1);
}

TEST(RouteServerTest, SessionFailureWithoutBlackholeRoutesLogsNothing) {
  RsFixture f;
  const auto before = f.rs().blackhole_events().size();
  f.m3->session()->stop();  // m3 only announced its plain member prefix.
  f.settle();
  EXPECT_EQ(f.rs().blackhole_events().size(), before);
}

TEST(RouteServerTest, ControllerSessionReceivesAllPathsWithAddPath) {
  RsFixture f;
  auto endpoint = f.rs().accept_controller();
  bgp::SessionConfig config;
  config.local_asn = 64500;
  config.router_id = net::IPv4Address(10, 99, 0, 2);
  config.add_path_rx = true;
  bgp::Session controller(f.queue, endpoint, config);
  bgp::Rib rib;
  controller.set_update_handler(
      [&rib](const bgp::UpdateMessage& u) { rib.apply_update(0, u); });
  controller.start();
  f.settle();
  // Initial sync: all three member prefixes.
  EXPECT_EQ(rib.size(), 3u);

  // A signal scoped to announce-to-none still reaches the controller.
  f.m1->announce(P4("100.10.10.10/32"), {bgp::kBlackhole, f.rs().announce_to_none()});
  f.settle();
  EXPECT_EQ(rib.routes_for(P4("100.10.10.10/32")).size(), 1u);
  // Path-ids are nonzero on the ADD-PATH session.
  EXPECT_NE(rib.routes_for(P4("100.10.10.10/32"))[0].path_id, 0u);
}

TEST(RouteServerTest, OriginMismatchRejected) {
  RsFixture f;
  // Craft an update whose AS path origin differs from the announcing member.
  bgp::UpdateMessage u;
  u.attrs.origin = bgp::Origin::kIgp;
  u.attrs.as_path = {{bgp::AsPathSegment::Type::kSequence, {65099}}};
  u.attrs.next_hop = net::IPv4Address(10, 99, 1, 1);
  u.announced = {{0, P4("100.10.10.0/24")}};
  f.m1->session()->announce(u);
  f.settle();
  EXPECT_GE(f.rs().rejects().origin_mismatch, 1u);
}

}  // namespace
}  // namespace stellar::ixp
