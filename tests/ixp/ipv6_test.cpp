// IPv6 blackholing path (paper footnote 4: IPv6 blackholing exists at <1%
// volume — the mechanism is AFI-agnostic): MP-BGP announcements through the
// route server, IRR6/bogon6 hygiene, the /48 more-specific boundary, and
// RTBH next-hop rewriting into the RFC 6666 discard prefix.
#include <gtest/gtest.h>

#include "ixp/ixp.hpp"
#include "ixp/looking_glass.hpp"

namespace stellar::ixp {
namespace {

net::Prefix4 P4(const char* text) { return net::Prefix4::Parse(text).value(); }
net::Prefix6 P6(const char* text) { return net::Prefix6::Parse(text).value(); }
net::IPv6Address A6(const char* text) { return net::IPv6Address::Parse(text).value(); }

struct V6Fixture {
  sim::EventQueue queue;
  std::unique_ptr<Ixp> ixp;
  MemberRouter* v6_member;   ///< Dual-stack victim.
  MemberRouter* honoring;    ///< Accepts more-specifics.
  MemberRouter* defaults;    ///< Default config (rejects > /48).

  V6Fixture() {
    ixp = std::make_unique<Ixp>(queue);
    MemberSpec a;
    a.asn = 65001;
    a.address_space = P4("100.10.10.0/24");
    a.address_space6 = P6("2001:678:a::/48");
    v6_member = &ixp->add_member(a);
    MemberSpec b;
    b.asn = 65002;
    b.address_space = P4("60.2.0.0/20");
    b.address_space6 = P6("2001:678:b::/48");
    b.policy.accepts_more_specifics = true;
    honoring = &ixp->add_member(b);
    MemberSpec c;
    c.asn = 65003;
    c.address_space = P4("60.3.0.0/20");
    c.address_space6 = P6("2001:678:c::/48");
    defaults = &ixp->add_member(c);
    ixp->settle(30.0);
  }

  void settle() { ixp->settle(10.0); }
};

TEST(Ipv6Test, MemberPrefixesPropagate) {
  V6Fixture f;
  EXPECT_EQ(f.ixp->route_server().adj_rib_in6().size(), 3u);
  // Everyone sees the other members' v6 allocations.
  EXPECT_EQ(f.honoring->rib6().size(), 2u);
  EXPECT_FALSE(f.honoring->rib6().routes_for(P6("2001:678:a::/48")).empty());
  EXPECT_FALSE(f.defaults->rib6().routes_for(P6("2001:678:b::/48")).empty());
  // Nobody received their own prefix back.
  EXPECT_TRUE(f.v6_member->rib6().routes_for(P6("2001:678:a::/48")).empty());
}

TEST(Ipv6Test, UnauthorizedV6PrefixRejected) {
  V6Fixture f;
  f.v6_member->announce6(P6("2001:999::/32"));
  f.settle();
  EXPECT_TRUE(f.ixp->route_server().adj_rib_in6().routes_for(P6("2001:999::/32")).empty());
  EXPECT_GE(f.ixp->route_server().rejects().irr_unauthorized, 1u);
}

TEST(Ipv6Test, BogonV6Rejected) {
  V6Fixture f;
  f.ixp->irr6().add_route_object(P6("2001:db8::/32"), 65001);  // Documentation space.
  f.v6_member->announce6(P6("2001:db8::/32"));
  f.settle();
  EXPECT_GE(f.ixp->route_server().rejects().bogon, 1u);
}

TEST(Ipv6Test, TooSpecificWithoutBlackholeRejected) {
  V6Fixture f;
  f.v6_member->announce6(P6("2001:678:a::1/128"));
  f.settle();
  EXPECT_GE(f.ixp->route_server().rejects().too_specific, 1u);
}

TEST(Ipv6Test, BlackholeHostRouteRewritesNextHopToDiscardPrefix) {
  V6Fixture f;
  f.v6_member->announce6(P6("2001:678:a::1/128"), {bgp::kBlackhole});
  f.settle();
  // Accepted at the route server and logged.
  EXPECT_EQ(f.ixp->route_server().adj_rib_in6().routes_for(P6("2001:678:a::1/128")).size(),
            1u);
  ASSERT_GE(f.ixp->route_server().blackhole_events6().size(), 1u);
  EXPECT_EQ(f.ixp->route_server().blackhole_events6().back().member, 65001u);

  // The honoring member received it with next-hop 100::1 and installs it.
  const auto routes = f.honoring->rib6().routes_for(P6("2001:678:a::1/128"));
  ASSERT_EQ(routes.size(), 1u);
  ASSERT_TRUE(routes[0].attrs.mp_reach_ipv6.has_value());
  EXPECT_EQ(routes[0].attrs.mp_reach_ipv6->next_hop, A6("100::1"));
  EXPECT_TRUE(routes[0].attrs.has_community(bgp::kBlackhole));
  EXPECT_TRUE(f.honoring->blackholes6(A6("2001:678:a::1")));
  EXPECT_FALSE(f.honoring->blackholes6(A6("2001:678:a::2")));

  // The default-config member filtered the /128 (same barrier as v4 /32s).
  EXPECT_FALSE(f.defaults->blackholes6(A6("2001:678:a::1")));
  EXPECT_GE(f.defaults->rejected_more_specifics(), 1u);
}

TEST(Ipv6Test, WithdrawRemovesBlackhole) {
  V6Fixture f;
  f.v6_member->announce6(P6("2001:678:a::1/128"), {bgp::kBlackhole});
  f.settle();
  ASSERT_TRUE(f.honoring->blackholes6(A6("2001:678:a::1")));
  f.v6_member->withdraw6(P6("2001:678:a::1/128"));
  f.settle();
  EXPECT_FALSE(f.honoring->blackholes6(A6("2001:678:a::1")));
  EXPECT_TRUE(
      f.ixp->route_server().adj_rib_in6().routes_for(P6("2001:678:a::1/128")).empty());
  // The withdraw event was logged too.
  EXPECT_TRUE(f.ixp->route_server().blackhole_events6().back().withdrawn);
}

TEST(Ipv6Test, ScopeCommunitiesApplyToV6) {
  V6Fixture f;
  f.v6_member->announce6(P6("2001:678:a::1/128"),
                         {bgp::kBlackhole, f.ixp->route_server().exclude_peer(65002)});
  f.settle();
  EXPECT_TRUE(f.honoring->rib6().routes_for(P6("2001:678:a::1/128")).empty());
}

TEST(Ipv6Test, SessionFailureImplicitlyWithdrawsV6Routes) {
  V6Fixture f;
  f.v6_member->announce6(P6("2001:678:a::1/128"), {bgp::kBlackhole});
  f.settle();
  ASSERT_TRUE(f.honoring->blackholes6(A6("2001:678:a::1")));
  f.v6_member->session()->stop();
  f.settle();
  EXPECT_FALSE(f.honoring->blackholes6(A6("2001:678:a::1")));
  EXPECT_TRUE(f.honoring->rib6().routes_for(P6("2001:678:a::/48")).empty());
}

TEST(Ipv6Test, SessionFailureLogsV6BlackholeWithdrawEvent) {
  // Regression: implicit v6 withdraws (session failure) never reached
  // events6_, so the journal undercounted removals vs explicit withdraws.
  V6Fixture f;
  f.v6_member->announce6(P6("2001:678:a::1/128"), {bgp::kBlackhole});
  f.settle();
  ASSERT_EQ(f.ixp->route_server().blackhole_events6().size(), 1u);

  f.v6_member->session()->stop();
  f.settle();
  ASSERT_EQ(f.ixp->route_server().blackhole_events6().size(), 2u);
  const auto& ev = f.ixp->route_server().blackhole_events6().back();
  EXPECT_TRUE(ev.withdrawn);
  EXPECT_EQ(ev.member, 65001u);
  EXPECT_EQ(ev.prefix, P6("2001:678:a::1/128"));
}

TEST(Ipv6Test, V4PathUnaffectedByV6Churn) {
  V6Fixture f;
  f.v6_member->announce6(P6("2001:678:a::1/128"), {bgp::kBlackhole});
  f.settle();
  // The v4 allocations are still intact everywhere.
  EXPECT_EQ(f.ixp->route_server().adj_rib_in().size(), 3u);
  EXPECT_FALSE(f.honoring->rib().routes_for(P4("100.10.10.0/24")).empty());
}

TEST(Ipv6Test, LookingGlassShowsV6Routes) {
  V6Fixture f;
  f.v6_member->announce6(P6("2001:678:a::1/128"), {bgp::kBlackhole});
  f.settle();
  LookingGlass lg(f.ixp->route_server());
  const auto routes = lg.show_route6(P6("2001:678:a::1/128"));
  ASSERT_EQ(routes.size(), 1u);
  EXPECT_NE(routes[0].find("AS65001"), std::string::npos);
  EXPECT_NE(routes[0].find("65535:666"), std::string::npos);
  EXPECT_NE(lg.show_status().find("routes6=4"), std::string::npos);
}

TEST(Ipv6Test, Bogon6ListStandard) {
  const auto bogons = Bogon6List::Standard();
  EXPECT_TRUE(bogons.is_bogon(P6("::1/128")));
  EXPECT_TRUE(bogons.is_bogon(P6("fe80::/64")));
  EXPECT_TRUE(bogons.is_bogon(P6("fd00::/8")));
  EXPECT_TRUE(bogons.is_bogon(P6("2001:db8:1::/48")));
  EXPECT_TRUE(bogons.is_bogon(P6("ff02::/16")));
  EXPECT_FALSE(bogons.is_bogon(P6("2001:678:a::/48")));
  // The discard prefix must NOT be a bogon: it is the blackhole next-hop.
  EXPECT_FALSE(bogons.is_bogon(P6("100::/64")));
}

}  // namespace
}  // namespace stellar::ixp
