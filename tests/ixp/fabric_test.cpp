#include "ixp/fabric.hpp"

#include <gtest/gtest.h>

#include "net/ports.hpp"

namespace stellar::ixp {
namespace {

net::Prefix4 P4(const char* text) { return net::Prefix4::Parse(text).value(); }

net::FlowSample Flow(std::uint32_t src_asn, net::IPv4Address dst, double mbps,
                     std::uint16_t src_port = 443, net::IpProto proto = net::IpProto::kTcp) {
  net::FlowSample s;
  s.key.src_mac = net::MacAddress::ForRouter(src_asn);
  s.key.src_ip = net::IPv4Address(60, 0, 0, 1);
  s.key.dst_ip = dst;
  s.key.proto = proto;
  s.key.src_port = src_port;
  s.key.dst_port = 5555;
  s.bytes = static_cast<std::uint64_t>(mbps * 1e6 / 8.0);
  return s;
}

struct FabricFixture {
  filter::EdgeRouter er{"er1", filter::TcamLimits{}};
  Fabric fabric{er};

  FabricFixture() {
    er.add_port(1, 1000.0);
    er.add_port(2, 10'000.0);
    fabric.register_owner(P4("100.10.10.0/24"), 1);
    fabric.register_owner(P4("60.2.0.0/20"), 2);
  }
};

TEST(FabricTest, LongestPrefixMatchWins) {
  FabricFixture f;
  f.fabric.register_owner(P4("100.10.10.128/25"), 2);
  filter::PortId port = 0;
  ASSERT_TRUE(f.fabric.lookup_egress(net::IPv4Address(100, 10, 10, 200), port));
  EXPECT_EQ(port, 2u);
  ASSERT_TRUE(f.fabric.lookup_egress(net::IPv4Address(100, 10, 10, 5), port));
  EXPECT_EQ(port, 1u);
}

TEST(FabricTest, UnroutedTrafficCounted) {
  FabricFixture f;
  const std::vector<net::FlowSample> offered{Flow(65009, net::IPv4Address(9, 9, 9, 9), 100)};
  const auto report = f.fabric.deliver(offered, 1.0);
  EXPECT_NEAR(report.unrouted_mbps, 100.0, 1.0);
  EXPECT_DOUBLE_EQ(report.delivered_mbps, 0.0);
}

TEST(FabricTest, DeliversToOwnerPort) {
  FabricFixture f;
  const std::vector<net::FlowSample> offered{
      Flow(65009, net::IPv4Address(100, 10, 10, 10), 100),
      Flow(65009, net::IPv4Address(60, 2, 0, 5), 200)};
  const auto report = f.fabric.deliver(offered, 1.0);
  EXPECT_NEAR(report.delivered_mbps, 300.0, 1.0);
  EXPECT_EQ(report.per_port.size(), 2u);
  EXPECT_NEAR(report.per_port.at(1).delivered_mbps, 100.0, 1.0);
  EXPECT_NEAR(report.per_port.at(2).delivered_mbps, 200.0, 1.0);
}

TEST(FabricTest, PortCongestionAppliesPerEgress) {
  FabricFixture f;
  const std::vector<net::FlowSample> offered{
      Flow(65009, net::IPv4Address(100, 10, 10, 10), 2000)};  // 2 Gbps into 1 Gbps port.
  const auto report = f.fabric.deliver(offered, 1.0);
  EXPECT_NEAR(report.delivered_mbps, 1000.0, 5.0);
  EXPECT_NEAR(report.congestion_dropped_mbps, 1000.0, 5.0);
}

TEST(FabricTest, IngressBlackholeDropsBeforePlatform) {
  FabricFixture f;
  const auto honored_mac = net::MacAddress::ForRouter(65008);
  f.fabric.set_ingress_blackhole_fn(
      [&](const net::MacAddress& mac, net::IPv4Address dst) {
        return mac == honored_mac && dst == net::IPv4Address(100, 10, 10, 10);
      });
  const std::vector<net::FlowSample> offered{
      Flow(65008, net::IPv4Address(100, 10, 10, 10), 300),
      Flow(65009, net::IPv4Address(100, 10, 10, 10), 300)};
  const auto report = f.fabric.deliver(offered, 1.0);
  EXPECT_NEAR(report.rtbh_dropped_mbps, 300.0, 1.0);
  EXPECT_NEAR(report.delivered_mbps, 300.0, 1.0);
  ASSERT_EQ(report.rtbh_dropped_peers.size(), 1u);
  EXPECT_TRUE(report.rtbh_dropped_peers.contains(honored_mac));
}

TEST(FabricTest, EgressQosRulesApply) {
  FabricFixture f;
  filter::FilterRule rule;
  rule.match.proto = net::IpProto::kUdp;
  rule.match.src_port = filter::PortRange::Single(net::kPortNtp);
  rule.action = filter::FilterAction::kDrop;
  ASSERT_TRUE(f.er.install_rule(1, rule).ok());
  const std::vector<net::FlowSample> offered{
      Flow(65009, net::IPv4Address(100, 10, 10, 10), 500, net::kPortNtp, net::IpProto::kUdp),
      Flow(65009, net::IPv4Address(100, 10, 10, 10), 100)};
  const auto report = f.fabric.deliver(offered, 1.0);
  EXPECT_NEAR(report.rule_dropped_mbps, 500.0, 1.0);
  EXPECT_NEAR(report.delivered_mbps, 100.0, 1.0);
}

TEST(FabricTest, DeliveredSamplesPreserveFlowIdentity) {
  FabricFixture f;
  const auto flow = Flow(65009, net::IPv4Address(100, 10, 10, 10), 100);
  const auto report = f.fabric.deliver({&flow, 1}, 1.0);
  ASSERT_EQ(report.delivered.size(), 1u);
  EXPECT_EQ(report.delivered[0].key, flow.key);
}

TEST(FabricTest, ConservationAcrossAllDropClasses) {
  FabricFixture f;
  f.fabric.set_ingress_blackhole_fn(
      [](const net::MacAddress& mac, net::IPv4Address) {
        return mac == net::MacAddress::ForRouter(65008);
      });
  filter::FilterRule rule;
  rule.match.proto = net::IpProto::kUdp;
  rule.action = filter::FilterAction::kDrop;
  ASSERT_TRUE(f.er.install_rule(1, rule).ok());
  const std::vector<net::FlowSample> offered{
      Flow(65008, net::IPv4Address(100, 10, 10, 10), 100),  // RTBH.
      Flow(65009, net::IPv4Address(100, 10, 10, 10), 200, 123, net::IpProto::kUdp),  // Rule.
      Flow(65009, net::IPv4Address(100, 10, 10, 10), 1500),  // Congestion (1 Gbps port).
      Flow(65009, net::IPv4Address(9, 9, 9, 9), 50)};        // Unrouted.
  const auto report = f.fabric.deliver(offered, 1.0);
  EXPECT_NEAR(report.offered_mbps,
              report.delivered_mbps + report.unrouted_mbps + report.rtbh_dropped_mbps +
                  report.rule_dropped_mbps + report.shaper_dropped_mbps +
                  report.congestion_dropped_mbps,
              1.0);
}

}  // namespace
}  // namespace stellar::ixp
