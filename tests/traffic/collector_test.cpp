#include "traffic/collector.hpp"

#include <gtest/gtest.h>

#include "net/ports.hpp"

namespace stellar::traffic {
namespace {

net::FlowSample Sample(double t, net::IpProto proto, std::uint16_t src_port,
                       std::uint16_t dst_port, std::uint64_t bytes, std::uint32_t src_asn = 65001) {
  net::FlowSample s;
  s.time_s = t;
  s.key.src_mac = net::MacAddress::ForRouter(src_asn);
  s.key.src_ip = net::IPv4Address(1, 2, 3, 4);
  s.key.dst_ip = net::IPv4Address(100, 10, 10, 10);
  s.key.proto = proto;
  s.key.src_port = src_port;
  s.key.dst_port = dst_port;
  s.bytes = bytes;
  s.packets = 1;
  return s;
}

TEST(ServicePortTest, PrefersKnownSourcePort) {
  // Amplification responses: service port on the source side.
  EXPECT_EQ(ServicePort(Sample(0, net::IpProto::kUdp, 11211, 4444, 1).key), 11211);
  EXPECT_EQ(ServicePort(Sample(0, net::IpProto::kUdp, 123, 4444, 1).key), 123);
}

TEST(ServicePortTest, FallsBackToKnownDstPort) {
  // Client->server web traffic: service port on the destination side.
  EXPECT_EQ(ServicePort(Sample(0, net::IpProto::kTcp, 50000, 443, 1).key), 443);
}

TEST(ServicePortTest, UnknownPortsUseMinimum) {
  EXPECT_EQ(ServicePort(Sample(0, net::IpProto::kUdp, 40000, 30000, 1).key), 30000);
}

TEST(ServicePortTest, BothPortsKnownPrefersSource) {
  // An NTP response towards an HTTPS port: both sides are well-known, and
  // the source side wins — amplification responses are response streams, so
  // the reflector's service port is the signature.
  EXPECT_EQ(ServicePort(Sample(0, net::IpProto::kUdp, 123, 443, 1).key), 123);
  EXPECT_EQ(ServicePort(Sample(0, net::IpProto::kTcp, 443, 123, 1).key), 443);
}

TEST(FlowCollectorTest, BinsByTime) {
  FlowCollector c(60.0);
  c.ingest(Sample(10.0, net::IpProto::kTcp, 50000, 443, 7'500'000));   // 1 Mbps over 60 s.
  c.ingest(Sample(70.0, net::IpProto::kTcp, 50000, 443, 15'000'000));  // 2 Mbps.
  EXPECT_NEAR(c.mbps_at(30.0), 1.0, 1e-9);
  EXPECT_NEAR(c.mbps_at(90.0), 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(c.mbps_at(200.0), 0.0);
  EXPECT_EQ(c.bins().size(), 2u);
}

TEST(FlowCollectorTest, PeersCountsDistinctSourceMacs) {
  FlowCollector c(10.0);
  c.ingest(Sample(1.0, net::IpProto::kUdp, 123, 1, 100, 65001));
  c.ingest(Sample(2.0, net::IpProto::kUdp, 123, 2, 100, 65002));
  c.ingest(Sample(3.0, net::IpProto::kUdp, 123, 3, 100, 65001));
  EXPECT_EQ(c.peers_at(5.0), 2u);
  EXPECT_EQ(c.peers_at(50.0), 0u);
}

TEST(FlowCollectorTest, ServicePortShares) {
  FlowCollector c(10.0);
  c.ingest(Sample(1.0, net::IpProto::kUdp, 11211, 4444, 900));
  c.ingest(Sample(2.0, net::IpProto::kTcp, 50000, 443, 100));
  const auto shares = c.service_port_shares(0.0, 10.0);
  EXPECT_NEAR(shares.at(11211), 0.9, 1e-9);
  EXPECT_NEAR(shares.at(443), 0.1, 1e-9);
}

TEST(FlowCollectorTest, WindowBoundariesAreHalfOpen) {
  FlowCollector c(10.0);
  c.ingest(Sample(5.0, net::IpProto::kUdp, 123, 1, 100));
  c.ingest(Sample(15.0, net::IpProto::kUdp, 123, 1, 200));
  EXPECT_EQ(c.total_bytes(0.0, 10.0), 100u);
  EXPECT_EQ(c.total_bytes(0.0, 20.0), 300u);
  EXPECT_EQ(c.total_bytes(10.0, 20.0), 200u);
}

TEST(FlowCollectorTest, SamplesOnBinEdgesLandInLaterBin) {
  // A sample at exactly t = k * bin_s opens bin k: it is excluded from
  // [.., k*bin_s) and included in [k*bin_s, ..). Windows aligned to bin
  // edges therefore partition the stream with no double counting.
  FlowCollector c(10.0);
  c.ingest(Sample(0.0, net::IpProto::kUdp, 123, 1, 1));
  c.ingest(Sample(10.0, net::IpProto::kUdp, 123, 1, 2));
  c.ingest(Sample(20.0, net::IpProto::kUdp, 123, 1, 4));
  EXPECT_EQ(c.total_bytes(0.0, 10.0), 1u);
  EXPECT_EQ(c.total_bytes(10.0, 20.0), 2u);
  EXPECT_EQ(c.total_bytes(20.0, 30.0), 4u);
  EXPECT_EQ(c.total_bytes(0.0, 30.0), 7u);
  // A window starting mid-bin snaps to that bin's start (bins are atomic).
  EXPECT_EQ(c.total_bytes(15.0, 30.0), 6u);
}

TEST(FlowCollectorTest, EmptyWindowAggregatesAcrossAllQueries) {
  FlowCollector c(10.0);
  c.ingest(Sample(100.0, net::IpProto::kUdp, 123, 1, 50));
  // A window strictly before any data: every aggregate must be empty/zero,
  // including the ones EmptyWindowsReturnZeros does not cover.
  EXPECT_TRUE(c.udp_src_port_shares(0.0, 50.0).empty());
  EXPECT_TRUE(c.top_service_ports(0.0, 50.0, 5).empty());
  EXPECT_EQ(c.distinct_peers(0.0, 50.0), 0u);
  EXPECT_EQ(c.peers_at(0.0), 0u);
  // Degenerate window [t, t): nothing qualifies.
  EXPECT_EQ(c.total_bytes(100.0, 100.0), 0u);
}

TEST(FlowCollectorTest, UdpSrcPortShares) {
  FlowCollector c(10.0);
  c.ingest(Sample(1.0, net::IpProto::kUdp, 123, 1, 600));
  c.ingest(Sample(1.0, net::IpProto::kUdp, 53, 1, 300));
  c.ingest(Sample(1.0, net::IpProto::kTcp, 443, 1, 100));
  const auto shares = c.udp_src_port_shares(0.0, 10.0);
  EXPECT_NEAR(shares.at(123), 0.6, 1e-9);
  EXPECT_NEAR(shares.at(53), 0.3, 1e-9);
  EXPECT_FALSE(shares.contains(443));  // TCP traffic is not a UDP source port.
}

TEST(FlowCollectorTest, ProtocolShares) {
  FlowCollector c(10.0);
  c.ingest(Sample(1.0, net::IpProto::kUdp, 123, 1, 999));
  c.ingest(Sample(1.0, net::IpProto::kTcp, 443, 1, 1));
  const auto [udp, tcp] = c.protocol_shares(0.0, 10.0);
  EXPECT_NEAR(udp, 0.999, 1e-9);
  EXPECT_NEAR(tcp, 0.001, 1e-9);
}

TEST(FlowCollectorTest, EmptyWindowsReturnZeros) {
  FlowCollector c(10.0);
  EXPECT_EQ(c.total_bytes(0.0, 100.0), 0u);
  EXPECT_TRUE(c.service_port_shares(0.0, 100.0).empty());
  const auto [udp, tcp] = c.protocol_shares(0.0, 100.0);
  EXPECT_DOUBLE_EQ(udp, 0.0);
  EXPECT_DOUBLE_EQ(tcp, 0.0);
}

TEST(FlowCollectorTest, TopServicePorts) {
  FlowCollector c(10.0);
  c.ingest(Sample(1.0, net::IpProto::kUdp, 11211, 4444, 900));
  c.ingest(Sample(2.0, net::IpProto::kTcp, 50000, 443, 500));
  c.ingest(Sample(3.0, net::IpProto::kUdp, 123, 4444, 100));
  const auto top = c.top_service_ports(0.0, 10.0, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].first, 11211);
  EXPECT_EQ(top[0].second, 900u);
  EXPECT_EQ(top[1].first, 443);
  // k larger than distinct ports returns all of them.
  EXPECT_EQ(c.top_service_ports(0.0, 10.0, 99).size(), 3u);
  EXPECT_TRUE(c.top_service_ports(50.0, 60.0, 5).empty());
}

TEST(FlowCollectorTest, DistinctPeersAcrossWindow) {
  FlowCollector c(10.0);
  c.ingest(Sample(1.0, net::IpProto::kUdp, 123, 1, 100, 65001));
  c.ingest(Sample(15.0, net::IpProto::kUdp, 123, 1, 100, 65002));
  c.ingest(Sample(25.0, net::IpProto::kUdp, 123, 1, 100, 65001));
  EXPECT_EQ(c.distinct_peers(0.0, 30.0), 2u);
  EXPECT_EQ(c.distinct_peers(10.0, 20.0), 1u);
  EXPECT_EQ(c.distinct_peers(40.0, 50.0), 0u);
}

TEST(FlowCollectorTest, SpanIngest) {
  FlowCollector c(10.0);
  std::vector<net::FlowSample> batch{Sample(1.0, net::IpProto::kUdp, 123, 1, 100),
                                     Sample(2.0, net::IpProto::kUdp, 53, 1, 100)};
  c.ingest(batch);
  EXPECT_EQ(c.total_bytes(0.0, 10.0), 200u);
}

}  // namespace
}  // namespace stellar::traffic
