#include "traffic/generators.hpp"

#include <gtest/gtest.h>

#include <set>

namespace stellar::traffic {
namespace {

std::vector<SourceMember> MakeSources(int n) {
  std::vector<SourceMember> out;
  for (int i = 0; i < n; ++i) {
    out.push_back(SourceMember{
        net::MacAddress::ForRouter(static_cast<std::uint32_t>(65001 + i)),
        net::Prefix4(net::IPv4Address((60u << 24) | (static_cast<std::uint32_t>(i) << 12)), 20)});
  }
  return out;
}

double TotalMbps(const std::vector<net::FlowSample>& samples, double bin_s) {
  double total = 0.0;
  for (const auto& s : samples) total += s.mbps(bin_s);
  return total;
}

TEST(RandomHostInTest, StaysInsidePrefixAndAvoidsNetworkAddress) {
  util::Rng rng(1);
  const auto space = net::Prefix4::Parse("60.1.0.0/20").value();
  for (int i = 0; i < 500; ++i) {
    const auto ip = RandomHostIn(space, rng);
    EXPECT_TRUE(space.contains(ip));
    EXPECT_NE(ip, space.address());
  }
  // A /32 returns the address itself.
  const auto host = net::Prefix4::Parse("1.2.3.4/32").value();
  EXPECT_EQ(RandomHostIn(host, rng), net::IPv4Address(1, 2, 3, 4));
}

TEST(WebTrafficGeneratorTest, ProducesConfiguredRate) {
  WebTrafficGenerator::Config config;
  config.target = net::IPv4Address(100, 10, 10, 10);
  config.rate_mbps = 400.0;
  config.rate_jitter = 0.0;
  WebTrafficGenerator gen(config, MakeSources(10), 42);
  const auto samples = gen.bin(0.0, 1.0);
  EXPECT_NEAR(TotalMbps(samples, 1.0), 400.0, 10.0);
  for (const auto& s : samples) EXPECT_EQ(s.key.dst_ip, config.target);
}

TEST(WebTrafficGeneratorTest, PortMixApproximatesWeights) {
  WebTrafficGenerator::Config config;
  config.target = net::IPv4Address(100, 10, 10, 10);
  config.rate_mbps = 1000.0;
  config.rate_jitter = 0.0;
  config.flows_per_bin = 256;
  WebTrafficGenerator gen(config, MakeSources(10), 42);
  double https = 0.0;
  double total = 0.0;
  for (int t = 0; t < 50; ++t) {
    for (const auto& s : gen.bin(t, 1.0)) {
      total += static_cast<double>(s.bytes);
      if (s.key.dst_port == net::kPortHttps) https += static_cast<double>(s.bytes);
    }
  }
  EXPECT_NEAR(https / total, 0.54, 0.05);
}

TEST(WebTrafficGeneratorTest, MostlyTcp) {
  WebTrafficGenerator::Config config;
  config.target = net::IPv4Address(100, 10, 10, 10);
  WebTrafficGenerator gen(config, MakeSources(5), 1);
  int tcp = 0;
  int all = 0;
  for (int t = 0; t < 20; ++t) {
    for (const auto& s : gen.bin(t, 1.0)) {
      ++all;
      if (s.key.proto == net::IpProto::kTcp) ++tcp;
    }
  }
  EXPECT_GT(static_cast<double>(tcp) / all, 0.9);
}

TEST(WebTrafficGeneratorTest, DeterministicAcrossSeeds) {
  WebTrafficGenerator::Config config;
  config.target = net::IPv4Address(100, 10, 10, 10);
  WebTrafficGenerator a(config, MakeSources(5), 7);
  WebTrafficGenerator b(config, MakeSources(5), 7);
  const auto sa = a.bin(0.0, 1.0);
  const auto sb = b.bin(0.0, 1.0);
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].key, sb[i].key);
    EXPECT_EQ(sa[i].bytes, sb[i].bytes);
  }
}

TEST(WebTrafficGeneratorTest, RequiresSources) {
  WebTrafficGenerator::Config config;
  EXPECT_THROW(WebTrafficGenerator(config, {}, 1), std::invalid_argument);
}

TEST(AmplificationAttackTest, EnvelopeShape) {
  AmplificationAttackGenerator::Config config;
  config.target = net::IPv4Address(100, 10, 10, 10);
  config.start_s = 100.0;
  config.end_s = 700.0;
  config.ramp_s = 20.0;
  AmplificationAttackGenerator gen(config, MakeSources(50), 3);
  EXPECT_DOUBLE_EQ(gen.envelope(50.0), 0.0);
  EXPECT_DOUBLE_EQ(gen.envelope(100.0), 0.0);
  EXPECT_NEAR(gen.envelope(110.0), 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(gen.envelope(120.0), 1.0);
  EXPECT_DOUBLE_EQ(gen.envelope(500.0), 1.0);
  EXPECT_DOUBLE_EQ(gen.envelope(700.0), 0.0);
}

TEST(AmplificationAttackTest, PeakRateAndSignature) {
  AmplificationAttackGenerator::Config config;
  config.target = net::IPv4Address(100, 10, 10, 10);
  config.peak_mbps = 1000.0;
  config.start_s = 0.0;
  config.end_s = 600.0;
  config.ramp_s = 1.0;
  config.jitter = 0.0;
  AmplificationAttackGenerator gen(config, MakeSources(50), 4);
  const auto samples = gen.bin(300.0, 1.0);
  EXPECT_NEAR(TotalMbps(samples, 1.0), 1000.0, 50.0);
  for (const auto& s : samples) {
    EXPECT_EQ(s.key.proto, net::IpProto::kUdp);
    EXPECT_EQ(s.key.src_port, config.service.udp_port);  // NTP reflection signature.
    EXPECT_EQ(s.key.dst_ip, config.target);
  }
}

TEST(AmplificationAttackTest, ArrivesViaConfiguredNumberOfMembers) {
  auto config = BooterNtpAttack(net::IPv4Address(100, 10, 10, 10), 1000.0, 0.0, 600.0);
  AmplificationAttackGenerator gen(config, MakeSources(200), 5);
  std::set<net::MacAddress> macs;
  for (const auto& s : gen.bin(300.0, 1.0)) macs.insert(s.key.src_mac);
  // Booter profile: ~55 members carry traffic (paper: ~60 peers).
  EXPECT_GE(macs.size(), 40u);
  EXPECT_LE(macs.size(), 55u);
}

TEST(AmplificationAttackTest, ReflectorVolumesAreHeavyTailed) {
  AmplificationAttackGenerator::Config config;
  config.target = net::IPv4Address(100, 10, 10, 10);
  config.peak_mbps = 1000.0;
  config.start_s = 0.0;
  config.end_s = 100.0;
  config.ramp_s = 1.0;
  config.reflectors = 500;
  AmplificationAttackGenerator gen(config, MakeSources(50), 6);
  auto samples = gen.bin(50.0, 1.0);
  ASSERT_GT(samples.size(), 100u);
  std::vector<std::uint64_t> bytes;
  for (const auto& s : samples) bytes.push_back(s.bytes);
  std::sort(bytes.rbegin(), bytes.rend());
  double top10 = 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    if (i < bytes.size() / 10) top10 += static_cast<double>(bytes[i]);
    total += static_cast<double>(bytes[i]);
  }
  EXPECT_GT(top10 / total, 0.3);  // Top 10% of reflectors carry >30%.
}

TEST(BackgroundTrafficTest, ProtocolMixMatchesMeasurement) {
  BackgroundTrafficGenerator::Config config;
  config.dst_space = net::Prefix4::Parse("50.0.0.0/8").value();
  config.rate_mbps = 1000.0;
  BackgroundTrafficGenerator gen(config, MakeSources(20), 8);
  double tcp = 0.0;
  double total = 0.0;
  for (int t = 0; t < 50; ++t) {
    for (const auto& s : gen.bin(t, 1.0)) {
      total += static_cast<double>(s.bytes);
      if (s.key.proto == net::IpProto::kTcp) tcp += static_cast<double>(s.bytes);
    }
  }
  // Paper §2.3: TCP is 86.81% of non-blackholed traffic.
  EXPECT_NEAR(tcp / total, 0.8681, 0.03);
}

}  // namespace
}  // namespace stellar::traffic
