#include "traffic/trace_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "traffic/generators.hpp"
#include "util/rng.hpp"

namespace stellar::traffic {
namespace {

net::FlowSample Sample(double t, double mbps) {
  net::FlowSample s;
  s.time_s = t;
  s.key.src_mac = net::MacAddress::ForRouter(65001);
  s.key.src_ip = net::IPv4Address(60, 1, 0, 5);
  s.key.dst_ip = net::IPv4Address(100, 10, 10, 10);
  s.key.proto = net::IpProto::kUdp;
  s.key.src_port = 123;
  s.key.dst_port = 5555;
  s.bytes = static_cast<std::uint64_t>(mbps * 1e6 / 8.0);
  s.packets = s.bytes / 1200;
  return s;
}

TEST(TraceIoTest, RoundTripPreservesEverything) {
  std::vector<net::FlowSample> samples{Sample(0.0, 100.0), Sample(12.5, 55.25)};
  samples[1].key.proto = net::IpProto::kTcp;
  samples[1].key.src_port = 50'000;
  samples[1].key.dst_port = 443;
  const std::string csv = FlowsToCsv(samples);
  const auto parsed = FlowsFromCsv(csv);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  ASSERT_EQ(parsed->size(), samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ((*parsed)[i].key, samples[i].key);
    EXPECT_EQ((*parsed)[i].bytes, samples[i].bytes);
    EXPECT_EQ((*parsed)[i].packets, samples[i].packets);
    EXPECT_DOUBLE_EQ((*parsed)[i].time_s, samples[i].time_s);
  }
}

TEST(TraceIoTest, GeneratorOutputRoundTrips) {
  std::vector<SourceMember> sources{{net::MacAddress::ForRouter(60001),
                                     net::Prefix4::Parse("60.1.0.0/20").value()}};
  WebTrafficGenerator::Config config;
  config.target = net::IPv4Address(100, 10, 10, 10);
  WebTrafficGenerator gen(config, sources, 9);
  const auto samples = gen.bin(3.0, 1.0);
  const auto parsed = FlowsFromCsv(FlowsToCsv(samples));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->size(), samples.size());
}

TEST(TraceIoTest, SkipsCommentsAndBlankLines) {
  const std::string csv = std::string(kFlowCsvHeader) +
                          "\n# a comment\n\n"
                          "1.0,02:00:00:00:00:01,1.2.3.4,5.6.7.8,udp,123,99,1000,2\n";
  const auto parsed = FlowsFromCsv(csv);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_EQ((*parsed)[0].bytes, 1000u);
}

TEST(TraceIoTest, HandlesCrlf) {
  const std::string csv = std::string(kFlowCsvHeader) +
                          "\r\n1.0,02:00:00:00:00:01,1.2.3.4,5.6.7.8,tcp,1,2,3,4\r\n";
  const auto parsed = FlowsFromCsv(csv);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_EQ(parsed->size(), 1u);
}

TEST(TraceIoTest, MalformedInputsRejectedWithLineNumbers) {
  const std::string header(kFlowCsvHeader);
  struct Case {
    const char* name;
    std::string csv;
  };
  const std::vector<Case> cases{
      {"no header", "1.0,02:00:00:00:00:01,1.2.3.4,5.6.7.8,udp,1,2,3,4\n"},
      {"missing fields", header + "\n1.0,02:00:00:00:00:01,1.2.3.4\n"},
      {"bad mac", header + "\n1.0,zz:00:00:00:00:01,1.2.3.4,5.6.7.8,udp,1,2,3,4\n"},
      {"bad ip", header + "\n1.0,02:00:00:00:00:01,1.2.3.999,5.6.7.8,udp,1,2,3,4\n"},
      {"bad proto", header + "\n1.0,02:00:00:00:00:01,1.2.3.4,5.6.7.8,gre,1,2,3,4\n"},
      {"bad port", header + "\n1.0,02:00:00:00:00:01,1.2.3.4,5.6.7.8,udp,x,2,3,4\n"},
      {"bad bytes", header + "\n1.0,02:00:00:00:00:01,1.2.3.4,5.6.7.8,udp,1,2,-3,4\n"},
      {"bad time", header + "\nnope,02:00:00:00:00:01,1.2.3.4,5.6.7.8,udp,1,2,3,4\n"},
  };
  for (const auto& c : cases) {
    const auto parsed = FlowsFromCsv(c.csv);
    EXPECT_FALSE(parsed.ok()) << c.name;
    if (!parsed.ok()) {
      EXPECT_NE(parsed.error().message.find("line"), std::string::npos) << c.name;
    }
  }
}

TEST(TraceIoTest, FinalLineWithoutTrailingNewlineIsNotDropped) {
  const std::string with_newline =
      std::string(kFlowCsvHeader) +
      "\n1.0,02:00:00:00:00:01,1.2.3.4,5.6.7.8,udp,123,99,1000,2\n"
      "2.0,02:00:00:00:00:01,1.2.3.4,5.6.7.8,tcp,1,2,3,4\n";
  std::string without_newline = with_newline;
  without_newline.pop_back();
  const auto a = FlowsFromCsv(with_newline);
  const auto b = FlowsFromCsv(without_newline);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok()) << b.error().message;
  ASSERT_EQ(b->size(), 2u) << "final sample silently dropped";
  EXPECT_EQ((*a)[1].key, (*b)[1].key);
  EXPECT_EQ((*a)[1].bytes, (*b)[1].bytes);

  // Header-only document without a trailing newline is a valid empty trace.
  const auto header_only = FlowsFromCsv(std::string(kFlowCsvHeader));
  ASSERT_TRUE(header_only.ok());
  EXPECT_TRUE(header_only->empty());
}

TEST(TraceIoTest, EmptyFieldsAreErrorsNotSilentDrops) {
  const std::string header(kFlowCsvHeader);
  const std::vector<std::pair<const char*, std::string>> cases{
      {"all fields empty", header + "\n,,,,,,,,\n"},
      {"empty time", header + "\n,02:00:00:00:00:01,1.2.3.4,5.6.7.8,udp,1,2,3,4\n"},
      {"empty mac", header + "\n1.0,,1.2.3.4,5.6.7.8,udp,1,2,3,4\n"},
      {"empty src ip", header + "\n1.0,02:00:00:00:00:01,,5.6.7.8,udp,1,2,3,4\n"},
      {"empty proto", header + "\n1.0,02:00:00:00:00:01,1.2.3.4,5.6.7.8,,1,2,3,4\n"},
      {"empty port", header + "\n1.0,02:00:00:00:00:01,1.2.3.4,5.6.7.8,udp,,2,3,4\n"},
      {"empty bytes", header + "\n1.0,02:00:00:00:00:01,1.2.3.4,5.6.7.8,udp,1,2,,4\n"},
      {"empty packets", header + "\n1.0,02:00:00:00:00:01,1.2.3.4,5.6.7.8,udp,1,2,3,\n"},
      {"trailing comma", header + "\n1.0,02:00:00:00:00:01,1.2.3.4,5.6.7.8,udp,1,2,3,4,\n"},
      {"lone commas line", header + "\n,,,\n"},
  };
  for (const auto& [name, csv] : cases) {
    const auto parsed = FlowsFromCsv(csv);
    EXPECT_FALSE(parsed.ok()) << name;
    if (!parsed.ok()) {
      EXPECT_NE(parsed.error().message.find("line 2"), std::string::npos) << name;
    }
  }
}

TEST(TraceIoTest, MalformedRowsDoNotPoisonLaterParsesAndReportExactLine) {
  // A malformed row mid-document reports its own (1-based) line number even
  // with comments, blank lines and CRLF endings mixed in.
  const std::string csv = std::string(kFlowCsvHeader) +
                          "\n# comment\r\n\n"
                          "4.0,02:00:00:00:00:01,1.2.3.4,5.6.7.8,udp,1,2,3,4\n"
                          "5.0,02:00:00:00:00:01,1.2.3.4,5.6.7.8,udp,1,2,3\n";
  const auto parsed = FlowsFromCsv(csv);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().message.find("line 5"), std::string::npos)
      << parsed.error().message;
  // Oversized numeric field (longer than the parse buffer) is rejected, not
  // truncated or read out of range.
  const std::string huge(100, '1');
  const auto oversized = FlowsFromCsv(std::string(kFlowCsvHeader) + "\n" + huge +
                                      ",02:00:00:00:00:01,1.2.3.4,5.6.7.8,udp,1,2,3,4\n");
  EXPECT_FALSE(oversized.ok());
}

TEST(TraceIoTest, EmptyDocumentRejected) {
  EXPECT_FALSE(FlowsFromCsv("").ok());
  // Header-only is a valid empty trace.
  const auto parsed = FlowsFromCsv(std::string(kFlowCsvHeader) + "\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->empty());
}

TEST(TraceIoTest, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "stellar_trace_io_test.csv").string();
  const std::vector<net::FlowSample> samples{Sample(1.0, 10.0), Sample(2.0, 20.0)};
  ASSERT_TRUE(WriteFlowCsvFile(path, samples).ok());
  const auto parsed = ReadFlowCsvFile(path);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->size(), 2u);
  std::remove(path.c_str());
}

TEST(TraceIoTest, MissingFileIsError) {
  EXPECT_FALSE(ReadFlowCsvFile("/nonexistent/definitely/missing.csv").ok());
}

}  // namespace
}  // namespace stellar::traffic
