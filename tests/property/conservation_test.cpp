// Property tests for the data-plane invariants: traffic is conserved across
// every classification outcome (delivered + all drop classes == offered),
// ports never emit above capacity, shapers never pass above their rate, and
// the token bucket never exceeds its long-term rate budget — for *random*
// policies and traffic mixes, not hand-picked ones.
#include <gtest/gtest.h>

#include "filter/qos.hpp"
#include "filter/token_bucket.hpp"
#include "ixp/fabric.hpp"
#include "net/ports.hpp"
#include "util/rng.hpp"

namespace stellar {
namespace {

net::FlowSample RandomFlow(util::Rng& rng, const net::Prefix4& dst_space) {
  net::FlowSample s;
  s.key.src_mac =
      net::MacAddress::ForRouter(static_cast<std::uint32_t>(rng.uniform_int(60001, 60040)));
  s.key.src_ip = net::IPv4Address(static_cast<std::uint32_t>(rng.uniform_int(1, 0xdfffffff)));
  s.key.dst_ip = net::IPv4Address(dst_space.address().value() |
                                  static_cast<std::uint32_t>(rng.uniform_int(
                                      1, (1u << (32 - dst_space.length())) - 1)));
  s.key.proto = rng.chance(0.5) ? net::IpProto::kUdp
                : rng.chance(0.9) ? net::IpProto::kTcp
                                  : net::IpProto::kIcmp;
  s.key.src_port = static_cast<std::uint16_t>(rng.uniform_int(0, 65535));
  s.key.dst_port = static_cast<std::uint16_t>(rng.uniform_int(0, 65535));
  s.bytes = static_cast<std::uint64_t>(rng.uniform(1e3, 5e8));
  s.packets = s.bytes / 1000;
  return s;
}

filter::FilterRule RandomRule(util::Rng& rng, const net::Prefix4& dst_space) {
  filter::FilterRule rule;
  if (rng.chance(0.7)) rule.match.dst_prefix = dst_space;
  if (rng.chance(0.6)) {
    rule.match.proto = rng.chance(0.7) ? net::IpProto::kUdp : net::IpProto::kTcp;
  }
  if (rng.chance(0.5)) {
    rule.match.src_port =
        filter::PortRange::Single(static_cast<std::uint16_t>(rng.uniform_int(0, 1024)));
  }
  if (rng.chance(0.2)) {
    const auto lo = static_cast<std::uint16_t>(rng.uniform_int(0, 60000));
    rule.match.dst_port = filter::PortRange{lo, static_cast<std::uint16_t>(
                                                    lo + rng.uniform_int(0, 5000))};
  }
  const double action = rng.uniform();
  if (action < 0.4) {
    rule.action = filter::FilterAction::kDrop;
  } else if (action < 0.8) {
    rule.action = filter::FilterAction::kShape;
    rule.shape_rate_mbps = rng.uniform(10.0, 2000.0);
  } else {
    rule.action = filter::FilterAction::kForward;
  }
  return rule;
}

class ConservationTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConservationTest, QosConservesTrafficForRandomPoliciesAndMixes) {
  util::Rng rng(GetParam());
  const auto dst_space = net::Prefix4::Parse("100.10.10.0/24").value();
  for (int iter = 0; iter < 60; ++iter) {
    filter::QosPolicy policy;
    const int n_rules = static_cast<int>(rng.uniform_int(0, 8));
    for (int r = 0; r < n_rules; ++r) {
      policy.add_rule(static_cast<filter::RuleId>(r + 1), RandomRule(rng, dst_space));
    }
    std::vector<net::FlowSample> demand;
    const int n_flows = static_cast<int>(rng.uniform_int(1, 60));
    for (int f = 0; f < n_flows; ++f) demand.push_back(RandomFlow(rng, dst_space));
    const double capacity = rng.uniform(100.0, 20'000.0);
    const double bin_s = rng.uniform(0.5, 30.0);

    const auto result = ApplyEgressQos(demand, policy, capacity, bin_s);

    // Conservation.
    EXPECT_NEAR(result.offered_mbps,
                result.delivered_mbps + result.rule_dropped_mbps +
                    result.shaper_dropped_mbps + result.congestion_dropped_mbps,
                result.offered_mbps * 1e-6 + 0.2);
    // Port capacity respected (fluid tolerance).
    EXPECT_LE(result.delivered_mbps, capacity * 1.001 + 0.1);
    // Per-flow delivered never exceeds per-flow offered.
    std::unordered_map<net::FlowKey, std::uint64_t> offered_by_key;
    for (const auto& d : demand) offered_by_key[d.key] += d.bytes;
    for (const auto& out : result.delivered) {
      EXPECT_LE(out.bytes, offered_by_key.at(out.key));
    }
    // Per-rule counters: dropped + delivered <= matched.
    for (const auto& [id, counters] : result.rule_counters) {
      EXPECT_LE(counters.dropped_bytes + counters.delivered_bytes,
                counters.matched_bytes + 1);
    }
  }
}

TEST_P(ConservationTest, ShapersNeverExceedTheirRate) {
  util::Rng rng(GetParam() + 100);
  const auto dst_space = net::Prefix4::Parse("100.10.10.0/24").value();
  for (int iter = 0; iter < 40; ++iter) {
    filter::QosPolicy policy;
    filter::FilterRule shaper;
    shaper.match.proto = net::IpProto::kUdp;
    shaper.action = filter::FilterAction::kShape;
    shaper.shape_rate_mbps = rng.uniform(10.0, 500.0);
    policy.add_rule(1, shaper);

    std::vector<net::FlowSample> demand;
    for (int f = 0; f < 20; ++f) demand.push_back(RandomFlow(rng, dst_space));
    const auto result = ApplyEgressQos(demand, policy, 1e6, 1.0);

    double udp_delivered = 0.0;
    for (const auto& out : result.delivered) {
      if (out.key.proto == net::IpProto::kUdp) udp_delivered += out.mbps(1.0);
    }
    EXPECT_LE(udp_delivered, shaper.shape_rate_mbps * 1.001 + 0.1);
  }
}

TEST_P(ConservationTest, FabricConservesAcrossAllDropClasses) {
  util::Rng rng(GetParam() + 200);
  filter::EdgeRouter er("er1", filter::TcamLimits{});
  ixp::Fabric fabric(er);
  const auto space_a = net::Prefix4::Parse("100.10.10.0/24").value();
  const auto space_b = net::Prefix4::Parse("100.10.20.0/24").value();
  er.add_port(1, 500.0);
  er.add_port(2, 5'000.0);
  fabric.register_owner(space_a, 1);
  fabric.register_owner(space_b, 2);
  ASSERT_TRUE(er.install_rule(1, RandomRule(rng, space_a)).ok());
  ASSERT_TRUE(er.install_rule(2, RandomRule(rng, space_b)).ok());
  fabric.set_ingress_blackhole_fn([](const net::MacAddress& mac, net::IPv4Address) {
    return mac.bytes()[5] % 5 == 0;  // Some members blackhole everything.
  });

  for (int iter = 0; iter < 30; ++iter) {
    std::vector<net::FlowSample> offered;
    const int n = static_cast<int>(rng.uniform_int(1, 80));
    for (int f = 0; f < n; ++f) {
      auto flow = RandomFlow(rng, rng.chance(0.5) ? space_a : space_b);
      if (rng.chance(0.1)) flow.key.dst_ip = net::IPv4Address(9, 9, 9, 9);  // Unrouted.
      offered.push_back(flow);
    }
    const auto report = fabric.deliver(offered, 1.0);
    EXPECT_NEAR(report.offered_mbps,
                report.delivered_mbps + report.unrouted_mbps + report.rtbh_dropped_mbps +
                    report.rule_dropped_mbps + report.shaper_dropped_mbps +
                    report.congestion_dropped_mbps,
                report.offered_mbps * 1e-6 + 0.2);
  }
}

TEST_P(ConservationTest, TokenBucketNeverExceedsLongTermBudget) {
  util::Rng rng(GetParam() + 300);
  for (int iter = 0; iter < 20; ++iter) {
    const double rate = rng.uniform(0.5, 20.0);
    const double burst = rng.uniform(1.0, 10.0);
    filter::TokenBucket bucket(rate, burst);
    double now = 0.0;
    double granted = 0.0;
    for (int op = 0; op < 2000; ++op) {
      now += rng.exponential(5.0);  // Aggressive arrival rate.
      const double want = rng.uniform(0.1, std::min(burst, 2.0));
      if (bucket.try_consume(want, now)) granted += want;
    }
    EXPECT_LE(granted, burst + rate * now + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConservationTest, ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace stellar
