// Encode→decode round-trip property tests for both Stellar signal codecs
// (extended communities and large communities), plus regression coverage for
// two historical codec bugs:
//   1. EncodeSignal/EncodeSignalLarge silently truncated fractional
//      shape_rate_mbps to uint32 — a 0.5 Mbps shape request became a drop.
//      Encoding now rejects non-integral / negative / NaN / overflowing rates.
//   2. DecodeSignal/DecodeSignalLarge resolved duplicate action communities
//      last-wins — conflicting rates from a mangled or adversarial update were
//      silently collapsed. Conflicting duplicates are now a decode error;
//      identical duplicates remain idempotent.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <vector>

#include "core/signal.hpp"
#include "util/rng.hpp"

namespace stellar::core {
namespace {

constexpr std::uint16_t kIxp = 64500;
constexpr std::uint32_t kBigIxp = 4200001234;  // 4-byte ASN, needs large communities.

const RuleKind kAllKinds[] = {RuleKind::kDropAll,    RuleKind::kProtocol,
                              RuleKind::kUdpSrcPort, RuleKind::kUdpDstPort,
                              RuleKind::kTcpSrcPort, RuleKind::kTcpDstPort,
                              RuleKind::kPredefined};

/// A random well-formed signal: up to 6 rules, rate absent or a positive
/// integral Mbps value (the only states the wire format can represent exactly
/// and distinguishably — rate 0 and "no action community" both mean drop).
Signal RandomSignal(util::Rng& rng) {
  Signal s;
  const int n = static_cast<int>(rng.uniform_int(0, 6));
  for (int i = 0; i < n; ++i) {
    SignalRule rule;
    rule.kind = kAllKinds[rng.uniform_int(0, 6)];
    rule.value = static_cast<std::uint16_t>(rng.uniform_int(0, 0xffff));
    s.rules.push_back(rule);
  }
  if (rng.uniform_int(0, 1) == 1) {
    s.shape_rate_mbps = static_cast<double>(rng.uniform_int(1, 0xffffffff));
  }
  return s;
}

/// Decoding sorts and deduplicates match rules; apply the same normalization
/// to the input so round-trip comparison is exact.
Signal Normalized(Signal s) {
  std::sort(s.rules.begin(), s.rules.end());
  s.rules.erase(std::unique(s.rules.begin(), s.rules.end()), s.rules.end());
  return s;
}

class SignalRoundTripTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SignalRoundTripTest, ExtendedCommunityCodecRoundTrips) {
  util::Rng rng(GetParam());
  for (int iter = 0; iter < 2000; ++iter) {
    const Signal signal = RandomSignal(rng);
    auto encoded = EncodeSignal(kIxp, signal);
    ASSERT_TRUE(encoded.ok()) << encoded.error().message;
    auto decoded = DecodeSignal(kIxp, *encoded);
    ASSERT_TRUE(decoded.ok()) << decoded.error().message;
    EXPECT_EQ(*decoded, Normalized(signal));
  }
}

TEST_P(SignalRoundTripTest, LargeCommunityCodecRoundTrips) {
  util::Rng rng(GetParam() + 500);
  for (int iter = 0; iter < 2000; ++iter) {
    const Signal signal = RandomSignal(rng);
    auto encoded = EncodeSignalLarge(kBigIxp, signal);
    ASSERT_TRUE(encoded.ok()) << encoded.error().message;
    auto decoded = DecodeSignalLarge(kBigIxp, *encoded);
    ASSERT_TRUE(decoded.ok()) << decoded.error().message;
    EXPECT_EQ(*decoded, Normalized(signal));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SignalRoundTripTest, ::testing::Values(1, 2, 3));

TEST(SignalCodecValidationTest, FractionalRateIsRejectedNotTruncated) {
  Signal signal;
  signal.rules.push_back({RuleKind::kUdpSrcPort, 123});
  signal.shape_rate_mbps = 0.5;  // Used to truncate to 0 Mbps == drop-all.
  EXPECT_FALSE(EncodeSignal(kIxp, signal).ok());
  EXPECT_FALSE(EncodeSignalLarge(kBigIxp, signal).ok());
  signal.shape_rate_mbps = 200.25;
  EXPECT_FALSE(EncodeSignal(kIxp, signal).ok());
  EXPECT_FALSE(EncodeSignalLarge(kBigIxp, signal).ok());
}

TEST(SignalCodecValidationTest, NegativeNanAndOverflowRatesAreRejected) {
  Signal signal;
  for (const double bad : {-1.0, std::numeric_limits<double>::quiet_NaN(),
                           4294967296.0, 1e18}) {
    signal.shape_rate_mbps = bad;
    EXPECT_FALSE(EncodeSignal(kIxp, signal).ok()) << bad;
    EXPECT_FALSE(EncodeSignalLarge(kBigIxp, signal).ok()) << bad;
  }
}

TEST(SignalCodecValidationTest, ZeroAndMaxRatesAreValid) {
  Signal signal;
  signal.rules.push_back({RuleKind::kDropAll, 0});
  signal.shape_rate_mbps = 0.0;  // Explicit drop: valid, no action community.
  EXPECT_EQ(EncodeSignal(kIxp, signal).value().size(), 1u);
  EXPECT_EQ(EncodeSignalLarge(kBigIxp, signal).value().size(), 1u);
  signal.shape_rate_mbps = 4294967295.0;  // Largest representable rate.
  auto decoded = DecodeSignal(kIxp, EncodeSignal(kIxp, signal).value());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->shape_rate_mbps, 4294967295.0);
}

TEST(SignalCodecValidationTest, ConflictingDuplicateActionsAreDecodeErrors) {
  // Two action communities with different rates used to resolve last-wins.
  std::vector<bgp::ExtendedCommunity> ecs = {
      bgp::ExtendedCommunity::TwoOctetAs(kStellarActionSubtype, kIxp, 200),
      bgp::ExtendedCommunity::TwoOctetAs(kStellarActionSubtype, kIxp, 500),
  };
  auto decoded = DecodeSignal(kIxp, ecs);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, "stellar.signal");

  std::vector<bgp::LargeCommunity> lcs = {
      {kBigIxp, kStellarLargeActionFunction << 24, 200},
      {kBigIxp, kStellarLargeActionFunction << 24, 500},
  };
  auto decoded_large = DecodeSignalLarge(kBigIxp, lcs);
  ASSERT_FALSE(decoded_large.ok());
  EXPECT_EQ(decoded_large.error().code, "stellar.signal");
}

TEST(SignalCodecValidationTest, IdenticalDuplicateActionsAreIdempotent) {
  std::vector<bgp::ExtendedCommunity> ecs = {
      bgp::ExtendedCommunity::TwoOctetAs(kStellarActionSubtype, kIxp, 200),
      bgp::ExtendedCommunity::TwoOctetAs(kStellarActionSubtype, kIxp, 200),
  };
  auto decoded = DecodeSignal(kIxp, ecs);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->shape_rate_mbps, 200.0);

  std::vector<bgp::LargeCommunity> lcs = {
      {kBigIxp, kStellarLargeActionFunction << 24, 300},
      {kBigIxp, kStellarLargeActionFunction << 24, 300},
  };
  auto decoded_large = DecodeSignalLarge(kBigIxp, lcs);
  ASSERT_TRUE(decoded_large.ok());
  EXPECT_EQ(decoded_large->shape_rate_mbps, 300.0);
}

}  // namespace
}  // namespace stellar::core
