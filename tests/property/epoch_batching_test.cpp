// Epoch batching equivalence properties (chaos-seed harness style).
//
// Part A — controller diff epochs: any interleaving of announce / withdraw /
// modify updates coalesced into ONE diff epoch must leave the data plane in
// exactly the state produced by processing the same updates one at a time.
// The controller's incremental path falls back to the full rescan whenever
// admission control could bind, so the property must hold both under and
// over the per-port rule budget.
//
// Part B — network-manager batching: the batched/coalescing queue
// (Config::batch_apply) must realize byte-identical installed rule sets to
// the classic per-change queue for the same change sequence, while consuming
// strictly fewer rate-limiter tokens when there is churn to coalesce.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "core/controller.hpp"
#include "core/network_manager.hpp"
#include "filter/edge_router.hpp"
#include "net/ports.hpp"

namespace stellar::core {
namespace {

net::Prefix4 P4(const char* text) { return net::Prefix4::Parse(text).value(); }

constexpr std::uint16_t kIxp = 64500;

// ---------------------------------------------------------------------------
// Part A: controller epoch interleaving.

/// Controller behind a fake route-server ADD-PATH session, with the periodic
/// processor effectively disabled so the test controls epoch boundaries.
struct EpochController {
  sim::EventQueue queue;
  RulePortal portal;
  std::unique_ptr<bgp::Session> server;
  std::unique_ptr<BlackholingController> controller;
  /// Data-plane replica: change emissions applied in order (install =
  /// upsert, remove = erase), keyed by change key.
  std::map<std::string, std::string> replica;

  explicit EpochController(int max_rules_per_port) {
    auto [server_side, controller_side] = bgp::MakeLink(queue);
    bgp::SessionConfig server_config;
    server_config.local_asn = kIxp;
    server_config.router_id = net::IPv4Address(10, 99, 0, 1);
    server_config.add_path_tx = true;
    server = std::make_unique<bgp::Session>(queue, server_side, server_config);
    server->start();

    BlackholingController::Config config;
    config.ixp_asn = kIxp;
    config.max_rules_per_port = max_rules_per_port;
    config.process_interval_s = 1e9;  // Epochs are driven manually.
    controller = std::make_unique<BlackholingController>(
        queue, controller_side, config,
        [](bgp::Asn asn) -> std::optional<BlackholingController::PortDirectoryEntry> {
          if (asn == 65001) return BlackholingController::PortDirectoryEntry{11, 1000.0};
          if (asn == 65002) return BlackholingController::PortDirectoryEntry{12, 1000.0};
          return std::nullopt;
        },
        &portal);
    controller->set_change_sink([this](ConfigChange c) {
      if (c.op == ConfigChange::Op::kInstall) {
        replica[c.key] = c.str();
      } else {
        replica.erase(c.key);
      }
    });
    queue.run_until(sim::Seconds(1.0));
  }

  void deliver() { queue.run_until(queue.now() + sim::Seconds(0.1)); }
};

/// One abstract RIB operation: announce (or re-announce with new content) a
/// signaling route, or withdraw it.
struct RibOp {
  bool withdraw = false;
  net::Prefix4 prefix;
  bgp::PathId path_id = 1;
  bgp::Asn origin = 65001;
  Signal signal;
};

Signal RandomSignal(std::mt19937_64& rng) {
  Signal s;
  const int variant = static_cast<int>(rng() % 4);
  switch (variant) {
    case 0:
      s.rules.push_back({RuleKind::kUdpSrcPort, net::kPortNtp});
      break;
    case 1:
      s.rules.push_back({RuleKind::kUdpSrcPort, net::kPortDns});
      s.rules.push_back({RuleKind::kProtocol, 17});
      break;
    case 2:
      s.rules.push_back({RuleKind::kProtocol, 6});
      s.shape_rate_mbps = static_cast<double>(100 + rng() % 900);
      break;
    default:
      s.rules.push_back({RuleKind::kTcpDstPort, 443});
      break;
  }
  return s;
}

std::vector<RibOp> RandomEpoch(std::mt19937_64& rng, std::set<std::string>& live,
                               std::size_t ops) {
  // A small prefix universe with repeats so announce/modify/withdraw churn
  // lands on the same (prefix, path) identities within one epoch.
  static const char* kPrefixes[] = {"100.10.0.1/32", "100.10.0.2/32", "100.10.0.3/32",
                                    "100.20.0.0/28", "100.20.0.16/28", "100.30.1.1/32"};
  std::vector<RibOp> epoch;
  for (std::size_t i = 0; i < ops; ++i) {
    RibOp op;
    op.prefix = P4(kPrefixes[rng() % std::size(kPrefixes)]);
    op.path_id = 1 + static_cast<bgp::PathId>(rng() % 3);
    // A controller-session path-id identifies the announcing member (the
    // route server validates origin == member), so origin is a function of
    // path_id — announcing one path-id from two origins cannot happen.
    op.origin = (op.path_id % 2 == 0) ? 65002 : 65001;
    const std::string id = op.prefix.str() + "#" + std::to_string(op.path_id);
    if (live.contains(id) && rng() % 3 == 0) {
      op.withdraw = true;
      live.erase(id);
    } else {
      op.signal = RandomSignal(rng);
      live.insert(id);
    }
    epoch.push_back(std::move(op));
  }
  return epoch;
}

void Announce(EpochController& c, const RibOp& op) {
  bgp::UpdateMessage u;
  if (op.withdraw) {
    u.withdrawn = {{op.path_id, op.prefix}};
  } else {
    u.attrs.origin = bgp::Origin::kIgp;
    u.attrs.as_path = {{bgp::AsPathSegment::Type::kSequence, {op.origin}}};
    u.attrs.next_hop = net::IPv4Address(10, 99, 1, 1);
    u.attrs.extended_communities = EncodeSignal(kIxp, op.signal).value();
    u.announced = {{op.path_id, op.prefix}};
  }
  c.server->announce(u);
}

/// Desired-state digest: key -> rule payload, for cross-controller equality.
std::map<std::string, std::string> DesiredDigest(const BlackholingController& c) {
  std::map<std::string, std::string> out;
  for (const auto& [key, change] : c.desired()) out[key] = change.str();
  return out;
}

class EpochInterleavingTest : public ::testing::TestWithParam<std::uint64_t> {};

void RunInterleavingProperty(std::uint64_t seed, int max_rules_per_port,
                             bool expect_incremental_epochs) {
  std::mt19937_64 rng_a(seed);
  std::mt19937_64 rng_b(seed);
  EpochController batched(max_rules_per_port);
  EpochController serial(max_rules_per_port);
  std::set<std::string> live_a;
  std::set<std::string> live_b;

  for (int round = 0; round < 12; ++round) {
    const auto epoch_a = RandomEpoch(rng_a, live_a, 6);
    const auto epoch_b = RandomEpoch(rng_b, live_b, 6);
    ASSERT_EQ(epoch_a.size(), epoch_b.size());  // Same seed => same epochs.

    // Batched: the whole epoch lands in the RIB, then ONE process() round
    // coalesces every per-prefix delta into a single change-set.
    for (const auto& op : epoch_a) Announce(batched, op);
    batched.deliver();
    batched.controller->process();

    // Serial: one process() round after every single update.
    for (const auto& op : epoch_b) {
      Announce(serial, op);
      serial.deliver();
      serial.controller->process();
    }

    // The final realized rule set must be identical after every epoch, no
    // matter how the deltas were sliced into process() rounds.
    ASSERT_EQ(batched.replica, serial.replica) << "seed=" << seed << " round=" << round;
    ASSERT_EQ(DesiredDigest(*batched.controller), DesiredDigest(*serial.controller))
        << "seed=" << seed << " round=" << round;
  }
  // Sanity: with an uncontended budget, the batched side must actually
  // exercise the incremental path (under admission pressure every epoch may
  // legitimately fall back to the full rescan).
  if (expect_incremental_epochs) {
    EXPECT_GT(batched.controller->stats().epochs_incremental, 0u) << "seed=" << seed;
  }
}

TEST_P(EpochInterleavingTest, BatchedEpochMatchesOneByOne) {
  RunInterleavingProperty(GetParam(), /*max_rules_per_port=*/64,
                          /*expect_incremental_epochs=*/true);
}

TEST_P(EpochInterleavingTest, BatchedEpochMatchesOneByOneUnderAdmissionPressure) {
  // A 2-rule budget forces rejections, saturated ports, and full-pass
  // fallbacks; the equivalence must survive all of it.
  RunInterleavingProperty(GetParam(), /*max_rules_per_port=*/2,
                          /*expect_incremental_epochs=*/false);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EpochInterleavingTest, ::testing::Values(1, 2, 3, 4));

// ---------------------------------------------------------------------------
// Part B: manager batching differential.

struct ManagerRig {
  sim::EventQueue queue;
  filter::EdgeRouter router;
  QosConfigCompiler compiler;
  std::unique_ptr<NetworkManager> nm;

  explicit ManagerRig(bool batch_apply)
      : router("er", filter::TcamLimits{100000, 100000, 0, 0}), compiler(router) {
    for (filter::PortId port = 11; port <= 14; ++port) router.add_port(port, 1000.0);
    NetworkManager::Config config;
    config.batch_apply = batch_apply;
    nm = std::make_unique<NetworkManager>(queue, compiler, config);
  }

  /// Byte-exact dump of the realized data plane: every installed key plus
  /// every per-port rule payload, in sorted order.
  std::string dump() {
    std::string out;
    std::vector<std::string> keys = compiler.installed_keys();
    std::sort(keys.begin(), keys.end());
    for (const auto& key : keys) out += key + "\n";
    std::vector<filter::PortId> ports = router.ports();
    std::sort(ports.begin(), ports.end());
    for (const filter::PortId port : ports) {
      std::vector<std::string> rules;
      for (const auto& installed : router.policy(port).rules()) {
        rules.push_back(installed.rule.str());
      }
      std::sort(rules.begin(), rules.end());
      for (const auto& rule : rules) {
        out += "port" + std::to_string(port) + " " + rule + "\n";
      }
    }
    return out;
  }
};

ConfigChange MakeChange(ConfigChange::Op op, const std::string& key, filter::PortId port,
                        std::uint16_t src_port) {
  ConfigChange c;
  c.op = op;
  c.member = 65000 + port;
  c.port = port;
  c.rule.match.dst_prefix = P4("100.10.10.10/32");
  c.rule.match.proto = net::IpProto::kUdp;
  c.rule.match.src_port = filter::PortRange::Single(src_port);
  c.rule.action = filter::FilterAction::kDrop;
  c.key = key;
  return c;
}

class ManagerBatchingTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ManagerBatchingTest, BatchedQueueRealizesIdenticalRuleSet) {
  const std::uint64_t seed = GetParam();
  ManagerRig batched(/*batch_apply=*/true);
  ManagerRig serial(/*batch_apply=*/false);

  // Controller-shaped change stream: installs of fresh keys, removals of
  // installed keys, modify churn (remove + reinstall), and within-epoch
  // install->remove flapping that the batched queue should annihilate.
  std::mt19937_64 rng(seed);
  struct LiveRule {
    std::string key;
    filter::PortId port;
  };
  std::vector<LiveRule> installed;
  std::vector<ConfigChange> stream;
  int next_key = 0;
  for (int epoch = 0; epoch < 10; ++epoch) {
    const int ops = 4 + static_cast<int>(rng() % 5);
    for (int i = 0; i < ops; ++i) {
      const filter::PortId port = 11 + static_cast<filter::PortId>(rng() % 4);
      const auto roll = rng() % 4;
      if (roll == 0 && !installed.empty()) {
        // Withdraw an installed rule (removals carry the rule's real port,
        // exactly as the controller's desired_ bookkeeping does).
        const std::size_t pick = rng() % installed.size();
        const LiveRule live = installed[pick];
        installed.erase(installed.begin() + static_cast<long>(pick));
        stream.push_back(MakeChange(ConfigChange::Op::kRemove, live.key, live.port, 0));
      } else if (roll == 1) {
        // Install-then-remove flap inside one epoch: never reaches hardware
        // in the batched queue, installs-then-removes in the serial one.
        const std::string key = "flap" + std::to_string(next_key++);
        stream.push_back(MakeChange(ConfigChange::Op::kInstall, key, port, 123));
        stream.push_back(MakeChange(ConfigChange::Op::kRemove, key, port, 123));
      } else if (roll == 2 && !installed.empty()) {
        // Modify: remove + reinstall with a new payload (controller idiom).
        const LiveRule& live = installed[rng() % installed.size()];
        stream.push_back(MakeChange(ConfigChange::Op::kRemove, live.key, live.port, 0));
        stream.push_back(MakeChange(ConfigChange::Op::kInstall, live.key, live.port,
                                    static_cast<std::uint16_t>(1024 + rng() % 1000)));
      } else {
        const std::string key = "rule" + std::to_string(next_key++);
        stream.push_back(MakeChange(ConfigChange::Op::kInstall, key, port,
                                    static_cast<std::uint16_t>(1024 + rng() % 1000)));
        installed.push_back(LiveRule{key, port});
      }
    }
  }

  for (const auto& change : stream) {
    batched.nm->enqueue(change);
    serial.nm->enqueue(change);
  }
  batched.queue.run_until(sim::Seconds(10000.0));
  serial.queue.run_until(sim::Seconds(10000.0));
  ASSERT_TRUE(batched.nm->in_flight().empty());
  ASSERT_TRUE(serial.nm->in_flight().empty());

  // Byte-identical final rule sets...
  EXPECT_EQ(batched.dump(), serial.dump()) << "seed=" << seed;
  // ...with strictly less token-bucket work on the batched side: the flap
  // generator guarantees coalescible churn every epoch.
  EXPECT_GT(batched.nm->stats().coalesced, 0u) << "seed=" << seed;
  EXPECT_LT(batched.nm->stats().batches, serial.nm->stats().applied) << "seed=" << seed;
  EXPECT_EQ(batched.router.tcam_release_errors(), 0u);
  EXPECT_EQ(serial.router.tcam_release_errors(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ManagerBatchingTest, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace stellar::core
