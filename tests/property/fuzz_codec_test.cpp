// Fuzz-style robustness tests: the wire decoders must never crash, loop, or
// read out of bounds on adversarial input — malformed BGP from a peer is an
// expected event at an IXP, not a precondition violation. Every mutation of
// a valid message must either decode cleanly or return an error Result.
#include <gtest/gtest.h>

#include "bgp/flowspec.hpp"
#include "bgp/message.hpp"
#include "core/signal.hpp"
#include "net/ports.hpp"
#include "util/rng.hpp"

namespace stellar {
namespace {

bgp::UpdateMessage TemplateUpdate() {
  bgp::UpdateMessage u;
  u.attrs.origin = bgp::Origin::kIgp;
  u.attrs.as_path = {{bgp::AsPathSegment::Type::kSequence, {65001, 3320}}};
  u.attrs.next_hop = net::IPv4Address(10, 99, 1, 1);
  u.attrs.communities = {bgp::kBlackhole};
  core::Signal signal;
  signal.rules.push_back({core::RuleKind::kUdpSrcPort, net::kPortNtp});
  signal.shape_rate_mbps = 200.0;
  u.attrs.extended_communities = core::EncodeSignal(64500, signal).value();
  u.attrs.large_communities = {{64500, 7, 9}};
  bgp::MpReachIPv6 reach;
  reach.next_hop = net::IPv6Address::Parse("2001:db8::1").value();
  reach.nlri = {net::Prefix6::Parse("2001:db8::/32").value()};
  u.attrs.mp_reach_ipv6 = reach;
  u.announced = {{0, net::Prefix4::Parse("100.10.10.10/32").value()},
                 {0, net::Prefix4::Parse("60.1.0.0/20").value()}};
  u.withdrawn = {{0, net::Prefix4::Parse("60.2.0.0/20").value()}};
  return u;
}

class CodecFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecFuzzTest, SingleByteMutationsNeverCrash) {
  const auto bytes = bgp::Encode(TemplateUpdate());
  util::Rng rng(GetParam());
  for (int iter = 0; iter < 4000; ++iter) {
    auto mutated = bytes;
    const auto pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(mutated.size()) - 1));
    mutated[pos] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    // Must terminate and either succeed or produce a structured error.
    auto decoded = bgp::Decode(mutated);
    if (decoded.ok()) {
      // Whatever decoded must re-encode without crashing.
      (void)bgp::Encode(*decoded);
    } else {
      EXPECT_FALSE(decoded.error().code.empty());
    }
  }
}

TEST_P(CodecFuzzTest, TruncationsNeverCrash) {
  const auto bytes = bgp::Encode(TemplateUpdate());
  for (std::size_t len = 0; len <= bytes.size(); ++len) {
    auto framed = bgp::DecodeFramed({bytes.data(), len});
    if (framed.ok() && framed->message) {
      EXPECT_EQ(len, bytes.size());  // Only the full buffer holds a message.
    }
  }
}

TEST_P(CodecFuzzTest, MultiByteMutationsNeverCrash) {
  const auto bytes = bgp::Encode(TemplateUpdate());
  util::Rng rng(GetParam() + 1000);
  for (int iter = 0; iter < 2000; ++iter) {
    auto mutated = bytes;
    const int mutations = static_cast<int>(rng.uniform_int(2, 16));
    for (int m = 0; m < mutations; ++m) {
      mutated[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(mutated.size()) - 1))] =
          static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    (void)bgp::Decode(mutated);
  }
}

TEST_P(CodecFuzzTest, RandomGarbageNeverCrashes) {
  util::Rng rng(GetParam() + 2000);
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<std::uint8_t> garbage(
        static_cast<std::size_t>(rng.uniform_int(0, 256)));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    (void)bgp::DecodeFramed(garbage);
    (void)bgp::flowspec::DecodeNlri(garbage);
  }
}

TEST_P(CodecFuzzTest, FlowspecMutationsNeverCrash) {
  bgp::flowspec::Rule rule;
  rule.components.push_back({bgp::flowspec::ComponentType::kDstPrefix,
                             net::Prefix4::Parse("100.10.10.10/32").value(),
                             {}});
  rule.components.push_back(
      {bgp::flowspec::ComponentType::kIpProtocol, {}, {bgp::flowspec::Eq(17)}});
  rule.components.push_back(
      {bgp::flowspec::ComponentType::kSrcPort, {}, bgp::flowspec::Range(0, 1023)});
  const auto bytes = bgp::flowspec::EncodeNlri(rule).value();
  util::Rng rng(GetParam() + 3000);
  for (int iter = 0; iter < 4000; ++iter) {
    auto mutated = bytes;
    mutated[static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(mutated.size()) - 1))] =
        static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    (void)bgp::flowspec::DecodeNlri(mutated);
  }
}

TEST_P(CodecFuzzTest, SignalDecoderHandlesArbitraryExtendedCommunities) {
  util::Rng rng(GetParam() + 4000);
  for (int iter = 0; iter < 4000; ++iter) {
    std::vector<bgp::ExtendedCommunity> ecs;
    const int n = static_cast<int>(rng.uniform_int(0, 6));
    for (int i = 0; i < n; ++i) {
      bgp::ExtendedCommunity::Bytes b{};
      for (auto& byte : b) byte = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
      ecs.emplace_back(b);
    }
    auto decoded = core::DecodeSignal(64500, ecs);
    if (decoded.ok()) {
      // Decoded rules must round-trip.
      auto re = core::DecodeSignal(64500, core::EncodeSignal(64500, *decoded).value());
      ASSERT_TRUE(re.ok());
      EXPECT_EQ(*re, *decoded);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzzTest, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace stellar
