// Differential tests for AggregatePrefixes/AggregatePrefixes6 against the
// documented reference semantics ("minimal, sorted prefix list covering
// exactly the union of the inputs"): a naive O(n^2) fixpoint of
// dedup + contained-prefix removal + sibling merge. The minimal prefix cover
// of an address set is unique, so the fast single-sweep implementation must
// match the reference byte-for-byte, and both must cover exactly the same
// addresses as the input.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "net/aggregate.hpp"
#include "net/ip.hpp"
#include "util/rng.hpp"

namespace stellar::net {
namespace {

bool Siblings4(const Prefix4& a, const Prefix4& b) {
  if (a.length() != b.length() || a.length() == 0) return false;
  return (a.address().value() ^ b.address().value()) == (1u << (32 - a.length()));
}

bool Siblings6(const Prefix6& a, const Prefix6& b) {
  if (a.length() != b.length() || a.length() == 0) return false;
  const int bit_index = a.length() - 1;
  const auto byte = static_cast<std::size_t>(bit_index / 8);
  const auto mask = static_cast<std::uint8_t>(0x80 >> (bit_index % 8));
  for (std::size_t i = 0; i < 16; ++i) {
    const std::uint8_t diff = a.address().bytes()[i] ^ b.address().bytes()[i];
    if (i == byte ? diff != mask : diff != 0) return false;
  }
  return true;
}

/// Reference semantics: iterate dedup / containment removal / sibling merge to
/// a fixpoint. Quadratic and obviously correct; the production sweep must
/// produce the identical (unique) minimal cover.
template <typename PrefixT, typename SiblingFn, typename ParentFn>
std::vector<PrefixT> ReferenceAggregate(std::vector<PrefixT> set, SiblingFn siblings,
                                        ParentFn parent) {
  std::sort(set.begin(), set.end());
  set.erase(std::unique(set.begin(), set.end()), set.end());
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < set.size() && !changed; ++i) {
      for (std::size_t j = 0; j < set.size() && !changed; ++j) {
        if (i == j) continue;
        if (set[i].contains(set[j])) {
          set.erase(set.begin() + static_cast<std::ptrdiff_t>(j));
          changed = true;
        } else if (siblings(set[i], set[j])) {
          const PrefixT merged = parent(set[i]);
          set.erase(set.begin() + static_cast<std::ptrdiff_t>(std::max(i, j)));
          set.erase(set.begin() + static_cast<std::ptrdiff_t>(std::min(i, j)));
          set.push_back(merged);
          changed = true;
        }
      }
    }
  }
  std::sort(set.begin(), set.end());
  return set;
}

std::vector<Prefix4> Reference4(std::vector<Prefix4> set) {
  return ReferenceAggregate(
      std::move(set), Siblings4, [](const Prefix4& p) {
        return Prefix4(p.address(), static_cast<std::uint8_t>(p.length() - 1));
      });
}

std::vector<Prefix6> Reference6(std::vector<Prefix6> set) {
  return ReferenceAggregate(
      std::move(set), Siblings6, [](const Prefix6& p) {
        return Prefix6(p.address(), static_cast<std::uint8_t>(p.length() - 1));
      });
}

/// Random sets dense enough that duplicates, supersets, adjacent siblings and
/// mixed lengths all occur: addresses confined to a tiny region so prefixes
/// collide, and each draw sometimes emits both halves of a parent.
std::vector<Prefix4> RandomSet4(util::Rng& rng) {
  std::vector<Prefix4> set;
  const int n = static_cast<int>(rng.uniform_int(0, 24));
  for (int i = 0; i < n; ++i) {
    const auto len = static_cast<std::uint8_t>(rng.uniform_int(20, 28));
    // 10.0.0.0/18 region: ~64 distinct /24s, so nesting is the common case.
    const auto addr = IPv4Address(
        0x0a000000u | (static_cast<std::uint32_t>(rng.uniform_int(0, 0x3fff)) << 4));
    const Prefix4 p(addr, len);
    set.push_back(p);
    if (rng.uniform_int(0, 3) == 0) set.push_back(p);  // Duplicate.
    if (rng.uniform_int(0, 2) == 0 && len < 32) {
      // Both halves of p: guarantees sibling merges (possibly cascading).
      set.emplace_back(p.address(), static_cast<std::uint8_t>(len + 1));
      set.emplace_back(IPv4Address(p.address().value() | (1u << (32 - (len + 1)))),
                       static_cast<std::uint8_t>(len + 1));
    }
    if (rng.uniform_int(0, 3) == 0 && len > 18) {
      set.emplace_back(p.address(), static_cast<std::uint8_t>(len - 2));  // Superset.
    }
  }
  return set;
}

std::vector<Prefix6> RandomSet6(util::Rng& rng) {
  std::vector<Prefix6> set;
  const int n = static_cast<int>(rng.uniform_int(0, 16));
  for (int i = 0; i < n; ++i) {
    const auto len = static_cast<std::uint8_t>(rng.uniform_int(34, 44));
    IPv6Address::Bytes b{};
    b[0] = 0x20;
    b[1] = 0x01;
    b[2] = 0x0d;
    b[3] = 0xb8;
    b[4] = static_cast<std::uint8_t>(rng.uniform_int(0, 3));
    b[5] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    const Prefix6 p(IPv6Address(b), len);
    set.push_back(p);
    if (rng.uniform_int(0, 3) == 0) set.push_back(p);
    if (rng.uniform_int(0, 2) == 0 && len < 128) {
      const auto child_len = static_cast<std::uint8_t>(len + 1);
      set.emplace_back(p.address(), child_len);
      IPv6Address::Bytes hb = p.address().bytes();
      hb[static_cast<std::size_t>((child_len - 1) / 8)] |=
          static_cast<std::uint8_t>(0x80 >> ((child_len - 1) % 8));
      set.emplace_back(IPv6Address(hb), child_len);
    }
    if (rng.uniform_int(0, 3) == 0 && len > 34) {
      set.emplace_back(p.address(), static_cast<std::uint8_t>(len - 2));
    }
  }
  return set;
}

class AggregateDiffTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AggregateDiffTest, V4MatchesReferenceSemantics) {
  util::Rng rng(GetParam());
  for (int iter = 0; iter < 400; ++iter) {
    const auto input = RandomSet4(rng);
    const auto got = AggregatePrefixes(input);
    const auto want = Reference4(input);
    ASSERT_EQ(got, want) << "iter " << iter;
    // Output must be sorted and cover exactly the same addresses.
    EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
    for (int s = 0; s < 64; ++s) {
      const IPv4Address addr(
          0x0a000000u | static_cast<std::uint32_t>(rng.uniform_int(0, 0x7ffff)));
      EXPECT_EQ(CoveredBy(input, addr), CoveredBy(got, addr)) << addr.str();
    }
    // Aggregating is idempotent.
    EXPECT_EQ(AggregatePrefixes(got), got);
  }
}

TEST_P(AggregateDiffTest, V6MatchesReferenceSemantics) {
  util::Rng rng(GetParam() + 77);
  for (int iter = 0; iter < 250; ++iter) {
    const auto input = RandomSet6(rng);
    const auto got = AggregatePrefixes6(input);
    const auto want = Reference6(input);
    ASSERT_EQ(got, want) << "iter " << iter;
    EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
    for (int s = 0; s < 32; ++s) {
      IPv6Address::Bytes b{};
      b[0] = 0x20;
      b[1] = 0x01;
      b[2] = 0x0d;
      b[3] = 0xb8;
      b[4] = static_cast<std::uint8_t>(rng.uniform_int(0, 3));
      b[5] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
      b[6] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
      const IPv6Address addr(b);
      EXPECT_EQ(CoveredBy6(input, addr), CoveredBy6(got, addr)) << addr.str();
    }
    EXPECT_EQ(AggregatePrefixes6(got), got);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AggregateDiffTest, ::testing::Values(1, 2, 3, 4));

// Deterministic corner cases called out in the issue.
TEST(AggregateDiffTest, HandAuthoredCornerCases) {
  const auto p = [](const char* s) { return Prefix4::Parse(s).value(); };
  // Four /26 siblings cascade into one /24.
  EXPECT_EQ(AggregatePrefixes({p("10.0.0.0/26"), p("10.0.0.64/26"), p("10.0.0.128/26"),
                               p("10.0.0.192/26")}),
            std::vector<Prefix4>{p("10.0.0.0/24")});
  // A merge result swallowed by an earlier superset.
  EXPECT_EQ(AggregatePrefixes({p("10.0.0.0/23"), p("10.0.1.0/25"), p("10.0.1.128/25")}),
            std::vector<Prefix4>{p("10.0.0.0/23")});
  // Adjacent but not siblings (would span an odd boundary).
  EXPECT_EQ(AggregatePrefixes({p("10.0.1.0/24"), p("10.0.2.0/24")}),
            (std::vector<Prefix4>{p("10.0.1.0/24"), p("10.0.2.0/24")}));
  // Duplicates plus mixed lengths.
  EXPECT_EQ(AggregatePrefixes({p("10.0.0.0/24"), p("10.0.0.0/24"), p("10.0.0.0/25"),
                               p("10.0.0.128/25")}),
            std::vector<Prefix4>{p("10.0.0.0/24")});
  // Default route swallows everything.
  EXPECT_EQ(AggregatePrefixes({p("0.0.0.0/0"), p("10.0.0.0/8"), p("192.168.0.0/16")}),
            std::vector<Prefix4>{p("0.0.0.0/0")});
}

}  // namespace
}  // namespace stellar::net
