// Model-checking style property tests under random churn:
//   - the RIB against a reference std::map model,
//   - the route server + controller against random announce/withdraw/signal
//     sequences, checking the global invariants that must hold in *any*
//     state: members never hold routes that violate their import policy,
//     installed rules correspond exactly to currently signaled routes, and
//     TCAM accounting matches the installed rule set.
#include <gtest/gtest.h>

#include <map>

#include "core/stellar.hpp"
#include "net/ports.hpp"
#include "util/rng.hpp"

namespace stellar {
namespace {

class ChurnTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChurnTest, RibMatchesReferenceModel) {
  util::Rng rng(GetParam());
  bgp::Rib rib;
  std::map<std::tuple<net::Prefix4, bgp::PeerId, bgp::PathId>, bgp::PathAttributes> model;

  for (int op = 0; op < 5000; ++op) {
    const net::Prefix4 prefix(
        net::IPv4Address((60u << 24) |
                         (static_cast<std::uint32_t>(rng.uniform_int(0, 15)) << 12)),
        static_cast<std::uint8_t>(rng.uniform_int(16, 32)));
    const auto peer = static_cast<bgp::PeerId>(rng.uniform_int(1, 4));
    const auto path_id = static_cast<bgp::PathId>(rng.uniform_int(0, 2));
    if (rng.chance(0.6)) {
      bgp::Route route;
      route.prefix = prefix;
      route.peer = peer;
      route.path_id = path_id;
      route.attrs.origin = bgp::Origin::kIgp;
      route.attrs.med = static_cast<std::uint32_t>(rng.uniform_int(0, 5));
      const bool changed = rib.insert(route);
      auto key = std::make_tuple(prefix, peer, path_id);
      const auto it = model.find(key);
      EXPECT_EQ(changed, it == model.end() || !(it->second == route.attrs));
      model[key] = route.attrs;
    } else if (rng.chance(0.8)) {
      const bool removed = rib.withdraw(prefix, peer, path_id);
      EXPECT_EQ(removed, model.erase(std::make_tuple(prefix, peer, path_id)) > 0);
    } else {
      rib.withdraw_peer(peer);
      for (auto it = model.begin(); it != model.end();) {
        it = std::get<1>(it->first) == peer ? model.erase(it) : std::next(it);
      }
    }
    ASSERT_EQ(rib.size(), model.size());
  }
  // Final full comparison.
  const auto snapshot = rib.snapshot();
  ASSERT_EQ(snapshot.size(), model.size());
  for (const auto& route : snapshot) {
    const auto it = model.find(std::make_tuple(route.prefix, route.peer, route.path_id));
    ASSERT_NE(it, model.end());
    EXPECT_EQ(route.attrs, it->second);
  }
}

TEST_P(ChurnTest, StellarStateConsistentUnderRandomSignalChurn) {
  util::Rng rng(GetParam() + 50);
  sim::EventQueue queue;
  ixp::Ixp ixp(queue);

  constexpr int kMembers = 6;
  std::vector<ixp::MemberRouter*> members;
  for (int i = 0; i < kMembers; ++i) {
    ixp::MemberSpec spec;
    spec.asn = static_cast<bgp::Asn>(65001 + i);
    spec.address_space = net::Prefix4(
        net::IPv4Address((100u << 24) | (10u << 16) | (static_cast<std::uint32_t>(i) << 8)),
        24);
    spec.policy.accepts_more_specifics = rng.chance(0.5);
    members.push_back(&ixp.add_member(spec));
  }
  core::StellarSystem stellar(ixp);
  ixp.settle(30.0);

  // Random signal churn: members announce/withdraw Stellar rules for random
  // hosts in their own space.
  std::set<std::pair<int, std::uint8_t>> active;  // (member, host octet).
  for (int op = 0; op < 120; ++op) {
    const int m = static_cast<int>(rng.uniform_int(0, kMembers - 1));
    const auto host = static_cast<std::uint8_t>(rng.uniform_int(1, 6));
    const net::Prefix4 target = net::Prefix4::HostRoute(net::IPv4Address(
        members[static_cast<std::size_t>(m)]->info().address_space.address().value() | host));
    if (rng.chance(0.6)) {
      core::Signal signal;
      signal.rules.push_back(
          {core::RuleKind::kUdpSrcPort,
           static_cast<std::uint16_t>(rng.chance(0.5) ? net::kPortNtp : net::kPortDns)});
      if (rng.chance(0.3)) signal.shape_rate_mbps = 100.0;
      core::SignalAdvancedBlackholing(*members[static_cast<std::size_t>(m)],
                                      ixp.route_server(), target, signal);
      active.insert({m, host});
    } else {
      core::WithdrawAdvancedBlackholing(*members[static_cast<std::size_t>(m)], target);
      active.erase({m, host});
    }
    if (op % 10 == 0) ixp.settle(5.0);
  }
  ixp.settle(60.0);  // Drain the token-bucket queue completely.

  // Invariant 1: the manager applied everything without failures.
  EXPECT_EQ(stellar.manager().stats().failed, 0u);
  EXPECT_EQ(stellar.manager().queue_depth(), 0u);

  // Invariant 2: installed rules == active signals, each on its owner's port.
  std::size_t installed = 0;
  for (int m = 0; m < kMembers; ++m) {
    const auto& policy =
        ixp.edge_router().policy(members[static_cast<std::size_t>(m)]->info().port);
    installed += policy.rule_count();
    std::size_t expected = 0;
    for (const auto& [member, host] : active) {
      if (member == m) ++expected;
    }
    EXPECT_EQ(policy.rule_count(), expected) << "member " << m;
    // Every rule's dst prefix lies inside the member's own space.
    for (const auto& rule : policy.rules()) {
      ASSERT_TRUE(rule.rule.match.dst_prefix.has_value());
      EXPECT_TRUE(members[static_cast<std::size_t>(m)]->info().address_space.contains(
          *rule.rule.match.dst_prefix));
    }
  }
  EXPECT_EQ(installed, active.size());
  EXPECT_EQ(stellar.controller().desired().size(), active.size());

  // Invariant 3: TCAM accounting equals the sum over installed rules.
  std::int64_t expected_l3l4 = 0;
  for (int m = 0; m < kMembers; ++m) {
    for (const auto& rule :
         ixp.edge_router().policy(members[static_cast<std::size_t>(m)]->info().port).rules()) {
      expected_l3l4 += rule.rule.match.l3l4_criteria_count();
    }
  }
  EXPECT_EQ(ixp.edge_router().tcam().l3l4_in_use(), expected_l3l4);

  // Invariant 4: members never hold routes their import policy forbids, and
  // never their own prefix.
  for (int m = 0; m < kMembers; ++m) {
    const auto& member = *members[static_cast<std::size_t>(m)];
    member.rib().for_each([&](const bgp::Route& route) {
      if (route.prefix.length() > 24) {
        EXPECT_TRUE(member.info().policy.accepts_more_specifics);
      }
      EXPECT_FALSE(member.info().address_space == route.prefix);
    });
  }
}

TEST_P(ChurnTest, RouteServerChurnKeepsControllerRibInSync) {
  util::Rng rng(GetParam() + 99);
  sim::EventQueue queue;
  ixp::Ixp ixp(queue);
  std::vector<ixp::MemberRouter*> members;
  for (int i = 0; i < 4; ++i) {
    ixp::MemberSpec spec;
    spec.asn = static_cast<bgp::Asn>(65001 + i);
    spec.address_space = net::Prefix4(
        net::IPv4Address((60u << 24) | (static_cast<std::uint32_t>(i) << 12)), 20);
    members.push_back(&ixp.add_member(spec));
  }
  // A plain ADD-PATH observer session (same wiring as the controller's).
  bgp::Rib observer_rib;
  auto endpoint = ixp.route_server().accept_controller();
  bgp::SessionConfig observer_config;
  observer_config.local_asn = ixp.config().asn;
  observer_config.router_id = net::IPv4Address(10, 99, 0, 9);
  observer_config.add_path_rx = true;
  bgp::Session observer(queue, endpoint, observer_config);
  observer.set_update_handler(
      [&observer_rib](const bgp::UpdateMessage& u) { observer_rib.apply_update(0, u); });
  observer.start();
  ixp.settle(30.0);

  for (int op = 0; op < 200; ++op) {
    auto& member = *members[static_cast<std::size_t>(rng.uniform_int(0, 3))];
    const net::Prefix4 prefix(
        net::IPv4Address(member.info().address_space.address().value() |
                         (static_cast<std::uint32_t>(rng.uniform_int(0, 3)) << 8)),
        static_cast<std::uint8_t>(rng.uniform_int(21, 24)));
    if (rng.chance(0.65)) {
      member.announce(prefix);
    } else {
      member.withdraw(prefix);
    }
    if (op % 20 == 0) ixp.settle(5.0);
  }
  ixp.settle(30.0);

  // The observer's RIB must mirror the route server's Adj-RIB-In exactly
  // (modulo the path-id relabeling: one path per (prefix, member)).
  const auto server_routes = ixp.route_server().adj_rib_in().snapshot();
  EXPECT_EQ(observer_rib.size(), server_routes.size());
  for (const auto& route : server_routes) {
    bool found = false;
    for (const auto& observed : observer_rib.routes_for(route.prefix)) {
      if (observed.attrs == route.attrs) found = true;
    }
    EXPECT_TRUE(found) << route.str();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnTest, ::testing::Values(5, 6, 7));

}  // namespace
}  // namespace stellar
