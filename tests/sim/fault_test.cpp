#include "sim/fault.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace stellar::sim {
namespace {

std::vector<std::uint8_t> Payload(std::size_t n) {
  std::vector<std::uint8_t> bytes(n);
  for (std::size_t i = 0; i < n; ++i) bytes[i] = static_cast<std::uint8_t>(i);
  return bytes;
}

TEST(FaultInjectorTest, LinksCreatedWhileDisarmedAreNotWrapped) {
  EventQueue queue;
  FaultPlan plan;
  plan.drop_probability = 1.0;
  FaultInjector injector(queue, plan);
  auto [ea, eb] = bgp::MakeLink(queue);  // Before arm(): untouched.
  int received = 0;
  eb->set_receive_handler([&](std::span<const std::uint8_t>) { ++received; });
  ea->send(Payload(4));
  queue.run_until(Seconds(1.0));
  EXPECT_EQ(received, 1);
  EXPECT_EQ(injector.stats().links_wrapped, 0u);
}

TEST(FaultInjectorTest, DropProbabilityOneDropsEverything) {
  EventQueue queue;
  FaultPlan plan;
  plan.drop_probability = 1.0;
  FaultInjector injector(queue, plan);
  injector.arm();
  auto [ea, eb] = bgp::MakeLink(queue);
  int received = 0;
  eb->set_receive_handler([&](std::span<const std::uint8_t>) { ++received; });
  for (int i = 0; i < 5; ++i) ea->send(Payload(8));
  queue.run_until(Seconds(1.0));
  EXPECT_EQ(received, 0);
  EXPECT_EQ(injector.stats().links_wrapped, 1u);
  EXPECT_EQ(injector.stats().messages_dropped, 5u);
  EXPECT_EQ(ea->stats().dropped_bytes, 40u);
}

TEST(FaultInjectorTest, CorruptionFlipsExactlyOneByte) {
  EventQueue queue;
  FaultPlan plan;
  plan.corrupt_probability = 1.0;
  FaultInjector injector(queue, plan);
  injector.arm();
  auto [ea, eb] = bgp::MakeLink(queue);
  std::vector<std::uint8_t> received;
  eb->set_receive_handler([&](std::span<const std::uint8_t> bytes) {
    received.assign(bytes.begin(), bytes.end());
  });
  const auto sent = Payload(16);
  ea->send(sent);
  queue.run_until(Seconds(1.0));
  ASSERT_EQ(received.size(), sent.size());
  int differing = 0;
  for (std::size_t i = 0; i < sent.size(); ++i) {
    if (received[i] != sent[i]) ++differing;
  }
  EXPECT_EQ(differing, 1);
  EXPECT_EQ(injector.stats().messages_corrupted, 1u);
}

TEST(FaultInjectorTest, JitterDelaysButDelivers) {
  EventQueue queue;
  FaultPlan plan;
  plan.jitter_max_s = 5.0;
  FaultInjector injector(queue, plan);
  injector.arm();
  auto [ea, eb] = bgp::MakeLink(queue);
  int received = 0;
  eb->set_receive_handler([&](std::span<const std::uint8_t>) { ++received; });
  ea->send(Payload(4));
  queue.run_until(Seconds(5.1));  // Latency (1 ms) + jitter < 5 s.
  EXPECT_EQ(received, 1);
  EXPECT_EQ(injector.stats().messages_delayed, 1u);
}

TEST(FaultInjectorTest, FaultsOnlyInsideStormWindow) {
  EventQueue queue;
  FaultPlan plan;
  plan.drop_probability = 1.0;
  plan.window_start_s = 10.0;
  plan.window_end_s = 20.0;
  FaultInjector injector(queue, plan);
  injector.arm();
  auto [ea, eb] = bgp::MakeLink(queue);
  int received = 0;
  eb->set_receive_handler([&](std::span<const std::uint8_t>) { ++received; });
  ea->send(Payload(4));  // t=0: before the storm.
  queue.run_until(Seconds(15.0));
  ea->send(Payload(4));  // t=15: inside.
  queue.run_until(Seconds(25.0));
  ea->send(Payload(4));  // t=25: after.
  queue.run_until(Seconds(30.0));
  EXPECT_EQ(received, 2);
  EXPECT_EQ(injector.stats().messages_dropped, 1u);
}

TEST(FaultInjectorTest, PartitionDropsEverythingWhileActive) {
  EventQueue queue;
  FaultPlan plan;
  plan.partitions.push_back({5.0, 10.0});
  FaultInjector injector(queue, plan);
  injector.arm();
  auto [ea, eb] = bgp::MakeLink(queue);
  int received = 0;
  eb->set_receive_handler([&](std::span<const std::uint8_t>) { ++received; });
  queue.run_until(Seconds(7.0));
  ea->send(Payload(4));  // Inside the partition.
  queue.run_until(Seconds(11.0));
  ea->send(Payload(4));  // Healed.
  queue.run_until(Seconds(12.0));
  EXPECT_EQ(received, 1);
  EXPECT_EQ(injector.stats().partition_drops, 1u);
}

TEST(FaultInjectorTest, SessionKillClosesTheLink) {
  EventQueue queue;
  FaultPlan plan;
  plan.session_kills.push_back({2.0, 0});
  FaultInjector injector(queue, plan);
  injector.arm();
  auto [ea, eb] = bgp::MakeLink(queue);
  queue.run_until(Seconds(3.0));
  EXPECT_TRUE(ea->closed());
  EXPECT_TRUE(eb->closed());
  EXPECT_EQ(injector.stats().kills_executed, 1u);
}

TEST(FaultInjectorTest, KillAllLinksClosesEveryWrappedLink) {
  EventQueue queue;
  FaultPlan plan;
  plan.session_kills.push_back({2.0, FaultPlan::kAllLinks});
  FaultInjector injector(queue, plan);
  injector.arm();
  auto [ea1, eb1] = bgp::MakeLink(queue);
  auto [ea2, eb2] = bgp::MakeLink(queue);
  queue.run_until(Seconds(3.0));
  EXPECT_TRUE(ea1->closed());
  EXPECT_TRUE(ea2->closed());
  EXPECT_EQ(injector.stats().kills_executed, 2u);
}

std::string RunTraceScenario(std::uint64_t seed) {
  EventQueue queue;
  FaultPlan plan;
  plan.seed = seed;
  plan.drop_probability = 0.3;
  plan.corrupt_probability = 0.3;
  plan.jitter_max_s = 0.5;
  FaultInjector injector(queue, plan);
  injector.arm();
  auto [ea, eb] = bgp::MakeLink(queue);
  eb->set_receive_handler([&eb = eb](std::span<const std::uint8_t> bytes) {
    eb->send(std::vector<std::uint8_t>(bytes.begin(), bytes.end()));  // Echo.
  });
  for (int i = 0; i < 50; ++i) ea->send(Payload(static_cast<std::size_t>(8 + i)));
  queue.run_until(Seconds(60.0));
  return injector.trace_text();
}

TEST(FaultInjectorTest, TraceIsByteIdenticalPerSeed) {
  const std::string t1 = RunTraceScenario(42);
  const std::string t2 = RunTraceScenario(42);
  EXPECT_EQ(t1, t2);
  EXPECT_FALSE(t1.empty());
  EXPECT_NE(t1, RunTraceScenario(43));
}

TEST(FaultInjectorTest, DisarmStopsWrappingNewLinks) {
  EventQueue queue;
  FaultPlan plan;
  plan.drop_probability = 1.0;
  FaultInjector injector(queue, plan);
  injector.arm();
  auto [ea1, eb1] = bgp::MakeLink(queue);
  injector.disarm();
  auto [ea2, eb2] = bgp::MakeLink(queue);
  int received = 0;
  eb2->set_receive_handler([&](std::span<const std::uint8_t>) { ++received; });
  ea2->send(Payload(4));
  queue.run_until(Seconds(1.0));
  EXPECT_EQ(received, 1);  // Post-disarm link is clean.
  EXPECT_EQ(injector.stats().links_wrapped, 1u);
}

// ---- FlakyCompiler ---------------------------------------------------------

struct CountingCompiler final : core::ConfigCompiler {
  int applied = 0;
  util::Result<void> apply(const core::ConfigChange&) override {
    ++applied;
    return {};
  }
  [[nodiscard]] std::string_view name() const override { return "counting"; }
};

TEST(FlakyCompilerTest, FailsTransientlyAtProbabilityOne) {
  CountingCompiler inner;
  FlakyCompiler flaky(inner, 1.0, 1);
  core::ConfigChange change;
  const auto result = flaky.apply(change);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, "transient.flaky");
  EXPECT_TRUE(core::NetworkManager::DefaultTransientClassifier(result.error()));
  EXPECT_EQ(inner.applied, 0);
  EXPECT_EQ(flaky.injected_failures(), 1u);
}

TEST(FlakyCompilerTest, PassesThroughAtProbabilityZero) {
  CountingCompiler inner;
  FlakyCompiler flaky(inner, 0.0, 1);
  core::ConfigChange change;
  EXPECT_TRUE(flaky.apply(change).ok());
  EXPECT_EQ(inner.applied, 1);
  EXPECT_EQ(flaky.injected_failures(), 0u);
}

}  // namespace
}  // namespace stellar::sim
