#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace stellar::sim {
namespace {

TEST(EventQueueTest, RunsEventsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(Seconds(2.0), [&] { order.push_back(2); });
  q.schedule_at(Seconds(1.0), [&] { order.push_back(1); });
  q.schedule_at(Seconds(3.0), [&] { order.push_back(3); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), Seconds(3.0));
}

TEST(EventQueueTest, EqualTimesRunFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(Seconds(1.0), [&order, i] { order.push_back(i); });
  }
  q.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueueTest, RunUntilStopsAtBoundary) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(Seconds(1.0), [&] { ++fired; });
  q.schedule_at(Seconds(5.0), [&] { ++fired; });
  q.run_until(Seconds(2.0));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.now(), Seconds(2.0));
  EXPECT_EQ(q.pending(), 1u);
  q.run_until(Seconds(10.0));
  EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, PastEventsRunAtCurrentTime) {
  EventQueue q;
  q.run_until(Seconds(5.0));
  double seen = -1.0;
  q.schedule_at(Seconds(1.0), [&] { seen = q.now().count(); });
  q.run();
  EXPECT_DOUBLE_EQ(seen, 5.0);
}

TEST(EventQueueTest, CallbackCanScheduleMore) {
  EventQueue q;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) q.schedule_after(Seconds(1.0), recurse);
  };
  q.schedule_at(Seconds(0.0), recurse);
  q.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(q.now(), Seconds(4.0));
}

TEST(EventQueueTest, ScheduleAfterUsesCurrentTime) {
  EventQueue q;
  q.run_until(Seconds(10.0));
  double fired_at = 0.0;
  q.schedule_after(Seconds(2.5), [&] { fired_at = q.now().count(); });
  q.run();
  EXPECT_DOUBLE_EQ(fired_at, 12.5);
}

TEST(PeriodicTaskTest, FiresAtPeriod) {
  EventQueue q;
  int count = 0;
  PeriodicTask task(q, Seconds(1.0), [&] { ++count; });
  q.run_until(Seconds(5.5));
  EXPECT_EQ(count, 5);
}

TEST(PeriodicTaskTest, CancelStopsFiring) {
  EventQueue q;
  int count = 0;
  auto task = std::make_unique<PeriodicTask>(q, Seconds(1.0), [&] { ++count; });
  q.run_until(Seconds(2.5));
  EXPECT_EQ(count, 2);
  task->cancel();
  q.run_until(Seconds(10.0));
  EXPECT_EQ(count, 2);
}

TEST(PeriodicTaskTest, DestructorCancels) {
  EventQueue q;
  int count = 0;
  {
    PeriodicTask task(q, Seconds(1.0), [&] { ++count; });
    q.run_until(Seconds(1.5));
  }
  q.run_until(Seconds(10.0));
  EXPECT_EQ(count, 1);
}

}  // namespace
}  // namespace stellar::sim
