#include "core/controller.hpp"

#include <gtest/gtest.h>

#include "net/ports.hpp"

namespace stellar::core {
namespace {

net::Prefix4 P4(const char* text) { return net::Prefix4::Parse(text).value(); }

constexpr std::uint16_t kIxp = 64500;

/// Drives the controller through a fake route-server-side ADD-PATH session.
struct ControllerFixture {
  sim::EventQueue queue;
  RulePortal portal;
  std::unique_ptr<bgp::Session> server;
  std::unique_ptr<BlackholingController> controller;
  std::vector<ConfigChange> changes;

  explicit ControllerFixture(int max_rules_per_port = 64) {
    auto [server_side, controller_side] = bgp::MakeLink(queue);
    bgp::SessionConfig server_config;
    server_config.local_asn = kIxp;
    server_config.router_id = net::IPv4Address(10, 99, 0, 1);
    server_config.add_path_tx = true;
    server = std::make_unique<bgp::Session>(queue, server_side, server_config);
    server->start();

    BlackholingController::Config config;
    config.ixp_asn = kIxp;
    config.max_rules_per_port = max_rules_per_port;
    controller = std::make_unique<BlackholingController>(
        queue, controller_side, config,
        [](bgp::Asn asn) -> std::optional<BlackholingController::PortDirectoryEntry> {
          if (asn == 65001) return BlackholingController::PortDirectoryEntry{11, 1000.0};
          if (asn == 65002) return BlackholingController::PortDirectoryEntry{12, 1000.0};
          return std::nullopt;
        },
        &portal);
    controller->set_change_sink([this](ConfigChange c) { changes.push_back(std::move(c)); });
    queue.run_until(sim::Seconds(1.0));
  }

  void push(const net::Prefix4& prefix, bgp::PathId path_id, bgp::Asn origin,
            const Signal& signal) {
    bgp::UpdateMessage u;
    u.attrs.origin = bgp::Origin::kIgp;
    u.attrs.as_path = {{bgp::AsPathSegment::Type::kSequence, {origin}}};
    u.attrs.next_hop = net::IPv4Address(10, 99, 1, 1);
    u.attrs.extended_communities = EncodeSignal(kIxp, signal).value();
    u.announced = {{path_id, prefix}};
    server->announce(u);
    settle();
  }

  void withdraw(const net::Prefix4& prefix, bgp::PathId path_id) {
    bgp::UpdateMessage u;
    u.withdrawn = {{path_id, prefix}};
    server->announce(u);
    settle();
  }

  void settle() { queue.run_until(queue.now() + sim::Seconds(2.0)); }
};

Signal NtpDrop() {
  Signal s;
  s.rules.push_back({RuleKind::kUdpSrcPort, net::kPortNtp});
  return s;
}

TEST(ControllerTest, SignalBecomesInstallChange) {
  ControllerFixture f;
  f.push(P4("100.10.10.10/32"), 1, 65001, NtpDrop());
  ASSERT_EQ(f.changes.size(), 1u);
  const ConfigChange& c = f.changes[0];
  EXPECT_EQ(c.op, ConfigChange::Op::kInstall);
  EXPECT_EQ(c.member, 65001u);
  EXPECT_EQ(c.port, 11u);
  EXPECT_EQ(c.rule.action, filter::FilterAction::kDrop);
  EXPECT_EQ(c.rule.match.dst_prefix, P4("100.10.10.10/32"));
  EXPECT_EQ(c.rule.match.src_port->lo, net::kPortNtp);
  EXPECT_EQ(f.controller->stats().signals_decoded, 1u);
  EXPECT_EQ(f.controller->desired().size(), 1u);
}

TEST(ControllerTest, ShapingSignalBecomesShapeRule) {
  ControllerFixture f;
  Signal s = NtpDrop();
  s.shape_rate_mbps = 200.0;
  f.push(P4("100.10.10.10/32"), 1, 65001, s);
  ASSERT_EQ(f.changes.size(), 1u);
  EXPECT_EQ(f.changes[0].rule.action, filter::FilterAction::kShape);
  EXPECT_DOUBLE_EQ(f.changes[0].rule.shape_rate_mbps, 200.0);
}

TEST(ControllerTest, WithdrawEmitsRemoval) {
  ControllerFixture f;
  f.push(P4("100.10.10.10/32"), 1, 65001, NtpDrop());
  f.withdraw(P4("100.10.10.10/32"), 1);
  ASSERT_EQ(f.changes.size(), 2u);
  EXPECT_EQ(f.changes[1].op, ConfigChange::Op::kRemove);
  EXPECT_EQ(f.changes[1].key, f.changes[0].key);
  EXPECT_TRUE(f.controller->desired().empty());
}

TEST(ControllerTest, EscalationShapeToDropReplacesRule) {
  ControllerFixture f;
  Signal shape = NtpDrop();
  shape.shape_rate_mbps = 200.0;
  f.push(P4("100.10.10.10/32"), 1, 65001, shape);
  f.push(P4("100.10.10.10/32"), 1, 65001, NtpDrop());  // Same path, now drop.
  ASSERT_EQ(f.changes.size(), 3u);
  EXPECT_EQ(f.changes[1].op, ConfigChange::Op::kRemove);
  EXPECT_EQ(f.changes[2].op, ConfigChange::Op::kInstall);
  EXPECT_EQ(f.changes[2].rule.action, filter::FilterAction::kDrop);
}

TEST(ControllerTest, IdempotentReprocessing) {
  ControllerFixture f;
  f.push(P4("100.10.10.10/32"), 1, 65001, NtpDrop());
  const auto count = f.changes.size();
  f.controller->process();
  f.controller->process();
  EXPECT_EQ(f.changes.size(), count);
}

TEST(ControllerTest, MultipleRulesInOneSignal) {
  ControllerFixture f;
  Signal s;
  s.rules.push_back({RuleKind::kUdpSrcPort, net::kPortNtp});
  s.rules.push_back({RuleKind::kUdpSrcPort, net::kPortDns});
  f.push(P4("100.10.10.10/32"), 1, 65001, s);
  EXPECT_EQ(f.changes.size(), 2u);
}

TEST(ControllerTest, DivergingRulesFromDifferentMembersViaAddPath) {
  // The ADD-PATH corner case of §4.3: the same prefix signaled by two
  // members with different rules — both must be honored.
  ControllerFixture f;
  f.push(P4("100.10.10.10/32"), 1, 65001, NtpDrop());
  Signal dns;
  dns.rules.push_back({RuleKind::kUdpSrcPort, net::kPortDns});
  f.push(P4("100.10.10.10/32"), 2, 65002, dns);
  ASSERT_EQ(f.changes.size(), 2u);
  EXPECT_EQ(f.changes[0].port, 11u);
  EXPECT_EQ(f.changes[1].port, 12u);
  EXPECT_EQ(f.controller->desired().size(), 2u);
}

TEST(ControllerTest, UnknownMemberIsInvalidSignal) {
  ControllerFixture f;
  f.push(P4("100.10.10.10/32"), 1, 65099, NtpDrop());
  EXPECT_TRUE(f.changes.empty());
  EXPECT_GE(f.controller->stats().invalid_signals, 1u);
}

TEST(ControllerTest, RouteWithoutSignalIsIgnored) {
  ControllerFixture f;
  bgp::UpdateMessage u;
  u.attrs.origin = bgp::Origin::kIgp;
  u.attrs.as_path = {{bgp::AsPathSegment::Type::kSequence, {65001}}};
  u.attrs.next_hop = net::IPv4Address(10, 99, 1, 1);
  u.announced = {{1, P4("60.1.0.0/20")}};
  f.server->announce(u);
  f.settle();
  EXPECT_TRUE(f.changes.empty());
  EXPECT_EQ(f.controller->stats().signals_decoded, 0u);
}

TEST(ControllerTest, PredefinedRuleResolvedThroughPortal) {
  ControllerFixture f;
  Signal s;
  s.rules.push_back({RuleKind::kPredefined, 1});  // Catalog rule 1: NTP.
  f.push(P4("100.10.10.10/32"), 1, 65001, s);
  ASSERT_EQ(f.changes.size(), 1u);
  EXPECT_EQ(f.changes[0].rule.match.src_port->lo, net::kPortNtp);
}

TEST(ControllerTest, UnknownPredefinedIdInvalid) {
  ControllerFixture f;
  Signal s;
  s.rules.push_back({RuleKind::kPredefined, 900});
  f.push(P4("100.10.10.10/32"), 1, 65001, s);
  EXPECT_TRUE(f.changes.empty());
  EXPECT_GE(f.controller->stats().invalid_signals, 1u);
}

TEST(ControllerTest, MultipleInvalidRulesCountOneInvalidSignal) {
  // Regression: invalid_signals counts routes, not rules — a signal carrying
  // two bad predefined ids used to increment twice.
  ControllerFixture f;
  Signal s;
  s.rules.push_back({RuleKind::kPredefined, 900});
  s.rules.push_back({RuleKind::kPredefined, 901});
  f.push(P4("100.10.10.10/32"), 1, 65001, s);
  EXPECT_TRUE(f.changes.empty());
  EXPECT_EQ(f.controller->stats().invalid_signals, 1u);
}

TEST(ControllerTest, AdmissionControlCapsRulesPerPort) {
  ControllerFixture f(/*max_rules_per_port=*/2);
  Signal s;
  s.rules.push_back({RuleKind::kUdpSrcPort, 123});
  s.rules.push_back({RuleKind::kUdpSrcPort, 53});
  s.rules.push_back({RuleKind::kUdpSrcPort, 11211});
  s.rules.push_back({RuleKind::kUdpSrcPort, 389});
  f.push(P4("100.10.10.10/32"), 1, 65001, s);
  EXPECT_EQ(f.changes.size(), 2u);
  EXPECT_GE(f.controller->stats().admission_rejected, 2u);
}

TEST(ControllerTest, ReconcileReinstallsMissingRules) {
  ControllerFixture f;
  f.push(P4("100.10.10.10/32"), 1, 65001, NtpDrop());
  ASSERT_EQ(f.changes.size(), 1u);
  const std::string key = f.changes[0].key;
  // The data plane lost the rule (e.g. a crashed apply mid-resync).
  f.controller->set_installed_view([] { return std::vector<std::string>{}; });
  const auto report = f.controller->reconcile();
  EXPECT_EQ(report.missing_reinstalled, 1u);
  EXPECT_EQ(report.orphans_removed, 0u);
  ASSERT_EQ(f.changes.size(), 2u);
  EXPECT_EQ(f.changes[1].op, ConfigChange::Op::kInstall);
  EXPECT_EQ(f.changes[1].key, key);
  EXPECT_EQ(f.changes[1].port, f.changes[0].port);
  EXPECT_EQ(f.controller->stats().reconciliations, 1u);
  EXPECT_EQ(f.controller->stats().missing_reinstalled, 1u);
}

TEST(ControllerTest, ReconcileRemovesOrphanRules) {
  ControllerFixture f;
  f.push(P4("100.10.10.10/32"), 1, 65001, NtpDrop());
  ASSERT_EQ(f.changes.size(), 1u);
  const std::string key = f.changes[0].key;
  // The data plane holds the desired rule plus a stale leftover.
  f.controller->set_installed_view(
      [key] { return std::vector<std::string>{key, "stale/ghost-rule"}; });
  const auto report = f.controller->reconcile();
  EXPECT_EQ(report.orphans_removed, 1u);
  EXPECT_EQ(report.missing_reinstalled, 0u);
  ASSERT_EQ(f.changes.size(), 2u);
  EXPECT_EQ(f.changes[1].op, ConfigChange::Op::kRemove);
  EXPECT_EQ(f.changes[1].key, "stale/ghost-rule");
  EXPECT_EQ(f.controller->stats().orphans_removed, 1u);
}

TEST(ControllerTest, ReconcileOnConsistentStateIsANoop) {
  ControllerFixture f;
  f.push(P4("100.10.10.10/32"), 1, 65001, NtpDrop());
  const std::string key = f.changes[0].key;
  f.controller->set_installed_view([key] { return std::vector<std::string>{key}; });
  const auto report = f.controller->reconcile();
  EXPECT_EQ(report.orphans_removed, 0u);
  EXPECT_EQ(report.missing_reinstalled, 0u);
  EXPECT_EQ(f.changes.size(), 1u);  // Nothing re-emitted.
}

TEST(ControllerTest, PeriodicProcessingRunsWithoutExplicitCalls) {
  ControllerFixture f;
  bgp::UpdateMessage u;
  u.attrs.origin = bgp::Origin::kIgp;
  u.attrs.as_path = {{bgp::AsPathSegment::Type::kSequence, {65001}}};
  u.attrs.next_hop = net::IPv4Address(10, 99, 1, 1);
  u.attrs.extended_communities = EncodeSignal(kIxp, NtpDrop()).value();
  u.announced = {{1, P4("100.10.10.10/32")}};
  f.server->announce(u);
  // Only advance the clock: the PeriodicTask must pick the change up.
  f.queue.run_until(f.queue.now() + sim::Seconds(5.0));
  EXPECT_EQ(f.changes.size(), 1u);
}

}  // namespace
}  // namespace stellar::core
