#include "core/signal.hpp"

#include <gtest/gtest.h>

#include "net/ports.hpp"

namespace stellar::core {
namespace {

constexpr std::uint16_t kIxp = 64500;

TEST(SignalCodecTest, PaperExampleUdpSrc123) {
  // §5.3: "IXP:2:123 — 2 refers to UDP source traffic and 123 to port 123".
  Signal signal;
  signal.rules.push_back({RuleKind::kUdpSrcPort, 123});
  const auto ecs = EncodeSignal(kIxp, signal).value();
  ASSERT_EQ(ecs.size(), 1u);
  EXPECT_EQ(ecs[0].as_number(), kIxp);
  EXPECT_EQ(ecs[0].subtype(), kStellarMatchSubtype);
  EXPECT_EQ(ecs[0].local_admin() >> 24, 2u);
  EXPECT_EQ(ecs[0].local_admin() & 0xffff, 123u);

  const auto decoded = DecodeSignal(kIxp, ecs);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, signal);
}

TEST(SignalCodecTest, ShapingActionRoundTrip) {
  Signal signal;
  signal.rules.push_back({RuleKind::kUdpSrcPort, 123});
  signal.shape_rate_mbps = 200.0;
  EXPECT_TRUE(signal.is_shaping());
  const auto ecs = EncodeSignal(kIxp, signal).value();
  ASSERT_EQ(ecs.size(), 2u);
  const auto decoded = DecodeSignal(kIxp, ecs);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, signal);
}

TEST(SignalCodecTest, DropIsDefaultAction) {
  Signal signal;
  signal.rules.push_back({RuleKind::kDropAll, 0});
  EXPECT_FALSE(signal.is_shaping());
  EXPECT_EQ(EncodeSignal(kIxp, signal).value().size(), 1u);  // No action community.
}

TEST(SignalCodecTest, MultipleRulesSortedAndDeduplicated) {
  Signal signal;
  signal.rules.push_back({RuleKind::kUdpSrcPort, 123});
  signal.rules.push_back({RuleKind::kUdpSrcPort, 53});
  signal.rules.push_back({RuleKind::kUdpSrcPort, 123});  // Duplicate.
  const auto decoded = DecodeSignal(kIxp, EncodeSignal(kIxp, signal).value());
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->rules.size(), 2u);
  EXPECT_EQ(decoded->rules[0].value, 53);
  EXPECT_EQ(decoded->rules[1].value, 123);
}

TEST(SignalCodecTest, IgnoresForeignNamespaces) {
  Signal signal;
  signal.rules.push_back({RuleKind::kUdpSrcPort, 123});
  auto ecs = EncodeSignal(kIxp, signal).value();
  // Another IXP's community and a route target must be ignored.
  ecs.push_back(bgp::ExtendedCommunity::TwoOctetAs(kStellarMatchSubtype, 64999,
                                                   (2u << 24) | 53));
  ecs.push_back(bgp::ExtendedCommunity::TwoOctetAs(
      bgp::ExtendedCommunity::kSubTypeRouteTarget, kIxp, 1));
  const auto decoded = DecodeSignal(kIxp, ecs);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->rules.size(), 1u);
  EXPECT_FALSE(decoded->is_shaping());
}

TEST(SignalCodecTest, HasStellarSignal) {
  Signal signal;
  signal.rules.push_back({RuleKind::kUdpSrcPort, 123});
  const auto ecs = EncodeSignal(kIxp, signal).value();
  EXPECT_TRUE(HasStellarSignal(kIxp, ecs));
  EXPECT_FALSE(HasStellarSignal(64999, ecs));
  EXPECT_FALSE(HasStellarSignal(kIxp, {}));
}

TEST(SignalCodecTest, RejectsUnknownKind) {
  const auto ec =
      bgp::ExtendedCommunity::TwoOctetAs(kStellarMatchSubtype, kIxp, (99u << 24) | 1);
  EXPECT_FALSE(DecodeSignal(kIxp, {&ec, 1}).ok());
}

TEST(SignalCodecTest, RejectsReservedByte) {
  const auto ec = bgp::ExtendedCommunity::TwoOctetAs(kStellarMatchSubtype, kIxp,
                                                     (2u << 24) | (1u << 16) | 123);
  EXPECT_FALSE(DecodeSignal(kIxp, {&ec, 1}).ok());
}

TEST(ToMatchCriteriaTest, UdpSrcPort) {
  const auto victim = net::Prefix4::Parse("100.10.10.10/32").value();
  const auto m = ToMatchCriteria({RuleKind::kUdpSrcPort, 123}, victim);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->dst_prefix, victim);
  EXPECT_EQ(m->proto, net::IpProto::kUdp);
  ASSERT_TRUE(m->src_port.has_value());
  EXPECT_EQ(m->src_port->lo, 123);
  EXPECT_EQ(m->src_port->hi, 123);
}

TEST(ToMatchCriteriaTest, AllKinds) {
  const auto victim = net::Prefix4::Parse("100.10.10.10/32").value();

  const auto drop_all = ToMatchCriteria({RuleKind::kDropAll, 0}, victim);
  ASSERT_TRUE(drop_all.ok());
  EXPECT_FALSE(drop_all->proto.has_value());
  EXPECT_EQ(drop_all->l3l4_criteria_count(), 1);  // Only dst prefix.

  const auto proto = ToMatchCriteria({RuleKind::kProtocol, 17}, victim);
  ASSERT_TRUE(proto.ok());
  EXPECT_EQ(proto->proto, net::IpProto::kUdp);

  const auto tcp_dst = ToMatchCriteria({RuleKind::kTcpDstPort, 80}, victim);
  ASSERT_TRUE(tcp_dst.ok());
  EXPECT_EQ(tcp_dst->proto, net::IpProto::kTcp);
  EXPECT_EQ(tcp_dst->dst_port->lo, 80);

  const auto udp_dst = ToMatchCriteria({RuleKind::kUdpDstPort, 443}, victim);
  ASSERT_TRUE(udp_dst.ok());
  EXPECT_EQ(udp_dst->dst_port->lo, 443);

  const auto tcp_src = ToMatchCriteria({RuleKind::kTcpSrcPort, 179}, victim);
  ASSERT_TRUE(tcp_src.ok());
  EXPECT_EQ(tcp_src->src_port->lo, 179);
}

TEST(ToMatchCriteriaTest, PredefinedNeedsPortal) {
  const auto victim = net::Prefix4::Parse("100.10.10.10/32").value();
  EXPECT_FALSE(ToMatchCriteria({RuleKind::kPredefined, 1}, victim).ok());
}

TEST(SignalRuleTest, Str) {
  EXPECT_EQ((SignalRule{RuleKind::kUdpSrcPort, 123}).str(), "udp-src-port:123");
  EXPECT_EQ((SignalRule{RuleKind::kDropAll, 0}).str(), "drop-all:0");
}

// Property sweep: encode/decode round-trips for every kind/value combination.
class SignalRoundTripTest
    : public ::testing::TestWithParam<std::tuple<RuleKind, std::uint16_t>> {};

TEST_P(SignalRoundTripTest, RoundTrip) {
  Signal signal;
  signal.rules.push_back({std::get<0>(GetParam()), std::get<1>(GetParam())});
  if (std::get<1>(GetParam()) % 2 == 0) signal.shape_rate_mbps = 500.0;
  const auto decoded = DecodeSignal(kIxp, EncodeSignal(kIxp, signal).value());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, signal);
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndValues, SignalRoundTripTest,
    ::testing::Combine(::testing::Values(RuleKind::kDropAll, RuleKind::kProtocol,
                                         RuleKind::kUdpSrcPort, RuleKind::kUdpDstPort,
                                         RuleKind::kTcpSrcPort, RuleKind::kTcpDstPort,
                                         RuleKind::kPredefined),
                       ::testing::Values(0, 1, 53, 123, 11211, 65535)));

}  // namespace
}  // namespace stellar::core
