#include "core/stellar.hpp"

#include <gtest/gtest.h>

#include "net/ports.hpp"

namespace stellar::core {
namespace {

net::Prefix4 P4(const char* text) { return net::Prefix4::Parse(text).value(); }

/// Full stack: IXP with members + StellarSystem on top.
struct StellarFixture {
  sim::EventQueue queue;
  std::unique_ptr<ixp::Ixp> ixp;
  std::unique_ptr<StellarSystem> stellar;
  ixp::MemberRouter* victim;
  ixp::MemberRouter* other;

  StellarFixture() {
    ixp = std::make_unique<ixp::Ixp>(queue);
    ixp::MemberSpec v;
    v.asn = 65001;
    v.port_capacity_mbps = 1000.0;
    v.address_space = P4("100.10.10.0/24");
    victim = &ixp->add_member(v);
    ixp::MemberSpec o;
    o.asn = 65002;
    o.address_space = P4("60.2.0.0/20");
    other = &ixp->add_member(o);
    stellar = std::make_unique<StellarSystem>(*ixp);
    ixp->settle(30.0);
  }

  void settle(double s = 10.0) { ixp->settle(s); }

  net::FlowSample NtpFlow(double mbps) const {
    net::FlowSample s;
    s.key.src_mac = other->info().mac;
    s.key.src_ip = net::IPv4Address(60, 2, 0, 5);
    s.key.dst_ip = net::IPv4Address(100, 10, 10, 10);
    s.key.proto = net::IpProto::kUdp;
    s.key.src_port = net::kPortNtp;
    s.key.dst_port = 5555;
    s.bytes = static_cast<std::uint64_t>(mbps * 1e6 / 8.0);
    return s;
  }
};

Signal NtpDrop() {
  Signal s;
  s.rules.push_back({RuleKind::kUdpSrcPort, net::kPortNtp});
  return s;
}

TEST(StellarSystemTest, SignalInstallsRuleOnVictimEgressPort) {
  StellarFixture f;
  SignalAdvancedBlackholing(*f.victim, f.ixp->route_server(), P4("100.10.10.10/32"), NtpDrop());
  f.settle();
  EXPECT_EQ(f.ixp->edge_router().policy(f.victim->info().port).rule_count(), 1u);
  EXPECT_EQ(f.stellar->manager().stats().applied, 1u);
  // The signal never reached the other member (announce-to-none default).
  EXPECT_TRUE(f.other->rib().routes_for(P4("100.10.10.10/32")).empty());
}

TEST(StellarSystemTest, InstalledRuleDropsAttackKeepsBenign) {
  StellarFixture f;
  SignalAdvancedBlackholing(*f.victim, f.ixp->route_server(), P4("100.10.10.10/32"), NtpDrop());
  f.settle();

  net::FlowSample benign = f.NtpFlow(100);
  benign.key.proto = net::IpProto::kTcp;
  benign.key.src_port = 50'000;
  benign.key.dst_port = 443;
  const std::vector<net::FlowSample> offered{f.NtpFlow(800), benign};
  const auto report = f.ixp->deliver_bin(offered, 1.0);
  EXPECT_NEAR(report.rule_dropped_mbps, 800.0, 1.0);
  EXPECT_NEAR(report.delivered_mbps, 100.0, 1.0);
}

TEST(StellarSystemTest, WithdrawRemovesRule) {
  StellarFixture f;
  SignalAdvancedBlackholing(*f.victim, f.ixp->route_server(), P4("100.10.10.10/32"), NtpDrop());
  f.settle();
  ASSERT_EQ(f.ixp->edge_router().policy(f.victim->info().port).rule_count(), 1u);
  WithdrawAdvancedBlackholing(*f.victim, P4("100.10.10.10/32"));
  f.settle();
  EXPECT_EQ(f.ixp->edge_router().policy(f.victim->info().port).rule_count(), 0u);
}

TEST(StellarSystemTest, ShapingSignalInstallsShaper) {
  StellarFixture f;
  Signal s = NtpDrop();
  s.shape_rate_mbps = 200.0;
  SignalAdvancedBlackholing(*f.victim, f.ixp->route_server(), P4("100.10.10.10/32"), s);
  f.settle();
  const std::vector<net::FlowSample> offered{f.NtpFlow(1000)};
  const auto report = f.ixp->deliver_bin(offered, 1.0);
  EXPECT_NEAR(report.delivered_mbps, 200.0, 2.0);
  EXPECT_NEAR(report.shaper_dropped_mbps, 800.0, 2.0);
}

TEST(StellarSystemTest, TelemetryExposesCounters) {
  StellarFixture f;
  Signal s = NtpDrop();
  s.shape_rate_mbps = 200.0;
  SignalAdvancedBlackholing(*f.victim, f.ixp->route_server(), P4("100.10.10.10/32"), s);
  f.settle();
  const std::vector<net::FlowSample> offered{f.NtpFlow(1000)};
  f.ixp->deliver_bin(offered, 1.0);

  const auto records = f.stellar->telemetry(65001);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].port, f.victim->info().port);
  EXPECT_GT(records[0].counters.matched_bytes, 0u);
  EXPECT_GT(records[0].counters.dropped_bytes, 0u);
  EXPECT_GT(records[0].counters.delivered_bytes, 0u);  // Shaped sample.
  // Telemetry is per member.
  EXPECT_TRUE(f.stellar->telemetry(65002).empty());
}

TEST(StellarSystemTest, PropagateToMembersAlsoWorks) {
  StellarFixture f;
  SignalAdvancedBlackholing(*f.victim, f.ixp->route_server(), P4("100.10.10.10/32"), NtpDrop(),
                            /*also_propagate_to_members=*/true);
  f.settle();
  // Members with default policy reject the /32, but it was exported.
  EXPECT_EQ(f.ixp->edge_router().policy(f.victim->info().port).rule_count(), 1u);
  EXPECT_EQ(f.other->rejected_more_specifics(), 1u);
}

TEST(StellarSystemTest, OnlyPrefixOwnerCanFilter) {
  StellarFixture f;
  // The other member signals for the victim's prefix: the route server's IRR
  // check rejects the announcement, so no rule is installed anywhere.
  SignalAdvancedBlackholing(*f.other, f.ixp->route_server(), P4("100.10.10.10/32"), NtpDrop());
  f.settle();
  EXPECT_EQ(f.ixp->edge_router().policy(f.victim->info().port).rule_count(), 0u);
  EXPECT_EQ(f.ixp->edge_router().policy(f.other->info().port).rule_count(), 0u);
  EXPECT_GE(f.ixp->route_server().rejects().irr_unauthorized, 1u);
}

TEST(StellarSystemTest, EscalationShapeThenDrop) {
  StellarFixture f;
  Signal shape = NtpDrop();
  shape.shape_rate_mbps = 200.0;
  SignalAdvancedBlackholing(*f.victim, f.ixp->route_server(), P4("100.10.10.10/32"), shape);
  f.settle();
  SignalAdvancedBlackholing(*f.victim, f.ixp->route_server(), P4("100.10.10.10/32"), NtpDrop());
  f.settle();
  const auto& policy = f.ixp->edge_router().policy(f.victim->info().port);
  ASSERT_EQ(policy.rule_count(), 1u);
  EXPECT_EQ(policy.rules()[0].rule.action, filter::FilterAction::kDrop);
}

}  // namespace
}  // namespace stellar::core
