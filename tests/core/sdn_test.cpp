#include "core/sdn.hpp"

#include <gtest/gtest.h>

#include "core/network_manager.hpp"
#include "net/ports.hpp"

namespace stellar::core {
namespace {

net::FlowSample Flow(net::IpProto proto, std::uint16_t src_port, double mbps) {
  net::FlowSample s;
  s.key.src_mac = net::MacAddress::ForRouter(65001);
  s.key.src_ip = net::IPv4Address(1, 2, 3, 4);
  s.key.dst_ip = net::IPv4Address(100, 10, 10, 10);
  s.key.proto = proto;
  s.key.src_port = src_port;
  s.key.dst_port = 5555;
  s.bytes = static_cast<std::uint64_t>(mbps * 1e6 / 8.0);
  s.packets = s.bytes / 1200;
  return s;
}

FlowEntry DropNtpEntry(std::uint64_t cookie, std::uint16_t priority = 100) {
  FlowEntry e;
  e.cookie = cookie;
  e.priority = priority;
  e.match.proto = net::IpProto::kUdp;
  e.match.src_port = filter::PortRange::Single(net::kPortNtp);
  e.action = filter::FilterAction::kDrop;
  return e;
}

TEST(FlowTableTest, AddRemoveCapacity) {
  FlowTable table(2);
  EXPECT_TRUE(table.add(DropNtpEntry(1)).ok());
  EXPECT_TRUE(table.add(DropNtpEntry(2)).ok());
  const auto full = table.add(DropNtpEntry(3));
  ASSERT_FALSE(full.ok());
  EXPECT_EQ(full.error().code, "sdn.table_full");
  EXPECT_TRUE(table.remove(1));
  EXPECT_FALSE(table.remove(1));
  EXPECT_TRUE(table.add(DropNtpEntry(3)).ok());
  EXPECT_EQ(table.size(), 2u);
}

TEST(FlowTableTest, DuplicateCookieRejected) {
  FlowTable table(10);
  EXPECT_TRUE(table.add(DropNtpEntry(1)).ok());
  EXPECT_FALSE(table.add(DropNtpEntry(1)).ok());
}

TEST(FlowTableTest, HighestPriorityWins) {
  FlowTable table(10);
  FlowEntry allow = DropNtpEntry(1, 50);
  allow.action = filter::FilterAction::kForward;
  ASSERT_TRUE(table.add(allow).ok());
  ASSERT_TRUE(table.add(DropNtpEntry(2, 200)).ok());
  const FlowEntry* hit = table.match(Flow(net::IpProto::kUdp, 123, 1).key);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->cookie, 2u);
}

TEST(FlowTableTest, NoMatchReturnsNull) {
  FlowTable table(10);
  ASSERT_TRUE(table.add(DropNtpEntry(1)).ok());
  EXPECT_EQ(table.match(Flow(net::IpProto::kTcp, 443, 1).key), nullptr);
}

TEST(FlowTableTest, ApplyDropsAndCounts) {
  FlowTable table(10);
  ASSERT_TRUE(table.add(DropNtpEntry(1)).ok());
  const std::vector<net::FlowSample> demand{Flow(net::IpProto::kUdp, 123, 800),
                                            Flow(net::IpProto::kTcp, 443, 100)};
  const auto r = table.apply(demand, 1000.0, 1.0);
  EXPECT_NEAR(r.rule_dropped_mbps, 800.0, 1.0);
  EXPECT_NEAR(r.delivered_mbps, 100.0, 1.0);
  const FlowEntry* e = table.entry(1);
  ASSERT_NE(e, nullptr);
  EXPECT_GT(e->byte_count, 0u);
}

TEST(FlowTableTest, MeterShapesTraffic) {
  FlowTable table(10);
  FlowEntry meter = DropNtpEntry(1);
  meter.action = filter::FilterAction::kShape;
  meter.meter_rate_mbps = 200.0;
  ASSERT_TRUE(table.add(meter).ok());
  const std::vector<net::FlowSample> demand{Flow(net::IpProto::kUdp, 123, 1000)};
  const auto r = table.apply(demand, 10'000.0, 1.0);
  EXPECT_NEAR(r.delivered_mbps, 200.0, 1.0);
  EXPECT_NEAR(r.shaper_dropped_mbps, 800.0, 1.0);
}

TEST(SdnConfigCompilerTest, InstallRemoveLifecycle) {
  FlowTable table(10);
  SdnConfigCompiler compiler(table);
  ConfigChange install;
  install.op = ConfigChange::Op::kInstall;
  install.port = 11;
  install.rule.match.proto = net::IpProto::kUdp;
  install.rule.match.src_port = filter::PortRange::Single(123);
  install.rule.action = filter::FilterAction::kDrop;
  install.key = "k1";
  ASSERT_TRUE(compiler.apply(install).ok());
  EXPECT_EQ(table.size(), 1u);

  ConfigChange remove = install;
  remove.op = ConfigChange::Op::kRemove;
  ASSERT_TRUE(compiler.apply(remove).ok());
  EXPECT_EQ(table.size(), 0u);
  EXPECT_FALSE(compiler.apply(remove).ok());  // Unknown key now.
}

TEST(SdnConfigCompilerTest, TableFullPropagates) {
  FlowTable table(0);
  SdnConfigCompiler compiler(table);
  ConfigChange install;
  install.op = ConfigChange::Op::kInstall;
  install.key = "k1";
  const auto result = compiler.apply(install);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, "sdn.table_full");
}

TEST(SdnConfigCompilerTest, MoreSpecificRulesGetHigherPriority) {
  FlowTable table(10);
  SdnConfigCompiler compiler(table);
  ConfigChange coarse;
  coarse.op = ConfigChange::Op::kInstall;
  coarse.rule.match.proto = net::IpProto::kUdp;
  coarse.key = "coarse";
  ConfigChange fine = coarse;
  fine.rule.match.src_port = filter::PortRange::Single(123);
  fine.rule.match.dst_prefix = net::Prefix4::Parse("100.10.10.10/32").value();
  fine.key = "fine";
  ASSERT_TRUE(compiler.apply(coarse).ok());
  ASSERT_TRUE(compiler.apply(fine).ok());
  const FlowEntry* hit = table.match(Flow(net::IpProto::kUdp, 123, 1).key);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->match.src_port->lo, 123);
}

}  // namespace
}  // namespace stellar::core
