#include "core/network_manager.hpp"

#include <gtest/gtest.h>

#include "net/ports.hpp"

namespace stellar::core {
namespace {

ConfigChange Install(const std::string& key) {
  ConfigChange c;
  c.op = ConfigChange::Op::kInstall;
  c.member = 65001;
  c.port = 11;
  c.rule.match.dst_prefix = net::Prefix4::Parse("100.10.10.10/32").value();
  c.rule.match.proto = net::IpProto::kUdp;
  c.rule.match.src_port = filter::PortRange::Single(net::kPortNtp);
  c.rule.action = filter::FilterAction::kDrop;
  c.key = key;
  return c;
}

ConfigChange Remove(const std::string& key) {
  ConfigChange c = Install(key);
  c.op = ConfigChange::Op::kRemove;
  return c;
}

class RecordingCompiler final : public ConfigCompiler {
 public:
  util::Result<void> apply(const ConfigChange& change) override {
    applied.push_back({change.key, queue->now().count()});
    if (fail_all) return util::MakeError("F1", "forced failure");
    if (static_cast<int>(applied.size()) <= fail_first) {
      return util::MakeError(fail_code, "forced failure");
    }
    return {};
  }
  [[nodiscard]] std::string_view name() const override { return "recording"; }

  sim::EventQueue* queue = nullptr;
  bool fail_all = false;
  int fail_first = 0;            ///< Fail this many apply() calls, then succeed.
  std::string fail_code = "F1";  ///< Error code used for fail_first failures.
  std::vector<std::pair<std::string, double>> applied;
};

struct NmFixture {
  sim::EventQueue queue;
  RecordingCompiler compiler;
  std::unique_ptr<NetworkManager> nm;

  explicit NmFixture(NetworkManager::Config config = {}) {
    compiler.queue = &queue;
    nm = std::make_unique<NetworkManager>(queue, compiler, config);
  }
};

TEST(NetworkManagerTest, AppliesWithinBurstImmediately) {
  NmFixture f({.rate_per_s = 4.0, .max_burst_size = 5.0});
  for (int i = 0; i < 5; ++i) f.nm->enqueue(Install("k" + std::to_string(i)));
  f.queue.run_until(sim::Seconds(0.01));
  EXPECT_EQ(f.nm->stats().applied, 5u);
  for (const auto& [key, at] : f.compiler.applied) EXPECT_LT(at, 0.01);
}

TEST(NetworkManagerTest, RateLimitsBeyondBurst) {
  NmFixture f({.rate_per_s = 4.0, .max_burst_size = 1.0});
  for (int i = 0; i < 9; ++i) f.nm->enqueue(Install("k" + std::to_string(i)));
  f.queue.run_until(sim::Seconds(10.0));
  EXPECT_EQ(f.nm->stats().applied, 9u);
  // 1 immediate + 8 at 0.25 s spacing => last at 2.0 s.
  EXPECT_NEAR(f.compiler.applied.back().second, 2.0, 0.05);
  // Long-term rate respected: count applied in the first second.
  int within_1s = 0;
  for (const auto& [key, at] : f.compiler.applied) {
    if (at <= 1.0) ++within_1s;
  }
  EXPECT_LE(within_1s, 5);  // burst(1) + 4/s.
}

TEST(NetworkManagerTest, WaitingTimesRecorded) {
  NmFixture f({.rate_per_s = 1.0, .max_burst_size = 1.0});
  for (int i = 0; i < 3; ++i) f.nm->enqueue(Install("k" + std::to_string(i)));
  f.queue.run_until(sim::Seconds(10.0));
  const auto& waits = f.nm->stats().waiting_times_s;
  ASSERT_EQ(waits.size(), 3u);
  EXPECT_NEAR(waits[0], 0.0, 0.01);
  EXPECT_NEAR(waits[1], 1.0, 0.05);
  EXPECT_NEAR(waits[2], 2.0, 0.05);
}

TEST(NetworkManagerTest, FailuresCountedWithCodes) {
  NmFixture f({.rate_per_s = 100.0, .max_burst_size = 10.0});
  f.compiler.fail_all = true;
  f.nm->enqueue(Install("k"));
  f.queue.run_until(sim::Seconds(1.0));
  EXPECT_EQ(f.nm->stats().applied, 0u);
  EXPECT_EQ(f.nm->stats().failed, 1u);
  ASSERT_EQ(f.nm->stats().failure_codes.size(), 1u);
  EXPECT_EQ(f.nm->stats().failure_codes[0], "F1");
}

TEST(NetworkManagerTest, QueueDrainsInFifoOrder) {
  NmFixture f({.rate_per_s = 10.0, .max_burst_size = 1.0});
  for (int i = 0; i < 5; ++i) f.nm->enqueue(Install("k" + std::to_string(i)));
  f.queue.run_until(sim::Seconds(5.0));
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(f.compiler.applied[static_cast<std::size_t>(i)].first,
              "k" + std::to_string(i));
  }
}

TEST(NetworkManagerTest, SustainedLoadAtFractionalRateTerminates) {
  // Regression for the 5/s deadlock: a long backlog drained at a rate whose
  // period is not exactly representable must still make progress at large
  // simulation timestamps.
  NmFixture f({.rate_per_s = 5.0, .max_burst_size = 5.0});
  f.queue.run_until(sim::Seconds(80'000.0));
  for (int i = 0; i < 2000; ++i) f.nm->enqueue(Install("k" + std::to_string(i)));
  f.queue.run();
  EXPECT_EQ(f.nm->stats().applied, 2000u);
}

TEST(NetworkManagerTest, LateEnqueueAfterIdlePeriod) {
  NmFixture f({.rate_per_s = 1.0, .max_burst_size = 1.0});
  f.nm->enqueue(Install("a"));
  f.queue.run_until(sim::Seconds(100.0));
  f.nm->enqueue(Install("b"));
  f.queue.run_until(sim::Seconds(101.0));
  EXPECT_EQ(f.nm->stats().applied, 2u);
  EXPECT_NEAR(f.compiler.applied[1].second, 100.0, 0.05);
}

// ---------------------------------------------------------------------------
// Retry / dead-letter behaviour.

TEST(NetworkManagerTest, TransientFailureRetriedWithBackoff) {
  NmFixture f({.rate_per_s = 100.0, .max_burst_size = 10.0, .retry_backoff_s = 2.0});
  f.compiler.fail_first = 2;
  f.compiler.fail_code = "transient.tcam-busy";
  f.nm->enqueue(Install("k"));
  f.queue.run_until(sim::Seconds(60.0));
  ASSERT_EQ(f.compiler.applied.size(), 3u);
  EXPECT_EQ(f.nm->stats().applied, 1u);
  EXPECT_EQ(f.nm->stats().retries, 2u);
  EXPECT_EQ(f.nm->stats().transient_failures, 2u);
  EXPECT_EQ(f.nm->stats().dead_lettered, 0u);
  // Exponential retry spacing: ~2 s then ~4 s after the failures.
  EXPECT_NEAR(f.compiler.applied[1].second - f.compiler.applied[0].second, 2.0, 0.1);
  EXPECT_NEAR(f.compiler.applied[2].second - f.compiler.applied[1].second, 4.0, 0.1);
}

TEST(NetworkManagerTest, PermanentFailureDeadLettersWithoutRetry) {
  NmFixture f({.rate_per_s = 100.0, .max_burst_size = 10.0});
  f.compiler.fail_all = true;  // "F1": not transient under the default rule.
  f.nm->enqueue(Install("k"));
  f.queue.run_until(sim::Seconds(60.0));
  EXPECT_EQ(f.compiler.applied.size(), 1u);
  EXPECT_EQ(f.nm->stats().retries, 0u);
  EXPECT_EQ(f.nm->stats().permanent_failures, 1u);
  EXPECT_EQ(f.nm->stats().dead_lettered, 1u);
  ASSERT_EQ(f.nm->dead_letter().size(), 1u);
  EXPECT_EQ(f.nm->dead_letter().front().key, "k");
}

TEST(NetworkManagerTest, TransientExhaustsAttemptBudgetThenDeadLetters) {
  NmFixture f({.rate_per_s = 100.0, .max_burst_size = 10.0, .max_attempts = 4});
  f.compiler.fail_first = 1000;  // Never recovers.
  f.compiler.fail_code = "transient.flaky";
  f.nm->enqueue(Install("k"));
  f.queue.run_until(sim::Seconds(300.0));
  EXPECT_EQ(f.compiler.applied.size(), 4u);  // First try + 3 retries.
  EXPECT_EQ(f.nm->stats().retries, 3u);
  EXPECT_EQ(f.nm->stats().dead_lettered, 1u);
  EXPECT_TRUE(f.nm->in_flight().empty());
}

TEST(NetworkManagerTest, ExhaustedRetryBudgetCountsFailuresExactlyOnce) {
  // Regression: a transient-retry-then-dead-letter path must not double count
  // — the last failed attempt is retry_budget_exhausted, not also permanent.
  NmFixture f({.rate_per_s = 100.0, .max_burst_size = 10.0, .max_attempts = 2});
  f.compiler.fail_first = 1000;  // Never recovers.
  f.compiler.fail_code = "transient.flaky";
  f.nm->enqueue(Install("k"));
  f.queue.run_until(sim::Seconds(300.0));
  const auto& stats = f.nm->stats();
  EXPECT_EQ(stats.failed, 2u);  // One per attempt, nothing else.
  EXPECT_EQ(stats.transient_failures, 2u);
  EXPECT_EQ(stats.permanent_failures, 0u);
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.retry_budget_exhausted, 1u);
  EXPECT_EQ(stats.dead_lettered, 1u);
}

TEST(NetworkManagerTest, FailureAccountingInvariantsHold) {
  // Mixed workload: permanent failures, recovered transients, and a
  // dead-lettered transient must each land in exactly one class.
  NmFixture f({.rate_per_s = 100.0, .max_burst_size = 10.0, .max_attempts = 3});
  f.compiler.fail_all = true;  // "F1": permanent under the default rule.
  f.nm->enqueue(Install("p1"));
  f.nm->enqueue(Install("p2"));
  f.queue.run_until(sim::Seconds(10.0));
  f.compiler.fail_all = false;
  f.compiler.applied.clear();
  f.compiler.fail_first = 1000;  // Transient forever: exhausts the budget.
  f.compiler.fail_code = "transient.flaky";
  f.nm->enqueue(Install("t1"));
  f.queue.run_until(sim::Seconds(300.0));

  const auto& stats = f.nm->stats();
  EXPECT_EQ(stats.permanent_failures, 2u);
  EXPECT_EQ(stats.transient_failures, 3u);  // 3 attempts for t1.
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(stats.retry_budget_exhausted, 1u);
  EXPECT_EQ(stats.failed, stats.transient_failures + stats.permanent_failures);
  EXPECT_EQ(stats.transient_failures, stats.retries + stats.retry_budget_exhausted);
  EXPECT_EQ(stats.dead_lettered,
            stats.permanent_failures + stats.retry_budget_exhausted);
}

TEST(NetworkManagerTest, CustomTransientClassifierOverridesDefault) {
  NetworkManager::Config config{.rate_per_s = 100.0, .max_burst_size = 10.0};
  config.transient_classifier = [](const util::Error& e) { return e.code == "F1"; };
  NmFixture f(config);
  f.compiler.fail_first = 1;  // One "F1" failure, then success.
  f.nm->enqueue(Install("k"));
  f.queue.run_until(sim::Seconds(60.0));
  EXPECT_EQ(f.nm->stats().applied, 1u);
  EXPECT_EQ(f.nm->stats().retries, 1u);
  EXPECT_EQ(f.nm->stats().dead_lettered, 0u);
}

TEST(NetworkManagerTest, BackoffChangesVisibleAsInFlight) {
  NmFixture f({.rate_per_s = 100.0, .max_burst_size = 10.0, .retry_backoff_s = 5.0});
  f.compiler.fail_first = 1;
  f.compiler.fail_code = "transient.flaky";
  f.nm->enqueue(Install("k"));
  f.queue.run_until(sim::Seconds(1.0));  // Failed once; retry waits in backoff.
  const auto in_flight = f.nm->in_flight();
  ASSERT_EQ(in_flight.size(), 1u);
  EXPECT_EQ(in_flight[0].key, "k");
  f.queue.run_until(sim::Seconds(60.0));
  EXPECT_TRUE(f.nm->in_flight().empty());
  EXPECT_EQ(f.nm->stats().applied, 1u);
}

TEST(NetworkManagerTest, RetriesDoNotDistortWaitingTimes) {
  // Fig 10b percentiles measure queueing delay for *new* changes; a retried
  // change must contribute exactly one waiting-time sample.
  NmFixture f({.rate_per_s = 100.0, .max_burst_size = 10.0});
  f.compiler.fail_first = 2;
  f.compiler.fail_code = "transient.flaky";
  f.nm->enqueue(Install("k"));
  f.queue.run_until(sim::Seconds(60.0));
  EXPECT_EQ(f.nm->stats().waiting_times_s.size(), 1u);
}

TEST(NetworkManagerTest, StatsRingBuffersCapRetainedSamples) {
  NetworkManager::Config config{.rate_per_s = 1000.0, .max_burst_size = 1000.0};
  config.stats_retained_samples = 10;
  NmFixture f(config);
  for (int i = 0; i < 25; ++i) f.nm->enqueue(Install("k" + std::to_string(i)));
  f.queue.run_until(sim::Seconds(10.0));
  const auto& waits = f.nm->stats().waiting_times_s;
  EXPECT_EQ(waits.size(), 10u);       // Bounded retention...
  EXPECT_EQ(waits.total(), 25u);      // ...with full-history accounting.
  EXPECT_EQ(waits.evicted(), 15u);
  EXPECT_EQ(waits.capacity(), 10u);
}

TEST(NetworkManagerTest, FailureCodeRingAlsoBounded) {
  NetworkManager::Config config{.rate_per_s = 1000.0, .max_burst_size = 1000.0};
  config.stats_retained_samples = 4;
  NmFixture f(config);
  f.compiler.fail_all = true;
  for (int i = 0; i < 9; ++i) f.nm->enqueue(Install("k" + std::to_string(i)));
  f.queue.run_until(sim::Seconds(10.0));
  EXPECT_EQ(f.nm->stats().failure_codes.size(), 4u);
  EXPECT_EQ(f.nm->stats().failure_codes.total(), 9u);
  EXPECT_EQ(f.nm->stats().failed, 9u);
}

// ---------------------------------------------------------------------------
// QosConfigCompiler against a real edge router.

TEST(QosConfigCompilerTest, InstallRemoveLifecycle) {
  filter::EdgeRouter er("er1", filter::TcamLimits{});
  er.add_port(11, 1000.0);
  QosConfigCompiler compiler(er);

  ASSERT_TRUE(compiler.apply(Install("key1")).ok());
  EXPECT_EQ(er.policy(11).rule_count(), 1u);
  ASSERT_TRUE(compiler.rule_id("key1").has_value());

  ASSERT_TRUE(compiler.apply(Remove("key1")).ok());
  EXPECT_EQ(er.policy(11).rule_count(), 0u);
  EXPECT_FALSE(compiler.rule_id("key1").has_value());
}

TEST(QosConfigCompilerTest, ReinstallSameKeyIsIdempotent) {
  // Post-resync reconciliation re-emits installs for keys it believes are
  // missing; a duplicate install must supersede, not leak, the old rule.
  filter::EdgeRouter er("er1", filter::TcamLimits{});
  er.add_port(11, 1000.0);
  QosConfigCompiler compiler(er);
  ASSERT_TRUE(compiler.apply(Install("key1")).ok());
  const auto first_id = compiler.rule_id("key1");
  ASSERT_TRUE(compiler.apply(Install("key1")).ok());
  EXPECT_EQ(er.policy(11).rule_count(), 1u);  // No orphaned duplicate.
  ASSERT_EQ(compiler.installed_keys().size(), 1u);
  ASSERT_TRUE(compiler.rule_id("key1").has_value());
  EXPECT_NE(compiler.rule_id("key1"), first_id);  // Fresh rule replaced it.
  ASSERT_TRUE(compiler.apply(Remove("key1")).ok());
  EXPECT_EQ(er.policy(11).rule_count(), 0u);
  EXPECT_EQ(er.tcam().l3l4_in_use(), 0);  // No TCAM leak either.
}

TEST(QosConfigCompilerTest, RemoveUnknownKeyFails) {
  filter::EdgeRouter er("er1", filter::TcamLimits{});
  er.add_port(11, 1000.0);
  QosConfigCompiler compiler(er);
  EXPECT_FALSE(compiler.apply(Remove("ghost")).ok());
}

TEST(QosConfigCompilerTest, TcamErrorPropagates) {
  filter::EdgeRouter er("er1", filter::TcamLimits{.l3l4_criteria_pool = 1, .mac_filter_pool = 0});
  er.add_port(11, 1000.0);
  QosConfigCompiler compiler(er);
  const auto result = compiler.apply(Install("key1"));  // Needs 3 criteria.
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, "F1");
}

}  // namespace
}  // namespace stellar::core
