#include "core/portal.hpp"

#include <gtest/gtest.h>

#include "net/ports.hpp"

namespace stellar::core {
namespace {

TEST(RulePortalTest, PredefinedCatalogCoversAmplificationServices) {
  RulePortal portal;
  EXPECT_GE(portal.predefined_count(), 8u);
  // Rule 1 is NTP per the catalog order.
  const MatchTemplate* ntp = portal.lookup(1, 65001);
  ASSERT_NE(ntp, nullptr);
  EXPECT_EQ(ntp->proto, net::IpProto::kUdp);
  ASSERT_TRUE(ntp->src_port.has_value());
  EXPECT_EQ(ntp->src_port->lo, net::kPortNtp);

  // The catalog includes memcached and the fragments rule (port 0).
  bool has_memcached = false;
  bool has_fragments = false;
  for (const auto& [id, tmpl] : portal.predefined()) {
    if (tmpl.src_port && tmpl.src_port->lo == net::kPortMemcached) has_memcached = true;
    if (tmpl.src_port && tmpl.src_port->lo == 0 && tmpl.src_port->is_single()) {
      has_fragments = true;
    }
  }
  EXPECT_TRUE(has_memcached);
  EXPECT_TRUE(has_fragments);
}

TEST(RulePortalTest, PredefinedVisibleToEveryMember) {
  RulePortal portal;
  EXPECT_NE(portal.lookup(1, 65001), nullptr);
  EXPECT_NE(portal.lookup(1, 65999), nullptr);
}

TEST(RulePortalTest, UnknownIdIsNull) {
  RulePortal portal;
  EXPECT_EQ(portal.lookup(999, 65001), nullptr);
}

TEST(RulePortalTest, CustomRuleVisibleOnlyToOwner) {
  RulePortal portal;
  MatchTemplate custom;
  custom.description = "weird game-server attack";
  custom.proto = net::IpProto::kUdp;
  custom.dst_port = filter::PortRange{27'000, 27'100};
  const std::uint16_t id = portal.define_custom_rule(65001, custom);
  EXPECT_GE(id, 1000);
  ASSERT_NE(portal.lookup(id, 65001), nullptr);
  EXPECT_EQ(portal.lookup(id, 65002), nullptr);
}

TEST(RulePortalTest, CustomIdsAreUnique) {
  RulePortal portal;
  const auto a = portal.define_custom_rule(65001, MatchTemplate{});
  const auto b = portal.define_custom_rule(65001, MatchTemplate{});
  EXPECT_NE(a, b);
}

TEST(MatchTemplateTest, BindAttachesVictimPrefix) {
  MatchTemplate tmpl;
  tmpl.proto = net::IpProto::kUdp;
  tmpl.src_port = filter::PortRange::Single(123);
  const auto victim = net::Prefix4::Parse("100.10.10.10/32").value();
  const filter::MatchCriteria m = tmpl.bind(victim);
  EXPECT_EQ(m.dst_prefix, victim);
  EXPECT_EQ(m.proto, net::IpProto::kUdp);

  net::FlowKey flow;
  flow.dst_ip = net::IPv4Address(100, 10, 10, 10);
  flow.proto = net::IpProto::kUdp;
  flow.src_port = 123;
  EXPECT_TRUE(m.matches(flow));
  flow.dst_ip = net::IPv4Address(1, 2, 3, 4);  // A template never leaks to other dsts.
  EXPECT_FALSE(m.matches(flow));
}

TEST(MatchTemplateTest, BindPreservesAllFields) {
  MatchTemplate tmpl;
  tmpl.src_prefix = net::Prefix4::Parse("9.9.0.0/16").value();
  tmpl.src_mac = net::MacAddress::ForRouter(65007);
  tmpl.dst_port = filter::PortRange::Single(80);
  const auto m = tmpl.bind(net::Prefix4::Parse("100.10.10.0/24").value());
  EXPECT_EQ(m.src_prefix, tmpl.src_prefix);
  EXPECT_EQ(m.src_mac, tmpl.src_mac);
  EXPECT_EQ(m.dst_port, tmpl.dst_port);
}

}  // namespace
}  // namespace stellar::core
