// RFC 8092 large-community signaling variant: the extended-community
// encoding cannot carry a 4-byte IXP ASN in its two-octet AS field, so IXPs
// with 32-bit ASNs signal via large communities (ASN:function:value).
#include <gtest/gtest.h>

#include "core/stellar.hpp"
#include "net/ports.hpp"

namespace stellar::core {
namespace {

net::Prefix4 P4(const char* text) { return net::Prefix4::Parse(text).value(); }

constexpr std::uint32_t kBigIxpAsn = 4'200'000'001;  // 4-byte private-use range.

TEST(SignalLargeTest, RoundTrip) {
  Signal signal;
  signal.rules.push_back({RuleKind::kUdpSrcPort, net::kPortNtp});
  signal.rules.push_back({RuleKind::kTcpDstPort, 80});
  signal.shape_rate_mbps = 250.0;
  const auto lcs = EncodeSignalLarge(kBigIxpAsn, signal).value();
  ASSERT_EQ(lcs.size(), 3u);
  EXPECT_EQ(lcs[0].global_admin, kBigIxpAsn);
  const auto decoded = DecodeSignalLarge(kBigIxpAsn, lcs);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, signal);
}

TEST(SignalLargeTest, IgnoresForeignNamespace) {
  Signal signal;
  signal.rules.push_back({RuleKind::kUdpSrcPort, 123});
  auto lcs = EncodeSignalLarge(kBigIxpAsn, signal).value();
  lcs.push_back(bgp::LargeCommunity{999, 1, 2});  // Someone else's community.
  const auto decoded = DecodeSignalLarge(kBigIxpAsn, lcs);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->rules.size(), 1u);
  EXPECT_FALSE(HasStellarSignalLarge(kBigIxpAsn, {&lcs.back(), 1}));
  EXPECT_TRUE(HasStellarSignalLarge(kBigIxpAsn, lcs));
}

TEST(SignalLargeTest, RejectsUnknownKindAndOversizedValue) {
  const bgp::LargeCommunity bad_kind{kBigIxpAsn, (0x80u << 24) | 99u, 1};
  EXPECT_FALSE(DecodeSignalLarge(kBigIxpAsn, {&bad_kind, 1}).ok());
  const bgp::LargeCommunity bad_value{kBigIxpAsn, (0x80u << 24) | 2u, 70'000};
  EXPECT_FALSE(DecodeSignalLarge(kBigIxpAsn, {&bad_value, 1}).ok());
}

TEST(SignalLargeTest, WireRoundTripThroughUpdate) {
  bgp::UpdateMessage u;
  u.attrs.origin = bgp::Origin::kIgp;
  u.attrs.next_hop = net::IPv4Address(1, 1, 1, 1);
  Signal signal;
  signal.rules.push_back({RuleKind::kUdpSrcPort, net::kPortNtp});
  u.attrs.large_communities = EncodeSignalLarge(kBigIxpAsn, signal).value();
  u.announced = {{0, P4("100.10.10.10/32")}};
  const auto decoded = bgp::Decode(bgp::Encode(u));
  ASSERT_TRUE(decoded.ok());
  const auto& attrs = std::get<bgp::UpdateMessage>(*decoded).attrs;
  const auto parsed = DecodeSignalLarge(kBigIxpAsn, attrs.large_communities);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, signal);
}

/// End-to-end on an IXP with a 4-byte ASN, where extended-community
/// signaling is impossible.
TEST(SignalLargeTest, EndToEndOn4ByteAsnIxp) {
  sim::EventQueue queue;
  ixp::Ixp::Config config;
  config.asn = kBigIxpAsn;
  ixp::Ixp ixp(queue, config);
  ixp::MemberSpec v;
  v.asn = 65001;
  v.port_capacity_mbps = 1'000.0;
  v.address_space = P4("100.10.10.0/24");
  auto& victim = ixp.add_member(v);
  ixp::MemberSpec o;
  o.asn = 65002;
  o.address_space = P4("60.2.0.0/20");
  auto& other = ixp.add_member(o);
  StellarSystem stellar(ixp);
  ixp.settle(30.0);

  Signal signal;
  signal.rules.push_back({RuleKind::kUdpSrcPort, net::kPortNtp});
  SignalAdvancedBlackholingLarge(victim, ixp.route_server(), P4("100.10.10.10/32"), signal);
  ixp.settle(10.0);

  EXPECT_EQ(ixp.edge_router().policy(victim.info().port).rule_count(), 1u);
  EXPECT_EQ(stellar.controller().stats().signals_decoded, 1u);

  // The rule filters the attack.
  net::FlowSample ntp;
  ntp.key.src_mac = other.info().mac;
  ntp.key.src_ip = net::IPv4Address(60, 2, 0, 5);
  ntp.key.dst_ip = net::IPv4Address(100, 10, 10, 10);
  ntp.key.proto = net::IpProto::kUdp;
  ntp.key.src_port = net::kPortNtp;
  ntp.key.dst_port = 5555;
  ntp.bytes = static_cast<std::uint64_t>(100e6 / 8.0);
  const auto report = ixp.deliver_bin({&ntp, 1}, 1.0);
  EXPECT_NEAR(report.rule_dropped_mbps, 100.0, 1.0);
}

TEST(SignalLargeTest, LargeCommunitiesStrippedOnMemberExport) {
  sim::EventQueue queue;
  ixp::Ixp ixp(queue);
  ixp::MemberSpec v;
  v.asn = 65001;
  v.address_space = P4("100.10.10.0/24");
  auto& victim = ixp.add_member(v);
  ixp::MemberSpec o;
  o.asn = 65002;
  o.address_space = P4("60.2.0.0/20");
  o.policy.accepts_more_specifics = true;
  auto& other = ixp.add_member(o);
  ixp.settle(30.0);

  Signal signal;
  signal.rules.push_back({RuleKind::kUdpSrcPort, net::kPortNtp});
  SignalAdvancedBlackholingLarge(victim, ixp.route_server(), P4("100.10.10.10/32"), signal,
                                 /*also_propagate_to_members=*/true);
  ixp.settle(10.0);

  const auto routes = other.rib().routes_for(P4("100.10.10.10/32"));
  ASSERT_EQ(routes.size(), 1u);
  EXPECT_TRUE(routes[0].attrs.large_communities.empty());
}

TEST(SignalLargeTest, MergedNamespacesUnionRules) {
  // A member can signal some rules via extended and some via large
  // communities on the same route; the controller honors the union.
  sim::EventQueue queue;
  ixp::Ixp ixp(queue);
  ixp::MemberSpec v;
  v.asn = 65001;
  v.address_space = P4("100.10.10.0/24");
  auto& victim = ixp.add_member(v);
  StellarSystem stellar(ixp);
  ixp.settle(30.0);

  Signal ext_part;
  ext_part.rules.push_back({RuleKind::kUdpSrcPort, net::kPortNtp});
  Signal large_part;
  large_part.rules.push_back({RuleKind::kUdpSrcPort, net::kPortDns});

  bgp::UpdateMessage update;
  update.attrs.origin = bgp::Origin::kIgp;
  update.attrs.as_path = {{bgp::AsPathSegment::Type::kSequence, {65001}}};
  update.attrs.next_hop = victim.info().router_ip;
  update.attrs.communities = {ixp.route_server().announce_to_none()};
  update.attrs.extended_communities =
      EncodeSignal(static_cast<std::uint16_t>(ixp.config().asn), ext_part).value();
  update.attrs.large_communities = EncodeSignalLarge(ixp.config().asn, large_part).value();
  update.announced = {{0, P4("100.10.10.10/32")}};
  victim.session()->announce(std::move(update));
  ixp.settle(10.0);

  EXPECT_EQ(ixp.edge_router().policy(victim.info().port).rule_count(), 2u);
}

}  // namespace
}  // namespace stellar::core
