#include "detect/detector.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace stellar::detect {
namespace {

// Drives the detector through `bins` observations of benign traffic around
// `mean` Mbps with +-`jitter` uniform noise. Returns the time after the run.
double FeedBenign(VolumeDetector& det, util::Rng& rng, double t, int bins,
                  double mean, double jitter, double bin_s = 20.0) {
  for (int i = 0; i < bins; ++i, t += bin_s) {
    const auto d = det.observe(t, mean + rng.uniform(-jitter, jitter));
    EXPECT_FALSE(d.triggered_now) << "benign bin at t=" << t;
  }
  return t;
}

TEST(VolumeDetectorTest, WarmupNeverTriggers) {
  VolumeDetector det;
  // Even an absurd first observation is learning material, not an anomaly.
  const auto d = det.observe(0.0, 10'000.0);
  EXPECT_EQ(d.state, VolumeDetector::State::kLearning);
  EXPECT_FALSE(d.triggered_now);
}

TEST(VolumeDetectorTest, BenignNoiseNeverTriggers) {
  // A day of bursty-but-benign bins: 60 +- 15 Mbps. The absolute floor
  // (min_attack_mbps = 50) and the MAD threshold must both stay quiet.
  VolumeDetector det;
  util::Rng rng(5);
  FeedBenign(det, rng, 0.0, 4'320, 60.0, 15.0);
  EXPECT_EQ(det.state(), VolumeDetector::State::kNormal);
}

TEST(VolumeDetectorTest, AttackTriggersAfterConsecutiveBins) {
  VolumeDetector::Config cfg;
  cfg.trigger_bins = 2;
  VolumeDetector det(cfg);
  util::Rng rng(6);
  double t = FeedBenign(det, rng, 0.0, 20, 60.0, 5.0);

  // Bin 1 of the flood: anomalous but below the streak requirement.
  auto d = det.observe(t, 1'000.0);
  EXPECT_FALSE(d.triggered_now);
  EXPECT_EQ(d.state, VolumeDetector::State::kNormal);
  // Bin 2: streak satisfied -> trigger, exactly once.
  d = det.observe(t + 20.0, 1'000.0);
  EXPECT_TRUE(d.triggered_now);
  EXPECT_EQ(d.state, VolumeDetector::State::kTriggered);
  d = det.observe(t + 40.0, 1'000.0);
  EXPECT_FALSE(d.triggered_now) << "triggered_now must be edge, not level";
  EXPECT_EQ(d.state, VolumeDetector::State::kTriggered);
}

TEST(VolumeDetectorTest, BaselineFrozenDuringAttack) {
  VolumeDetector det;
  util::Rng rng(7);
  double t = FeedBenign(det, rng, 0.0, 30, 60.0, 5.0);
  const double baseline_before = det.baseline_mbps();
  det.observe(t, 900.0);
  det.observe(t + 20.0, 900.0);  // Triggers.
  ASSERT_EQ(det.state(), VolumeDetector::State::kTriggered);
  for (int i = 2; i < 20; ++i) det.observe(t + i * 20.0, 900.0);
  // The attack must not be learned as the new normal.
  EXPECT_NEAR(det.baseline_mbps(), baseline_before, 1.0);
}

TEST(VolumeDetectorTest, SingleBinSpikeDoesNotTrigger) {
  // trigger_bins = 2 means an isolated one-bin burst (e.g. a flash crowd
  // sample) resets the streak.
  VolumeDetector det;
  util::Rng rng(8);
  double t = FeedBenign(det, rng, 0.0, 20, 60.0, 5.0);
  for (int i = 0; i < 10; ++i) {
    auto d = det.observe(t, 800.0);  // One hot bin...
    EXPECT_FALSE(d.triggered_now);
    t += 20.0;
    d = det.observe(t, 60.0);  // ...always followed by a quiet one.
    EXPECT_FALSE(d.triggered_now);
    t += 20.0;
  }
  EXPECT_EQ(det.state(), VolumeDetector::State::kNormal);
}

TEST(VolumeDetectorTest, ClearRequiresQuietStreakAndHoldTime) {
  VolumeDetector::Config cfg;
  cfg.trigger_bins = 2;
  cfg.clear_bins = 3;
  cfg.min_hold_s = 40.0;
  VolumeDetector det(cfg);
  util::Rng rng(9);
  double t = FeedBenign(det, rng, 0.0, 20, 60.0, 5.0);
  det.observe(t, 1'000.0);
  det.observe(t + 20.0, 1'000.0);
  ASSERT_EQ(det.state(), VolumeDetector::State::kTriggered);
  t += 40.0;

  // Two quiet bins then a relapse: the quiet streak must reset.
  det.observe(t, 60.0);
  det.observe(t + 20.0, 60.0);
  auto d = det.observe(t + 40.0, 1'000.0);
  EXPECT_EQ(d.state, VolumeDetector::State::kTriggered);
  t += 60.0;

  // Three consecutive quiet bins (and past min_hold_s): clears exactly once.
  det.observe(t, 60.0);
  det.observe(t + 20.0, 60.0);
  d = det.observe(t + 40.0, 60.0);
  EXPECT_TRUE(d.cleared_now);
  EXPECT_EQ(d.state, VolumeDetector::State::kNormal);
}

TEST(VolumeDetectorTest, CooldownBlocksImmediateRetrigger) {
  VolumeDetector::Config cfg;
  cfg.trigger_bins = 1;
  cfg.clear_bins = 1;
  cfg.min_hold_s = 0.0;
  cfg.cooldown_s = 100.0;
  VolumeDetector det(cfg);
  util::Rng rng(10);
  double t = FeedBenign(det, rng, 0.0, 20, 60.0, 5.0);

  ASSERT_TRUE(det.observe(t, 1'000.0).triggered_now);
  ASSERT_TRUE(det.observe(t + 20.0, 60.0).cleared_now);
  // Within the cooldown window: anomalous bins must not re-trigger (this is
  // the anti-flap guarantee for on/off attacks).
  auto d = det.observe(t + 40.0, 1'000.0);
  EXPECT_FALSE(d.triggered_now);
  d = det.observe(t + 60.0, 1'000.0);
  EXPECT_FALSE(d.triggered_now);
  // After the cooldown: detection re-arms.
  d = det.observe(t + 140.0, 1'000.0);
  EXPECT_TRUE(d.triggered_now);
}

TEST(VolumeDetectorTest, SmallExcessBelowFloorIgnored) {
  // A flat 1 Mbps service with a jump to 30 Mbps is a big sigma move but
  // below min_attack_mbps — must not trigger (tiny ports never flap rules).
  VolumeDetector det;
  util::Rng rng(12);
  double t = FeedBenign(det, rng, 0.0, 20, 1.0, 0.1);
  for (int i = 0; i < 10; ++i, t += 20.0) {
    EXPECT_FALSE(det.observe(t, 30.0).triggered_now);
  }
}

}  // namespace
}  // namespace stellar::detect
