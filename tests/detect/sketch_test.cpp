#include "detect/sketch.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "util/rng.hpp"

namespace stellar::detect {
namespace {

// ---------------------------------------------------------------------------
// CountMinSketch.

TEST(CountMinSketchTest, ExactOnSparseStream) {
  CountMinSketch cms(1024, 4);
  cms.add(1, 100);
  cms.add(2, 50);
  cms.add(FlowAggregateKey(0x640a0a0a, 17, 123), 7);
  EXPECT_EQ(cms.estimate(1), 100u);
  EXPECT_EQ(cms.estimate(2), 50u);
  EXPECT_EQ(cms.estimate(FlowAggregateKey(0x640a0a0a, 17, 123)), 7u);
  EXPECT_EQ(cms.total(), 157u);
}

TEST(CountMinSketchTest, NeverUnderestimates) {
  // Property vs an exact counter over a randomized skewed stream: the
  // one-sided error guarantee (estimate >= true count) must hold for every
  // key, including ones that collide.
  util::Rng rng(7);
  CountMinSketch cms(64, 4);  // Deliberately small: collisions guaranteed.
  std::map<std::uint64_t, std::uint64_t> exact;
  for (int i = 0; i < 20'000; ++i) {
    // Zipf-ish: small key ids are hot.
    const auto key = static_cast<std::uint64_t>(std::floor(
        std::pow(rng.uniform(), 2.0) * 500.0));
    const auto count = static_cast<std::uint64_t>(rng.uniform_int(1, 1500));
    cms.add(key, count);
    exact[key] += count;
  }
  for (const auto& [key, count] : exact) {
    EXPECT_GE(cms.estimate(key), count) << "key " << key;
  }
}

TEST(CountMinSketchTest, ForErrorBoundHolds) {
  // estimate(k) <= count(k) + eps * total with probability >= 1 - delta.
  // With a fixed seed this is deterministic; check every key against the
  // bound (the union over ~400 keys still passes comfortably at delta=0.01).
  const double eps = 0.01;
  util::Rng rng(11);
  CountMinSketch cms = CountMinSketch::ForError(eps, 0.01);
  EXPECT_GE(cms.width(), static_cast<std::size_t>(std::exp(1.0) / eps));
  std::map<std::uint64_t, std::uint64_t> exact;
  for (int i = 0; i < 50'000; ++i) {
    const auto key = static_cast<std::uint64_t>(rng.uniform_int(0, 400));
    cms.add(key, 1);
    exact[key] += 1;
  }
  const double budget = eps * static_cast<double>(cms.total());
  for (const auto& [key, count] : exact) {
    EXPECT_LE(static_cast<double>(cms.estimate(key)),
              static_cast<double>(count) + budget)
        << "key " << key;
  }
}

TEST(CountMinSketchTest, ConservativeUpdateTighterThanPlain) {
  // Conservative update only raises cells at the current minimum. A plain
  // CMS accumulates every colliding key into every cell, so its per-key
  // error expectation is total/width; across all keys that is
  // #keys * total/width. Conservative update must come in well under that.
  util::Rng rng(13);
  CountMinSketch cms(32, 4);
  std::map<std::uint64_t, std::uint64_t> exact;
  for (int i = 0; i < 5'000; ++i) {
    const auto key = static_cast<std::uint64_t>(rng.uniform_int(0, 200));
    cms.add(key, 10);
    exact[key] += 10;
  }
  std::uint64_t summed_error = 0;
  for (const auto& [key, count] : exact) summed_error += cms.estimate(key) - count;
  const double plain_expectation =
      static_cast<double>(exact.size()) *
      (static_cast<double>(cms.total()) / static_cast<double>(cms.width()));
  EXPECT_LT(static_cast<double>(summed_error), 0.5 * plain_expectation);
}

TEST(CountMinSketchTest, HalvePreservesOneSidedError) {
  util::Rng rng(17);
  CountMinSketch cms(64, 4);
  std::map<std::uint64_t, std::uint64_t> exact;
  for (int i = 0; i < 10'000; ++i) {
    const auto key = static_cast<std::uint64_t>(rng.uniform_int(0, 300));
    cms.add(key, 8);
    exact[key] += 8;
  }
  cms.halve();
  // floor(cell/2) >= floor(count/2) whenever cell >= count.
  for (const auto& [key, count] : exact) {
    EXPECT_GE(cms.estimate(key), count / 2) << "key " << key;
  }
}

TEST(CountMinSketchTest, ClearResets) {
  CountMinSketch cms(64, 4);
  cms.add(42, 1000);
  cms.clear();
  EXPECT_EQ(cms.estimate(42), 0u);
  EXPECT_EQ(cms.total(), 0u);
}

// ---------------------------------------------------------------------------
// SpaceSaving.

TEST(SpaceSavingTest, ExactBelowCapacity) {
  SpaceSaving ss(8);
  ss.add(123, 700);
  ss.add(53, 200);
  ss.add(11211, 100);
  const auto top = ss.top(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].key, 123u);
  EXPECT_EQ(top[0].count, 700u);
  EXPECT_EQ(top[0].error, 0u);
  EXPECT_EQ(top[1].key, 53u);
  EXPECT_EQ(top[2].key, 11211u);
}

TEST(SpaceSavingTest, CountBoundsHold) {
  // For every monitored key: true <= count and count - error <= true.
  util::Rng rng(23);
  SpaceSaving ss(16);
  std::map<std::uint64_t, std::uint64_t> exact;
  for (int i = 0; i < 30'000; ++i) {
    const auto key = static_cast<std::uint64_t>(std::floor(
        std::pow(rng.uniform(), 3.0) * 2000.0));
    const auto count = static_cast<std::uint64_t>(rng.uniform_int(1, 100));
    ss.add(key, count);
    exact[key] += count;
  }
  for (const auto& entry : ss.top(ss.size())) {
    const std::uint64_t true_count = exact[entry.key];
    EXPECT_GE(entry.count, true_count) << "key " << entry.key;
    EXPECT_LE(entry.count - entry.error, true_count) << "key " << entry.key;
  }
}

TEST(SpaceSavingTest, GuaranteedHeavyHitterPresent) {
  // Any key with true count > total/capacity must be monitored. Build a
  // stream where one key holds 40% of the volume amid noise.
  util::Rng rng(29);
  SpaceSaving ss(16);
  std::uint64_t hot = 0;
  for (int i = 0; i < 20'000; ++i) {
    if (rng.chance(0.4)) {
      ss.add(123, 10);
      hot += 10;
    } else {
      ss.add(static_cast<std::uint64_t>(rng.uniform_int(1000, 60'000)), 10);
    }
  }
  ASSERT_GT(hot, ss.total() / ss.capacity());
  const auto top = ss.top(ss.size());
  EXPECT_NE(std::find_if(top.begin(), top.end(),
                         [](const auto& e) { return e.key == 123; }),
            top.end());
  // And it should dominate the ranking outright.
  EXPECT_EQ(top.front().key, 123u);
}

TEST(SpaceSavingTest, TopIsDescendingAndBounded) {
  SpaceSaving ss(4);
  for (std::uint64_t k = 0; k < 10; ++k) ss.add(k, (k + 1) * 10);
  EXPECT_EQ(ss.size(), 4u);
  const auto top = ss.top(100);  // k > size returns all.
  ASSERT_EQ(top.size(), 4u);
  for (std::size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].count, top[i].count);
  }
}

TEST(SpaceSavingTest, HalveAndClear) {
  SpaceSaving ss(4);
  ss.add(1, 100);
  ss.add(2, 50);
  ss.halve();
  const auto top = ss.top(2);
  EXPECT_EQ(top[0].count, 50u);
  EXPECT_EQ(top[1].count, 25u);
  ss.clear();
  EXPECT_EQ(ss.size(), 0u);
  EXPECT_EQ(ss.total(), 0u);
}

// ---------------------------------------------------------------------------
// WindowedEntropy.

TEST(WindowedEntropyTest, EmptyAndSingleCategoryAreZero) {
  WindowedEntropy e(4);
  EXPECT_DOUBLE_EQ(e.entropy_bits(), 0.0);
  EXPECT_DOUBLE_EQ(e.normalized(), 0.0);
  e.add(123, 1'000'000);
  EXPECT_DOUBLE_EQ(e.entropy_bits(), 0.0);
  EXPECT_DOUBLE_EQ(e.normalized(), 0.0);
}

TEST(WindowedEntropyTest, UniformTwoCategoriesIsOneBit) {
  WindowedEntropy e(4);
  e.add(1, 500);
  e.add(2, 500);
  EXPECT_NEAR(e.entropy_bits(), 1.0, 1e-12);
  EXPECT_NEAR(e.normalized(), 1.0, 1e-12);
}

TEST(WindowedEntropyTest, ConcentrationLowersEntropy) {
  // The amplification signature: one port takes over the distribution.
  WindowedEntropy uniform(2);
  WindowedEntropy skewed(2);
  for (std::uint16_t p = 0; p < 16; ++p) uniform.add(p, 100);
  skewed.add(123, 10'000);
  for (std::uint16_t p = 0; p < 16; ++p) skewed.add(p, 10);
  EXPECT_GT(uniform.normalized(), 0.99);
  EXPECT_LT(skewed.normalized(), 0.2);
}

TEST(WindowedEntropyTest, OldBinsFallOutOfWindow) {
  WindowedEntropy e(2);
  e.add(1, 1000);  // Bin 0: only category 1.
  e.rotate();
  e.add(2, 1000);  // Bin 1: only category 2 -> two live categories.
  EXPECT_NEAR(e.entropy_bits(), 1.0, 1e-12);
  e.rotate();
  e.add(2, 1000);  // Bin 2: bin 0 (category 1) expires.
  e.rotate();
  EXPECT_EQ(e.distinct(), 1u);
  EXPECT_DOUBLE_EQ(e.entropy_bits(), 0.0);
  e.clear();
  EXPECT_EQ(e.total(), 0u);
}

// ---------------------------------------------------------------------------
// FlowAggregateKey.

TEST(FlowAggregateKeyTest, FieldsDoNotCollide) {
  EXPECT_NE(FlowAggregateKey(1, 17, 123), FlowAggregateKey(1, 17, 124));
  EXPECT_NE(FlowAggregateKey(1, 17, 123), FlowAggregateKey(1, 6, 123));
  EXPECT_NE(FlowAggregateKey(1, 17, 123), FlowAggregateKey(2, 17, 123));
  EXPECT_EQ(FlowAggregateKey(0x640a0a0a, 17, 123),
            FlowAggregateKey(0x640a0a0a, 17, 123));
}

}  // namespace
}  // namespace stellar::detect
