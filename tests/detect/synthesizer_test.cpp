#include "detect/synthesizer.hpp"

#include <gtest/gtest.h>

#include "net/ports.hpp"

namespace stellar::detect {
namespace {

SpaceSaving::Entry Port(std::uint16_t port, std::uint64_t bytes) {
  return SpaceSaving::Entry{port, bytes, 0};
}

/// An NTP reflection flood: 1000 Mbps total over a 60 Mbps baseline, with
/// ~95% of windowed UDP bytes from source port 123.
TrafficProfile NtpFlood() {
  TrafficProfile p;
  p.victim = net::IPv4Address(100, 10, 10, 10);
  p.total_mbps = 1'060.0;
  p.udp_mbps = 1'010.0;
  p.tcp_mbps = 50.0;
  p.baseline_mbps = 60.0;
  p.udp_window_bytes = 10'000'000;
  p.udp_src_ports = {Port(net::kPortNtp, 9'500'000), Port(53'123, 300'000),
                     Port(40'000, 200'000)};
  p.udp_src_port_entropy = 0.1;
  return p;
}

TEST(RuleSynthesizerTest, ZeroBudgetOrNoExcessIsEmpty) {
  RuleSynthesizer syn;
  EXPECT_TRUE(syn.synthesize(NtpFlood(), 0).empty());
  TrafficProfile quiet = NtpFlood();
  quiet.total_mbps = quiet.baseline_mbps;  // Nothing above baseline.
  EXPECT_TRUE(syn.synthesize(quiet, 8).empty());
}

TEST(RuleSynthesizerTest, NtpFloodYieldsSinglePortSignature) {
  RuleSynthesizer syn;
  const auto plan = syn.synthesize(NtpFlood(), 8);
  ASSERT_EQ(plan.rules.size(), 1u);
  EXPECT_EQ(plan.rules[0].kind, core::RuleKind::kUdpSrcPort);
  EXPECT_EQ(plan.rules[0].value, net::kPortNtp);
  EXPECT_FALSE(plan.fallback_proto);
  EXPECT_GE(plan.covered_share, syn.config().coverage_target);
}

TEST(RuleSynthesizerTest, MultiVectorUsesMultipleSignatures) {
  // NTP + DNS + memcached, each ~1/3 of the flood: one rule cannot reach the
  // coverage target, three can.
  TrafficProfile p = NtpFlood();
  p.udp_src_ports = {Port(net::kPortNtp, 3'400'000), Port(net::kPortDns, 3'300'000),
                     Port(net::kPortMemcached, 3'300'000)};
  RuleSynthesizer syn;
  const auto plan = syn.synthesize(p, 8);
  ASSERT_EQ(plan.rules.size(), 3u);
  for (const auto& rule : plan.rules) {
    EXPECT_EQ(rule.kind, core::RuleKind::kUdpSrcPort);
  }
  EXPECT_GE(plan.covered_share, syn.config().coverage_target);
}

TEST(RuleSynthesizerTest, BudgetCapsRuleCount) {
  TrafficProfile p = NtpFlood();
  p.udp_src_ports = {Port(net::kPortNtp, 3'400'000), Port(net::kPortDns, 3'300'000),
                     Port(net::kPortMemcached, 3'300'000)};
  const auto plan = RuleSynthesizer().synthesize(p, 2);
  EXPECT_LE(plan.rules.size(), 2u);
}

TEST(RuleSynthesizerTest, KnownAmplifierRankedBeforeUnknownPort) {
  // An unknown high port carries slightly more bytes than NTP; with
  // prefer_known_amplifiers the NTP signature still goes first.
  TrafficProfile p = NtpFlood();
  p.udp_src_ports = {Port(40'000, 5'100'000), Port(net::kPortNtp, 4'900'000)};
  const auto plan = RuleSynthesizer().synthesize(p, 8);
  ASSERT_FALSE(plan.rules.empty());
  EXPECT_EQ(plan.rules[0].value, net::kPortNtp);
}

TEST(RuleSynthesizerTest, NoisePortsBelowMinShareExcluded) {
  TrafficProfile p = NtpFlood();
  // 123 has 96%, the rest are sub-5% noise.
  p.udp_src_ports = {Port(net::kPortNtp, 9'600'000), Port(1024, 200'000),
                     Port(2048, 100'000), Port(4096, 100'000)};
  const auto plan = RuleSynthesizer().synthesize(p, 8);
  ASSERT_EQ(plan.rules.size(), 1u);
  EXPECT_EQ(plan.rules[0].value, net::kPortNtp);
}

TEST(RuleSynthesizerTest, HighEntropyFallsBackToProtocolRule) {
  // A UDP flood from random source ports: per-port signatures are
  // meaningless, so the plan is one proto-wide UDP rule.
  TrafficProfile p = NtpFlood();
  p.udp_src_port_entropy = 0.95;
  const auto plan = RuleSynthesizer().synthesize(p, 8);
  ASSERT_EQ(plan.rules.size(), 1u);
  EXPECT_TRUE(plan.fallback_proto);
  EXPECT_EQ(plan.rules[0].kind, core::RuleKind::kProtocol);
  EXPECT_EQ(plan.rules[0].value, static_cast<std::uint16_t>(net::IpProto::kUdp));
}

TEST(RuleSynthesizerTest, TcpDominantFallbackPicksTcp) {
  TrafficProfile p;
  p.total_mbps = 900.0;
  p.tcp_mbps = 850.0;  // SYN-flood-ish: no UDP signature available.
  p.udp_mbps = 50.0;
  p.baseline_mbps = 50.0;
  p.udp_window_bytes = 0;
  const auto plan = RuleSynthesizer().synthesize(p, 8);
  ASSERT_EQ(plan.rules.size(), 1u);
  EXPECT_TRUE(plan.fallback_proto);
  EXPECT_EQ(plan.rules[0].value, static_cast<std::uint16_t>(net::IpProto::kTcp));
}

TEST(RuleSynthesizerTest, NeverEmitsDropAll) {
  // Unexplainable excess (dispersed ports, no dominant protocol): the
  // synthesizer refuses to blackhole the whole prefix — benign collateral is
  // the invariant. Best effort may be empty, but never kDropAll.
  TrafficProfile p;
  p.total_mbps = 1'000.0;
  p.udp_mbps = 500.0;
  p.tcp_mbps = 500.0;
  p.baseline_mbps = 50.0;
  p.udp_window_bytes = 10'000'000;
  p.udp_src_port_entropy = 0.99;
  const auto plan = RuleSynthesizer().synthesize(p, 8);
  for (const auto& rule : plan.rules) {
    EXPECT_NE(rule.kind, core::RuleKind::kDropAll);
  }
}

}  // namespace
}  // namespace stellar::detect
