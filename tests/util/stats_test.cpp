#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace stellar::util {
namespace {

TEST(StatsTest, MeanAndVariance) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Mean(xs), 5.0);
  EXPECT_NEAR(SampleVariance(xs), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(SampleStdDev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(StatsTest, MeanOfEmptyThrows) {
  EXPECT_THROW(Mean({}), std::invalid_argument);
  EXPECT_THROW(SampleVariance(std::vector<double>{1.0}), std::invalid_argument);
}

TEST(StatsTest, PercentileInterpolates) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(Median(xs), 2.5);
}

TEST(StatsTest, PercentileUnsortedInput) {
  const std::vector<double> xs{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(Percentile(xs, 50.0), 2.5);
}

TEST(StatsTest, PercentileValidatesRange) {
  const std::vector<double> xs{1.0};
  EXPECT_THROW(Percentile(xs, -1.0), std::invalid_argument);
  EXPECT_THROW(Percentile(xs, 101.0), std::invalid_argument);
}

TEST(StatsTest, StudentTCdfMatchesKnownValues) {
  // t=0 is always 0.5; large df approximates the normal distribution.
  EXPECT_NEAR(StudentTCdf(0.0, 5.0), 0.5, 1e-10);
  EXPECT_NEAR(StudentTCdf(1.96, 1e6), 0.975, 1e-3);
  // df=1 (Cauchy): CDF(1) = 0.75.
  EXPECT_NEAR(StudentTCdf(1.0, 1.0), 0.75, 1e-6);
  // Symmetry.
  EXPECT_NEAR(StudentTCdf(-2.0, 7.0) + StudentTCdf(2.0, 7.0), 1.0, 1e-10);
}

TEST(StatsTest, RegularizedIncompleteBetaBounds) {
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2.0, 3.0, 1.0), 1.0);
  // I_x(1,1) = x.
  EXPECT_NEAR(RegularizedIncompleteBeta(1.0, 1.0, 0.3), 0.3, 1e-10);
}

TEST(StatsTest, WelchDetectsDifferentMeans) {
  Rng rng(1);
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 200; ++i) {
    a.push_back(rng.normal(10.0, 2.0));
    b.push_back(rng.normal(8.0, 3.0));
  }
  const WelchResult r = WelchTTest(a, b);
  EXPECT_GT(r.t_statistic, 2.0);
  // The paper uses significance level 0.02 for exactly this test.
  EXPECT_LT(r.p_value_one_tailed, 0.02);
}

TEST(StatsTest, WelchNoDifferenceHasHighPValue) {
  Rng rng(2);
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 200; ++i) {
    a.push_back(rng.normal(5.0, 1.0));
    b.push_back(rng.normal(5.0, 1.0));
  }
  const WelchResult r = WelchTTest(a, b);
  EXPECT_GT(r.p_value_one_tailed, 0.02);
}

TEST(StatsTest, WelchDegenerateConstantSamples) {
  const std::vector<double> a{3.0, 3.0, 3.0};
  const std::vector<double> b{1.0, 1.0, 1.0};
  const WelchResult r = WelchTTest(a, b);
  EXPECT_EQ(r.p_value_one_tailed, 0.0);  // a > b with certainty.
}

TEST(StatsTest, LinearRegressionRecoversLine) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 50; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 + 2.0 * i);
  }
  const LinearFit fit = LinearRegression(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
  EXPECT_NEAR(fit.slope_ci95, 0.0, 1e-9);
}

TEST(StatsTest, LinearRegressionNoisyHasSaneCi) {
  Rng rng(3);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 100; ++i) {
    xs.push_back(i * 0.1);
    ys.push_back(1.0 + 0.5 * i * 0.1 + rng.normal(0.0, 0.2));
  }
  const LinearFit fit = LinearRegression(xs, ys);
  EXPECT_NEAR(fit.slope, 0.5, 0.1);
  EXPECT_GT(fit.slope_ci95, 0.0);
  EXPECT_LT(std::abs(fit.slope - 0.5), 3.0 * fit.slope_ci95);
}

TEST(StatsTest, LinearRegressionRejectsConstantX) {
  const std::vector<double> xs{1.0, 1.0, 1.0};
  const std::vector<double> ys{1.0, 2.0, 3.0};
  EXPECT_THROW(LinearRegression(xs, ys), std::invalid_argument);
}

TEST(StatsTest, EmpiricalCdfBasics) {
  EmpiricalCdf cdf({4.0, 1.0, 3.0, 2.0});
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(10.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 4.0);
}

TEST(StatsTest, ConfidenceHalfWidthShrinksWithN) {
  Rng rng(4);
  std::vector<double> small;
  std::vector<double> large;
  for (int i = 0; i < 20; ++i) small.push_back(rng.normal(0.0, 1.0));
  for (int i = 0; i < 2000; ++i) large.push_back(rng.normal(0.0, 1.0));
  EXPECT_GT(ConfidenceHalfWidth95(small), ConfidenceHalfWidth95(large));
}

// Property sweep: percentile is monotone in pct for arbitrary samples.
class PercentileMonotoneTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PercentileMonotoneTest, MonotoneInPct) {
  Rng rng(GetParam());
  std::vector<double> xs;
  const int n = static_cast<int>(rng.uniform_int(1, 200));
  for (int i = 0; i < n; ++i) xs.push_back(rng.normal(0.0, 10.0));
  double prev = Percentile(xs, 0.0);
  for (double pct = 5.0; pct <= 100.0; pct += 5.0) {
    const double cur = Percentile(xs, pct);
    EXPECT_GE(cur, prev) << "pct=" << pct;
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileMonotoneTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace stellar::util
