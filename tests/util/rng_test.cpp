#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/stats.hpp"

namespace stellar::util {
namespace {

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1'000'000), b.uniform_int(0, 1'000'000));
  }
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformRealInHalfOpenInterval) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, ChanceMatchesProbability) {
  Rng rng(3);
  int hits = 0;
  constexpr int kTrials = 20'000;
  for (int i = 0; i < kTrials; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.3, 0.02);
}

TEST(RngTest, ExponentialMeanIsInverseRate) {
  Rng rng(4);
  std::vector<double> xs;
  for (int i = 0; i < 20'000; ++i) xs.push_back(rng.exponential(4.0));
  EXPECT_NEAR(Mean(xs), 0.25, 0.01);
}

TEST(RngTest, PoissonMean) {
  Rng rng(5);
  std::vector<double> xs;
  for (int i = 0; i < 20'000; ++i) xs.push_back(static_cast<double>(rng.poisson(7.0)));
  EXPECT_NEAR(Mean(xs), 7.0, 0.1);
  EXPECT_EQ(rng.poisson(0.0), 0);
}

TEST(RngTest, ParetoIsAtLeastScale) {
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(7);
  const std::vector<double> weights{0.0, 1.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 20'000; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.2);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(9);
  Rng child = a.fork();
  // The fork must not replay the parent's stream.
  Rng b(9);
  (void)b.engine()();  // Parent consumed one draw for the fork.
  bool any_different = false;
  for (int i = 0; i < 10; ++i) {
    if (child.uniform_int(0, 1'000'000) != b.uniform_int(0, 1'000'000)) {
      any_different = true;
    }
  }
  EXPECT_TRUE(any_different);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(10);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

}  // namespace
}  // namespace stellar::util
