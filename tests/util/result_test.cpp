#include "util/result.hpp"

#include <gtest/gtest.h>

namespace stellar::util {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(static_cast<bool>(r));
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(MakeError("code", "message"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "code");
  EXPECT_EQ(r.error().message, "message");
}

TEST(ResultTest, ValueOnErrorThrows) {
  Result<int> r(MakeError("x", "boom"));
  EXPECT_THROW((void)r.value(), std::logic_error);
}

TEST(ResultTest, ValueOrFallsBack) {
  Result<int> ok(7);
  Result<int> bad(MakeError("x", "y"));
  EXPECT_EQ(ok.value_or(0), 7);
  EXPECT_EQ(bad.value_or(-1), -1);
}

TEST(ResultTest, MoveOnlyValueSupported) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  auto p = std::move(r).value();
  EXPECT_EQ(*p, 5);
}

TEST(ResultTest, ArrowOperatorReachesValue) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r->size(), 5u);
}

TEST(ResultTest, VoidResultDefaultsToOk) {
  Result<void> r;
  EXPECT_TRUE(r.ok());
}

TEST(ResultTest, VoidResultCarriesError) {
  Result<void> r(MakeError("e", "failed"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "e");
}

TEST(ResultTest, ErrorEquality) {
  EXPECT_EQ(MakeError("a", "b"), MakeError("a", "b"));
  EXPECT_NE(MakeError("a", "b"), MakeError("a", "c"));
}

}  // namespace
}  // namespace stellar::util
