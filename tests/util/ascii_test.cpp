#include "util/ascii.hpp"

#include <gtest/gtest.h>

namespace stellar::util {
namespace {

TEST(TextTableTest, RendersAlignedColumns) {
  TextTable t({"port", "share"});
  t.add_row({"443", "55.2"});
  t.add_row({"11211", "3.1"});
  const std::string out = t.str();
  EXPECT_NE(out.find("port  | share"), std::string::npos);
  EXPECT_NE(out.find("443   | 55.2"), std::string::npos);
  EXPECT_NE(out.find("11211 | 3.1"), std::string::npos);
}

TEST(TextTableTest, RejectsMismatchedRow) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(FormatDoubleTest, FixedPrecision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
  EXPECT_EQ(FormatDouble(-1.5, 1), "-1.5");
}

TEST(BarChartTest, ScalesToMax) {
  const std::string out = BarChart({{"a", 10.0}, {"b", 5.0}}, 10);
  // "a" gets the full width, "b" half.
  EXPECT_NE(out.find("a | ########## 10.00"), std::string::npos);
  EXPECT_NE(out.find("b | ##### 5.00"), std::string::npos);
}

TEST(BarChartTest, AllZeroProducesNoBars) {
  const std::string out = BarChart({{"x", 0.0}}, 10);
  EXPECT_NE(out.find("x | 0.00"), std::string::npos);
}

TEST(SeriesTableTest, AlignsSeries) {
  const std::string out =
      SeriesTable("t", {0.0, 1.0}, {{"a", {1.0, 2.0}}, {"b", {3.0, 4.0}}}, 1);
  EXPECT_NE(out.find("t"), std::string::npos);
  EXPECT_NE(out.find("a"), std::string::npos);
  EXPECT_NE(out.find("4.0"), std::string::npos);
}

TEST(SeriesTableTest, RejectsLengthMismatch) {
  EXPECT_THROW(SeriesTable("t", {0.0, 1.0}, {{"a", {1.0}}}), std::invalid_argument);
}

}  // namespace
}  // namespace stellar::util
