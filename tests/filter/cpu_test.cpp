#include "filter/cpu.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/stats.hpp"

namespace stellar::filter {
namespace {

TEST(ControlPlaneCpuTest, CalibratedOperatingPoint) {
  // The paper: 15% CPU cap sustains a median of 4.33 rule updates/s.
  ControlPlaneCpu cpu;
  EXPECT_NEAR(cpu.expected_percent(4.33), 15.0 + cpu.config().idle_percent, 0.25);
  EXPECT_NEAR(cpu.max_update_rate(), 4.33, 0.1);
}

TEST(ControlPlaneCpuTest, ExpectedIsLinearInRate) {
  ControlPlaneCpu cpu;
  const double base = cpu.expected_percent(0.0);
  const double one = cpu.expected_percent(1.0);
  const double two = cpu.expected_percent(2.0);
  EXPECT_NEAR(two - one, one - base, 1e-9);
}

TEST(ControlPlaneCpuTest, MeasurementIsNoisyButUnbiased) {
  ControlPlaneCpu cpu;
  util::Rng rng(1);
  std::vector<double> samples;
  for (int i = 0; i < 500; ++i) {
    samples.push_back(cpu.measure_interval(/*updates=*/20.0, /*interval_s=*/5.0, rng));
  }
  // 4 updates/s expected.
  EXPECT_NEAR(util::Mean(samples), cpu.expected_percent(4.0), 0.1);
  EXPECT_GT(util::SampleStdDev(samples), 0.05);
}

TEST(ControlPlaneCpuTest, MeasurementClampedToValidRange) {
  CpuModelConfig config;
  config.percent_per_update_rate = 50.0;
  ControlPlaneCpu cpu(config);
  util::Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    const double v = cpu.measure_interval(1000.0, 1.0, rng);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 100.0);
  }
}

TEST(ControlPlaneCpuTest, ZeroIntervalMeansIdle) {
  ControlPlaneCpu cpu;
  util::Rng rng(3);
  const double v = cpu.measure_interval(10.0, 0.0, rng);
  EXPECT_LT(v, 2.0);  // Idle + noise only.
}

}  // namespace
}  // namespace stellar::filter
