#include "filter/token_bucket.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace stellar::filter {
namespace {

TEST(TokenBucketTest, StartsFull) {
  TokenBucket b(1.0, 5.0);
  EXPECT_DOUBLE_EQ(b.tokens(0.0), 5.0);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(b.try_consume(1.0, 0.0));
  EXPECT_FALSE(b.try_consume(1.0, 0.0));
}

TEST(TokenBucketTest, RefillsAtRate) {
  TokenBucket b(2.0, 4.0);
  EXPECT_TRUE(b.try_consume(4.0, 0.0));
  EXPECT_FALSE(b.try_consume(1.0, 0.0));
  EXPECT_FALSE(b.try_consume(1.1, 0.5));  // Only 1.0 token accrued.
  EXPECT_TRUE(b.try_consume(1.0, 0.5));
  EXPECT_TRUE(b.try_consume(4.0, 10.0));  // Fully refilled (capped at burst).
}

TEST(TokenBucketTest, BurstCapsAccumulation) {
  TokenBucket b(100.0, 3.0);
  EXPECT_DOUBLE_EQ(b.tokens(1000.0), 3.0);
}

TEST(TokenBucketTest, TimeAvailableComputesExactWait) {
  TokenBucket b(4.0, 1.0);  // 4 tokens/s, burst 1.
  EXPECT_TRUE(b.try_consume(1.0, 0.0));
  EXPECT_DOUBLE_EQ(b.time_available(1.0, 0.0), 0.25);
  EXPECT_DOUBLE_EQ(b.time_available(1.0, 0.1), 0.25);
  // After the wait, consumption succeeds.
  EXPECT_TRUE(b.try_consume(1.0, 0.25));
}

TEST(TokenBucketTest, TimeAvailableNowWhenTokensPresent) {
  TokenBucket b(1.0, 2.0);
  EXPECT_DOUBLE_EQ(b.time_available(1.0, 7.0), 7.0);
}

TEST(TokenBucketTest, LongTermRateIsEnforced) {
  // Drain as fast as possible for 100 simulated seconds at rate 4.33/s.
  TokenBucket b(4.33, 5.0);
  double now = 0.0;
  int consumed = 0;
  while (now < 100.0) {
    now = b.time_available(1.0, now);
    if (now >= 100.0) break;
    ASSERT_TRUE(b.try_consume(1.0, now));
    ++consumed;
  }
  // burst (5) + 100 s * 4.33 = 438 ± rounding.
  EXPECT_GE(consumed, 435);
  EXPECT_LE(consumed, 440);
}

TEST(TokenBucketTest, SleepUntilAvailableThenConsumeAlwaysSucceeds) {
  // Regression: with a rate whose reciprocal is not a binary fraction (5/s)
  // and large absolute timestamps, the refill at time_available() used to
  // fall ~5e-11 tokens short of the request, deadlocking callers that sleep
  // exactly until the advertised time.
  for (const double rate : {3.0, 4.0, 4.33, 5.0, 7.0}) {
    TokenBucket b(rate, 5.0);
    double now = 80'000.0;  // Large timestamps maximize the rounding error.
    for (int i = 0; i < 10'000; ++i) {
      now = b.time_available(1.0, now);
      ASSERT_TRUE(b.try_consume(1.0, now)) << "rate=" << rate << " i=" << i;
    }
  }
}

TEST(TokenBucketTest, RequestAboveBurstIsNeverAvailable) {
  // Regression: time_available() used to guard n <= burst with assert only;
  // in release builds an over-burst request got a finite answer at which
  // try_consume still failed, wedging sleep-then-consume callers forever.
  TokenBucket b(2.0, 5.0);
  EXPECT_EQ(b.time_available(5.1, 0.0), TokenBucket::kNever);
  EXPECT_EQ(b.time_available(100.0, 50.0), TokenBucket::kNever);
  EXPECT_FALSE(std::isfinite(b.time_available(6.0, 0.0)));
  // The sentinel is consistent with try_consume: no time makes it succeed.
  EXPECT_FALSE(b.try_consume(5.1, 1e9));
  // Requests at or below burst still get finite, honest answers.
  const double when = b.time_available(5.0, 0.0);
  ASSERT_TRUE(std::isfinite(when));
  EXPECT_TRUE(b.try_consume(5.0, when));
}

TEST(TokenBucketTest, NonMonotonicTimeDoesNotRefillBackwards) {
  TokenBucket b(1.0, 2.0);
  EXPECT_TRUE(b.try_consume(2.0, 10.0));
  // An earlier timestamp must not mint tokens.
  EXPECT_FALSE(b.try_consume(1.0, 5.0));
}

}  // namespace
}  // namespace stellar::filter
