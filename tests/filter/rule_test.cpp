#include "filter/rule.hpp"

#include <gtest/gtest.h>

#include "net/ports.hpp"

namespace stellar::filter {
namespace {

net::FlowKey NtpFlow() {
  net::FlowKey k;
  k.src_mac = net::MacAddress::ForRouter(65001);
  k.src_ip = net::IPv4Address(1, 2, 3, 4);
  k.dst_ip = net::IPv4Address(100, 10, 10, 10);
  k.proto = net::IpProto::kUdp;
  k.src_port = net::kPortNtp;
  k.dst_port = 5555;
  return k;
}

TEST(PortRangeTest, Basics) {
  EXPECT_TRUE(PortRange::Any().is_wildcard());
  EXPECT_TRUE(PortRange::Single(80).is_single());
  EXPECT_TRUE(PortRange::Single(80).contains(80));
  EXPECT_FALSE(PortRange::Single(80).contains(81));
  const PortRange r{100, 200};
  EXPECT_TRUE(r.contains(100));
  EXPECT_TRUE(r.contains(200));
  EXPECT_FALSE(r.contains(99));
  EXPECT_EQ(r.str(), "100-200");
  EXPECT_EQ(PortRange::Any().str(), "*");
  EXPECT_EQ(PortRange::Single(80).str(), "80");
}

TEST(MatchCriteriaTest, EmptyCriteriaMatchesEverything) {
  MatchCriteria m;
  EXPECT_TRUE(m.matches(NtpFlow()));
  EXPECT_EQ(m.l3l4_criteria_count(), 0);
  EXPECT_EQ(m.mac_criteria_count(), 0);
}

TEST(MatchCriteriaTest, EachFieldFilters) {
  const auto flow = NtpFlow();

  MatchCriteria mac;
  mac.src_mac = net::MacAddress::ForRouter(65002);
  EXPECT_FALSE(mac.matches(flow));
  mac.src_mac = flow.src_mac;
  EXPECT_TRUE(mac.matches(flow));

  MatchCriteria src;
  src.src_prefix = net::Prefix4::Parse("1.2.3.0/24").value();
  EXPECT_TRUE(src.matches(flow));
  src.src_prefix = net::Prefix4::Parse("9.0.0.0/8").value();
  EXPECT_FALSE(src.matches(flow));

  MatchCriteria dst;
  dst.dst_prefix = net::Prefix4::Parse("100.10.10.10/32").value();
  EXPECT_TRUE(dst.matches(flow));

  MatchCriteria proto;
  proto.proto = net::IpProto::kTcp;
  EXPECT_FALSE(proto.matches(flow));

  MatchCriteria sport;
  sport.src_port = PortRange::Single(net::kPortNtp);
  EXPECT_TRUE(sport.matches(flow));
  sport.src_port = PortRange::Single(53);
  EXPECT_FALSE(sport.matches(flow));

  MatchCriteria dport;
  dport.dst_port = PortRange{5000, 6000};
  EXPECT_TRUE(dport.matches(flow));
}

TEST(MatchCriteriaTest, ConjunctionSemantics) {
  MatchCriteria m;
  m.proto = net::IpProto::kUdp;
  m.src_port = PortRange::Single(net::kPortNtp);
  m.dst_prefix = net::Prefix4::Parse("100.10.10.0/24").value();
  EXPECT_TRUE(m.matches(NtpFlow()));
  auto other = NtpFlow();
  other.src_port = 53;  // One predicate fails -> no match.
  EXPECT_FALSE(m.matches(other));
}

TEST(MatchCriteriaTest, CriteriaCounting) {
  MatchCriteria m;
  m.dst_prefix = net::Prefix4::Parse("100.10.10.10/32").value();
  m.proto = net::IpProto::kUdp;
  m.src_port = PortRange::Single(123);
  EXPECT_EQ(m.l3l4_criteria_count(), 3);
  m.src_mac = net::MacAddress::ForRouter(1);
  EXPECT_EQ(m.mac_criteria_count(), 1);
  // A true range costs 2 (range expansion), a wildcard costs 0.
  m.dst_port = PortRange{1000, 2000};
  EXPECT_EQ(m.l3l4_criteria_count(), 5);
  m.dst_port = PortRange::Any();
  EXPECT_EQ(m.l3l4_criteria_count(), 3);
}

TEST(FilterRuleTest, StrRendersPaperStyle) {
  FilterRule rule;
  rule.match.proto = net::IpProto::kUdp;
  rule.match.dst_prefix = net::Prefix4::Parse("100.10.10.10/32").value();
  rule.match.src_port = PortRange::Single(123);
  rule.action = FilterAction::kDrop;
  const std::string s = rule.str();
  EXPECT_NE(s.find("drop"), std::string::npos);
  EXPECT_NE(s.find("Proto:udp"), std::string::npos);
  EXPECT_NE(s.find("Dst-IP:100.10.10.10/32"), std::string::npos);
  EXPECT_NE(s.find("Src-Port:123"), std::string::npos);

  rule.action = FilterAction::kShape;
  rule.shape_rate_mbps = 200.0;
  EXPECT_NE(rule.str().find("shape@200Mbps"), std::string::npos);
}

}  // namespace
}  // namespace stellar::filter
