#include "filter/edge_router.hpp"

#include <gtest/gtest.h>

#include "net/ports.hpp"

namespace stellar::filter {
namespace {

net::FlowSample Flow(net::IpProto proto, std::uint16_t src_port, double mbps) {
  net::FlowSample s;
  s.key.src_mac = net::MacAddress::ForRouter(65001);
  s.key.src_ip = net::IPv4Address(1, 2, 3, 4);
  s.key.dst_ip = net::IPv4Address(100, 10, 10, 10);
  s.key.proto = proto;
  s.key.src_port = src_port;
  s.key.dst_port = 5555;
  s.bytes = static_cast<std::uint64_t>(mbps * 1e6 / 8.0);
  return s;
}

FilterRule DropNtp() {
  FilterRule rule;
  rule.match.proto = net::IpProto::kUdp;
  rule.match.src_port = PortRange::Single(net::kPortNtp);
  rule.action = FilterAction::kDrop;
  return rule;
}

TEST(EdgeRouterTest, PortManagement) {
  EdgeRouter er("er1", TcamLimits{});
  er.add_port(1, 1000.0);
  er.add_port(2, 10'000.0);
  EXPECT_TRUE(er.has_port(1));
  EXPECT_FALSE(er.has_port(3));
  EXPECT_DOUBLE_EQ(er.port_capacity_mbps(2), 10'000.0);
  EXPECT_EQ(er.ports().size(), 2u);
  EXPECT_THROW((void)er.port_capacity_mbps(3), std::out_of_range);
  EXPECT_THROW(er.add_port(4, 0.0), std::invalid_argument);
}

TEST(EdgeRouterTest, InstallAndRemoveRule) {
  EdgeRouter er("er1", TcamLimits{});
  er.add_port(1, 1000.0);
  const auto id = er.install_rule(1, DropNtp());
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(er.policy(1).rule_count(), 1u);
  EXPECT_EQ(er.config_ops(), 1u);
  EXPECT_TRUE(er.remove_rule(1, *id));
  EXPECT_EQ(er.policy(1).rule_count(), 0u);
  EXPECT_EQ(er.config_ops(), 2u);
  EXPECT_FALSE(er.remove_rule(1, *id));
}

TEST(EdgeRouterTest, InstallOnUnknownPortFails) {
  EdgeRouter er("er1", TcamLimits{});
  const auto id = er.install_rule(9, DropNtp());
  EXPECT_FALSE(id.ok());
  EXPECT_EQ(id.error().code, "router.no_port");
}

TEST(EdgeRouterTest, TcamExhaustionSurfacesAsF1) {
  EdgeRouter er("er1", TcamLimits{.l3l4_criteria_pool = 2, .mac_filter_pool = 0});
  er.add_port(1, 1000.0);
  ASSERT_TRUE(er.install_rule(1, DropNtp()).ok());  // 2 criteria.
  const auto second = er.install_rule(1, DropNtp());
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.error().code, "F1");
}

TEST(EdgeRouterTest, RemoveReleasesTcam) {
  EdgeRouter er("er1", TcamLimits{.l3l4_criteria_pool = 2, .mac_filter_pool = 0});
  er.add_port(1, 1000.0);
  const auto id = er.install_rule(1, DropNtp());
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(er.remove_rule(1, *id));
  EXPECT_EQ(er.tcam().l3l4_in_use(), 0);
  EXPECT_TRUE(er.install_rule(1, DropNtp()).ok());
}

TEST(EdgeRouterTest, SurfacesTcamReleaseAccountingErrors) {
  EdgeRouter er("er1", TcamLimits{.l3l4_criteria_pool = 10, .mac_filter_pool = 10});
  er.add_port(1, 1000.0);
  const auto id = er.install_rule(1, DropNtp());
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(er.tcam_release_errors(), 0u);
  // Simulate external accounting drift: the reservation is returned behind
  // the router's back, so remove_rule's release finds nothing to free.
  ASSERT_TRUE(er.tcam().release(1, DropNtp().match));
  EXPECT_TRUE(er.remove_rule(1, *id));
  EXPECT_EQ(er.tcam_release_errors(), 1u);
  // Counters never went negative despite the double-release.
  EXPECT_EQ(er.tcam().l3l4_in_use(), 0);
  EXPECT_LE(er.tcam().l3l4_headroom(), 1.0);
}

TEST(EdgeRouterTest, DeliverAppliesPolicyAndAccumulatesCounters) {
  EdgeRouter er("er1", TcamLimits{});
  er.add_port(1, 1000.0);
  const auto id = er.install_rule(1, DropNtp());
  ASSERT_TRUE(id.ok());
  const std::vector<net::FlowSample> demand{Flow(net::IpProto::kUdp, 123, 500),
                                            Flow(net::IpProto::kTcp, 443, 100)};
  const auto r1 = er.deliver(1, demand, 1.0);
  EXPECT_NEAR(r1.rule_dropped_mbps, 500.0, 1.0);
  const auto r2 = er.deliver(1, demand, 1.0);
  (void)r2;
  const RuleCounters total = er.counters(*id);
  // Two bins of 500 Mbps dropped.
  EXPECT_NEAR(static_cast<double>(total.dropped_bytes), 2 * 500e6 / 8.0, 1e6);
}

TEST(EdgeRouterTest, DeliverOnUnknownPortThrows) {
  EdgeRouter er("er1", TcamLimits{});
  EXPECT_THROW(er.deliver(1, {}, 1.0), std::out_of_range);
}

TEST(EdgeRouterTest, CountersForUnknownRuleAreZero) {
  EdgeRouter er("er1", TcamLimits{});
  const RuleCounters c = er.counters(999);
  EXPECT_EQ(c.matched_bytes, 0u);
  EXPECT_EQ(c.dropped_bytes, 0u);
}

}  // namespace
}  // namespace stellar::filter
