#include "filter/qos.hpp"

#include <gtest/gtest.h>

#include "net/ports.hpp"

namespace stellar::filter {
namespace {

constexpr double kBin = 1.0;

net::FlowSample Flow(net::IpProto proto, std::uint16_t src_port, double mbps,
                     std::uint16_t dst_port = 5555) {
  net::FlowSample s;
  s.key.src_mac = net::MacAddress::ForRouter(65001);
  s.key.src_ip = net::IPv4Address(1, 2, 3, 4);
  s.key.dst_ip = net::IPv4Address(100, 10, 10, 10);
  s.key.proto = proto;
  s.key.src_port = src_port;
  s.key.dst_port = dst_port;
  s.bytes = static_cast<std::uint64_t>(mbps * 1e6 / 8.0 * kBin);
  s.packets = s.bytes / 1000;
  return s;
}

FilterRule DropNtp() {
  FilterRule rule;
  rule.match.proto = net::IpProto::kUdp;
  rule.match.src_port = PortRange::Single(net::kPortNtp);
  rule.action = FilterAction::kDrop;
  return rule;
}

FilterRule ShapeNtp(double rate_mbps) {
  FilterRule rule = DropNtp();
  rule.action = FilterAction::kShape;
  rule.shape_rate_mbps = rate_mbps;
  return rule;
}

TEST(QosPolicyTest, FirstMatchWins) {
  QosPolicy policy;
  FilterRule allow;
  allow.match.src_port = PortRange::Single(123);
  allow.action = FilterAction::kForward;
  policy.add_rule(1, allow);
  policy.add_rule(2, DropNtp());
  const auto flow = Flow(net::IpProto::kUdp, 123, 10).key;
  const InstalledRule* hit = policy.classify(flow);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->id, 1u);
}

TEST(QosPolicyTest, ForwardExceptionBeatsBroaderDropAcrossIndexClasses) {
  // A kForward exception installed ahead of a broader kDrop must win no
  // matter which index bucket each rule lands in: the exception here is an
  // exact dst-host rule (indexed) while the drop is a wildcard-port rule
  // (fallback list).
  QosPolicy policy;
  FilterRule allow;
  allow.match.dst_prefix = net::Prefix4::HostRoute(net::IPv4Address(100, 10, 10, 10));
  allow.action = FilterAction::kForward;
  policy.add_rule(1, allow);
  FilterRule drop_all_udp;
  drop_all_udp.match.proto = net::IpProto::kUdp;
  drop_all_udp.action = FilterAction::kDrop;
  policy.add_rule(2, drop_all_udp);

  const auto flow = Flow(net::IpProto::kUdp, 123, 10).key;
  const InstalledRule* hit = policy.classify(flow);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->id, 1u);
  EXPECT_EQ(hit->rule.action, FilterAction::kForward);
  EXPECT_EQ(policy.classify_linear(flow), hit);

  // Traffic to another destination still hits the drop.
  auto other = flow;
  other.dst_ip = net::IPv4Address(100, 10, 10, 11);
  const InstalledRule* dropped = policy.classify(other);
  ASSERT_NE(dropped, nullptr);
  EXPECT_EQ(dropped->id, 2u);
}

TEST(QosPolicyTest, FirstMatchWinsSurvivesRemovalCompactionAndReinsertion) {
  QosPolicy policy;
  FilterRule allow;
  allow.match.src_port = PortRange::Single(123);
  allow.match.proto = net::IpProto::kUdp;
  allow.action = FilterAction::kForward;
  FilterRule noise;
  noise.match.dst_port = PortRange::Single(9999);
  noise.match.proto = net::IpProto::kTcp;
  noise.action = FilterAction::kDrop;
  policy.add_rule(1, noise);
  policy.add_rule(2, allow);
  policy.add_rule(3, DropNtp());
  const auto flow = Flow(net::IpProto::kUdp, 123, 10).key;

  ASSERT_NE(policy.classify(flow), nullptr);
  EXPECT_EQ(policy.classify(flow)->id, 2u);

  // Removing an unrelated earlier rule compacts positions; the exception
  // must still shadow the broader drop.
  EXPECT_TRUE(policy.remove_rule(1));
  ASSERT_NE(policy.classify(flow), nullptr);
  EXPECT_EQ(policy.classify(flow)->id, 2u);

  // Removing the exception exposes the drop...
  EXPECT_TRUE(policy.remove_rule(2));
  ASSERT_NE(policy.classify(flow), nullptr);
  EXPECT_EQ(policy.classify(flow)->id, 3u);

  // ...and re-inserting it *after* the drop must NOT restore it: first match
  // is list position, not rule id or insertion history.
  policy.add_rule(4, allow);
  ASSERT_NE(policy.classify(flow), nullptr);
  EXPECT_EQ(policy.classify(flow)->id, 3u);
  EXPECT_EQ(policy.classify_linear(flow)->id, 3u);
}

TEST(QosPolicyTest, ClassifyBatchMatchesScalarClassify) {
  QosPolicy policy;
  policy.add_rule(1, DropNtp());
  policy.add_rule(2, ShapeNtp(100.0));
  std::vector<net::FlowKey> flows;
  for (std::uint16_t p = 120; p < 130; ++p) {
    flows.push_back(Flow(net::IpProto::kUdp, p, 1).key);
  }
  const auto batch = policy.classify_batch(flows);
  ASSERT_EQ(batch.size(), flows.size());
  for (std::size_t i = 0; i < flows.size(); ++i) {
    EXPECT_EQ(batch[i], policy.classify(flows[i])) << "flow " << i;
  }
}

TEST(QosPolicyTest, RemoveRule) {
  QosPolicy policy;
  policy.add_rule(1, DropNtp());
  EXPECT_TRUE(policy.remove_rule(1));
  EXPECT_FALSE(policy.remove_rule(1));
  EXPECT_EQ(policy.classify(Flow(net::IpProto::kUdp, 123, 1).key), nullptr);
}

TEST(ApplyEgressQosTest, NoPolicyNoCongestionPassesEverything) {
  QosPolicy policy;
  const std::vector<net::FlowSample> demand{Flow(net::IpProto::kTcp, 443, 100),
                                            Flow(net::IpProto::kUdp, 123, 200)};
  const auto r = ApplyEgressQos(demand, policy, 1000.0, kBin);
  EXPECT_NEAR(r.offered_mbps, 300.0, 1.0);
  EXPECT_NEAR(r.delivered_mbps, 300.0, 1.0);
  EXPECT_EQ(r.delivered.size(), 2u);
  EXPECT_DOUBLE_EQ(r.rule_dropped_mbps, 0.0);
}

TEST(ApplyEgressQosTest, DropRuleDiscardsOnlyMatching) {
  QosPolicy policy;
  policy.add_rule(1, DropNtp());
  const std::vector<net::FlowSample> demand{Flow(net::IpProto::kTcp, 443, 100),
                                            Flow(net::IpProto::kUdp, 123, 800)};
  const auto r = ApplyEgressQos(demand, policy, 1000.0, kBin);
  EXPECT_NEAR(r.rule_dropped_mbps, 800.0, 1.0);
  EXPECT_NEAR(r.delivered_mbps, 100.0, 1.0);
  ASSERT_EQ(r.delivered.size(), 1u);
  EXPECT_EQ(r.delivered[0].key.proto, net::IpProto::kTcp);
  // Telemetry counters.
  const auto& counters = r.rule_counters.at(1);
  EXPECT_GT(counters.matched_bytes, 0u);
  EXPECT_EQ(counters.matched_bytes, counters.dropped_bytes);
}

TEST(ApplyEgressQosTest, ShapingEnforcesRateAndKeepsTelemetrySample) {
  QosPolicy policy;
  policy.add_rule(1, ShapeNtp(200.0));
  const std::vector<net::FlowSample> demand{Flow(net::IpProto::kUdp, 123, 1000)};
  const auto r = ApplyEgressQos(demand, policy, 10'000.0, kBin);
  EXPECT_NEAR(r.delivered_mbps, 200.0, 1.0);
  EXPECT_NEAR(r.shaper_dropped_mbps, 800.0, 1.0);
  const auto& counters = r.rule_counters.at(1);
  EXPECT_GT(counters.delivered_bytes, 0u);
  EXPECT_GT(counters.dropped_bytes, counters.delivered_bytes);
}

TEST(ApplyEgressQosTest, ShapingUnderRatePassesAll) {
  QosPolicy policy;
  policy.add_rule(1, ShapeNtp(500.0));
  const std::vector<net::FlowSample> demand{Flow(net::IpProto::kUdp, 123, 100)};
  const auto r = ApplyEgressQos(demand, policy, 1000.0, kBin);
  EXPECT_NEAR(r.delivered_mbps, 100.0, 1.0);
  EXPECT_NEAR(r.shaper_dropped_mbps, 0.0, 1e-6);
}

TEST(ApplyEgressQosTest, MultipleFlowsShareOneShaperProportionally) {
  QosPolicy policy;
  policy.add_rule(1, ShapeNtp(300.0));
  const std::vector<net::FlowSample> demand{Flow(net::IpProto::kUdp, 123, 400, 1000),
                                            Flow(net::IpProto::kUdp, 123, 200, 2000)};
  const auto r = ApplyEgressQos(demand, policy, 10'000.0, kBin);
  EXPECT_NEAR(r.delivered_mbps, 300.0, 1.0);
  // Proportional split: 2:1.
  ASSERT_EQ(r.delivered.size(), 2u);
  const double a = r.delivered[0].mbps(kBin);
  const double b = r.delivered[1].mbps(kBin);
  EXPECT_NEAR(a / b, 2.0, 0.05);
}

TEST(ApplyEgressQosTest, CongestionDropsProportionally) {
  QosPolicy policy;
  const std::vector<net::FlowSample> demand{Flow(net::IpProto::kTcp, 443, 400),
                                            Flow(net::IpProto::kUdp, 123, 1600)};
  const auto r = ApplyEgressQos(demand, policy, 1000.0, kBin);
  EXPECT_NEAR(r.delivered_mbps, 1000.0, 1.0);
  EXPECT_NEAR(r.congestion_dropped_mbps, 1000.0, 1.0);
  // Both flows cut to half: this is the collateral damage of congestion.
  ASSERT_EQ(r.delivered.size(), 2u);
  EXPECT_NEAR(r.delivered[0].mbps(kBin), 200.0, 5.0);
  EXPECT_NEAR(r.delivered[1].mbps(kBin), 800.0, 5.0);
}

TEST(ApplyEgressQosTest, DropRuleRelievesCongestion) {
  // The Stellar effect: dropping attack traffic restores benign throughput.
  QosPolicy policy;
  policy.add_rule(1, DropNtp());
  const std::vector<net::FlowSample> demand{Flow(net::IpProto::kTcp, 443, 400),
                                            Flow(net::IpProto::kUdp, 123, 1600)};
  const auto r = ApplyEgressQos(demand, policy, 1000.0, kBin);
  EXPECT_NEAR(r.delivered_mbps, 400.0, 1.0);
  EXPECT_DOUBLE_EQ(r.congestion_dropped_mbps, 0.0);
}

TEST(ApplyEgressQosTest, ShapedTrafficCompetesInForwardQueue) {
  QosPolicy policy;
  policy.add_rule(1, ShapeNtp(800.0));
  const std::vector<net::FlowSample> demand{Flow(net::IpProto::kTcp, 443, 600),
                                            Flow(net::IpProto::kUdp, 123, 2000)};
  // Shaper admits 800; forward demand = 600 + 800 = 1400 > 1000 capacity.
  const auto r = ApplyEgressQos(demand, policy, 1000.0, kBin);
  EXPECT_NEAR(r.delivered_mbps, 1000.0, 1.0);
  EXPECT_NEAR(r.shaper_dropped_mbps, 1200.0, 1.0);
  EXPECT_NEAR(r.congestion_dropped_mbps, 400.0, 1.0);
}

TEST(ApplyEgressQosTest, ConservationOfTraffic) {
  QosPolicy policy;
  policy.add_rule(1, ShapeNtp(100.0));
  FilterRule drop_dns;
  drop_dns.match.proto = net::IpProto::kUdp;
  drop_dns.match.src_port = PortRange::Single(53);
  drop_dns.action = FilterAction::kDrop;
  policy.add_rule(2, drop_dns);
  const std::vector<net::FlowSample> demand{
      Flow(net::IpProto::kTcp, 443, 700), Flow(net::IpProto::kUdp, 123, 900),
      Flow(net::IpProto::kUdp, 53, 300), Flow(net::IpProto::kUdp, 11211, 500)};
  const auto r = ApplyEgressQos(demand, policy, 1000.0, kBin);
  EXPECT_NEAR(r.offered_mbps,
              r.delivered_mbps + r.rule_dropped_mbps + r.shaper_dropped_mbps +
                  r.congestion_dropped_mbps,
              1.0);
}

TEST(ApplyEgressQosTest, EmptyDemand) {
  QosPolicy policy;
  const auto r = ApplyEgressQos({}, policy, 1000.0, kBin);
  EXPECT_DOUBLE_EQ(r.offered_mbps, 0.0);
  EXPECT_TRUE(r.delivered.empty());
}

}  // namespace
}  // namespace stellar::filter
