// Differential test: QosPolicy's indexed classification must be
// *bit-identical* to the reference linear first-match scan — same rule id,
// same action, and (through ApplyEgressQos) the same RuleCounters — over
// randomized rule/flow corpora that cover every index bucket class, rule
// overlap, removal compaction and re-insertion.
#include <gtest/gtest.h>

#include <iterator>
#include <string>
#include <unordered_map>
#include <vector>

#include "filter/qos.hpp"
#include "util/rng.hpp"

namespace stellar::filter {
namespace {

// Small value universes so rules and flows overlap heavily: plenty of
// multi-rule candidate sets, shadowed rules, and near-miss bucket probes.
constexpr std::uint16_t kPorts[] = {0, 19, 53, 123, 389, 443, 11211, 60000};
constexpr net::IpProto kProtos[] = {net::IpProto::kIcmp, net::IpProto::kTcp,
                                    net::IpProto::kUdp};

net::IPv4Address RandomIp(util::Rng& rng) {
  return net::IPv4Address(static_cast<std::uint32_t>(
      (60u << 24) | static_cast<std::uint32_t>(rng.uniform_int(0, 255)) << 8 |
      static_cast<std::uint32_t>(rng.uniform_int(0, 7))));
}

net::MacAddress RandomMac(util::Rng& rng) {
  return net::MacAddress::ForRouter(
      static_cast<std::uint32_t>(rng.uniform_int(65001, 65008)));
}

std::uint16_t RandomPort(util::Rng& rng) {
  return kPorts[rng.uniform_int(0, std::ssize(kPorts) - 1)];
}

net::IpProto RandomProto(util::Rng& rng) {
  return kProtos[rng.uniform_int(0, std::ssize(kProtos) - 1)];
}

/// A random rule spread across every Selectivity class: exact host routes,
/// proto+single-port, MAC-only, short prefixes, port ranges, wildcards, and
/// combinations thereof.
FilterRule RandomRule(util::Rng& rng) {
  FilterRule rule;
  if (rng.chance(0.35)) {
    const int len = rng.chance(0.5) ? 32 : static_cast<int>(rng.uniform_int(8, 31));
    rule.match.dst_prefix = net::Prefix4(RandomIp(rng), static_cast<std::uint8_t>(len));
  }
  if (rng.chance(0.25)) {
    rule.match.src_prefix = net::Prefix4(RandomIp(rng), 24);
  }
  if (rng.chance(0.5)) rule.match.proto = RandomProto(rng);
  if (rng.chance(0.4)) {
    rule.match.src_port = rng.chance(0.7)
                              ? PortRange::Single(RandomPort(rng))
                              : PortRange{RandomPort(rng), 65535};
  }
  if (rng.chance(0.4)) {
    rule.match.dst_port = rng.chance(0.7)
                              ? PortRange::Single(RandomPort(rng))
                              : PortRange{0, RandomPort(rng)};
  }
  if (rng.chance(0.2)) rule.match.src_mac = RandomMac(rng);
  const double action = rng.uniform();
  if (action < 0.5) {
    rule.action = FilterAction::kDrop;
  } else if (action < 0.8) {
    rule.action = FilterAction::kShape;
    rule.shape_rate_mbps = rng.uniform(10.0, 500.0);
  } else {
    rule.action = FilterAction::kForward;
  }
  return rule;
}

net::FlowSample RandomFlow(util::Rng& rng) {
  net::FlowSample s;
  s.key.src_mac = RandomMac(rng);
  s.key.src_ip = RandomIp(rng);
  s.key.dst_ip = RandomIp(rng);
  s.key.proto = RandomProto(rng);
  s.key.src_port = RandomPort(rng);
  s.key.dst_port = RandomPort(rng);
  s.bytes = static_cast<std::uint64_t>(rng.uniform_int(1'000, 10'000'000));
  s.packets = s.bytes / 1000;
  return s;
}

void ExpectIdentical(const QosPolicy& policy, const net::FlowKey& flow,
                     const char* context) {
  const InstalledRule* indexed = policy.classify(flow);
  const InstalledRule* linear = policy.classify_linear(flow);
  ASSERT_EQ(indexed, linear) << context << ": indexed="
                             << (indexed ? std::to_string(indexed->id) : "null")
                             << " linear="
                             << (linear ? std::to_string(linear->id) : "null")
                             << " flow=" << flow.str();
  if (indexed != nullptr) {
    EXPECT_EQ(indexed->id, linear->id);
    EXPECT_EQ(indexed->rule.action, linear->rule.action);
  }
}

TEST(QosIndexDifferentialTest, RandomizedCorporaMatchLinearScan) {
  // 10 corpora × (rules in [1, 256]) × 1500 flows ≥ 10k flow classifications,
  // re-checked after removal compaction and re-insertion.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    util::Rng rng(seed);
    QosPolicy policy;
    const int n_rules = static_cast<int>(rng.uniform_int(1, 256));
    std::vector<RuleId> ids;
    for (int i = 0; i < n_rules; ++i) {
      ids.push_back(static_cast<RuleId>(i + 1));
      policy.add_rule(ids.back(), RandomRule(rng));
    }
    std::vector<net::FlowSample> flows;
    for (int i = 0; i < 1500; ++i) flows.push_back(RandomFlow(rng));

    for (const auto& f : flows) {
      ExpectIdentical(policy, f.key, "fresh policy");
      if (HasFatalFailure()) return;
    }

    // classify_batch must agree with scalar classify element-for-element.
    std::vector<net::FlowKey> keys;
    for (const auto& f : flows) keys.push_back(f.key);
    const auto batch = policy.classify_batch(keys);
    ASSERT_EQ(batch.size(), keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i) {
      EXPECT_EQ(batch[i], policy.classify_linear(keys[i])) << "batch idx " << i;
    }

    // Remove a random ~third of the rules (forces index rebuild + position
    // compaction), then re-insert fresh rules at the tail.
    for (const RuleId id : ids) {
      if (rng.chance(0.33)) EXPECT_TRUE(policy.remove_rule(id));
    }
    for (const auto& f : flows) {
      ExpectIdentical(policy, f.key, "after removals");
      if (HasFatalFailure()) return;
    }
    for (int i = 0; i < 16; ++i) {
      policy.add_rule(static_cast<RuleId>(1000 + i), RandomRule(rng));
    }
    for (const auto& f : flows) {
      ExpectIdentical(policy, f.key, "after re-insertion");
      if (HasFatalFailure()) return;
    }
  }
}

TEST(QosIndexDifferentialTest, RuleCountersMatchLinearClassification) {
  // ApplyEgressQos (which classifies via the index) must account every byte
  // to exactly the rule the linear scan selects.
  util::Rng rng(42);
  QosPolicy policy;
  for (int i = 0; i < 128; ++i) {
    policy.add_rule(static_cast<RuleId>(i + 1), RandomRule(rng));
  }
  std::vector<net::FlowSample> demand;
  for (int i = 0; i < 2000; ++i) demand.push_back(RandomFlow(rng));

  std::unordered_map<RuleId, std::uint64_t> expected_matched;
  std::unordered_map<RuleId, std::uint64_t> expected_drop_dropped;
  for (const auto& d : demand) {
    const InstalledRule* rule = policy.classify_linear(d.key);
    if (rule == nullptr) continue;
    expected_matched[rule->id] += d.bytes;
    if (rule->rule.action == FilterAction::kDrop) {
      expected_drop_dropped[rule->id] += d.bytes;
    }
  }

  const PortBinResult result = ApplyEgressQos(demand, policy, 10'000.0, 1.0);
  for (const auto& [id, counters] : result.rule_counters) {
    EXPECT_EQ(counters.matched_bytes, expected_matched[id]) << "rule " << id;
  }
  EXPECT_EQ(result.rule_counters.size(), expected_matched.size());
  for (const auto& [id, dropped] : expected_drop_dropped) {
    EXPECT_EQ(result.rule_counters.at(id).dropped_bytes, dropped) << "rule " << id;
  }
}

}  // namespace
}  // namespace stellar::filter
