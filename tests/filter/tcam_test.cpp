#include "filter/tcam.hpp"

#include <gtest/gtest.h>

namespace stellar::filter {
namespace {

MatchCriteria L3L4Rule(int criteria) {
  MatchCriteria m;
  if (criteria >= 1) m.dst_prefix = net::Prefix4::Parse("100.10.10.10/32").value();
  if (criteria >= 2) m.proto = net::IpProto::kUdp;
  if (criteria >= 3) m.src_port = PortRange::Single(123);
  return m;
}

MatchCriteria MacRule() {
  MatchCriteria m;
  m.src_mac = net::MacAddress::ForRouter(65001);
  return m;
}

TEST(TcamTest, AllocatesWithinPools) {
  Tcam tcam({.l3l4_criteria_pool = 10, .mac_filter_pool = 2});
  EXPECT_EQ(tcam.allocate(1, L3L4Rule(3)), TcamFailure::kNone);
  EXPECT_EQ(tcam.l3l4_in_use(), 3);
  EXPECT_EQ(tcam.allocate(2, MacRule()), TcamFailure::kNone);
  EXPECT_EQ(tcam.mac_in_use(), 1);
}

TEST(TcamTest, L3L4PoolExhaustionIsF1) {
  Tcam tcam({.l3l4_criteria_pool = 5, .mac_filter_pool = 100});
  EXPECT_EQ(tcam.allocate(1, L3L4Rule(3)), TcamFailure::kNone);
  EXPECT_EQ(tcam.allocate(1, L3L4Rule(3)), TcamFailure::kL3L4PoolExhausted);
  EXPECT_EQ(ToString(TcamFailure::kL3L4PoolExhausted), "F1");
  // Failed allocation reserved nothing.
  EXPECT_EQ(tcam.l3l4_in_use(), 3);
}

TEST(TcamTest, MacPoolExhaustionIsF2) {
  Tcam tcam({.l3l4_criteria_pool = 100, .mac_filter_pool = 1});
  EXPECT_EQ(tcam.allocate(1, MacRule()), TcamFailure::kNone);
  EXPECT_EQ(tcam.allocate(2, MacRule()), TcamFailure::kMacPoolExhausted);
  EXPECT_EQ(ToString(TcamFailure::kMacPoolExhausted), "F2");
}

TEST(TcamTest, F1TakesPrecedenceWhenBothExhausted) {
  Tcam tcam({.l3l4_criteria_pool = 1, .mac_filter_pool = 1});
  MatchCriteria both = L3L4Rule(2);
  both.src_mac = net::MacAddress::ForRouter(1);
  EXPECT_EQ(tcam.allocate(1, both), TcamFailure::kL3L4PoolExhausted);
}

TEST(TcamTest, PerPortLimits) {
  Tcam tcam({.l3l4_criteria_pool = 100,
             .mac_filter_pool = 100,
             .per_port_l3l4_criteria = 4,
             .per_port_mac_filters = 1});
  EXPECT_EQ(tcam.allocate(1, L3L4Rule(3)), TcamFailure::kNone);
  EXPECT_EQ(tcam.allocate(1, L3L4Rule(3)), TcamFailure::kPortL3L4LimitReached);
  // Another port still has room.
  EXPECT_EQ(tcam.allocate(2, L3L4Rule(3)), TcamFailure::kNone);
  EXPECT_EQ(tcam.allocate(1, MacRule()), TcamFailure::kNone);
  EXPECT_EQ(tcam.allocate(1, MacRule()), TcamFailure::kPortMacLimitReached);
}

TEST(TcamTest, ZeroPoolMeansUnlimited) {
  Tcam tcam(TcamLimits{});
  for (int i = 0; i < 10'000; ++i) {
    ASSERT_EQ(tcam.allocate(1, L3L4Rule(3)), TcamFailure::kNone);
  }
}

TEST(TcamTest, ReleaseReturnsResources) {
  Tcam tcam({.l3l4_criteria_pool = 3, .mac_filter_pool = 10});
  EXPECT_EQ(tcam.allocate(1, L3L4Rule(3)), TcamFailure::kNone);
  EXPECT_EQ(tcam.allocate(1, L3L4Rule(3)), TcamFailure::kL3L4PoolExhausted);
  tcam.release(1, L3L4Rule(3));
  EXPECT_EQ(tcam.l3l4_in_use(), 0);
  EXPECT_EQ(tcam.l3l4_in_use(1), 0);
  EXPECT_EQ(tcam.allocate(1, L3L4Rule(3)), TcamFailure::kNone);
}

TEST(TcamTest, HeadroomFractions) {
  Tcam tcam({.l3l4_criteria_pool = 10, .mac_filter_pool = 4});
  EXPECT_DOUBLE_EQ(tcam.l3l4_headroom(), 1.0);
  tcam.allocate(1, L3L4Rule(3));
  EXPECT_DOUBLE_EQ(tcam.l3l4_headroom(), 0.7);
  tcam.allocate(1, MacRule());
  EXPECT_DOUBLE_EQ(tcam.mac_headroom(), 0.75);
  Tcam unlimited(TcamLimits{});
  EXPECT_DOUBLE_EQ(unlimited.l3l4_headroom(), 1.0);
}

TEST(TcamTest, RejectedAllocationLeavesStateUntouched) {
  // Regression: allocate() used to insert the per-port usage entry *before*
  // the limit checks, so every rejected allocation permanently grew the map.
  Tcam tcam({.l3l4_criteria_pool = 2, .mac_filter_pool = 1});
  EXPECT_EQ(tcam.ports_tracked(), 0u);
  for (PortId port = 1; port <= 100; ++port) {
    EXPECT_EQ(tcam.allocate(port, L3L4Rule(3)), TcamFailure::kL3L4PoolExhausted);
  }
  EXPECT_EQ(tcam.ports_tracked(), 0u);
  EXPECT_EQ(tcam.l3l4_in_use(), 0);

  // Same for per-port limit rejections on a port that already has an entry.
  Tcam limited({.l3l4_criteria_pool = 100, .per_port_l3l4_criteria = 4});
  EXPECT_EQ(limited.allocate(1, L3L4Rule(3)), TcamFailure::kNone);
  EXPECT_EQ(limited.allocate(1, L3L4Rule(3)), TcamFailure::kPortL3L4LimitReached);
  EXPECT_EQ(limited.ports_tracked(), 1u);
  EXPECT_EQ(limited.l3l4_in_use(1), 3);
  EXPECT_EQ(limited.l3l4_in_use(), 3);
}

TEST(TcamTest, DoubleReleaseClampsAtZero) {
  // Regression: release() only assert()ed, so in release builds a
  // double-release drove the used counters negative and inflated headroom
  // past 1.0. Now the counters clamp and the caller is told.
  Tcam tcam({.l3l4_criteria_pool = 10, .mac_filter_pool = 10});
  MatchCriteria match = L3L4Rule(3);
  match.src_mac = net::MacAddress::ForRouter(65001);
  EXPECT_EQ(tcam.allocate(1, match), TcamFailure::kNone);
  EXPECT_TRUE(tcam.release(1, match));   // Balanced release succeeds.
  EXPECT_FALSE(tcam.release(1, match));  // Double-release is reported...
  EXPECT_EQ(tcam.l3l4_in_use(), 0);      // ...and never goes negative,
  EXPECT_EQ(tcam.mac_in_use(), 0);
  EXPECT_EQ(tcam.l3l4_in_use(1), 0);
  EXPECT_LE(tcam.l3l4_headroom(), 1.0);  // ...so headroom stays a fraction.
  EXPECT_LE(tcam.mac_headroom(), 1.0);
}

TEST(TcamTest, ReleaseOnUnknownPortIsReportedNotRecorded) {
  Tcam tcam({.l3l4_criteria_pool = 10, .mac_filter_pool = 10});
  EXPECT_FALSE(tcam.release(42, L3L4Rule(2)));
  EXPECT_EQ(tcam.ports_tracked(), 0u);
  EXPECT_EQ(tcam.l3l4_in_use(), 0);
  // A criteria-free release is vacuously fine.
  EXPECT_TRUE(tcam.release(42, MatchCriteria{}));
}

TEST(TcamTest, PartialOverReleaseClampsPerCounter) {
  Tcam tcam({.l3l4_criteria_pool = 10, .mac_filter_pool = 10});
  EXPECT_EQ(tcam.allocate(1, L3L4Rule(2)), TcamFailure::kNone);
  // Release claims 3 criteria but only 2 are reserved: clamp, report.
  EXPECT_FALSE(tcam.release(1, L3L4Rule(3)));
  EXPECT_EQ(tcam.l3l4_in_use(), 0);
  EXPECT_EQ(tcam.l3l4_in_use(1), 0);
  // The pool is genuinely free again.
  EXPECT_EQ(tcam.allocate(2, L3L4Rule(3)), TcamFailure::kNone);
}

TEST(TcamTest, FullReleaseForgetsThePort) {
  Tcam tcam(TcamLimits{});
  EXPECT_EQ(tcam.allocate(1, L3L4Rule(3)), TcamFailure::kNone);
  EXPECT_EQ(tcam.ports_tracked(), 1u);
  EXPECT_TRUE(tcam.release(1, L3L4Rule(3)));
  EXPECT_EQ(tcam.ports_tracked(), 0u);
}

TEST(TcamTest, PerPortAccounting) {
  Tcam tcam(TcamLimits{});
  tcam.allocate(7, L3L4Rule(2));
  tcam.allocate(8, L3L4Rule(3));
  EXPECT_EQ(tcam.l3l4_in_use(7), 2);
  EXPECT_EQ(tcam.l3l4_in_use(8), 3);
  EXPECT_EQ(tcam.l3l4_in_use(9), 0);
  EXPECT_EQ(tcam.l3l4_in_use(), 5);
}

}  // namespace
}  // namespace stellar::filter
