#include "net/ip.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace stellar::net {
namespace {

TEST(IPv4AddressTest, ParseAndFormatRoundTrip) {
  const auto a = IPv4Address::Parse("192.168.1.200");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->str(), "192.168.1.200");
  EXPECT_EQ(a->value(), 0xc0a801c8u);
}

TEST(IPv4AddressTest, OctetConstructor) {
  EXPECT_EQ(IPv4Address(10, 0, 0, 1).str(), "10.0.0.1");
  EXPECT_EQ(IPv4Address(255, 255, 255, 255).value(), 0xffffffffu);
}

TEST(IPv4AddressTest, RejectsMalformed) {
  for (const char* bad : {"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", "1..2.3",
                          "1.2.3.4 ", "1.2.3.-4"}) {
    EXPECT_FALSE(IPv4Address::Parse(bad).ok()) << bad;
  }
}

TEST(IPv4AddressTest, Ordering) {
  EXPECT_LT(IPv4Address(1, 0, 0, 0), IPv4Address(2, 0, 0, 0));
  EXPECT_EQ(IPv4Address(1, 2, 3, 4), IPv4Address::Parse("1.2.3.4").value());
}

TEST(Prefix4Test, ParseWithAndWithoutLength) {
  const auto p = Prefix4::Parse("10.20.0.0/16");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->str(), "10.20.0.0/16");
  const auto host = Prefix4::Parse("10.20.30.40");
  ASSERT_TRUE(host.ok());
  EXPECT_EQ(host->length(), 32);
}

TEST(Prefix4Test, CanonicalizesHostBits) {
  const auto p = Prefix4::Parse("10.20.30.40/16");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->str(), "10.20.0.0/16");
}

TEST(Prefix4Test, RejectsBadLength) {
  EXPECT_FALSE(Prefix4::Parse("10.0.0.0/33").ok());
  EXPECT_FALSE(Prefix4::Parse("10.0.0.0/").ok());
  EXPECT_FALSE(Prefix4::Parse("10.0.0.0/1x").ok());
}

TEST(Prefix4Test, ContainsAddress) {
  const auto p = Prefix4::Parse("100.10.10.0/24").value();
  EXPECT_TRUE(p.contains(IPv4Address(100, 10, 10, 10)));
  EXPECT_FALSE(p.contains(IPv4Address(100, 10, 11, 10)));
}

TEST(Prefix4Test, ContainsPrefix) {
  const auto p24 = Prefix4::Parse("100.10.10.0/24").value();
  const auto p32 = Prefix4::Parse("100.10.10.10/32").value();
  const auto p16 = Prefix4::Parse("100.10.0.0/16").value();
  EXPECT_TRUE(p24.contains(p32));
  EXPECT_FALSE(p32.contains(p24));
  EXPECT_TRUE(p16.contains(p24));
  EXPECT_TRUE(p24.contains(p24));
}

TEST(Prefix4Test, ZeroLengthContainsEverything) {
  const auto def = Prefix4::Parse("0.0.0.0/0").value();
  EXPECT_TRUE(def.contains(IPv4Address(255, 1, 2, 3)));
  EXPECT_EQ(def.mask(), 0u);
}

TEST(Prefix4Test, HostRoute) {
  const auto h = Prefix4::HostRoute(IPv4Address(1, 2, 3, 4));
  EXPECT_EQ(h.str(), "1.2.3.4/32");
  EXPECT_TRUE(h.contains(IPv4Address(1, 2, 3, 4)));
}

TEST(IPv6AddressTest, ParseFullForm) {
  const auto a = IPv6Address::Parse("2001:0db8:0000:0000:0000:0000:0000:0001");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->str(), "2001:db8::1");
}

TEST(IPv6AddressTest, ParseCompressedForms) {
  EXPECT_EQ(IPv6Address::Parse("::").value().str(), "::");
  EXPECT_EQ(IPv6Address::Parse("::1").value().str(), "::1");
  EXPECT_EQ(IPv6Address::Parse("fe80::").value().str(), "fe80::");
  EXPECT_EQ(IPv6Address::Parse("2001:db8::8:800:200c:417a").value().str(),
            "2001:db8::8:800:200c:417a");
}

TEST(IPv6AddressTest, EmbeddedIPv4) {
  const auto a = IPv6Address::Parse("::ffff:192.0.2.1");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->hextet(5), 0xffff);
  EXPECT_EQ(a->hextet(6), 0xc000);
  EXPECT_EQ(a->hextet(7), 0x0201);
}

TEST(IPv6AddressTest, RejectsMalformed) {
  for (const char* bad : {"", ":::", "1::2::3", "12345::", "g::1",
                          "1:2:3:4:5:6:7:8:9", "1:2:3:4:5:6:7"}) {
    EXPECT_FALSE(IPv6Address::Parse(bad).ok()) << bad;
  }
}

TEST(IPv6AddressTest, Rfc5952CompressesLongestRun) {
  // Two zero runs: the longer one is compressed.
  const auto a = IPv6Address::Parse("2001:0:0:1:0:0:0:1");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->str(), "2001:0:0:1::1");
}

TEST(Prefix6Test, ParseContainsFormat) {
  const auto p = Prefix6::Parse("2001:db8::/32").value();
  EXPECT_EQ(p.str(), "2001:db8::/32");
  EXPECT_TRUE(p.contains(IPv6Address::Parse("2001:db8:1::1").value()));
  EXPECT_FALSE(p.contains(IPv6Address::Parse("2001:db9::1").value()));
  EXPECT_TRUE(p.contains(Prefix6::Parse("2001:db8:ff::/48").value()));
}

TEST(Prefix6Test, CanonicalizesHostBits) {
  const auto p = Prefix6::Parse("2001:db8::ff/32").value();
  EXPECT_EQ(p.str(), "2001:db8::/32");
}

TEST(Prefix6Test, RejectsBadLength) { EXPECT_FALSE(Prefix6::Parse("::/129").ok()); }

// Property: parse(str(x)) == x for random addresses and prefixes.
class IpRoundTripTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IpRoundTripTest, IPv4RoundTrip) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const IPv4Address a(static_cast<std::uint32_t>(rng.uniform_int(0, 0xffffffffll)));
    const auto parsed = IPv4Address::Parse(a.str());
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, a);
  }
}

TEST_P(IpRoundTripTest, Prefix4RoundTrip) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const Prefix4 p(IPv4Address(static_cast<std::uint32_t>(rng.uniform_int(0, 0xffffffffll))),
                    static_cast<std::uint8_t>(rng.uniform_int(0, 32)));
    const auto parsed = Prefix4::Parse(p.str());
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, p);
  }
}

TEST_P(IpRoundTripTest, IPv6RoundTrip) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    IPv6Address::Bytes b{};
    for (auto& byte : b) {
      // Bias towards zeros so "::" compression paths get exercised.
      byte = rng.chance(0.5) ? 0 : static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    const IPv6Address a(b);
    const auto parsed = IPv6Address::Parse(a.str());
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, a) << a.str();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IpRoundTripTest, ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace stellar::net
