#include "net/aggregate.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace stellar::net {
namespace {

Prefix4 P4(const char* text) { return Prefix4::Parse(text).value(); }

TEST(AggregateTest, EmptyAndSingle) {
  EXPECT_TRUE(AggregatePrefixes({}).empty());
  EXPECT_EQ(AggregatePrefixes({P4("10.0.0.0/24")}), (std::vector<Prefix4>{P4("10.0.0.0/24")}));
}

TEST(AggregateTest, Deduplicates) {
  EXPECT_EQ(AggregatePrefixes({P4("10.0.0.0/24"), P4("10.0.0.0/24")}),
            (std::vector<Prefix4>{P4("10.0.0.0/24")}));
}

TEST(AggregateTest, RemovesContained) {
  EXPECT_EQ(AggregatePrefixes({P4("10.0.0.0/16"), P4("10.0.1.0/24"), P4("10.0.2.128/25")}),
            (std::vector<Prefix4>{P4("10.0.0.0/16")}));
  // Order independence.
  EXPECT_EQ(AggregatePrefixes({P4("10.0.1.0/24"), P4("10.0.0.0/16")}),
            (std::vector<Prefix4>{P4("10.0.0.0/16")}));
}

TEST(AggregateTest, MergesSiblings) {
  EXPECT_EQ(AggregatePrefixes({P4("10.0.0.0/24"), P4("10.0.1.0/24")}),
            (std::vector<Prefix4>{P4("10.0.0.0/23")}));
}

TEST(AggregateTest, DoesNotMergeNonSiblings) {
  // 10.0.1.0/24 and 10.0.2.0/24 are adjacent but not aligned siblings.
  const auto out = AggregatePrefixes({P4("10.0.1.0/24"), P4("10.0.2.0/24")});
  EXPECT_EQ(out, (std::vector<Prefix4>{P4("10.0.1.0/24"), P4("10.0.2.0/24")}));
}

TEST(AggregateTest, CascadingMerge) {
  // Four /26 quarters collapse into one /24.
  EXPECT_EQ(AggregatePrefixes({P4("10.0.0.0/26"), P4("10.0.0.64/26"), P4("10.0.0.128/26"),
                               P4("10.0.0.192/26")}),
            (std::vector<Prefix4>{P4("10.0.0.0/24")}));
}

TEST(AggregateTest, MergeThenSwallow) {
  // The /25 pair merges to a /24 which then swallows the trailing /26...
  // ordering puts /24 first; either way coverage is exact.
  const auto out =
      AggregatePrefixes({P4("10.0.0.0/25"), P4("10.0.0.128/25"), P4("10.0.0.192/26")});
  EXPECT_EQ(out, (std::vector<Prefix4>{P4("10.0.0.0/24")}));
}

TEST(AggregateTest, SlashZeroSwallowsEverything) {
  EXPECT_EQ(AggregatePrefixes({P4("0.0.0.0/0"), P4("10.0.0.0/8"), P4("200.1.2.3/32")}),
            (std::vector<Prefix4>{P4("0.0.0.0/0")}));
}

TEST(AggregateTest, HostRoutePairMerges) {
  EXPECT_EQ(AggregatePrefixes({P4("10.0.0.0/32"), P4("10.0.0.1/32")}),
            (std::vector<Prefix4>{P4("10.0.0.0/31")}));
}

Prefix6 P6(const char* text) { return Prefix6::Parse(text).value(); }

TEST(Aggregate6Test, MergesSiblingsAndContainment) {
  EXPECT_EQ(AggregatePrefixes6({P6("2001:db8::/33"), P6("2001:db8:8000::/33")}),
            (std::vector<Prefix6>{P6("2001:db8::/32")}));
  EXPECT_EQ(AggregatePrefixes6({P6("2001:db8::/32"), P6("2001:db8:1::/48")}),
            (std::vector<Prefix6>{P6("2001:db8::/32")}));
  // Non-aligned neighbours stay separate.
  const auto out = AggregatePrefixes6({P6("2001:db8:1::/48"), P6("2001:db8:2::/48")});
  EXPECT_EQ(out.size(), 2u);
}

TEST(Aggregate6Test, HostRoutePairMerges) {
  EXPECT_EQ(AggregatePrefixes6({P6("2001:db8::/128"), P6("2001:db8::1/128")}),
            (std::vector<Prefix6>{P6("2001:db8::/127")}));
}

TEST(Aggregate6Test, CoverageProperty) {
  util::Rng rng(7);
  for (int iter = 0; iter < 30; ++iter) {
    std::vector<Prefix6> input;
    const int n = static_cast<int>(rng.uniform_int(1, 20));
    for (int i = 0; i < n; ++i) {
      net::IPv6Address::Bytes b{};
      b[0] = 0x20;
      b[1] = 0x01;
      b[5] = static_cast<std::uint8_t>(rng.uniform_int(0, 3));
      b[15] = static_cast<std::uint8_t>(rng.uniform_int(0, 7));
      input.emplace_back(IPv6Address(b),
                         static_cast<std::uint8_t>(rng.uniform_int(40, 128)));
    }
    const auto output = AggregatePrefixes6(input);
    EXPECT_LE(output.size(), input.size());
    for (const auto& p : input) EXPECT_TRUE(CoveredBy6(output, p.address()));
    for (int probe = 0; probe < 100; ++probe) {
      net::IPv6Address::Bytes b{};
      b[0] = 0x20;
      b[1] = 0x01;
      b[5] = static_cast<std::uint8_t>(rng.uniform_int(0, 3));
      b[15] = static_cast<std::uint8_t>(rng.uniform_int(0, 15));
      const IPv6Address addr(b);
      EXPECT_EQ(CoveredBy6(input, addr), CoveredBy6(output, addr)) << addr.str();
    }
    EXPECT_EQ(AggregatePrefixes6(output), output);
  }
}

// Property: aggregation preserves coverage exactly and never grows the set.
class AggregatePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AggregatePropertyTest, CoverageIsExactAndMinimalish) {
  util::Rng rng(GetParam());
  for (int iter = 0; iter < 60; ++iter) {
    std::vector<Prefix4> input;
    const int n = static_cast<int>(rng.uniform_int(1, 40));
    for (int i = 0; i < n; ++i) {
      // Cluster prefixes in a small space so merges actually happen.
      input.emplace_back(
          IPv4Address((10u << 24) | static_cast<std::uint32_t>(rng.uniform_int(0, 4095))),
          static_cast<std::uint8_t>(rng.uniform_int(20, 32)));
    }
    const auto output = AggregatePrefixes(input);
    EXPECT_LE(output.size(), input.size());

    // Exact same coverage, probed on structured + random addresses.
    for (int probe = 0; probe < 400; ++probe) {
      const IPv4Address addr(
          (10u << 24) | static_cast<std::uint32_t>(rng.uniform_int(0, 8191)));
      EXPECT_EQ(CoveredBy(input, addr), CoveredBy(output, addr)) << addr.str();
    }
    for (const auto& p : input) {
      EXPECT_TRUE(CoveredBy(output, p.address()));
    }
    // Output contains no redundancy: no prefix contained in another, no
    // unmerged sibling pairs.
    for (std::size_t i = 0; i < output.size(); ++i) {
      for (std::size_t j = 0; j < output.size(); ++j) {
        if (i == j) continue;
        EXPECT_FALSE(output[i].contains(output[j]));
      }
    }
    // Idempotence.
    EXPECT_EQ(AggregatePrefixes(output), output);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AggregatePropertyTest, ::testing::Values(41, 42, 43));

}  // namespace
}  // namespace stellar::net
