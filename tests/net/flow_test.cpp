#include "net/flow.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "net/ports.hpp"

namespace stellar::net {
namespace {

FlowKey SampleKey() {
  FlowKey k;
  k.src_mac = MacAddress::ForRouter(65001);
  k.src_ip = IPv4Address(1, 2, 3, 4);
  k.dst_ip = IPv4Address(100, 10, 10, 10);
  k.proto = IpProto::kUdp;
  k.src_port = 123;
  k.dst_port = 4444;
  return k;
}

TEST(FlowKeyTest, EqualityAndHash) {
  const FlowKey a = SampleKey();
  FlowKey b = SampleKey();
  EXPECT_EQ(a, b);
  EXPECT_EQ(std::hash<FlowKey>{}(a), std::hash<FlowKey>{}(b));
  b.src_port = 124;
  EXPECT_NE(a, b);
}

TEST(FlowKeyTest, UsableInUnorderedSet) {
  std::unordered_set<FlowKey> set;
  set.insert(SampleKey());
  set.insert(SampleKey());
  EXPECT_EQ(set.size(), 1u);
  FlowKey other = SampleKey();
  other.dst_port = 1;
  set.insert(other);
  EXPECT_EQ(set.size(), 2u);
}

TEST(FlowKeyTest, StrContainsEndpoints) {
  const std::string s = SampleKey().str();
  EXPECT_NE(s.find("udp"), std::string::npos);
  EXPECT_NE(s.find("1.2.3.4:123"), std::string::npos);
  EXPECT_NE(s.find("100.10.10.10:4444"), std::string::npos);
}

TEST(FlowSampleTest, MbpsConversion) {
  FlowSample s;
  s.bytes = 1'250'000;  // 10 Mbit.
  EXPECT_DOUBLE_EQ(s.mbps(1.0), 10.0);
  EXPECT_DOUBLE_EQ(s.mbps(10.0), 1.0);
}

TEST(ProtoTest, Names) {
  EXPECT_EQ(ToString(IpProto::kTcp), "tcp");
  EXPECT_EQ(ToString(IpProto::kUdp), "udp");
  EXPECT_EQ(ToString(IpProto::kIcmp), "icmp");
}

TEST(PortsTest, AmplificationCatalogMatchesPaperFig3a) {
  // Ports 0, 123, 389, 11211, 53, 19 — the dominant blackholed ports.
  std::vector<std::uint16_t> ports;
  for (const auto& svc : kAmplificationServices) ports.push_back(svc.udp_port);
  EXPECT_EQ(ports, (std::vector<std::uint16_t>{0, 123, 389, 11211, 53, 19}));
  for (const auto& svc : kAmplificationServices) {
    EXPECT_GT(svc.bandwidth_amplification_factor, 1.0) << svc.name;
  }
}

}  // namespace
}  // namespace stellar::net
