#include "net/mac.hpp"

#include <gtest/gtest.h>

namespace stellar::net {
namespace {

TEST(MacAddressTest, ParseAndFormatRoundTrip) {
  const auto m = MacAddress::Parse("02:ab:cd:EF:00:01");
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->str(), "02:ab:cd:ef:00:01");
}

TEST(MacAddressTest, DashSeparatorsAccepted) {
  const auto m = MacAddress::Parse("02-00-00-00-00-ff");
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->bytes()[5], 0xff);
}

TEST(MacAddressTest, RejectsMalformed) {
  for (const char* bad : {"", "02:00:00:00:00", "02:00:00:00:00:00:00", "0g:00:00:00:00:00",
                          "2:0:0:0:0:0", "02:00:00:00:00:001"}) {
    EXPECT_FALSE(MacAddress::Parse(bad).ok()) << bad;
  }
}

TEST(MacAddressTest, ForRouterIsLocallyAdministeredUnicast) {
  const auto m = MacAddress::ForRouter(65001, 3);
  EXPECT_EQ(m.bytes()[0] & 0x02, 0x02);  // Locally administered.
  EXPECT_EQ(m.bytes()[0] & 0x01, 0x00);  // Unicast.
  EXPECT_EQ(m.bytes()[5], 3);
}

TEST(MacAddressTest, ForRouterIsInjectiveOverAsn) {
  EXPECT_NE(MacAddress::ForRouter(65001), MacAddress::ForRouter(65002));
  EXPECT_NE(MacAddress::ForRouter(65001, 0), MacAddress::ForRouter(65001, 1));
  EXPECT_EQ(MacAddress::ForRouter(65001), MacAddress::ForRouter(65001));
}

TEST(MacAddressTest, AsU64Matches) {
  const auto m = MacAddress::Parse("01:02:03:04:05:06").value();
  EXPECT_EQ(m.as_u64(), 0x010203040506ULL);
}

TEST(MacAddressTest, HashUsableInUnorderedContainers) {
  const std::hash<MacAddress> h;
  EXPECT_EQ(h(MacAddress::ForRouter(1)), h(MacAddress::ForRouter(1)));
  EXPECT_NE(h(MacAddress::ForRouter(1)), h(MacAddress::ForRouter(2)));
}

}  // namespace
}  // namespace stellar::net
