#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace stellar::obs {
namespace {

// Every test uses a local Registry: the global one is shared with production
// components across the whole test binary.

TEST(MetricsRegistry, CounterIncrementsAndReads) {
  Registry reg;
  Counter c = reg.counter("test.counter");
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  EXPECT_EQ(reg.counter_total("test.counter"), 42u);
}

TEST(MetricsRegistry, DisarmedRegistryDropsWrites) {
  Registry reg(/*armed=*/false);
  Counter c = reg.counter("test.counter");
  Gauge g = reg.gauge("test.gauge");
  Histogram h = reg.histogram("test.hist");
  c.inc(10);
  g.set(3.5);
  h.observe(1.0);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  // Re-arming resumes recording on the same handles.
  reg.arm();
  c.inc(10);
  EXPECT_EQ(c.value(), 10u);
}

TEST(MetricsRegistry, SameNameSameKindCreatesIndependentInstanceCells) {
  Registry reg;
  Counter a = reg.counter("comp.errors");
  Counter b = reg.counter("comp.errors");
  a.inc(3);
  b.inc(4);
  EXPECT_EQ(a.value(), 3u);
  EXPECT_EQ(b.value(), 4u);
  EXPECT_EQ(reg.counter_total("comp.errors"), 7u);
  EXPECT_EQ(reg.family_count(), 1u);
}

TEST(MetricsRegistry, DuplicateNameWithConflictingKindThrows) {
  Registry reg;
  (void)reg.counter("dup.name");
  EXPECT_THROW((void)reg.gauge("dup.name"), std::logic_error);
  EXPECT_THROW((void)reg.histogram("dup.name"), std::logic_error);
}

TEST(MetricsRegistry, HistogramOptionMismatchThrows) {
  Registry reg;
  (void)reg.histogram("h.lat", HistogramOptions{1e-3, 2.0, 10});
  EXPECT_NO_THROW((void)reg.histogram("h.lat", HistogramOptions{1e-3, 2.0, 10}));
  EXPECT_THROW((void)reg.histogram("h.lat", HistogramOptions{1e-3, 4.0, 10}),
               std::logic_error);
}

TEST(MetricsRegistry, InvalidNamesRejected) {
  Registry reg;
  EXPECT_THROW((void)reg.counter(""), std::invalid_argument);
  EXPECT_THROW((void)reg.counter("has space"), std::invalid_argument);
  EXPECT_THROW((void)reg.counter("has-dash"), std::invalid_argument);
}

TEST(MetricsRegistry, GaugeSetAndAdd) {
  Registry reg;
  Gauge g = reg.gauge("queue.depth");
  g.set(5.0);
  g.add(-2.0);
  EXPECT_EQ(g.value(), 3.0);
}

TEST(MetricsRegistry, ExpositionTextFormat) {
  Registry reg;
  Counter c = reg.counter("core.manager.applied", "changes applied");
  c.inc(7);
  Histogram h = reg.histogram("core.manager.wait_seconds", HistogramOptions{1e-3, 2.0, 4});
  h.observe(0.0005);
  h.observe(0.003);
  const std::string text = reg.expose_text();
  EXPECT_NE(text.find("# HELP core_manager_applied changes applied"), std::string::npos);
  EXPECT_NE(text.find("# TYPE core_manager_applied counter"), std::string::npos);
  EXPECT_NE(text.find("core_manager_applied 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE core_manager_wait_seconds histogram"), std::string::npos);
  EXPECT_NE(text.find("core_manager_wait_seconds_bucket{le=\"0.001\"} 1"), std::string::npos);
  EXPECT_NE(text.find("core_manager_wait_seconds_bucket{le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(text.find("core_manager_wait_seconds_count 2"), std::string::npos);
}

TEST(MetricsRegistry, JsonlSnapshotHasOneLinePerFamily) {
  Registry reg;
  reg.counter("a.one").inc(1);
  reg.gauge("b.two").set(2.5);
  Histogram h = reg.histogram("c.three");
  h.observe(0.01);
  const std::string jsonl = reg.snapshot_jsonl();
  EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 3);
  EXPECT_NE(jsonl.find("{\"name\":\"a.one\",\"type\":\"counter\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"value\":1"), std::string::npos);
  EXPECT_NE(jsonl.find("{\"name\":\"b.two\",\"type\":\"gauge\""), std::string::npos);
  EXPECT_NE(jsonl.find("{\"name\":\"c.three\",\"type\":\"histogram\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"p50\":"), std::string::npos);
}

TEST(MetricsRegistry, ResetValuesKeepsHandlesValid) {
  Registry reg;
  Counter c = reg.counter("x.count");
  Histogram h = reg.histogram("x.hist");
  c.inc(9);
  h.observe(1.0);
  reg.reset_values();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  c.inc();
  EXPECT_EQ(c.value(), 1u);
}

// ---------------------------------------------------------------------------
// Histogram correctness (satellite: boundaries, percentile accuracy vs util
// exact percentiles, merge, overflow).

TEST(HistogramData, BucketBoundaryValuesLandInLowerBucket) {
  // Bounds: 1, 2, 4, 8 (+ overflow). The bucket invariant is v <= bound.
  HistogramData h(HistogramOptions{1.0, 2.0, 4});
  h.observe(1.0);    // exactly the first bound -> bucket 0
  h.observe(2.0);    // exactly the second bound -> bucket 1
  h.observe(2.001);  // just above a bound -> next bucket
  h.observe(8.0);    // last finite bound -> bucket 3
  h.observe(8.001);  // just above -> overflow
  h.observe(0.5);    // below min_bound -> bucket 0
  const auto& counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 5u);
  EXPECT_EQ(counts[0], 2u);  // 1.0 and 0.5
  EXPECT_EQ(counts[1], 1u);  // 2.0
  EXPECT_EQ(counts[2], 1u);  // 2.001
  EXPECT_EQ(counts[3], 1u);  // 8.0
  EXPECT_EQ(counts[4], 1u);  // 8.001 (overflow)
  EXPECT_EQ(h.count(), 6u);
}

TEST(HistogramData, PercentilesTrackExactWithinBucketResolution) {
  // 10k random samples spanning ~4 decades; fine growth so the bucket
  // quantization error is a small relative bound.
  const double growth = 1.05;
  HistogramData h(HistogramOptions{1e-4, growth, 250});
  util::Rng rng(42);
  std::vector<double> samples;
  samples.reserve(10'000);
  for (int i = 0; i < 10'000; ++i) {
    // Log-uniform over [1e-3, 10): stresses many buckets.
    const double v = 1e-3 * std::pow(10.0, 4.0 * rng.uniform());
    samples.push_back(v);
    h.observe(v);
  }
  std::sort(samples.begin(), samples.end());
  for (const double pct : {50.0, 90.0, 99.0, 99.9}) {
    const double exact = util::Percentile(samples, pct);
    const double approx = h.percentile(pct);
    // One bucket of relative error (plus interpolation slack) is the design
    // bound for a log-bucketed histogram.
    EXPECT_GT(approx, exact / (growth * growth)) << "pct=" << pct;
    EXPECT_LT(approx, exact * growth * growth) << "pct=" << pct;
  }
}

TEST(HistogramData, SingleValueReportsExactPercentiles) {
  HistogramData h;
  h.observe(0.125);
  EXPECT_DOUBLE_EQ(h.percentile(0), 0.125);
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.125);
  EXPECT_DOUBLE_EQ(h.percentile(100), 0.125);
}

TEST(HistogramData, MergeCombinesCountsSumAndExtrema) {
  const HistogramOptions opts{1e-3, 1.5, 40};
  HistogramData a(opts);
  HistogramData b(opts);
  for (int i = 1; i <= 100; ++i) a.observe(0.001 * i);  // 0.001 .. 0.1
  for (int i = 1; i <= 100; ++i) b.observe(0.01 * i);   // 0.01 .. 1.0
  const HistogramData merged = Histogram::Merge(a, b);
  EXPECT_EQ(merged.count(), 200u);
  EXPECT_DOUBLE_EQ(merged.sum(), a.sum() + b.sum());
  EXPECT_DOUBLE_EQ(merged.min(), 0.001);
  EXPECT_DOUBLE_EQ(merged.max(), 1.0);
  // Merged percentile must agree with the exact percentile of the union
  // within bucket resolution.
  std::vector<double> all;
  for (int i = 1; i <= 100; ++i) all.push_back(0.001 * i);
  for (int i = 1; i <= 100; ++i) all.push_back(0.01 * i);
  std::sort(all.begin(), all.end());
  const double exact = util::Percentile(all, 50.0);
  const double approx = merged.percentile(50.0);
  EXPECT_GT(approx, exact / (1.5 * 1.5));
  EXPECT_LT(approx, exact * 1.5 * 1.5);
}

TEST(HistogramData, MergeMismatchedLayoutsThrows) {
  HistogramData a(HistogramOptions{1e-3, 2.0, 10});
  HistogramData b(HistogramOptions{1e-3, 2.0, 20});
  EXPECT_THROW(a.merge(b), std::logic_error);
}

TEST(HistogramData, OverflowBucketBehavior) {
  // Bounds: 1, 2 (+ overflow). Everything above 2 overflows but count/sum/
  // max/percentile(100) stay exact.
  HistogramData h(HistogramOptions{1.0, 2.0, 2});
  h.observe(100.0);
  h.observe(1000.0);
  h.observe(0.5);
  const auto& counts = h.bucket_counts();
  EXPECT_EQ(counts.back(), 2u);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 1000.0);
  // Percentiles inside the overflow bucket interpolate up to the observed
  // max, never beyond it.
  EXPECT_LE(h.percentile(99), 1000.0);
  EXPECT_GE(h.percentile(60), 2.0);
}

TEST(HistogramData, EmptyHistogramPercentileIsZero) {
  HistogramData h;
  EXPECT_EQ(h.percentile(50), 0.0);
  EXPECT_EQ(h.count(), 0u);
}

}  // namespace
}  // namespace stellar::obs
