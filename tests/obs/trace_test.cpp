#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

namespace stellar::obs {
namespace {

// Local Tracer instances: the global one is shared with production code
// across the whole test binary.

TEST(Tracer, BreakdownDeltasTelescopeToEndToEnd) {
  Tracer tr;
  tr.mark("10.0.0.1/32", "member_announce", 1.0);
  tr.mark("10.0.0.1/32", "controller_rx", 2.0);
  tr.mark("10.0.0.1/32", "config_applied", 4.0);
  const auto stages = tr.breakdown("10.0.0.1/32");
  ASSERT_EQ(stages.size(), 3u);
  EXPECT_EQ(stages[0].stage, "member_announce");
  EXPECT_DOUBLE_EQ(stages[0].at_s, 1.0);
  EXPECT_DOUBLE_EQ(stages[0].delta_s, 0.0);
  EXPECT_EQ(stages[1].stage, "controller_rx");
  EXPECT_DOUBLE_EQ(stages[1].delta_s, 1.0);
  EXPECT_EQ(stages[2].stage, "config_applied");
  EXPECT_DOUBLE_EQ(stages[2].delta_s, 2.0);
  double sum = 0.0;
  for (const auto& s : stages) sum += s.delta_s;
  EXPECT_DOUBLE_EQ(sum, stages.back().at_s - stages.front().at_s);
}

TEST(Tracer, BreakdownKeepsFirstOccurrenceOfRepeatedStage) {
  // Route replays re-stamp stages; the breakdown must describe the first
  // episode, not the replay.
  Tracer tr;
  tr.mark("p", "controller_rx", 1.0);
  tr.mark("p", "config_applied", 2.0);
  tr.mark("p", "controller_rx", 10.0);
  const auto stages = tr.breakdown("p");
  ASSERT_EQ(stages.size(), 2u);
  EXPECT_EQ(stages[0].stage, "controller_rx");
  EXPECT_DOUBLE_EQ(stages[0].at_s, 1.0);
  EXPECT_EQ(stages[1].stage, "config_applied");
}

TEST(Tracer, SameTickStagesKeepCausalInsertionOrder) {
  // Zero-latency hops are common in the sim (same event-queue tick); order
  // of recording must break the time tie.
  Tracer tr;
  tr.mark("p", "controller_rx", 5.0);
  tr.mark("p", "controller_decode", 5.0);
  tr.mark("p", "config_enqueued", 5.0);
  const auto stages = tr.breakdown("p");
  ASSERT_EQ(stages.size(), 3u);
  EXPECT_EQ(stages[0].stage, "controller_rx");
  EXPECT_EQ(stages[1].stage, "controller_decode");
  EXPECT_EQ(stages[2].stage, "config_enqueued");
  EXPECT_DOUBLE_EQ(stages[1].delta_s, 0.0);
  EXPECT_DOUBLE_EQ(stages[2].delta_s, 0.0);
}

TEST(Tracer, SpanBeginEndRecordsDuration) {
  Tracer tr;
  Span span = tr.begin_span("p", "compile", 1.0);
  EXPECT_TRUE(span.active());
  span.end(1.5);
  const auto events = tr.events("p");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].stage, "compile");
  EXPECT_DOUBLE_EQ(events[0].start_s, 1.0);
  EXPECT_DOUBLE_EQ(events[0].end_s, 1.5);
}

TEST(Tracer, FifoEvictionBeyondMaxTraces) {
  Tracer tr(Tracer::Options{.max_traces = 2, .max_events_per_trace = 64});
  tr.mark("first", "s", 1.0);
  tr.mark("second", "s", 2.0);
  tr.mark("third", "s", 3.0);
  EXPECT_EQ(tr.trace_count(), 2u);
  EXPECT_TRUE(tr.breakdown("first").empty());
  EXPECT_EQ(tr.breakdown("second").size(), 1u);
  EXPECT_EQ(tr.breakdown("third").size(), 1u);
}

TEST(Tracer, PerTraceEventCapCountsDrops) {
  Tracer tr(Tracer::Options{.max_traces = 16, .max_events_per_trace = 3});
  for (int i = 0; i < 5; ++i) tr.mark("p", "stage" + std::to_string(i), i);
  EXPECT_EQ(tr.events("p").size(), 3u);
  EXPECT_EQ(tr.dropped_events(), 2u);
}

TEST(Tracer, EndSpanAfterEvictionIsInert) {
  Tracer tr(Tracer::Options{.max_traces = 1, .max_events_per_trace = 64});
  Span span = tr.begin_span("old", "work", 1.0);
  tr.mark("new", "s", 2.0);  // Evicts "old".
  span.end(3.0);             // Must not crash or resurrect the trace.
  EXPECT_TRUE(tr.breakdown("old").empty());
}

TEST(Tracer, CsvFormat) {
  Tracer tr;
  tr.mark("10.0.0.1/32", "member_announce", 1.25);
  const std::string csv = tr.csv();
  EXPECT_NE(csv.find("trace,stage,start_s,end_s\n"), std::string::npos);
  EXPECT_NE(csv.find("10.0.0.1/32,member_announce,1.250000000,1.250000000"),
            std::string::npos);
}

TEST(Tracer, JsonlHasOneLinePerEvent) {
  Tracer tr;
  tr.mark("a", "s1", 1.0);
  tr.mark("a", "s2", 2.0);
  tr.mark("b", "s1", 3.0);
  const std::string jsonl = tr.jsonl();
  EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 3);
  EXPECT_NE(jsonl.find("\"trace\":\"a\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"stage\":\"s2\""), std::string::npos);
}

TEST(Tracer, DisabledTracerRecordsNothing) {
  Tracer tr;
  tr.set_enabled(false);
  tr.mark("p", "s", 1.0);
  Span span = tr.begin_span("p", "s2", 2.0);
  EXPECT_FALSE(span.active());
  EXPECT_EQ(tr.trace_count(), 0u);
  tr.set_enabled(true);
  tr.mark("p", "s", 1.0);
  EXPECT_EQ(tr.trace_count(), 1u);
}

TEST(Tracer, ClearDropsAllState) {
  Tracer tr;
  tr.mark("p", "s", 1.0);
  tr.clear();
  EXPECT_EQ(tr.trace_count(), 0u);
  EXPECT_EQ(tr.dropped_events(), 0u);
  EXPECT_TRUE(tr.csv().find("p,") == std::string::npos);
}

}  // namespace
}  // namespace stellar::obs
