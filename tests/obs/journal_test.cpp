#include "obs/journal.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

namespace stellar::obs {
namespace {

// Local Journal instances: the global one is shared with production code.

TEST(Journal, AppendAndCsvFormat) {
  Journal j;
  j.append(1.5, EventKind::kRuleInstalled, "qos.rule1", "install ok");
  j.append(2.0, EventKind::kSessionFlap, "asn65001");
  const std::string csv = j.csv();
  EXPECT_NE(csv.find("t_s,kind,subject,detail\n"), std::string::npos);
  EXPECT_NE(csv.find("1.500000,rule_installed,qos.rule1,install ok\n"), std::string::npos);
  EXPECT_NE(csv.find("2.000000,session_flap,asn65001,\n"), std::string::npos);
}

TEST(Journal, CsvEscapesCommasAndNewlines) {
  Journal j;
  j.append(0.0, EventKind::kRuleDeadLettered, "k,ey", "line1\nline2,x");
  const std::string csv = j.csv();
  EXPECT_NE(csv.find("k;ey"), std::string::npos);
  EXPECT_NE(csv.find("line1 line2;x"), std::string::npos);
  // No raw commas beyond the three field separators per row.
  const auto row_start = csv.find("0.000000");
  ASSERT_NE(row_start, std::string::npos);
  const auto row_end = csv.find('\n', row_start);
  const std::string row = csv.substr(row_start, row_end - row_start);
  EXPECT_EQ(std::count(row.begin(), row.end(), ','), 3);
}

TEST(Journal, JsonlOneLinePerEvent) {
  Journal j;
  j.append(1.0, EventKind::kFaultDrop, "link#0", "side=a bytes=19");
  j.append(2.0, EventKind::kDetectorTriggered, "100.10.10.10", "rules=3");
  const std::string jsonl = j.jsonl();
  EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 2);
  EXPECT_NE(jsonl.find("\"kind\":\"fault_drop\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"subject\":\"100.10.10.10\""), std::string::npos);
}

TEST(Journal, ToStringCoversEveryKind) {
  // snake_case, unique, non-empty for every enumerator.
  const EventKind kinds[] = {
      EventKind::kSessionFlap,        EventKind::kSessionReconnect,
      EventKind::kSessionSuppressed,  EventKind::kDialTimeout,
      EventKind::kSessionGiveUp,      EventKind::kFaultDrop,
      EventKind::kFaultCorrupt,       EventKind::kFaultDelay,
      EventKind::kFaultPartitionDrop, EventKind::kFaultKill,
      EventKind::kRuleInstalled,      EventKind::kRuleRemoved,
      EventKind::kRuleRetry,          EventKind::kRuleDeadLettered,
      EventKind::kFailsafeFlush,      EventKind::kReconciliation,
      EventKind::kDetectorTriggered,  EventKind::kDetectorCleared,
      EventKind::kMitigationEscalated, EventKind::kMitigationWithdrawn,
  };
  std::vector<std::string> names;
  for (const EventKind kind : kinds) {
    const std::string name(ToString(kind));
    EXPECT_FALSE(name.empty());
    for (const char c : name) {
      EXPECT_TRUE((c >= 'a' && c <= 'z') || c == '_') << name;
    }
    names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::adjacent_find(names.begin(), names.end()), names.end())
      << "duplicate kind name";
}

TEST(Journal, CountByKind) {
  Journal j;
  j.append(1.0, EventKind::kRuleRetry, "k");
  j.append(2.0, EventKind::kRuleRetry, "k");
  j.append(3.0, EventKind::kRuleDeadLettered, "k");
  EXPECT_EQ(j.count(EventKind::kRuleRetry), 2u);
  EXPECT_EQ(j.count(EventKind::kRuleDeadLettered), 1u);
  EXPECT_EQ(j.count(EventKind::kSessionFlap), 0u);
}

TEST(Journal, CapacityBoundEvictsOldest) {
  Journal j(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    j.append(i, EventKind::kFaultDrop, "link#" + std::to_string(i));
  }
  EXPECT_EQ(j.events().size(), 4u);
  EXPECT_EQ(j.events().total(), 10u);
  EXPECT_EQ(j.events().evicted(), 6u);
  // Oldest retained event is #6.
  EXPECT_EQ(j.events().front().subject, "link#6");
  EXPECT_EQ(j.events().back().subject, "link#9");
}

TEST(Journal, DisabledJournalDropsAppends) {
  Journal j;
  j.set_enabled(false);
  j.append(1.0, EventKind::kRuleInstalled, "k");
  EXPECT_TRUE(j.events().empty());
  j.set_enabled(true);
  j.append(2.0, EventKind::kRuleInstalled, "k");
  EXPECT_EQ(j.events().size(), 1u);
}

TEST(Journal, ClearEmptiesRetainedEvents) {
  Journal j;
  j.append(1.0, EventKind::kRuleInstalled, "k");
  j.clear();
  EXPECT_TRUE(j.events().empty());
  EXPECT_EQ(j.count(EventKind::kRuleInstalled), 0u);
}

}  // namespace
}  // namespace stellar::obs
