// Fig. 2(c): "Collateral damage of RTBH."
//
// Replays the 2018-04-29 memcached amplification incident: an IXP member
// hosts a web service (ports 443/80/8080/1935); at 20:21 CET a memcached
// (udp/11211) amplification attack ramps to ~40 Gbps. The figure shows the
// *normalized traffic share* towards the member per minute, 20:00-21:00.
//
// Paper's shape: before the attack HTTPS dominates (~55%), then port 11211
// jumps to ~95% of the mix within a minute. With RTBH the member can only
// drop *everything* — including the residual web traffic — while a
// port-11211 filter would have removed the attack with zero collateral
// (quantified at the end).
#include <map>

#include "bench_common.hpp"

int main() {
  using namespace stellar;
  using namespace stellar::bench;

  PrintHeader("Fig 2(c) — traffic share by port before/during a memcached attack",
              "CoNEXT'18 Stellar paper, Section 2.3, Figure 2(c)");

  sim::EventQueue queue;
  ixp::LargeIxpParams params;
  params.member_count = 120;
  params.seed = 20180429;
  auto ixp = ixp::MakeLargeIxp(queue, params);
  ixp::MemberSpec spec;
  spec.asn = kVictimAsn;
  spec.port_capacity_mbps = 100'000.0;
  spec.address_space = P4("100.10.10.0/24");
  ixp->add_member(spec);
  ixp->settle(60.0);
  const net::IPv4Address target(100, 10, 10, 10);
  auto sources = ixp->source_members(kVictimAsn);

  // Timeline: t=0 is 20:00; the attack starts at 20:21 (t=1260 s).
  traffic::WebTrafficGenerator::Config web_config;
  web_config.target = target;
  web_config.rate_mbps = 900.0;
  traffic::WebTrafficGenerator web(web_config, sources, 1);

  traffic::AmplificationAttackGenerator::Config attack_config;
  attack_config.target = target;
  attack_config.service = net::kAmplificationServices[3];  // memcached, udp/11211.
  attack_config.peak_mbps = 40'000.0;                      // Paper: up to 40 Gbps.
  attack_config.start_s = 21.0 * 60.0;
  attack_config.end_s = 3600.0 * 4;  // "lasted for several hours".
  attack_config.ramp_s = 45.0;
  traffic::AmplificationAttackGenerator attack(attack_config, sources, 2);

  traffic::FlowCollector collector(60.0);  // Per-minute bins like the figure.
  for (double t = 0.0; t < 3600.0; t += 60.0) {
    queue.run_until(sim::Seconds(t));
    std::vector<net::FlowSample> offered = web.bin(t, 60.0);
    for (auto& s : attack.bin(t, 60.0)) offered.push_back(s);
    const auto report = ixp->deliver_bin(offered, 60.0);
    collector.ingest(report.delivered);
  }

  // Render the per-5-minute share table (the figure's stacked areas).
  const std::vector<std::uint16_t> kPorts{11211, 8080, 1935, 443, 80};
  std::vector<double> ts;
  std::map<std::uint16_t, std::vector<double>> series;
  std::vector<double> others;
  for (double t = 0.0; t < 3600.0; t += 300.0) {
    const auto shares = collector.service_port_shares(t, t + 300.0);
    ts.push_back(20.0 + t / 60.0);  // Minutes after 20:00 -> "hh.mm"-ish axis.
    double named = 0.0;
    for (std::uint16_t port : kPorts) {
      const auto it = shares.find(port);
      const double v = it == shares.end() ? 0.0 : it->second * 100.0;
      series[port].push_back(v);
      named += v;
    }
    others.push_back(std::max(0.0, 100.0 - named));
  }
  std::vector<std::pair<std::string, std::vector<double>>> table_series;
  for (std::uint16_t port : kPorts) {
    table_series.emplace_back(std::to_string(port) + " [%]", series[port]);
  }
  table_series.emplace_back("others [%]", others);
  std::printf("%s\n", util::SeriesTable("t [min after 20:00]", ts, table_series, 1).c_str());

  // Quantify the collateral-damage argument.
  const double attack_start = attack_config.start_s;
  const auto before = collector.service_port_shares(0.0, attack_start);
  const auto during = collector.service_port_shares(attack_start + 120.0, 3600.0);
  auto share = [](const std::map<std::uint16_t, double>& m, std::uint16_t p) {
    const auto it = m.find(p);
    return it == m.end() ? 0.0 : it->second * 100.0;
  };
  std::printf("summary:\n");
  std::printf("  443 share before/during    : %.1f %% -> %.1f %% (paper: ~55%% -> ~2%%)\n",
              share(before, 443), share(during, 443));
  std::printf("  11211 share before/during  : %.1f %% -> %.1f %% (paper: 0%% -> ~95%%)\n",
              share(before, 11211), share(during, 11211));
  std::printf(
      "  RTBH drops 100.0 %% of the member's traffic (web included);\n"
      "  an udp/11211 filter would drop %.1f %% — the attack — with 0 %% collateral.\n",
      share(during, 11211));
  std::printf("shape check: 11211 dominates during the attack: %s\n",
              share(during, 11211) > 80.0 ? "YES (matches paper)" : "NO");
  return 0;
}
