// Fig. 10(c): "Active DDoS attack to assess Advanced Blackholing
// effectiveness."
//
// Same booter experiment as Fig. 3(c), mitigated with Stellar instead of
// RTBH (§5.3): the attack starts at t=100 s (~1 Gbps NTP reflection from
// ~60 peers); 200 s into the attack the victim signals IXP:2:123 with a
// 200 Mbps shaping action (telemetry); 200 s later it escalates to drop.
//
// Paper's shape: traffic drops to exactly the 200 Mbps shaping rate (peer
// count unchanged), then to ~0 with the drop rule (peers collapse).
#include "bench_common.hpp"

int main() {
  using namespace stellar;
  using namespace stellar::bench;

  PrintHeader("Fig 10(c) — active DDoS attack, mitigation via Stellar",
              "CoNEXT'18 Stellar paper, Section 5.3, Figure 10(c)");

  BooterExperiment::Params params;
  BooterExperiment exp(params);
  core::StellarSystem stellar_system(*exp.ixp);
  exp.ixp->settle(10.0);

  const double kBin = 20.0;
  const double kShapeAt = params.attack_start_s + 200.0;  // Paper: 200 s into attack.
  const double kDropAt = kShapeAt + 200.0;                // Paper: 200 s later.
  bool shaped = false;
  bool dropped = false;

  std::vector<double> ts;
  std::vector<double> attack_mbps;
  std::vector<double> shaped_away;
  std::vector<double> peers;
  double peak_attack = 0.0;
  std::size_t peak_peers = 0;
  double shaping_mean = 0.0;
  int shaping_n = 0;
  std::size_t shaping_peers = 0;
  double drop_mean = 0.0;
  int drop_n = 0;
  std::size_t drop_peers = 0;

  core::Signal ntp;
  ntp.rules.push_back({core::RuleKind::kUdpSrcPort, net::kPortNtp});

  for (double t = 0.0; t <= 880.0; t += kBin) {
    if (!shaped && t >= kShapeAt) {
      core::Signal shape = ntp;
      shape.shape_rate_mbps = 200.0;  // Paper: 200 Mbps telemetry rate.
      core::SignalAdvancedBlackholing(*exp.victim, exp.ixp->route_server(),
                                      net::Prefix4::HostRoute(exp.target), shape);
      shaped = true;
    }
    if (!dropped && t >= kDropAt) {
      core::SignalAdvancedBlackholing(*exp.victim, exp.ixp->route_server(),
                                      net::Prefix4::HostRoute(exp.target), ntp);
      dropped = true;
    }
    const auto bin = exp.run_bin(t, kBin);
    ts.push_back(t);
    attack_mbps.push_back(bin.attack_mbps);
    shaped_away.push_back(bin.shaped_mbps);
    peers.push_back(static_cast<double>(bin.peers));
    if (t < kShapeAt) {
      peak_attack = std::max(peak_attack, bin.attack_mbps);
      peak_peers = std::max(peak_peers, bin.peers);
    } else if (t >= kShapeAt + 40.0 && t < kDropAt) {
      shaping_mean += bin.attack_mbps;
      ++shaping_n;
      shaping_peers = bin.peers;
    } else if (t >= kDropAt + 40.0 && t < params.attack_end_s) {
      drop_mean += bin.attack_mbps;
      ++drop_n;
      drop_peers = bin.peers;
    }
  }
  if (shaping_n > 0) shaping_mean /= shaping_n;
  if (drop_n > 0) drop_mean /= drop_n;

  std::printf("%s\n",
              util::SeriesTable("t[s]", ts,
                                {{"attack delivered [Mbps]", attack_mbps},
                                 {"shaped away [Mbps]", shaped_away},
                                 {"#peers", peers}},
                                0)
                  .c_str());

  const auto telemetry = stellar_system.telemetry(kVictimAsn);
  std::printf("summary:\n");
  std::printf("  peak attack delivered      : %.0f Mbps from %zu peers\n", peak_attack,
              peak_peers);
  std::printf("  shaping phase delivered    : %.0f Mbps (paper: 200, the shaping rate)\n",
              shaping_mean);
  std::printf("  shaping phase peers        : %zu (paper: unchanged vs %zu)\n", shaping_peers,
              peak_peers);
  std::printf("  drop phase delivered       : %.1f Mbps (paper: close to zero)\n", drop_mean);
  std::printf("  drop phase peers           : %zu (paper: collapses)\n", drop_peers);
  for (const auto& record : telemetry) {
    std::printf("  telemetry %-40s matched=%.0f MB dropped=%.0f MB passed=%.0f MB\n",
                record.rule.str().c_str(),
                static_cast<double>(record.counters.matched_bytes) / 1e6,
                static_cast<double>(record.counters.dropped_bytes) / 1e6,
                static_cast<double>(record.counters.delivered_bytes) / 1e6);
  }
  std::printf("shape check: shaping pins traffic to the rate, dropping zeroes it: %s\n",
              (std::abs(shaping_mean - 200.0) < 40.0 && drop_mean < 0.05 * peak_attack)
                  ? "YES (matches paper)"
                  : "NO");
  return 0;
}
