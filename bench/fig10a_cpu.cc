// Fig. 10(a): "Control plane CPU usage vs. L3 criteria update rate (linear
// regression, 95% confidence interval)."
//
// The ER's control plane runs a real-time OS with a hard 15% CPU budget for
// configuration tasks. We apply rule add/remove batches against the edge
// router in 5-second measurement intervals at increasing rates and record
// the control-plane CPU usage per interval.
//
// Paper's shape: CPU grows linearly with the update rate; at the 15% cap the
// ER sustains a median of 4.33 rule updates per second.
#include <cstdio>
#include <vector>

#include "filter/edge_router.hpp"
#include "net/ports.hpp"
#include "util/ascii.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

int main() {
  using namespace stellar;

  std::printf("==============================================================\n");
  std::printf("Fig 10(a) — control-plane CPU usage vs rule-update rate\n");
  std::printf("reproduces: CoNEXT'18 Stellar paper, Section 5.1, Figure 10(a)\n");
  std::printf("==============================================================\n");

  filter::EdgeRouter er("er1", filter::TcamLimits{});
  for (int p = 0; p < 350; ++p) er.add_port(static_cast<filter::PortId>(p), 10'000.0);

  util::Rng rng(10);
  constexpr double kInterval = 5.0;  // Paper: five-second intervals.
  std::vector<double> rates;
  std::vector<double> cpu;

  filter::FilterRule rule;
  rule.match.dst_prefix = net::Prefix4::Parse("100.10.10.10/32").value();
  rule.match.proto = net::IpProto::kUdp;
  rule.match.src_port = filter::PortRange::Single(net::kPortNtp);
  rule.action = filter::FilterAction::kDrop;

  for (double rate = 0.4; rate <= 5.6; rate += 0.2) {
    for (int repeat = 0; repeat < 12; ++repeat) {
      // Perform the updates for real (install+remove pairs) so the counter
      // is driven by actual config operations, then price them.
      const auto ops_before = er.config_ops();
      const int updates = static_cast<int>(rate * kInterval);
      for (int i = 0; i < updates / 2; ++i) {
        const auto id = er.install_rule(static_cast<filter::PortId>(i % 350), rule);
        if (id.ok()) er.remove_rule(static_cast<filter::PortId>(i % 350), *id);
      }
      const auto performed = static_cast<double>(er.config_ops() - ops_before);
      rates.push_back(performed / kInterval);
      cpu.push_back(er.cpu().measure_interval(performed, kInterval, rng));
    }
  }

  const auto fit = util::LinearRegression(rates, cpu);
  std::printf("samples: %zu measurement intervals of %.0f s\n", rates.size(), kInterval);
  std::printf("linear fit: cpu%% = %.3f + %.3f * rate   (R^2 = %.3f)\n", fit.intercept,
              fit.slope, fit.r_squared);
  std::printf("95%% CI: slope +/- %.3f, intercept +/- %.3f\n", fit.slope_ci95,
              fit.intercept_ci95);

  // The figure's regression line, tabulated.
  std::vector<double> xs;
  std::vector<double> fit_line;
  std::vector<double> lo;
  std::vector<double> hi;
  for (double r = 1.0; r <= 5.0; r += 0.5) {
    xs.push_back(r);
    fit_line.push_back(fit.predict(r));
    lo.push_back((fit.intercept - fit.intercept_ci95) + (fit.slope - fit.slope_ci95) * r);
    hi.push_back((fit.intercept + fit.intercept_ci95) + (fit.slope + fit.slope_ci95) * r);
  }
  std::printf("\n%s\n", util::SeriesTable("updates [1/s]", xs,
                                          {{"cpu fit [%]", fit_line},
                                           {"ci lo [%]", lo},
                                           {"ci hi [%]", hi}},
                                          2)
                            .c_str());

  const double sustainable = (15.0 - fit.intercept) / fit.slope;
  std::printf("hard CPU limit for configuration tasks: 15%%\n");
  std::printf("=> median sustainable update rate: %.2f updates/s (paper: 4.33)\n", sustainable);
  std::printf("shape check: linear, ~4.33 updates/s at the 15%% cap: %s\n",
              (fit.r_squared > 0.9 && std::abs(sustainable - 4.33) < 0.4)
                  ? "YES (matches paper)"
                  : "NO");
  return 0;
}
