// Ablation: ADD-PATH on the controller's iBGP session (paper §4.3).
//
// "The blackholing controller uses BGP's recently standardized ADD-PATH
// capability to bypass BGP best path selection at the route server. This is
// essential for a number of corner cases, e.g., to be able to honor the same
// prefix from different member ASes with diverging blackholing rules."
//
// Scenario: an anycast prefix is delegated to two members (both IRR-
// authorized). Both are attacked and signal *different* rules for the same
// /32 (one drops NTP, one drops DNS). With ADD-PATH the controller sees both
// paths and installs both members' rules; without it, the paths collide in
// its RIB and one member's protection is silently lost.
#include "bench_common.hpp"

namespace {

using namespace stellar;
using namespace stellar::bench;

std::size_t RunScenario(bool use_add_path, std::size_t* rules_installed_total) {
  sim::EventQueue queue;
  ixp::Ixp ixp(queue);
  ixp::MemberSpec a;
  a.asn = 65001;
  a.address_space = P4("100.10.10.0/24");
  auto& member_a = ixp.add_member(a);
  ixp::MemberSpec b;
  b.asn = 65002;
  b.address_space = P4("60.2.0.0/20");
  auto& member_b = ixp.add_member(b);
  // Prefix delegation: both members are authorized for the anycast /24
  // ("this does not interfere with prefix delegations", §4.3) — route object
  // and ROA for the second origin.
  ixp.irr().add_route_object(P4("100.10.10.0/24"), 65002);
  ixp.rpki().add_roa({P4("100.10.10.0/24"), 32, 65002});

  core::StellarSystem::Config config;
  config.controller.use_add_path = use_add_path;
  core::StellarSystem stellar_system(ixp, config);
  ixp.settle(30.0);

  core::Signal drop_ntp;
  drop_ntp.rules.push_back({core::RuleKind::kUdpSrcPort, net::kPortNtp});
  core::SignalAdvancedBlackholing(member_a, ixp.route_server(),
                                  P4("100.10.10.10/32"), drop_ntp);
  core::Signal drop_dns;
  drop_dns.rules.push_back({core::RuleKind::kUdpSrcPort, net::kPortDns});
  core::SignalAdvancedBlackholing(member_b, ixp.route_server(),
                                  P4("100.10.10.10/32"), drop_dns);
  ixp.settle(30.0);

  const std::size_t port_a = ixp.edge_router().policy(member_a.info().port).rule_count();
  const std::size_t port_b = ixp.edge_router().policy(member_b.info().port).rule_count();
  *rules_installed_total = port_a + port_b;
  std::size_t protected_members = (port_a > 0 ? 1u : 0u) + (port_b > 0 ? 1u : 0u);
  return protected_members;
}

}  // namespace

int main() {
  PrintHeader("Ablation — ADD-PATH on the blackholing controller session",
              "CoNEXT'18 Stellar paper, Section 4.3 (signaling design)");

  std::size_t rules_with = 0;
  std::size_t rules_without = 0;
  const std::size_t protected_with = RunScenario(true, &rules_with);
  const std::size_t protected_without = RunScenario(false, &rules_without);

  util::TextTable table({"controller session", "members protected (of 2)",
                         "rules installed (of 2)"});
  table.add_row({"iBGP + ADD-PATH (paper)", std::to_string(protected_with),
                 std::to_string(rules_with)});
  table.add_row({"iBGP, best path only", std::to_string(protected_without),
                 std::to_string(rules_without)});
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "takeaway: without ADD-PATH the two members' paths for the shared /32\n"
      "collide in the controller RIB and only one survives — a silently\n"
      "unprotected victim. ADD-PATH costs one capability in the OPEN and a\n"
      "4-byte path-id per NLRI.\n");
  std::printf("shape check: ADD-PATH protects both, best-path only one: %s\n",
              (protected_with == 2 && protected_without == 1) ? "YES" : "NO");
  return 0;
}
