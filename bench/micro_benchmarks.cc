// Microbenchmarks (google-benchmark) for the hot paths of the system:
// BGP wire codec, Flowspec NLRI codec, signal codec, RIB operations and
// diffing, QoS classification, TCAM allocation, and fabric LPM. These bound
// the control-plane throughput claims: the blackholing controller must parse
// the route server's full update stream, and the data-plane model must keep
// large experiment sweeps cheap.
#include <benchmark/benchmark.h>

#include "bgp/flowspec.hpp"
#include "detect/sketch.hpp"
#include "bgp/message.hpp"
#include "bgp/rib.hpp"
#include "core/signal.hpp"
#include "filter/qos.hpp"
#include "filter/tcam.hpp"
#include "bgp/session.hpp"
#include "ixp/fabric.hpp"
#include "net/ports.hpp"
#include "obs/metrics.hpp"
#include "sim/fault.hpp"
#include "traffic/collector.hpp"
#include "util/rng.hpp"

namespace {

using namespace stellar;

bgp::UpdateMessage MakeUpdate() {
  bgp::UpdateMessage u;
  u.attrs.origin = bgp::Origin::kIgp;
  u.attrs.as_path = {{bgp::AsPathSegment::Type::kSequence, {65001, 3320, 174}}};
  u.attrs.next_hop = net::IPv4Address(10, 99, 1, 1);
  u.attrs.communities = {bgp::kBlackhole, bgp::Community(64500, 1)};
  core::Signal signal;
  signal.rules.push_back({core::RuleKind::kUdpSrcPort, net::kPortNtp});
  signal.shape_rate_mbps = 200.0;
  u.attrs.extended_communities = core::EncodeSignal(64500, signal).value();
  for (std::uint32_t i = 0; i < 8; ++i) {
    u.announced.push_back(
        {0, net::Prefix4(net::IPv4Address((60u << 24) | (i << 12)), 20)});
  }
  return u;
}

void BM_BgpEncodeUpdate(benchmark::State& state) {
  const bgp::UpdateMessage u = MakeUpdate();
  for (auto _ : state) {
    benchmark::DoNotOptimize(bgp::Encode(u));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BgpEncodeUpdate);

void BM_BgpDecodeUpdate(benchmark::State& state) {
  const auto bytes = bgp::Encode(MakeUpdate());
  for (auto _ : state) {
    auto decoded = bgp::Decode(bytes);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * bytes.size()));
}
BENCHMARK(BM_BgpDecodeUpdate);

void BM_FlowspecRoundTrip(benchmark::State& state) {
  bgp::flowspec::Rule rule;
  rule.components.push_back({bgp::flowspec::ComponentType::kDstPrefix,
                             net::Prefix4::Parse("100.10.10.10/32").value(),
                             {}});
  rule.components.push_back(
      {bgp::flowspec::ComponentType::kIpProtocol, {}, {bgp::flowspec::Eq(17)}});
  rule.components.push_back(
      {bgp::flowspec::ComponentType::kSrcPort, {}, bgp::flowspec::Range(0, 1023)});
  for (auto _ : state) {
    auto encoded = bgp::flowspec::EncodeNlri(rule);
    auto decoded = bgp::flowspec::DecodeNlri(*encoded);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlowspecRoundTrip);

void BM_SignalDecode(benchmark::State& state) {
  core::Signal signal;
  signal.rules.push_back({core::RuleKind::kUdpSrcPort, net::kPortNtp});
  signal.rules.push_back({core::RuleKind::kUdpSrcPort, net::kPortDns});
  signal.shape_rate_mbps = 200.0;
  const auto ecs = core::EncodeSignal(64500, signal).value();
  for (auto _ : state) {
    auto decoded = core::DecodeSignal(64500, ecs);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SignalDecode);

void BM_RibInsertWithdraw(benchmark::State& state) {
  const auto routes = static_cast<std::uint32_t>(state.range(0));
  bgp::Rib rib;
  bgp::PathAttributes attrs;
  attrs.origin = bgp::Origin::kIgp;
  attrs.next_hop = net::IPv4Address(10, 99, 1, 1);
  std::uint32_t i = 0;
  for (auto _ : state) {
    const net::Prefix4 prefix(net::IPv4Address((60u << 24) | ((i % routes) << 8)), 24);
    rib.insert(bgp::Route{prefix, 1, 0, attrs});
    if (i % 2 == 1) rib.withdraw(prefix, 1, 0);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RibInsertWithdraw)->Arg(1'000)->Arg(100'000);

void BM_RibSnapshotDiff(benchmark::State& state) {
  const auto routes = static_cast<std::uint32_t>(state.range(0));
  bgp::Rib rib;
  bgp::PathAttributes attrs;
  attrs.origin = bgp::Origin::kIgp;
  attrs.next_hop = net::IPv4Address(10, 99, 1, 1);
  for (std::uint32_t i = 0; i < routes; ++i) {
    rib.insert(bgp::Route{net::Prefix4(net::IPv4Address((60u << 24) | (i << 8)), 24), 1, 0,
                          attrs});
  }
  const auto before = rib.snapshot();
  rib.withdraw(net::Prefix4(net::IPv4Address(60, 0, 1, 0), 24), 1, 0);
  const auto after = rib.snapshot();
  for (auto _ : state) {
    benchmark::DoNotOptimize(bgp::DiffSnapshots(before, after));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * routes));
}
BENCHMARK(BM_RibSnapshotDiff)->Arg(1'000)->Arg(10'000);

// Rule-count sweep shared by the linear/indexed classify benchmarks: rules
// bucketed by proto + single src port (the dominant Stellar rule shape), the
// probe flow matching nothing — worst case for the linear scan.
filter::QosPolicy MakeSweepPolicy(std::int64_t rules) {
  filter::QosPolicy policy;
  for (std::uint64_t r = 0; r < static_cast<std::uint64_t>(rules); ++r) {
    filter::FilterRule rule;
    rule.match.proto = net::IpProto::kUdp;
    rule.match.src_port = filter::PortRange::Single(static_cast<std::uint16_t>(r + 1));
    rule.action = filter::FilterAction::kDrop;
    policy.add_rule(r + 1, rule);
  }
  return policy;
}

net::FlowKey SweepFlow() {
  net::FlowKey flow;
  flow.proto = net::IpProto::kUdp;
  flow.src_port = 65'000;  // Matches nothing.
  return flow;
}

void BM_QosClassify(benchmark::State& state) {
  const filter::QosPolicy policy = MakeSweepPolicy(state.range(0));
  const net::FlowKey flow = SweepFlow();
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.classify(flow));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QosClassify)->Arg(8)->Arg(64)->Arg(256)->Arg(1024);

void BM_QosClassifyLinear(benchmark::State& state) {
  const filter::QosPolicy policy = MakeSweepPolicy(state.range(0));
  const net::FlowKey flow = SweepFlow();
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.classify_linear(flow));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QosClassifyLinear)->Arg(8)->Arg(64)->Arg(256)->Arg(1024);

void BM_QosClassifyBatch(benchmark::State& state) {
  const filter::QosPolicy policy = MakeSweepPolicy(state.range(0));
  util::Rng rng(7);
  std::vector<net::FlowKey> flows(1024, SweepFlow());
  for (auto& f : flows) {
    // Half the batch hits a rule, half misses: a realistic attack-time mix.
    f.src_port = static_cast<std::uint16_t>(
        rng.chance(0.5) ? rng.uniform_int(1, state.range(0)) : 65'000);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.classify_batch(flows));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(flows.size()));
}
BENCHMARK(BM_QosClassifyBatch)->Arg(64)->Arg(256);

void BM_TcamAllocateRelease(benchmark::State& state) {
  filter::Tcam tcam({.l3l4_criteria_pool = 1'000'000, .mac_filter_pool = 1'000'000});
  filter::MatchCriteria match;
  match.dst_prefix = net::Prefix4::Parse("100.10.10.10/32").value();
  match.proto = net::IpProto::kUdp;
  match.src_port = filter::PortRange::Single(123);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tcam.allocate(1, match));
    tcam.release(1, match);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TcamAllocateRelease);

void BM_FabricLpm(benchmark::State& state) {
  filter::EdgeRouter er("er1", filter::TcamLimits{});
  ixp::Fabric fabric(er);
  const auto owners = static_cast<std::uint32_t>(state.range(0));
  for (std::uint32_t i = 0; i < owners; ++i) {
    er.add_port(i + 1, 10'000.0);
    fabric.register_owner(net::Prefix4(net::IPv4Address((60u << 24) | (i << 12)), 20), i + 1);
  }
  util::Rng rng(1);
  std::vector<net::IPv4Address> lookups;
  for (int i = 0; i < 1024; ++i) {
    lookups.push_back(net::IPv4Address(
        (60u << 24) | (static_cast<std::uint32_t>(rng.uniform_int(0, owners - 1)) << 12) | 5u));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    filter::PortId port = 0;
    benchmark::DoNotOptimize(fabric.lookup_egress(lookups[i++ % lookups.size()], port));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FabricLpm)->Arg(100)->Arg(800);

void BM_FlowCollectorIngest(benchmark::State& state) {
  // Per-sample ingest over a realistic mix (many peers, amplification-heavy
  // port distribution). Dominated by the per-bin peer-set insertion — the
  // collector sits on the IPFIX path, so this bounds flow-stream throughput.
  util::Rng rng(42);
  const auto peer_count = static_cast<std::uint32_t>(state.range(0));
  std::vector<net::FlowSample> samples;
  samples.reserve(4'096);
  for (int i = 0; i < 4'096; ++i) {
    net::FlowSample s;
    s.time_s = rng.uniform(0.0, 600.0);
    s.key.src_mac = net::MacAddress::ForRouter(
        65'001 + static_cast<std::uint32_t>(rng.uniform_int(0, peer_count - 1)));
    s.key.src_ip = net::IPv4Address(static_cast<std::uint32_t>(rng.uniform_int(1, 1 << 30)));
    s.key.dst_ip = net::IPv4Address(100, 10, 10, 10);
    s.key.proto = rng.chance(0.8) ? net::IpProto::kUdp : net::IpProto::kTcp;
    s.key.src_port = rng.chance(0.7) ? net::kPortNtp
                                     : static_cast<std::uint16_t>(rng.uniform_int(1024, 65'535));
    s.key.dst_port = static_cast<std::uint16_t>(rng.uniform_int(1024, 65'535));
    s.bytes = 1'000;
    s.packets = 1;
    samples.push_back(s);
  }
  traffic::FlowCollector collector(60.0);
  for (auto _ : state) {
    collector.ingest(samples);
    benchmark::DoNotOptimize(collector.bins().size());
    collector.clear();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(samples.size()));
}
BENCHMARK(BM_FlowCollectorIngest)->Arg(16)->Arg(650);

void BM_CountMinSketchAdd(benchmark::State& state) {
  // The detection engine's per-sample cost: conservative-update add.
  util::Rng rng(43);
  std::vector<std::uint64_t> keys(4'096);
  for (auto& k : keys) {
    k = detect::FlowAggregateKey(static_cast<std::uint32_t>(rng.uniform_int(0, 1 << 24)), 17,
                                 static_cast<std::uint16_t>(rng.uniform_int(0, 65'535)));
  }
  detect::CountMinSketch cms(1'024, 4);
  std::size_t i = 0;
  for (auto _ : state) {
    cms.add(keys[i++ & 4'095], 1'000);
    benchmark::DoNotOptimize(cms.total());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CountMinSketchAdd);

void BM_FaultyLinkOverhead(benchmark::State& state) {
  // Cost of one message through an Endpoint link, bare (arg 0) vs wrapped by
  // a FaultInjector with an all-zero fault plan (arg 1). The injector must be
  // close to free when no faults are configured, so chaos-capable builds can
  // leave the hook armed without skewing timing-sensitive experiments.
  const bool wrapped = state.range(0) != 0;
  sim::EventQueue queue;
  std::unique_ptr<sim::FaultInjector> injector;
  if (wrapped) {
    injector = std::make_unique<sim::FaultInjector>(queue, sim::FaultPlan{});
    injector->arm();
  }
  auto [ea, eb] = bgp::MakeLink(queue);
  std::uint64_t received = 0;
  eb->set_receive_handler([&](std::span<const std::uint8_t>) { ++received; });
  const std::vector<std::uint8_t> payload(64, 0xAB);
  for (auto _ : state) {
    ea->send(payload);
    queue.run();  // Drain the delivery event.
  }
  benchmark::DoNotOptimize(received);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FaultyLinkOverhead)->Arg(0)->Arg(1);

void BM_ObsHotPath(benchmark::State& state) {
  // Cost of one counter increment + one histogram observation against an
  // armed (arg 1) vs disarmed (arg 0) registry. The disarmed path is the
  // production contract for timing-sensitive experiments: one predictable
  // branch per event, <5 ns/event.
  obs::Registry reg(/*armed=*/state.range(0) != 0);
  obs::Counter counter = reg.counter("bench.events");
  obs::Histogram hist = reg.histogram("bench.latency_seconds");
  double v = 1e-4;
  for (auto _ : state) {
    counter.inc();
    hist.observe(v);
    v = v < 1.0 ? v * 1.0001 : 1e-4;  // Walk the buckets, defeat caching.
    benchmark::DoNotOptimize(v);
  }
  benchmark::DoNotOptimize(counter.value());
  // Two instrumentation events per iteration.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_ObsHotPath)->Arg(0)->Arg(1);

}  // namespace
