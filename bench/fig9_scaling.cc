// Fig. 9(a-c): "Stellar scaling limits by IXP member adoption rate."
//
// Lab stretch test on an edge router with the production configuration of
// >350 member ports: every active port installs X MAC filter criteria (RTBH
// policy control) and Y L3-L4 filter criteria (Advanced Blackholing rules);
// X sweeps 0..10N, Y sweeps 0..4N, where N is the 95th percentile of the
// number of parallel RTBHs observed per port. Grid cells report:
//   OK — resources suffice,
//   F1 — the chip-wide pool of L3-L4 QoS filter criteria is exceeded,
//   F2 — the chip-wide pool of MAC filter entries is exceeded.
//
// Paper's shape: 20% adoption (2x today's RTBH users) — everything OK;
// 60% — F1 at 4N, F2 at 10N; 100% — F1 from 2N, F2 from 6N.
//
// A second sweep re-runs the grid at the paper's full member scale (>800
// members at the L-IXP, §2) with pool sizes scaled to the larger chassis:
// the frontier is pool-per-port invariant, so the feasible region must match
// the 350-port ER. `--smoke` checks both frontiers programmatically without
// printing the grids and exits non-zero on mismatch (CI gate,
// tools/ci_release.sh).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "filter/tcam.hpp"
#include "net/mac.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using namespace stellar;

/// N: 95th percentile of parallel RTBHs per port, from a synthetic usage
/// trace (heavy-tailed: most ports hold 0-2 blackholes, a few dozens — see
/// Dietzel et al., PAM'16 for the underlying distribution shape).
int MeasureN(util::Rng& rng, int ports) {
  std::vector<double> parallel;
  for (int port = 0; port < ports; ++port) {
    const double draw = rng.uniform();
    if (draw < 0.60) {
      parallel.push_back(0.0);
    } else if (draw < 0.90) {
      parallel.push_back(static_cast<double>(rng.uniform_int(1, 4)));
    } else {
      parallel.push_back(std::min(80.0, rng.pareto(4.0, 1.3)));
    }
  }
  return static_cast<int>(util::Percentile(parallel, 95.0));
}

const std::vector<int> kMacMultipliers{10, 8, 6, 4, 2, 0};  // y-axis, top to bottom.
const std::vector<int> kL3L4Multipliers{0, 1, 2, 3, 4};     // x-axis.

filter::TcamFailure FillCell(const filter::TcamLimits& limits, int active_ports, int n,
                             int l3l4_mult, int mac_mult) {
  filter::Tcam tcam(limits);
  filter::TcamFailure failure = filter::TcamFailure::kNone;

  // Phase 1: every active port's Advanced Blackholing rules (L3-L4 criteria;
  // checked first — F1 is the scarcer resource and takes precedence in the
  // paper's labeling).
  filter::MatchCriteria l3l4_rule;
  l3l4_rule.dst_prefix = net::Prefix4::Parse("100.10.10.10/32").value();
  for (int port = 0; port < active_ports && failure == filter::TcamFailure::kNone; ++port) {
    for (int r = 0; r < l3l4_mult * n; ++r) {
      failure = tcam.allocate(static_cast<filter::PortId>(port), l3l4_rule);
      if (failure != filter::TcamFailure::kNone) break;
    }
  }
  // Phase 2: every active port's MAC filters (RTBH policy control).
  for (int port = 0; port < active_ports && failure == filter::TcamFailure::kNone; ++port) {
    filter::MatchCriteria mac_rule;
    mac_rule.src_mac = net::MacAddress::ForRouter(static_cast<std::uint32_t>(port));
    for (int r = 0; r < mac_mult * n; ++r) {
      failure = tcam.allocate(static_cast<filter::PortId>(port), mac_rule);
      if (failure != filter::TcamFailure::kNone) break;
    }
  }
  return failure;
}

/// Runs the full adoption × (MAC, L3-L4) grid for one chassis size and
/// checks the paper's frontier shape: 20% adoption fits everywhere, 100%
/// adoption must exhaust the L3-L4 pool at the densest column.
bool RunGrid(int ports, util::Rng& rng, bool print) {
  const int n = MeasureN(rng, ports);
  // Hardware information base, in units of criteria. Pool-per-port is the
  // calibrated vendor constant, so larger chassis scale the pools linearly.
  const filter::TcamLimits limits{
      .l3l4_criteria_pool = static_cast<std::int64_t>(1.9 * ports) * n,
      .mac_filter_pool = static_cast<std::int64_t>(5.0 * ports) * n,
  };
  if (print) {
    std::printf("=== chassis with %d member ports ===\n", ports);
    std::printf("N (95th pct of parallel RTBHs per port): %d\n", n);
    std::printf("ER hardware limits: L3-L4 criteria pool = %lld, MAC filter pool = %lld\n\n",
                static_cast<long long>(limits.l3l4_criteria_pool),
                static_cast<long long>(limits.mac_filter_pool));
  }

  bool shape_ok = true;
  for (const double adoption : {0.20, 0.60, 1.00}) {
    const int active_ports = static_cast<int>(adoption * ports);
    if (print) {
      std::printf("--- adoption %.0f%% of IXP member ASes (%d active ports) ---\n",
                  adoption * 100.0, active_ports);
      std::printf("%-14s", "MAC \\ L3-L4");
      for (int x : kL3L4Multipliers) std::printf("%6s", (std::to_string(x) + "N").c_str());
      std::printf("\n");
    }
    for (int mac_mult : kMacMultipliers) {
      if (print) std::printf("%-14s", (std::to_string(mac_mult) + "N").c_str());
      for (int l3l4_mult : kL3L4Multipliers) {
        const auto failure = FillCell(limits, active_ports, n, l3l4_mult, mac_mult);
        if (print) std::printf("%6s", std::string(ToString(failure)).c_str());
        if (adoption == 0.20 && failure != filter::TcamFailure::kNone) shape_ok = false;
        if (adoption == 1.00 && l3l4_mult == 4 && mac_mult == 10 &&
            failure == filter::TcamFailure::kNone) {
          shape_ok = false;
        }
      }
      if (print) std::printf("\n");
    }
    if (print) std::printf("\n");
  }
  return shape_ok;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  std::printf("==============================================================\n");
  std::printf("Fig 9 — Stellar TCAM scaling limits by member adoption rate\n");
  std::printf("reproduces: CoNEXT'18 Stellar paper, Section 5.1, Figure 9(a-c)\n");
  std::printf("==============================================================\n");

  util::Rng rng(95);
  // The paper's lab ER (>350 member ports) and the full L-IXP member scale
  // (>800 members, §2). Smoke mode prints no grids but checks both.
  const bool ok_350 = RunGrid(350, rng, /*print=*/!smoke);
  const bool ok_800 = RunGrid(800, rng, /*print=*/!smoke);

  std::printf(
      "shape check (paper): 20%% all OK; 60%% F1 at 4N / F2 at 10N;\n"
      "100%% F1 from 2N / F2 from 6N. The feasible region shrinks with\n"
      "adoption but keeps substantial headroom even at 100%%.\n");
  std::printf("frontier shape holds at 350 ports: %s\n", ok_350 ? "YES" : "NO");
  std::printf("frontier shape holds at 800 ports: %s\n", ok_800 ? "YES" : "NO");
  return (ok_350 && ok_800) ? 0 : 1;
}
