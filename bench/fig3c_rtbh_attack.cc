// Fig. 3(c): "Active DDoS attack exposing RTBH ineffectiveness."
//
// The controlled §2.4 experiment: a booter-service NTP reflection attack of
// ~1 Gbps against a /32 in the experimental AS (10 Gbps port, routes from
// >650 route-server members). 280 s after attack start the victim signals
// RTBH (/32 + BLACKHOLE community) to the route server.
//
// Paper's shape: attack ramps to just under 1 Gbps from ~40 peers; after the
// blackhole signal traffic only falls to 600-800 Mbps and the peer count
// drops by only ~25% — most members do not honor the /32 announcement.
#include "bench_common.hpp"

#include "mitigation/rtbh.hpp"

int main() {
  using namespace stellar;
  using namespace stellar::bench;

  PrintHeader("Fig 3(c) — active DDoS attack, mitigation via classic RTBH",
              "CoNEXT'18 Stellar paper, Section 2.4, Figure 3(c)");

  BooterExperiment::Params params;
  BooterExperiment exp(params);

  const double kBin = 20.0;
  const double kRtbhTrigger = params.attack_start_s + 280.0;  // Paper: 280 s in.
  bool triggered = false;

  std::vector<double> ts;
  std::vector<double> attack_mbps;
  std::vector<double> peers;
  std::size_t peak_peers = 0;
  double peak_attack = 0.0;
  double post_sum = 0.0;
  int post_n = 0;
  std::size_t pre_peers = 0;
  std::size_t post_peers = 0;

  for (double t = 0.0; t <= 880.0; t += kBin) {
    if (!triggered && t >= kRtbhTrigger) {
      mitigation::TriggerRtbh(*exp.victim, net::Prefix4::HostRoute(exp.target));
      triggered = true;
    }
    const auto bin = exp.run_bin(t, kBin);
    ts.push_back(t);
    attack_mbps.push_back(bin.attack_mbps);
    peers.push_back(static_cast<double>(bin.peers));
    peak_attack = std::max(peak_attack, bin.attack_mbps);
    peak_peers = std::max(peak_peers, bin.peers);
    if (t >= params.attack_start_s + 200.0 && t < kRtbhTrigger) pre_peers = bin.peers;
    if (triggered && t >= kRtbhTrigger + 60.0 && t < params.attack_end_s) {
      post_sum += bin.attack_mbps;
      ++post_n;
      post_peers = bin.peers;
    }
  }

  std::printf("%s\n",
              util::SeriesTable("t[s]", ts,
                                {{"attack+bh delivered [Mbps]", attack_mbps},
                                 {"#peers", peers}},
                                0)
                  .c_str());

  const double post_mean = post_n > 0 ? post_sum / post_n : 0.0;
  const auto compliance = mitigation::MeasureCompliance(
      *exp.ixp, net::Prefix4::HostRoute(exp.target), kVictimAsn);
  std::printf("summary:\n");
  std::printf("  peak attack delivered      : %.0f Mbps (paper: slightly <1000)\n", peak_attack);
  std::printf("  after RTBH, mean delivered : %.0f Mbps (paper: 600-800)\n", post_mean);
  std::printf("  surviving share            : %.0f %%\n", post_mean / peak_attack * 100.0);
  std::printf("  peers before/after RTBH    : %zu -> %zu (paper: -25%%)\n", pre_peers,
              post_peers);
  std::printf("  members honoring the /32   : %zu of %zu (%.0f %%)\n", compliance.honoring,
              compliance.total, compliance.honored_fraction() * 100.0);
  std::printf("shape check: RTBH leaves the majority of the attack traffic: %s\n",
              post_mean > 0.5 * peak_attack ? "YES (matches paper)" : "NO");
  return 0;
}
