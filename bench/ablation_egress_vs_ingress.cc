// Ablation: egress vs ingress filter placement (paper §4.5).
//
// Stellar installs blackholing rules on the victim's *egress* port: one
// port's configuration changes per update, causality preserved, telemetry at
// the member port — but attack traffic still crosses the switching platform.
// Ingress placement drops at the platform edge (saving fabric capacity) at
// the cost of touching every ingress port. The paper picks egress and notes
// ingress as future work for capacity-constrained platforms; this ablation
// quantifies the trade.
#include "bench_common.hpp"

int main() {
  using namespace stellar;
  using namespace stellar::bench;

  PrintHeader("Ablation — egress vs ingress filter placement",
              "CoNEXT'18 Stellar paper, Section 4.5 (design discussion)");

  constexpr int kMembers = 650;
  constexpr int kRulesPerSignal = 1;

  // Configuration cost: changes needed to realize one signaled rule.
  const int egress_changes = kRulesPerSignal;                    // Victim's port only.
  const int ingress_changes = kRulesPerSignal * (kMembers - 1);  // Every other port.

  // Platform load: measure fabric-crossing attack bytes in both modes.
  BooterExperiment::Params params;
  params.members = 120;  // Keep the data-plane run quick; load scales linearly.
  BooterExperiment exp(params);
  core::StellarSystem stellar_system(*exp.ixp);
  exp.ixp->settle(10.0);
  core::Signal drop;
  drop.rules.push_back({core::RuleKind::kUdpSrcPort, net::kPortNtp});
  core::SignalAdvancedBlackholing(*exp.victim, exp.ixp->route_server(),
                                  net::Prefix4::HostRoute(exp.target), drop);
  exp.ixp->settle(20.0);

  // Egress mode: attack crosses the platform, is dropped at the member port.
  double crossed_egress = 0.0;
  double crossed_ingress = 0.0;
  for (double t = 400.0; t < 600.0; t += 20.0) {
    exp.queue.run_until(sim::Seconds(t));
    const auto offered = exp.attack->bin(t, 20.0);
    double offered_mbps = 0.0;
    for (const auto& s : offered) offered_mbps += s.mbps(20.0);
    // Egress: everything routed to the victim crosses the fabric first.
    crossed_egress += offered_mbps;
    // Ingress: rule-matched traffic never enters the fabric. Classify with
    // the very policy Stellar installed on the victim port.
    const auto& policy = exp.ixp->edge_router().policy(exp.victim->info().port);
    for (const auto& s : offered) {
      const auto* rule = policy.classify(s.key);
      if (rule == nullptr || rule->rule.action != filter::FilterAction::kDrop) {
        crossed_ingress += s.mbps(20.0);
      }
    }
  }
  const int bins = 10;
  crossed_egress /= bins;
  crossed_ingress /= bins;

  util::TextTable table({"placement", "config changes per signal", "ports touched",
                         "platform load during attack [Mbps]", "causality"});
  table.add_row({"egress (paper)", std::to_string(egress_changes), "1",
                 util::FormatDouble(crossed_egress, 0),
                 "update affects only the updating member"});
  table.add_row({"ingress", std::to_string(ingress_changes),
                 std::to_string(kMembers - 1), util::FormatDouble(crossed_ingress, 0),
                 "update touches all members' ports"});
  std::printf("%s\n", table.str().c_str());

  std::printf(
      "takeaway: egress costs %dx fewer configuration changes per signal but\n"
      "carries ~%.0f Mbps of attack traffic across the fabric (fine while the\n"
      "platform has Tbps headroom, e.g. 25 Tbps connected capacity at DE-CIX;\n"
      "ingress placement is the right choice only when platform capacity is\n"
      "the bottleneck, as §4.5 notes for smaller IXPs).\n",
      ingress_changes / std::max(1, egress_changes), crossed_egress - crossed_ingress);
  return 0;
}
