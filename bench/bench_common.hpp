// Shared scenario plumbing for the figure-reproduction benches: the booter
// attack experiment of §2.4/§5.3 (victim member at a synthetic L-IXP, NTP
// reflection attack, per-bin delivery accounting).
#pragma once

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/stellar.hpp"
#include "mitigation/rtbh.hpp"
#include "net/ports.hpp"
#include "traffic/collector.hpp"
#include "traffic/generators.hpp"
#include "util/ascii.hpp"

namespace stellar::bench {

inline net::Prefix4 P4(const char* text) { return net::Prefix4::Parse(text).value(); }

constexpr bgp::Asn kVictimAsn = 63'000;

/// The §2.4 / §5.3 experiment setup: a synthetic L-IXP, an experimental AS
/// with a 10 Gbps port announcing 100.10.10.0/24, and a ~1 Gbps booter NTP
/// reflection attack against one /32 plus light benign web traffic.
struct BooterExperiment {
  sim::EventQueue queue;
  std::unique_ptr<ixp::Ixp> ixp;
  ixp::MemberRouter* victim = nullptr;
  net::IPv4Address target{net::IPv4Address(100, 10, 10, 10)};
  std::unique_ptr<traffic::AmplificationAttackGenerator> attack;
  std::unique_ptr<traffic::WebTrafficGenerator> web;

  struct Params {
    int members = 650;  ///< Paper: routes from >650 members at the route server.
    double honor_fraction = 0.30;
    double attack_peak_mbps = 1000.0;
    double attack_start_s = 100.0;
    double attack_end_s = 820.0;
    double web_mbps = 60.0;
    std::uint64_t seed = 2018;
  };

  explicit BooterExperiment(const Params& params) {
    ixp::LargeIxpParams ixp_params;
    ixp_params.member_count = params.members;
    ixp_params.rtbh_honor_fraction = params.honor_fraction;
    ixp_params.seed = params.seed;
    ixp = ixp::MakeLargeIxp(queue, ixp_params);

    ixp::MemberSpec spec;
    spec.asn = kVictimAsn;
    spec.name = "experimental-AS";
    spec.port_capacity_mbps = 10'000.0;  // Paper: 10 Gbps port capacity.
    spec.address_space = P4("100.10.10.0/24");
    victim = &ixp->add_member(spec);
    ixp->settle(60.0);

    auto sources = ixp->source_members(kVictimAsn);
    auto attack_config = traffic::BooterNtpAttack(target, params.attack_peak_mbps,
                                                  params.attack_start_s, params.attack_end_s);
    attack = std::make_unique<traffic::AmplificationAttackGenerator>(attack_config, sources,
                                                                     params.seed + 1);
    traffic::WebTrafficGenerator::Config web_config;
    web_config.target = target;
    web_config.rate_mbps = params.web_mbps;
    // The experimental AS carries no customer traffic (paper §2.4); the
    // light web load stands in for measurement probes from a few networks,
    // so the peer counts of Fig. 3c/10c stay attack-dominated.
    std::vector<traffic::SourceMember> web_sources(
        sources.begin(), sources.begin() + std::min<std::size_t>(12, sources.size()));
    web = std::make_unique<traffic::WebTrafficGenerator>(web_config, web_sources,
                                                         params.seed + 2);
  }

  /// Per-bin accounting of the traffic that reached the victim member.
  struct BinOutcome {
    double t = 0.0;
    double attack_mbps = 0.0;   ///< NTP (udp/123) delivered.
    double benign_mbps = 0.0;
    double shaped_mbps = 0.0;   ///< Delivered via shaping queues.
    std::size_t peers = 0;      ///< Distinct source members still arriving.
    /// The delivered flow samples themselves — the IPFIX-style stream a
    /// detection engine observes (bench/fig10c_auto_detect feeds these to
    /// StellarSystem::observe_bin).
    std::vector<net::FlowSample> delivered;
  };

  /// Sim-clock time of experiment t=0. Captured at the first run_bin call:
  /// IXP construction has already consumed sim time (sessions establishing,
  /// routes settling), so bin timestamps must be offset onto the sim clock —
  /// otherwise run_until() no-ops until t catches up with the settled clock
  /// and BGP messages sent in early bins sit undelivered for tens of bins.
  double epoch_s = -1.0;

  BinOutcome run_bin(double t, double bin_s) {
    if (epoch_s < 0.0) epoch_s = queue.now().count();
    queue.run_until(sim::Seconds(epoch_s + t));
    std::vector<net::FlowSample> offered = web->bin(t, bin_s);
    for (auto& s : attack->bin(t, bin_s)) offered.push_back(s);
    auto report = ixp->deliver_bin(offered, bin_s);
    BinOutcome out;
    out.t = t;
    out.shaped_mbps = report.shaper_dropped_mbps;
    std::unordered_set<net::MacAddress> peers;
    for (const auto& f : report.delivered) {
      peers.insert(f.key.src_mac);
      if (f.key.proto == net::IpProto::kUdp && f.key.src_port == net::kPortNtp) {
        out.attack_mbps += f.mbps(bin_s);
      } else {
        out.benign_mbps += f.mbps(bin_s);
      }
    }
    out.peers = peers.size();
    out.delivered = std::move(report.delivered);
    return out;
  }
};

/// Synthetic one-day configuration-change trace of the L-IXP RTBH service
/// (drives Fig. 10b and the rate-limit ablation). Two regimes:
///   - background: members add/remove blackholes individually (Poisson,
///     ~one change every 5 s) — these see an idle queue;
///   - bursts: attack onsets and member session resets trigger hundreds of
///     changes within seconds (heavy-tailed burst sizes, one jumbo event per
///     day) — these are where queueing happens.
/// Calibrated so a 4/s token bucket yields the paper's CDF: ~70% of changes
/// below 1 s, 95th percentile below 100 s, tail reaching ~10^3 s.
inline std::vector<double> MakeRtbhConfigChangeTrace(util::Rng& rng) {
  std::vector<double> arrivals;
  constexpr double kDay = 86'400.0;
  double t = 0.0;
  while (t < kDay) {
    t += rng.exponential(0.2);
    arrivals.push_back(t);
  }
  for (int burst = 0; burst < 24; ++burst) {
    const double at = rng.uniform(0.0, kDay);
    const auto size = static_cast<int>(std::min(550.0, rng.lognormal(5.3, 0.55)));
    for (int i = 0; i < size; ++i) arrivals.push_back(at + rng.uniform(0.0, 30.0));
  }
  // One jumbo event (multi-vector attack storm / route-server reset replay).
  const double jumbo_at = rng.uniform(0.0, kDay);
  for (int i = 0; i < 1'200; ++i) arrivals.push_back(jumbo_at + rng.uniform(0.0, 45.0));
  std::sort(arrivals.begin(), arrivals.end());
  return arrivals;
}

inline void PrintHeader(const std::string& title, const std::string& paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("==============================================================\n");
}

}  // namespace stellar::bench
