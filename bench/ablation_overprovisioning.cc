// Extension (paper §6, "Improved utilization"): "Since attack traffic is
// dropped before using the member ports' capacity at the IXP egress, IXP
// members do not need to over-provision to cope with volumetric attacks."
//
// Sweep: how large must the victim's IXP port be to keep 99% of its benign
// traffic flowing through a 5 Gbps NTP attack — with and without Stellar?
#include "bench_common.hpp"

namespace {

using namespace stellar;
using namespace stellar::bench;

double BenignDeliveredPct(double port_mbps, bool with_stellar) {
  sim::EventQueue queue;
  ixp::Ixp ixp(queue);
  ixp::MemberSpec victim_spec;
  victim_spec.asn = 65001;
  victim_spec.port_capacity_mbps = port_mbps;
  victim_spec.address_space = P4("100.10.10.0/24");
  auto& victim = ixp.add_member(victim_spec);
  ixp::MemberSpec src;
  src.asn = 65002;
  src.port_capacity_mbps = 100'000.0;
  src.address_space = P4("60.2.0.0/20");
  ixp.add_member(src);
  std::unique_ptr<core::StellarSystem> stellar;
  if (with_stellar) stellar = std::make_unique<core::StellarSystem>(ixp);
  ixp.settle(30.0);

  const net::IPv4Address target(100, 10, 10, 10);
  auto sources = ixp.source_members(65001);

  if (with_stellar) {
    core::Signal signal;
    signal.rules.push_back({core::RuleKind::kUdpSrcPort, net::kPortNtp});
    core::SignalAdvancedBlackholing(victim, ixp.route_server(),
                                    net::Prefix4::HostRoute(target), signal);
    ixp.settle(10.0);
  }

  traffic::WebTrafficGenerator::Config web_config;
  web_config.target = target;
  web_config.rate_mbps = 800.0;
  web_config.rate_jitter = 0.0;
  traffic::WebTrafficGenerator web(web_config, sources, 3);
  traffic::AmplificationAttackGenerator::Config attack_config;
  attack_config.target = target;
  attack_config.peak_mbps = 5'000.0;
  attack_config.start_s = 0.0;
  attack_config.end_s = 1e9;
  attack_config.ramp_s = 1.0;
  attack_config.jitter = 0.0;
  traffic::AmplificationAttackGenerator attack(attack_config, sources, 4);

  double offered = 0.0;
  double delivered = 0.0;
  for (double t = 10.0; t < 110.0; t += 10.0) {
    std::vector<net::FlowSample> mix = web.bin(t, 10.0);
    for (const auto& s : mix) offered += s.mbps(10.0);
    for (auto& s : attack.bin(t, 10.0)) mix.push_back(s);
    const auto report = ixp.deliver_bin(mix, 10.0);
    for (const auto& s : report.delivered) {
      if (!(s.key.proto == net::IpProto::kUdp && s.key.src_port == net::kPortNtp)) {
        delivered += s.mbps(10.0);
      }
    }
  }
  return delivered / offered * 100.0;
}

}  // namespace

int main() {
  PrintHeader("Extension — port over-provisioning needed to survive an attack",
              "CoNEXT'18 Stellar paper, Section 6 ('Improved utilization')");
  std::printf("victim serves 800 Mbps of web traffic; a 5 Gbps NTP attack hits it.\n\n");

  util::TextTable table({"port size [Mbps]", "benign delivered, no Stellar [%]",
                         "benign delivered, Stellar [%]"});
  double min_port_plain = -1.0;
  double min_port_stellar = -1.0;
  for (const double port : {1'000.0, 2'000.0, 4'000.0, 6'000.0, 8'000.0, 10'000.0}) {
    const double plain = BenignDeliveredPct(port, false);
    const double with_stellar = BenignDeliveredPct(port, true);
    if (plain >= 99.0 && min_port_plain < 0.0) min_port_plain = port;
    if (with_stellar >= 99.0 && min_port_stellar < 0.0) min_port_stellar = port;
    table.add_row({util::FormatDouble(port, 0), util::FormatDouble(plain, 1),
                   util::FormatDouble(with_stellar, 1)});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "smallest port with >=99%% benign delivery: %.0f Mbps without Stellar,\n"
      "%.0f Mbps with Stellar — a %.0fx over-provisioning factor the member no\n"
      "longer pays for; the attack is absorbed by the IXP's spare capacity.\n",
      min_port_plain, min_port_stellar,
      min_port_plain > 0 && min_port_stellar > 0 ? min_port_plain / min_port_stellar : 0.0);
  return 0;
}
