// Signal-storm scaling bench: L-IXP member-scale control-plane batching.
//
// The paper's IXP has >800 members (§2); an attack onset or a route-server
// reset can make hundreds of them (re)announce fine-grained blackholing
// signals within seconds. This bench drives the controller → network-manager
// → compiler pipeline twice with the identical storm:
//
//   per-signal — one RIB-diff process() round per BGP update, classic
//                per-change token-bucket queue (the paper's Fig. 10b setup);
//   batched    — the whole storm coalesces into ONE diff epoch, and the
//                manager's batched queue (Config::batch_apply) drains one
//                port-batch per token with key-level churn coalescing.
//
// Observables: wall-clock from storm start to the last hardware apply (the
// "time from blackholing signal to configuration" of Fig. 10b, on the sim
// clock), plus host CPU time for flavor. Exit status enforces the two
// acceptance gates:
//   1. batched converges >= 5x faster than per-signal at 256+ concurrent
//      signals, and
//   2. both paths realize byte-identical installed rule sets (differential
//      assert over every change key and every per-port data-plane rule).
//
// `--smoke` runs a reduced storm (CI gate, tools/ci_release.sh).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/controller.hpp"
#include "core/network_manager.hpp"
#include "core/signal.hpp"
#include "filter/edge_router.hpp"
#include "net/ports.hpp"
#include "util/ascii.hpp"

namespace {

using namespace stellar;

constexpr bgp::Asn kIxpAsn = 64500;
constexpr bgp::Asn kMemberBase = 65000;
constexpr filter::PortId kPortBase = 100;

/// Wraps the QoS compiler to timestamp hardware touches on the sim clock:
/// the last apply is the storm's convergence instant.
class TimedCompiler final : public core::ConfigCompiler {
 public:
  TimedCompiler(sim::EventQueue& queue, core::QosConfigCompiler& inner)
      : queue_(queue), inner_(inner) {}

  util::Result<void> apply(const core::ConfigChange& change) override {
    ++invocations_;
    last_apply_s_ = queue_.now().count();
    return inner_.apply(change);
  }
  std::vector<util::Result<void>> apply_batch(
      const std::vector<core::ConfigChange>& changes) override {
    ++invocations_;
    last_apply_s_ = queue_.now().count();
    return inner_.apply_batch(changes);
  }
  [[nodiscard]] std::string_view name() const override { return inner_.name(); }

  [[nodiscard]] double last_apply_s() const { return last_apply_s_; }
  [[nodiscard]] std::uint64_t invocations() const { return invocations_; }

 private:
  sim::EventQueue& queue_;
  core::QosConfigCompiler& inner_;
  double last_apply_s_ = 0.0;
  std::uint64_t invocations_ = 0;
};

/// The controller → manager → compiler pipeline behind a fake route-server
/// ADD-PATH session, with the periodic processor disabled so the bench
/// controls epoch boundaries (tests/property/epoch_batching_test idiom).
struct StormRig {
  sim::EventQueue queue;
  core::RulePortal portal;
  filter::EdgeRouter router;
  core::QosConfigCompiler qos;
  TimedCompiler compiler;
  std::unique_ptr<bgp::Session> server;
  std::unique_ptr<core::BlackholingController> controller;
  std::unique_ptr<core::NetworkManager> manager;

  StormRig(int member_ports, bool batch_apply)
      : router("er-lixp", filter::TcamLimits{1'000'000, 1'000'000, 0, 0}),
        qos(router),
        compiler(queue, qos) {
    for (int i = 0; i < member_ports; ++i) {
      router.add_port(kPortBase + static_cast<filter::PortId>(i), 10'000.0);
    }
    auto [server_side, controller_side] = bgp::MakeLink(queue);
    bgp::SessionConfig server_config;
    server_config.local_asn = kIxpAsn;
    server_config.router_id = net::IPv4Address(10, 99, 0, 1);
    server_config.add_path_tx = true;
    server = std::make_unique<bgp::Session>(queue, server_side, server_config);
    server->start();

    core::BlackholingController::Config config;
    config.ixp_asn = kIxpAsn;
    config.process_interval_s = 1e9;  // Epochs are driven by the bench.
    controller = std::make_unique<core::BlackholingController>(
        queue, controller_side, config,
        [member_ports](bgp::Asn asn)
            -> std::optional<core::BlackholingController::PortDirectoryEntry> {
          if (asn < kMemberBase || asn >= kMemberBase + static_cast<bgp::Asn>(member_ports)) {
            return std::nullopt;
          }
          return core::BlackholingController::PortDirectoryEntry{
              kPortBase + static_cast<filter::PortId>(asn - kMemberBase), 10'000.0};
        },
        &portal);

    core::NetworkManager::Config nm_config;  // Paper pacing: 4.33/s, MBS 5.
    nm_config.batch_apply = batch_apply;
    manager = std::make_unique<core::NetworkManager>(queue, compiler, nm_config);
    controller->set_change_sink(
        [this](core::ConfigChange change) { manager->enqueue(std::move(change)); });
    queue.run_until(sim::Seconds(1.0));
  }

  /// Byte-exact dump of the realized data plane: every installed change key
  /// plus every per-port rule payload, in sorted order.
  [[nodiscard]] std::string dump() const {
    std::string out;
    std::vector<std::string> keys = qos.installed_keys();
    std::sort(keys.begin(), keys.end());
    for (const auto& key : keys) out += key + "\n";
    std::vector<filter::PortId> ports = router.ports();
    std::sort(ports.begin(), ports.end());
    for (const filter::PortId port : ports) {
      std::vector<std::string> rules;
      for (const auto& installed : router.policy(port).rules()) {
        rules.push_back(installed.rule.str());
      }
      std::sort(rules.begin(), rules.end());
      for (const auto& rule : rules) {
        out += "port" + std::to_string(port) + " " + rule + "\n";
      }
    }
    return out;
  }
};

/// One storm operation against member `index`: the initial signal, a modify
/// (re-announce with a shaping action), or the flap's withdraw.
struct StormOp {
  enum class Kind { kAnnounce, kModify, kWithdraw } kind = Kind::kAnnounce;
  int index = 0;
};

net::Prefix4 VictimPrefix(int index) {
  return net::Prefix4::Parse("100." + std::to_string(64 + index / 256) + "." +
                             std::to_string(index % 256) + ".1/32")
      .value();
}

/// Four fine-grained match rules per signal — the paper's §5.3 idiom
/// (amplification service ports plus a protocol match), so one signaling
/// route expands into four data-plane changes on the victim's port.
core::Signal StormSignal(int index, bool modified) {
  core::Signal signal;
  signal.rules.push_back({core::RuleKind::kUdpSrcPort, net::kPortNtp});
  signal.rules.push_back({core::RuleKind::kUdpSrcPort, net::kPortDns});
  signal.rules.push_back({core::RuleKind::kUdpSrcPort, 19});  // chargen
  signal.rules.push_back({core::RuleKind::kProtocol, 17});
  if (modified) {
    // The modify flips drop -> shape (telemetry mode): every derived rule's
    // payload changes, so the per-signal path pays remove+install for each.
    signal.shape_rate_mbps = static_cast<double>(100 + (index % 8) * 100);
  }
  return signal;
}

void Announce(StormRig& rig, const StormOp& op) {
  bgp::UpdateMessage update;
  if (op.kind == StormOp::Kind::kWithdraw) {
    update.withdrawn = {{1, VictimPrefix(op.index)}};
  } else {
    update.attrs.origin = bgp::Origin::kIgp;
    update.attrs.as_path = {
        {bgp::AsPathSegment::Type::kSequence, {kMemberBase + static_cast<bgp::Asn>(op.index)}}};
    update.attrs.next_hop = net::IPv4Address(10, 99, 1, 1);
    update.attrs.extended_communities =
        EncodeSignal(kIxpAsn, StormSignal(op.index, op.kind == StormOp::Kind::kModify)).value();
    update.announced = {{1, VictimPrefix(op.index)}};
  }
  rig.server->announce(update);
}

/// Storm composition per 8 signaling members: 5 stay up unchanged, 2 modify
/// their signal within the epoch, 1 flaps (announce then withdraw) — the
/// churn mix of an attack onset overlapping a member session reset.
std::vector<StormOp> MakeStorm(int signals) {
  std::vector<StormOp> ops;
  for (int i = 0; i < signals; ++i) ops.push_back({StormOp::Kind::kAnnounce, i});
  for (int i = 0; i < signals; ++i) {
    if (i % 8 == 1 || i % 8 == 3) ops.push_back({StormOp::Kind::kModify, i});
  }
  for (int i = 0; i < signals; ++i) {
    if (i % 8 == 7) ops.push_back({StormOp::Kind::kWithdraw, i});
  }
  return ops;
}

struct RunResult {
  double convergence_s = 0.0;  ///< Sim wall-clock, storm start -> last apply.
  double host_ms = 0.0;        ///< Host CPU flavor (not asserted on).
  std::string dump;
  std::uint64_t applied = 0;
  std::uint64_t compiler_invocations = 0;
  std::uint64_t coalesced = 0;
  std::uint64_t epochs = 0;
};

RunResult RunStorm(int members, int signals, bool batched) {
  const auto host_start = std::chrono::steady_clock::now();
  StormRig rig(members, /*batch_apply=*/batched);
  const auto storm = MakeStorm(signals);
  const double t0 = rig.queue.now().count();

  if (batched) {
    // The whole storm lands in the RIB, then ONE diff epoch coalesces every
    // per-prefix delta into a single change-set emission.
    for (const auto& op : storm) Announce(rig, op);
    rig.queue.run_until(rig.queue.now() + sim::Seconds(0.5));
    rig.controller->process();
  } else {
    // Per-signal: a process() round after every single update, exactly as a
    // naive per-update RIB diff would run.
    for (const auto& op : storm) {
      Announce(rig, op);
      rig.queue.run_until(rig.queue.now() + sim::Seconds(0.05));
      rig.controller->process();
    }
  }
  rig.queue.run_until(sim::Seconds(t0 + 100'000.0));

  RunResult result;
  result.convergence_s = rig.compiler.last_apply_s() - t0;
  result.host_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - host_start)
                       .count();
  result.dump = rig.dump();
  result.applied = rig.manager->stats().applied;
  result.compiler_invocations = rig.compiler.invocations();
  result.coalesced = rig.manager->stats().coalesced;
  result.epochs = rig.controller->stats().epochs_full +
                  rig.controller->stats().epochs_incremental;
  const bool drained = rig.manager->in_flight().empty() &&
                       rig.manager->dead_letter().empty() &&
                       rig.router.tcam_release_errors() == 0;
  if (!drained) {
    std::printf("ERROR: %s path did not drain cleanly (in-flight %zu, dead-letter %zu, "
                "tcam release errors %llu)\n",
                batched ? "batched" : "per-signal", rig.manager->in_flight().size(),
                rig.manager->dead_letter().size(),
                static_cast<unsigned long long>(rig.router.tcam_release_errors()));
    std::exit(1);
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const int members = smoke ? 100 : 800;
  const int signals = smoke ? 32 : 256;

  std::printf("==============================================================\n");
  std::printf("Signal storm — batched vs per-signal control-plane convergence\n");
  std::printf("extends: CoNEXT'18 Stellar paper §4.4/Fig. 10b to L-IXP scale\n");
  std::printf("==============================================================\n");
  std::printf("members: %d  concurrent signals: %d (4 rules each; per 8 members:\n"
              "5 steady / 2 modify / 1 flap within the storm epoch)%s\n\n",
              members, signals, smoke ? "  [smoke]" : "");

  const RunResult serial = RunStorm(members, signals, /*batched=*/false);
  const RunResult batched = RunStorm(members, signals, /*batched=*/true);

  std::printf("%-34s %14s %14s\n", "", "per-signal", "batched");
  std::printf("%-34s %14s %14s\n", "diff epochs (process rounds)",
              std::to_string(serial.epochs).c_str(), std::to_string(batched.epochs).c_str());
  std::printf("%-34s %14s %14s\n", "changes applied",
              std::to_string(serial.applied).c_str(), std::to_string(batched.applied).c_str());
  std::printf("%-34s %14s %14s\n", "compiler invocations (tokens)",
              std::to_string(serial.compiler_invocations).c_str(),
              std::to_string(batched.compiler_invocations).c_str());
  std::printf("%-34s %14s %14s\n", "queue-level coalesced changes",
              std::to_string(serial.coalesced).c_str(),
              std::to_string(batched.coalesced).c_str());
  std::printf("%-34s %14s %14s\n", "convergence wall-clock [s, sim]",
              util::FormatDouble(serial.convergence_s, 1).c_str(),
              util::FormatDouble(batched.convergence_s, 1).c_str());
  std::printf("%-34s %14s %14s\n", "host CPU [ms]",
              util::FormatDouble(serial.host_ms, 0).c_str(),
              util::FormatDouble(batched.host_ms, 0).c_str());

  const double speedup = serial.convergence_s / batched.convergence_s;
  const bool identical = serial.dump == batched.dump;
  std::printf("\nspeedup (per-signal / batched): %sx\n",
              util::FormatDouble(speedup, 1).c_str());
  std::printf("final installed rule sets byte-identical: %s (%zu bytes)\n",
              identical ? "YES" : "NO", serial.dump.size());

  bool ok = true;
  if (!identical) {
    std::printf("FAIL: differential assert — batched and per-signal rule sets diverge\n"
                "      (per-signal %zu bytes, batched %zu bytes)\n",
                serial.dump.size(), batched.dump.size());
    ok = false;
  }
  if (speedup < 5.0) {
    std::printf("FAIL: batched apply must be >=5x faster than per-signal, got %sx\n",
                util::FormatDouble(speedup, 2).c_str());
    ok = false;
  }
  if (ok) {
    std::printf("\ngates: batched >=5x faster AND byte-identical rule sets: PASS\n");
  }
  return ok ? 0 : 1;
}
