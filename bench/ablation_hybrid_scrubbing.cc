// Extension (paper §6, "Combining Advanced Blackholing with other
// solutions"): Stellar as a pre-filter for a traffic scrubbing service.
//
// "Attacks with known patterns can be dropped at no cost. This option frees
//  resources for expensive deep packet inspection [...] Advanced Blackholing
//  can drastically reduce the cost of scrubbing services without sacrificing
//  their efficiency."
//
// Scenario: a two-vector attack — an NTP reflection flood (trivial L4
// signature) plus a low-signature UDP flood towards a game-server port that
// only DPI can separate from player traffic. Three defenses:
//   1. TSS alone          — everything detours through the scrubbing center,
//                           the victim pays per GB for the whole flood;
//   2. Stellar alone      — the NTP vector dies at the IXP for free, but the
//                           DPI-only vector reaches the victim;
//   3. Stellar + TSS      — Stellar removes the known pattern, only the
//                           residual is diverted: same protection as TSS
//                           alone at a fraction of the cost.
#include "bench_common.hpp"

#include "mitigation/scrubbing.hpp"

namespace {

using namespace stellar;
using namespace stellar::bench;

constexpr double kBin = 10.0;
constexpr double kDuration = 600.0;
constexpr std::uint16_t kGamePort = 3074;

bool IsAttack(const net::FlowKey& key) {
  if (key.proto != net::IpProto::kUdp) return false;
  // Ground truth for scoring the (imperfect) DPI classifier.
  return key.src_port == net::kPortNtp || (key.dst_port == kGamePort && key.src_port >= 1024);
}

struct Outcome {
  double attack_delivered_pct = 0.0;
  double benign_delivered_pct = 0.0;
  double scrubbing_cost = 0.0;
  double scrubbed_gb = 0.0;
};

enum class Defense { kTssOnly, kStellarOnly, kHybrid };

Outcome Run(Defense defense) {
  sim::EventQueue queue;
  ixp::Ixp ixp(queue);
  ixp::MemberSpec victim_spec;
  victim_spec.asn = 65001;
  victim_spec.port_capacity_mbps = 2'000.0;
  victim_spec.address_space = P4("100.10.10.0/24");
  auto& victim = ixp.add_member(victim_spec);
  ixp::MemberSpec src_spec;
  src_spec.asn = 65002;
  src_spec.port_capacity_mbps = 100'000.0;
  src_spec.address_space = P4("60.2.0.0/20");
  ixp.add_member(src_spec);
  core::StellarSystem stellar(ixp);
  ixp.settle(30.0);

  const net::IPv4Address target(100, 10, 10, 10);
  auto sources = ixp.source_members(65001);
  util::Rng rng(66);

  // Vector 1: NTP reflection, 1200 Mbps — a known L4 pattern.
  traffic::AmplificationAttackGenerator::Config ntp_config;
  ntp_config.target = target;
  ntp_config.peak_mbps = 1'200.0;
  ntp_config.start_s = 0.0;
  ntp_config.end_s = kDuration;
  ntp_config.ramp_s = 1.0;
  traffic::AmplificationAttackGenerator ntp(ntp_config, sources, 67);

  if (defense != Defense::kTssOnly) {
    core::Signal signal;
    signal.rules.push_back({core::RuleKind::kUdpSrcPort, net::kPortNtp});
    core::SignalAdvancedBlackholing(victim, ixp.route_server(),
                                    net::Prefix4::HostRoute(target), signal);
    ixp.settle(10.0);
  }

  mitigation::ScrubbingService tss(mitigation::ScrubbingService::Config{});
  Outcome out;
  double attack_offered = 0.0;
  double attack_delivered = 0.0;
  double benign_offered = 0.0;
  double benign_delivered = 0.0;

  for (double t = 0.0; t < kDuration; t += kBin) {
    queue.run_until(queue.now() + sim::Seconds(kBin));
    std::vector<net::FlowSample> offered = ntp.bin(t, kBin);
    // Vector 2: low-signature UDP flood on the game port (400 Mbps) mixed
    // with genuine player traffic on the same port (200 Mbps).
    for (int i = 0; i < 24; ++i) {
      net::FlowSample s;
      s.key.src_mac = sources[0].mac;
      s.key.src_ip = traffic::RandomHostIn(sources[0].address_space, rng);
      s.key.dst_ip = target;
      s.key.proto = net::IpProto::kUdp;
      const bool is_player = i < 8;
      s.key.src_port = is_player ? 1000 : static_cast<std::uint16_t>(rng.uniform_int(1024, 65535));
      s.key.dst_port = kGamePort;
      s.bytes = static_cast<std::uint64_t>((is_player ? 200.0 / 8 : 400.0 / 16) * 1e6 / 8.0 * kBin);
      offered.push_back(s);
    }

    for (const auto& s : offered) {
      (IsAttack(s.key) ? attack_offered : benign_offered) += s.mbps(kBin);
    }

    std::vector<net::FlowSample> delivered;
    if (defense == Defense::kTssOnly) {
      auto scrubbed = tss.scrub(offered, kBin, IsAttack);
      out.scrubbing_cost += scrubbed.cost;
      delivered = std::move(scrubbed.clean);
    } else if (defense == Defense::kStellarOnly) {
      auto report = ixp.deliver_bin(offered, kBin);
      delivered = std::move(report.delivered);
    } else {
      // Hybrid: the IXP drops the known pattern, the residual detours
      // through the scrubbing center.
      auto report = ixp.deliver_bin(offered, kBin);
      auto scrubbed = tss.scrub(report.delivered, kBin, IsAttack);
      out.scrubbing_cost += scrubbed.cost;
      delivered = std::move(scrubbed.clean);
    }
    for (const auto& s : delivered) {
      double bytes_gb = 0.0;
      (void)bytes_gb;
      (IsAttack(s.key) ? attack_delivered : benign_delivered) += s.mbps(kBin);
    }
  }
  out.attack_delivered_pct = attack_delivered / attack_offered * 100.0;
  out.benign_delivered_pct = benign_delivered / benign_offered * 100.0;
  out.scrubbed_gb = out.scrubbing_cost / tss.config().cost_per_gb;
  return out;
}

}  // namespace

int main() {
  PrintHeader("Extension — Stellar as a scrubbing-service pre-filter",
              "CoNEXT'18 Stellar paper, Section 6 (discussion)");
  std::printf(
      "attack: 1200 Mbps NTP reflection (L4 signature) + 400 Mbps DPI-only\n"
      "flood on udp/%u; benign: 200 Mbps of real player traffic on the same\n"
      "port. Scrubbing fees are per GB carried to the center.\n\n",
      kGamePort);

  util::TextTable table({"defense", "attack delivered [%]", "benign delivered [%]",
                         "scrubbed volume [GB]", "scrubbing cost"});
  const Outcome tss_only = Run(Defense::kTssOnly);
  const Outcome stellar_only = Run(Defense::kStellarOnly);
  const Outcome hybrid = Run(Defense::kHybrid);
  auto add = [&table](const char* name, const Outcome& o) {
    table.add_row({name, util::FormatDouble(o.attack_delivered_pct, 1),
                   util::FormatDouble(o.benign_delivered_pct, 1),
                   util::FormatDouble(o.scrubbed_gb, 1),
                   util::FormatDouble(o.scrubbing_cost, 2)});
  };
  add("TSS only", tss_only);
  add("Stellar only", stellar_only);
  add("Stellar + TSS", hybrid);
  std::printf("%s\n", table.str().c_str());

  std::printf(
      "takeaway: the hybrid keeps TSS-grade protection (%.1f%% attack residue)\n"
      "while cutting the scrubbed volume by %.0f%% — the known-pattern flood\n"
      "never leaves the IXP, so it is never billed.\n",
      hybrid.attack_delivered_pct,
      (1.0 - hybrid.scrubbed_gb / tss_only.scrubbed_gb) * 100.0);
  return 0;
}
