// Fig. 10(c), closed loop: the same booter attack as fig10c_stellar_attack,
// but with ZERO manual signal injection. An AutoMitigator (src/detect/)
// watches the victim member's delivered traffic, detects the NTP reflection
// flood against its EWMA/MAD baseline, synthesizes the UDP src-port 123
// signature, signals shape-200Mbps (telemetry phase), escalates to drop when
// the attack persists, and withdraws once the rule counters go quiet — the
// paper's §6 "combining Stellar with DDoS detection for fully automated
// mitigation".
//
// Reported: detection latency (attack start -> trigger, and -> first rule
// effective), rules emitted, residual attack Mbps per phase, and benign
// collateral (the §5.2 invariant: benign per-IP traffic untouched).
//
// `--smoke` runs a reduced configuration (fewer members, shorter horizon)
// and exits non-zero unless the closed loop succeeds — the CI sanitizer
// smoke-test mode (tools/ci_sanitize.sh).
#include <cstring>
#include <fstream>
#include <string>

#include "bench_common.hpp"
#include "detect/engine.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

bool WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path);
  if (!out) return false;
  out << contents;
  return out.good();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace stellar;
  using namespace stellar::bench;

  bool smoke = false;
  std::string obs_dir;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--obs-out=", 10) == 0) {
      obs_dir = argv[i] + 10;
    }
  }

  PrintHeader("Fig 10(c) closed loop — automated detection + rule synthesis",
              "CoNEXT'18 Stellar paper, Section 5.3 / Section 6 (future work)");

  BooterExperiment::Params params;
  if (smoke) {
    params.members = 120;
    params.attack_end_s = 420.0;
  }
  BooterExperiment exp(params);
  core::StellarSystem stellar_system(*exp.ixp);
  exp.ixp->settle(10.0);

  detect::AutoMitigator::Config auto_config;
  auto_config.shape_rate_mbps = 200.0;  // Paper: 200 Mbps telemetry rate.
  auto_config.escalate_after_s = smoke ? 40.0 : 100.0;
  auto_config.withdraw_quiet_s = 40.0;
  auto& mitigator = detect::EnableAutoMitigation(stellar_system, kVictimAsn, auto_config);

  const double kBin = 20.0;
  const double horizon_s = smoke ? 520.0 : 880.0;

  std::vector<double> ts;
  std::vector<double> attack_mbps;
  std::vector<double> benign_mbps;
  std::vector<double> peers;
  double peak_attack = 0.0;
  std::size_t peak_peers = 0;
  double residual_mean = 0.0;
  int residual_n = 0;
  double benign_sum = 0.0;
  int benign_n = 0;
  double first_rule_effective_s = -1.0;
  double pre_attack_benign = 0.0;
  int pre_attack_n = 0;

  for (double t = 0.0; t <= horizon_s; t += kBin) {
    const auto bin = exp.run_bin(t, kBin);
    // Close the loop: the platform's delivered stream feeds the detector,
    // which reacts by signaling through the member's BGP session. Nothing
    // else in this loop touches the mitigation path.
    stellar_system.observe_bin(bin.delivered, t, kBin);

    ts.push_back(t);
    attack_mbps.push_back(bin.attack_mbps);
    benign_mbps.push_back(bin.benign_mbps);
    peers.push_back(static_cast<double>(bin.peers));

    if (t < params.attack_start_s) {
      pre_attack_benign += bin.benign_mbps;
      ++pre_attack_n;
    }
    if (t >= params.attack_start_s && t < params.attack_end_s) {
      peak_attack = std::max(peak_attack, bin.attack_mbps);
      peak_peers = std::max(peak_peers, bin.peers);
      benign_sum += bin.benign_mbps;
      ++benign_n;
    }
    const auto record = mitigator.mitigation(net::IPv4Address(exp.target));
    if (first_rule_effective_s < 0.0 && record &&
        bin.attack_mbps < 0.5 * params.attack_peak_mbps &&
        t > params.attack_start_s + kBin) {
      first_rule_effective_s = t;
    }
    // Residual: attack traffic still delivered once the drop phase is active.
    if (record && record->phase == detect::AutoMitigator::Phase::kDropping &&
        record->drop_signaled_at_s >= 0.0 && t >= record->drop_signaled_at_s + 2 * kBin &&
        t < params.attack_end_s) {
      residual_mean += bin.attack_mbps;
      ++residual_n;
    }
  }
  if (residual_n > 0) residual_mean /= residual_n;
  if (pre_attack_n > 0) pre_attack_benign /= pre_attack_n;
  const double benign_during = benign_n > 0 ? benign_sum / benign_n : 0.0;

  std::printf("%s\n",
              util::SeriesTable("t[s]", ts,
                                {{"attack delivered [Mbps]", attack_mbps},
                                 {"benign delivered [Mbps]", benign_mbps},
                                 {"#peers", peers}},
                                0)
                  .c_str());

  const auto& stats = mitigator.stats();
  const double detection_latency =
      stats.last_detection_s >= 0.0 ? stats.last_detection_s - params.attack_start_s : -1.0;
  std::printf("summary (no manual signals — everything below is automatic):\n");
  std::printf("  peak attack delivered      : %.0f Mbps from %zu peers\n", peak_attack,
              peak_peers);
  std::printf("  detections                 : %llu (trigger at t=%.0f s)\n",
              static_cast<unsigned long long>(stats.detections), stats.last_detection_s);
  std::printf("  detection latency          : %.0f s after attack start\n", detection_latency);
  std::printf("  first rules effective      : t=%.0f s\n", first_rule_effective_s);
  std::printf("  signals sent / rules       : %llu / %llu (escalations: %llu)\n",
              static_cast<unsigned long long>(stats.signals_sent),
              static_cast<unsigned long long>(stats.rules_emitted),
              static_cast<unsigned long long>(stats.escalations));
  std::printf("  residual attack (drop)     : %.1f Mbps (paper: close to zero)\n",
              residual_mean);
  std::printf("  benign during attack       : %.0f Mbps (pre-attack: %.0f — must match)\n",
              benign_during, pre_attack_benign);
  std::printf("  withdrawals after attack   : %llu (last at t=%.0f s)\n",
              static_cast<unsigned long long>(stats.withdrawals), stats.last_withdrawal_s);
  for (const auto& record : stellar_system.telemetry(kVictimAsn)) {
    std::printf("  telemetry %-40s matched=%.0f MB dropped=%.0f MB\n",
                record.rule.str().c_str(),
                static_cast<double>(record.counters.matched_bytes) / 1e6,
                static_cast<double>(record.counters.dropped_bytes) / 1e6);
  }

  // Signal-path latency breakdown (observability plane): every stage the
  // automatic mitigation signal crossed, from the victim's BGP announcement
  // to the installed edge-router rule, in sim time.
  const std::string trace_id = net::Prefix4::HostRoute(exp.target).str();
  const auto stages = obs::tracer().breakdown(trace_id);
  double delta_sum = 0.0;
  std::printf("signal path (%s):\n", trace_id.c_str());
  for (const auto& stage : stages) {
    std::printf("  %-20s t=%10.6f s  +%.6f s\n", stage.stage.c_str(), stage.at_s,
                stage.delta_s);
    delta_sum += stage.delta_s;
  }
  const double end_to_end =
      stages.empty() ? 0.0 : stages.back().at_s - stages.front().at_s;
  std::printf("  %-20s %.6f s (stage deltas sum to %.6f s)\n", "end-to-end", end_to_end,
              delta_sum);
  std::printf("journal: %zu events retained (%llu rule installs, %llu detector triggers)\n",
              obs::journal().events().size(),
              static_cast<unsigned long long>(obs::journal().count(obs::EventKind::kRuleInstalled)),
              static_cast<unsigned long long>(
                  obs::journal().count(obs::EventKind::kDetectorTriggered)));

  if (!obs_dir.empty()) {
    // Snapshot artifacts for CI: metrics (both expositions), the full trace
    // set, and the event journal.
    const bool wrote =
        WriteFile(obs_dir + "/stellar_metrics.prom", obs::registry().expose_text()) &&
        WriteFile(obs_dir + "/stellar_metrics.jsonl", obs::registry().snapshot_jsonl()) &&
        WriteFile(obs_dir + "/stellar_trace.csv", obs::tracer().csv()) &&
        WriteFile(obs_dir + "/stellar_journal.csv", obs::journal().csv());
    std::printf("obs snapshot -> %s: %s\n", obs_dir.c_str(), wrote ? "written" : "FAILED");
    if (!wrote) return 1;
  }

  const bool detected = stats.detections >= 1 && detection_latency >= 0.0;
  const bool mitigated = residual_n > 0 && residual_mean < 0.05 * peak_attack;
  const bool benign_ok = benign_during > 0.8 * pre_attack_benign;
  const bool no_flapping = stats.signals_sent <= 2 * stats.detections + stats.escalations;
  // Observability shape check: the trace covers the signal path (member
  // announce through config apply) and its deltas telescope to the
  // end-to-end latency within one sim tick.
  const bool trace_ok = stages.size() >= 4 && std::abs(delta_sum - end_to_end) <= 1e-6;
  const bool ok = detected && mitigated && benign_ok && no_flapping && trace_ok;
  std::printf("shape check: auto-detects, drives attack to ~0, benign untouched, "
              "signal path traced: %s\n",
              ok ? "YES (matches paper closed-loop)" : "NO");
  return smoke && !ok ? 1 : 0;
}
