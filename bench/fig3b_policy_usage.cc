// Fig. 3(b): "Usage of policy control for RTBH at L-IXP."
//
// For every blackholing announcement the paper classifies its audience —
// "All" route-server participants (93.97%), "All-k" (k peers excluded via
// scope communities: All-1 5.28%, All-4 0.13%, All-5 0.49%, All-18 0.03%),
// or targeted at specific peers only (0.06% / 0.03%).
//
// This bench drives a synthetic RTBH announcement stream with that scope mix
// through the real route server (members tag scope communities, the server
// logs each accepted blackhole event) and recomputes the distribution from
// the server-side event log — reproducing the measurement pipeline, and
// verifying the scope communities actually do what they claim on export.
#include <map>

#include "bench_common.hpp"

int main() {
  using namespace stellar;
  using namespace stellar::bench;

  PrintHeader("Fig 3(b) — RTBH audience scoping via policy-control communities",
              "CoNEXT'18 Stellar paper, Section 2.4, Figure 3(b)");

  sim::EventQueue queue;
  ixp::LargeIxpParams params;
  params.member_count = 40;
  params.rtbh_honor_fraction = 1.0;  // Irrelevant here; keep sessions simple.
  params.seed = 333;
  auto ixp = ixp::MakeLargeIxp(queue, params);
  auto& rs = ixp->route_server();

  // Ground-truth scope mix (paper's measured shares, used as the announcing
  // members' behaviour).
  struct Scope {
    std::string label;
    double share;
    int excluded;   ///< "All-k".
    int targeted;   ///< Announce-to-none plus k includes.
  };
  const std::vector<Scope> kScopes{
      {"All", 0.9397, 0, 0},   {"All-1", 0.0528, 1, 0}, {"All-5", 0.0049, 5, 0},
      {"All-4", 0.0013, 4, 0}, {"All-18", 0.0003, 18, 0}, {"AS 20", 0.0006, 0, 1},
      {"AS 21", 0.0003, 0, 2},
  };

  util::Rng rng(4242);
  constexpr int kAnnouncements = 10'000;
  std::vector<double> weights;
  for (const auto& s : kScopes) weights.push_back(s.share);

  const auto& members = ixp->members();
  for (int i = 0; i < kAnnouncements; ++i) {
    auto& member = *members[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(members.size()) - 1))];
    const Scope& scope = kScopes[rng.weighted_index(weights)];
    // A /32 inside the member's own space (IRR-valid).
    const net::Prefix4 target = net::Prefix4::HostRoute(
        traffic::RandomHostIn(member.info().address_space, rng));

    std::vector<bgp::Community> communities{bgp::kBlackhole};
    // Pick distinct peers to exclude/include.
    std::set<bgp::Asn> chosen;
    while (static_cast<int>(chosen.size()) < scope.excluded + scope.targeted) {
      const auto& peer = *members[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(members.size()) - 1))];
      if (peer.info().asn != member.info().asn) chosen.insert(peer.info().asn);
    }
    auto it = chosen.begin();
    for (int k = 0; k < scope.excluded; ++k) communities.push_back(rs.exclude_peer(*it++));
    if (scope.targeted > 0) {
      communities.push_back(rs.announce_to_none());
      for (int k = 0; k < scope.targeted; ++k) communities.push_back(rs.include_peer(*it++));
    }
    member.announce(target, communities);
    if (i % 200 == 0) ixp->settle(2.0);  // Keep sessions drained.
    member.withdraw(target);
  }
  ixp->settle(30.0);

  // Recompute the distribution from the route server's event log.
  std::map<std::string, int> counts;
  int total = 0;
  for (const auto& ev : rs.blackhole_events()) {
    if (ev.withdrawn) continue;
    std::string label;
    if (ev.announce_to_none) {
      label = ev.included_peers <= 1 ? "AS 20" : "AS 21";
    } else if (ev.excluded_peers == 0) {
      label = "All";
    } else {
      label = "All-" + std::to_string(ev.excluded_peers);
    }
    ++counts[label];
    ++total;
  }

  util::TextTable table(
      {"affected ASNs", "share of announcements [%]", "paper [%]", "events"});
  bool shape_ok = true;
  for (const auto& scope : kScopes) {
    const int n = counts.contains(scope.label) ? counts.at(scope.label) : 0;
    const double measured = 100.0 * n / total;
    const double expected = scope.share * 100.0;
    if (std::abs(measured - expected) > std::max(0.5, expected * 0.5)) shape_ok = false;
    table.add_row({scope.label, util::FormatDouble(measured, 2),
                   util::FormatDouble(expected, 2), std::to_string(n)});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("total accepted blackhole announcements: %d\n", total);
  std::printf(
      "shape check: >93%% of RTBH announcements address ALL route-server\n"
      "participants (the one-to-all signaling problem Stellar removes): %s\n",
      counts["All"] > static_cast<int>(0.9 * total) && shape_ok ? "YES (matches paper)" : "NO");
  return 0;
}
