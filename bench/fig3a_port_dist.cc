// Fig. 3(a): "UDP source ports of blackholed traffic across RTBH events with
// 95% confidence intervals."
//
// The paper computes the relative UDP-source-port distribution of all
// traffic towards blackholed prefixes during two weeks (Apr 2018) and
// compares it to the distribution of all other (non-blackholed) traffic,
// testing each difference with a one-tailed Welch's unequal-variances t-test
// at significance level 0.02.
//
// Paper's shape: ports 0, 123, 389, 11211, 53, 19 dominate blackholed
// traffic (all amplification services); other traffic shows none of them.
// UDP is 99.94% of blackholed bytes; TCP 86.81% of other bytes. All
// differences significant.
#include <map>

#include "bench_common.hpp"

#include "util/stats.hpp"

namespace {

using namespace stellar;
using namespace stellar::bench;

// Attack-vector mix across RTBH events, calibrated to the paper's bars
// (multi-vector attacks are common, so one event can carry several).
struct Vector {
  net::AmplificationService service;
  double event_probability;  ///< Chance this vector participates in an event.
  double mean_share;         ///< Typical volume share when present.
};

const std::vector<Vector> kVectors{
    {net::kAmplificationServices[0], 0.55, 0.45},  // port 0 fragments ride along.
    {net::kAmplificationServices[1], 0.50, 0.55},  // NTP.
    {net::kAmplificationServices[2], 0.25, 0.45},  // LDAP.
    {net::kAmplificationServices[3], 0.20, 0.50},  // memcached.
    {net::kAmplificationServices[4], 0.25, 0.35},  // DNS.
    {net::kAmplificationServices[5], 0.15, 0.35},  // chargen.
};

}  // namespace

int main() {
  PrintHeader("Fig 3(a) — UDP source ports of blackholed vs other traffic",
              "CoNEXT'18 Stellar paper, Section 2.3, Figure 3(a)");

  util::Rng rng(20180413);
  constexpr int kEvents = 240;  // Two weeks of RTBH events at L-IXP scale.
  const std::vector<std::uint16_t> kPorts{0, 123, 389, 11211, 53, 19};

  std::vector<traffic::SourceMember> sources;
  for (int i = 0; i < 64; ++i) {
    sources.push_back(traffic::SourceMember{
        net::MacAddress::ForRouter(static_cast<std::uint32_t>(60001 + i)),
        net::Prefix4(net::IPv4Address((60u << 24) | (static_cast<std::uint32_t>(i) << 12)), 20)});
  }

  // Per-event port-share samples for blackholed traffic.
  std::map<std::uint16_t, std::vector<double>> rtbh_samples;
  double rtbh_udp_bytes = 0.0;
  double rtbh_tcp_bytes = 0.0;
  double rtbh_total_bytes = 0.0;

  for (int event = 0; event < kEvents; ++event) {
    traffic::FlowCollector collector(60.0);
    const net::IPv4Address victim(
        100, 10, static_cast<std::uint8_t>(rng.uniform_int(0, 255)),
        static_cast<std::uint8_t>(rng.uniform_int(1, 254)));
    // Event volume is heavy-tailed; duration 10-120 minutes.
    const double peak_mbps = std::min(40'000.0, rng.pareto(400.0, 1.1));
    const double duration_s = rng.uniform(600.0, 7200.0);

    std::vector<std::unique_ptr<traffic::AmplificationAttackGenerator>> attack_vectors;
    std::vector<double> weights;
    for (const auto& vec : kVectors) {
      if (!rng.chance(vec.event_probability)) continue;
      traffic::AmplificationAttackGenerator::Config config;
      config.target = victim;
      config.service = vec.service;
      config.peak_mbps = peak_mbps * vec.mean_share * rng.uniform(0.5, 1.5);
      config.start_s = 0.0;
      config.end_s = duration_s;
      config.ramp_s = 30.0;
      config.reflectors = 200;
      config.source_members = 30;
      attack_vectors.push_back(std::make_unique<traffic::AmplificationAttackGenerator>(
          config, sources, rng.engine()()));
    }
    if (attack_vectors.empty()) continue;

    // Residual legitimate traffic towards the blackholed /32: tiny, because
    // TCP cannot complete once the return path is blackholed (§2.3) — only
    // stray control packets remain.
    traffic::WebTrafficGenerator::Config residual_config;
    residual_config.target = victim;
    residual_config.rate_mbps = peak_mbps * 0.0006;
    traffic::WebTrafficGenerator residual(residual_config, sources, rng.engine()());

    for (double t = 0.0; t < duration_s; t += 60.0) {
      for (auto& gen : attack_vectors) collector.ingest(gen->bin(t, 60.0));
      collector.ingest(residual.bin(t, 60.0));
    }

    const auto shares = collector.udp_src_port_shares(0.0, duration_s);
    for (std::uint16_t port : kPorts) {
      const auto it = shares.find(port);
      rtbh_samples[port].push_back(it == shares.end() ? 0.0 : it->second * 100.0);
    }
    const auto [udp, tcp] = collector.protocol_shares(0.0, duration_s);
    const double total = static_cast<double>(collector.total_bytes(0.0, duration_s));
    rtbh_udp_bytes += udp * total;
    rtbh_tcp_bytes += tcp * total;
    rtbh_total_bytes += total;
  }

  // "Other" (non-blackholed) traffic: daily samples of the general mix.
  std::map<std::uint16_t, std::vector<double>> other_samples;
  double other_udp = 0.0;
  double other_tcp = 0.0;
  traffic::BackgroundTrafficGenerator::Config bg_config;
  bg_config.dst_space = P4("50.0.0.0/8");
  traffic::BackgroundTrafficGenerator background(bg_config, sources, 77);
  constexpr int kOtherWindows = 240;
  for (int window = 0; window < kOtherWindows; ++window) {
    traffic::FlowCollector collector(60.0);
    for (int minute = 0; minute < 10; ++minute) {
      collector.ingest(background.bin(window * 600.0 + minute * 60.0, 60.0));
    }
    const auto shares = collector.udp_src_port_shares(0.0, 1e9);
    for (std::uint16_t port : kPorts) {
      const auto it = shares.find(port);
      other_samples[port].push_back(it == shares.end() ? 0.0 : it->second * 100.0);
    }
    const auto [udp, tcp] = collector.protocol_shares(0.0, 1e9);
    other_udp += udp;
    other_tcp += tcp;
  }
  other_udp /= kOtherWindows;
  other_tcp /= kOtherWindows;

  // Render the figure: mean share with 95% CI per port, both series, plus
  // the Welch test the paper applies.
  util::TextTable table({"UDP src port", "service", "RTBH traffic [%] (95% CI)",
                         "other traffic [%] (95% CI)", "Welch t", "p (one-tailed)",
                         "significant @0.02"});
  bool all_significant = true;
  for (std::size_t i = 0; i < kPorts.size(); ++i) {
    const std::uint16_t port = kPorts[i];
    const auto& a = rtbh_samples[port];
    const auto& b = other_samples[port];
    const auto welch = util::WelchTTest(a, b);
    all_significant = all_significant && welch.p_value_one_tailed < 0.02;
    table.add_row({std::to_string(port), std::string(net::kAmplificationServices[i].name),
                   util::FormatDouble(util::Mean(a), 1) + " +/- " +
                       util::FormatDouble(util::ConfidenceHalfWidth95(a), 1),
                   util::FormatDouble(util::Mean(b), 2) + " +/- " +
                       util::FormatDouble(util::ConfidenceHalfWidth95(b), 2),
                   util::FormatDouble(welch.t_statistic, 1),
                   util::FormatDouble(welch.p_value_one_tailed, 4),
                   welch.p_value_one_tailed < 0.02 ? "yes" : "no"});
  }
  std::printf("%s\n", table.str().c_str());

  std::printf("protocol mix:\n");
  std::printf("  RTBH traffic : UDP %.2f %%, TCP %.2f %% (paper: 99.94 / 0.03)\n",
              rtbh_udp_bytes / rtbh_total_bytes * 100.0,
              rtbh_tcp_bytes / rtbh_total_bytes * 100.0);
  std::printf("  other traffic: UDP %.2f %%, TCP %.2f %% (paper: TCP 86.81)\n",
              other_udp * 100.0, other_tcp * 100.0);
  std::printf(
      "shape check: amplification ports dominate RTBH traffic, absent in other,"
      " all differences significant: %s\n",
      all_significant ? "YES (matches paper)" : "NO");
  return 0;
}
