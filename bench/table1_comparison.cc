// Table 1: "Advanced Blackholing vs. DDoS mitigation solutions."
//
// The paper scores TSS / ACL / RTBH / Flowspec / Advanced Blackholing
// qualitatively across ten dimensions. This harness *measures* the scores:
// the same 1 Gbps NTP amplification attack against a 1 Gbps-port member is
// run under every technique, and the table's marks are derived from the
// measured attack suppression, collateral damage, reaction time and cost
// alongside the techniques' structural properties.
//
// Expected shape (paper Table 1): only Advanced Blackholing combines
// granularity, simple signaling, no cooperation, no resource sharing,
// telemetry, scalability and low cost.
#include <cstdio>

#include "mitigation/comparison.hpp"

int main() {
  std::printf("==============================================================\n");
  std::printf("Table 1 — Advanced Blackholing vs. DDoS mitigation solutions\n");
  std::printf("reproduces: CoNEXT'18 Stellar paper, Table 1 (Section 1.1)\n");
  std::printf("==============================================================\n");
  std::printf(
      "scenario: 1 Gbps NTP amplification vs member with 1 Gbps port,\n"
      "          400 Mbps benign web traffic, mitigation triggered mid-attack\n\n");

  stellar::mitigation::ComparisonConfig config;
  const auto rows = stellar::mitigation::RunComparison(config);
  std::printf("%s\n", stellar::mitigation::RenderComparisonTable(rows).c_str());
  std::printf(
      "legend: y = advantage, n = disadvantage, . = neutral (paper uses "
      "check/cross/dot)\n");
  return 0;
}
