// Fig. 10(b): "Required queuing for different announcement frequencies."
//
// Configuration changes generated from a (synthetic) day of the L-IXP RTBH
// service are replayed into the blackholing manager's token-bucket queue
// with dequeue rate limits of 4/s and 5/s (around the measured sustainable
// 4.33/s). The observable is each change's queueing delay — the time from
// blackholing signal to configuration.
//
// Paper's shape: ~70% of configuration changes wait well below 1 s; the 95th
// percentile stays below 100 s; a 5/s limit dominates 4/s.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

#include "core/network_manager.hpp"
#include "util/ascii.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using namespace stellar;

/// No-op hardware: this experiment isolates the queue.
class NullCompiler final : public core::ConfigCompiler {
 public:
  util::Result<void> apply(const core::ConfigChange&) override { return {}; }
  [[nodiscard]] std::string_view name() const override { return "null"; }
};

}  // namespace

int main() {
  std::printf("==============================================================\n");
  std::printf("Fig 10(b) — config-change queueing delay CDF at 4/s and 5/s\n");
  std::printf("reproduces: CoNEXT'18 Stellar paper, Section 5.1, Figure 10(b)\n");
  std::printf("==============================================================\n");

  util::Rng rng(1006);
  const std::vector<double> arrivals = stellar::bench::MakeRtbhConfigChangeTrace(rng);
  std::printf("replayed configuration changes: %zu over 24 h\n\n", arrivals.size());

  const std::vector<double> kCdfPoints{0.5, 1.0, 3.0, 10.0, 30.0, 100.0, 300.0, 1000.0};
  std::vector<std::pair<std::string, std::vector<double>>> series;
  std::vector<std::string> summaries;
  bool shape_ok = true;

  for (const double rate : {4.0, 5.0}) {
    sim::EventQueue queue;
    NullCompiler compiler;
    core::NetworkManager::Config config;
    config.rate_per_s = rate;
    config.max_burst_size = 5.0;  // The configurable MBS of §4.4.
    core::NetworkManager manager(queue, compiler, config);
    for (const double at : arrivals) {
      queue.schedule_at(sim::Seconds(at), [&manager] {
        core::ConfigChange change;
        change.key = "trace";
        manager.enqueue(std::move(change));
      });
    }
    queue.run();
    const auto& waits = manager.stats().waiting_times_s;
    util::EmpiricalCdf cdf{std::vector<double>(waits.begin(), waits.end())};

    std::vector<double> values;
    for (double x : kCdfPoints) values.push_back(cdf.at(x));
    series.emplace_back(util::FormatDouble(rate, 0) + "/s  P(X<=x)", values);

    const double p70 = cdf.at(1.0);
    const double p95_value = cdf.quantile(0.95);
    summaries.push_back("rate " + util::FormatDouble(rate, 0) + "/s: P(wait<=1s) = " +
                        util::FormatDouble(p70 * 100.0, 1) + " %, p95 = " +
                        util::FormatDouble(p95_value, 1) + " s, max = " +
                        util::FormatDouble(cdf.quantile(1.0), 1) + " s");
    if (rate == 4.0) {
      shape_ok = shape_ok && p70 >= 0.70 && p95_value < 100.0;
    }
  }

  std::printf("%s\n", util::SeriesTable("waiting time x [s]", kCdfPoints, series, 3).c_str());
  for (const auto& s : summaries) std::printf("%s\n", s.c_str());
  std::printf(
      "\nshape check: >=70%% of changes below 1 s and 95th percentile below\n"
      "100 s at the 4/s limit: %s\n",
      shape_ok ? "YES (matches paper)" : "NO");
  return 0;
}
