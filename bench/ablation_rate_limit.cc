// Ablation: the network manager's token-bucket rate limit (paper §4.4).
//
// The dequeue rate trades configuration latency against control-plane CPU:
// faster draining means less queueing for blackholing signals but more CPU
// spent on configuration tasks — and the ER enforces a hard 15% budget.
// This sweep shows why the paper operates at ~4.33/s (the budget boundary)
// and evaluates 4/s and 5/s in Fig. 10(b).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

#include "core/network_manager.hpp"
#include "filter/cpu.hpp"
#include "util/ascii.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using namespace stellar;

class NullCompiler final : public core::ConfigCompiler {
 public:
  util::Result<void> apply(const core::ConfigChange&) override { return {}; }
  [[nodiscard]] std::string_view name() const override { return "null"; }
};

}  // namespace

int main() {
  std::printf("==============================================================\n");
  std::printf("Ablation — configuration-change rate limit sweep\n");
  std::printf("reproduces: design choice behind CoNEXT'18 Stellar §4.4 / Fig 10\n");
  std::printf("==============================================================\n");

  util::Rng rng(1006);  // Same trace as fig10b for comparability.
  const auto arrivals = stellar::bench::MakeRtbhConfigChangeTrace(rng);
  const filter::ControlPlaneCpu cpu;

  util::TextTable table({"rate [1/s]", "sustained CPU at rate [%]", "within 15% budget",
                         "P(wait<=1s) [%]", "p95 wait [s]", "max wait [s]"});
  for (const double rate : {1.0, 2.0, 3.0, 4.0, 4.33, 5.0, 6.0, 8.0}) {
    sim::EventQueue queue;
    NullCompiler compiler;
    core::NetworkManager::Config config;
    config.rate_per_s = rate;
    config.max_burst_size = 5.0;
    core::NetworkManager manager(queue, compiler, config);
    for (const double at : arrivals) {
      queue.schedule_at(sim::Seconds(at), [&manager] {
        core::ConfigChange change;
        change.key = "trace";
        manager.enqueue(std::move(change));
      });
    }
    queue.run();
    const auto& waits = manager.stats().waiting_times_s;
    util::EmpiricalCdf cdf{std::vector<double>(waits.begin(), waits.end())};
    const double sustained_cpu = cpu.expected_percent(rate);
    table.add_row({util::FormatDouble(rate, 2), util::FormatDouble(sustained_cpu, 1),
                   sustained_cpu <= 15.0 ? "yes" : "NO",
                   util::FormatDouble(cdf.at(1.0) * 100.0, 1),
                   util::FormatDouble(cdf.quantile(0.95), 1),
                   util::FormatDouble(cdf.quantile(1.0), 1)});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "takeaway: below ~4/s queueing delays blow up during signal bursts;\n"
      "above ~4.33/s the ER's 15%% control-plane budget is violated. The\n"
      "paper's operating point sits exactly at the budget boundary.\n");
  return 0;
}
