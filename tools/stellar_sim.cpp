// stellar_sim — command-line attack/mitigation simulator.
//
// Runs a booter-style amplification attack against a member of a synthetic
// L-IXP and applies the selected mitigation, printing the delivered-traffic
// time series and a summary. The CLI twin of the figure benches, for ad-hoc
// what-if runs.
//
//   stellar_sim [--members N] [--honor F] [--attack-mbps X] [--web-mbps X]
//               [--port-mbps X] [--duration S] [--trigger S] [--bin S]
//               [--technique none|rtbh|stellar-drop|stellar-shape]
//               [--shape-mbps X] [--seed N]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>

#include "core/stellar.hpp"
#include "mitigation/rtbh.hpp"
#include "net/ports.hpp"
#include "traffic/generators.hpp"

using namespace stellar;

namespace {

struct Options {
  int members = 200;
  double honor_fraction = 0.30;
  double attack_mbps = 1'000.0;
  double web_mbps = 100.0;
  double port_mbps = 10'000.0;
  double duration_s = 600.0;
  double trigger_s = 200.0;
  double bin_s = 20.0;
  double shape_mbps = 200.0;
  std::uint64_t seed = 1;
  std::string technique = "stellar-drop";
};

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--members N] [--honor F] [--attack-mbps X] [--web-mbps X]\n"
               "          [--port-mbps X] [--duration S] [--trigger S] [--bin S]\n"
               "          [--technique none|rtbh|stellar-drop|stellar-shape]\n"
               "          [--shape-mbps X] [--seed N]\n",
               argv0);
  std::exit(2);
}

Options ParseArgs(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        Usage(argv[0]);
      }
      return argv[++i];
    };
    const char* arg = argv[i];
    if (!std::strcmp(arg, "--members")) opts.members = std::atoi(need_value(arg));
    else if (!std::strcmp(arg, "--honor")) opts.honor_fraction = std::atof(need_value(arg));
    else if (!std::strcmp(arg, "--attack-mbps")) opts.attack_mbps = std::atof(need_value(arg));
    else if (!std::strcmp(arg, "--web-mbps")) opts.web_mbps = std::atof(need_value(arg));
    else if (!std::strcmp(arg, "--port-mbps")) opts.port_mbps = std::atof(need_value(arg));
    else if (!std::strcmp(arg, "--duration")) opts.duration_s = std::atof(need_value(arg));
    else if (!std::strcmp(arg, "--trigger")) opts.trigger_s = std::atof(need_value(arg));
    else if (!std::strcmp(arg, "--bin")) opts.bin_s = std::atof(need_value(arg));
    else if (!std::strcmp(arg, "--shape-mbps")) opts.shape_mbps = std::atof(need_value(arg));
    else if (!std::strcmp(arg, "--seed"))
      opts.seed = static_cast<std::uint64_t>(std::atoll(need_value(arg)));
    else if (!std::strcmp(arg, "--technique")) opts.technique = need_value(arg);
    else if (!std::strcmp(arg, "--help") || !std::strcmp(arg, "-h")) Usage(argv[0]);
    else {
      std::fprintf(stderr, "unknown flag %s\n", arg);
      Usage(argv[0]);
    }
  }
  if (opts.technique != "none" && opts.technique != "rtbh" &&
      opts.technique != "stellar-drop" && opts.technique != "stellar-shape") {
    std::fprintf(stderr, "unknown technique '%s'\n", opts.technique.c_str());
    Usage(argv[0]);
  }
  if (opts.members < 2 || opts.bin_s <= 0.0 || opts.duration_s <= 0.0) Usage(argv[0]);
  return opts;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = ParseArgs(argc, argv);
  constexpr bgp::Asn kVictimAsn = 63'000;

  sim::EventQueue queue;
  ixp::LargeIxpParams params;
  params.member_count = opts.members;
  params.rtbh_honor_fraction = opts.honor_fraction;
  params.seed = opts.seed;
  auto ixp = ixp::MakeLargeIxp(queue, params);
  ixp::MemberSpec victim_spec;
  victim_spec.asn = kVictimAsn;
  victim_spec.name = "victim";
  victim_spec.port_capacity_mbps = opts.port_mbps;
  victim_spec.address_space = net::Prefix4::Parse("100.10.10.0/24").value();
  auto& victim = ixp->add_member(victim_spec);
  const bool use_stellar = opts.technique.rfind("stellar", 0) == 0;
  std::unique_ptr<core::StellarSystem> stellar;
  if (use_stellar) stellar = std::make_unique<core::StellarSystem>(*ixp);
  ixp->settle(60.0);

  const net::IPv4Address target(100, 10, 10, 10);
  auto sources = ixp->source_members(kVictimAsn);
  auto attack_config =
      traffic::BooterNtpAttack(target, opts.attack_mbps, 60.0, opts.duration_s);
  traffic::AmplificationAttackGenerator attack(attack_config, sources, opts.seed + 1);
  traffic::WebTrafficGenerator::Config web_config;
  web_config.target = target;
  web_config.rate_mbps = opts.web_mbps;
  traffic::WebTrafficGenerator web(web_config, sources, opts.seed + 2);

  std::printf("# %d members, honor=%.0f%%, attack %.0f Mbps, technique=%s\n", opts.members,
              opts.honor_fraction * 100.0, opts.attack_mbps, opts.technique.c_str());
  std::printf("%8s %14s %14s %8s\n", "t[s]", "attack[Mbps]", "benign[Mbps]", "peers");

  bool triggered = false;
  const double base = queue.now().count();
  for (double t = 0.0; t < opts.duration_s; t += opts.bin_s) {
    queue.run_until(sim::Seconds(base + t));
    if (!triggered && t >= opts.trigger_s) {
      triggered = true;
      if (opts.technique == "rtbh") {
        mitigation::TriggerRtbh(victim, net::Prefix4::HostRoute(target));
      } else if (use_stellar) {
        core::Signal signal;
        signal.rules.push_back({core::RuleKind::kUdpSrcPort, net::kPortNtp});
        if (opts.technique == "stellar-shape") signal.shape_rate_mbps = opts.shape_mbps;
        core::SignalAdvancedBlackholing(victim, ixp->route_server(),
                                        net::Prefix4::HostRoute(target), signal);
      }
      queue.run_until(sim::Seconds(base + t + 2.0));
    }
    std::vector<net::FlowSample> offered = web.bin(t, opts.bin_s);
    for (auto& s : attack.bin(t, opts.bin_s)) offered.push_back(s);
    const auto report = ixp->deliver_bin(offered, opts.bin_s);
    double attack_delivered = 0.0;
    double benign_delivered = 0.0;
    std::set<net::MacAddress> peers;
    for (const auto& f : report.delivered) {
      peers.insert(f.key.src_mac);
      if (f.key.proto == net::IpProto::kUdp && f.key.src_port == net::kPortNtp) {
        attack_delivered += f.mbps(opts.bin_s);
      } else {
        benign_delivered += f.mbps(opts.bin_s);
      }
    }
    std::printf("%8.0f %14.0f %14.0f %8zu%s\n", t, attack_delivered, benign_delivered,
                peers.size(), triggered && t - opts.trigger_s < opts.bin_s ? "   <- trigger" : "");
  }

  if (opts.technique == "rtbh") {
    const auto compliance = mitigation::MeasureCompliance(
        *ixp, net::Prefix4::HostRoute(target), kVictimAsn);
    std::printf("# RTBH honored by %zu/%zu members (%.0f%%)\n", compliance.honoring,
                compliance.total, compliance.honored_fraction() * 100.0);
  }
  if (stellar) {
    for (const auto& record : stellar->telemetry(kVictimAsn)) {
      std::printf("# telemetry %s matched=%.0fMB dropped=%.0fMB passed=%.0fMB\n",
                  record.rule.str().c_str(),
                  static_cast<double>(record.counters.matched_bytes) / 1e6,
                  static_cast<double>(record.counters.dropped_bytes) / 1e6,
                  static_cast<double>(record.counters.delivered_bytes) / 1e6);
    }
  }
  return 0;
}
