#!/usr/bin/env bash
# CI entry point: build the whole tree under ASan+UBSan and run the full test
# suite. Any sanitizer report aborts the run (-fno-sanitize-recover=all), so
# release-build-only bug classes — counter underflow, out-of-range reads, UB
# behind NDEBUG'd asserts — fail the job mechanically instead of corrupting
# results silently.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-sanitize}
JOBS=${JOBS:-$(nproc)}

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSTELLAR_SANITIZE=ON
cmake --build "$BUILD_DIR" -j "$JOBS"

export ASAN_OPTIONS="detect_leaks=1:strict_string_checks=1"
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

# Closed-loop smoke test: the automated detection bench (detect -> synthesize
# -> signal -> install -> withdraw) must succeed end-to-end under the
# sanitizers; it exits non-zero if any stage of the loop fails — including the
# observability shape check (signal-path trace present and telescoping).
# The obs snapshot (metrics exposition, signal-path trace, event journal)
# lands in $OBS_SNAPSHOT_DIR for the workflow to upload as an artifact.
OBS_SNAPSHOT_DIR=${OBS_SNAPSHOT_DIR:-"$BUILD_DIR"/obs-snapshot}
mkdir -p "$OBS_SNAPSHOT_DIR"
"$BUILD_DIR"/bench/fig10c_auto_detect --smoke --obs-out="$OBS_SNAPSHOT_DIR"

# Chaos sweep: rerun the fault-injection attack scenario under three distinct
# fault-plan seeds. ctest already ran the default seed set; this sweep pins
# each seed individually so a failure names the seed that broke recovery.
for seed in 1 2 3; do
  "$BUILD_DIR"/tests/chaos_test --seed="$seed"
done
