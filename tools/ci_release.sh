#!/usr/bin/env bash
# CI entry point: optimized Release build (-O2) with assert() forced on
# (STELLAR_FORCE_ASSERTS strips NDEBUG), full test suite, then the two
# scaling smoke gates:
#   - fig9_scaling --smoke   : TCAM frontier shape at 350 AND 800 member
#                              ports (the paper's L-IXP member scale);
#   - signal_storm --smoke   : batched control-plane apply >=5x faster than
#                              per-signal with byte-identical installed rule
#                              sets (differential assert).
# Both binaries exit non-zero when a gate fails, so the job fails
# mechanically. This catches the optimized-build bug class the sanitizer
# matrix can't: -O2 codegen differences and assert-guarded invariants that a
# plain NDEBUG Release build would compile out.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-release}
JOBS=${JOBS:-$(nproc)}

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=Release \
  -DSTELLAR_FORCE_ASSERTS=ON
cmake --build "$BUILD_DIR" -j "$JOBS"

ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

"$BUILD_DIR"/bench/fig9_scaling --smoke
"$BUILD_DIR"/bench/signal_storm --smoke
