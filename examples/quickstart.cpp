// Quickstart: the smallest end-to-end Stellar deployment.
//
//   1. Build an IXP (edge router + fabric + route server) and two members.
//   2. Deploy Stellar on it (controller + network manager + QoS compiler).
//   3. Launch an NTP amplification attack that congests the victim's port.
//   4. The victim announces its /32 with one BGP extended community —
//      IXP:2:123, "drop UDP source port 123" — and nothing else.
//   5. The attack dies at the IXP; the web traffic flows again.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>

#include "core/stellar.hpp"
#include "net/ports.hpp"

using namespace stellar;

int main() {
  // -- 1. The IXP platform ---------------------------------------------------
  sim::EventQueue clock;
  ixp::Ixp exchange(clock);  // Route server AS64500, blackhole IP, ER, fabric.

  ixp::MemberSpec victim_spec;
  victim_spec.asn = 65001;
  victim_spec.name = "victim.example";
  victim_spec.port_capacity_mbps = 1'000.0;  // 1 Gbps IXP port.
  victim_spec.address_space = net::Prefix4::Parse("100.10.10.0/24").value();
  ixp::MemberRouter& victim = exchange.add_member(victim_spec);

  ixp::MemberSpec peer_spec;
  peer_spec.asn = 65002;
  peer_spec.name = "transit.example";
  peer_spec.port_capacity_mbps = 100'000.0;
  peer_spec.address_space = net::Prefix4::Parse("60.2.0.0/20").value();
  ixp::MemberRouter& peer = exchange.add_member(peer_spec);

  // -- 2. Stellar on top -------------------------------------------------------
  core::StellarSystem stellar(exchange);
  exchange.settle(30.0);  // Let BGP sessions establish.
  std::printf("IXP up: %zu members, %zu routes at the route server\n",
              exchange.members().size(), exchange.route_server().adj_rib_in().size());

  // -- 3. Attack traffic -------------------------------------------------------
  const net::IPv4Address web_server(100, 10, 10, 10);
  auto flow = [&](net::IpProto proto, std::uint16_t src_port, std::uint16_t dst_port,
                  double mbps) {
    net::FlowSample s;
    s.key.src_mac = peer.info().mac;
    s.key.src_ip = net::IPv4Address(60, 2, 0, 99);
    s.key.dst_ip = web_server;
    s.key.proto = proto;
    s.key.src_port = src_port;
    s.key.dst_port = dst_port;
    s.bytes = static_cast<std::uint64_t>(mbps * 1e6 / 8.0);
    return s;
  };
  const std::vector<net::FlowSample> traffic{
      flow(net::IpProto::kUdp, net::kPortNtp, 7777, 2'000.0),  // NTP reflection.
      flow(net::IpProto::kTcp, 51'000, net::kPortHttps, 300.0),  // Real users.
  };

  auto before = exchange.deliver_bin(traffic, 1.0);
  double web_before = 0.0;
  for (const auto& f : before.delivered) {
    if (f.key.proto == net::IpProto::kTcp) web_before += f.mbps(1.0);
  }
  std::printf("under attack : port congested, web traffic down to %.0f of 300 Mbps\n",
              web_before);

  // -- 4. One BGP announcement mitigates it ------------------------------------
  core::Signal signal;
  signal.rules.push_back({core::RuleKind::kUdpSrcPort, net::kPortNtp});  // IXP:2:123.
  core::SignalAdvancedBlackholing(victim, exchange.route_server(),
                                  net::Prefix4::HostRoute(web_server), signal);
  exchange.settle(10.0);  // Controller decodes, network manager installs.

  // -- 5. Mitigated -------------------------------------------------------------
  auto after = exchange.deliver_bin(traffic, 1.0);
  double web_after = 0.0;
  for (const auto& f : after.delivered) {
    if (f.key.proto == net::IpProto::kTcp) web_after += f.mbps(1.0);
  }
  std::printf("with Stellar : %.0f Mbps of attack dropped at the IXP, web back to %.0f Mbps\n",
              after.rule_dropped_mbps, web_after);

  for (const auto& record : stellar.telemetry(victim.info().asn)) {
    std::printf("telemetry    : %s matched %.0f MB so far\n", record.rule.str().c_str(),
                static_cast<double>(record.counters.matched_bytes) / 1e6);
  }

  // Attack over? One withdraw removes the filter.
  core::WithdrawAdvancedBlackholing(victim, net::Prefix4::HostRoute(web_server));
  exchange.settle(10.0);
  std::printf("withdrawn    : %zu rules left on the victim port\n",
              exchange.edge_router().policy(victim.info().port).rule_count());
  return 0;
}
