// Applicability beyond IXPs (paper §6): "In an ISP context this can be the
// top-level route reflector [...] we argue that Stellar (by using alternative
// options) is deployable in other settings as well."
//
// Deployment sketch: an ISP's customers each sit behind an access port of the
// provider's edge router. The ISP's route reflector plays the route server's
// role (same import hygiene, same signal semantics), the blackholing
// controller maps a customer's signal to that customer's *access port*, and
// attack traffic from the ISP core never reaches the customer's access link.
#include <cstdio>

#include "core/stellar.hpp"
#include "net/ports.hpp"

using namespace stellar;

int main() {
  sim::EventQueue clock;
  // The "IXP" classes model any BGP-speaking platform with member ports: here
  // the members are the ISP's BGP customers and the "route server" is the
  // provider's top-level route reflector.
  ixp::Ixp::Config provider_config;
  provider_config.asn = 3320;  // The provider's ASN.
  ixp::Ixp provider(clock, provider_config);

  ixp::MemberSpec customer_spec;
  customer_spec.asn = 65010;
  customer_spec.name = "dsl-hosting-customer";
  customer_spec.port_capacity_mbps = 1'000.0;  // Access link.
  customer_spec.address_space = net::Prefix4::Parse("100.10.10.0/24").value();
  auto& customer = provider.add_member(customer_spec);

  ixp::MemberSpec core_spec;
  core_spec.asn = 65011;
  core_spec.name = "provider-core";  // Stand-in for the rest of the backbone.
  core_spec.port_capacity_mbps = 400'000.0;
  core_spec.address_space = net::Prefix4::Parse("60.2.0.0/20").value();
  auto& core = provider.add_member(core_spec);

  core::StellarSystem stellar(provider);
  provider.settle(30.0);

  std::printf("provider AS%u: route reflector up, %zu BGP customers, controller attached\n",
              provider.config().asn, provider.members().size());

  // A DNS amplification attack from the backbone towards the customer.
  const net::IPv4Address target(100, 10, 10, 20);
  auto flow = [&](net::IpProto proto, std::uint16_t src_port, double mbps) {
    net::FlowSample s;
    s.key.src_mac = core.info().mac;
    s.key.src_ip = net::IPv4Address(60, 2, 0, 7);
    s.key.dst_ip = target;
    s.key.proto = proto;
    s.key.src_port = src_port;
    s.key.dst_port = proto == net::IpProto::kTcp ? 443 : 40'000;
    s.bytes = static_cast<std::uint64_t>(mbps * 1e6 / 8.0);
    return s;
  };
  const std::vector<net::FlowSample> traffic{
      flow(net::IpProto::kUdp, net::kPortDns, 3'000.0),
      flow(net::IpProto::kTcp, 50'000, 200.0),
  };

  const auto before = provider.deliver_bin(traffic, 1.0);
  std::printf("attack       : %.0f Mbps offered, access link delivers %.0f Mbps "
              "(congested)\n",
              before.offered_mbps, before.delivered_mbps);

  // The customer signals its provider — same extended community, addressed
  // to the provider's namespace (3320:2:53).
  core::Signal signal;
  signal.rules.push_back({core::RuleKind::kUdpSrcPort, net::kPortDns});
  core::SignalAdvancedBlackholing(customer, provider.route_server(),
                                  net::Prefix4::HostRoute(target), signal);
  provider.settle(10.0);

  const auto after = provider.deliver_bin(traffic, 1.0);
  std::printf("with Stellar : %.0f Mbps dropped at the provider edge, customer "
              "receives %.0f Mbps of clean traffic\n",
              after.rule_dropped_mbps, after.delivered_mbps);
  for (const auto& record : stellar.telemetry(customer.info().asn)) {
    std::printf("telemetry    : rule on access port %u — %s\n", record.port,
                record.rule.str().c_str());
  }
  std::printf(
      "\nsame control plane, different substrate: the reflector plays the\n"
      "route server, access ports play member ports (paper Section 6).\n");
  return 0;
}
