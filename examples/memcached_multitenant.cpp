// The Fig. 2(c) motivation as a runnable scenario: a hosting company's IP is
// shared by many tenants (web shops, a streaming service). A memcached
// amplification attack hits the IP. Classic RTBH can only sacrifice the IP —
// all tenants go dark. Stellar's udp/11211 filter removes the attack with
// zero collateral.
//
// "Indeed, the potential of collateral damage is even worse if an IP is
//  shared among multiple co-location services and/or across tenants, e.g.,
//  at a cloud provider." — paper §2.3
#include <cstdio>

#include "core/stellar.hpp"
#include "mitigation/rtbh.hpp"
#include "net/ports.hpp"
#include "traffic/collector.hpp"
#include "traffic/generators.hpp"

using namespace stellar;

namespace {

struct Hoster {
  sim::EventQueue clock;
  std::unique_ptr<ixp::Ixp> exchange;
  ixp::MemberRouter* hosting = nullptr;
  net::IPv4Address shared_ip{net::IPv4Address(100, 10, 10, 10)};
  std::unique_ptr<traffic::WebTrafficGenerator> tenants;
  std::unique_ptr<traffic::AmplificationAttackGenerator> attack;

  Hoster() {
    ixp::LargeIxpParams params;
    params.member_count = 80;
    params.rtbh_honor_fraction = 1.0;  // Best case FOR RTBH: everyone honors.
    params.seed = 7;
    exchange = ixp::MakeLargeIxp(clock, params);
    ixp::MemberSpec spec;
    spec.asn = 63'100;
    spec.name = "hosting-co";
    spec.port_capacity_mbps = 10'000.0;
    spec.address_space = net::Prefix4::Parse("100.10.10.0/24").value();
    hosting = &exchange->add_member(spec);
    exchange->settle(60.0);

    auto sources = exchange->source_members(spec.asn);
    traffic::WebTrafficGenerator::Config web;
    web.target = shared_ip;
    web.rate_mbps = 900.0;  // All tenants combined.
    tenants = std::make_unique<traffic::WebTrafficGenerator>(web, sources, 11);

    traffic::AmplificationAttackGenerator::Config memcached;
    memcached.target = shared_ip;
    memcached.service = net::kAmplificationServices[3];  // udp/11211, BAF ~10000x.
    memcached.peak_mbps = 40'000.0;  // The 2018-04-29 incident peaked at 40 Gbps.
    memcached.start_s = 0.0;
    memcached.end_s = 1e9;
    memcached.ramp_s = 1.0;
    attack = std::make_unique<traffic::AmplificationAttackGenerator>(memcached, sources, 12);
  }

  /// Runs one bin and reports tenant (non-attack) Mbps that survived.
  double tenant_mbps(double t) {
    clock.run_until(sim::Seconds(clock.now().count() + 1.0));
    std::vector<net::FlowSample> offered = tenants->bin(t, 1.0);
    for (auto& s : attack->bin(t, 1.0)) offered.push_back(s);
    const auto report = exchange->deliver_bin(offered, 1.0);
    double out = 0.0;
    for (const auto& f : report.delivered) {
      if (!(f.key.proto == net::IpProto::kUdp &&
            f.key.src_port == net::kPortMemcached)) {
        out += f.mbps(1.0);
      }
    }
    return out;
  }
};

}  // namespace

int main() {
  std::printf("multi-tenant IP under a 40 Gbps memcached amplification attack\n");
  std::printf("tenants offer 900 Mbps of legitimate traffic on the shared IP\n\n");

  {
    Hoster h;
    std::printf("no mitigation : tenants get %6.0f Mbps (port congested)\n",
                h.tenant_mbps(10.0));
  }
  {
    Hoster h;
    mitigation::TriggerRtbh(*h.hosting, net::Prefix4::HostRoute(h.shared_ip));
    h.exchange->settle(10.0);
    std::printf("classic RTBH  : tenants get %6.0f Mbps (the IP is sacrificed — every\n"
                "                tenant is offline even though all peers honored the signal)\n",
                h.tenant_mbps(10.0));
  }
  {
    Hoster h;
    core::StellarSystem stellar(*h.exchange);
    h.exchange->settle(10.0);
    core::Signal signal;
    signal.rules.push_back({core::RuleKind::kUdpSrcPort, net::kPortMemcached});
    core::SignalAdvancedBlackholing(*h.hosting, h.exchange->route_server(),
                                    net::Prefix4::HostRoute(h.shared_ip), signal);
    h.exchange->settle(10.0);
    std::printf("Stellar       : tenants get %6.0f Mbps (udp/11211 dropped at the IXP,\n"
                "                zero collateral damage)\n",
                h.tenant_mbps(10.0));
  }
  return 0;
}
