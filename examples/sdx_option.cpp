// The SDN/SDX realization of the network manager (paper §4.4 "Option 2",
// demoed on the SDX platform in the authors' SOSR'17 work [25]).
//
// Everything above the network manager is unchanged: the same controller,
// the same abstract ConfigChanges. Only the compiler differs — OpenFlow-like
// flow-mods into a match-action table with per-flow counters instead of
// vendor QoS policies. This example drives the SDN pipeline directly and
// shows flow entries, priorities, metering, and the table-full condition.
#include <cstdio>

#include "core/network_manager.hpp"
#include "core/sdn.hpp"
#include "util/ascii.hpp"
#include "net/ports.hpp"

using namespace stellar;

int main() {
  sim::EventQueue clock;
  core::FlowTable table(/*capacity=*/3);  // Tiny on purpose: show table-full.
  core::SdnConfigCompiler compiler(table);
  core::NetworkManager manager(clock, compiler, {});

  auto change = [](const char* key, core::RuleKind kind, std::uint16_t value,
                   double shape_mbps = 0.0) {
    core::ConfigChange c;
    c.op = core::ConfigChange::Op::kInstall;
    c.member = 65001;
    c.port = 1;
    c.key = key;
    const auto criteria = core::ToMatchCriteria(
        {kind, value}, net::Prefix4::Parse("100.10.10.10/32").value());
    c.rule.match = criteria.value();
    c.rule.action = shape_mbps > 0.0 ? filter::FilterAction::kShape
                                     : filter::FilterAction::kDrop;
    c.rule.shape_rate_mbps = shape_mbps;
    return c;
  };

  manager.enqueue(change("drop-ntp", core::RuleKind::kUdpSrcPort, net::kPortNtp));
  manager.enqueue(change("meter-dns", core::RuleKind::kUdpSrcPort, net::kPortDns, 200.0));
  manager.enqueue(change("drop-udp", core::RuleKind::kProtocol, 17));
  manager.enqueue(change("one-too-many", core::RuleKind::kUdpSrcPort, 19));
  clock.run_until(sim::Seconds(10.0));

  std::printf("flow table (%zu/%zu entries), %llu applied, %llu rejected:\n", table.size(),
              table.capacity(),
              static_cast<unsigned long long>(manager.stats().applied),
              static_cast<unsigned long long>(manager.stats().failed));
  for (std::uint64_t cookie = 1; cookie <= 3; ++cookie) {
    if (const core::FlowEntry* e = table.entry(cookie)) {
      const std::string meter =
          e->action == filter::FilterAction::kShape
              ? " meter=" + util::FormatDouble(e->meter_rate_mbps, 0) + "Mbps"
              : "";
      std::printf("  cookie=%llu prio=%u %s %s%s\n",
                  static_cast<unsigned long long>(e->cookie), e->priority,
                  std::string(ToString(e->action)).c_str(), e->match.str().c_str(),
                  meter.c_str());
    }
  }
  if (!manager.stats().failure_codes.empty()) {
    std::printf("  rejected: %s (admission control must respect the HIB)\n",
                manager.stats().failure_codes[0].c_str());
  }

  // Push traffic through the table: priorities pick the most specific rule.
  auto flow = [](net::IpProto proto, std::uint16_t src_port, double mbps) {
    net::FlowSample s;
    s.key.src_ip = net::IPv4Address(9, 9, 9, 9);
    s.key.dst_ip = net::IPv4Address(100, 10, 10, 10);
    s.key.proto = proto;
    s.key.src_port = src_port;
    s.key.dst_port = 5555;
    s.bytes = static_cast<std::uint64_t>(mbps * 1e6 / 8.0);
    s.packets = s.bytes / 1200;
    return s;
  };
  const std::vector<net::FlowSample> traffic{
      flow(net::IpProto::kUdp, net::kPortNtp, 500.0),   // Hits drop-ntp, not drop-udp.
      flow(net::IpProto::kUdp, net::kPortDns, 600.0),   // Metered to 200.
      flow(net::IpProto::kUdp, 30'000, 100.0),          // Coarse drop-udp.
      flow(net::IpProto::kTcp, 443, 300.0),             // Forwarded.
  };
  const auto result = table.apply(traffic, 10'000.0, 1.0);
  std::printf("\ndata plane: offered %.0f, delivered %.0f, dropped %.0f, metered away %.0f Mbps\n",
              result.offered_mbps, result.delivered_mbps, result.rule_dropped_mbps,
              result.shaper_dropped_mbps);
  std::printf("per-flow counters (the telemetry SDN gives for free):\n");
  for (std::uint64_t cookie = 1; cookie <= 3; ++cookie) {
    if (const core::FlowEntry* e = table.entry(cookie)) {
      std::printf("  cookie=%llu bytes=%llu packets=%llu\n",
                  static_cast<unsigned long long>(cookie),
                  static_cast<unsigned long long>(e->byte_count),
                  static_cast<unsigned long long>(e->packet_count));
    }
  }
  return 0;
}
