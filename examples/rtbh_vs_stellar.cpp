// RTBH vs Stellar, head to head — the paper's §2.4 and §5.3 experiments on
// the same synthetic L-IXP with realistic (30%) RTBH compliance. Prints the
// two time series side by side: classic blackholing barely dents the attack
// (most members never honor the /32), Stellar erases it.
#include <cstdio>

#include "core/stellar.hpp"
#include "mitigation/rtbh.hpp"
#include "net/ports.hpp"
#include "traffic/generators.hpp"

using namespace stellar;

namespace {

struct Run {
  sim::EventQueue clock;
  std::unique_ptr<ixp::Ixp> exchange;
  ixp::MemberRouter* victim = nullptr;
  std::unique_ptr<core::StellarSystem> stellar;
  std::unique_ptr<traffic::AmplificationAttackGenerator> attack;
  net::IPv4Address target{net::IPv4Address(100, 10, 10, 10)};

  explicit Run(bool with_stellar) {
    ixp::LargeIxpParams params;
    params.member_count = 200;
    params.rtbh_honor_fraction = 0.30;  // Paper §2.4: ~70% do not honor.
    params.seed = 21;
    exchange = ixp::MakeLargeIxp(clock, params);
    ixp::MemberSpec spec;
    spec.asn = 63'000;
    spec.port_capacity_mbps = 10'000.0;
    spec.address_space = net::Prefix4::Parse("100.10.10.0/24").value();
    victim = &exchange->add_member(spec);
    if (with_stellar) stellar = std::make_unique<core::StellarSystem>(*exchange);
    exchange->settle(60.0);
    attack = std::make_unique<traffic::AmplificationAttackGenerator>(
        traffic::BooterNtpAttack(target, 1000.0, 30.0, 600.0),
        exchange->source_members(63'000), 22);
  }

  void mitigate() {
    if (stellar) {
      core::Signal signal;
      signal.rules.push_back({core::RuleKind::kUdpSrcPort, net::kPortNtp});
      core::SignalAdvancedBlackholing(*victim, exchange->route_server(),
                                      net::Prefix4::HostRoute(target), signal);
    } else {
      mitigation::TriggerRtbh(*victim, net::Prefix4::HostRoute(target));
    }
    exchange->settle(10.0);
  }

  double attack_mbps(double t) {
    clock.run_until(sim::Seconds(clock.now().count() + 30.0));
    const auto report = exchange->deliver_bin(attack->bin(t, 30.0), 30.0);
    double out = 0.0;
    for (const auto& f : report.delivered) out += f.mbps(30.0);
    return out;
  }
};

}  // namespace

int main() {
  Run rtbh(/*with_stellar=*/false);
  Run stellar_run(/*with_stellar=*/true);

  std::printf("booter NTP attack, ~1 Gbps, against the same IXP (30%% RTBH compliance)\n");
  std::printf("mitigation triggered at t=120 s\n\n");
  std::printf("t[s]   RTBH delivered[Mbps]   Stellar delivered[Mbps]\n");

  bool triggered = false;
  for (double t = 0.0; t <= 420.0; t += 30.0) {
    if (!triggered && t >= 120.0) {
      rtbh.mitigate();
      stellar_run.mitigate();
      triggered = true;
    }
    std::printf("%4.0f   %20.0f   %23.0f\n", t, rtbh.attack_mbps(t),
                stellar_run.attack_mbps(t));
  }

  const auto compliance = mitigation::MeasureCompliance(
      *rtbh.exchange, net::Prefix4::HostRoute(rtbh.target), 63'000);
  std::printf("\nRTBH compliance: %zu of %zu members honored the /32 (%.0f%%)\n",
              compliance.honoring, compliance.total,
              compliance.honored_fraction() * 100.0);
  std::printf("Stellar needed nobody's cooperation: one signal to the IXP.\n");
  return 0;
}
