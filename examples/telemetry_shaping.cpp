// Telemetry-driven mitigation lifecycle (paper §3.1 "Telemetry", §5.3).
//
// The classic RTBH dilemma: the victim cannot tell when the attack ends, so
// it "probes" — lifting the blackhole and eating renewed congestion if the
// attack is still on. Stellar solves this with the shaping action: a 200 Mbps
// telemetry trickle plus per-rule counters let the victim watch the attack
// end WITHOUT ever exposing itself, then withdraw confidently.
#include <cstdio>

#include "core/stellar.hpp"
#include "net/ports.hpp"
#include "traffic/generators.hpp"

using namespace stellar;

int main() {
  sim::EventQueue clock;
  ixp::Ixp exchange(clock);

  ixp::MemberSpec victim_spec;
  victim_spec.asn = 65001;
  victim_spec.port_capacity_mbps = 1'000.0;
  victim_spec.address_space = net::Prefix4::Parse("100.10.10.0/24").value();
  auto& victim = exchange.add_member(victim_spec);
  ixp::MemberSpec peer_spec;
  peer_spec.asn = 65002;
  peer_spec.port_capacity_mbps = 100'000.0;
  peer_spec.address_space = net::Prefix4::Parse("60.2.0.0/20").value();
  exchange.add_member(peer_spec);
  core::StellarSystem stellar(exchange);
  exchange.settle(30.0);

  const net::IPv4Address target(100, 10, 10, 10);
  auto sources = exchange.source_members(65001);
  traffic::AmplificationAttackGenerator::Config attack_config;
  attack_config.target = target;
  attack_config.peak_mbps = 2'000.0;
  attack_config.start_s = 0.0;
  attack_config.end_s = 180.0;  // The attacker gives up after 3 minutes.
  attack_config.ramp_s = 5.0;
  traffic::AmplificationAttackGenerator attack(attack_config, sources, 5);

  // Victim reacts at t=30 with a SHAPING signal: 200 Mbps telemetry budget.
  core::Signal shape;
  shape.rules.push_back({core::RuleKind::kUdpSrcPort, net::kPortNtp});
  shape.shape_rate_mbps = 200.0;
  core::SignalAdvancedBlackholing(victim, exchange.route_server(),
                                  net::Prefix4::HostRoute(target), shape);
  exchange.settle(10.0);

  std::printf("t[s]  matched[Mbps]  reaching victim[Mbps]  victim's view\n");
  std::uint64_t last_matched = 0;
  int quiet_bins = 0;
  bool withdrawn = false;
  for (double t = 0.0; t <= 300.0; t += 30.0) {
    clock.run_until(sim::Seconds(clock.now().count() + 30.0));
    const auto offered = attack.bin(t, 30.0);
    const auto report = exchange.deliver_bin(offered, 30.0);

    // The victim polls its per-rule telemetry — no need to lift anything.
    const auto records = stellar.telemetry(65001);
    const std::uint64_t matched =
        records.empty() ? last_matched : records[0].counters.matched_bytes;
    const double matched_mbps =
        static_cast<double>(matched - last_matched) * 8.0 / 1e6 / 30.0;
    last_matched = matched;

    const char* view = "attack ongoing, staying shaped";
    if (withdrawn) {
      view = "filter withdrawn, back to normal";
    } else if (matched_mbps < 1.0) {
      ++quiet_bins;
      view = "no attack bytes matched...";
      if (quiet_bins >= 2) {  // Two quiet minutes: it is over.
        core::WithdrawAdvancedBlackholing(victim, net::Prefix4::HostRoute(target));
        exchange.settle(10.0);
        withdrawn = true;
        view = "confirmed over -> withdrawing filter";
      }
    } else {
      quiet_bins = 0;
    }
    std::printf("%4.0f  %13.0f  %21.0f  %s\n", t, matched_mbps, report.delivered_mbps, view);
  }

  std::printf("\nrules left on the victim port: %zu\n",
              exchange.edge_router().policy(victim.info().port).rule_count());
  std::printf("the victim never exposed itself to the full attack: the shaped\n"
              "200 Mbps telemetry trickle plus counters showed the attack end.\n");
  return 0;
}
