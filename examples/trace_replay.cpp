// Replaying recorded flow data through the platform: instead of the synthetic
// generators, feed a CSV flow trace (the dialect of traffic/trace_io.hpp,
// trivially produced from an IPFIX/NetFlow export) through the IXP with a
// Stellar rule installed, and write the surviving traffic back out.
//
// Usage:
//   ./trace_replay                # generates a demo trace, replays it
//   ./trace_replay in.csv out.csv # replays your own capture
#include <cstdio>

#include "core/stellar.hpp"
#include "net/ports.hpp"
#include "traffic/generators.hpp"
#include "traffic/trace_io.hpp"

using namespace stellar;

namespace {

/// Builds a demo capture: one minute of web + NTP-reflection traffic.
std::vector<net::FlowSample> MakeDemoTrace(const std::vector<traffic::SourceMember>& sources,
                                           net::IPv4Address target) {
  traffic::WebTrafficGenerator::Config web_config;
  web_config.target = target;
  web_config.rate_mbps = 300.0;
  traffic::WebTrafficGenerator web(web_config, sources, 21);
  traffic::AmplificationAttackGenerator::Config attack_config;
  attack_config.target = target;
  attack_config.peak_mbps = 900.0;
  attack_config.start_s = 20.0;
  attack_config.end_s = 60.0;
  attack_config.ramp_s = 5.0;
  traffic::AmplificationAttackGenerator attack(attack_config, sources, 22);

  std::vector<net::FlowSample> trace;
  for (double t = 0.0; t < 60.0; t += 10.0) {
    for (auto& s : web.bin(t, 10.0)) trace.push_back(s);
    for (auto& s : attack.bin(t, 10.0)) trace.push_back(s);
  }
  return trace;
}

}  // namespace

int main(int argc, char** argv) {
  sim::EventQueue clock;
  ixp::Ixp exchange(clock);
  ixp::MemberSpec victim_spec;
  victim_spec.asn = 65001;
  victim_spec.port_capacity_mbps = 1'000.0;
  victim_spec.address_space = net::Prefix4::Parse("100.10.10.0/24").value();
  auto& victim = exchange.add_member(victim_spec);
  ixp::MemberSpec src_spec;
  src_spec.asn = 65002;
  src_spec.port_capacity_mbps = 100'000.0;
  src_spec.address_space = net::Prefix4::Parse("60.2.0.0/20").value();
  exchange.add_member(src_spec);
  core::StellarSystem stellar(exchange);
  exchange.settle(30.0);
  const net::IPv4Address target(100, 10, 10, 10);

  // 1. Load (or synthesize) the capture.
  std::vector<net::FlowSample> trace;
  if (argc >= 2) {
    auto loaded = traffic::ReadFlowCsvFile(argv[1]);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot read %s: %s\n", argv[1], loaded.error().message.c_str());
      return 1;
    }
    trace = std::move(*loaded);
    std::printf("loaded %zu flow samples from %s\n", trace.size(), argv[1]);
  } else {
    trace = MakeDemoTrace(exchange.source_members(65001), target);
    std::printf("synthesized a demo capture: %zu flow samples over 60 s\n", trace.size());
  }

  // 2. Install the mitigation.
  core::Signal signal;
  signal.rules.push_back({core::RuleKind::kUdpSrcPort, net::kPortNtp});
  core::SignalAdvancedBlackholing(victim, exchange.route_server(),
                                  net::Prefix4::HostRoute(target), signal);
  exchange.settle(10.0);

  // 3. Replay bin by bin (the trace's time_s field selects the bin).
  constexpr double kBin = 10.0;
  std::map<std::int64_t, std::vector<net::FlowSample>> bins;
  for (const auto& s : trace) bins[static_cast<std::int64_t>(s.time_s / kBin)].push_back(s);
  std::vector<net::FlowSample> survivors;
  double offered = 0.0;
  double dropped = 0.0;
  for (const auto& [index, flows] : bins) {
    const auto report = exchange.deliver_bin(flows, kBin);
    offered += report.offered_mbps;
    dropped += report.rule_dropped_mbps;
    for (auto s : report.delivered) {
      s.time_s = static_cast<double>(index) * kBin;
      survivors.push_back(std::move(s));
    }
  }
  std::printf("replayed %zu bins: offered %.0f Mbps-bins, dropped %.0f by the rule,\n"
              "%zu samples survived\n",
              bins.size(), offered, dropped, survivors.size());

  // 4. Write the post-mitigation trace.
  const std::string out_path = argc >= 3 ? argv[2] : "/tmp/stellar_replay_out.csv";
  if (auto written = traffic::WriteFlowCsvFile(out_path, survivors); !written.ok()) {
    std::fprintf(stderr, "cannot write %s: %s\n", out_path.c_str(),
                 written.error().message.c_str());
    return 1;
  }
  std::printf("surviving traffic written to %s\n", out_path.c_str());
  return 0;
}
