# Empty dependencies file for stellar_sim_cli.
# This may be replaced when dependencies are built.
