file(REMOVE_RECURSE
  "CMakeFiles/stellar_sim_cli.dir/stellar_sim.cpp.o"
  "CMakeFiles/stellar_sim_cli.dir/stellar_sim.cpp.o.d"
  "stellar_sim"
  "stellar_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stellar_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
