# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(stellar_sim_smoke "/root/repo/build/tools/stellar_sim" "--members" "10" "--duration" "150" "--trigger" "60" "--bin" "30" "--technique" "stellar-drop" "--attack-mbps" "300")
set_tests_properties(stellar_sim_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
