# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_tests[1]_include.cmake")
include("/root/repo/build/tests/net_tests[1]_include.cmake")
include("/root/repo/build/tests/sim_tests[1]_include.cmake")
include("/root/repo/build/tests/bgp_tests[1]_include.cmake")
include("/root/repo/build/tests/filter_tests[1]_include.cmake")
include("/root/repo/build/tests/traffic_tests[1]_include.cmake")
include("/root/repo/build/tests/ixp_tests[1]_include.cmake")
include("/root/repo/build/tests/core_tests[1]_include.cmake")
include("/root/repo/build/tests/mitigation_tests[1]_include.cmake")
include("/root/repo/build/tests/integration_tests[1]_include.cmake")
include("/root/repo/build/tests/property_tests[1]_include.cmake")
