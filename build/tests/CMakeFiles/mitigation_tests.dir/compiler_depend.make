# Empty compiler generated dependencies file for mitigation_tests.
# This may be replaced when dependencies are built.
