file(REMOVE_RECURSE
  "CMakeFiles/mitigation_tests.dir/mitigation/acl_test.cpp.o"
  "CMakeFiles/mitigation_tests.dir/mitigation/acl_test.cpp.o.d"
  "CMakeFiles/mitigation_tests.dir/mitigation/comparison_test.cpp.o"
  "CMakeFiles/mitigation_tests.dir/mitigation/comparison_test.cpp.o.d"
  "CMakeFiles/mitigation_tests.dir/mitigation/flowspec_deploy_test.cpp.o"
  "CMakeFiles/mitigation_tests.dir/mitigation/flowspec_deploy_test.cpp.o.d"
  "CMakeFiles/mitigation_tests.dir/mitigation/rtbh_test.cpp.o"
  "CMakeFiles/mitigation_tests.dir/mitigation/rtbh_test.cpp.o.d"
  "CMakeFiles/mitigation_tests.dir/mitigation/scrubbing_test.cpp.o"
  "CMakeFiles/mitigation_tests.dir/mitigation/scrubbing_test.cpp.o.d"
  "mitigation_tests"
  "mitigation_tests.pdb"
  "mitigation_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mitigation_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
