file(REMOVE_RECURSE
  "CMakeFiles/filter_tests.dir/filter/cpu_test.cpp.o"
  "CMakeFiles/filter_tests.dir/filter/cpu_test.cpp.o.d"
  "CMakeFiles/filter_tests.dir/filter/edge_router_test.cpp.o"
  "CMakeFiles/filter_tests.dir/filter/edge_router_test.cpp.o.d"
  "CMakeFiles/filter_tests.dir/filter/qos_test.cpp.o"
  "CMakeFiles/filter_tests.dir/filter/qos_test.cpp.o.d"
  "CMakeFiles/filter_tests.dir/filter/rule_test.cpp.o"
  "CMakeFiles/filter_tests.dir/filter/rule_test.cpp.o.d"
  "CMakeFiles/filter_tests.dir/filter/tcam_test.cpp.o"
  "CMakeFiles/filter_tests.dir/filter/tcam_test.cpp.o.d"
  "CMakeFiles/filter_tests.dir/filter/token_bucket_test.cpp.o"
  "CMakeFiles/filter_tests.dir/filter/token_bucket_test.cpp.o.d"
  "filter_tests"
  "filter_tests.pdb"
  "filter_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filter_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
