# Empty dependencies file for filter_tests.
# This may be replaced when dependencies are built.
