file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core/controller_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/controller_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/network_manager_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/network_manager_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/portal_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/portal_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/sdn_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/sdn_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/signal_large_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/signal_large_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/signal_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/signal_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/stellar_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/stellar_test.cpp.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
