file(REMOVE_RECURSE
  "CMakeFiles/ixp_tests.dir/ixp/fabric_test.cpp.o"
  "CMakeFiles/ixp_tests.dir/ixp/fabric_test.cpp.o.d"
  "CMakeFiles/ixp_tests.dir/ixp/ipv6_test.cpp.o"
  "CMakeFiles/ixp_tests.dir/ixp/ipv6_test.cpp.o.d"
  "CMakeFiles/ixp_tests.dir/ixp/irr_test.cpp.o"
  "CMakeFiles/ixp_tests.dir/ixp/irr_test.cpp.o.d"
  "CMakeFiles/ixp_tests.dir/ixp/ixp_test.cpp.o"
  "CMakeFiles/ixp_tests.dir/ixp/ixp_test.cpp.o.d"
  "CMakeFiles/ixp_tests.dir/ixp/member_test.cpp.o"
  "CMakeFiles/ixp_tests.dir/ixp/member_test.cpp.o.d"
  "CMakeFiles/ixp_tests.dir/ixp/route_refresh_test.cpp.o"
  "CMakeFiles/ixp_tests.dir/ixp/route_refresh_test.cpp.o.d"
  "CMakeFiles/ixp_tests.dir/ixp/route_server_test.cpp.o"
  "CMakeFiles/ixp_tests.dir/ixp/route_server_test.cpp.o.d"
  "ixp_tests"
  "ixp_tests.pdb"
  "ixp_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ixp_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
