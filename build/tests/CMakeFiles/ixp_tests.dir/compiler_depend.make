# Empty compiler generated dependencies file for ixp_tests.
# This may be replaced when dependencies are built.
