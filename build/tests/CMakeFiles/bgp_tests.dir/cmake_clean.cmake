file(REMOVE_RECURSE
  "CMakeFiles/bgp_tests.dir/bgp/flowspec_test.cpp.o"
  "CMakeFiles/bgp_tests.dir/bgp/flowspec_test.cpp.o.d"
  "CMakeFiles/bgp_tests.dir/bgp/message_test.cpp.o"
  "CMakeFiles/bgp_tests.dir/bgp/message_test.cpp.o.d"
  "CMakeFiles/bgp_tests.dir/bgp/rib_test.cpp.o"
  "CMakeFiles/bgp_tests.dir/bgp/rib_test.cpp.o.d"
  "CMakeFiles/bgp_tests.dir/bgp/session_test.cpp.o"
  "CMakeFiles/bgp_tests.dir/bgp/session_test.cpp.o.d"
  "CMakeFiles/bgp_tests.dir/bgp/wire_test.cpp.o"
  "CMakeFiles/bgp_tests.dir/bgp/wire_test.cpp.o.d"
  "bgp_tests"
  "bgp_tests.pdb"
  "bgp_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgp_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
