# Empty compiler generated dependencies file for traffic_tests.
# This may be replaced when dependencies are built.
