file(REMOVE_RECURSE
  "CMakeFiles/traffic_tests.dir/traffic/collector_test.cpp.o"
  "CMakeFiles/traffic_tests.dir/traffic/collector_test.cpp.o.d"
  "CMakeFiles/traffic_tests.dir/traffic/generators_test.cpp.o"
  "CMakeFiles/traffic_tests.dir/traffic/generators_test.cpp.o.d"
  "CMakeFiles/traffic_tests.dir/traffic/trace_io_test.cpp.o"
  "CMakeFiles/traffic_tests.dir/traffic/trace_io_test.cpp.o.d"
  "traffic_tests"
  "traffic_tests.pdb"
  "traffic_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
