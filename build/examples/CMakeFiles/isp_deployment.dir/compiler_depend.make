# Empty compiler generated dependencies file for isp_deployment.
# This may be replaced when dependencies are built.
