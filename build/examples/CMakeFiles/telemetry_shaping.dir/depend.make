# Empty dependencies file for telemetry_shaping.
# This may be replaced when dependencies are built.
