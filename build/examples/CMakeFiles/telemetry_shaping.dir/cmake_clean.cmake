file(REMOVE_RECURSE
  "CMakeFiles/telemetry_shaping.dir/telemetry_shaping.cpp.o"
  "CMakeFiles/telemetry_shaping.dir/telemetry_shaping.cpp.o.d"
  "telemetry_shaping"
  "telemetry_shaping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telemetry_shaping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
