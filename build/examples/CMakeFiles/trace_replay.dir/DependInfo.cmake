
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/trace_replay.cpp" "examples/CMakeFiles/trace_replay.dir/trace_replay.cpp.o" "gcc" "examples/CMakeFiles/trace_replay.dir/trace_replay.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mitigation/CMakeFiles/stellar_mitigation.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/stellar_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ixp/CMakeFiles/stellar_ixp.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/stellar_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/stellar_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/filter/CMakeFiles/stellar_filter.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/stellar_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/stellar_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/stellar_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
