file(REMOVE_RECURSE
  "CMakeFiles/memcached_multitenant.dir/memcached_multitenant.cpp.o"
  "CMakeFiles/memcached_multitenant.dir/memcached_multitenant.cpp.o.d"
  "memcached_multitenant"
  "memcached_multitenant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memcached_multitenant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
