# Empty dependencies file for memcached_multitenant.
# This may be replaced when dependencies are built.
