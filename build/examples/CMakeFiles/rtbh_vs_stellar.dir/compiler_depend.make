# Empty compiler generated dependencies file for rtbh_vs_stellar.
# This may be replaced when dependencies are built.
