# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for rtbh_vs_stellar.
