file(REMOVE_RECURSE
  "CMakeFiles/rtbh_vs_stellar.dir/rtbh_vs_stellar.cpp.o"
  "CMakeFiles/rtbh_vs_stellar.dir/rtbh_vs_stellar.cpp.o.d"
  "rtbh_vs_stellar"
  "rtbh_vs_stellar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtbh_vs_stellar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
