file(REMOVE_RECURSE
  "CMakeFiles/sdx_option.dir/sdx_option.cpp.o"
  "CMakeFiles/sdx_option.dir/sdx_option.cpp.o.d"
  "sdx_option"
  "sdx_option.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdx_option.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
