# Empty dependencies file for sdx_option.
# This may be replaced when dependencies are built.
