# Empty dependencies file for stellar_net.
# This may be replaced when dependencies are built.
