
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/aggregate.cpp" "src/net/CMakeFiles/stellar_net.dir/aggregate.cpp.o" "gcc" "src/net/CMakeFiles/stellar_net.dir/aggregate.cpp.o.d"
  "/root/repo/src/net/flow.cpp" "src/net/CMakeFiles/stellar_net.dir/flow.cpp.o" "gcc" "src/net/CMakeFiles/stellar_net.dir/flow.cpp.o.d"
  "/root/repo/src/net/ip.cpp" "src/net/CMakeFiles/stellar_net.dir/ip.cpp.o" "gcc" "src/net/CMakeFiles/stellar_net.dir/ip.cpp.o.d"
  "/root/repo/src/net/mac.cpp" "src/net/CMakeFiles/stellar_net.dir/mac.cpp.o" "gcc" "src/net/CMakeFiles/stellar_net.dir/mac.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/stellar_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
