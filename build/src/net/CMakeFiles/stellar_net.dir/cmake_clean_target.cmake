file(REMOVE_RECURSE
  "libstellar_net.a"
)
