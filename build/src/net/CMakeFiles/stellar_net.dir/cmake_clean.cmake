file(REMOVE_RECURSE
  "CMakeFiles/stellar_net.dir/aggregate.cpp.o"
  "CMakeFiles/stellar_net.dir/aggregate.cpp.o.d"
  "CMakeFiles/stellar_net.dir/flow.cpp.o"
  "CMakeFiles/stellar_net.dir/flow.cpp.o.d"
  "CMakeFiles/stellar_net.dir/ip.cpp.o"
  "CMakeFiles/stellar_net.dir/ip.cpp.o.d"
  "CMakeFiles/stellar_net.dir/mac.cpp.o"
  "CMakeFiles/stellar_net.dir/mac.cpp.o.d"
  "libstellar_net.a"
  "libstellar_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stellar_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
