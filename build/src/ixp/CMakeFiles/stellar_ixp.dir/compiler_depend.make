# Empty compiler generated dependencies file for stellar_ixp.
# This may be replaced when dependencies are built.
