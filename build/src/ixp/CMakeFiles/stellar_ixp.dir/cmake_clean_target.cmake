file(REMOVE_RECURSE
  "libstellar_ixp.a"
)
