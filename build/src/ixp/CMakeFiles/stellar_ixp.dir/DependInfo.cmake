
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ixp/fabric.cpp" "src/ixp/CMakeFiles/stellar_ixp.dir/fabric.cpp.o" "gcc" "src/ixp/CMakeFiles/stellar_ixp.dir/fabric.cpp.o.d"
  "/root/repo/src/ixp/irr.cpp" "src/ixp/CMakeFiles/stellar_ixp.dir/irr.cpp.o" "gcc" "src/ixp/CMakeFiles/stellar_ixp.dir/irr.cpp.o.d"
  "/root/repo/src/ixp/ixp.cpp" "src/ixp/CMakeFiles/stellar_ixp.dir/ixp.cpp.o" "gcc" "src/ixp/CMakeFiles/stellar_ixp.dir/ixp.cpp.o.d"
  "/root/repo/src/ixp/looking_glass.cpp" "src/ixp/CMakeFiles/stellar_ixp.dir/looking_glass.cpp.o" "gcc" "src/ixp/CMakeFiles/stellar_ixp.dir/looking_glass.cpp.o.d"
  "/root/repo/src/ixp/member.cpp" "src/ixp/CMakeFiles/stellar_ixp.dir/member.cpp.o" "gcc" "src/ixp/CMakeFiles/stellar_ixp.dir/member.cpp.o.d"
  "/root/repo/src/ixp/route_server.cpp" "src/ixp/CMakeFiles/stellar_ixp.dir/route_server.cpp.o" "gcc" "src/ixp/CMakeFiles/stellar_ixp.dir/route_server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bgp/CMakeFiles/stellar_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/filter/CMakeFiles/stellar_filter.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/stellar_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/stellar_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/stellar_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/stellar_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
