file(REMOVE_RECURSE
  "CMakeFiles/stellar_ixp.dir/fabric.cpp.o"
  "CMakeFiles/stellar_ixp.dir/fabric.cpp.o.d"
  "CMakeFiles/stellar_ixp.dir/irr.cpp.o"
  "CMakeFiles/stellar_ixp.dir/irr.cpp.o.d"
  "CMakeFiles/stellar_ixp.dir/ixp.cpp.o"
  "CMakeFiles/stellar_ixp.dir/ixp.cpp.o.d"
  "CMakeFiles/stellar_ixp.dir/looking_glass.cpp.o"
  "CMakeFiles/stellar_ixp.dir/looking_glass.cpp.o.d"
  "CMakeFiles/stellar_ixp.dir/member.cpp.o"
  "CMakeFiles/stellar_ixp.dir/member.cpp.o.d"
  "CMakeFiles/stellar_ixp.dir/route_server.cpp.o"
  "CMakeFiles/stellar_ixp.dir/route_server.cpp.o.d"
  "libstellar_ixp.a"
  "libstellar_ixp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stellar_ixp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
