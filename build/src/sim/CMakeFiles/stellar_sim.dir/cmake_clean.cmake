file(REMOVE_RECURSE
  "CMakeFiles/stellar_sim.dir/event_queue.cpp.o"
  "CMakeFiles/stellar_sim.dir/event_queue.cpp.o.d"
  "libstellar_sim.a"
  "libstellar_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stellar_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
