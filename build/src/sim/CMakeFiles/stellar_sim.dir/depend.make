# Empty dependencies file for stellar_sim.
# This may be replaced when dependencies are built.
