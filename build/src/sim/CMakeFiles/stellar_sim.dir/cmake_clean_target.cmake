file(REMOVE_RECURSE
  "libstellar_sim.a"
)
