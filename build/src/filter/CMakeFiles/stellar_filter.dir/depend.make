# Empty dependencies file for stellar_filter.
# This may be replaced when dependencies are built.
