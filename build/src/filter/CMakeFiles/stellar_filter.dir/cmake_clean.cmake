file(REMOVE_RECURSE
  "CMakeFiles/stellar_filter.dir/cpu.cpp.o"
  "CMakeFiles/stellar_filter.dir/cpu.cpp.o.d"
  "CMakeFiles/stellar_filter.dir/edge_router.cpp.o"
  "CMakeFiles/stellar_filter.dir/edge_router.cpp.o.d"
  "CMakeFiles/stellar_filter.dir/qos.cpp.o"
  "CMakeFiles/stellar_filter.dir/qos.cpp.o.d"
  "CMakeFiles/stellar_filter.dir/rule.cpp.o"
  "CMakeFiles/stellar_filter.dir/rule.cpp.o.d"
  "CMakeFiles/stellar_filter.dir/tcam.cpp.o"
  "CMakeFiles/stellar_filter.dir/tcam.cpp.o.d"
  "libstellar_filter.a"
  "libstellar_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stellar_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
