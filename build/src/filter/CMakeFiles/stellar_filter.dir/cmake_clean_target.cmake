file(REMOVE_RECURSE
  "libstellar_filter.a"
)
