
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/filter/cpu.cpp" "src/filter/CMakeFiles/stellar_filter.dir/cpu.cpp.o" "gcc" "src/filter/CMakeFiles/stellar_filter.dir/cpu.cpp.o.d"
  "/root/repo/src/filter/edge_router.cpp" "src/filter/CMakeFiles/stellar_filter.dir/edge_router.cpp.o" "gcc" "src/filter/CMakeFiles/stellar_filter.dir/edge_router.cpp.o.d"
  "/root/repo/src/filter/qos.cpp" "src/filter/CMakeFiles/stellar_filter.dir/qos.cpp.o" "gcc" "src/filter/CMakeFiles/stellar_filter.dir/qos.cpp.o.d"
  "/root/repo/src/filter/rule.cpp" "src/filter/CMakeFiles/stellar_filter.dir/rule.cpp.o" "gcc" "src/filter/CMakeFiles/stellar_filter.dir/rule.cpp.o.d"
  "/root/repo/src/filter/tcam.cpp" "src/filter/CMakeFiles/stellar_filter.dir/tcam.cpp.o" "gcc" "src/filter/CMakeFiles/stellar_filter.dir/tcam.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/stellar_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/stellar_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
