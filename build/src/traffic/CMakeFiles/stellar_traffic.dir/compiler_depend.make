# Empty compiler generated dependencies file for stellar_traffic.
# This may be replaced when dependencies are built.
