file(REMOVE_RECURSE
  "CMakeFiles/stellar_traffic.dir/collector.cpp.o"
  "CMakeFiles/stellar_traffic.dir/collector.cpp.o.d"
  "CMakeFiles/stellar_traffic.dir/generators.cpp.o"
  "CMakeFiles/stellar_traffic.dir/generators.cpp.o.d"
  "CMakeFiles/stellar_traffic.dir/trace_io.cpp.o"
  "CMakeFiles/stellar_traffic.dir/trace_io.cpp.o.d"
  "libstellar_traffic.a"
  "libstellar_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stellar_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
