file(REMOVE_RECURSE
  "libstellar_traffic.a"
)
