
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/traffic/collector.cpp" "src/traffic/CMakeFiles/stellar_traffic.dir/collector.cpp.o" "gcc" "src/traffic/CMakeFiles/stellar_traffic.dir/collector.cpp.o.d"
  "/root/repo/src/traffic/generators.cpp" "src/traffic/CMakeFiles/stellar_traffic.dir/generators.cpp.o" "gcc" "src/traffic/CMakeFiles/stellar_traffic.dir/generators.cpp.o.d"
  "/root/repo/src/traffic/trace_io.cpp" "src/traffic/CMakeFiles/stellar_traffic.dir/trace_io.cpp.o" "gcc" "src/traffic/CMakeFiles/stellar_traffic.dir/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/stellar_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/stellar_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
