# Empty dependencies file for stellar_core.
# This may be replaced when dependencies are built.
