file(REMOVE_RECURSE
  "libstellar_core.a"
)
