file(REMOVE_RECURSE
  "CMakeFiles/stellar_core.dir/controller.cpp.o"
  "CMakeFiles/stellar_core.dir/controller.cpp.o.d"
  "CMakeFiles/stellar_core.dir/network_manager.cpp.o"
  "CMakeFiles/stellar_core.dir/network_manager.cpp.o.d"
  "CMakeFiles/stellar_core.dir/portal.cpp.o"
  "CMakeFiles/stellar_core.dir/portal.cpp.o.d"
  "CMakeFiles/stellar_core.dir/sdn.cpp.o"
  "CMakeFiles/stellar_core.dir/sdn.cpp.o.d"
  "CMakeFiles/stellar_core.dir/signal.cpp.o"
  "CMakeFiles/stellar_core.dir/signal.cpp.o.d"
  "CMakeFiles/stellar_core.dir/stellar.cpp.o"
  "CMakeFiles/stellar_core.dir/stellar.cpp.o.d"
  "libstellar_core.a"
  "libstellar_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stellar_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
