file(REMOVE_RECURSE
  "libstellar_mitigation.a"
)
