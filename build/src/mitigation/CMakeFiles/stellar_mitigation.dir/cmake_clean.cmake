file(REMOVE_RECURSE
  "CMakeFiles/stellar_mitigation.dir/acl.cpp.o"
  "CMakeFiles/stellar_mitigation.dir/acl.cpp.o.d"
  "CMakeFiles/stellar_mitigation.dir/comparison.cpp.o"
  "CMakeFiles/stellar_mitigation.dir/comparison.cpp.o.d"
  "CMakeFiles/stellar_mitigation.dir/flowspec_deploy.cpp.o"
  "CMakeFiles/stellar_mitigation.dir/flowspec_deploy.cpp.o.d"
  "CMakeFiles/stellar_mitigation.dir/rtbh.cpp.o"
  "CMakeFiles/stellar_mitigation.dir/rtbh.cpp.o.d"
  "CMakeFiles/stellar_mitigation.dir/scrubbing.cpp.o"
  "CMakeFiles/stellar_mitigation.dir/scrubbing.cpp.o.d"
  "libstellar_mitigation.a"
  "libstellar_mitigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stellar_mitigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
