# Empty dependencies file for stellar_mitigation.
# This may be replaced when dependencies are built.
