
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bgp/flowspec.cpp" "src/bgp/CMakeFiles/stellar_bgp.dir/flowspec.cpp.o" "gcc" "src/bgp/CMakeFiles/stellar_bgp.dir/flowspec.cpp.o.d"
  "/root/repo/src/bgp/message.cpp" "src/bgp/CMakeFiles/stellar_bgp.dir/message.cpp.o" "gcc" "src/bgp/CMakeFiles/stellar_bgp.dir/message.cpp.o.d"
  "/root/repo/src/bgp/session.cpp" "src/bgp/CMakeFiles/stellar_bgp.dir/session.cpp.o" "gcc" "src/bgp/CMakeFiles/stellar_bgp.dir/session.cpp.o.d"
  "/root/repo/src/bgp/types.cpp" "src/bgp/CMakeFiles/stellar_bgp.dir/types.cpp.o" "gcc" "src/bgp/CMakeFiles/stellar_bgp.dir/types.cpp.o.d"
  "/root/repo/src/bgp/wire.cpp" "src/bgp/CMakeFiles/stellar_bgp.dir/wire.cpp.o" "gcc" "src/bgp/CMakeFiles/stellar_bgp.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/stellar_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/stellar_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/stellar_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
