file(REMOVE_RECURSE
  "CMakeFiles/stellar_bgp.dir/flowspec.cpp.o"
  "CMakeFiles/stellar_bgp.dir/flowspec.cpp.o.d"
  "CMakeFiles/stellar_bgp.dir/message.cpp.o"
  "CMakeFiles/stellar_bgp.dir/message.cpp.o.d"
  "CMakeFiles/stellar_bgp.dir/session.cpp.o"
  "CMakeFiles/stellar_bgp.dir/session.cpp.o.d"
  "CMakeFiles/stellar_bgp.dir/types.cpp.o"
  "CMakeFiles/stellar_bgp.dir/types.cpp.o.d"
  "CMakeFiles/stellar_bgp.dir/wire.cpp.o"
  "CMakeFiles/stellar_bgp.dir/wire.cpp.o.d"
  "libstellar_bgp.a"
  "libstellar_bgp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stellar_bgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
