file(REMOVE_RECURSE
  "libstellar_bgp.a"
)
