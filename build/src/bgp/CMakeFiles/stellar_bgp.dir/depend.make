# Empty dependencies file for stellar_bgp.
# This may be replaced when dependencies are built.
