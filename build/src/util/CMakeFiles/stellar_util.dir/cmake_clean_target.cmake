file(REMOVE_RECURSE
  "libstellar_util.a"
)
