file(REMOVE_RECURSE
  "CMakeFiles/stellar_util.dir/ascii.cpp.o"
  "CMakeFiles/stellar_util.dir/ascii.cpp.o.d"
  "CMakeFiles/stellar_util.dir/stats.cpp.o"
  "CMakeFiles/stellar_util.dir/stats.cpp.o.d"
  "libstellar_util.a"
  "libstellar_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stellar_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
