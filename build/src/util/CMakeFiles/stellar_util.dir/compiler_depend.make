# Empty compiler generated dependencies file for stellar_util.
# This may be replaced when dependencies are built.
