file(REMOVE_RECURSE
  "../bench/ablation_overprovisioning"
  "../bench/ablation_overprovisioning.pdb"
  "CMakeFiles/ablation_overprovisioning.dir/ablation_overprovisioning.cc.o"
  "CMakeFiles/ablation_overprovisioning.dir/ablation_overprovisioning.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_overprovisioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
