# Empty dependencies file for ablation_overprovisioning.
# This may be replaced when dependencies are built.
