file(REMOVE_RECURSE
  "../bench/ablation_addpath"
  "../bench/ablation_addpath.pdb"
  "CMakeFiles/ablation_addpath.dir/ablation_addpath.cc.o"
  "CMakeFiles/ablation_addpath.dir/ablation_addpath.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_addpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
