# Empty compiler generated dependencies file for ablation_addpath.
# This may be replaced when dependencies are built.
