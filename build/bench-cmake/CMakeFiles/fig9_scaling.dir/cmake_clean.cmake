file(REMOVE_RECURSE
  "../bench/fig9_scaling"
  "../bench/fig9_scaling.pdb"
  "CMakeFiles/fig9_scaling.dir/fig9_scaling.cc.o"
  "CMakeFiles/fig9_scaling.dir/fig9_scaling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
