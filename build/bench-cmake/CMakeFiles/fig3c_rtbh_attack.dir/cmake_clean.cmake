file(REMOVE_RECURSE
  "../bench/fig3c_rtbh_attack"
  "../bench/fig3c_rtbh_attack.pdb"
  "CMakeFiles/fig3c_rtbh_attack.dir/fig3c_rtbh_attack.cc.o"
  "CMakeFiles/fig3c_rtbh_attack.dir/fig3c_rtbh_attack.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3c_rtbh_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
