# Empty compiler generated dependencies file for fig3c_rtbh_attack.
# This may be replaced when dependencies are built.
