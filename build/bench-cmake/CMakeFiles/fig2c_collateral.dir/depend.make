# Empty dependencies file for fig2c_collateral.
# This may be replaced when dependencies are built.
