file(REMOVE_RECURSE
  "../bench/fig2c_collateral"
  "../bench/fig2c_collateral.pdb"
  "CMakeFiles/fig2c_collateral.dir/fig2c_collateral.cc.o"
  "CMakeFiles/fig2c_collateral.dir/fig2c_collateral.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2c_collateral.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
