file(REMOVE_RECURSE
  "../bench/fig3b_policy_usage"
  "../bench/fig3b_policy_usage.pdb"
  "CMakeFiles/fig3b_policy_usage.dir/fig3b_policy_usage.cc.o"
  "CMakeFiles/fig3b_policy_usage.dir/fig3b_policy_usage.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3b_policy_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
