# Empty dependencies file for fig3b_policy_usage.
# This may be replaced when dependencies are built.
