# Empty compiler generated dependencies file for fig10a_cpu.
# This may be replaced when dependencies are built.
