file(REMOVE_RECURSE
  "../bench/fig10a_cpu"
  "../bench/fig10a_cpu.pdb"
  "CMakeFiles/fig10a_cpu.dir/fig10a_cpu.cc.o"
  "CMakeFiles/fig10a_cpu.dir/fig10a_cpu.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10a_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
