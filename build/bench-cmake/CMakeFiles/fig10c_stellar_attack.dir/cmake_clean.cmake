file(REMOVE_RECURSE
  "../bench/fig10c_stellar_attack"
  "../bench/fig10c_stellar_attack.pdb"
  "CMakeFiles/fig10c_stellar_attack.dir/fig10c_stellar_attack.cc.o"
  "CMakeFiles/fig10c_stellar_attack.dir/fig10c_stellar_attack.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10c_stellar_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
