# Empty dependencies file for fig10c_stellar_attack.
# This may be replaced when dependencies are built.
