file(REMOVE_RECURSE
  "../bench/ablation_hybrid_scrubbing"
  "../bench/ablation_hybrid_scrubbing.pdb"
  "CMakeFiles/ablation_hybrid_scrubbing.dir/ablation_hybrid_scrubbing.cc.o"
  "CMakeFiles/ablation_hybrid_scrubbing.dir/ablation_hybrid_scrubbing.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hybrid_scrubbing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
