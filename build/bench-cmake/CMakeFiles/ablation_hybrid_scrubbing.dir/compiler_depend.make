# Empty compiler generated dependencies file for ablation_hybrid_scrubbing.
# This may be replaced when dependencies are built.
