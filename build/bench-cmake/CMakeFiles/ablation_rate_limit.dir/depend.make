# Empty dependencies file for ablation_rate_limit.
# This may be replaced when dependencies are built.
