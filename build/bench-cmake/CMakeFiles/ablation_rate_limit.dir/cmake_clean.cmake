file(REMOVE_RECURSE
  "../bench/ablation_rate_limit"
  "../bench/ablation_rate_limit.pdb"
  "CMakeFiles/ablation_rate_limit.dir/ablation_rate_limit.cc.o"
  "CMakeFiles/ablation_rate_limit.dir/ablation_rate_limit.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rate_limit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
