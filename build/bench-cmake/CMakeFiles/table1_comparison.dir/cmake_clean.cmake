file(REMOVE_RECURSE
  "../bench/table1_comparison"
  "../bench/table1_comparison.pdb"
  "CMakeFiles/table1_comparison.dir/table1_comparison.cc.o"
  "CMakeFiles/table1_comparison.dir/table1_comparison.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
