# Empty compiler generated dependencies file for ablation_egress_vs_ingress.
# This may be replaced when dependencies are built.
