file(REMOVE_RECURSE
  "../bench/ablation_egress_vs_ingress"
  "../bench/ablation_egress_vs_ingress.pdb"
  "CMakeFiles/ablation_egress_vs_ingress.dir/ablation_egress_vs_ingress.cc.o"
  "CMakeFiles/ablation_egress_vs_ingress.dir/ablation_egress_vs_ingress.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_egress_vs_ingress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
