file(REMOVE_RECURSE
  "../bench/fig10b_queue"
  "../bench/fig10b_queue.pdb"
  "CMakeFiles/fig10b_queue.dir/fig10b_queue.cc.o"
  "CMakeFiles/fig10b_queue.dir/fig10b_queue.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10b_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
