# Empty compiler generated dependencies file for fig10b_queue.
# This may be replaced when dependencies are built.
