file(REMOVE_RECURSE
  "../bench/fig3a_port_dist"
  "../bench/fig3a_port_dist.pdb"
  "CMakeFiles/fig3a_port_dist.dir/fig3a_port_dist.cc.o"
  "CMakeFiles/fig3a_port_dist.dir/fig3a_port_dist.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3a_port_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
