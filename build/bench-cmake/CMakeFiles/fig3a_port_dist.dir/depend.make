# Empty dependencies file for fig3a_port_dist.
# This may be replaced when dependencies are built.
