// Discrete-event simulation kernel: a virtual clock and an event queue.
//
// All time-dependent behaviour in the system — BGP hold/keepalive timers, the
// network manager's token-bucket dequeue, attack ramp-up, traffic bins — runs
// against this clock, never against wall time, so experiments are exact and
// instantaneous to run.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

namespace stellar::sim {

/// Simulation time. A duration since simulation start, in seconds with
/// double precision (std::chrono gives us unit safety for free).
using Duration = std::chrono::duration<double>;
using SimTime = Duration;

constexpr SimTime Seconds(double s) { return SimTime(s); }
constexpr SimTime Millis(double ms) { return SimTime(ms / 1e3); }

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Current virtual time. Starts at 0.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `cb` at absolute time `at`. Events scheduled for the past run
  /// at the current time. Events with equal timestamps run in scheduling
  /// order (FIFO) — this determinism matters for reproducibility.
  void schedule_at(SimTime at, Callback cb);

  /// Schedules `cb` `delay` after now().
  void schedule_after(Duration delay, Callback cb) { schedule_at(now_ + delay, std::move(cb)); }

  /// Runs events until the queue is empty or the clock would pass `until`;
  /// the clock is left at `until` (or at the last event if the queue drains).
  void run_until(SimTime until);

  /// Runs until the queue is fully drained.
  void run();

  [[nodiscard]] std::size_t pending() const { return heap_.size(); }

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;  ///< Tie-breaker for deterministic FIFO ordering.
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  SimTime now_{0.0};
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
};

/// Repeats a callback at a fixed period until cancel() or the owner's queue
/// stops being run. The callback sees the queue's virtual clock.
class PeriodicTask {
 public:
  PeriodicTask(EventQueue& queue, Duration period, EventQueue::Callback cb);
  ~PeriodicTask() { cancel(); }
  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void cancel() { *alive_ = false; }

 private:
  void arm();

  EventQueue& queue_;
  Duration period_;
  EventQueue::Callback cb_;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace stellar::sim
