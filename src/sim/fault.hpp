// Deterministic fault injection for the signaling stack (the chaos half of
// the robustness story): a seeded FaultPlan describes probabilistic message
// drop/corruption/latency jitter, scheduled total partitions, and timed
// session kills; a FaultInjector installs itself as the bgp::MakeLink hook
// and wraps every link created while armed. All randomness derives from the
// plan seed and the (deterministic) simulation event order, so one seed
// reproduces one byte-identical fault trace.
//
// FlakyCompiler injects the matching management-layer fault: probabilistic
// transient apply() failures, exercising the network manager's retry path.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "bgp/session.hpp"
#include "core/network_manager.hpp"
#include "sim/event_queue.hpp"
#include "util/rng.hpp"

namespace stellar::sim {

/// Everything that goes wrong, declared up front and seeded.
struct FaultPlan {
  std::uint64_t seed = 1;

  // Per-message probabilistic faults on wrapped links, active only inside
  // [window_start_s, window_end_s) — a bounded storm, after which the
  // platform must converge.
  double drop_probability = 0.0;
  double corrupt_probability = 0.0;
  /// Extra one-way latency drawn uniformly from [0, jitter_max_s).
  double jitter_max_s = 0.0;
  double window_start_s = 0.0;
  double window_end_s = std::numeric_limits<double>::infinity();

  /// Total outage: every message on every wrapped link is dropped while a
  /// partition is active (hold timers expire, fail-safe must engage).
  struct Partition {
    double start_s = 0.0;
    double end_s = 0.0;
  };
  std::vector<Partition> partitions;

  static constexpr std::size_t kAllLinks = std::numeric_limits<std::size_t>::max();
  /// Hard session kill: closes the link (both directions) at `at_s`.
  /// `link_index` is the wrap order (0 = first link created while armed);
  /// kAllLinks kills every wrapped link still open — a full outage event.
  struct SessionKill {
    double at_s = 0.0;
    std::size_t link_index = kAllLinks;
  };
  std::vector<SessionKill> session_kills;
};

class FaultInjector {
 public:
  FaultInjector(EventQueue& queue, FaultPlan plan);
  ~FaultInjector();
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Installs the MakeLink hook; links created while armed are wrapped.
  /// Scheduled kills are armed on the simulation clock at this point.
  void arm();
  /// Uninstalls the hook. Already-wrapped links keep their filters.
  void disarm();

  struct Stats {
    std::uint64_t links_wrapped = 0;
    std::uint64_t messages_dropped = 0;    ///< Probabilistic drops.
    std::uint64_t messages_corrupted = 0;
    std::uint64_t messages_delayed = 0;
    std::uint64_t partition_drops = 0;     ///< Drops inside a partition window.
    std::uint64_t kills_executed = 0;      ///< Links actually closed by kills.
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Deterministic event trace: one line per injected fault, in simulation
  /// order. Identical seeds (and scenario) produce identical traces.
  [[nodiscard]] const std::vector<std::string>& trace() const { return trace_; }
  [[nodiscard]] std::string trace_text() const;

 private:
  /// Shared per-link fault state; endpoints' filters hold it via shared_ptr,
  /// so it must not own the endpoints (weak back-references only).
  struct LinkState {
    std::size_t index = 0;
    util::Rng rng{1};
    std::weak_ptr<bgp::Endpoint> a;
    std::weak_ptr<bgp::Endpoint> b;
  };

  void wrap(const std::shared_ptr<bgp::Endpoint>& a, const std::shared_ptr<bgp::Endpoint>& b);
  bool filter(LinkState& link, char side, std::vector<std::uint8_t>& bytes,
              Duration& extra_delay);
  [[nodiscard]] bool in_window(double now_s) const;
  [[nodiscard]] bool partitioned(double now_s) const;
  void execute_kill(std::size_t link_index);
  void record(const char* what, std::size_t link_index, char side, std::size_t bytes);

  EventQueue& queue_;
  FaultPlan plan_;
  util::Rng fork_rng_;  ///< Parent stream: each wrapped link forks a child.
  bool armed_ = false;
  bool kills_scheduled_ = false;
  std::vector<std::shared_ptr<LinkState>> links_;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  bgp::LinkHook previous_hook_;
  Stats stats_;
  std::vector<std::string> trace_;
};

/// ConfigCompiler decorator that fails apply() with a transient error code
/// ("transient.flaky") at a seeded probability — the retrying network manager
/// must absorb these without losing changes.
class FlakyCompiler final : public core::ConfigCompiler {
 public:
  FlakyCompiler(core::ConfigCompiler& inner, double failure_probability, std::uint64_t seed)
      : inner_(inner), failure_probability_(failure_probability), rng_(seed) {}

  util::Result<void> apply(const core::ConfigChange& change) override {
    if (forced_failures_ > 0) {
      --forced_failures_;
      ++injected_failures_;
      return util::MakeError("transient.flaky", "injected transient apply failure");
    }
    if (failure_probability_ > 0.0 && rng_.chance(failure_probability_)) {
      ++injected_failures_;
      return util::MakeError("transient.flaky", "injected transient apply failure");
    }
    return inner_.apply(change);
  }
  [[nodiscard]] std::string_view name() const override { return "flaky"; }

  /// Deterministically fail the next `n` applies regardless of probability —
  /// lets tests guarantee the retry path fires under any seed.
  void fail_next(std::uint64_t n) { forced_failures_ += n; }

  [[nodiscard]] std::uint64_t injected_failures() const { return injected_failures_; }

 private:
  core::ConfigCompiler& inner_;
  double failure_probability_;
  util::Rng rng_;
  std::uint64_t forced_failures_ = 0;
  std::uint64_t injected_failures_ = 0;
};

}  // namespace stellar::sim
