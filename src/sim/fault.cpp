#include "sim/fault.hpp"

#include <cstdio>
#include <string_view>

#include "obs/journal.hpp"

namespace stellar::sim {

FaultInjector::FaultInjector(EventQueue& queue, FaultPlan plan)
    : queue_(queue), plan_(std::move(plan)), fork_rng_(plan_.seed) {}

FaultInjector::~FaultInjector() {
  *alive_ = false;
  disarm();
}

void FaultInjector::arm() {
  if (armed_) return;
  armed_ = true;
  previous_hook_ = bgp::SetLinkHook(
      [this](const std::shared_ptr<bgp::Endpoint>& a, const std::shared_ptr<bgp::Endpoint>& b) {
        wrap(a, b);
      });
  if (!kills_scheduled_) {
    kills_scheduled_ = true;
    for (const auto& kill : plan_.session_kills) {
      queue_.schedule_at(Seconds(kill.at_s), [this, alive = alive_, index = kill.link_index] {
        if (!*alive) return;
        execute_kill(index);
      });
    }
  }
}

void FaultInjector::disarm() {
  if (!armed_) return;
  armed_ = false;
  bgp::SetLinkHook(std::move(previous_hook_));
  previous_hook_ = nullptr;
}

void FaultInjector::wrap(const std::shared_ptr<bgp::Endpoint>& a,
                         const std::shared_ptr<bgp::Endpoint>& b) {
  auto link = std::make_shared<LinkState>();
  link->index = links_.size();
  link->rng = fork_rng_.fork();
  link->a = a;
  link->b = b;
  links_.push_back(link);
  ++stats_.links_wrapped;
  a->set_fault_filter([this, alive = alive_, link](std::vector<std::uint8_t>& bytes,
                                                   Duration& extra) {
    if (!*alive) return true;
    return filter(*link, 'a', bytes, extra);
  });
  b->set_fault_filter([this, alive = alive_, link](std::vector<std::uint8_t>& bytes,
                                                   Duration& extra) {
    if (!*alive) return true;
    return filter(*link, 'b', bytes, extra);
  });
}

bool FaultInjector::in_window(double now_s) const {
  return now_s >= plan_.window_start_s && now_s < plan_.window_end_s;
}

bool FaultInjector::partitioned(double now_s) const {
  for (const auto& p : plan_.partitions) {
    if (now_s >= p.start_s && now_s < p.end_s) return true;
  }
  return false;
}

bool FaultInjector::filter(LinkState& link, char side, std::vector<std::uint8_t>& bytes,
                           Duration& extra_delay) {
  const double now = queue_.now().count();
  if (partitioned(now)) {
    ++stats_.partition_drops;
    record("partition-drop", link.index, side, bytes.size());
    return false;
  }
  if (!in_window(now)) return true;
  if (plan_.drop_probability > 0.0 && link.rng.chance(plan_.drop_probability)) {
    ++stats_.messages_dropped;
    record("drop", link.index, side, bytes.size());
    return false;
  }
  if (plan_.corrupt_probability > 0.0 && link.rng.chance(plan_.corrupt_probability) &&
      !bytes.empty()) {
    // Flip one byte past the 16-byte marker so framing sees a malformed
    // message rather than silently resynchronizing.
    const auto pos = static_cast<std::size_t>(
        link.rng.uniform_int(0, static_cast<std::int64_t>(bytes.size()) - 1));
    bytes[pos] ^= 0xFF;
    ++stats_.messages_corrupted;
    record("corrupt", link.index, side, bytes.size());
  }
  if (plan_.jitter_max_s > 0.0) {
    const double jitter = link.rng.uniform(0.0, plan_.jitter_max_s);
    if (jitter > 0.0) {
      extra_delay += Seconds(jitter);
      ++stats_.messages_delayed;
      record("delay", link.index, side, bytes.size());
    }
  }
  return true;
}

void FaultInjector::execute_kill(std::size_t link_index) {
  const auto kill_one = [this](LinkState& link) {
    auto a = link.a.lock();
    if (!a || a->closed()) return;
    a->close();
    ++stats_.kills_executed;
    record("kill", link.index, 'a', 0);
  };
  if (link_index == FaultPlan::kAllLinks) {
    for (const auto& link : links_) kill_one(*link);
    return;
  }
  if (link_index < links_.size()) kill_one(*links_[link_index]);
}

void FaultInjector::record(const char* what, std::size_t link_index, char side,
                           std::size_t bytes) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "t=%.6f %s link#%zu side=%c bytes=%zu",
                queue_.now().count(), what, link_index, side, bytes);
  trace_.emplace_back(buf);
  // Mirror every injected fault into the observability journal so chaos
  // post-mortems interleave faults with the platform's reactions.
  const std::string_view kind_name(what);
  obs::EventKind kind = obs::EventKind::kFaultDrop;
  if (kind_name == "corrupt") {
    kind = obs::EventKind::kFaultCorrupt;
  } else if (kind_name == "delay") {
    kind = obs::EventKind::kFaultDelay;
  } else if (kind_name == "partition-drop") {
    kind = obs::EventKind::kFaultPartitionDrop;
  } else if (kind_name == "kill") {
    kind = obs::EventKind::kFaultKill;
  }
  char subject[32];
  std::snprintf(subject, sizeof(subject), "link#%zu", link_index);
  char detail[48];
  std::snprintf(detail, sizeof(detail), "side=%c bytes=%zu", side, bytes);
  obs::journal().append(queue_.now().count(), kind, subject, detail);
}

std::string FaultInjector::trace_text() const {
  std::string out;
  for (const auto& line : trace_) {
    out += line;
    out += '\n';
  }
  return out;
}

}  // namespace stellar::sim
