#include "sim/event_queue.hpp"

#include <memory>
#include <utility>

namespace stellar::sim {

void EventQueue::schedule_at(SimTime at, Callback cb) {
  if (at < now_) at = now_;
  heap_.push(Event{at, next_seq_++, std::move(cb)});
}

void EventQueue::run_until(SimTime until) {
  while (!heap_.empty() && heap_.top().at <= until) {
    // Copy out before pop: the callback may schedule new events.
    Event ev = heap_.top();
    heap_.pop();
    now_ = ev.at;
    ev.cb();
  }
  if (now_ < until) now_ = until;
}

void EventQueue::run() {
  while (!heap_.empty()) {
    Event ev = heap_.top();
    heap_.pop();
    now_ = ev.at;
    ev.cb();
  }
}

PeriodicTask::PeriodicTask(EventQueue& queue, Duration period, EventQueue::Callback cb)
    : queue_(queue), period_(period), cb_(std::move(cb)) {
  arm();
}

void PeriodicTask::arm() {
  queue_.schedule_after(period_, [this, alive = alive_] {
    if (!*alive) return;
    cb_();
    arm();
  });
}

}  // namespace stellar::sim
