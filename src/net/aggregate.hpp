// Prefix aggregation: collapses a prefix set into the minimal list covering
// exactly the same addresses (dedup + contained-prefix removal + merging of
// sibling pairs into their parent). Used to summarize blackholed prefixes and
// to compact IRR route-object sets; the classic CIDR aggregation algorithm.
#pragma once

#include <vector>

#include "net/ip.hpp"

namespace stellar::net {

/// Returns the minimal, sorted prefix list covering exactly the union of the
/// inputs. Examples:
///   {10.0.0.0/24, 10.0.1.0/24}        -> {10.0.0.0/23}     (sibling merge)
///   {10.0.0.0/16, 10.0.1.0/24}        -> {10.0.0.0/16}     (containment)
///   {10.0.0.0/24, 10.0.2.0/24}        -> unchanged         (not siblings)
[[nodiscard]] std::vector<Prefix4> AggregatePrefixes(std::vector<Prefix4> prefixes);

/// IPv6 variant (summarizing v6 blackhole sets).
[[nodiscard]] std::vector<Prefix6> AggregatePrefixes6(std::vector<Prefix6> prefixes);

/// True if `address` is covered by any prefix in the (not necessarily
/// aggregated) set. Reference semantics for testing aggregation.
[[nodiscard]] bool CoveredBy(const std::vector<Prefix4>& prefixes, IPv4Address address);
[[nodiscard]] bool CoveredBy6(const std::vector<Prefix6>& prefixes, const IPv6Address& address);

}  // namespace stellar::net
