// Ethernet MAC addresses. The IXP data plane is an L2 fabric, so source-MAC
// filters (one MAC per member router) are first-class citizens: RTBH policy
// control and Stellar's L2 match criteria are expressed on them.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "util/result.hpp"

namespace stellar::net {

class MacAddress {
 public:
  using Bytes = std::array<std::uint8_t, 6>;

  constexpr MacAddress() : bytes_{} {}
  constexpr explicit MacAddress(const Bytes& bytes) : bytes_(bytes) {}

  /// Parses "aa:bb:cc:dd:ee:ff" (case-insensitive, ':' or '-' separators).
  static util::Result<MacAddress> Parse(std::string_view text);

  /// Deterministic locally-administered unicast MAC for a simulated member
  /// router, derived from its ASN and router index. Bit 1 of the first octet
  /// (locally administered) is set, bit 0 (multicast) is clear.
  static MacAddress ForRouter(std::uint32_t asn, std::uint8_t router_index = 0);

  [[nodiscard]] const Bytes& bytes() const { return bytes_; }
  [[nodiscard]] std::string str() const;
  [[nodiscard]] std::uint64_t as_u64() const;

  friend constexpr auto operator<=>(const MacAddress&, const MacAddress&) = default;

 private:
  Bytes bytes_;
};

}  // namespace stellar::net

template <>
struct std::hash<stellar::net::MacAddress> {
  std::size_t operator()(const stellar::net::MacAddress& m) const noexcept {
    return std::hash<std::uint64_t>{}(m.as_u64());
  }
};
