#include "net/ip.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <vector>

namespace stellar::net {

namespace {

util::Error ParseError(std::string_view what, std::string_view text) {
  return util::MakeError("net.parse", std::string(what) + ": '" + std::string(text) + "'");
}

// Parses a decimal integer in [0, max]; advances `text` past it.
bool ConsumeDecimal(std::string_view& text, unsigned max, unsigned& out) {
  std::size_t i = 0;
  unsigned value = 0;
  while (i < text.size() && text[i] >= '0' && text[i] <= '9') {
    value = value * 10 + static_cast<unsigned>(text[i] - '0');
    if (value > max) return false;
    ++i;
    if (i > 10) return false;  // Absurdly long digit run.
  }
  if (i == 0) return false;
  text.remove_prefix(i);
  out = value;
  return true;
}

}  // namespace

util::Result<IPv4Address> IPv4Address::Parse(std::string_view text) {
  std::string_view rest = text;
  std::uint32_t value = 0;
  for (int octet = 0; octet < 4; ++octet) {
    if (octet != 0) {
      if (rest.empty() || rest.front() != '.') return ParseError("bad IPv4 address", text);
      rest.remove_prefix(1);
    }
    unsigned v = 0;
    if (!ConsumeDecimal(rest, 255, v)) return ParseError("bad IPv4 address", text);
    value = (value << 8) | v;
  }
  if (!rest.empty()) return ParseError("trailing characters in IPv4 address", text);
  return IPv4Address(value);
}

std::string IPv4Address::str() const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (value_ >> 24) & 0xff, (value_ >> 16) & 0xff,
                (value_ >> 8) & 0xff, value_ & 0xff);
  return buf;
}

util::Result<IPv6Address> IPv6Address::Parse(std::string_view text) {
  // Split on "::" first; each side is a ':'-separated list of hextets, where
  // the final element of the full address may be an embedded IPv4 address.
  const auto gap = text.find("::");
  if (gap != std::string_view::npos && text.find("::", gap + 1) != std::string_view::npos) {
    return ParseError("multiple '::' in IPv6 address", text);
  }

  auto parse_groups = [&](std::string_view part,
                          std::vector<std::uint16_t>& out) -> bool {
    if (part.empty()) return true;
    while (true) {
      const auto colon = part.find(':');
      std::string_view tok = part.substr(0, colon);
      if (tok.empty()) return false;
      // Embedded IPv4 allowed only as the last token.
      if (tok.find('.') != std::string_view::npos) {
        if (colon != std::string_view::npos) return false;
        auto v4 = IPv4Address::Parse(tok);
        if (!v4.ok()) return false;
        out.push_back(static_cast<std::uint16_t>(v4->value() >> 16));
        out.push_back(static_cast<std::uint16_t>(v4->value() & 0xffff));
        return true;
      }
      if (tok.size() > 4) return false;
      unsigned v = 0;
      for (char c : tok) {
        if (c >= '0' && c <= '9') v = v * 16 + static_cast<unsigned>(c - '0');
        else if (c >= 'a' && c <= 'f') v = v * 16 + static_cast<unsigned>(c - 'a' + 10);
        else if (c >= 'A' && c <= 'F') v = v * 16 + static_cast<unsigned>(c - 'A' + 10);
        else return false;
      }
      out.push_back(static_cast<std::uint16_t>(v));
      if (colon == std::string_view::npos) return true;
      part.remove_prefix(colon + 1);
    }
  };

  std::vector<std::uint16_t> head;
  std::vector<std::uint16_t> tail;
  if (gap == std::string_view::npos) {
    if (!parse_groups(text, head) || head.size() != 8) {
      return ParseError("bad IPv6 address", text);
    }
  } else {
    if (!parse_groups(text.substr(0, gap), head) ||
        !parse_groups(text.substr(gap + 2), tail) || head.size() + tail.size() > 7) {
      return ParseError("bad IPv6 address", text);
    }
  }

  Bytes bytes{};
  for (std::size_t i = 0; i < head.size(); ++i) {
    bytes[2 * i] = static_cast<std::uint8_t>(head[i] >> 8);
    bytes[2 * i + 1] = static_cast<std::uint8_t>(head[i] & 0xff);
  }
  for (std::size_t i = 0; i < tail.size(); ++i) {
    const std::size_t g = 8 - tail.size() + i;
    bytes[2 * g] = static_cast<std::uint8_t>(tail[i] >> 8);
    bytes[2 * g + 1] = static_cast<std::uint8_t>(tail[i] & 0xff);
  }
  return IPv6Address(bytes);
}

std::string IPv6Address::str() const {
  // RFC 5952: compress the longest run of >= 2 zero hextets (leftmost on tie).
  int best_start = -1;
  int best_len = 0;
  for (int i = 0; i < 8;) {
    if (hextet(static_cast<std::size_t>(i)) != 0) {
      ++i;
      continue;
    }
    int j = i;
    while (j < 8 && hextet(static_cast<std::size_t>(j)) == 0) ++j;
    if (j - i > best_len) {
      best_len = j - i;
      best_start = i;
    }
    i = j;
  }
  if (best_len < 2) best_start = -1;

  std::string out;
  for (int i = 0; i < 8;) {
    if (i == best_start) {
      out += "::";
      i += best_len;
      if (i == 8) return out;
      continue;
    }
    if (i != 0 && (best_start < 0 || i != best_start + best_len)) out += ':';
    char buf[8];
    std::snprintf(buf, sizeof buf, "%x", hextet(static_cast<std::size_t>(i)));
    out += buf;
    ++i;
  }
  return out;
}

Prefix4::Prefix4(IPv4Address addr, std::uint8_t length) : length_(length) {
  if (length > 32) throw std::invalid_argument("Prefix4: length > 32");
  addr_ = IPv4Address(addr.value() & mask());
}

std::uint32_t Prefix4::mask() const {
  return length_ == 0 ? 0 : ~std::uint32_t{0} << (32 - length_);
}

util::Result<Prefix4> Prefix4::Parse(std::string_view text) {
  const auto slash = text.find('/');
  const std::string_view addr_part = text.substr(0, slash);
  auto addr = IPv4Address::Parse(addr_part);
  if (!addr.ok()) return addr.error();
  unsigned len = 32;
  if (slash != std::string_view::npos) {
    std::string_view len_part = text.substr(slash + 1);
    if (!ConsumeDecimal(len_part, 32, len) || !len_part.empty()) {
      return ParseError("bad prefix length", text);
    }
  }
  return Prefix4(*addr, static_cast<std::uint8_t>(len));
}

bool Prefix4::contains(IPv4Address a) const { return (a.value() & mask()) == addr_.value(); }

bool Prefix4::contains(const Prefix4& other) const {
  return other.length_ >= length_ && contains(other.addr_);
}

std::string Prefix4::str() const { return addr_.str() + "/" + std::to_string(length_); }

Prefix6::Prefix6(IPv6Address addr, std::uint8_t length) : length_(length) {
  if (length > 128) throw std::invalid_argument("Prefix6: length > 128");
  IPv6Address::Bytes b = addr.bytes();
  for (int i = 0; i < 16; ++i) {
    const int bits = std::clamp(static_cast<int>(length) - 8 * i, 0, 8);
    const std::uint8_t m = bits == 0 ? 0 : static_cast<std::uint8_t>(0xff << (8 - bits));
    b[static_cast<std::size_t>(i)] &= m;
  }
  addr_ = IPv6Address(b);
}

util::Result<Prefix6> Prefix6::Parse(std::string_view text) {
  const auto slash = text.find('/');
  auto addr = IPv6Address::Parse(text.substr(0, slash));
  if (!addr.ok()) return addr.error();
  unsigned len = 128;
  if (slash != std::string_view::npos) {
    std::string_view len_part = text.substr(slash + 1);
    if (!ConsumeDecimal(len_part, 128, len) || !len_part.empty()) {
      return ParseError("bad prefix length", text);
    }
  }
  return Prefix6(*addr, static_cast<std::uint8_t>(len));
}

bool Prefix6::contains(const IPv6Address& a) const {
  for (int i = 0; i < 16; ++i) {
    const int bits = std::clamp(static_cast<int>(length_) - 8 * i, 0, 8);
    if (bits == 0) return true;
    const std::uint8_t m = static_cast<std::uint8_t>(0xff << (8 - bits));
    if ((a.bytes()[static_cast<std::size_t>(i)] & m) !=
        addr_.bytes()[static_cast<std::size_t>(i)]) {
      return false;
    }
  }
  return true;
}

bool Prefix6::contains(const Prefix6& other) const {
  return other.length_ >= length_ && contains(other.addr_);
}

std::string Prefix6::str() const { return addr_.str() + "/" + std::to_string(length_); }

}  // namespace stellar::net
