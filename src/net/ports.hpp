// Well-known UDP services abused for amplification DDoS and their published
// bandwidth amplification factors (Rossow, NDSS'14; US-CERT TA14-017A; Akamai
// memcached spotlight 2018). These drive the attack generators and label the
// axes of Fig. 2c / Fig. 3a.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace stellar::net {

struct AmplificationService {
  std::uint16_t udp_port;
  std::string_view name;
  double bandwidth_amplification_factor;  ///< Response bytes per request byte.
};

/// Services the paper's Fig. 3a identifies as dominant in blackholed traffic
/// (ports 0, 123, 389, 11211, 53, 19). Port 0 is not a service: it is how
/// flow collectors report non-initial IP fragments of oversized amplification
/// responses, so it is kept here with the factor of its typical source (NTP).
inline constexpr std::array<AmplificationService, 6> kAmplificationServices{{
    {0, "unassigned/fragments", 556.9},
    {123, "ntp", 556.9},
    {389, "ldap", 55.0},
    {11211, "memcached", 10000.0},
    {53, "domain", 54.0},
    {19, "chargen", 358.8},
}};

/// Well-known service ports used by the benign web-service traffic mix of
/// Fig. 2c (443, 80, 8080, 1935 = RTMP streaming).
inline constexpr std::uint16_t kPortHttps = 443;
inline constexpr std::uint16_t kPortHttp = 80;
inline constexpr std::uint16_t kPortHttpAlt = 8080;
inline constexpr std::uint16_t kPortRtmp = 1935;

inline constexpr std::uint16_t kPortNtp = 123;
inline constexpr std::uint16_t kPortDns = 53;
inline constexpr std::uint16_t kPortLdap = 389;
inline constexpr std::uint16_t kPortMemcached = 11211;
inline constexpr std::uint16_t kPortChargen = 19;

}  // namespace stellar::net
