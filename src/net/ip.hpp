// IPv4/IPv6 addresses and prefixes with strict parsing and canonical
// formatting. These are the vocabulary types of the whole system: BGP NLRI,
// route-server RIBs, blackholing rules and flow keys are all expressed in
// terms of them.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "util/result.hpp"

namespace stellar::net {

/// IPv4 address, stored in host byte order.
class IPv4Address {
 public:
  constexpr IPv4Address() = default;
  constexpr explicit IPv4Address(std::uint32_t value) : value_(value) {}
  constexpr IPv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) | (std::uint32_t{c} << 8) |
               std::uint32_t{d}) {}

  /// Strict dotted-quad parse: exactly four decimal octets, no leading '+',
  /// values 0..255. Leading zeros are accepted ("010" == 10).
  static util::Result<IPv4Address> Parse(std::string_view text);

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
  [[nodiscard]] std::string str() const;

  friend constexpr auto operator<=>(const IPv4Address&, const IPv4Address&) = default;

 private:
  std::uint32_t value_ = 0;
};

/// IPv6 address, 16 bytes in network order.
class IPv6Address {
 public:
  using Bytes = std::array<std::uint8_t, 16>;

  constexpr IPv6Address() : bytes_{} {}
  constexpr explicit IPv6Address(const Bytes& bytes) : bytes_(bytes) {}

  /// Parses full and "::"-compressed textual forms (RFC 4291 §2.2 forms 1-2;
  /// the embedded-IPv4 form "::ffff:1.2.3.4" is also accepted).
  static util::Result<IPv6Address> Parse(std::string_view text);

  [[nodiscard]] const Bytes& bytes() const { return bytes_; }
  /// Canonical RFC 5952 formatting: lowercase hex, longest zero run compressed.
  [[nodiscard]] std::string str() const;

  /// Hextet (16-bit group) i in [0,8), host order.
  [[nodiscard]] std::uint16_t hextet(std::size_t i) const {
    return static_cast<std::uint16_t>((std::uint16_t{bytes_[2 * i]} << 8) | bytes_[2 * i + 1]);
  }

  friend auto operator<=>(const IPv6Address&, const IPv6Address&) = default;

 private:
  Bytes bytes_;
};

/// IPv4 prefix. Invariant: host bits below the mask are zero (enforced at
/// construction by masking), length <= 32.
class Prefix4 {
 public:
  constexpr Prefix4() = default;
  Prefix4(IPv4Address addr, std::uint8_t length);

  /// Parses "a.b.c.d/len". A bare address parses as a /32.
  static util::Result<Prefix4> Parse(std::string_view text);

  /// The /32 host route for an address.
  static Prefix4 HostRoute(IPv4Address addr) { return Prefix4(addr, 32); }

  [[nodiscard]] IPv4Address address() const { return addr_; }
  [[nodiscard]] std::uint8_t length() const { return length_; }
  [[nodiscard]] std::uint32_t mask() const;
  [[nodiscard]] bool contains(IPv4Address a) const;
  /// True if `other` is equal to or more specific than *this.
  [[nodiscard]] bool contains(const Prefix4& other) const;
  [[nodiscard]] std::string str() const;

  friend constexpr auto operator<=>(const Prefix4&, const Prefix4&) = default;

 private:
  IPv4Address addr_;
  std::uint8_t length_ = 0;
};

/// IPv6 prefix with the same invariants as Prefix4 (length <= 128).
class Prefix6 {
 public:
  Prefix6() = default;
  Prefix6(IPv6Address addr, std::uint8_t length);

  static util::Result<Prefix6> Parse(std::string_view text);
  static Prefix6 HostRoute(IPv6Address addr) { return Prefix6(addr, 128); }

  [[nodiscard]] const IPv6Address& address() const { return addr_; }
  [[nodiscard]] std::uint8_t length() const { return length_; }
  [[nodiscard]] bool contains(const IPv6Address& a) const;
  [[nodiscard]] bool contains(const Prefix6& other) const;
  [[nodiscard]] std::string str() const;

  friend auto operator<=>(const Prefix6&, const Prefix6&) = default;

 private:
  IPv6Address addr_;
  std::uint8_t length_ = 0;
};

}  // namespace stellar::net

template <>
struct std::hash<stellar::net::IPv4Address> {
  std::size_t operator()(const stellar::net::IPv4Address& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};

template <>
struct std::hash<stellar::net::Prefix4> {
  std::size_t operator()(const stellar::net::Prefix4& p) const noexcept {
    return std::hash<std::uint64_t>{}(
        (std::uint64_t{p.address().value()} << 8) | p.length());
  }
};

template <>
struct std::hash<stellar::net::IPv6Address> {
  std::size_t operator()(const stellar::net::IPv6Address& a) const noexcept {
    std::uint64_t hi = 0;
    std::uint64_t lo = 0;
    for (int i = 0; i < 8; ++i) hi = (hi << 8) | a.bytes()[i];
    for (int i = 8; i < 16; ++i) lo = (lo << 8) | a.bytes()[i];
    return std::hash<std::uint64_t>{}(hi) ^ (std::hash<std::uint64_t>{}(lo) << 1);
  }
};
