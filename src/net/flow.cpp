#include "net/flow.hpp"

namespace stellar::net {

std::string_view ToString(IpProto proto) {
  switch (proto) {
    case IpProto::kIcmp: return "icmp";
    case IpProto::kTcp: return "tcp";
    case IpProto::kUdp: return "udp";
  }
  return "proto?";
}

std::string FlowKey::str() const {
  return std::string(ToString(proto)) + " " + src_ip.str() + ":" + std::to_string(src_port) +
         " -> " + dst_ip.str() + ":" + std::to_string(dst_port) + " [" + src_mac.str() + "]";
}

}  // namespace stellar::net
