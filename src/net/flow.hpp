// Flow-level traffic vocabulary: IP protocols, L2-L4 flow keys, and fluid
// flow samples. The data plane simulation is flow-level (not per-packet):
// each sample carries an aggregate byte volume for one time bin, which is the
// right granularity for Tbps-scale DDoS experiments and matches the IPFIX
// viewpoint the paper measures with.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "net/ip.hpp"
#include "net/mac.hpp"

namespace stellar::net {

/// IANA IP protocol numbers used by the system.
enum class IpProto : std::uint8_t {
  kIcmp = 1,
  kTcp = 6,
  kUdp = 17,
};

[[nodiscard]] std::string_view ToString(IpProto proto);

/// L2-L4 flow identity as seen by the IXP fabric: source MAC identifies the
/// sending member router; the 5-tuple identifies the IP flow.
struct FlowKey {
  MacAddress src_mac;   ///< Member router that handed the traffic to the IXP.
  IPv4Address src_ip;
  IPv4Address dst_ip;
  IpProto proto = IpProto::kUdp;
  std::uint16_t src_port = 0;  ///< 0 for ICMP / fragments.
  std::uint16_t dst_port = 0;

  friend bool operator==(const FlowKey&, const FlowKey&) = default;
  [[nodiscard]] std::string str() const;
};

/// One fluid traffic sample: `bytes` of the given flow observed during the
/// time bin starting at `time_s` (bin width is owned by the generator).
struct FlowSample {
  double time_s = 0.0;
  FlowKey key;
  std::uint64_t bytes = 0;
  std::uint64_t packets = 0;

  [[nodiscard]] double mbps(double bin_seconds) const {
    return static_cast<double>(bytes) * 8.0 / 1e6 / bin_seconds;
  }
};

}  // namespace stellar::net

template <>
struct std::hash<stellar::net::FlowKey> {
  std::size_t operator()(const stellar::net::FlowKey& k) const noexcept {
    std::size_t h = std::hash<stellar::net::MacAddress>{}(k.src_mac);
    auto mix = [&h](std::size_t v) { h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2); };
    mix(std::hash<stellar::net::IPv4Address>{}(k.src_ip));
    mix(std::hash<stellar::net::IPv4Address>{}(k.dst_ip));
    mix(static_cast<std::size_t>(k.proto));
    mix((static_cast<std::size_t>(k.src_port) << 16) | k.dst_port);
    return h;
  }
};
