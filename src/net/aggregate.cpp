#include "net/aggregate.hpp"

#include <algorithm>

namespace stellar::net {

namespace {

/// True if `a` and `b` are the two halves of the same parent prefix.
bool AreSiblings(const Prefix4& a, const Prefix4& b) {
  if (a.length() != b.length() || a.length() == 0) return false;
  const std::uint32_t sibling_bit = 1u << (32 - a.length());
  return (a.address().value() ^ b.address().value()) == sibling_bit;
}

}  // namespace

std::vector<Prefix4> AggregatePrefixes(std::vector<Prefix4> prefixes) {
  // Sort by address then by length: a covering prefix precedes its
  // more-specifics, so containment removal is a single sweep.
  std::sort(prefixes.begin(), prefixes.end(), [](const Prefix4& a, const Prefix4& b) {
    if (a.address() != b.address()) return a.address() < b.address();
    return a.length() < b.length();
  });
  std::vector<Prefix4> out;
  for (const auto& p : prefixes) {
    if (!out.empty() && out.back().contains(p)) continue;  // Contained: drop.
    out.push_back(p);
    // Merge sibling pairs bottom-up; a merge may enable further merges
    // (e.g. four /26s collapsing into one /24) or swallow earlier entries.
    while (out.size() >= 2) {
      Prefix4& prev = out[out.size() - 2];
      Prefix4& last = out.back();
      if (AreSiblings(prev, last)) {
        const Prefix4 parent(prev.address(), static_cast<std::uint8_t>(prev.length() - 1));
        out.pop_back();
        out.back() = parent;
      } else if (prev.contains(last)) {
        out.pop_back();
      } else {
        break;
      }
    }
  }
  return out;
}

namespace {

/// True if `a` and `b` are the two halves of the same v6 parent prefix.
bool AreSiblings6(const Prefix6& a, const Prefix6& b) {
  if (a.length() != b.length() || a.length() == 0) return false;
  const int bit_index = a.length() - 1;       // Differing bit, 0-based from MSB.
  const std::size_t byte = static_cast<std::size_t>(bit_index / 8);
  const std::uint8_t mask = static_cast<std::uint8_t>(0x80 >> (bit_index % 8));
  for (std::size_t i = 0; i < 16; ++i) {
    const std::uint8_t diff = a.address().bytes()[i] ^ b.address().bytes()[i];
    if (i == byte ? diff != mask : diff != 0) return false;
  }
  return true;
}

}  // namespace

std::vector<Prefix6> AggregatePrefixes6(std::vector<Prefix6> prefixes) {
  std::sort(prefixes.begin(), prefixes.end(), [](const Prefix6& a, const Prefix6& b) {
    if (!(a.address() == b.address())) return a.address() < b.address();
    return a.length() < b.length();
  });
  std::vector<Prefix6> out;
  for (const auto& p : prefixes) {
    if (!out.empty() && out.back().contains(p)) continue;
    out.push_back(p);
    while (out.size() >= 2) {
      Prefix6& prev = out[out.size() - 2];
      Prefix6& last = out.back();
      if (AreSiblings6(prev, last)) {
        const Prefix6 parent(prev.address(), static_cast<std::uint8_t>(prev.length() - 1));
        out.pop_back();
        out.back() = parent;
      } else if (prev.contains(last)) {
        out.pop_back();
      } else {
        break;
      }
    }
  }
  return out;
}

bool CoveredBy(const std::vector<Prefix4>& prefixes, IPv4Address address) {
  for (const auto& p : prefixes) {
    if (p.contains(address)) return true;
  }
  return false;
}

bool CoveredBy6(const std::vector<Prefix6>& prefixes, const IPv6Address& address) {
  for (const auto& p : prefixes) {
    if (p.contains(address)) return true;
  }
  return false;
}

}  // namespace stellar::net
