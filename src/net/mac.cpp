#include "net/mac.hpp"

#include <cstdio>

namespace stellar::net {

util::Result<MacAddress> MacAddress::Parse(std::string_view text) {
  Bytes bytes{};
  std::size_t pos = 0;
  for (int octet = 0; octet < 6; ++octet) {
    if (octet != 0) {
      if (pos >= text.size() || (text[pos] != ':' && text[pos] != '-')) {
        return util::MakeError("net.parse", "bad MAC address: '" + std::string(text) + "'");
      }
      ++pos;
    }
    unsigned v = 0;
    int digits = 0;
    while (pos < text.size() && digits < 2) {
      const char c = text[pos];
      unsigned d = 0;
      if (c >= '0' && c <= '9') d = static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') d = static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') d = static_cast<unsigned>(c - 'A' + 10);
      else break;
      v = v * 16 + d;
      ++pos;
      ++digits;
    }
    if (digits != 2) {
      return util::MakeError("net.parse", "bad MAC address: '" + std::string(text) + "'");
    }
    bytes[static_cast<std::size_t>(octet)] = static_cast<std::uint8_t>(v);
  }
  if (pos != text.size()) {
    return util::MakeError("net.parse", "trailing characters in MAC: '" + std::string(text) + "'");
  }
  return MacAddress(bytes);
}

MacAddress MacAddress::ForRouter(std::uint32_t asn, std::uint8_t router_index) {
  Bytes b{};
  b[0] = 0x02;  // Locally administered, unicast.
  b[1] = static_cast<std::uint8_t>(asn >> 24);
  b[2] = static_cast<std::uint8_t>(asn >> 16);
  b[3] = static_cast<std::uint8_t>(asn >> 8);
  b[4] = static_cast<std::uint8_t>(asn);
  b[5] = router_index;
  return MacAddress(b);
}

std::string MacAddress::str() const {
  char buf[18];
  std::snprintf(buf, sizeof buf, "%02x:%02x:%02x:%02x:%02x:%02x", bytes_[0], bytes_[1], bytes_[2],
                bytes_[3], bytes_[4], bytes_[5]);
  return buf;
}

std::uint64_t MacAddress::as_u64() const {
  std::uint64_t v = 0;
  for (std::uint8_t b : bytes_) v = (v << 8) | b;
  return v;
}

}  // namespace stellar::net
