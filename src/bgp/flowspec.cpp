#include "bgp/flowspec.hpp"

#include <algorithm>

#include "bgp/wire.hpp"

namespace stellar::bgp::flowspec {

namespace {

util::Error FsError(std::string what) { return util::MakeError("bgp.flowspec", std::move(what)); }

// Value length encoding: the two "len" bits hold log2 of the byte count.
int ValueByteCount(std::uint32_t v) {
  if (v <= 0xff) return 1;
  if (v <= 0xffff) return 2;
  return 4;
}

bool IsNumeric(ComponentType t) {
  return t != ComponentType::kDstPrefix && t != ComponentType::kSrcPrefix;
}

}  // namespace

NumericOp Eq(std::uint32_t value) {
  NumericOp op;
  op.eq = true;
  op.value = value;
  return op;
}

std::vector<NumericOp> Range(std::uint32_t lo, std::uint32_t hi) {
  NumericOp ge;
  ge.gt = true;
  ge.eq = true;
  ge.value = lo;
  NumericOp le;
  le.lt = true;
  le.eq = true;
  le.value = hi;
  le.and_with_previous = true;
  return {ge, le};
}

std::optional<net::Prefix4> Rule::dst_prefix() const {
  for (const auto& c : components) {
    if (c.type == ComponentType::kDstPrefix) return c.prefix;
  }
  return std::nullopt;
}

std::optional<net::Prefix4> Rule::src_prefix() const {
  for (const auto& c : components) {
    if (c.type == ComponentType::kSrcPrefix) return c.prefix;
  }
  return std::nullopt;
}

namespace {

// RFC 5575 §4.2.1.1: the op list is an OR of AND-groups; an AND bit chains
// an op to its predecessor.
bool OpsMatch(const std::vector<NumericOp>& ops, std::uint32_t x) {
  bool any_group = false;
  bool group_ok = true;
  bool in_group = false;
  for (const auto& op : ops) {
    if (!op.and_with_previous && in_group) {
      any_group = any_group || group_ok;
      group_ok = true;
    }
    group_ok = group_ok && op.matches(x);
    in_group = true;
  }
  if (in_group) any_group = any_group || group_ok;
  return any_group;
}

}  // namespace

bool Rule::matches(const net::FlowKey& flow) const {
  for (const auto& c : components) {
    switch (c.type) {
      case ComponentType::kDstPrefix:
        if (!c.prefix.contains(flow.dst_ip)) return false;
        break;
      case ComponentType::kSrcPrefix:
        if (!c.prefix.contains(flow.src_ip)) return false;
        break;
      case ComponentType::kIpProtocol:
        if (!OpsMatch(c.ops, static_cast<std::uint32_t>(flow.proto))) return false;
        break;
      case ComponentType::kPort:
        if (!OpsMatch(c.ops, flow.src_port) && !OpsMatch(c.ops, flow.dst_port)) return false;
        break;
      case ComponentType::kDstPort:
        if (!OpsMatch(c.ops, flow.dst_port)) return false;
        break;
      case ComponentType::kSrcPort:
        if (!OpsMatch(c.ops, flow.src_port)) return false;
        break;
      default:
        // Components without a fluid-simulation equivalent (TCP flags, packet
        // length, fragments) are treated as non-matching to stay conservative.
        return false;
    }
  }
  return !components.empty();
}

std::string Rule::str() const {
  std::string out = "flowspec{";
  bool first = true;
  for (const auto& c : components) {
    if (!first) out += ", ";
    first = false;
    switch (c.type) {
      case ComponentType::kDstPrefix: out += "dst " + c.prefix.str(); break;
      case ComponentType::kSrcPrefix: out += "src " + c.prefix.str(); break;
      case ComponentType::kIpProtocol: out += "proto"; break;
      case ComponentType::kPort: out += "port"; break;
      case ComponentType::kDstPort: out += "dst-port"; break;
      case ComponentType::kSrcPort: out += "src-port"; break;
      default: out += "type" + std::to_string(static_cast<int>(c.type)); break;
    }
    for (const auto& op : c.ops) {
      out += ' ';
      if (op.and_with_previous) out += '&';
      if (op.gt) out += '>';
      if (op.lt) out += '<';
      if (op.eq) out += '=';
      out += std::to_string(op.value);
    }
  }
  return out + "}";
}

util::Result<std::vector<std::uint8_t>> EncodeNlri(const Rule& rule) {
  if (rule.components.empty()) return FsError("empty rule");
  for (std::size_t i = 1; i < rule.components.size(); ++i) {
    if (rule.components[i].type <= rule.components[i - 1].type) {
      return FsError("component types must be strictly ascending");
    }
  }

  ByteWriter body;
  for (const auto& c : rule.components) {
    body.u8(static_cast<std::uint8_t>(c.type));
    if (!IsNumeric(c.type)) {
      body.u8(c.prefix.length());
      const std::uint32_t v = c.prefix.address().value();
      const int nbytes = (c.prefix.length() + 7) / 8;
      for (int i = 0; i < nbytes; ++i) body.u8(static_cast<std::uint8_t>(v >> (24 - 8 * i)));
      continue;
    }
    if (c.ops.empty()) return FsError("numeric component without operators");
    for (std::size_t i = 0; i < c.ops.size(); ++i) {
      const NumericOp& op = c.ops[i];
      const int nbytes = ValueByteCount(op.value);
      const int len_bits = nbytes == 1 ? 0 : nbytes == 2 ? 1 : 2;
      std::uint8_t op_byte = 0;
      if (i + 1 == c.ops.size()) op_byte |= 0x80;  // End-of-list.
      if (op.and_with_previous) op_byte |= 0x40;
      op_byte |= static_cast<std::uint8_t>(len_bits << 4);
      if (op.lt) op_byte |= 0x04;
      if (op.gt) op_byte |= 0x02;
      if (op.eq) op_byte |= 0x01;
      body.u8(op_byte);
      for (int b = nbytes - 1; b >= 0; --b) body.u8(static_cast<std::uint8_t>(op.value >> (8 * b)));
    }
  }

  ByteWriter out;
  // RFC 5575 §4: lengths < 240 use one byte; larger use 0xFn nn.
  if (body.size() < 240) {
    out.u8(static_cast<std::uint8_t>(body.size()));
  } else if (body.size() < 4096) {
    out.u16(static_cast<std::uint16_t>(0xf000 | body.size()));
  } else {
    return FsError("NLRI too large");
  }
  out.bytes(body.data());
  return out.take();
}

util::Result<DecodedNlri> DecodeNlri(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  auto first = r.u8();
  if (!first.ok()) return first.error();
  std::size_t length = *first;
  if (*first >= 0xf0) {
    auto second = r.u8();
    if (!second.ok()) return second.error();
    length = ((*first & 0x0f) << 8) | *second;
  }
  auto body_r = r.sub(length);
  if (!body_r.ok()) return FsError("NLRI length exceeds buffer");
  ByteReader body = *body_r;

  DecodedNlri out;
  out.consumed = r.position();
  int last_type = 0;
  while (!body.empty()) {
    auto type = body.u8();
    if (!type.ok()) return type.error();
    if (*type <= last_type) return FsError("component types must be strictly ascending");
    last_type = *type;
    Component c;
    c.type = static_cast<ComponentType>(*type);
    if (!IsNumeric(c.type)) {
      auto len = body.u8();
      if (!len.ok()) return len.error();
      if (*len > 32) return FsError("bad prefix length");
      std::uint32_t v = 0;
      const int nbytes = (*len + 7) / 8;
      for (int i = 0; i < nbytes; ++i) {
        auto b = body.u8();
        if (!b.ok()) return b.error();
        v |= std::uint32_t{*b} << (24 - 8 * i);
      }
      c.prefix = net::Prefix4(net::IPv4Address(v), *len);
    } else {
      bool end = false;
      while (!end) {
        auto op_byte = body.u8();
        if (!op_byte.ok()) return FsError("truncated operator list");
        end = (*op_byte & 0x80) != 0;
        NumericOp op;
        op.and_with_previous = (*op_byte & 0x40) != 0;
        op.lt = (*op_byte & 0x04) != 0;
        op.gt = (*op_byte & 0x02) != 0;
        op.eq = (*op_byte & 0x01) != 0;
        const int nbytes = 1 << ((*op_byte >> 4) & 0x03);
        if (nbytes > 4) return FsError("8-byte operands not supported");
        std::uint32_t v = 0;
        for (int i = 0; i < nbytes; ++i) {
          auto b = body.u8();
          if (!b.ok()) return b.error();
          v = (v << 8) | *b;
        }
        op.value = v;
        c.ops.push_back(op);
      }
    }
    out.rule.components.push_back(std::move(c));
  }
  return out;
}

ExtendedCommunity Action::to_extended_community(std::uint16_t asn) const {
  return ExtendedCommunity::FlowspecTrafficRate(asn, rate_limit_bytes_per_s.value_or(0.0f));
}

std::optional<Action> Action::from_extended_communities(
    std::span<const ExtendedCommunity> communities) {
  for (const auto& ec : communities) {
    if (ec.type() == ExtendedCommunity::kTypeGenericTransitiveExp &&
        ec.subtype() == ExtendedCommunity::kSubTypeFlowspecTrafficRate) {
      Action a;
      a.rate_limit_bytes_per_s = ec.traffic_rate_bytes_per_second();
      return a;
    }
  }
  return std::nullopt;
}

}  // namespace stellar::bgp::flowspec
