// BGP-4 message model and wire codec (RFC 4271), with the extensions Stellar
// depends on:
//   - 4-octet AS numbers (RFC 6793),
//   - ADD-PATH (RFC 7911) — the blackholing controller's iBGP session uses it
//     to see *all* paths for a prefix, bypassing route-server best-path,
//   - standard communities (RFC 1997), extended communities (RFC 4360),
//     large communities (RFC 8092),
//   - MP_REACH/MP_UNREACH (RFC 4760) for IPv6 unicast NLRI.
//
// Encode/Decode are pure functions over byte buffers; session framing lives
// in session.cpp. Decoding is strict about structure but tolerant about
// unknown optional-transitive attributes (kept as opaque bytes), matching
// how real route servers behave.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "bgp/types.hpp"
#include "net/ip.hpp"
#include "util/result.hpp"

namespace stellar::bgp {

enum class MessageType : std::uint8_t {
  kOpen = 1,
  kUpdate = 2,
  kNotification = 3,
  kKeepalive = 4,
  kRouteRefresh = 5,  ///< RFC 2918.
};

/// Notification error codes (RFC 4271 §6.1).
enum class NotificationCode : std::uint8_t {
  kMessageHeaderError = 1,
  kOpenMessageError = 2,
  kUpdateMessageError = 3,
  kHoldTimerExpired = 4,
  kFsmError = 5,
  kCease = 6,
};

/// Address family identifiers used here.
inline constexpr std::uint16_t kAfiIPv4 = 1;
inline constexpr std::uint16_t kAfiIPv6 = 2;
inline constexpr std::uint8_t kSafiUnicast = 1;
inline constexpr std::uint8_t kSafiFlowspec = 133;  ///< RFC 5575.

/// A BGP capability (RFC 5492), stored raw with typed accessors for the ones
/// the system understands.
struct Capability {
  static constexpr std::uint8_t kMultiprotocol = 1;   ///< RFC 4760
  static constexpr std::uint8_t kRouteRefresh = 2;    ///< RFC 2918
  static constexpr std::uint8_t kFourOctetAs = 65;    ///< RFC 6793
  static constexpr std::uint8_t kAddPath = 69;        ///< RFC 7911

  std::uint8_t code = 0;
  std::vector<std::uint8_t> value;

  friend bool operator==(const Capability&, const Capability&) = default;
};

/// ADD-PATH per-AFI/SAFI negotiation element (RFC 7911 §4).
struct AddPathTuple {
  std::uint16_t afi = kAfiIPv4;
  std::uint8_t safi = kSafiUnicast;
  std::uint8_t send_receive = 0;  ///< 1 = receive, 2 = send, 3 = both.

  friend bool operator==(const AddPathTuple&, const AddPathTuple&) = default;
};

struct OpenMessage {
  std::uint8_t version = 4;
  Asn my_asn = 0;  ///< Full 4-octet ASN; the wire carries AS_TRANS + capability 65 when > 65535.
  std::uint16_t hold_time_s = 90;
  net::IPv4Address bgp_identifier;
  std::vector<Capability> capabilities;

  // -- Capability construction helpers --------------------------------------
  void add_four_octet_as_capability();
  void add_multiprotocol_capability(std::uint16_t afi, std::uint8_t safi);
  void add_add_path_capability(std::span<const AddPathTuple> tuples);

  // -- Capability query helpers ----------------------------------------------
  [[nodiscard]] std::optional<Asn> four_octet_asn() const;
  [[nodiscard]] std::vector<AddPathTuple> add_path_tuples() const;
  [[nodiscard]] bool supports_multiprotocol(std::uint16_t afi, std::uint8_t safi) const;

  /// The ASN this OPEN effectively announces (capability 65 wins over the
  /// 2-octet field).
  [[nodiscard]] Asn effective_asn() const;

  friend bool operator==(const OpenMessage&, const OpenMessage&) = default;
};

/// One AS_PATH segment (RFC 4271 §4.3: AS_SET=1 or AS_SEQUENCE=2).
struct AsPathSegment {
  enum class Type : std::uint8_t { kSet = 1, kSequence = 2 };
  Type type = Type::kSequence;
  std::vector<Asn> asns;

  friend bool operator==(const AsPathSegment&, const AsPathSegment&) = default;
};

/// An unrecognized optional-transitive attribute carried through verbatim.
struct OpaqueAttribute {
  std::uint8_t flags = 0;
  std::uint8_t type = 0;
  std::vector<std::uint8_t> value;

  friend bool operator==(const OpaqueAttribute&, const OpaqueAttribute&) = default;
};

/// IPv6 unicast reachability carried in MP_REACH/MP_UNREACH (RFC 4760).
struct MpReachIPv6 {
  net::IPv6Address next_hop;
  std::vector<net::Prefix6> nlri;

  friend bool operator==(const MpReachIPv6&, const MpReachIPv6&) = default;
};
struct MpUnreachIPv6 {
  std::vector<net::Prefix6> withdrawn;

  friend bool operator==(const MpUnreachIPv6&, const MpUnreachIPv6&) = default;
};

/// The decoded path attributes of an UPDATE.
struct PathAttributes {
  std::optional<Origin> origin;
  std::vector<AsPathSegment> as_path;
  std::optional<net::IPv4Address> next_hop;
  std::optional<std::uint32_t> med;
  std::optional<std::uint32_t> local_pref;
  bool atomic_aggregate = false;
  std::optional<std::pair<Asn, net::IPv4Address>> aggregator;
  std::vector<Community> communities;
  std::vector<ExtendedCommunity> extended_communities;
  std::vector<LargeCommunity> large_communities;
  std::optional<MpReachIPv6> mp_reach_ipv6;
  std::optional<MpUnreachIPv6> mp_unreach_ipv6;
  std::vector<OpaqueAttribute> unrecognized;

  [[nodiscard]] std::size_t as_path_length() const;
  [[nodiscard]] std::optional<Asn> origin_asn() const;  ///< Rightmost ASN of the path.
  [[nodiscard]] bool has_community(Community c) const;
  [[nodiscard]] bool has_extended_community(const ExtendedCommunity& c) const;
  void add_community(Community c);           ///< Idempotent.
  void remove_community(Community c);
  /// Prepends `asn` to the leading AS_SEQUENCE (creating one if needed).
  void prepend_asn(Asn asn);

  friend bool operator==(const PathAttributes&, const PathAttributes&) = default;
};

/// IPv4 NLRI element; `path_id` is meaningful only on sessions where ADD-PATH
/// was negotiated for IPv4 unicast (the codec is told via CodecOptions).
struct Nlri4 {
  PathId path_id = 0;
  net::Prefix4 prefix;

  friend auto operator<=>(const Nlri4&, const Nlri4&) = default;
};

struct UpdateMessage {
  std::vector<Nlri4> withdrawn;
  PathAttributes attrs;
  std::vector<Nlri4> announced;

  [[nodiscard]] bool is_end_of_rib() const {
    return withdrawn.empty() && announced.empty() && attrs == PathAttributes{};
  }

  friend bool operator==(const UpdateMessage&, const UpdateMessage&) = default;
};

struct NotificationMessage {
  NotificationCode code = NotificationCode::kCease;
  std::uint8_t subcode = 0;
  std::vector<std::uint8_t> data;

  friend bool operator==(const NotificationMessage&, const NotificationMessage&) = default;
};

struct KeepaliveMessage {
  friend bool operator==(const KeepaliveMessage&, const KeepaliveMessage&) = default;
};

/// ROUTE-REFRESH (RFC 2918): asks the peer to re-advertise its Adj-RIB-Out
/// for one AFI/SAFI. This is how a member that fixed its import policy (e.g.
/// enabled /32 blackhole acceptance, the paper's §2.4 remediation) recovers
/// the routes it previously filtered, without a session reset.
struct RouteRefreshMessage {
  std::uint16_t afi = kAfiIPv4;
  std::uint8_t safi = kSafiUnicast;

  friend bool operator==(const RouteRefreshMessage&, const RouteRefreshMessage&) = default;
};

using Message = std::variant<OpenMessage, UpdateMessage, NotificationMessage, KeepaliveMessage,
                             RouteRefreshMessage>;

[[nodiscard]] MessageType TypeOf(const Message& msg);

/// Session-dependent codec state: both sides must agree (negotiated in OPEN).
struct CodecOptions {
  bool add_path_ipv4_unicast = false;  ///< 4-byte path ids precede IPv4 NLRI.
  bool four_octet_as = true;           ///< AS_PATH carries 4-byte ASNs.
};

/// Serializes one message including the 19-byte header. Never fails: the
/// message model cannot represent invalid messages, and oversized updates are
/// a caller bug (checked: throws std::length_error past 4096 bytes).
[[nodiscard]] std::vector<std::uint8_t> Encode(const Message& msg,
                                               const CodecOptions& opts = {});

/// Decodes exactly one whole message from `data` (must contain exactly one).
[[nodiscard]] util::Result<Message> Decode(std::span<const std::uint8_t> data,
                                           const CodecOptions& opts = {});

/// Stream framing: if `data` starts with a complete message, decodes it and
/// returns the number of bytes consumed; returns 0 consumed if more bytes are
/// needed. Errors indicate an unrecoverable framing problem.
struct FramedMessage {
  std::optional<Message> message;  ///< nullopt => need more data.
  std::size_t consumed = 0;
};
[[nodiscard]] util::Result<FramedMessage> DecodeFramed(std::span<const std::uint8_t> data,
                                                       const CodecOptions& opts = {});

inline constexpr std::size_t kHeaderSize = 19;
inline constexpr std::size_t kMaxMessageSize = 4096;

}  // namespace stellar::bgp
