#include "bgp/session.hpp"

#include <algorithm>
#include <cassert>

namespace stellar::bgp {

// ---------------------------------------------------------------------------
// Endpoint / Link.

void Endpoint::send(std::vector<std::uint8_t> bytes) {
  auto peer = peer_.lock();
  if (closed_ || !peer || peer->closed_) {
    sends_after_close_.inc();
    dropped_bytes_.inc(bytes.size());
    return;
  }
  sim::Duration delay = latency_;
  if (fault_filter_ && !fault_filter_(bytes, delay)) {
    dropped_bytes_.inc(bytes.size());  // Injected drop.
    return;
  }
  queue_->schedule_after(delay, [self = self_, peer, data = std::move(bytes)] {
    if (peer->closed_ || !peer->on_receive_) {
      // Closed while the bytes were in flight: account them as lost.
      if (auto s = self.lock()) s->dropped_bytes_.inc(data.size());
      return;
    }
    peer->on_receive_(data);
  });
}

void Endpoint::close() {
  if (closed_) return;
  closed_ = true;
  if (auto peer = peer_.lock()) {
    queue_->schedule_after(latency_, [peer] {
      if (peer->closed_) return;
      peer->closed_ = true;
      if (peer->on_close_) peer->on_close_();
    });
  }
}

namespace {
LinkHook g_link_hook;
}  // namespace

LinkHook SetLinkHook(LinkHook hook) {
  LinkHook previous = std::move(g_link_hook);
  g_link_hook = std::move(hook);
  return previous;
}

std::pair<std::shared_ptr<Endpoint>, std::shared_ptr<Endpoint>> MakeLink(sim::EventQueue& queue,
                                                                         sim::Duration latency) {
  auto a = std::make_shared<Endpoint>();
  auto b = std::make_shared<Endpoint>();
  a->queue_ = &queue;
  b->queue_ = &queue;
  a->latency_ = latency;
  b->latency_ = latency;
  a->self_ = a;
  b->self_ = b;
  a->peer_ = b;
  b->peer_ = a;
  if (g_link_hook) g_link_hook(a, b);
  return {a, b};
}

// ---------------------------------------------------------------------------
// Session.

std::string_view ToString(SessionState s) {
  switch (s) {
    case SessionState::kIdle: return "Idle";
    case SessionState::kOpenSent: return "OpenSent";
    case SessionState::kOpenConfirm: return "OpenConfirm";
    case SessionState::kEstablished: return "Established";
    case SessionState::kClosed: return "Closed";
  }
  return "?";
}

Session::Session(sim::EventQueue& queue, std::shared_ptr<Endpoint> transport,
                 SessionConfig config)
    : queue_(queue), transport_(std::move(transport)), config_(config) {
  transport_->set_receive_handler([this](std::span<const std::uint8_t> b) { on_bytes(b); });
  transport_->set_close_handler([this] { on_transport_closed(); });
}

Session::~Session() {
  *alive_ = false;
  // Detach transport callbacks: the endpoint may outlive us inside queued
  // link-latency events.
  transport_->set_receive_handler(nullptr);
  transport_->set_close_handler(nullptr);
}

void Session::start() {
  if (state_ != SessionState::kIdle) return;
  OpenMessage open;
  open.my_asn = config_.local_asn;
  open.hold_time_s = config_.hold_time_s;
  open.bgp_identifier = config_.router_id;
  open.add_four_octet_as_capability();
  open.capabilities.push_back(Capability{Capability::kRouteRefresh, {}});
  open.add_multiprotocol_capability(kAfiIPv4, kSafiUnicast);
  if (config_.announce_ipv6_unicast) open.add_multiprotocol_capability(kAfiIPv6, kSafiUnicast);
  if (config_.add_path_rx || config_.add_path_tx) {
    const std::uint8_t mode = static_cast<std::uint8_t>((config_.add_path_rx ? 1 : 0) |
                                                        (config_.add_path_tx ? 2 : 0));
    const AddPathTuple tuple{kAfiIPv4, kSafiUnicast, mode};
    open.add_add_path_capability({&tuple, 1});
  }
  // OPEN itself is negotiation-independent: encode with defaults.
  send(open, CodecOptions{});
  set_state(SessionState::kOpenSent);
}

void Session::announce(UpdateMessage update) {
  if (state_ == SessionState::kClosed) return;
  if (state_ != SessionState::kEstablished) {
    pending_.push_back(std::move(update));
    return;
  }
  ++updates_sent_;
  send(update, tx_codec_);
  arm_keepalive_timer();  // Any message defers the next keepalive.
}

void Session::request_route_refresh(std::uint16_t afi, std::uint8_t safi) {
  // RFC 2918 §4: only send towards peers that advertised the capability.
  if (state_ != SessionState::kEstablished || !peer_supports_route_refresh_) return;
  send(RouteRefreshMessage{afi, safi}, tx_codec_);
  arm_keepalive_timer();
}

void Session::stop(std::uint8_t cease_subcode) {
  if (state_ == SessionState::kClosed) return;
  NotificationMessage n;
  n.code = NotificationCode::kCease;
  n.subcode = cease_subcode;
  send(n, tx_codec_);
  transport_->close();
  set_state(SessionState::kClosed);
}

void Session::on_bytes(std::span<const std::uint8_t> bytes) {
  rx_buffer_.insert(rx_buffer_.end(), bytes.begin(), bytes.end());
  while (true) {
    auto framed = DecodeFramed(rx_buffer_, rx_codec_);
    if (!framed.ok()) {
      fail(NotificationCode::kMessageHeaderError, 0, framed.error().message);
      return;
    }
    if (!framed->message) return;  // Incomplete: wait for more bytes.
    rx_buffer_.erase(rx_buffer_.begin(),
                     rx_buffer_.begin() + static_cast<std::ptrdiff_t>(framed->consumed));
    arm_hold_timer();
    handle_message(std::move(*framed->message));
    if (state_ == SessionState::kClosed) return;
  }
}

void Session::on_transport_closed() {
  set_state(SessionState::kClosed);
}

void Session::handle_message(Message msg) {
  switch (TypeOf(msg)) {
    case MessageType::kOpen:
      handle_open(std::move(std::get<OpenMessage>(msg)));
      break;
    case MessageType::kKeepalive:
      ++keepalives_received_;
      if (state_ == SessionState::kOpenConfirm) enter_established();
      break;
    case MessageType::kUpdate:
      if (state_ != SessionState::kEstablished) {
        fail(NotificationCode::kFsmError, 0, "UPDATE outside Established");
        return;
      }
      ++updates_received_;
      if (on_update_) on_update_(std::get<UpdateMessage>(msg));
      break;
    case MessageType::kNotification:
      transport_->close();
      set_state(SessionState::kClosed);
      break;
    case MessageType::kRouteRefresh:
      if (state_ != SessionState::kEstablished) {
        fail(NotificationCode::kFsmError, 0, "ROUTE-REFRESH outside Established");
        return;
      }
      if (on_refresh_) on_refresh_(std::get<RouteRefreshMessage>(msg));
      break;
  }
}

void Session::handle_open(OpenMessage open) {
  if (state_ != SessionState::kOpenSent) {
    fail(NotificationCode::kFsmError, 0, "OPEN in state " + std::string(ToString(state_)));
    return;
  }
  if (open.version != 4) {
    fail(NotificationCode::kOpenMessageError, 1, "unsupported BGP version");
    return;
  }
  if (open.hold_time_s != 0 && open.hold_time_s < 3) {
    fail(NotificationCode::kOpenMessageError, 6, "unacceptable hold time");
    return;
  }
  peer_asn_ = open.effective_asn();
  hold_time_s_ = std::min(config_.hold_time_s, open.hold_time_s);
  for (const auto& cap : open.capabilities) {
    if (cap.code == Capability::kRouteRefresh) peer_supports_route_refresh_ = true;
  }

  // ADD-PATH negotiation (RFC 7911 §5): we may receive path-ids iff we said
  // "receive" and the peer said "send"; symmetrically for sending.
  bool peer_tx = false;
  bool peer_rx = false;
  for (const auto& t : open.add_path_tuples()) {
    if (t.afi == kAfiIPv4 && t.safi == kSafiUnicast) {
      peer_rx = (t.send_receive & 1) != 0;
      peer_tx = (t.send_receive & 2) != 0;
    }
  }
  rx_codec_.add_path_ipv4_unicast = config_.add_path_rx && peer_tx;
  tx_codec_.add_path_ipv4_unicast = config_.add_path_tx && peer_rx;
  rx_codec_.four_octet_as = open.four_octet_asn().has_value();
  tx_codec_.four_octet_as = rx_codec_.four_octet_as;

  send(KeepaliveMessage{}, tx_codec_);
  set_state(SessionState::kOpenConfirm);
}

void Session::enter_established() {
  set_state(SessionState::kEstablished);
  arm_keepalive_timer();
  arm_hold_timer();
  while (!pending_.empty() && state_ == SessionState::kEstablished) {
    UpdateMessage u = std::move(pending_.front());
    pending_.pop_front();
    ++updates_sent_;
    send(u, tx_codec_);
  }
}

void Session::send(const Message& msg, const CodecOptions& codec) {
  transport_->send(Encode(msg, codec));
}

void Session::fail(NotificationCode code, std::uint8_t subcode, const std::string& why) {
  (void)why;  // Kept for debuggability via a breakpoint; not logged by default.
  NotificationMessage n;
  n.code = code;
  n.subcode = subcode;
  send(n, tx_codec_);
  transport_->close();
  set_state(SessionState::kClosed);
}

void Session::set_state(SessionState s) {
  if (state_ == s) return;
  state_ = s;
  if (s == SessionState::kClosed) {
    ++hold_generation_;
    ++keepalive_generation_;
  }
  if (on_state_) on_state_(s);
}

void Session::arm_hold_timer() {
  if (hold_time_s_ == 0 && state_ != SessionState::kEstablished) return;
  if (hold_time_s_ == 0) return;
  const std::uint64_t gen = ++hold_generation_;
  queue_.schedule_after(sim::Seconds(hold_time_s_), [this, gen, alive = alive_] {
    if (!*alive || gen != hold_generation_ || state_ != SessionState::kEstablished) return;
    fail(NotificationCode::kHoldTimerExpired, 0, "hold timer expired");
  });
}

void Session::arm_keepalive_timer() {
  if (hold_time_s_ == 0) return;
  const std::uint64_t gen = ++keepalive_generation_;
  const double interval = hold_time_s_ / 3.0;
  queue_.schedule_after(sim::Seconds(interval), [this, gen, alive = alive_] {
    if (!*alive || gen != keepalive_generation_ || state_ != SessionState::kEstablished) return;
    send(KeepaliveMessage{}, tx_codec_);
    arm_keepalive_timer();
  });
}

}  // namespace stellar::bgp
