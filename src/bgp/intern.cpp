#include "bgp/intern.hpp"

#include <utility>

namespace stellar::bgp {

namespace {

inline void Mix(std::size_t& seed, std::size_t v) {
  // boost::hash_combine constant; good avalanche for sequential field mixing.
  seed ^= v + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2);
}

}  // namespace

std::size_t HashAttrs(const PathAttributes& attrs) {
  std::size_t h = 0;
  Mix(h, attrs.origin ? static_cast<std::size_t>(*attrs.origin) + 1 : 0);
  for (const auto& seg : attrs.as_path) {
    Mix(h, static_cast<std::size_t>(seg.type));
    for (const Asn asn : seg.asns) Mix(h, asn);
  }
  Mix(h, attrs.next_hop ? attrs.next_hop->value() + 1ull : 0);
  Mix(h, attrs.med ? *attrs.med + 1ull : 0);
  Mix(h, attrs.local_pref ? *attrs.local_pref + 1ull : 0);
  Mix(h, attrs.atomic_aggregate ? 2 : 1);
  for (const auto& c : attrs.communities) Mix(h, c.raw());
  for (const auto& ec : attrs.extended_communities) {
    std::size_t packed = 0;
    for (const auto byte : ec.bytes()) packed = (packed << 8) | byte;
    Mix(h, packed);
  }
  for (const auto& lc : attrs.large_communities) {
    Mix(h, lc.global_admin);
    Mix(h, (static_cast<std::size_t>(lc.data1) << 32) | lc.data2);
  }
  if (attrs.mp_reach_ipv6) {
    for (const auto byte : attrs.mp_reach_ipv6->next_hop.bytes()) Mix(h, byte);
    Mix(h, attrs.mp_reach_ipv6->nlri.size());
  }
  if (attrs.mp_unreach_ipv6) Mix(h, attrs.mp_unreach_ipv6->withdrawn.size() + 1);
  // `aggregator` and `unrecognized` are rare; equality still checks them.
  return h;
}

std::shared_ptr<const PathAttributes> AttrPool::intern(const PathAttributes& attrs) {
  const std::size_t hash = HashAttrs(attrs);
  const auto [lo, hi] = pool_.equal_range(hash);
  for (auto it = lo; it != hi; ++it) {
    if (auto existing = it->second.lock(); existing && *existing == attrs) {
      ++stats_.hits;
      return existing;
    }
  }
  return adopt(hash, PathAttributes(attrs));
}

std::shared_ptr<const PathAttributes> AttrPool::intern(PathAttributes&& attrs) {
  const std::size_t hash = HashAttrs(attrs);
  const auto [lo, hi] = pool_.equal_range(hash);
  for (auto it = lo; it != hi; ++it) {
    if (auto existing = it->second.lock(); existing && *existing == attrs) {
      ++stats_.hits;
      return existing;
    }
  }
  return adopt(hash, std::move(attrs));
}

std::shared_ptr<const PathAttributes> AttrPool::adopt(std::size_t hash, PathAttributes&& attrs) {
  ++stats_.misses;
  // The deleter unlinks the pool slot when the last RIB reference drops, so
  // withdrawn routes do not leave tombstones behind. `this` outlives every
  // interned pointer: the global pool is a function-local static constructed
  // before any RIB and destroyed after them.
  std::shared_ptr<const PathAttributes> value(
      new PathAttributes(std::move(attrs)), [this, hash](const PathAttributes* p) {
        release(hash, p);
        delete p;
      });
  pool_.emplace(hash, value);
  return value;
}

void AttrPool::release(std::size_t hash, const PathAttributes* attrs) noexcept {
  // Single-threaded: each expiring value runs its deleter immediately, so at
  // most one expired slot exists per bucket — it is necessarily `attrs`'s.
  const auto [lo, hi] = pool_.equal_range(hash);
  for (auto it = lo; it != hi; ++it) {
    if (it->second.expired()) {
      pool_.erase(it);
      ++stats_.released;
      return;
    }
  }
  (void)attrs;
}

AttrPool& AttrPool::global() {
  static AttrPool pool;
  return pool;
}

}  // namespace stellar::bgp
