#include "bgp/wire.hpp"

namespace stellar::bgp {

namespace {
util::Error Truncated(std::size_t want, std::size_t have) {
  return util::MakeError("bgp.wire.truncated", "need " + std::to_string(want) + " bytes, have " +
                                                   std::to_string(have));
}
}  // namespace

util::Result<std::uint8_t> ByteReader::u8() {
  if (remaining() < 1) return Truncated(1, remaining());
  return data_[pos_++];
}

util::Result<std::uint16_t> ByteReader::u16() {
  if (remaining() < 2) return Truncated(2, remaining());
  const std::uint16_t v =
      static_cast<std::uint16_t>((std::uint16_t{data_[pos_]} << 8) | data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

util::Result<std::uint32_t> ByteReader::u32() {
  if (remaining() < 4) return Truncated(4, remaining());
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
  pos_ += 4;
  return v;
}

util::Result<std::uint64_t> ByteReader::u64() {
  if (remaining() < 8) return Truncated(8, remaining());
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
  pos_ += 8;
  return v;
}

util::Result<std::vector<std::uint8_t>> ByteReader::bytes(std::size_t n) {
  if (remaining() < n) return Truncated(n, remaining());
  std::vector<std::uint8_t> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

util::Result<ByteReader> ByteReader::sub(std::size_t n) {
  if (remaining() < n) return Truncated(n, remaining());
  ByteReader r(data_.subspan(pos_, n));
  pos_ += n;
  return r;
}

}  // namespace stellar::bgp
