#include "bgp/reconnect.hpp"

#include "obs/journal.hpp"

namespace stellar::bgp {
namespace {

std::string SessionSubject(const SessionConfig& config) {
  return "asn" + std::to_string(config.local_asn);
}

}  // namespace

ReconnectingSession::ReconnectingSession(sim::EventQueue& queue, TransportFactory factory,
                                         SessionConfig session_config, ReconnectPolicy policy)
    : queue_(queue),
      factory_(std::move(factory)),
      session_config_(session_config),
      policy_(policy),
      damping_(policy),
      jitter_rng_(policy.seed),
      next_backoff_s_(policy.initial_backoff_s) {}

void ReconnectingSession::start() {
  if (started_) return;
  started_ = true;
  dial();
}

void ReconnectingSession::stop(std::uint8_t cease_subcode) {
  stopped_ = true;
  if (session_) session_->stop(cease_subcode);
}

void ReconnectingSession::set_update_handler(Session::UpdateHandler h) {
  on_update_ = std::move(h);
  if (session_) session_->set_update_handler(on_update_);
}

void ReconnectingSession::set_state_handler(Session::StateHandler h) {
  on_state_user_ = std::move(h);
}

void ReconnectingSession::set_refresh_handler(Session::RefreshHandler h) {
  on_refresh_ = std::move(h);
  if (session_) session_->set_refresh_handler(on_refresh_);
}

void ReconnectingSession::dial() {
  std::shared_ptr<Endpoint> transport = factory_ ? factory_() : nullptr;
  if (!transport) {
    ++stats_.give_ups;
    return;
  }
  ++stats_.dial_attempts;
  was_established_ = false;
  session_ = std::make_unique<Session>(queue_, std::move(transport), session_config_);
  attach_handlers();
  session_->start();
  if (policy_.dial_timeout_s > 0.0) {
    const std::uint64_t gen = ++dial_generation_;
    queue_.schedule_after(sim::Seconds(policy_.dial_timeout_s), [this, alive = alive_, gen] {
      if (!*alive || gen != dial_generation_ || stopped_) return;
      if (!session_ || session_->established() ||
          session_->state() == SessionState::kClosed) {
        return;
      }
      // Handshake stalled (e.g. the OPEN was lost): tear it down; the close
      // flows through on_state() and schedules the next attempt.
      ++stats_.dial_timeouts;
      obs::journal().append(queue_.now().count(), obs::EventKind::kDialTimeout,
                            SessionSubject(session_config_));
      session_->stop();
    });
  }
}

void ReconnectingSession::attach_handlers() {
  if (on_update_) session_->set_update_handler(on_update_);
  if (on_refresh_) session_->set_refresh_handler(on_refresh_);
  session_->set_state_handler([this](SessionState state) { on_state(state); });
}

void ReconnectingSession::on_state(SessionState state) {
  if (state == SessionState::kEstablished) {
    if (stats_.flaps > 0) {
      ++stats_.reconnects;
      obs::journal().append(queue_.now().count(), obs::EventKind::kSessionReconnect,
                            SessionSubject(session_config_),
                            "reconnects=" + std::to_string(stats_.reconnects));
    }
    attempts_since_established_ = 0;
    next_backoff_s_ = policy_.initial_backoff_s;
    was_established_ = true;
    if (on_state_user_) on_state_user_(state);
    if (on_established_) on_established_(*session_);
    return;
  }
  if (state == SessionState::kClosed && !stopped_) {
    ++stats_.flaps;
    damping_.record_flap(queue_.now().count());
    obs::journal().append(queue_.now().count(), obs::EventKind::kSessionFlap,
                          SessionSubject(session_config_),
                          "flaps=" + std::to_string(stats_.flaps));
    if (on_state_user_) on_state_user_(state);
    schedule_redial();
    return;
  }
  if (on_state_user_) on_state_user_(state);
}

void ReconnectingSession::schedule_redial() {
  if (redial_pending_ || stopped_) return;
  // The retry budget counts redials only — the initial dial is free, so a
  // never-established session gets max_retries + 1 total attempts and a
  // max_retries of 0 means strictly one-shot.
  if (policy_.max_retries >= 0 && attempts_since_established_ >= policy_.max_retries) {
    ++stats_.give_ups;
    obs::journal().append(queue_.now().count(), obs::EventKind::kSessionGiveUp,
                          SessionSubject(session_config_),
                          "retries=" + std::to_string(attempts_since_established_));
    return;
  }
  ++attempts_since_established_;
  const double now = queue_.now().count();
  const double jitter =
      1.0 + policy_.jitter_frac * (2.0 * jitter_rng_.uniform() - 1.0);
  double delay = std::max(next_backoff_s_ * jitter, 0.0);
  next_backoff_s_ =
      std::min(next_backoff_s_ * policy_.backoff_multiplier, policy_.max_backoff_s);
  if (damping_.suppressed(now)) {
    // Damped: hold the dial until the penalty decays to the reuse threshold.
    ++stats_.suppressed_dials;
    delay = std::max(delay, damping_.reuse_delay(now));
    obs::journal().append(now, obs::EventKind::kSessionSuppressed,
                          SessionSubject(session_config_),
                          "hold_s=" + std::to_string(damping_.reuse_delay(now)));
  }
  stats_.last_backoff_s = delay;
  redial_pending_ = true;
  queue_.schedule_after(sim::Seconds(delay), [this, alive = alive_] {
    if (!*alive) return;
    redial_pending_ = false;
    if (stopped_) return;
    dial();
  });
}

}  // namespace stellar::bgp
