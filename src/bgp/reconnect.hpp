// Self-healing BGP transport: a ReconnectingSession re-dials a session that
// closed unexpectedly, with exponential backoff + deterministic jitter and
// RFC 2439-style route-flap damping applied to the session itself. Damping is
// what keeps one flapping member from churning the rate-limited configuration
// queue and starving other victims: each flap adds a penalty that decays
// exponentially; while the penalty sits above the suppress threshold the
// session is not re-dialed, until decay brings it below the reuse threshold.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <memory>

#include "bgp/session.hpp"
#include "sim/event_queue.hpp"
#include "util/rng.hpp"

namespace stellar::bgp {

/// Backoff + damping knobs for ReconnectingSession.
struct ReconnectPolicy {
  double initial_backoff_s = 1.0;  ///< Delay before the first reconnect attempt.
  double max_backoff_s = 60.0;     ///< Exponential backoff cap.
  double backoff_multiplier = 2.0;
  /// Deterministic jitter: each delay is multiplied by a seeded factor drawn
  /// uniformly from [1 - jitter_frac, 1 + jitter_frac].
  double jitter_frac = 0.1;
  /// Consecutive failed reconnect attempts before giving up permanently.
  /// Negative: retry forever. Zero: never reconnect (one-shot session).
  int max_retries = -1;
  /// A dial that has not reached Established after this long is torn down
  /// and retried — without it, a lost OPEN strands the session in OpenSent
  /// forever (no hold timer runs before negotiation). Zero disables.
  double dial_timeout_s = 30.0;

  // RFC 2439-style flap damping. A "flap" is any unexpected session close.
  double flap_penalty = 1000.0;        ///< Penalty added per flap.
  double suppress_threshold = 3000.0;  ///< Penalty above which dialing stops.
  double reuse_threshold = 1500.0;     ///< Decay below this re-enables dialing.
  double half_life_s = 60.0;           ///< Exponential penalty decay half-life.
  double max_suppress_s = 3600.0;      ///< Hard cap on one suppression episode.

  std::uint64_t seed = 1;  ///< Jitter stream seed (reproducible schedules).
};

/// Exponentially decaying flap penalty (RFC 2439 §2.2 figure-of-merit),
/// reusable standalone for per-peer damping bookkeeping.
class FlapDamping {
 public:
  explicit FlapDamping(const ReconnectPolicy& policy) : policy_(policy) {}

  /// Records one flap at simulation time `now_s`.
  void record_flap(double now_s) {
    penalty_ = penalty(now_s) + policy_.flap_penalty;
    last_update_s_ = now_s;
    if (!suppressed_ && penalty_ >= policy_.suppress_threshold) {
      suppressed_ = true;
      suppressed_since_s_ = now_s;
    }
  }

  /// Current decayed penalty.
  [[nodiscard]] double penalty(double now_s) const {
    const double dt = now_s - last_update_s_;
    if (dt <= 0.0) return penalty_;
    return penalty_ * std::exp2(-dt / policy_.half_life_s);
  }

  /// True while dialing is suppressed (penalty has not yet decayed to the
  /// reuse threshold and the max-suppress cap has not elapsed).
  [[nodiscard]] bool suppressed(double now_s) {
    if (!suppressed_) return false;
    if (penalty(now_s) < policy_.reuse_threshold ||
        now_s - suppressed_since_s_ >= policy_.max_suppress_s) {
      suppressed_ = false;
    }
    return suppressed_;
  }

  /// Seconds from `now_s` until the penalty decays to the reuse threshold.
  [[nodiscard]] double reuse_delay(double now_s) const {
    const double p = penalty(now_s);
    if (p <= policy_.reuse_threshold) return 0.0;
    const double delay = policy_.half_life_s * std::log2(p / policy_.reuse_threshold);
    const double cap_remaining = policy_.max_suppress_s - (now_s - suppressed_since_s_);
    return std::min(delay, std::max(cap_remaining, 0.0));
  }

 private:
  ReconnectPolicy policy_;
  double penalty_ = 0.0;
  double last_update_s_ = 0.0;
  bool suppressed_ = false;
  double suppressed_since_s_ = 0.0;
};

/// A Session plus the recovery state machine around it: dial, run, and on an
/// unexpected close re-dial through a TransportFactory after a backoff that
/// combines exponential growth, deterministic jitter, and flap damping.
/// Handlers survive reconnects — they are re-attached to every new Session.
class ReconnectingSession {
 public:
  /// Produces a fresh transport for each dial attempt (e.g. by calling
  /// RouteServer::accept_member again). Returning nullptr aborts recovery.
  using TransportFactory = std::function<std::shared_ptr<Endpoint>()>;
  /// Fired each time a session (re-)enters Established — the owner replays
  /// announcements / requests ROUTE-REFRESH here.
  using EstablishedHandler = std::function<void(Session&)>;

  ReconnectingSession(sim::EventQueue& queue, TransportFactory factory,
                      SessionConfig session_config, ReconnectPolicy policy);
  ~ReconnectingSession() { *alive_ = false; }
  ReconnectingSession(const ReconnectingSession&) = delete;
  ReconnectingSession& operator=(const ReconnectingSession&) = delete;

  /// Dials the first session. No-op if already started.
  void start();
  /// Intentional shutdown: closes the current session without reconnecting.
  void stop(std::uint8_t cease_subcode = 0);

  /// The current underlying session (never null after start(); outlives a
  /// close until the next dial replaces it).
  [[nodiscard]] Session* session() { return session_.get(); }
  [[nodiscard]] bool established() const { return session_ && session_->established(); }

  void set_update_handler(Session::UpdateHandler h);
  void set_state_handler(Session::StateHandler h);
  void set_refresh_handler(Session::RefreshHandler h);
  void set_established_handler(EstablishedHandler h) { on_established_ = std::move(h); }

  struct Stats {
    std::uint64_t dial_attempts = 0;  ///< Sessions created (incl. the first).
    std::uint64_t flaps = 0;          ///< Unexpected closes observed.
    std::uint64_t reconnects = 0;     ///< Re-establishments after a flap.
    std::uint64_t suppressed_dials = 0;  ///< Dials deferred by flap damping.
    std::uint64_t dial_timeouts = 0;  ///< Dials torn down before Established.
    std::uint64_t give_ups = 0;       ///< Recovery abandoned (retry cap / factory).
    double last_backoff_s = 0.0;      ///< Most recent scheduled dial delay.
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  /// Decayed damping penalty at `now_s` (introspection for tests/benches).
  [[nodiscard]] double damping_penalty(double now_s) const {
    return damping_.penalty(now_s);
  }

 private:
  void dial();
  void attach_handlers();
  void on_state(SessionState state);
  void schedule_redial();

  sim::EventQueue& queue_;
  TransportFactory factory_;
  SessionConfig session_config_;
  ReconnectPolicy policy_;
  FlapDamping damping_;
  util::Rng jitter_rng_;

  std::unique_ptr<Session> session_;
  Session::UpdateHandler on_update_;
  Session::StateHandler on_state_user_;
  Session::RefreshHandler on_refresh_;
  EstablishedHandler on_established_;

  bool started_ = false;
  bool stopped_ = false;        ///< Intentional stop: no recovery.
  bool redial_pending_ = false;
  bool was_established_ = false;  ///< Current session reached Established.
  std::uint64_t dial_generation_ = 0;  ///< Invalidates stale dial timeouts.
  int attempts_since_established_ = 0;
  double next_backoff_s_ = 0.0;
  /// Invalidates scheduled dials from destroyed instances.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  Stats stats_;
};

}  // namespace stellar::bgp
