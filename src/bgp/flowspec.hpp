// BGP Flowspec NLRI codec (RFC 5575, "Dissemination of Flow Specification
// Rules"). The paper evaluates Flowspec as an alternative signaling interface
// and rejects it for inter-domain use (§4.2.1); we implement the NLRI format
// and its traffic-rate action so the Flowspec baseline in the comparison
// harness speaks the real wire format.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "bgp/types.hpp"
#include "net/flow.hpp"
#include "net/ip.hpp"
#include "util/result.hpp"

namespace stellar::bgp::flowspec {

/// Flowspec component types (RFC 5575 §4).
enum class ComponentType : std::uint8_t {
  kDstPrefix = 1,
  kSrcPrefix = 2,
  kIpProtocol = 3,
  kPort = 4,
  kDstPort = 5,
  kSrcPort = 6,
  kIcmpType = 7,
  kIcmpCode = 8,
  kTcpFlags = 9,
  kPacketLength = 10,
  kDscp = 11,
  kFragment = 12,
};

/// One (operator, value) pair of a numeric-operator list. The end-of-list
/// and length bits are computed by the codec; callers set only the relation.
struct NumericOp {
  bool and_with_previous = false;  ///< AND bit: combine with the previous op.
  bool lt = false;
  bool gt = false;
  bool eq = false;
  std::uint32_t value = 0;

  /// True if `x` satisfies this single relation.
  [[nodiscard]] bool matches(std::uint32_t x) const {
    return (lt && x < value) || (gt && x > value) || (eq && x == value);
  }

  friend bool operator==(const NumericOp&, const NumericOp&) = default;
};

/// Equality op for a value — the common case for ports/protocols.
[[nodiscard]] NumericOp Eq(std::uint32_t value);
/// Inclusive range [lo, hi] expressed as (>= lo) AND (<= hi).
[[nodiscard]] std::vector<NumericOp> Range(std::uint32_t lo, std::uint32_t hi);

struct Component {
  ComponentType type = ComponentType::kDstPrefix;
  // Prefix components use `prefix`; all numeric components use `ops`.
  net::Prefix4 prefix;
  std::vector<NumericOp> ops;

  friend bool operator==(const Component&, const Component&) = default;
};

/// An ordered Flowspec rule (components strictly ascending by type, enforced
/// by the codec on both encode and decode as RFC 5575 requires).
struct Rule {
  std::vector<Component> components;

  [[nodiscard]] std::optional<net::Prefix4> dst_prefix() const;
  [[nodiscard]] std::optional<net::Prefix4> src_prefix() const;

  /// Evaluates the rule against a flow key (fluid-simulation semantics: the
  /// whole flow matches or not). Numeric op lists follow RFC 5575 §4.2.1.1:
  /// OR of AND-groups.
  [[nodiscard]] bool matches(const net::FlowKey& flow) const;

  [[nodiscard]] std::string str() const;

  friend bool operator==(const Rule&, const Rule&) = default;
};

/// Encodes a rule as one Flowspec NLRI (length header + components).
/// Fails if component types are not strictly ascending.
[[nodiscard]] util::Result<std::vector<std::uint8_t>> EncodeNlri(const Rule& rule);

/// Decodes exactly one NLRI from the front of `data`; returns the rule and
/// bytes consumed.
struct DecodedNlri {
  Rule rule;
  std::size_t consumed = 0;
};
[[nodiscard]] util::Result<DecodedNlri> DecodeNlri(std::span<const std::uint8_t> data);

/// The action attached to a Flowspec rule via extended communities.
struct Action {
  /// Rate limit in bytes/s; 0 = drop, nullopt = accept (no rate action).
  std::optional<float> rate_limit_bytes_per_s;

  [[nodiscard]] ExtendedCommunity to_extended_community(std::uint16_t asn) const;
  static std::optional<Action> from_extended_communities(
      std::span<const ExtendedCommunity> communities);
};

}  // namespace stellar::bgp::flowspec
