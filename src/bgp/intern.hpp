// Hash-consing pool for PathAttributes.
//
// At L-IXP scale the same attribute set is stored hundreds of times: the route
// server re-exports one best path to ~800 member RIBs, each member holds the
// announcements of every other member, and the controller's ADD-PATH RIB sees
// every path again. Interning collapses all of those copies into one
// shared, immutable allocation — RIB storage becomes a map of (key ->
// shared_ptr), and attribute equality between interned values degenerates to a
// pointer comparison.
//
// The pool holds weak references only: the last RIB entry dropping an
// attribute set frees it (a custom deleter unlinks the pool slot), so the pool
// never pins memory for withdrawn routes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "bgp/message.hpp"

namespace stellar::bgp {

/// Structural hash over the fields that distinguish attribute sets in
/// practice. Collisions are resolved by full equality, so the hash may ignore
/// rarely-differing fields without affecting correctness.
[[nodiscard]] std::size_t HashAttrs(const PathAttributes& attrs);

class AttrPool {
 public:
  AttrPool() = default;
  AttrPool(const AttrPool&) = delete;
  AttrPool& operator=(const AttrPool&) = delete;

  /// Returns the canonical shared instance equal to `attrs`, creating it if
  /// this is the first time the value is seen. Two interned pointers compare
  /// equal iff the attribute sets compare equal.
  [[nodiscard]] std::shared_ptr<const PathAttributes> intern(const PathAttributes& attrs);
  [[nodiscard]] std::shared_ptr<const PathAttributes> intern(PathAttributes&& attrs);

  /// Distinct attribute sets currently alive.
  [[nodiscard]] std::size_t size() const { return pool_.size(); }

  struct Stats {
    std::uint64_t hits = 0;       ///< intern() returned an existing instance.
    std::uint64_t misses = 0;     ///< intern() had to allocate.
    std::uint64_t released = 0;   ///< Instances freed after their last user.
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Process-wide pool shared by every RIB (single-threaded simulation).
  [[nodiscard]] static AttrPool& global();

 private:
  struct Slot {
    std::size_t hash = 0;
    std::weak_ptr<const PathAttributes> value;
  };

  std::shared_ptr<const PathAttributes> adopt(std::size_t hash, PathAttributes&& attrs);
  void release(std::size_t hash, const PathAttributes* attrs) noexcept;

  std::unordered_multimap<std::size_t, std::weak_ptr<const PathAttributes>> pool_;
  Stats stats_;
};

/// Convenience: intern into the global pool.
[[nodiscard]] inline std::shared_ptr<const PathAttributes> Intern(const PathAttributes& attrs) {
  return AttrPool::global().intern(attrs);
}
[[nodiscard]] inline std::shared_ptr<const PathAttributes> Intern(PathAttributes&& attrs) {
  return AttrPool::global().intern(std::move(attrs));
}

}  // namespace stellar::bgp
