// Core BGP vocabulary: AS numbers, standard communities (RFC 1997), extended
// communities (RFC 4360) and well-known values (RFC 7999 BLACKHOLE). These
// types carry Stellar's entire signaling plane.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <string>

namespace stellar::bgp {

/// Autonomous System Number (4-octet capable, RFC 6793).
using Asn = std::uint32_t;

/// Placeholder ASN announced in OPEN by 4-octet-AS speakers (RFC 6793).
inline constexpr std::uint16_t kAsTrans = 23456;

/// RFC 1997 standard community: 32 bits, conventionally split "asn:value".
class Community {
 public:
  constexpr Community() = default;
  constexpr explicit Community(std::uint32_t raw) : raw_(raw) {}
  constexpr Community(std::uint16_t asn, std::uint16_t value)
      : raw_((std::uint32_t{asn} << 16) | value) {}

  [[nodiscard]] constexpr std::uint32_t raw() const { return raw_; }
  [[nodiscard]] constexpr std::uint16_t asn() const { return static_cast<std::uint16_t>(raw_ >> 16); }
  [[nodiscard]] constexpr std::uint16_t value() const { return static_cast<std::uint16_t>(raw_); }
  [[nodiscard]] std::string str() const;

  friend constexpr auto operator<=>(const Community&, const Community&) = default;

 private:
  std::uint32_t raw_ = 0;
};

/// Well-known communities (RFC 1997 §2, RFC 7999 §5).
inline constexpr Community kNoExport{0xFFFFFF01};
inline constexpr Community kNoAdvertise{0xFFFFFF02};
inline constexpr Community kNoExportSubconfed{0xFFFFFF03};
/// RFC 7999: BLACKHOLE, 0xFFFF029A (65535:666).
inline constexpr Community kBlackhole{0xFFFF029A};

/// RFC 4360 extended community: 8 bytes. The first byte is the type (with
/// transitive bit), interpretation of the remaining 7 depends on type/subtype.
class ExtendedCommunity {
 public:
  using Bytes = std::array<std::uint8_t, 8>;

  // Type field values (high octet). Bit 0x40 = non-transitive.
  static constexpr std::uint8_t kTypeTwoOctetAs = 0x00;       ///< RFC 4360 §3.1
  static constexpr std::uint8_t kTypeIPv4Address = 0x01;      ///< RFC 4360 §3.2
  static constexpr std::uint8_t kTypeFourOctetAs = 0x02;      ///< RFC 5668
  static constexpr std::uint8_t kTypeOpaque = 0x03;           ///< RFC 4360 §3.3
  static constexpr std::uint8_t kTypeGenericTransitiveExp = 0x80;  ///< RFC 7153 / Flowspec actions

  // Sub-types used here.
  static constexpr std::uint8_t kSubTypeRouteTarget = 0x02;
  static constexpr std::uint8_t kSubTypeRouteOrigin = 0x03;
  static constexpr std::uint8_t kSubTypeFlowspecTrafficRate = 0x06;   ///< RFC 5575 §7
  static constexpr std::uint8_t kSubTypeFlowspecTrafficAction = 0x07; ///< RFC 5575 §7

  constexpr ExtendedCommunity() : bytes_{} {}
  constexpr explicit ExtendedCommunity(const Bytes& bytes) : bytes_(bytes) {}

  /// Two-octet-AS-specific extended community (RFC 4360 §3.1):
  /// type(1) subtype(1) asn(2) local_admin(4).
  static ExtendedCommunity TwoOctetAs(std::uint8_t subtype, std::uint16_t asn,
                                      std::uint32_t local_admin, bool transitive = true);

  /// Flowspec traffic-rate action (RFC 5575 §7): rate as IEEE float, bytes/s.
  /// A rate of 0 means "drop".
  static ExtendedCommunity FlowspecTrafficRate(std::uint16_t asn, float bytes_per_second);

  [[nodiscard]] const Bytes& bytes() const { return bytes_; }
  [[nodiscard]] std::uint8_t type() const { return bytes_[0]; }
  [[nodiscard]] std::uint8_t subtype() const { return bytes_[1]; }
  [[nodiscard]] bool transitive() const { return (bytes_[0] & 0x40) == 0; }

  /// For two-octet-AS-specific communities.
  [[nodiscard]] std::uint16_t as_number() const {
    return static_cast<std::uint16_t>((bytes_[2] << 8) | bytes_[3]);
  }
  [[nodiscard]] std::uint32_t local_admin() const {
    return (std::uint32_t{bytes_[4]} << 24) | (std::uint32_t{bytes_[5]} << 16) |
           (std::uint32_t{bytes_[6]} << 8) | std::uint32_t{bytes_[7]};
  }
  /// For Flowspec traffic-rate communities.
  [[nodiscard]] float traffic_rate_bytes_per_second() const;

  [[nodiscard]] std::string str() const;
  [[nodiscard]] std::uint64_t as_u64() const;

  friend constexpr auto operator<=>(const ExtendedCommunity&, const ExtendedCommunity&) = default;

 private:
  Bytes bytes_;
};

/// RFC 8092 large community: three 4-octet fields.
struct LargeCommunity {
  std::uint32_t global_admin = 0;
  std::uint32_t data1 = 0;
  std::uint32_t data2 = 0;

  friend constexpr auto operator<=>(const LargeCommunity&, const LargeCommunity&) = default;
  [[nodiscard]] std::string str() const;
};

/// ORIGIN path attribute values (RFC 4271 §5.1.1).
enum class Origin : std::uint8_t { kIgp = 0, kEgp = 1, kIncomplete = 2 };

/// ADD-PATH path identifier (RFC 7911). 0 = "no path id on the wire".
using PathId = std::uint32_t;

}  // namespace stellar::bgp
