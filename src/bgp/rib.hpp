// Routing Information Base with ADD-PATH identity and snapshot diffing.
//
// A route is identified by (prefix, peer, path_id): the route server keeps an
// Adj-RIB-In per peer, while the blackholing controller keeps a single Rib
// over its ADD-PATH iBGP session where multiple paths for the same prefix
// coexist. Snapshot diffing is the controller's engine: each diff between two
// RIB states is exactly the set of abstract configuration changes the network
// manager must realize (paper §4.4).
//
// The containers are generic over the prefix type: Rib/Route operate on IPv4
// (the paper's dominant case, >98% of blackholed prefixes), Rib6/Route6 on
// IPv6 unicast carried in MP_REACH/MP_UNREACH.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "bgp/intern.hpp"
#include "bgp/message.hpp"

namespace stellar::bgp {

/// Identifies the peer a route was learned from (session index assigned by
/// the owner of the Rib).
using PeerId = std::uint32_t;

template <typename PrefixT>
struct BasicRoute {
  PrefixT prefix;
  PeerId peer = 0;
  PathId path_id = 0;
  PathAttributes attrs;

  friend bool operator==(const BasicRoute&, const BasicRoute&) = default;

  [[nodiscard]] std::string str() const {
    std::string s = prefix.str() + " peer=" + std::to_string(peer);
    if (path_id != 0) s += " path-id=" + std::to_string(path_id);
    if (auto o = attrs.origin_asn()) s += " origin-as=" + std::to_string(*o);
    return s;
  }
};

using Route = BasicRoute<net::Prefix4>;
using Route6 = BasicRoute<net::Prefix6>;

/// Zero-copy view of a stored route: references stay valid while the RIB is
/// not mutated. The hot paths at member scale (controller full passes,
/// route-server re-export fan-out) iterate views instead of materializing
/// BasicRoute copies of the (interned) attributes.
template <typename PrefixT>
struct BasicRouteView {
  const PrefixT& prefix;
  PeerId peer = 0;
  PathId path_id = 0;
  const PathAttributes& attrs;

  [[nodiscard]] BasicRoute<PrefixT> materialize() const {
    return BasicRoute<PrefixT>{prefix, peer, path_id, attrs};
  }
};

using RouteView = BasicRouteView<net::Prefix4>;
using RouteView6 = BasicRouteView<net::Prefix6>;

/// RFC 4271 §9.1 decision process (the subset meaningful at an IXP route
/// server): local-pref desc, as-path length asc, origin asc, MED asc,
/// peer/path-id as deterministic tie-breakers. Returns true if `a` is
/// preferred over `b`.
template <typename RouteA, typename RouteB>
[[nodiscard]] bool BetterPath(const RouteA& a, const RouteB& b) {
  const std::uint32_t lp_a = a.attrs.local_pref.value_or(100);
  const std::uint32_t lp_b = b.attrs.local_pref.value_or(100);
  if (lp_a != lp_b) return lp_a > lp_b;
  const std::size_t len_a = a.attrs.as_path_length();
  const std::size_t len_b = b.attrs.as_path_length();
  if (len_a != len_b) return len_a < len_b;
  const auto origin_a = static_cast<std::uint8_t>(a.attrs.origin.value_or(Origin::kIncomplete));
  const auto origin_b = static_cast<std::uint8_t>(b.attrs.origin.value_or(Origin::kIncomplete));
  if (origin_a != origin_b) return origin_a < origin_b;
  const std::uint32_t med_a = a.attrs.med.value_or(0);
  const std::uint32_t med_b = b.attrs.med.value_or(0);
  if (med_a != med_b) return med_a < med_b;
  if (a.peer != b.peer) return a.peer < b.peer;
  return a.path_id < b.path_id;
}

template <typename PrefixT>
class BasicRib {
 public:
  using RouteT = BasicRoute<PrefixT>;

  /// Inserts or replaces the route identified by (prefix, peer, path_id).
  /// Returns true if the RIB changed (new route or different attributes).
  /// Attributes are interned through the process-wide AttrPool: the N ribs
  /// holding the same announcement share one allocation, and the change check
  /// is a pointer comparison.
  bool insert(RouteT route) {
    const Key key{route.prefix, route.peer, route.path_id};
    auto interned = Intern(std::move(route.attrs));
    auto [it, inserted] = routes_.try_emplace(key, interned);
    if (inserted) return true;
    if (it->second == interned) return false;  // Same pool instance <=> equal attrs.
    it->second = std::move(interned);
    return true;
  }

  /// Removes the identified route. Returns true if it existed.
  bool withdraw(const PrefixT& prefix, PeerId peer, PathId path_id = 0) {
    return routes_.erase(Key{prefix, peer, path_id}) > 0;
  }

  /// Removes all routes from `peer` (session teardown). Returns count removed.
  std::size_t withdraw_peer(PeerId peer) {
    std::size_t removed = 0;
    for (auto it = routes_.begin(); it != routes_.end();) {
      if (it->first.peer == peer) {
        it = routes_.erase(it);
        ++removed;
      } else {
        ++it;
      }
    }
    return removed;
  }

  /// Applies an UPDATE received from `peer`. For the IPv4 instantiation this
  /// reads the classic NLRI fields; for IPv6 the MP_REACH/MP_UNREACH
  /// attributes. Returns the number of changes applied.
  std::size_t apply_update(PeerId peer, const UpdateMessage& update) {
    std::size_t changes = 0;
    if constexpr (std::is_same_v<PrefixT, net::Prefix4>) {
      for (const auto& nlri : update.withdrawn) {
        if (withdraw(nlri.prefix, peer, nlri.path_id)) ++changes;
      }
      for (const auto& nlri : update.announced) {
        RouteT r;
        r.prefix = nlri.prefix;
        r.peer = peer;
        r.path_id = nlri.path_id;
        r.attrs = update.attrs;
        if (insert(std::move(r))) ++changes;
      }
    } else {
      if (update.attrs.mp_unreach_ipv6) {
        for (const auto& prefix : update.attrs.mp_unreach_ipv6->withdrawn) {
          if (withdraw(prefix, peer, 0)) ++changes;
        }
      }
      if (update.attrs.mp_reach_ipv6) {
        for (const auto& prefix : update.attrs.mp_reach_ipv6->nlri) {
          RouteT r;
          r.prefix = prefix;
          r.peer = peer;
          r.path_id = 0;
          r.attrs = update.attrs;
          if (insert(std::move(r))) ++changes;
        }
      }
    }
    return changes;
  }

  /// All paths currently held for a prefix.
  [[nodiscard]] std::vector<RouteT> routes_for(const PrefixT& prefix) const {
    std::vector<RouteT> out;
    for (auto it = routes_.lower_bound(Key{prefix, 0, 0});
         it != routes_.end() && it->first.prefix == prefix; ++it) {
      out.push_back(RouteT{it->first.prefix, it->first.peer, it->first.path_id, *it->second});
    }
    return out;
  }

  /// Zero-copy variant of routes_for: visits each path of `prefix` without
  /// materializing attribute copies. Do not mutate the RIB from `fn`.
  void visit_prefix(const PrefixT& prefix,
                    const std::function<void(const BasicRouteView<PrefixT>&)>& fn) const {
    for (auto it = routes_.lower_bound(Key{prefix, 0, 0});
         it != routes_.end() && it->first.prefix == prefix; ++it) {
      fn(BasicRouteView<PrefixT>{it->first.prefix, it->first.peer, it->first.path_id,
                                 *it->second});
    }
  }

  /// Best path for the prefix per BetterPath, if any path exists.
  [[nodiscard]] std::optional<RouteT> best(const PrefixT& prefix) const {
    std::optional<RouteT> best_route;
    for (const auto& r : routes_for(prefix)) {
      if (!best_route || BetterPath(r, *best_route)) best_route = r;
    }
    return best_route;
  }

  /// All distinct prefixes.
  [[nodiscard]] std::vector<PrefixT> prefixes() const {
    std::vector<PrefixT> out;
    for (const auto& [key, attrs] : routes_) {
      if (out.empty() || !(out.back() == key.prefix)) out.push_back(key.prefix);
    }
    return out;
  }

  /// Every route, sorted by (prefix, peer, path_id). This is the snapshot
  /// representation used for diffing.
  [[nodiscard]] std::vector<RouteT> snapshot() const {
    std::vector<RouteT> out;
    out.reserve(routes_.size());
    for (const auto& [key, attrs] : routes_) {
      out.push_back(RouteT{key.prefix, key.peer, key.path_id, *attrs});
    }
    return out;
  }

  [[nodiscard]] std::size_t size() const { return routes_.size(); }
  [[nodiscard]] bool empty() const { return routes_.empty(); }
  void clear() { routes_.clear(); }

  /// Visits every route (sorted order).
  void for_each(const std::function<void(const RouteT&)>& fn) const {
    for (const auto& [key, attrs] : routes_) {
      fn(RouteT{key.prefix, key.peer, key.path_id, *attrs});
    }
  }

  /// Zero-copy variant of for_each. Do not mutate the RIB from `fn`.
  void for_each_view(const std::function<void(const BasicRouteView<PrefixT>&)>& fn) const {
    for (const auto& [key, attrs] : routes_) {
      fn(BasicRouteView<PrefixT>{key.prefix, key.peer, key.path_id, *attrs});
    }
  }

 private:
  struct Key {
    PrefixT prefix;
    PeerId peer;
    PathId path_id;
    friend auto operator<=>(const Key&, const Key&) = default;
  };
  std::map<Key, std::shared_ptr<const PathAttributes>> routes_;
};

using Rib = BasicRib<net::Prefix4>;
using Rib6 = BasicRib<net::Prefix6>;

/// Difference between two RIB snapshots.
template <typename PrefixT>
struct BasicRibDiff {
  std::vector<BasicRoute<PrefixT>> added;     ///< In `after` only.
  std::vector<BasicRoute<PrefixT>> removed;   ///< In `before` only.
  std::vector<BasicRoute<PrefixT>> modified;  ///< Same identity, new attributes.

  [[nodiscard]] bool empty() const { return added.empty() && removed.empty() && modified.empty(); }
  [[nodiscard]] std::size_t size() const { return added.size() + removed.size() + modified.size(); }
};

using RibDiff = BasicRibDiff<net::Prefix4>;

/// Computes the diff between two snapshots (each sorted as produced by
/// BasicRib::snapshot()).
template <typename PrefixT>
[[nodiscard]] BasicRibDiff<PrefixT> DiffSnapshots(const std::vector<BasicRoute<PrefixT>>& before,
                                                  const std::vector<BasicRoute<PrefixT>>& after) {
  BasicRibDiff<PrefixT> diff;
  auto identity_less = [](const BasicRoute<PrefixT>& a, const BasicRoute<PrefixT>& b) {
    return std::tie(a.prefix, a.peer, a.path_id) < std::tie(b.prefix, b.peer, b.path_id);
  };
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < before.size() || j < after.size()) {
    if (i == before.size()) {
      diff.added.push_back(after[j++]);
    } else if (j == after.size()) {
      diff.removed.push_back(before[i++]);
    } else if (identity_less(before[i], after[j])) {
      diff.removed.push_back(before[i++]);
    } else if (identity_less(after[j], before[i])) {
      diff.added.push_back(after[j++]);
    } else {
      if (!(before[i].attrs == after[j].attrs)) diff.modified.push_back(after[j]);
      ++i;
      ++j;
    }
  }
  return diff;
}

}  // namespace stellar::bgp
