// Big-endian byte stream reader/writer for BGP wire formats.
//
// The reader is bounds-checked and never reads past the buffer; truncated
// input surfaces as a Result error, not UB — malformed BGP from a peer is an
// expected input, not a precondition violation.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/result.hpp"

namespace stellar::bgp {

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
  }
  void bytes(std::span<const std::uint8_t> data) { buf_.insert(buf_.end(), data.begin(), data.end()); }

  /// Overwrites a previously written big-endian u16 at `offset` (for
  /// back-patching length fields).
  void patch_u16(std::size_t offset, std::uint16_t v) {
    buf_.at(offset) = static_cast<std::uint8_t>(v >> 8);
    buf_.at(offset + 1) = static_cast<std::uint8_t>(v);
  }
  void patch_u8(std::size_t offset, std::uint8_t v) { buf_.at(offset) = v; }

  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] const std::vector<std::uint8_t>& data() const { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool empty() const { return remaining() == 0; }
  [[nodiscard]] std::size_t position() const { return pos_; }

  util::Result<std::uint8_t> u8();
  util::Result<std::uint16_t> u16();
  util::Result<std::uint32_t> u32();
  util::Result<std::uint64_t> u64();
  /// Reads exactly n bytes.
  util::Result<std::vector<std::uint8_t>> bytes(std::size_t n);
  /// Returns a sub-reader over the next n bytes and skips them.
  util::Result<ByteReader> sub(std::size_t n);

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace stellar::bgp
