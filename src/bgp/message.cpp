#include "bgp/message.hpp"

#include <algorithm>
#include <stdexcept>

#include "bgp/wire.hpp"

namespace stellar::bgp {

namespace {

// Path attribute type codes (IANA).
constexpr std::uint8_t kAttrOrigin = 1;
constexpr std::uint8_t kAttrAsPath = 2;
constexpr std::uint8_t kAttrNextHop = 3;
constexpr std::uint8_t kAttrMed = 4;
constexpr std::uint8_t kAttrLocalPref = 5;
constexpr std::uint8_t kAttrAtomicAggregate = 6;
constexpr std::uint8_t kAttrAggregator = 7;
constexpr std::uint8_t kAttrCommunities = 8;
constexpr std::uint8_t kAttrMpReach = 14;
constexpr std::uint8_t kAttrMpUnreach = 15;
constexpr std::uint8_t kAttrExtendedCommunities = 16;
constexpr std::uint8_t kAttrLargeCommunities = 32;

// Attribute flag bits.
constexpr std::uint8_t kFlagOptional = 0x80;
constexpr std::uint8_t kFlagTransitive = 0x40;
constexpr std::uint8_t kFlagExtendedLength = 0x10;

util::Error CodecError(std::string what) {
  return util::MakeError("bgp.codec", std::move(what));
}

void WritePrefix4(ByteWriter& w, const net::Prefix4& p) {
  w.u8(p.length());
  const std::uint32_t v = p.address().value();
  const int nbytes = (p.length() + 7) / 8;
  for (int i = 0; i < nbytes; ++i) w.u8(static_cast<std::uint8_t>(v >> (24 - 8 * i)));
}

util::Result<net::Prefix4> ReadPrefix4(ByteReader& r) {
  auto len = r.u8();
  if (!len.ok()) return len.error();
  if (*len > 32) return CodecError("IPv4 prefix length " + std::to_string(*len) + " > 32");
  const int nbytes = (*len + 7) / 8;
  std::uint32_t v = 0;
  for (int i = 0; i < nbytes; ++i) {
    auto b = r.u8();
    if (!b.ok()) return b.error();
    v |= std::uint32_t{*b} << (24 - 8 * i);
  }
  return net::Prefix4(net::IPv4Address(v), *len);
}

void WritePrefix6(ByteWriter& w, const net::Prefix6& p) {
  w.u8(p.length());
  const int nbytes = (p.length() + 7) / 8;
  for (int i = 0; i < nbytes; ++i) w.u8(p.address().bytes()[static_cast<std::size_t>(i)]);
}

util::Result<net::Prefix6> ReadPrefix6(ByteReader& r) {
  auto len = r.u8();
  if (!len.ok()) return len.error();
  if (*len > 128) return CodecError("IPv6 prefix length " + std::to_string(*len) + " > 128");
  const int nbytes = (*len + 7) / 8;
  net::IPv6Address::Bytes b{};
  for (int i = 0; i < nbytes; ++i) {
    auto byte = r.u8();
    if (!byte.ok()) return byte.error();
    b[static_cast<std::size_t>(i)] = *byte;
  }
  return net::Prefix6(net::IPv6Address(b), *len);
}

void WriteNlri4(ByteWriter& w, const Nlri4& nlri, const CodecOptions& opts) {
  if (opts.add_path_ipv4_unicast) w.u32(nlri.path_id);
  WritePrefix4(w, nlri.prefix);
}

util::Result<Nlri4> ReadNlri4(ByteReader& r, const CodecOptions& opts) {
  Nlri4 nlri;
  if (opts.add_path_ipv4_unicast) {
    auto id = r.u32();
    if (!id.ok()) return id.error();
    nlri.path_id = *id;
  }
  auto p = ReadPrefix4(r);
  if (!p.ok()) return p.error();
  nlri.prefix = *p;
  return nlri;
}

/// Writes one attribute: flags/type/length computed from the body size.
void WriteAttribute(ByteWriter& w, std::uint8_t flags, std::uint8_t type,
                    const ByteWriter& body) {
  const std::size_t n = body.size();
  if (n > 255) flags |= kFlagExtendedLength;
  w.u8(flags);
  w.u8(type);
  if (flags & kFlagExtendedLength) {
    w.u16(static_cast<std::uint16_t>(n));
  } else {
    w.u8(static_cast<std::uint8_t>(n));
  }
  w.bytes(body.data());
}

void EncodeAttributes(ByteWriter& w, const PathAttributes& attrs, const CodecOptions& opts) {
  if (attrs.origin) {
    ByteWriter body;
    body.u8(static_cast<std::uint8_t>(*attrs.origin));
    WriteAttribute(w, kFlagTransitive, kAttrOrigin, body);
  }
  if (!attrs.as_path.empty() || attrs.origin) {  // AS_PATH is mandatory with ORIGIN.
    ByteWriter body;
    for (const auto& seg : attrs.as_path) {
      body.u8(static_cast<std::uint8_t>(seg.type));
      body.u8(static_cast<std::uint8_t>(seg.asns.size()));
      for (Asn asn : seg.asns) {
        if (opts.four_octet_as) {
          body.u32(asn);
        } else {
          body.u16(asn > 0xffff ? kAsTrans : static_cast<std::uint16_t>(asn));
        }
      }
    }
    WriteAttribute(w, kFlagTransitive, kAttrAsPath, body);
  }
  if (attrs.next_hop) {
    ByteWriter body;
    body.u32(attrs.next_hop->value());
    WriteAttribute(w, kFlagTransitive, kAttrNextHop, body);
  }
  if (attrs.med) {
    ByteWriter body;
    body.u32(*attrs.med);
    WriteAttribute(w, kFlagOptional, kAttrMed, body);
  }
  if (attrs.local_pref) {
    ByteWriter body;
    body.u32(*attrs.local_pref);
    WriteAttribute(w, kFlagTransitive, kAttrLocalPref, body);
  }
  if (attrs.atomic_aggregate) {
    WriteAttribute(w, kFlagTransitive, kAttrAtomicAggregate, ByteWriter{});
  }
  if (attrs.aggregator) {
    ByteWriter body;
    if (opts.four_octet_as) {
      body.u32(attrs.aggregator->first);
    } else {
      body.u16(attrs.aggregator->first > 0xffff
                   ? kAsTrans
                   : static_cast<std::uint16_t>(attrs.aggregator->first));
    }
    body.u32(attrs.aggregator->second.value());
    WriteAttribute(w, kFlagOptional | kFlagTransitive, kAttrAggregator, body);
  }
  if (!attrs.communities.empty()) {
    ByteWriter body;
    for (Community c : attrs.communities) body.u32(c.raw());
    WriteAttribute(w, kFlagOptional | kFlagTransitive, kAttrCommunities, body);
  }
  if (attrs.mp_reach_ipv6) {
    ByteWriter body;
    body.u16(kAfiIPv6);
    body.u8(kSafiUnicast);
    body.u8(16);  // Next-hop length.
    body.bytes(attrs.mp_reach_ipv6->next_hop.bytes());
    body.u8(0);  // Reserved (SNPA count, RFC 4760).
    for (const auto& p : attrs.mp_reach_ipv6->nlri) WritePrefix6(body, p);
    WriteAttribute(w, kFlagOptional, kAttrMpReach, body);
  }
  if (attrs.mp_unreach_ipv6) {
    ByteWriter body;
    body.u16(kAfiIPv6);
    body.u8(kSafiUnicast);
    for (const auto& p : attrs.mp_unreach_ipv6->withdrawn) WritePrefix6(body, p);
    WriteAttribute(w, kFlagOptional, kAttrMpUnreach, body);
  }
  if (!attrs.extended_communities.empty()) {
    ByteWriter body;
    for (const auto& ec : attrs.extended_communities) body.bytes(ec.bytes());
    WriteAttribute(w, kFlagOptional | kFlagTransitive, kAttrExtendedCommunities, body);
  }
  if (!attrs.large_communities.empty()) {
    ByteWriter body;
    for (const auto& lc : attrs.large_communities) {
      body.u32(lc.global_admin);
      body.u32(lc.data1);
      body.u32(lc.data2);
    }
    WriteAttribute(w, kFlagOptional | kFlagTransitive, kAttrLargeCommunities, body);
  }
  for (const auto& opaque : attrs.unrecognized) {
    ByteWriter body;
    body.bytes(opaque.value);
    WriteAttribute(w, opaque.flags, opaque.type, body);
  }
}

util::Result<PathAttributes> DecodeAttributes(ByteReader& r, const CodecOptions& opts) {
  PathAttributes attrs;
  while (!r.empty()) {
    auto flags = r.u8();
    if (!flags.ok()) return flags.error();
    auto type = r.u8();
    if (!type.ok()) return type.error();
    std::size_t len = 0;
    if (*flags & kFlagExtendedLength) {
      auto l = r.u16();
      if (!l.ok()) return l.error();
      len = *l;
    } else {
      auto l = r.u8();
      if (!l.ok()) return l.error();
      len = *l;
    }
    auto body_r = r.sub(len);
    if (!body_r.ok()) {
      return CodecError("attribute " + std::to_string(*type) + " length " + std::to_string(len) +
                        " exceeds remaining bytes");
    }
    ByteReader body = *body_r;

    switch (*type) {
      case kAttrOrigin: {
        auto v = body.u8();
        if (!v.ok()) return v.error();
        if (*v > 2) return CodecError("bad ORIGIN value " + std::to_string(*v));
        attrs.origin = static_cast<Origin>(*v);
        break;
      }
      case kAttrAsPath: {
        while (!body.empty()) {
          auto seg_type = body.u8();
          if (!seg_type.ok()) return seg_type.error();
          if (*seg_type != 1 && *seg_type != 2) {
            return CodecError("bad AS_PATH segment type " + std::to_string(*seg_type));
          }
          auto count = body.u8();
          if (!count.ok()) return count.error();
          AsPathSegment seg;
          seg.type = static_cast<AsPathSegment::Type>(*seg_type);
          for (int i = 0; i < *count; ++i) {
            if (opts.four_octet_as) {
              auto asn = body.u32();
              if (!asn.ok()) return asn.error();
              seg.asns.push_back(*asn);
            } else {
              auto asn = body.u16();
              if (!asn.ok()) return asn.error();
              seg.asns.push_back(*asn);
            }
          }
          attrs.as_path.push_back(std::move(seg));
        }
        break;
      }
      case kAttrNextHop: {
        auto v = body.u32();
        if (!v.ok()) return v.error();
        attrs.next_hop = net::IPv4Address(*v);
        break;
      }
      case kAttrMed: {
        auto v = body.u32();
        if (!v.ok()) return v.error();
        attrs.med = *v;
        break;
      }
      case kAttrLocalPref: {
        auto v = body.u32();
        if (!v.ok()) return v.error();
        attrs.local_pref = *v;
        break;
      }
      case kAttrAtomicAggregate:
        attrs.atomic_aggregate = true;
        break;
      case kAttrAggregator: {
        Asn asn = 0;
        if (opts.four_octet_as) {
          auto a = body.u32();
          if (!a.ok()) return a.error();
          asn = *a;
        } else {
          auto a = body.u16();
          if (!a.ok()) return a.error();
          asn = *a;
        }
        auto ip = body.u32();
        if (!ip.ok()) return ip.error();
        attrs.aggregator = {asn, net::IPv4Address(*ip)};
        break;
      }
      case kAttrCommunities: {
        while (!body.empty()) {
          auto v = body.u32();
          if (!v.ok()) return v.error();
          attrs.communities.emplace_back(*v);
        }
        break;
      }
      case kAttrMpReach: {
        auto afi = body.u16();
        if (!afi.ok()) return afi.error();
        auto safi = body.u8();
        if (!safi.ok()) return safi.error();
        auto nh_len = body.u8();
        if (!nh_len.ok()) return nh_len.error();
        if (*afi != kAfiIPv6 || *safi != kSafiUnicast) {
          return CodecError("unsupported MP_REACH AFI/SAFI " + std::to_string(*afi) + "/" +
                            std::to_string(*safi));
        }
        if (*nh_len != 16 && *nh_len != 32) {
          return CodecError("bad IPv6 next-hop length " + std::to_string(*nh_len));
        }
        auto nh_bytes = body.bytes(*nh_len);
        if (!nh_bytes.ok()) return nh_bytes.error();
        net::IPv6Address::Bytes nh{};
        std::copy_n(nh_bytes->begin(), 16, nh.begin());  // Global address; skip link-local.
        auto reserved = body.u8();
        if (!reserved.ok()) return reserved.error();
        MpReachIPv6 reach;
        reach.next_hop = net::IPv6Address(nh);
        while (!body.empty()) {
          auto p = ReadPrefix6(body);
          if (!p.ok()) return p.error();
          reach.nlri.push_back(*p);
        }
        attrs.mp_reach_ipv6 = std::move(reach);
        break;
      }
      case kAttrMpUnreach: {
        auto afi = body.u16();
        if (!afi.ok()) return afi.error();
        auto safi = body.u8();
        if (!safi.ok()) return safi.error();
        if (*afi != kAfiIPv6 || *safi != kSafiUnicast) {
          return CodecError("unsupported MP_UNREACH AFI/SAFI " + std::to_string(*afi) + "/" +
                            std::to_string(*safi));
        }
        MpUnreachIPv6 unreach;
        while (!body.empty()) {
          auto p = ReadPrefix6(body);
          if (!p.ok()) return p.error();
          unreach.withdrawn.push_back(*p);
        }
        attrs.mp_unreach_ipv6 = std::move(unreach);
        break;
      }
      case kAttrExtendedCommunities: {
        if (len % 8 != 0) return CodecError("EXTENDED_COMMUNITIES length not multiple of 8");
        while (!body.empty()) {
          auto raw = body.bytes(8);
          if (!raw.ok()) return raw.error();
          ExtendedCommunity::Bytes b{};
          std::copy_n(raw->begin(), 8, b.begin());
          attrs.extended_communities.emplace_back(b);
        }
        break;
      }
      case kAttrLargeCommunities: {
        if (len % 12 != 0) return CodecError("LARGE_COMMUNITIES length not multiple of 12");
        while (!body.empty()) {
          LargeCommunity lc;
          auto a = body.u32();
          if (!a.ok()) return a.error();
          auto b = body.u32();
          if (!b.ok()) return b.error();
          auto c = body.u32();
          if (!c.ok()) return c.error();
          lc.global_admin = *a;
          lc.data1 = *b;
          lc.data2 = *c;
          attrs.large_communities.push_back(lc);
        }
        break;
      }
      default: {
        if (!(*flags & kFlagOptional)) {
          return CodecError("unrecognized well-known attribute " + std::to_string(*type));
        }
        OpaqueAttribute opaque;
        opaque.flags = *flags;
        opaque.type = *type;
        auto v = body.bytes(body.remaining());
        if (!v.ok()) return v.error();
        opaque.value = std::move(*v);
        attrs.unrecognized.push_back(std::move(opaque));
        break;
      }
    }
  }
  return attrs;
}

}  // namespace

// ---------------------------------------------------------------------------
// OpenMessage capability helpers.

void OpenMessage::add_four_octet_as_capability() {
  Capability cap;
  cap.code = Capability::kFourOctetAs;
  cap.value = {static_cast<std::uint8_t>(my_asn >> 24), static_cast<std::uint8_t>(my_asn >> 16),
               static_cast<std::uint8_t>(my_asn >> 8), static_cast<std::uint8_t>(my_asn)};
  capabilities.push_back(std::move(cap));
}

void OpenMessage::add_multiprotocol_capability(std::uint16_t afi, std::uint8_t safi) {
  Capability cap;
  cap.code = Capability::kMultiprotocol;
  cap.value = {static_cast<std::uint8_t>(afi >> 8), static_cast<std::uint8_t>(afi), 0, safi};
  capabilities.push_back(std::move(cap));
}

void OpenMessage::add_add_path_capability(std::span<const AddPathTuple> tuples) {
  Capability cap;
  cap.code = Capability::kAddPath;
  for (const auto& t : tuples) {
    cap.value.push_back(static_cast<std::uint8_t>(t.afi >> 8));
    cap.value.push_back(static_cast<std::uint8_t>(t.afi));
    cap.value.push_back(t.safi);
    cap.value.push_back(t.send_receive);
  }
  capabilities.push_back(std::move(cap));
}

std::optional<Asn> OpenMessage::four_octet_asn() const {
  for (const auto& cap : capabilities) {
    if (cap.code == Capability::kFourOctetAs && cap.value.size() == 4) {
      return (std::uint32_t{cap.value[0]} << 24) | (std::uint32_t{cap.value[1]} << 16) |
             (std::uint32_t{cap.value[2]} << 8) | std::uint32_t{cap.value[3]};
    }
  }
  return std::nullopt;
}

std::vector<AddPathTuple> OpenMessage::add_path_tuples() const {
  std::vector<AddPathTuple> out;
  for (const auto& cap : capabilities) {
    if (cap.code != Capability::kAddPath) continue;
    for (std::size_t i = 0; i + 4 <= cap.value.size(); i += 4) {
      AddPathTuple t;
      t.afi = static_cast<std::uint16_t>((cap.value[i] << 8) | cap.value[i + 1]);
      t.safi = cap.value[i + 2];
      t.send_receive = cap.value[i + 3];
      out.push_back(t);
    }
  }
  return out;
}

bool OpenMessage::supports_multiprotocol(std::uint16_t afi, std::uint8_t safi) const {
  for (const auto& cap : capabilities) {
    if (cap.code == Capability::kMultiprotocol && cap.value.size() == 4 &&
        static_cast<std::uint16_t>((cap.value[0] << 8) | cap.value[1]) == afi &&
        cap.value[3] == safi) {
      return true;
    }
  }
  return false;
}

Asn OpenMessage::effective_asn() const { return four_octet_asn().value_or(my_asn); }

// ---------------------------------------------------------------------------
// PathAttributes helpers.

std::size_t PathAttributes::as_path_length() const {
  std::size_t n = 0;
  for (const auto& seg : as_path) {
    // RFC 4271 §9.1.2.2: an AS_SET counts as one hop.
    n += seg.type == AsPathSegment::Type::kSet ? 1 : seg.asns.size();
  }
  return n;
}

std::optional<Asn> PathAttributes::origin_asn() const {
  for (auto it = as_path.rbegin(); it != as_path.rend(); ++it) {
    if (it->type == AsPathSegment::Type::kSequence && !it->asns.empty()) return it->asns.back();
  }
  return std::nullopt;
}

bool PathAttributes::has_community(Community c) const {
  return std::find(communities.begin(), communities.end(), c) != communities.end();
}

bool PathAttributes::has_extended_community(const ExtendedCommunity& c) const {
  return std::find(extended_communities.begin(), extended_communities.end(), c) !=
         extended_communities.end();
}

void PathAttributes::add_community(Community c) {
  if (!has_community(c)) communities.push_back(c);
}

void PathAttributes::remove_community(Community c) {
  communities.erase(std::remove(communities.begin(), communities.end(), c), communities.end());
}

void PathAttributes::prepend_asn(Asn asn) {
  if (as_path.empty() || as_path.front().type != AsPathSegment::Type::kSequence ||
      as_path.front().asns.size() >= 255) {
    as_path.insert(as_path.begin(), AsPathSegment{AsPathSegment::Type::kSequence, {}});
  }
  as_path.front().asns.insert(as_path.front().asns.begin(), asn);
}

// ---------------------------------------------------------------------------
// Message encode/decode.

MessageType TypeOf(const Message& msg) {
  return std::visit(
      [](const auto& m) -> MessageType {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, OpenMessage>) return MessageType::kOpen;
        else if constexpr (std::is_same_v<T, UpdateMessage>) return MessageType::kUpdate;
        else if constexpr (std::is_same_v<T, NotificationMessage>) return MessageType::kNotification;
        else if constexpr (std::is_same_v<T, RouteRefreshMessage>) return MessageType::kRouteRefresh;
        else return MessageType::kKeepalive;
      },
      msg);
}

std::vector<std::uint8_t> Encode(const Message& msg, const CodecOptions& opts) {
  ByteWriter w;
  for (int i = 0; i < 16; ++i) w.u8(0xff);  // Marker.
  w.u16(0);                                 // Length, patched below.
  w.u8(static_cast<std::uint8_t>(TypeOf(msg)));

  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, OpenMessage>) {
          w.u8(m.version);
          w.u16(m.my_asn > 0xffff ? kAsTrans : static_cast<std::uint16_t>(m.my_asn));
          w.u16(m.hold_time_s);
          w.u32(m.bgp_identifier.value());
          ByteWriter params;
          for (const auto& cap : m.capabilities) {
            // Each capability in its own parameter (type 2), common practice.
            params.u8(2);
            params.u8(static_cast<std::uint8_t>(cap.value.size() + 2));
            params.u8(cap.code);
            params.u8(static_cast<std::uint8_t>(cap.value.size()));
            params.bytes(cap.value);
          }
          w.u8(static_cast<std::uint8_t>(params.size()));
          w.bytes(params.data());
        } else if constexpr (std::is_same_v<T, UpdateMessage>) {
          ByteWriter withdrawn;
          for (const auto& n : m.withdrawn) WriteNlri4(withdrawn, n, opts);
          w.u16(static_cast<std::uint16_t>(withdrawn.size()));
          w.bytes(withdrawn.data());
          ByteWriter attrs;
          EncodeAttributes(attrs, m.attrs, opts);
          w.u16(static_cast<std::uint16_t>(attrs.size()));
          w.bytes(attrs.data());
          for (const auto& n : m.announced) WriteNlri4(w, n, opts);
        } else if constexpr (std::is_same_v<T, NotificationMessage>) {
          w.u8(static_cast<std::uint8_t>(m.code));
          w.u8(m.subcode);
          w.bytes(m.data);
        } else if constexpr (std::is_same_v<T, RouteRefreshMessage>) {
          w.u16(m.afi);
          w.u8(0);  // Reserved (RFC 2918 §3).
          w.u8(m.safi);
        }
        // Keepalive: header only.
      },
      msg);

  if (w.size() > kMaxMessageSize) {
    throw std::length_error("BGP message exceeds 4096 bytes; split the update");
  }
  w.patch_u16(16, static_cast<std::uint16_t>(w.size()));
  return w.take();
}

util::Result<Message> Decode(std::span<const std::uint8_t> data, const CodecOptions& opts) {
  auto framed = DecodeFramed(data, opts);
  if (!framed.ok()) return framed.error();
  if (!framed->message) return CodecError("incomplete message");
  if (framed->consumed != data.size()) {
    return CodecError("trailing bytes after message: " +
                      std::to_string(data.size() - framed->consumed));
  }
  return std::move(*framed->message);
}

util::Result<FramedMessage> DecodeFramed(std::span<const std::uint8_t> data,
                                         const CodecOptions& opts) {
  if (data.size() < kHeaderSize) return FramedMessage{};
  for (int i = 0; i < 16; ++i) {
    if (data[static_cast<std::size_t>(i)] != 0xff) return CodecError("bad marker");
  }
  const std::size_t length = (std::size_t{data[16]} << 8) | data[17];
  if (length < kHeaderSize || length > kMaxMessageSize) {
    return CodecError("bad message length " + std::to_string(length));
  }
  if (data.size() < length) return FramedMessage{};

  const std::uint8_t type = data[18];
  ByteReader r(data.subspan(kHeaderSize, length - kHeaderSize));
  FramedMessage out;
  out.consumed = length;

  switch (static_cast<MessageType>(type)) {
    case MessageType::kOpen: {
      OpenMessage m;
      auto version = r.u8();
      if (!version.ok()) return version.error();
      m.version = *version;
      auto asn = r.u16();
      if (!asn.ok()) return asn.error();
      m.my_asn = *asn;
      auto hold = r.u16();
      if (!hold.ok()) return hold.error();
      m.hold_time_s = *hold;
      auto id = r.u32();
      if (!id.ok()) return id.error();
      m.bgp_identifier = net::IPv4Address(*id);
      auto params_len = r.u8();
      if (!params_len.ok()) return params_len.error();
      auto params_r = r.sub(*params_len);
      if (!params_r.ok()) return params_r.error();
      ByteReader params = *params_r;
      while (!params.empty()) {
        auto ptype = params.u8();
        if (!ptype.ok()) return ptype.error();
        auto plen = params.u8();
        if (!plen.ok()) return plen.error();
        auto pbody_r = params.sub(*plen);
        if (!pbody_r.ok()) return pbody_r.error();
        if (*ptype != 2) continue;  // Skip non-capability parameters.
        ByteReader pbody = *pbody_r;
        while (!pbody.empty()) {
          Capability cap;
          auto code = pbody.u8();
          if (!code.ok()) return code.error();
          auto clen = pbody.u8();
          if (!clen.ok()) return clen.error();
          auto cval = pbody.bytes(*clen);
          if (!cval.ok()) return cval.error();
          cap.code = *code;
          cap.value = std::move(*cval);
          m.capabilities.push_back(std::move(cap));
        }
      }
      if (!r.empty()) return CodecError("trailing bytes in OPEN");
      // Surface the effective (possibly 4-octet) ASN in my_asn for callers.
      m.my_asn = m.effective_asn();
      out.message = std::move(m);
      break;
    }
    case MessageType::kUpdate: {
      UpdateMessage m;
      auto wlen = r.u16();
      if (!wlen.ok()) return wlen.error();
      auto wd_r = r.sub(*wlen);
      if (!wd_r.ok()) return CodecError("withdrawn routes length exceeds message");
      ByteReader wd = *wd_r;
      while (!wd.empty()) {
        auto n = ReadNlri4(wd, opts);
        if (!n.ok()) return n.error();
        m.withdrawn.push_back(*n);
      }
      auto alen = r.u16();
      if (!alen.ok()) return alen.error();
      auto attrs_r = r.sub(*alen);
      if (!attrs_r.ok()) return CodecError("attributes length exceeds message");
      ByteReader attrs = *attrs_r;
      auto decoded = DecodeAttributes(attrs, opts);
      if (!decoded.ok()) return decoded.error();
      m.attrs = std::move(*decoded);
      while (!r.empty()) {
        auto n = ReadNlri4(r, opts);
        if (!n.ok()) return n.error();
        m.announced.push_back(*n);
      }
      out.message = std::move(m);
      break;
    }
    case MessageType::kNotification: {
      NotificationMessage m;
      auto code = r.u8();
      if (!code.ok()) return code.error();
      auto subcode = r.u8();
      if (!subcode.ok()) return subcode.error();
      m.code = static_cast<NotificationCode>(*code);
      m.subcode = *subcode;
      auto rest = r.bytes(r.remaining());
      if (!rest.ok()) return rest.error();
      m.data = std::move(*rest);
      out.message = std::move(m);
      break;
    }
    case MessageType::kKeepalive: {
      if (!r.empty()) return CodecError("KEEPALIVE with body");
      out.message = KeepaliveMessage{};
      break;
    }
    case MessageType::kRouteRefresh: {
      RouteRefreshMessage m;
      auto afi = r.u16();
      if (!afi.ok()) return afi.error();
      auto reserved = r.u8();
      if (!reserved.ok()) return reserved.error();
      auto safi = r.u8();
      if (!safi.ok()) return safi.error();
      if (!r.empty()) return CodecError("trailing bytes in ROUTE-REFRESH");
      m.afi = *afi;
      m.safi = *safi;
      out.message = m;
      break;
    }
    default:
      return CodecError("unknown message type " + std::to_string(type));
  }
  return out;
}

}  // namespace stellar::bgp
