#include "bgp/types.hpp"

#include <cstdio>
#include <cstring>

namespace stellar::bgp {

std::string Community::str() const {
  return std::to_string(asn()) + ":" + std::to_string(value());
}

ExtendedCommunity ExtendedCommunity::TwoOctetAs(std::uint8_t subtype, std::uint16_t asn,
                                                std::uint32_t local_admin, bool transitive) {
  Bytes b{};
  b[0] = static_cast<std::uint8_t>(kTypeTwoOctetAs | (transitive ? 0x00 : 0x40));
  b[1] = subtype;
  b[2] = static_cast<std::uint8_t>(asn >> 8);
  b[3] = static_cast<std::uint8_t>(asn);
  b[4] = static_cast<std::uint8_t>(local_admin >> 24);
  b[5] = static_cast<std::uint8_t>(local_admin >> 16);
  b[6] = static_cast<std::uint8_t>(local_admin >> 8);
  b[7] = static_cast<std::uint8_t>(local_admin);
  return ExtendedCommunity(b);
}

ExtendedCommunity ExtendedCommunity::FlowspecTrafficRate(std::uint16_t asn,
                                                         float bytes_per_second) {
  Bytes b{};
  b[0] = kTypeGenericTransitiveExp;
  b[1] = kSubTypeFlowspecTrafficRate;
  b[2] = static_cast<std::uint8_t>(asn >> 8);
  b[3] = static_cast<std::uint8_t>(asn);
  std::uint32_t rate_bits = 0;
  static_assert(sizeof(float) == 4);
  std::memcpy(&rate_bits, &bytes_per_second, 4);
  b[4] = static_cast<std::uint8_t>(rate_bits >> 24);
  b[5] = static_cast<std::uint8_t>(rate_bits >> 16);
  b[6] = static_cast<std::uint8_t>(rate_bits >> 8);
  b[7] = static_cast<std::uint8_t>(rate_bits);
  return ExtendedCommunity(b);
}

float ExtendedCommunity::traffic_rate_bytes_per_second() const {
  const std::uint32_t rate_bits = (std::uint32_t{bytes_[4]} << 24) |
                                  (std::uint32_t{bytes_[5]} << 16) |
                                  (std::uint32_t{bytes_[6]} << 8) | std::uint32_t{bytes_[7]};
  float rate = 0.0f;
  std::memcpy(&rate, &rate_bits, 4);
  return rate;
}

std::string ExtendedCommunity::str() const {
  char buf[40];
  if ((type() & 0x3f) == kTypeTwoOctetAs) {
    std::snprintf(buf, sizeof buf, "ext:%u:%u:%u", subtype(), as_number(), local_admin());
  } else if (type() == kTypeGenericTransitiveExp && subtype() == kSubTypeFlowspecTrafficRate) {
    std::snprintf(buf, sizeof buf, "traffic-rate:%u:%.0fBps", as_number(),
                  static_cast<double>(traffic_rate_bytes_per_second()));
  } else {
    std::snprintf(buf, sizeof buf, "ext:0x%02x%02x:%010llu", type(), subtype(),
                  static_cast<unsigned long long>(as_u64() & 0xffffffffffffULL));
  }
  return buf;
}

std::uint64_t ExtendedCommunity::as_u64() const {
  std::uint64_t v = 0;
  for (std::uint8_t b : bytes_) v = (v << 8) | b;
  return v;
}

std::string LargeCommunity::str() const {
  return std::to_string(global_admin) + ":" + std::to_string(data1) + ":" + std::to_string(data2);
}

}  // namespace stellar::bgp
