// BGP session: finite state machine (RFC 4271 §8, reduced to the states an
// always-connected in-memory transport can reach), capability negotiation,
// keepalive/hold timers on the simulation clock, and stream reassembly of the
// wire format.
//
// The transport is a pair of in-memory endpoints joined by a Link with a
// configurable one-way latency — the moral equivalent of a TCP connection
// across the IXP peering LAN. Sessions never see each other directly; they
// only exchange encoded bytes, so everything above the transport exercises
// the real codec.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bgp/message.hpp"
#include "obs/metrics.hpp"
#include "sim/event_queue.hpp"

namespace stellar::bgp {

/// One side of an in-memory duplex byte pipe.
class Endpoint {
 public:
  using ReceiveHandler = std::function<void(std::span<const std::uint8_t>)>;
  using CloseHandler = std::function<void()>;
  /// Per-message fault hook (see sim/fault.hpp): may mutate the bytes
  /// (corruption) or add extra one-way delay; returning false drops the
  /// message entirely. Called once per send() on an open link.
  using FaultFilter = std::function<bool(std::vector<std::uint8_t>& bytes,
                                         sim::Duration& extra_delay)>;

  /// Sends bytes to the peer endpoint; they arrive after the link latency.
  /// On a closed link (either side) this is a counted no-op.
  void send(std::vector<std::uint8_t> bytes);
  /// Closes both directions; the peer's close handler fires after latency.
  void close();
  [[nodiscard]] bool closed() const { return closed_; }

  void set_receive_handler(ReceiveHandler h) { on_receive_ = std::move(h); }
  void set_close_handler(CloseHandler h) { on_close_ = std::move(h); }
  void set_fault_filter(FaultFilter f) { fault_filter_ = std::move(f); }

  struct Stats {
    /// send() calls attempted after this side closed or the peer was
    /// closed/destroyed — the bytes never left the host.
    std::uint64_t sends_after_close = 0;
    /// Total payload bytes that never reached the peer's receive handler
    /// (sends after close, in-flight bytes arriving at a closed peer, and
    /// fault-injector drops).
    std::uint64_t dropped_bytes = 0;
  };
  /// Thin read over the obs registry cells: per-endpoint values stay exact
  /// because each endpoint owns its own instance cells.
  [[nodiscard]] const Stats& stats() const {
    stats_.sends_after_close = sends_after_close_.value();
    stats_.dropped_bytes = dropped_bytes_.value();
    return stats_;
  }

 private:
  friend std::pair<std::shared_ptr<Endpoint>, std::shared_ptr<Endpoint>> MakeLink(
      sim::EventQueue& queue, sim::Duration latency);

  sim::EventQueue* queue_ = nullptr;
  sim::Duration latency_{0.0};
  std::weak_ptr<Endpoint> self_;  ///< For stats updates from queued events.
  std::weak_ptr<Endpoint> peer_;
  ReceiveHandler on_receive_;
  CloseHandler on_close_;
  FaultFilter fault_filter_;
  bool closed_ = false;
  obs::Counter sends_after_close_ = obs::registry().counter("bgp.endpoint.sends_after_close");
  obs::Counter dropped_bytes_ = obs::registry().counter("bgp.endpoint.dropped_bytes");
  mutable Stats stats_;
};

/// Creates a connected endpoint pair with the given one-way latency.
std::pair<std::shared_ptr<Endpoint>, std::shared_ptr<Endpoint>> MakeLink(
    sim::EventQueue& queue, sim::Duration latency = sim::Millis(1.0));

/// Observation hook for every link MakeLink creates (fault injection, link
/// telemetry). Single-threaded simulation-global state: at most one hook is
/// active; pass nullptr to uninstall. Returns the previously installed hook.
using LinkHook = std::function<void(const std::shared_ptr<Endpoint>&,
                                    const std::shared_ptr<Endpoint>&)>;
LinkHook SetLinkHook(LinkHook hook);

enum class SessionState : std::uint8_t {
  kIdle,
  kOpenSent,
  kOpenConfirm,
  kEstablished,
  kClosed,
};

[[nodiscard]] std::string_view ToString(SessionState s);

struct SessionConfig {
  Asn local_asn = 0;
  net::IPv4Address router_id;
  std::uint16_t hold_time_s = 90;  ///< 0 disables keepalive/hold timers.
  bool add_path_rx = false;        ///< Willing to receive ADD-PATH NLRI (IPv4 unicast).
  bool add_path_tx = false;        ///< Willing to send ADD-PATH NLRI.
  bool announce_ipv6_unicast = false;
};

/// A point-to-point BGP session over an Endpoint.
class Session {
 public:
  using UpdateHandler = std::function<void(const UpdateMessage&)>;
  using StateHandler = std::function<void(SessionState)>;
  using RefreshHandler = std::function<void(const RouteRefreshMessage&)>;

  Session(sim::EventQueue& queue, std::shared_ptr<Endpoint> transport, SessionConfig config);
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Kicks the FSM: sends OPEN and moves Idle -> OpenSent.
  void start();

  /// Queues an UPDATE. Sent immediately when Established, otherwise buffered
  /// and flushed on establishment (mirrors initial RIB synchronization).
  void announce(UpdateMessage update);

  /// Sends NOTIFICATION(Cease) and closes the transport.
  void stop(std::uint8_t cease_subcode = 0);

  /// Sends a ROUTE-REFRESH (RFC 2918) asking the peer to re-advertise its
  /// Adj-RIB-Out for the AFI/SAFI. Only meaningful once Established.
  void request_route_refresh(std::uint16_t afi = kAfiIPv4,
                             std::uint8_t safi = kSafiUnicast);

  [[nodiscard]] SessionState state() const { return state_; }
  [[nodiscard]] bool established() const { return state_ == SessionState::kEstablished; }
  [[nodiscard]] Asn local_asn() const { return config_.local_asn; }
  /// Peer ASN; valid once >= OpenConfirm.
  [[nodiscard]] Asn peer_asn() const { return peer_asn_; }
  [[nodiscard]] bool is_ibgp() const { return peer_asn_ == config_.local_asn; }
  /// Negotiated hold time (min of both OPENs); valid once Established.
  [[nodiscard]] std::uint16_t negotiated_hold_time_s() const { return hold_time_s_; }
  /// True if the peer will include path-ids in NLRI it sends to us.
  [[nodiscard]] bool add_path_rx_negotiated() const { return rx_codec_.add_path_ipv4_unicast; }
  [[nodiscard]] bool add_path_tx_negotiated() const { return tx_codec_.add_path_ipv4_unicast; }
  /// True once the peer's OPEN advertised the route-refresh capability.
  [[nodiscard]] bool peer_supports_route_refresh() const {
    return peer_supports_route_refresh_;
  }

  void set_update_handler(UpdateHandler h) { on_update_ = std::move(h); }
  void set_state_handler(StateHandler h) { on_state_ = std::move(h); }
  void set_refresh_handler(RefreshHandler h) { on_refresh_ = std::move(h); }

  // Introspection counters (looking-glass / tests).
  [[nodiscard]] std::uint64_t updates_sent() const { return updates_sent_; }
  [[nodiscard]] std::uint64_t updates_received() const { return updates_received_; }
  [[nodiscard]] std::uint64_t keepalives_received() const { return keepalives_received_; }

 private:
  void on_bytes(std::span<const std::uint8_t> bytes);
  void on_transport_closed();
  void handle_message(Message msg);
  void handle_open(OpenMessage open);
  void enter_established();
  void send(const Message& msg, const CodecOptions& codec);
  void fail(NotificationCode code, std::uint8_t subcode, const std::string& why);
  void set_state(SessionState s);
  void arm_hold_timer();
  void arm_keepalive_timer();

  sim::EventQueue& queue_;
  std::shared_ptr<Endpoint> transport_;
  SessionConfig config_;

  SessionState state_ = SessionState::kIdle;
  Asn peer_asn_ = 0;
  std::uint16_t hold_time_s_ = 0;
  bool peer_supports_route_refresh_ = false;
  CodecOptions rx_codec_;  ///< How we decode what the peer sends.
  CodecOptions tx_codec_;  ///< How we encode what we send.

  std::vector<std::uint8_t> rx_buffer_;
  std::deque<UpdateMessage> pending_;
  UpdateHandler on_update_;
  StateHandler on_state_;
  RefreshHandler on_refresh_;

  // Timer generation counters: bumping invalidates armed timers.
  std::uint64_t hold_generation_ = 0;
  std::uint64_t keepalive_generation_ = 0;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);

  std::uint64_t updates_sent_ = 0;
  std::uint64_t updates_received_ = 0;
  std::uint64_t keepalives_received_ = 0;
};

}  // namespace stellar::bgp
