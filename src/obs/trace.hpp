// Virtual-time-aware tracing (the second leg of the observability plane).
// The simulation has one authoritative clock — sim::EventQueue — but obs must
// stay below every other layer, so callers pass explicit timestamps (seconds
// on whatever clock they run; production code passes queue.now().count()).
//
// The workhorse is the point *mark*: each stage of the signal path stamps
// `tracer().mark(trace_id, stage, t_s)` as a mitigation flows through it
// (member announce → route-server ADD-PATH → controller rx/decode →
// token-bucket enqueue → edge-router install). `breakdown()` keeps the first
// occurrence of each stage, orders by time, and reports consecutive deltas —
// the deltas telescope, so per-stage spans sum *exactly* to the end-to-end
// signal→install latency. Trace ids are stable strings; the signal path keys
// traces by announced prefix ("100.10.10.10/32").
//
// Spans (begin/end pairs) are also supported for stages with duration; they
// are exported in dumps but breakdown() is defined over marks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace stellar::obs {

struct TraceEvent {
  std::string stage;
  double start_s = 0.0;
  double end_s = 0.0;  ///< == start_s for point marks.
};

class Tracer;

/// Handle for an in-flight duration span. Default-constructed spans are
/// inert; end() is a no-op once the owning trace has been evicted.
class Span {
 public:
  Span() = default;
  void end(double t_s);
  [[nodiscard]] bool active() const { return tracer_ != nullptr; }

 private:
  friend class Tracer;
  Span(Tracer* tracer, std::string trace_id, std::size_t event_index)
      : tracer_(tracer), trace_id_(std::move(trace_id)), event_index_(event_index) {}

  Tracer* tracer_ = nullptr;
  std::string trace_id_;
  std::size_t event_index_ = 0;
};

class Tracer {
 public:
  struct Options {
    std::size_t max_traces = 4096;          ///< FIFO eviction beyond this.
    std::size_t max_events_per_trace = 64;  ///< Further events are dropped.
  };

  Tracer() : Tracer(Options{}) {}
  explicit Tracer(Options options) : options_(options) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void set_enabled(bool enabled) { enabled_ = enabled; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Records that `trace_id` reached `stage` at time `t_s`.
  void mark(const std::string& trace_id, std::string_view stage, double t_s);
  /// Opens a duration span; close it with Span::end(t_s).
  Span begin_span(const std::string& trace_id, std::string_view stage, double t_s);

  /// Per-stage latency breakdown: first occurrence of each stage, ordered by
  /// time. delta_s is the time since the previous stage (0 for the first),
  /// so the deltas sum exactly to `back().at_s - front().at_s`.
  struct Stage {
    std::string stage;
    double at_s = 0.0;
    double delta_s = 0.0;
  };
  [[nodiscard]] std::vector<Stage> breakdown(const std::string& trace_id) const;

  [[nodiscard]] std::vector<TraceEvent> events(const std::string& trace_id) const;
  [[nodiscard]] std::vector<std::string> trace_ids() const;
  [[nodiscard]] std::size_t trace_count() const { return traces_.size(); }
  [[nodiscard]] std::uint64_t dropped_events() const { return dropped_events_; }

  /// CSV dump: header + one row per event (trace,stage,start_s,end_s).
  [[nodiscard]] std::string csv() const;
  [[nodiscard]] std::string jsonl() const;

  void clear();

  static Tracer& global();

 private:
  friend class Span;

  struct TraceRec {
    std::vector<TraceEvent> events;
  };

  TraceRec* record_for(const std::string& trace_id);
  void end_span(const std::string& trace_id, std::size_t event_index, double t_s);

  Options options_;
  bool enabled_ = true;
  std::map<std::string, TraceRec> traces_;
  std::deque<std::string> order_;  ///< Insertion order, drives FIFO eviction.
  std::uint64_t dropped_events_ = 0;
};

/// Shorthand for Tracer::global().
inline Tracer& tracer() { return Tracer::global(); }

}  // namespace stellar::obs
