// Bounded event journal (the third leg of the observability plane): a
// structured record of the discrete things that happened to the platform —
// session flaps, fault injections, rule installs/removals, detector
// trigger/clear — kept in a util::RingLog so week-long chaos runs cannot leak.
// Records carry the caller's clock (production code passes sim time; the
// detect engine passes experiment-relative bin time), and both the append
// order and the CSV/JSONL dumps are deterministic: same seed, same scenario,
// byte-identical journal (asserted by tests/integration/chaos_test).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/ring_log.hpp"

namespace stellar::obs {

enum class EventKind : std::uint8_t {
  // BGP session lifecycle (bgp::ReconnectingSession).
  kSessionFlap,        ///< Established session dropped to idle/closed.
  kSessionReconnect,   ///< Redial re-established the session.
  kSessionSuppressed,  ///< Flap damping suppressed a redial.
  kDialTimeout,        ///< A dial attempt never reached kEstablished.
  kSessionGiveUp,      ///< Retry budget exhausted; session abandoned.
  // Injected faults (sim::FaultInjector).
  kFaultDrop,
  kFaultCorrupt,
  kFaultDelay,
  kFaultPartitionDrop,
  kFaultKill,
  // Rule lifecycle (core::NetworkManager).
  kRuleInstalled,
  kRuleRemoved,
  kRuleRetry,
  kRuleDeadLettered,
  // Controller safety actions (core::BlackholingController).
  kFailsafeFlush,
  kReconciliation,
  // Detection loop (detect::AutoMitigator).
  kDetectorTriggered,
  kDetectorCleared,
  kMitigationEscalated,
  kMitigationWithdrawn,
};

[[nodiscard]] std::string_view ToString(EventKind kind);

struct JournalEvent {
  double t_s = 0.0;
  EventKind kind = EventKind::kSessionFlap;
  std::string subject;  ///< What it happened to (prefix, rule key, link#, ASN).
  std::string detail;   ///< Free-form context; commas are escaped in CSV.
};

class Journal {
 public:
  explicit Journal(std::size_t capacity = util::RingLog<JournalEvent>::kDefaultCapacity)
      : events_(capacity) {}
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  void set_enabled(bool enabled) { enabled_ = enabled; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  void append(double t_s, EventKind kind, std::string subject, std::string detail = "");

  [[nodiscard]] const util::RingLog<JournalEvent>& events() const { return events_; }
  /// Retained events of one kind (convenience for tests and reports).
  [[nodiscard]] std::uint64_t count(EventKind kind) const;

  /// CSV dump: header + "t_s,kind,subject,detail" rows in append order.
  [[nodiscard]] std::string csv() const;
  [[nodiscard]] std::string jsonl() const;

  void clear() { events_.clear(); }

  static Journal& global();

 private:
  bool enabled_ = true;
  util::RingLog<JournalEvent> events_;
};

/// Shorthand for Journal::global().
inline Journal& journal() { return Journal::global(); }

}  // namespace stellar::obs
