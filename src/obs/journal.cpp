#include "obs/journal.hpp"

#include <algorithm>
#include <cstdio>

namespace stellar::obs {
namespace {

std::string FormatTime(double t_s) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6f", t_s);
  return buf;
}

std::string CsvField(std::string s) {
  // The journal's CSV is line-oriented for diffing, not a full CSV dialect:
  // commas and newlines in payloads are folded to ';' / ' '.
  std::replace(s.begin(), s.end(), ',', ';');
  std::replace(s.begin(), s.end(), '\n', ' ');
  return s;
}

}  // namespace

std::string_view ToString(EventKind kind) {
  switch (kind) {
    case EventKind::kSessionFlap: return "session_flap";
    case EventKind::kSessionReconnect: return "session_reconnect";
    case EventKind::kSessionSuppressed: return "session_suppressed";
    case EventKind::kDialTimeout: return "dial_timeout";
    case EventKind::kSessionGiveUp: return "session_give_up";
    case EventKind::kFaultDrop: return "fault_drop";
    case EventKind::kFaultCorrupt: return "fault_corrupt";
    case EventKind::kFaultDelay: return "fault_delay";
    case EventKind::kFaultPartitionDrop: return "fault_partition_drop";
    case EventKind::kFaultKill: return "fault_kill";
    case EventKind::kRuleInstalled: return "rule_installed";
    case EventKind::kRuleRemoved: return "rule_removed";
    case EventKind::kRuleRetry: return "rule_retry";
    case EventKind::kRuleDeadLettered: return "rule_dead_lettered";
    case EventKind::kFailsafeFlush: return "failsafe_flush";
    case EventKind::kReconciliation: return "reconciliation";
    case EventKind::kDetectorTriggered: return "detector_triggered";
    case EventKind::kDetectorCleared: return "detector_cleared";
    case EventKind::kMitigationEscalated: return "mitigation_escalated";
    case EventKind::kMitigationWithdrawn: return "mitigation_withdrawn";
  }
  return "unknown";
}

void Journal::append(double t_s, EventKind kind, std::string subject, std::string detail) {
  if (!enabled_) return;
  events_.push_back(JournalEvent{t_s, kind, std::move(subject), std::move(detail)});
}

std::uint64_t Journal::count(EventKind kind) const {
  std::uint64_t n = 0;
  for (const JournalEvent& ev : events_) {
    if (ev.kind == kind) ++n;
  }
  return n;
}

std::string Journal::csv() const {
  std::string out = "t_s,kind,subject,detail\n";
  for (const JournalEvent& ev : events_) {
    out += FormatTime(ev.t_s) + "," + std::string(ToString(ev.kind)) + "," +
           CsvField(ev.subject) + "," + CsvField(ev.detail) + "\n";
  }
  return out;
}

std::string Journal::jsonl() const {
  std::string out;
  for (const JournalEvent& ev : events_) {
    out += "{\"t_s\":" + FormatTime(ev.t_s) + ",\"kind\":\"" + std::string(ToString(ev.kind)) +
           "\",\"subject\":\"" + ev.subject + "\",\"detail\":\"" + ev.detail + "\"}\n";
  }
  return out;
}

Journal& Journal::global() {
  static Journal* instance = new Journal();
  return *instance;
}

}  // namespace stellar::obs
