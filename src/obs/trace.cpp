#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>

namespace stellar::obs {
namespace {

std::string FormatTime(double t_s) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9f", t_s);
  return buf;
}

}  // namespace

void Span::end(double t_s) {
  if (tracer_ == nullptr) return;
  tracer_->end_span(trace_id_, event_index_, t_s);
  tracer_ = nullptr;
}

Tracer::TraceRec* Tracer::record_for(const std::string& trace_id) {
  auto it = traces_.find(trace_id);
  if (it == traces_.end()) {
    while (traces_.size() >= options_.max_traces && !order_.empty()) {
      traces_.erase(order_.front());
      order_.pop_front();
    }
    it = traces_.emplace(trace_id, TraceRec{}).first;
    order_.push_back(trace_id);
  }
  if (it->second.events.size() >= options_.max_events_per_trace) {
    ++dropped_events_;
    return nullptr;
  }
  return &it->second;
}

void Tracer::mark(const std::string& trace_id, std::string_view stage, double t_s) {
  if (!enabled_) return;
  TraceRec* rec = record_for(trace_id);
  if (rec == nullptr) return;
  rec->events.push_back(TraceEvent{std::string(stage), t_s, t_s});
}

Span Tracer::begin_span(const std::string& trace_id, std::string_view stage, double t_s) {
  if (!enabled_) return Span{};
  TraceRec* rec = record_for(trace_id);
  if (rec == nullptr) return Span{};
  rec->events.push_back(TraceEvent{std::string(stage), t_s, t_s});
  return Span(this, trace_id, rec->events.size() - 1);
}

void Tracer::end_span(const std::string& trace_id, std::size_t event_index, double t_s) {
  const auto it = traces_.find(trace_id);
  if (it == traces_.end() || event_index >= it->second.events.size()) return;
  it->second.events[event_index].end_s = t_s;
}

std::vector<Tracer::Stage> Tracer::breakdown(const std::string& trace_id) const {
  std::vector<Stage> out;
  const auto it = traces_.find(trace_id);
  if (it == traces_.end()) return out;

  // First occurrence per stage (replays and re-announcements re-stamp the
  // same stages; the first episode is the one the latency story is about),
  // then time order. stable_sort keeps insertion order for equal timestamps,
  // which is the causal order within one simulation tick.
  std::vector<TraceEvent> events;
  for (const TraceEvent& ev : it->second.events) {
    const bool seen = std::any_of(events.begin(), events.end(),
                                  [&](const TraceEvent& e) { return e.stage == ev.stage; });
    if (!seen) events.push_back(ev);
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) { return a.start_s < b.start_s; });

  out.reserve(events.size());
  for (const TraceEvent& ev : events) {
    Stage stage;
    stage.stage = ev.stage;
    stage.at_s = ev.start_s;
    stage.delta_s = out.empty() ? 0.0 : ev.start_s - out.back().at_s;
    out.push_back(std::move(stage));
  }
  return out;
}

std::vector<TraceEvent> Tracer::events(const std::string& trace_id) const {
  const auto it = traces_.find(trace_id);
  if (it == traces_.end()) return {};
  return it->second.events;
}

std::vector<std::string> Tracer::trace_ids() const {
  return {order_.begin(), order_.end()};
}

std::string Tracer::csv() const {
  std::string out = "trace,stage,start_s,end_s\n";
  for (const std::string& id : order_) {
    const auto it = traces_.find(id);
    if (it == traces_.end()) continue;
    for (const TraceEvent& ev : it->second.events) {
      out += id + "," + ev.stage + "," + FormatTime(ev.start_s) + "," + FormatTime(ev.end_s) +
             "\n";
    }
  }
  return out;
}

std::string Tracer::jsonl() const {
  std::string out;
  for (const std::string& id : order_) {
    const auto it = traces_.find(id);
    if (it == traces_.end()) continue;
    for (const TraceEvent& ev : it->second.events) {
      out += "{\"trace\":\"" + id + "\",\"stage\":\"" + ev.stage +
             "\",\"start_s\":" + FormatTime(ev.start_s) + ",\"end_s\":" + FormatTime(ev.end_s) +
             "}\n";
    }
  }
  return out;
}

void Tracer::clear() {
  traces_.clear();
  order_.clear();
  dropped_events_ = 0;
}

Tracer& Tracer::global() {
  static Tracer* instance = new Tracer();
  return *instance;
}

}  // namespace stellar::obs
