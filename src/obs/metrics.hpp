// Process-wide metrics registry (the first leg of the observability plane):
// named counters, gauges, and log-bucketed histograms with near-free hot-path
// increments. Components register *instance cells* under a shared family name
// — the registry sums cells for exposition while each component keeps a
// private view, so per-object accessors (EdgeRouter::tcam_release_errors,
// Endpoint::stats) stay exact even when many instances live in one process.
//
// Duplicate-name detection: registering the same family name with a different
// metric kind (or different histogram bucket options) throws std::logic_error
// — CI treats that as a broken build, not a runtime condition.
//
// Disarmed mode is the hot-path contract: every handle checks a single bool
// owned by its registry before touching its cell, so a disarmed registry
// costs one predictable branch per event (<5 ns, bench/micro_benchmarks.cc
// BM_ObsHotPath). The simulation is single-threaded; so is the registry.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace stellar::obs {

/// Exponential ("log") bucket layout: bucket i holds values in
/// (min_bound*growth^(i-1), min_bound*growth^i]; values <= min_bound land in
/// bucket 0 and values above the last bound land in the overflow bucket.
struct HistogramOptions {
  double min_bound = 1e-3;    ///< Upper bound of the first bucket.
  double growth = 2.0;        ///< Bound ratio between adjacent buckets (> 1).
  std::size_t bucket_count = 40;  ///< Finite buckets, excluding overflow.

  friend bool operator==(const HistogramOptions&, const HistogramOptions&) = default;
};

/// The histogram payload: bucket counts plus exact count/sum/min/max.
/// Separable from the handle so families can be merged for exposition and
/// tests can merge two histograms directly.
class HistogramData {
 public:
  explicit HistogramData(HistogramOptions options = {});

  void observe(double value);
  /// Folds `other` into this histogram. Throws std::logic_error on bucket
  /// layout mismatch — merging differently-bucketed histograms is undefined.
  void merge(const HistogramData& other);

  /// Percentile in [0,100], util::Percentile-style fractional rank with
  /// linear interpolation inside the containing bucket; clamped to the
  /// observed [min, max]. Returns 0 for an empty histogram.
  [[nodiscard]] double percentile(double pct) const;

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] const HistogramOptions& options() const { return options_; }
  /// Finite buckets first, overflow bucket last (size bucket_count + 1).
  [[nodiscard]] const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }
  /// Upper bound of finite bucket i (i < bucket_count).
  [[nodiscard]] double upper_bound(std::size_t bucket) const { return bounds_[bucket]; }

  void reset();

 private:
  [[nodiscard]] std::size_t bucket_for(double value) const;

  HistogramOptions options_;
  std::vector<double> bounds_;          ///< Precomputed bucket upper bounds.
  std::vector<std::uint64_t> counts_;   ///< bounds_.size() + 1 (overflow last).
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

namespace internal {
struct CounterCell {
  std::uint64_t value = 0;
};
struct GaugeCell {
  double value = 0.0;
};
}  // namespace internal

/// Monotonic event counter. Handles are cheap value types; the cell they
/// point at is owned by the registry and outlives them.
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    if (*armed_) cell_->value += n;
  }
  [[nodiscard]] std::uint64_t value() const { return cell_->value; }

 private:
  friend class Registry;
  Counter(internal::CounterCell* cell, const bool* armed) : cell_(cell), armed_(armed) {}

  internal::CounterCell* cell_;
  const bool* armed_;
};

/// Point-in-time value (queue depths, penalties).
class Gauge {
 public:
  void set(double v) {
    if (*armed_) cell_->value = v;
  }
  void add(double delta) {
    if (*armed_) cell_->value += delta;
  }
  [[nodiscard]] double value() const { return cell_->value; }

 private:
  friend class Registry;
  Gauge(internal::GaugeCell* cell, const bool* armed) : cell_(cell), armed_(armed) {}

  internal::GaugeCell* cell_;
  const bool* armed_;
};

/// Log-bucketed latency/size distribution.
class Histogram {
 public:
  void observe(double value) {
    if (*armed_) cell_->observe(value);
  }
  [[nodiscard]] double percentile(double pct) const { return cell_->percentile(pct); }
  [[nodiscard]] std::uint64_t count() const { return cell_->count(); }
  [[nodiscard]] double sum() const { return cell_->sum(); }
  [[nodiscard]] const HistogramData& data() const { return *cell_; }

  /// Merged copy of two histograms (same bucket layout required).
  static HistogramData Merge(const HistogramData& a, const HistogramData& b);

 private:
  friend class Registry;
  Histogram(HistogramData* cell, const bool* armed) : cell_(cell), armed_(armed) {}

  HistogramData* cell_;
  const bool* armed_;
};

class Registry {
 public:
  explicit Registry(bool armed = true) : armed_(armed) {}
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Registers a new instance cell under `name` and returns its handle.
  /// Metric names use dotted lowercase ("core.manager.applied"); allowed
  /// characters are [A-Za-z0-9_.]. Throws std::invalid_argument on a bad
  /// name and std::logic_error when `name` already exists as another kind.
  Counter counter(const std::string& name, std::string help = "");
  Gauge gauge(const std::string& name, std::string help = "");
  /// Histogram families additionally require every registration to agree on
  /// the bucket options; a mismatch throws std::logic_error.
  Histogram histogram(const std::string& name, HistogramOptions options = {},
                      std::string help = "");

  void arm() { armed_ = true; }
  void disarm() { armed_ = false; }
  [[nodiscard]] bool armed() const { return armed_; }

  [[nodiscard]] std::size_t family_count() const { return families_.size(); }
  /// Total value of a counter family (sum over instance cells); 0 if absent.
  [[nodiscard]] std::uint64_t counter_total(const std::string& name) const;
  /// Merged histogram of a family (empty histogram if absent).
  [[nodiscard]] HistogramData histogram_merged(const std::string& name) const;

  /// Prometheus-style text exposition: families in name order, dots mapped
  /// to underscores, instance cells summed / merged.
  [[nodiscard]] std::string expose_text() const;
  /// One JSON object per family per line (machine-readable snapshot).
  [[nodiscard]] std::string snapshot_jsonl() const;

  /// Zeroes every cell without unregistering families (handles stay valid).
  void reset_values();

  /// The process-wide registry every production component registers with.
  static Registry& global();

 private:
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

  struct Family {
    Kind kind = Kind::kCounter;
    std::string help;
    HistogramOptions options;  ///< Histogram families only.
    std::vector<std::unique_ptr<internal::CounterCell>> counters;
    std::vector<std::unique_ptr<internal::GaugeCell>> gauges;
    std::vector<std::unique_ptr<HistogramData>> histograms;
  };

  Family& family(const std::string& name, Kind kind, std::string help);

  bool armed_;
  std::map<std::string, Family> families_;
};

/// Shorthand for Registry::global().
inline Registry& registry() { return Registry::global(); }

}  // namespace stellar::obs
