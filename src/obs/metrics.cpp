#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace stellar::obs {
namespace {

bool ValidName(const std::string& name) {
  if (name.empty()) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.';
    if (!ok) return false;
  }
  return true;
}

std::string SanitizeForExposition(const std::string& name) {
  std::string out = name;
  std::replace(out.begin(), out.end(), '.', '_');
  return out;
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

const char* KindName(bool is_counter, bool is_gauge) {
  if (is_counter) return "counter";
  if (is_gauge) return "gauge";
  return "histogram";
}

}  // namespace

HistogramData::HistogramData(HistogramOptions options) : options_(options) {
  if (!(options_.min_bound > 0.0) || !(options_.growth > 1.0) || options_.bucket_count == 0) {
    throw std::invalid_argument("obs: histogram options require min_bound>0, growth>1, buckets>0");
  }
  bounds_.reserve(options_.bucket_count);
  double bound = options_.min_bound;
  for (std::size_t i = 0; i < options_.bucket_count; ++i) {
    bounds_.push_back(bound);
    bound *= options_.growth;
  }
  counts_.assign(options_.bucket_count + 1, 0);
}

std::size_t HistogramData::bucket_for(double value) const {
  // First bucket whose upper bound admits the value; binary search over the
  // precomputed bounds keeps observe() branch-only (no log() on hot path).
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  return static_cast<std::size_t>(it - bounds_.begin());  // == size() → overflow.
}

void HistogramData::observe(double value) {
  ++counts_[bucket_for(value)];
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

void HistogramData::merge(const HistogramData& other) {
  if (!(options_ == other.options_)) {
    throw std::logic_error("obs: cannot merge histograms with different bucket layouts");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  if (other.count_ > 0) {
    if (count_ == 0) {
      min_ = other.min_;
      max_ = other.max_;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

double HistogramData::percentile(double pct) const {
  if (count_ == 0) return 0.0;
  pct = std::clamp(pct, 0.0, 100.0);
  // Same fractional-rank convention as util::Percentile: rank 0 is the
  // smallest sample, rank count-1 the largest, linear interpolation between.
  const double rank = (pct / 100.0) * static_cast<double>(count_ - 1);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double c = static_cast<double>(counts_[i]);
    if (c == 0.0) continue;
    if (rank < cumulative + c) {
      // Interpolate uniformly inside the bucket between its bounds, tightened
      // by the observed extrema so single-value buckets report exactly.
      double lower = (i == 0) ? min_ : bounds_[i - 1];
      double upper = (i < bounds_.size()) ? bounds_[i] : max_;
      lower = std::max(lower, min_);
      upper = std::min(upper, max_);
      if (upper < lower) upper = lower;
      const double frac = c <= 1.0 ? 0.0 : (rank - cumulative) / (c - 1.0);
      return std::clamp(lower + (upper - lower) * frac, min_, max_);
    }
    cumulative += c;
  }
  return max_;
}

void HistogramData::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

HistogramData Histogram::Merge(const HistogramData& a, const HistogramData& b) {
  HistogramData out(a.options());
  out.merge(a);
  out.merge(b);
  return out;
}

Registry::Family& Registry::family(const std::string& name, Kind kind, std::string help) {
  if (!ValidName(name)) {
    throw std::invalid_argument("obs: invalid metric name '" + name + "'");
  }
  auto [it, inserted] = families_.try_emplace(name);
  Family& fam = it->second;
  if (inserted) {
    fam.kind = kind;
    fam.help = std::move(help);
  } else if (fam.kind != kind) {
    throw std::logic_error("obs: duplicate metric registration with conflicting kind: '" + name +
                           "'");
  }
  return fam;
}

Counter Registry::counter(const std::string& name, std::string help) {
  Family& fam = family(name, Kind::kCounter, std::move(help));
  fam.counters.push_back(std::make_unique<internal::CounterCell>());
  return Counter(fam.counters.back().get(), &armed_);
}

Gauge Registry::gauge(const std::string& name, std::string help) {
  Family& fam = family(name, Kind::kGauge, std::move(help));
  fam.gauges.push_back(std::make_unique<internal::GaugeCell>());
  return Gauge(fam.gauges.back().get(), &armed_);
}

Histogram Registry::histogram(const std::string& name, HistogramOptions options,
                              std::string help) {
  Family& fam = family(name, Kind::kHistogram, std::move(help));
  if (fam.histograms.empty()) {
    fam.options = options;
  } else if (!(fam.options == options)) {
    throw std::logic_error("obs: duplicate metric registration with conflicting histogram options: '" +
                           name + "'");
  }
  fam.histograms.push_back(std::make_unique<HistogramData>(options));
  return Histogram(fam.histograms.back().get(), &armed_);
}

std::uint64_t Registry::counter_total(const std::string& name) const {
  const auto it = families_.find(name);
  if (it == families_.end() || it->second.kind != Kind::kCounter) return 0;
  std::uint64_t total = 0;
  for (const auto& cell : it->second.counters) total += cell->value;
  return total;
}

HistogramData Registry::histogram_merged(const std::string& name) const {
  const auto it = families_.find(name);
  if (it == families_.end() || it->second.kind != Kind::kHistogram ||
      it->second.histograms.empty()) {
    return HistogramData{};
  }
  HistogramData out(it->second.options);
  for (const auto& cell : it->second.histograms) out.merge(*cell);
  return out;
}

std::string Registry::expose_text() const {
  std::string out;
  for (const auto& [name, fam] : families_) {
    const std::string ename = SanitizeForExposition(name);
    if (!fam.help.empty()) out += "# HELP " + ename + " " + fam.help + "\n";
    switch (fam.kind) {
      case Kind::kCounter: {
        out += "# TYPE " + ename + " counter\n";
        std::uint64_t total = 0;
        for (const auto& cell : fam.counters) total += cell->value;
        out += ename + " " + std::to_string(total) + "\n";
        break;
      }
      case Kind::kGauge: {
        out += "# TYPE " + ename + " gauge\n";
        double total = 0.0;
        for (const auto& cell : fam.gauges) total += cell->value;
        out += ename + " " + FormatDouble(total) + "\n";
        break;
      }
      case Kind::kHistogram: {
        out += "# TYPE " + ename + " histogram\n";
        HistogramData merged(fam.options);
        for (const auto& cell : fam.histograms) merged.merge(*cell);
        std::uint64_t cumulative = 0;
        const auto& counts = merged.bucket_counts();
        for (std::size_t i = 0; i + 1 < counts.size(); ++i) {
          cumulative += counts[i];
          out += ename + "_bucket{le=\"" + FormatDouble(merged.upper_bound(i)) + "\"} " +
                 std::to_string(cumulative) + "\n";
        }
        cumulative += counts.back();
        out += ename + "_bucket{le=\"+Inf\"} " + std::to_string(cumulative) + "\n";
        out += ename + "_sum " + FormatDouble(merged.sum()) + "\n";
        out += ename + "_count " + std::to_string(merged.count()) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string Registry::snapshot_jsonl() const {
  std::string out;
  for (const auto& [name, fam] : families_) {
    out += "{\"name\":\"" + name + "\",\"type\":\"" +
           KindName(fam.kind == Kind::kCounter, fam.kind == Kind::kGauge) + "\"";
    switch (fam.kind) {
      case Kind::kCounter: {
        std::uint64_t total = 0;
        for (const auto& cell : fam.counters) total += cell->value;
        out += ",\"instances\":" + std::to_string(fam.counters.size()) +
               ",\"value\":" + std::to_string(total);
        break;
      }
      case Kind::kGauge: {
        double total = 0.0;
        for (const auto& cell : fam.gauges) total += cell->value;
        out += ",\"instances\":" + std::to_string(fam.gauges.size()) +
               ",\"value\":" + FormatDouble(total);
        break;
      }
      case Kind::kHistogram: {
        HistogramData merged(fam.options);
        for (const auto& cell : fam.histograms) merged.merge(*cell);
        out += ",\"instances\":" + std::to_string(fam.histograms.size()) +
               ",\"count\":" + std::to_string(merged.count()) +
               ",\"sum\":" + FormatDouble(merged.sum());
        if (merged.count() > 0) {
          out += ",\"min\":" + FormatDouble(merged.min()) +
                 ",\"max\":" + FormatDouble(merged.max()) +
                 ",\"p50\":" + FormatDouble(merged.percentile(50)) +
                 ",\"p90\":" + FormatDouble(merged.percentile(90)) +
                 ",\"p99\":" + FormatDouble(merged.percentile(99)) +
                 ",\"p999\":" + FormatDouble(merged.percentile(99.9));
        }
        break;
      }
    }
    out += "}\n";
  }
  return out;
}

void Registry::reset_values() {
  for (auto& [name, fam] : families_) {
    (void)name;
    for (auto& cell : fam.counters) cell->value = 0;
    for (auto& cell : fam.gauges) cell->value = 0.0;
    for (auto& cell : fam.histograms) cell->reset();
  }
}

Registry& Registry::global() {
  static Registry* instance = new Registry(/*armed=*/true);
  return *instance;
}

}  // namespace stellar::obs
