#include "traffic/generators.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace stellar::traffic {

namespace {

constexpr double kBytesPerMbps = 1e6 / 8.0;  // Bytes per second at 1 Mbit/s.

// Typical packet sizes for packet-count estimates (counters only; the fluid
// model carries bytes).
constexpr double kWebPacketBytes = 900.0;
constexpr double kAmplificationPacketBytes = 1200.0;

std::uint64_t PacketsFor(double bytes, double packet_size) {
  return static_cast<std::uint64_t>(std::max(1.0, bytes / packet_size));
}

}  // namespace

net::IPv4Address RandomHostIn(const net::Prefix4& prefix, util::Rng& rng) {
  const std::uint32_t host_bits = 32u - prefix.length();
  if (host_bits == 0) return prefix.address();
  const std::uint32_t span = host_bits >= 32 ? 0xffffffffu : (1u << host_bits) - 1u;
  const auto offset = static_cast<std::uint32_t>(rng.uniform_int(1, span));
  return net::IPv4Address(prefix.address().value() | offset);
}

// ---------------------------------------------------------------------------
// WebTrafficGenerator.

WebTrafficGenerator::WebTrafficGenerator(Config config, std::vector<SourceMember> sources,
                                         std::uint64_t seed)
    : config_(std::move(config)), sources_(std::move(sources)), rng_(seed) {
  if (sources_.empty()) throw std::invalid_argument("WebTrafficGenerator: no sources");
}

std::vector<net::FlowSample> WebTrafficGenerator::bin(double t_s, double bin_s) {
  std::vector<net::FlowSample> out;
  const double rate = config_.rate_mbps *
                      std::max(0.0, 1.0 + rng_.normal(0.0, config_.rate_jitter));
  const double total_bytes = rate * kBytesPerMbps * bin_s;
  if (total_bytes <= 0.0) return out;

  // Build the weighted port menu; the residual weight goes to "other" ports.
  std::vector<double> weights;
  double named = 0.0;
  for (const auto& [port, w] : config_.port_weights) {
    weights.push_back(w);
    named += w;
  }
  weights.push_back(std::max(0.0, 1.0 - named));  // "others".

  const double bytes_per_flow = total_bytes / config_.flows_per_bin;
  for (int i = 0; i < config_.flows_per_bin; ++i) {
    const std::size_t pick = rng_.weighted_index(weights);
    net::FlowSample s;
    s.time_s = t_s;
    const auto& src = sources_[static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(sources_.size()) - 1))];
    s.key.src_mac = src.mac;
    s.key.src_ip = RandomHostIn(src.address_space, rng_);
    s.key.dst_ip = config_.target;
    s.key.proto = rng_.chance(config_.tcp_fraction) ? net::IpProto::kTcp : net::IpProto::kUdp;
    s.key.src_port = static_cast<std::uint16_t>(rng_.uniform_int(32768, 60999));
    s.key.dst_port = pick < config_.port_weights.size()
                         ? config_.port_weights[pick].first
                         : static_cast<std::uint16_t>(rng_.uniform_int(1024, 32767));
    s.bytes = static_cast<std::uint64_t>(bytes_per_flow);
    s.packets = PacketsFor(bytes_per_flow, kWebPacketBytes);
    out.push_back(s);
  }
  return out;
}

// ---------------------------------------------------------------------------
// AmplificationAttackGenerator.

AmplificationAttackGenerator::AmplificationAttackGenerator(Config config,
                                                           std::vector<SourceMember> sources,
                                                           std::uint64_t seed)
    : config_(config), rng_(seed) {
  if (sources.empty()) throw std::invalid_argument("AmplificationAttackGenerator: no sources");
  if (config_.reflectors <= 0) throw std::invalid_argument("reflectors must be positive");

  // Choose which members carry attack traffic: reflectors sit in many
  // networks, but booters' reflector lists cluster — pick a random subset.
  std::vector<SourceMember> shuffled = std::move(sources);
  rng_.shuffle(shuffled);
  const auto n_members = std::min<std::size_t>(
      shuffled.size(), static_cast<std::size_t>(std::max(1, config_.source_members)));
  members_.assign(shuffled.begin(), shuffled.begin() + static_cast<std::ptrdiff_t>(n_members));

  // Reflector volumes are heavy-tailed (a few big NTP servers dominate).
  reflectors_.reserve(static_cast<std::size_t>(config_.reflectors));
  for (int i = 0; i < config_.reflectors; ++i) {
    Reflector r;
    r.member_index = static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(members_.size()) - 1));
    r.ip = RandomHostIn(members_[r.member_index].address_space, rng_);
    r.weight = rng_.pareto(1.0, 1.2);
    total_weight_ += r.weight;
    reflectors_.push_back(r);
  }
}

double AmplificationAttackGenerator::envelope(double t_s) const {
  if (t_s < config_.start_s || t_s >= config_.end_s) return 0.0;
  if (config_.ramp_s <= 0.0) return 1.0;
  return std::min(1.0, (t_s - config_.start_s) / config_.ramp_s);
}

std::vector<net::FlowSample> AmplificationAttackGenerator::bin(double t_s, double bin_s) {
  std::vector<net::FlowSample> out;
  const double env = envelope(t_s);
  if (env <= 0.0) return out;
  const double rate = config_.peak_mbps * env *
                      std::max(0.0, 1.0 + rng_.normal(0.0, config_.jitter));
  const double total_bytes = rate * kBytesPerMbps * bin_s;
  out.reserve(reflectors_.size());
  for (const auto& r : reflectors_) {
    const double bytes = total_bytes * r.weight / total_weight_;
    if (bytes < 1.0) continue;
    net::FlowSample s;
    s.time_s = t_s;
    s.key.src_mac = members_[r.member_index].mac;
    s.key.src_ip = r.ip;
    s.key.dst_ip = config_.target;
    s.key.proto = net::IpProto::kUdp;
    s.key.src_port = config_.service.udp_port;
    // Response goes back to the spoofed request's ephemeral port.
    s.key.dst_port = static_cast<std::uint16_t>(rng_.uniform_int(1024, 65535));
    s.bytes = static_cast<std::uint64_t>(bytes);
    s.packets = PacketsFor(bytes, kAmplificationPacketBytes);
    out.push_back(s);
  }
  return out;
}

AmplificationAttackGenerator::Config BooterNtpAttack(net::IPv4Address target, double peak_mbps,
                                                     double start_s, double end_s) {
  AmplificationAttackGenerator::Config c;
  c.target = target;
  c.service = net::kAmplificationServices[1];  // NTP.
  c.peak_mbps = peak_mbps;
  c.start_s = start_s;
  c.end_s = end_s;
  c.ramp_s = 15.0;
  c.reflectors = 900;
  c.source_members = 55;  // Paper §5.3: attack arrives via ~60 peers.
  return c;
}

// ---------------------------------------------------------------------------
// BackgroundTrafficGenerator.

BackgroundTrafficGenerator::BackgroundTrafficGenerator(Config config,
                                                       std::vector<SourceMember> sources,
                                                       std::uint64_t seed)
    : config_(config), sources_(std::move(sources)), rng_(seed) {
  if (sources_.empty()) throw std::invalid_argument("BackgroundTrafficGenerator: no sources");
}

std::vector<net::FlowSample> BackgroundTrafficGenerator::bin(double t_s, double bin_s) {
  std::vector<net::FlowSample> out;
  const double total_bytes = config_.rate_mbps * kBytesPerMbps * bin_s;
  const double bytes_per_flow = total_bytes / config_.flows_per_bin;
  for (int i = 0; i < config_.flows_per_bin; ++i) {
    net::FlowSample s;
    s.time_s = t_s;
    const auto& src = sources_[static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(sources_.size()) - 1))];
    s.key.src_mac = src.mac;
    s.key.src_ip = RandomHostIn(src.address_space, rng_);
    s.key.dst_ip = RandomHostIn(config_.dst_space, rng_);
    s.key.proto = rng_.chance(config_.tcp_fraction) ? net::IpProto::kTcp : net::IpProto::kUdp;
    if (s.key.proto == net::IpProto::kTcp) {
      // Server-to-client web responses dominate inter-domain TCP bytes.
      s.key.src_port = rng_.chance(0.7) ? net::kPortHttps : net::kPortHttp;
      s.key.dst_port = static_cast<std::uint16_t>(rng_.uniform_int(32768, 60999));
    } else {
      // Benign UDP: QUIC (443), DNS answers, media.
      const double pick = rng_.uniform();
      s.key.src_port = pick < 0.6 ? net::kPortHttps
                       : pick < 0.75 ? net::kPortDns
                                     : static_cast<std::uint16_t>(rng_.uniform_int(1024, 65535));
      s.key.dst_port = static_cast<std::uint16_t>(rng_.uniform_int(1024, 65535));
    }
    s.bytes = static_cast<std::uint64_t>(bytes_per_flow);
    s.packets = PacketsFor(bytes_per_flow, kWebPacketBytes);
    out.push_back(s);
  }
  return out;
}

}  // namespace stellar::traffic
