// Flow-trace import/export in a simple CSV dialect, so recorded IPFIX-style
// data can be replayed through the platform (fabric, collectors, Stellar
// policies) in place of the synthetic generators, and simulation results can
// be post-processed outside.
//
// Format (header required, one flow sample per line):
//   time_s,src_mac,src_ip,dst_ip,proto,src_port,dst_port,bytes,packets
//   12.0,02:00:00:00:ea:61,60.1.0.5,100.10.10.10,udp,123,5555,1250000,1042
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "net/flow.hpp"
#include "util/result.hpp"

namespace stellar::traffic {

inline constexpr std::string_view kFlowCsvHeader =
    "time_s,src_mac,src_ip,dst_ip,proto,src_port,dst_port,bytes,packets";

/// Serializes samples (header + one line per sample).
void WriteFlowCsv(std::ostream& out, std::span<const net::FlowSample> samples);
[[nodiscard]] std::string FlowsToCsv(std::span<const net::FlowSample> samples);

/// Parses a CSV document. Strict: a malformed header, field count, or value
/// fails with the offending line number in the error message. Blank lines
/// and lines starting with '#' are skipped.
[[nodiscard]] util::Result<std::vector<net::FlowSample>> ReadFlowCsv(std::istream& in);
[[nodiscard]] util::Result<std::vector<net::FlowSample>> FlowsFromCsv(std::string_view text);

/// File conveniences.
[[nodiscard]] util::Result<void> WriteFlowCsvFile(const std::string& path,
                                                  std::span<const net::FlowSample> samples);
[[nodiscard]] util::Result<std::vector<net::FlowSample>> ReadFlowCsvFile(
    const std::string& path);

}  // namespace stellar::traffic
