#include "traffic/trace_io.hpp"

#include <charconv>
#include <cstring>
#include <fstream>
#include <sstream>

namespace stellar::traffic {

namespace {

util::Error LineError(std::size_t line, const std::string& what) {
  return util::MakeError("trace.csv", "line " + std::to_string(line) + ": " + what);
}

std::vector<std::string_view> SplitFields(std::string_view line) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const auto comma = line.find(',', start);
    out.push_back(line.substr(start, comma - start));
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  return out;
}

template <typename T>
bool ParseNumber(std::string_view text, T& out) {
  if constexpr (std::is_floating_point_v<T>) {
    // std::from_chars for double is not universally available; strtod via a
    // bounded buffer keeps this locale-independent enough for our dialect.
    char buf[64];
    if (text.empty() || text.size() >= sizeof buf) return false;
    std::memcpy(buf, text.data(), text.size());
    buf[text.size()] = '\0';
    char* end = nullptr;
    out = std::strtod(buf, &end);
    return end == buf + text.size();
  } else {
    const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), out);
    return ec == std::errc() && ptr == text.data() + text.size();
  }
}

}  // namespace

void WriteFlowCsv(std::ostream& out, std::span<const net::FlowSample> samples) {
  out << kFlowCsvHeader << '\n';
  for (const auto& s : samples) {
    out << s.time_s << ',' << s.key.src_mac.str() << ',' << s.key.src_ip.str() << ','
        << s.key.dst_ip.str() << ',' << net::ToString(s.key.proto) << ',' << s.key.src_port
        << ',' << s.key.dst_port << ',' << s.bytes << ',' << s.packets << '\n';
  }
}

std::string FlowsToCsv(std::span<const net::FlowSample> samples) {
  std::ostringstream out;
  WriteFlowCsv(out, samples);
  return out.str();
}

util::Result<std::vector<net::FlowSample>> ReadFlowCsv(std::istream& in) {
  std::string document(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>{});
  return FlowsFromCsv(document);
}

util::Result<std::vector<net::FlowSample>> FlowsFromCsv(std::string_view text) {
  std::vector<net::FlowSample> out;
  std::size_t line_no = 0;
  bool header_seen = false;
  while (!text.empty()) {
    ++line_no;
    const auto newline = text.find('\n');
    std::string_view line = text.substr(0, newline);
    text.remove_prefix(newline == std::string_view::npos ? text.size() : newline + 1);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty() || line.front() == '#') continue;

    if (!header_seen) {
      if (line != kFlowCsvHeader) {
        return LineError(line_no, "expected header '" + std::string(kFlowCsvHeader) + "'");
      }
      header_seen = true;
      continue;
    }

    const auto fields = SplitFields(line);
    if (fields.size() != 9) {
      return LineError(line_no, "expected 9 fields, got " + std::to_string(fields.size()));
    }
    net::FlowSample s;
    if (!ParseNumber(fields[0], s.time_s)) return LineError(line_no, "bad time_s");
    auto mac = net::MacAddress::Parse(fields[1]);
    if (!mac.ok()) return LineError(line_no, mac.error().message);
    s.key.src_mac = *mac;
    auto src = net::IPv4Address::Parse(fields[2]);
    if (!src.ok()) return LineError(line_no, src.error().message);
    s.key.src_ip = *src;
    auto dst = net::IPv4Address::Parse(fields[3]);
    if (!dst.ok()) return LineError(line_no, dst.error().message);
    s.key.dst_ip = *dst;
    if (fields[4] == "tcp") {
      s.key.proto = net::IpProto::kTcp;
    } else if (fields[4] == "udp") {
      s.key.proto = net::IpProto::kUdp;
    } else if (fields[4] == "icmp") {
      s.key.proto = net::IpProto::kIcmp;
    } else {
      return LineError(line_no, "unknown proto '" + std::string(fields[4]) + "'");
    }
    if (!ParseNumber(fields[5], s.key.src_port)) return LineError(line_no, "bad src_port");
    if (!ParseNumber(fields[6], s.key.dst_port)) return LineError(line_no, "bad dst_port");
    if (!ParseNumber(fields[7], s.bytes)) return LineError(line_no, "bad bytes");
    if (!ParseNumber(fields[8], s.packets)) return LineError(line_no, "bad packets");
    out.push_back(s);
  }
  if (!header_seen) return util::MakeError("trace.csv", "empty document (no header)");
  return out;
}

util::Result<void> WriteFlowCsvFile(const std::string& path,
                                    std::span<const net::FlowSample> samples) {
  std::ofstream out(path);
  if (!out) return util::MakeError("trace.io", "cannot open '" + path + "' for writing");
  WriteFlowCsv(out, samples);
  out.flush();
  if (!out) return util::MakeError("trace.io", "write to '" + path + "' failed");
  return {};
}

util::Result<std::vector<net::FlowSample>> ReadFlowCsvFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return util::MakeError("trace.io", "cannot open '" + path + "'");
  return ReadFlowCsv(in);
}

}  // namespace stellar::traffic
