// Workload generators: benign web-service traffic and UDP amplification DDoS
// attacks (NTP / DNS / memcached / LDAP / chargen reflection, booter-style).
//
// All generators are fluid: a call produces the FlowSamples of one time bin.
// They are deterministic given a seed, and they attribute every flow to a
// *source member* (MAC) so the IXP fabric can route it and RTBH policy
// control can count peers — the paper's attack experiments report both Mbps
// and the number of peers the attack arrives through.
#pragma once

#include <cstdint>
#include <vector>

#include "net/flow.hpp"
#include "net/ip.hpp"
#include "net/mac.hpp"
#include "net/ports.hpp"
#include "util/rng.hpp"

namespace stellar::traffic {

/// A member AS that can hand traffic to the IXP fabric: its router MAC and
/// the address space its customers' traffic is sourced from.
struct SourceMember {
  net::MacAddress mac;
  net::Prefix4 address_space;
};

/// Benign traffic mix of a web service (paper Fig. 2c pre-attack: HTTPS
/// dominates, then HTTP/8080, some RTMP streaming, a tail of others).
class WebTrafficGenerator {
 public:
  struct Config {
    net::IPv4Address target;
    double rate_mbps = 400.0;
    double rate_jitter = 0.08;  ///< Relative bin-to-bin fluctuation.
    /// (service dst port, weight) pairs; weights need not sum to 1 — the
    /// remainder is spread across ephemeral "other" ports.
    std::vector<std::pair<std::uint16_t, double>> port_weights{
        {net::kPortHttps, 0.54},
        {net::kPortHttp, 0.24},
        {net::kPortHttpAlt, 0.08},
        {net::kPortRtmp, 0.06},
    };
    double tcp_fraction = 0.97;  ///< Web traffic is overwhelmingly TCP.
    int flows_per_bin = 64;      ///< Granularity of the fluid approximation.
  };

  WebTrafficGenerator(Config config, std::vector<SourceMember> sources, std::uint64_t seed);

  /// Samples for the bin [t, t + bin_s).
  [[nodiscard]] std::vector<net::FlowSample> bin(double t_s, double bin_s);

  [[nodiscard]] const Config& config() const { return config_; }

 private:
  Config config_;
  std::vector<SourceMember> sources_;
  util::Rng rng_;
};

/// A UDP reflection/amplification attack: spoofed requests hit reflectors
/// (NTP servers, open resolvers, memcached instances...), whose oversized
/// responses converge on the victim. Observable signature at the IXP: UDP
/// flows with src_port = service port from many distinct reflector IPs
/// across many member ports.
class AmplificationAttackGenerator {
 public:
  struct Config {
    net::IPv4Address target;
    net::AmplificationService service{net::kPortNtp, "ntp", 556.9};
    double peak_mbps = 1000.0;
    double start_s = 0.0;
    double end_s = 600.0;
    double ramp_s = 20.0;        ///< Linear ramp to peak (booters start fast).
    double jitter = 0.05;        ///< Relative per-bin volume noise.
    int reflectors = 600;        ///< Distinct reflector source IPs.
    int source_members = 40;     ///< Distinct IXP members the traffic arrives via.
  };

  AmplificationAttackGenerator(Config config, std::vector<SourceMember> sources,
                               std::uint64_t seed);

  [[nodiscard]] std::vector<net::FlowSample> bin(double t_s, double bin_s);

  /// Attack intensity envelope in [0, 1] at time t.
  [[nodiscard]] double envelope(double t_s) const;

  [[nodiscard]] const Config& config() const { return config_; }

 private:
  struct Reflector {
    net::IPv4Address ip;
    std::size_t member_index;  ///< Into members_.
    double weight;             ///< Heavy-tailed per-reflector volume share.
  };

  Config config_;
  std::vector<SourceMember> members_;  ///< The subset carrying this attack.
  std::vector<Reflector> reflectors_;
  double total_weight_ = 0.0;
  util::Rng rng_;
};

/// DDoS-for-hire ("booter") attack model matching the paper's controlled
/// experiments (§2.4, §5.3): short NTP reflection attack, ~1 Gbps peak,
/// traffic received from 40-60 distinct peers.
[[nodiscard]] AmplificationAttackGenerator::Config BooterNtpAttack(net::IPv4Address target,
                                                                   double peak_mbps,
                                                                   double start_s,
                                                                   double end_s);

/// Background traffic for ports not under attack: a light, mostly-TCP mix
/// toward a member used to measure "other traffic" port distributions
/// (Fig. 3a's comparison series).
class BackgroundTrafficGenerator {
 public:
  struct Config {
    net::Prefix4 dst_space;       ///< Victim-side address space.
    double rate_mbps = 2000.0;
    double tcp_fraction = 0.8681;  ///< Measured: TCP is 86.81% of non-blackholed traffic.
    int flows_per_bin = 128;
  };

  BackgroundTrafficGenerator(Config config, std::vector<SourceMember> sources,
                             std::uint64_t seed);

  [[nodiscard]] std::vector<net::FlowSample> bin(double t_s, double bin_s);

 private:
  Config config_;
  std::vector<SourceMember> sources_;
  util::Rng rng_;
};

/// Draws a uniformly random host address inside a prefix (host bits != 0
/// when the prefix has room, so it never collides with the network address).
[[nodiscard]] net::IPv4Address RandomHostIn(const net::Prefix4& prefix, util::Rng& rng);

}  // namespace stellar::traffic
