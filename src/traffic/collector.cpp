#include "traffic/collector.hpp"

#include <algorithm>
#include <array>

#include "net/ports.hpp"

namespace stellar::traffic {

std::uint16_t ServicePort(const net::FlowKey& key) {
  static constexpr std::array<std::uint16_t, 11> kKnown{
      0,
      net::kPortChargen,
      net::kPortDns,
      net::kPortHttp,
      net::kPortNtp,
      net::kPortLdap,
      net::kPortHttps,
      net::kPortRtmp,
      net::kPortHttpAlt,
      net::kPortMemcached,
      161,  // SNMP.
  };
  auto known = [](std::uint16_t p) {
    for (std::uint16_t k : kKnown) {
      if (p == k) return true;
    }
    return false;
  };
  // Prefer the source port: responses from a service carry it there, and
  // amplification attacks are response streams.
  if (known(key.src_port)) return key.src_port;
  if (known(key.dst_port)) return key.dst_port;
  return std::min(key.src_port, key.dst_port);
}

void FlowCollector::ingest(const net::FlowSample& sample) {
  Bin& bin = bins_[bin_index(sample.time_s)];
  if (bin.bytes == 0 && bin.packets == 0) {
    bin.start_s = static_cast<double>(bin_index(sample.time_s)) * bin_s_;
  }
  bin.bytes += sample.bytes;
  bin.packets += sample.packets;
  bin.bytes_by_service_port[ServicePort(sample.key)] += sample.bytes;
  if (sample.key.proto == net::IpProto::kUdp) {
    bin.udp_bytes += sample.bytes;
    bin.bytes_by_udp_src_port[sample.key.src_port] += sample.bytes;
  } else if (sample.key.proto == net::IpProto::kTcp) {
    bin.tcp_bytes += sample.bytes;
  }
  bin.peers.insert(sample.key.src_mac);
}

void FlowCollector::ingest(std::span<const net::FlowSample> samples) {
  for (const auto& s : samples) ingest(s);
}

double FlowCollector::mbps_at(double t_s) const {
  const auto it = bins_.find(bin_index(t_s));
  if (it == bins_.end()) return 0.0;
  return static_cast<double>(it->second.bytes) * 8.0 / 1e6 / bin_s_;
}

std::size_t FlowCollector::peers_at(double t_s) const {
  const auto it = bins_.find(bin_index(t_s));
  return it == bins_.end() ? 0 : it->second.peers.size();
}

std::uint64_t FlowCollector::total_bytes(double t0_s, double t1_s) const {
  std::uint64_t total = 0;
  for (auto it = bins_.lower_bound(bin_index(t0_s)); it != bins_.end(); ++it) {
    if (it->second.start_s >= t1_s) break;
    total += it->second.bytes;
  }
  return total;
}

std::map<std::uint16_t, double> FlowCollector::service_port_shares(double t0_s,
                                                                   double t1_s) const {
  std::map<std::uint16_t, std::uint64_t> bytes;
  std::uint64_t total = 0;
  for (auto it = bins_.lower_bound(bin_index(t0_s)); it != bins_.end(); ++it) {
    if (it->second.start_s >= t1_s) break;
    for (const auto& [port, b] : it->second.bytes_by_service_port) {
      bytes[port] += b;
      total += b;
    }
  }
  std::map<std::uint16_t, double> shares;
  if (total == 0) return shares;
  for (const auto& [port, b] : bytes) {
    shares[port] = static_cast<double>(b) / static_cast<double>(total);
  }
  return shares;
}

std::map<std::uint16_t, double> FlowCollector::udp_src_port_shares(double t0_s,
                                                                   double t1_s) const {
  std::map<std::uint16_t, std::uint64_t> bytes;
  std::uint64_t total = 0;
  for (auto it = bins_.lower_bound(bin_index(t0_s)); it != bins_.end(); ++it) {
    if (it->second.start_s >= t1_s) break;
    total += it->second.bytes;
    for (const auto& [port, b] : it->second.bytes_by_udp_src_port) bytes[port] += b;
  }
  std::map<std::uint16_t, double> shares;
  if (total == 0) return shares;
  for (const auto& [port, b] : bytes) {
    shares[port] = static_cast<double>(b) / static_cast<double>(total);
  }
  return shares;
}

std::vector<std::pair<std::uint16_t, std::uint64_t>> FlowCollector::top_service_ports(
    double t0_s, double t1_s, std::size_t k) const {
  std::map<std::uint16_t, std::uint64_t> bytes;
  for (auto it = bins_.lower_bound(bin_index(t0_s)); it != bins_.end(); ++it) {
    if (it->second.start_s >= t1_s) break;
    for (const auto& [port, b] : it->second.bytes_by_service_port) bytes[port] += b;
  }
  std::vector<std::pair<std::uint16_t, std::uint64_t>> sorted(bytes.begin(), bytes.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  if (sorted.size() > k) sorted.resize(k);
  return sorted;
}

std::size_t FlowCollector::distinct_peers(double t0_s, double t1_s) const {
  std::unordered_set<net::MacAddress> peers;
  for (auto it = bins_.lower_bound(bin_index(t0_s)); it != bins_.end(); ++it) {
    if (it->second.start_s >= t1_s) break;
    peers.insert(it->second.peers.begin(), it->second.peers.end());
  }
  return peers.size();
}

std::pair<double, double> FlowCollector::protocol_shares(double t0_s, double t1_s) const {
  std::uint64_t udp = 0;
  std::uint64_t tcp = 0;
  std::uint64_t total = 0;
  for (auto it = bins_.lower_bound(bin_index(t0_s)); it != bins_.end(); ++it) {
    if (it->second.start_s >= t1_s) break;
    udp += it->second.udp_bytes;
    tcp += it->second.tcp_bytes;
    total += it->second.bytes;
  }
  if (total == 0) return {0.0, 0.0};
  return {static_cast<double>(udp) / static_cast<double>(total),
          static_cast<double>(tcp) / static_cast<double>(total)};
}

}  // namespace stellar::traffic
