// IPFIX-style flow collection and aggregation — the measurement side of the
// evaluation. The paper's Fig. 2c / 3a / 3c are computed from exactly these
// aggregates: per-bin volume, per-service-port shares, distinct peers.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <unordered_set>
#include <vector>

#include "net/flow.hpp"

namespace stellar::traffic {

/// Heuristic application port of a flow: the well-known service port among
/// {src, dst} (the server side). For amplification responses this is the UDP
/// source port (e.g. 11211); for client->server web traffic the destination
/// port (e.g. 443). Mirrors how flow-data studies bucket traffic by port.
[[nodiscard]] std::uint16_t ServicePort(const net::FlowKey& key);

/// Time-binned collector over a flow stream.
class FlowCollector {
 public:
  explicit FlowCollector(double bin_s) : bin_s_(bin_s) {}

  void ingest(const net::FlowSample& sample);
  void ingest(std::span<const net::FlowSample> samples);

  struct Bin {
    double start_s = 0.0;
    std::uint64_t bytes = 0;
    std::uint64_t packets = 0;
    std::map<std::uint16_t, std::uint64_t> bytes_by_service_port;
    std::map<std::uint16_t, std::uint64_t> bytes_by_udp_src_port;
    std::uint64_t udp_bytes = 0;
    std::uint64_t tcp_bytes = 0;
    /// Distinct source member routers. Hashed, not ordered: peer insertion is
    /// on the per-sample ingest hot path (std::hash<MacAddress> over the
    /// 48-bit address), and no aggregate needs ordered iteration.
    std::unordered_set<net::MacAddress> peers;
  };

  [[nodiscard]] const std::map<std::int64_t, Bin>& bins() const { return bins_; }
  [[nodiscard]] double bin_width_s() const { return bin_s_; }

  /// Mbps of a given bin (0 if empty).
  [[nodiscard]] double mbps_at(double t_s) const;
  /// Distinct peers within a bin.
  [[nodiscard]] std::size_t peers_at(double t_s) const;

  // -- Window aggregates [t0, t1) ------------------------------------------
  [[nodiscard]] std::uint64_t total_bytes(double t0_s, double t1_s) const;
  /// Share (0..1) of each service port's bytes in the window.
  [[nodiscard]] std::map<std::uint16_t, double> service_port_shares(double t0_s,
                                                                    double t1_s) const;
  /// Share (0..1) of each UDP source port's bytes among *all* window bytes.
  [[nodiscard]] std::map<std::uint16_t, double> udp_src_port_shares(double t0_s,
                                                                    double t1_s) const;
  /// UDP (first) and TCP (second) byte shares in the window.
  [[nodiscard]] std::pair<double, double> protocol_shares(double t0_s, double t1_s) const;

  /// Top-k service ports by byte volume in [t0, t1), descending.
  [[nodiscard]] std::vector<std::pair<std::uint16_t, std::uint64_t>> top_service_ports(
      double t0_s, double t1_s, std::size_t k) const;

  /// Distinct peers (source member routers) seen in [t0, t1).
  [[nodiscard]] std::size_t distinct_peers(double t0_s, double t1_s) const;

  void clear() { bins_.clear(); }

 private:
  [[nodiscard]] std::int64_t bin_index(double t_s) const {
    return static_cast<std::int64_t>(t_s / bin_s_);
  }

  double bin_s_;
  std::map<std::int64_t, Bin> bins_;
};

}  // namespace stellar::traffic
