#include "core/sdn.hpp"

#include <algorithm>
#include <unordered_map>

namespace stellar::core {

util::Result<void> FlowTable::add(FlowEntry entry) {
  if (entries_.size() >= capacity_) {
    return util::MakeError("sdn.table_full", "flow table at capacity " +
                                                 std::to_string(capacity_));
  }
  if (find(entry.cookie) != nullptr) {
    return util::MakeError("sdn.duplicate_cookie",
                           "cookie " + std::to_string(entry.cookie) + " already present");
  }
  entries_.push_back(std::move(entry));
  return {};
}

bool FlowTable::remove(std::uint64_t cookie) {
  const auto it = std::find_if(entries_.begin(), entries_.end(),
                               [cookie](const FlowEntry& e) { return e.cookie == cookie; });
  if (it == entries_.end()) return false;
  entries_.erase(it);
  return true;
}

const FlowEntry* FlowTable::match(const net::FlowKey& flow) const {
  const FlowEntry* best = nullptr;
  for (const auto& e : entries_) {
    if (!e.match.matches(flow)) continue;
    if (best == nullptr || e.priority > best->priority) best = &e;
  }
  return best;
}

const FlowEntry* FlowTable::entry(std::uint64_t cookie) const {
  const auto it = std::find_if(entries_.begin(), entries_.end(),
                               [cookie](const FlowEntry& e) { return e.cookie == cookie; });
  return it == entries_.end() ? nullptr : &*it;
}

FlowEntry* FlowTable::find(std::uint64_t cookie) {
  const auto it = std::find_if(entries_.begin(), entries_.end(),
                               [cookie](const FlowEntry& e) { return e.cookie == cookie; });
  return it == entries_.end() ? nullptr : &*it;
}

filter::PortBinResult FlowTable::apply(std::span<const net::FlowSample> demands,
                                       double port_capacity_mbps, double bin_s) {
  // Reuse the QoS fluid engine by projecting matched entries onto a policy:
  // highest-priority-first order gives first-match-wins equivalence.
  filter::QosPolicy policy;
  std::vector<const FlowEntry*> ordered;
  ordered.reserve(entries_.size());
  for (const auto& e : entries_) ordered.push_back(&e);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const FlowEntry* a, const FlowEntry* b) { return a->priority > b->priority; });
  for (const FlowEntry* e : ordered) {
    filter::FilterRule rule;
    rule.match = e->match;
    rule.action = e->action;
    rule.shape_rate_mbps = e->meter_rate_mbps;
    policy.add_rule(e->cookie, std::move(rule));
  }
  filter::PortBinResult result = ApplyEgressQos(demands, policy, port_capacity_mbps, bin_s);

  // Fold the per-rule counters back into OpenFlow-style entry counters.
  for (auto& e : entries_) {
    const auto it = result.rule_counters.find(e.cookie);
    if (it == result.rule_counters.end()) continue;
    e.byte_count += it->second.matched_bytes;
  }
  for (const auto& d : result.delivered) {
    if (const FlowEntry* e = match(d.key); e != nullptr) {
      const_cast<FlowEntry*>(e)->packet_count += d.packets;
    }
  }
  return result;
}

}  // namespace stellar::core
