// StellarSystem: the deployed Advanced Blackholing service — signaling layer
// (route server + extended communities), management layer (controller +
// network manager with the QoS compiler) and filtering layer (edge-router QoS
// policies) wired onto an Ixp (paper Fig. 5).
#pragma once

#include <memory>
#include <vector>

#include "core/controller.hpp"
#include "core/network_manager.hpp"
#include "core/portal.hpp"
#include "ixp/ixp.hpp"

namespace stellar::core {

class StellarSystem {
 public:
  struct Config {
    BlackholingController::Config controller{};
    NetworkManager::Config manager{};
  };

  StellarSystem(ixp::Ixp& ixp, Config config);
  explicit StellarSystem(ixp::Ixp& ixp) : StellarSystem(ixp, Config{}) {}

  [[nodiscard]] BlackholingController& controller() { return *controller_; }
  [[nodiscard]] NetworkManager& manager() { return *manager_; }
  [[nodiscard]] RulePortal& portal() { return portal_; }
  [[nodiscard]] QosConfigCompiler& compiler() { return *compiler_; }

  /// Per-rule telemetry for one member: the feedback channel that lets a
  /// victim see attack state and volume without lifting the mitigation.
  struct TelemetryRecord {
    std::string key;
    filter::PortId port = 0;
    filter::FilterRule rule;
    filter::RuleCounters counters;
  };
  [[nodiscard]] std::vector<TelemetryRecord> telemetry(bgp::Asn member) const;

 private:
  ixp::Ixp& ixp_;
  RulePortal portal_;
  std::unique_ptr<QosConfigCompiler> compiler_;
  std::unique_ptr<NetworkManager> manager_;
  std::unique_ptr<BlackholingController> controller_;
};

/// Member-side convenience: announce `prefix` with an Advanced Blackholing
/// signal. By default the announcement is scoped to the IXP only
/// (announce-to-none) — one-to-IXP signaling, no member cooperation — which
/// is the defining difference from RTBH's one-to-all model.
void SignalAdvancedBlackholing(ixp::MemberRouter& member, const ixp::RouteServer& route_server,
                               const net::Prefix4& prefix, const Signal& signal,
                               bool also_propagate_to_members = false);

/// Same as SignalAdvancedBlackholing but signaling in the RFC 8092
/// large-community namespace — required when the IXP's ASN does not fit the
/// two-octet-AS extended community AS field.
void SignalAdvancedBlackholingLarge(ixp::MemberRouter& member,
                                    const ixp::RouteServer& route_server,
                                    const net::Prefix4& prefix, const Signal& signal,
                                    bool also_propagate_to_members = false);

/// Withdraw a previously signaled prefix (removes its rules at the next
/// controller processing round).
void WithdrawAdvancedBlackholing(ixp::MemberRouter& member, const net::Prefix4& prefix);

}  // namespace stellar::core
