// StellarSystem: the deployed Advanced Blackholing service — signaling layer
// (route server + extended communities), management layer (controller +
// network manager with the QoS compiler) and filtering layer (edge-router QoS
// policies) wired onto an Ixp (paper Fig. 5).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/controller.hpp"
#include "core/network_manager.hpp"
#include "core/portal.hpp"
#include "ixp/ixp.hpp"

namespace stellar::core {

/// Consumer of the platform's delivered-traffic stream (IPFIX viewpoint).
/// Attack-detection engines implement this to close the mitigation loop: the
/// system fans every delivered bin out to attached observers, which may react
/// by signaling blackholing rules through the normal member signaling path.
class TrafficObserver {
 public:
  virtual ~TrafficObserver() = default;
  virtual void observe_bin(std::span<const net::FlowSample> delivered, double t_s,
                           double bin_s) = 0;
};

class StellarSystem {
 public:
  /// Wraps the QoS compiler before the network manager sees it — the hook
  /// chaos tests use to inject transient apply() failures (sim::FlakyCompiler)
  /// without the core depending on the fault library.
  using CompilerDecorator =
      std::function<std::unique_ptr<ConfigCompiler>(ConfigCompiler& inner)>;

  struct Config {
    BlackholingController::Config controller{};
    NetworkManager::Config manager{};
    /// When set, the controller self-heals: it re-dials the route server
    /// (fresh accept_controller() transport) with this backoff/damping
    /// policy, resyncs, and runs the reconciliation audit. Unset keeps the
    /// classic one-shot fail-safe behaviour.
    std::optional<bgp::ReconnectPolicy> controller_reconnect;
    CompilerDecorator compiler_decorator;
  };

  StellarSystem(ixp::Ixp& ixp, Config config);
  explicit StellarSystem(ixp::Ixp& ixp) : StellarSystem(ixp, Config{}) {}

  [[nodiscard]] BlackholingController& controller() { return *controller_; }
  [[nodiscard]] const BlackholingController& controller() const { return *controller_; }
  [[nodiscard]] NetworkManager& manager() { return *manager_; }
  [[nodiscard]] RulePortal& portal() { return portal_; }
  [[nodiscard]] QosConfigCompiler& compiler() { return *compiler_; }
  [[nodiscard]] ixp::Ixp& ixp() { return ixp_; }

  /// Opt-in auto-mitigation hook: attached observers receive every delivered
  /// bin pushed through observe_bin(). Detection engines (src/detect/) use
  /// this to synthesize and signal rules with no operator in the loop.
  void attach_observer(std::shared_ptr<TrafficObserver> observer) {
    observers_.push_back(std::move(observer));
  }
  [[nodiscard]] std::size_t observer_count() const { return observers_.size(); }

  /// Fans one bin of delivered traffic out to all attached observers.
  void observe_bin(std::span<const net::FlowSample> delivered, double t_s, double bin_s) {
    for (const auto& observer : observers_) observer->observe_bin(delivered, t_s, bin_s);
  }

  /// Per-rule telemetry for one member: the feedback channel that lets a
  /// victim see attack state and volume without lifting the mitigation.
  struct TelemetryRecord {
    std::string key;
    filter::PortId port = 0;
    filter::FilterRule rule;
    filter::RuleCounters counters;
  };
  [[nodiscard]] std::vector<TelemetryRecord> telemetry(bgp::Asn member) const;

 private:
  ixp::Ixp& ixp_;
  RulePortal portal_;
  std::unique_ptr<QosConfigCompiler> compiler_;
  std::unique_ptr<ConfigCompiler> decorated_compiler_;  ///< Optional wrapper.
  std::unique_ptr<NetworkManager> manager_;
  std::unique_ptr<BlackholingController> controller_;
  std::vector<std::shared_ptr<TrafficObserver>> observers_;
};

/// Member-side convenience: announce `prefix` with an Advanced Blackholing
/// signal. By default the announcement is scoped to the IXP only
/// (announce-to-none) — one-to-IXP signaling, no member cooperation — which
/// is the defining difference from RTBH's one-to-all model.
void SignalAdvancedBlackholing(ixp::MemberRouter& member, const ixp::RouteServer& route_server,
                               const net::Prefix4& prefix, const Signal& signal,
                               bool also_propagate_to_members = false);

/// Same as SignalAdvancedBlackholing but signaling in the RFC 8092
/// large-community namespace — required when the IXP's ASN does not fit the
/// two-octet-AS extended community AS field.
void SignalAdvancedBlackholingLarge(ixp::MemberRouter& member,
                                    const ixp::RouteServer& route_server,
                                    const net::Prefix4& prefix, const Signal& signal,
                                    bool also_propagate_to_members = false);

/// Withdraw a previously signaled prefix (removes its rules at the next
/// controller processing round).
void WithdrawAdvancedBlackholing(ixp::MemberRouter& member, const net::Prefix4& prefix);

}  // namespace stellar::core
