// Network manager (paper §4.4, Fig. 7): dequeues abstract configuration
// changes through a token-bucket rate limiter ("to limit the number of
// configuration changes within any time interval to a rate that is
// manageable by the switch hardware") and compiles them into hardware
// specific operations via a pluggable compiler:
//   - QosConfigCompiler  — vendor ACL/QoS policies on the edge router
//     (the deployed option at L-IXP), or
//   - SdnConfigCompiler  — OpenFlow-style flow mods (the SDX option).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/controller.hpp"
#include "core/sdn.hpp"
#include "filter/edge_router.hpp"
#include "filter/token_bucket.hpp"
#include "obs/metrics.hpp"
#include "sim/event_queue.hpp"
#include "util/result.hpp"
#include "util/ring_log.hpp"

namespace stellar::core {

/// Compiles abstract changes into a concrete target. Implementations consult
/// their hardware information base and may reject a change (resource limits).
class ConfigCompiler {
 public:
  virtual ~ConfigCompiler() = default;
  virtual util::Result<void> apply(const ConfigChange& change) = 0;
  [[nodiscard]] virtual std::string_view name() const = 0;
};

/// Option 1: vendor QoS policies on the IXP edge router.
class QosConfigCompiler final : public ConfigCompiler {
 public:
  explicit QosConfigCompiler(filter::EdgeRouter& router) : router_(router) {}

  util::Result<void> apply(const ConfigChange& change) override;
  [[nodiscard]] std::string_view name() const override { return "qos"; }

  /// Data-plane rule id for an installed change key (telemetry lookups).
  [[nodiscard]] std::optional<filter::RuleId> rule_id(const std::string& key) const;

  /// Change keys with a live data-plane rule — the "installed" side of the
  /// controller's reconciliation audit.
  [[nodiscard]] std::vector<std::string> installed_keys() const {
    std::vector<std::string> keys;
    keys.reserve(installed_.size());
    for (const auto& [key, entry] : installed_) keys.push_back(key);
    return keys;
  }

 private:
  filter::EdgeRouter& router_;
  std::map<std::string, std::pair<filter::PortId, filter::RuleId>> installed_;
};

/// Option 2: SDN switch flow tables.
class SdnConfigCompiler final : public ConfigCompiler {
 public:
  explicit SdnConfigCompiler(FlowTable& table) : table_(table) {}

  util::Result<void> apply(const ConfigChange& change) override;
  [[nodiscard]] std::string_view name() const override { return "sdn"; }

 private:
  FlowTable& table_;
  std::map<std::string, std::uint64_t> cookies_;
  std::uint64_t next_cookie_ = 1;
};

class NetworkManager {
 public:
  /// Decides whether a compiler failure is worth retrying. Transient codes
  /// (device busy, injected chaos) heal on their own; permanent ones
  /// (unknown key, resource limits) never will.
  using TransientClassifier = std::function<bool(const util::Error&)>;

  /// Default taxonomy: codes under the "transient." prefix are retryable,
  /// everything else is permanent.
  static bool DefaultTransientClassifier(const util::Error& error) {
    return error.code.rfind("transient.", 0) == 0;
  }

  struct Config {
    /// Long-term configuration-change rate limit (paper Fig. 10b evaluates
    /// 4/s and 5/s against the measured sustainable 4.33/s).
    double rate_per_s = 4.33;
    /// Maximum Burst Size: changes that may be applied back-to-back.
    double max_burst_size = 5.0;
    /// Total apply attempts per change (first try + retries). Transient
    /// failures re-enter the rate-limited queue after a backoff; once the
    /// budget is exhausted the change is dead-lettered.
    int max_attempts = 4;
    double retry_backoff_s = 2.0;  ///< Delay before the first retry.
    double retry_backoff_multiplier = 2.0;
    double retry_backoff_max_s = 30.0;
    /// nullptr selects DefaultTransientClassifier.
    TransientClassifier transient_classifier;
    /// Retained-sample cap for waiting_times_s / failure_codes.
    std::size_t stats_retained_samples = util::RingLog<double>::kDefaultCapacity;
  };

  NetworkManager(sim::EventQueue& queue, ConfigCompiler& compiler, Config config);

  /// Enqueues a change; it is applied when the token bucket admits it.
  void enqueue(ConfigChange change);

  /// Failure accounting invariants (each failed attempt lands in exactly one
  /// class, each dead-lettered change in exactly one terminal bucket):
  ///   failed          == transient_failures + permanent_failures
  ///   transient_failures == retries + retry_budget_exhausted
  ///   dead_lettered   == permanent_failures + retry_budget_exhausted
  struct Stats {
    std::uint64_t applied = 0;
    std::uint64_t failed = 0;  ///< Failed apply attempts (any class).
    std::uint64_t transient_failures = 0;
    std::uint64_t permanent_failures = 0;
    std::uint64_t retries = 0;        ///< Re-enqueues after transient failures.
    std::uint64_t dead_lettered = 0;  ///< Changes abandoned permanently.
    /// Transient failures dead-lettered because the attempt budget was spent
    /// (the terminal counterpart of retries — never double-counted with
    /// permanent_failures).
    std::uint64_t retry_budget_exhausted = 0;
    /// Queueing delay of every change's first attempt: the "time from
    /// blackholing signal to configuration" of Fig. 10b. Bounded ring log —
    /// total() counts all samples, evicted() the ones aged out of the window.
    util::RingLog<double> waiting_times_s;
    util::RingLog<std::string> failure_codes;
  };

  /// Thin read over this manager's obs registry cells (the ring logs are fed
  /// directly and need no refresh).
  [[nodiscard]] const Stats& stats() const {
    stats_.applied = c_applied_.value();
    stats_.failed = c_failed_.value();
    stats_.transient_failures = c_transient_failures_.value();
    stats_.permanent_failures = c_permanent_failures_.value();
    stats_.retries = c_retries_.value();
    stats_.dead_lettered = c_dead_lettered_.value();
    stats_.retry_budget_exhausted = c_retry_budget_exhausted_.value();
    return stats_;
  }
  [[nodiscard]] std::size_t queue_depth() const { return queue_depth_now(); }
  /// Changes not yet applied (in flight through the token bucket or awaiting
  /// a retry backoff) — the projection reconciliation audits against.
  [[nodiscard]] std::vector<ConfigChange> in_flight() const;
  /// Changes abandoned after exhausting their attempt budget or failing with
  /// a permanent error; kept for operator inspection.
  [[nodiscard]] const std::deque<ConfigChange>& dead_letter() const { return dead_letter_; }

 private:
  [[nodiscard]] std::size_t queue_depth_now() const { return pending_.size(); }
  void schedule_drain();
  void handle_failure(ConfigChange change, const util::Error& error);

  sim::EventQueue& queue_;
  ConfigCompiler& compiler_;
  Config config_;
  filter::TokenBucket bucket_;
  std::deque<ConfigChange> pending_;
  std::deque<ConfigChange> dead_letter_;
  /// Changes sitting out a retry backoff, keyed by ticket (for in_flight()).
  std::map<std::uint64_t, ConfigChange> backoff_changes_;
  std::uint64_t next_backoff_ticket_ = 0;
  bool drain_scheduled_ = false;
  double last_failed_drain_s_ = -1.0;
  obs::Counter c_applied_ = obs::registry().counter("core.manager.applied");
  obs::Counter c_failed_ = obs::registry().counter("core.manager.failed");
  obs::Counter c_transient_failures_ =
      obs::registry().counter("core.manager.transient_failures");
  obs::Counter c_permanent_failures_ =
      obs::registry().counter("core.manager.permanent_failures");
  obs::Counter c_retries_ = obs::registry().counter("core.manager.retries");
  obs::Counter c_dead_lettered_ = obs::registry().counter("core.manager.dead_lettered");
  obs::Counter c_retry_budget_exhausted_ =
      obs::registry().counter("core.manager.retry_budget_exhausted");
  obs::Histogram wait_hist_ = obs::registry().histogram("core.manager.wait_seconds");
  mutable Stats stats_;
};

}  // namespace stellar::core
