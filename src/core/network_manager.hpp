// Network manager (paper §4.4, Fig. 7): dequeues abstract configuration
// changes through a token-bucket rate limiter ("to limit the number of
// configuration changes within any time interval to a rate that is
// manageable by the switch hardware") and compiles them into hardware
// specific operations via a pluggable compiler:
//   - QosConfigCompiler  — vendor ACL/QoS policies on the edge router
//     (the deployed option at L-IXP), or
//   - SdnConfigCompiler  — OpenFlow-style flow mods (the SDX option).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/controller.hpp"
#include "core/sdn.hpp"
#include "filter/edge_router.hpp"
#include "filter/token_bucket.hpp"
#include "obs/metrics.hpp"
#include "sim/event_queue.hpp"
#include "util/result.hpp"
#include "util/ring_log.hpp"

namespace stellar::core {

/// Compiles abstract changes into a concrete target. Implementations consult
/// their hardware information base and may reject a change (resource limits).
class ConfigCompiler {
 public:
  virtual ~ConfigCompiler() = default;
  virtual util::Result<void> apply(const ConfigChange& change) = 0;
  /// Applies a coalesced batch (one port, FIFO order) in a single compiler
  /// invocation, returning one result per change. The default loops apply();
  /// hardware backends may override to emit one merged device transaction.
  virtual std::vector<util::Result<void>> apply_batch(const std::vector<ConfigChange>& changes) {
    std::vector<util::Result<void>> results;
    results.reserve(changes.size());
    for (const auto& change : changes) results.push_back(apply(change));
    return results;
  }
  [[nodiscard]] virtual std::string_view name() const = 0;
};

/// Option 1: vendor QoS policies on the IXP edge router.
class QosConfigCompiler final : public ConfigCompiler {
 public:
  explicit QosConfigCompiler(filter::EdgeRouter& router) : router_(router) {}

  util::Result<void> apply(const ConfigChange& change) override;
  [[nodiscard]] std::string_view name() const override { return "qos"; }

  /// Data-plane rule id for an installed change key (telemetry lookups).
  [[nodiscard]] std::optional<filter::RuleId> rule_id(const std::string& key) const;

  /// Change keys with a live data-plane rule — the "installed" side of the
  /// controller's reconciliation audit.
  [[nodiscard]] std::vector<std::string> installed_keys() const {
    std::vector<std::string> keys;
    keys.reserve(installed_.size());
    for (const auto& [key, entry] : installed_) keys.push_back(key);
    return keys;
  }

 private:
  filter::EdgeRouter& router_;
  std::map<std::string, std::pair<filter::PortId, filter::RuleId>> installed_;
};

/// Option 2: SDN switch flow tables.
class SdnConfigCompiler final : public ConfigCompiler {
 public:
  explicit SdnConfigCompiler(FlowTable& table) : table_(table) {}

  util::Result<void> apply(const ConfigChange& change) override;
  [[nodiscard]] std::string_view name() const override { return "sdn"; }

 private:
  FlowTable& table_;
  std::map<std::string, std::uint64_t> cookies_;
  std::uint64_t next_cookie_ = 1;
};

class NetworkManager {
 public:
  /// Decides whether a compiler failure is worth retrying. Transient codes
  /// (device busy, injected chaos) heal on their own; permanent ones
  /// (unknown key, resource limits) never will.
  using TransientClassifier = std::function<bool(const util::Error&)>;

  /// Default taxonomy: codes under the "transient." prefix are retryable,
  /// everything else is permanent.
  static bool DefaultTransientClassifier(const util::Error& error) {
    return error.code.rfind("transient.", 0) == 0;
  }

  struct Config {
    /// Long-term configuration-change rate limit (paper Fig. 10b evaluates
    /// 4/s and 5/s against the measured sustainable 4.33/s).
    double rate_per_s = 4.33;
    /// Maximum Burst Size: changes that may be applied back-to-back.
    double max_burst_size = 5.0;
    /// Total apply attempts per change (first try + retries). Transient
    /// failures re-enter the rate-limited queue after a backoff; once the
    /// budget is exhausted the change is dead-lettered.
    int max_attempts = 4;
    double retry_backoff_s = 2.0;  ///< Delay before the first retry.
    double retry_backoff_multiplier = 2.0;
    double retry_backoff_max_s = 30.0;
    /// nullptr selects DefaultTransientClassifier.
    TransientClassifier transient_classifier;
    /// Retained-sample cap for waiting_times_s / failure_codes.
    std::size_t stats_retained_samples = util::RingLog<double>::kDefaultCapacity;
    /// Batched apply (L-IXP scale): each token admits one *port-batch* — all
    /// queued changes for the front change's port, in FIFO order, through a
    /// single compiler invocation — and superseded install/remove churn per
    /// change key is coalesced while still queued (before the token bucket).
    /// Off by default: the per-change pacing is the paper's Fig. 10b setup.
    bool batch_apply = false;
  };

  NetworkManager(sim::EventQueue& queue, ConfigCompiler& compiler, Config config);

  /// Enqueues a change; it is applied when the token bucket admits it.
  void enqueue(ConfigChange change);

  /// Failure accounting invariants (each failed attempt lands in exactly one
  /// class, each dead-lettered change in exactly one terminal bucket):
  ///   failed          == transient_failures + permanent_failures
  ///   transient_failures == retries + retry_budget_exhausted
  ///   dead_lettered   == permanent_failures + retry_budget_exhausted
  struct Stats {
    std::uint64_t applied = 0;
    /// Port-batches drained in batch_apply mode (one token each).
    std::uint64_t batches = 0;
    /// Queued changes annihilated or superseded by key-level coalescing
    /// before ever reaching the token bucket (batch_apply mode only).
    std::uint64_t coalesced = 0;
    std::uint64_t failed = 0;  ///< Failed apply attempts (any class).
    std::uint64_t transient_failures = 0;
    std::uint64_t permanent_failures = 0;
    std::uint64_t retries = 0;        ///< Re-enqueues after transient failures.
    std::uint64_t dead_lettered = 0;  ///< Changes abandoned permanently.
    /// Transient failures dead-lettered because the attempt budget was spent
    /// (the terminal counterpart of retries — never double-counted with
    /// permanent_failures).
    std::uint64_t retry_budget_exhausted = 0;
    /// Queueing delay of every change's first attempt: the "time from
    /// blackholing signal to configuration" of Fig. 10b. Bounded ring log —
    /// total() counts all samples, evicted() the ones aged out of the window.
    util::RingLog<double> waiting_times_s;
    util::RingLog<std::string> failure_codes;
  };

  /// Thin read over this manager's obs registry cells (the ring logs are fed
  /// directly and need no refresh).
  [[nodiscard]] const Stats& stats() const {
    stats_.applied = c_applied_.value();
    stats_.batches = c_batches_.value();
    stats_.coalesced = c_coalesced_.value();
    stats_.failed = c_failed_.value();
    stats_.transient_failures = c_transient_failures_.value();
    stats_.permanent_failures = c_permanent_failures_.value();
    stats_.retries = c_retries_.value();
    stats_.dead_lettered = c_dead_lettered_.value();
    stats_.retry_budget_exhausted = c_retry_budget_exhausted_.value();
    return stats_;
  }
  [[nodiscard]] std::size_t queue_depth() const { return queue_depth_now(); }
  /// Changes not yet applied (in flight through the token bucket or awaiting
  /// a retry backoff) — the projection reconciliation audits against.
  [[nodiscard]] std::vector<ConfigChange> in_flight() const;
  /// Changes abandoned after exhausting their attempt budget or failing with
  /// a permanent error; kept for operator inspection.
  [[nodiscard]] const std::deque<ConfigChange>& dead_letter() const { return dead_letter_; }

 private:
  [[nodiscard]] std::size_t queue_depth_now() const { return pending_.size(); }
  void schedule_drain();
  void drain_one(double now_s);
  void drain_batch(double now_s);
  /// Batch-mode admission to pending_: coalesces against a queued change for
  /// the same key (latest intent wins; install-then-remove for a rule never
  /// installed annihilates both) instead of appending.
  void coalesce_or_push(ConfigChange change);
  /// Applies one change's outcome bookkeeping (journal, counters, believed-
  /// installed tracking, failure handling).
  void settle_apply(ConfigChange change, const util::Result<void>& applied, double now_s);
  void handle_failure(ConfigChange change, const util::Error& error);

  sim::EventQueue& queue_;
  ConfigCompiler& compiler_;
  Config config_;
  filter::TokenBucket bucket_;
  /// FIFO of queued changes. A list so batch-mode coalescing can splice out
  /// superseded entries by key without disturbing iterator stability.
  std::list<ConfigChange> pending_;
  /// Batch mode only: key -> queued change (at most one pending per key).
  std::map<std::string, std::list<ConfigChange>::iterator> pending_index_;
  /// Keys whose install the compiler has acknowledged (and no later remove):
  /// install-then-remove churn for keys NOT in here annihilates outright.
  std::set<std::string> believed_installed_;
  std::deque<ConfigChange> dead_letter_;
  /// Changes sitting out a retry backoff, keyed by ticket (for in_flight()).
  std::map<std::uint64_t, ConfigChange> backoff_changes_;
  std::uint64_t next_backoff_ticket_ = 0;
  bool drain_scheduled_ = false;
  double last_failed_drain_s_ = -1.0;
  obs::Counter c_applied_ = obs::registry().counter("core.manager.applied");
  obs::Counter c_batches_ = obs::registry().counter("core.manager.batches");
  obs::Counter c_coalesced_ = obs::registry().counter("core.manager.coalesced");
  /// Changes per drained port-batch (batch_apply mode).
  obs::Histogram h_batch_size_ = obs::registry().histogram(
      "core.manager.batch_size", obs::HistogramOptions{1.0, 2.0, 12});
  obs::Counter c_failed_ = obs::registry().counter("core.manager.failed");
  obs::Counter c_transient_failures_ =
      obs::registry().counter("core.manager.transient_failures");
  obs::Counter c_permanent_failures_ =
      obs::registry().counter("core.manager.permanent_failures");
  obs::Counter c_retries_ = obs::registry().counter("core.manager.retries");
  obs::Counter c_dead_lettered_ = obs::registry().counter("core.manager.dead_lettered");
  obs::Counter c_retry_budget_exhausted_ =
      obs::registry().counter("core.manager.retry_budget_exhausted");
  obs::Histogram wait_hist_ = obs::registry().histogram("core.manager.wait_seconds");
  mutable Stats stats_;
};

}  // namespace stellar::core
