// Network manager (paper §4.4, Fig. 7): dequeues abstract configuration
// changes through a token-bucket rate limiter ("to limit the number of
// configuration changes within any time interval to a rate that is
// manageable by the switch hardware") and compiles them into hardware
// specific operations via a pluggable compiler:
//   - QosConfigCompiler  — vendor ACL/QoS policies on the edge router
//     (the deployed option at L-IXP), or
//   - SdnConfigCompiler  — OpenFlow-style flow mods (the SDX option).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/controller.hpp"
#include "core/sdn.hpp"
#include "filter/edge_router.hpp"
#include "filter/token_bucket.hpp"
#include "sim/event_queue.hpp"
#include "util/result.hpp"

namespace stellar::core {

/// Compiles abstract changes into a concrete target. Implementations consult
/// their hardware information base and may reject a change (resource limits).
class ConfigCompiler {
 public:
  virtual ~ConfigCompiler() = default;
  virtual util::Result<void> apply(const ConfigChange& change) = 0;
  [[nodiscard]] virtual std::string_view name() const = 0;
};

/// Option 1: vendor QoS policies on the IXP edge router.
class QosConfigCompiler final : public ConfigCompiler {
 public:
  explicit QosConfigCompiler(filter::EdgeRouter& router) : router_(router) {}

  util::Result<void> apply(const ConfigChange& change) override;
  [[nodiscard]] std::string_view name() const override { return "qos"; }

  /// Data-plane rule id for an installed change key (telemetry lookups).
  [[nodiscard]] std::optional<filter::RuleId> rule_id(const std::string& key) const;

 private:
  filter::EdgeRouter& router_;
  std::map<std::string, std::pair<filter::PortId, filter::RuleId>> installed_;
};

/// Option 2: SDN switch flow tables.
class SdnConfigCompiler final : public ConfigCompiler {
 public:
  explicit SdnConfigCompiler(FlowTable& table) : table_(table) {}

  util::Result<void> apply(const ConfigChange& change) override;
  [[nodiscard]] std::string_view name() const override { return "sdn"; }

 private:
  FlowTable& table_;
  std::map<std::string, std::uint64_t> cookies_;
  std::uint64_t next_cookie_ = 1;
};

class NetworkManager {
 public:
  struct Config {
    /// Long-term configuration-change rate limit (paper Fig. 10b evaluates
    /// 4/s and 5/s against the measured sustainable 4.33/s).
    double rate_per_s = 4.33;
    /// Maximum Burst Size: changes that may be applied back-to-back.
    double max_burst_size = 5.0;
  };

  NetworkManager(sim::EventQueue& queue, ConfigCompiler& compiler, Config config);

  /// Enqueues a change; it is applied when the token bucket admits it.
  void enqueue(ConfigChange change);

  struct Stats {
    std::uint64_t applied = 0;
    std::uint64_t failed = 0;  ///< Compiler rejections (hardware limits).
    /// Queueing delay of every applied/failed change: the "time from
    /// blackholing signal to configuration" of Fig. 10b.
    std::vector<double> waiting_times_s;
    std::vector<std::string> failure_codes;
  };

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::size_t queue_depth() const { return queue_depth_now(); }

 private:
  [[nodiscard]] std::size_t queue_depth_now() const { return pending_.size(); }
  void schedule_drain();

  sim::EventQueue& queue_;
  ConfigCompiler& compiler_;
  Config config_;
  filter::TokenBucket bucket_;
  std::deque<ConfigChange> pending_;
  bool drain_scheduled_ = false;
  double last_failed_drain_s_ = -1.0;
  Stats stats_;
};

}  // namespace stellar::core
