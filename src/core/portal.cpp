#include "core/portal.hpp"

#include "net/ports.hpp"

namespace stellar::core {

filter::MatchCriteria MatchTemplate::bind(const net::Prefix4& victim) const {
  filter::MatchCriteria m;
  m.dst_prefix = victim;
  m.proto = proto;
  m.src_port = src_port;
  m.dst_port = dst_port;
  m.src_prefix = src_prefix;
  m.src_mac = src_mac;
  return m;
}

RulePortal::RulePortal() {
  auto udp_src = [](std::uint16_t port, std::string what) {
    MatchTemplate t;
    t.description = std::move(what);
    t.proto = net::IpProto::kUdp;
    t.src_port = filter::PortRange::Single(port);
    return t;
  };
  std::uint16_t id = 1;
  predefined_[id++] = udp_src(net::kPortNtp, "NTP amplification (udp/123 responses)");
  predefined_[id++] = udp_src(net::kPortDns, "DNS amplification (udp/53 responses)");
  predefined_[id++] = udp_src(net::kPortMemcached, "memcached amplification (udp/11211)");
  predefined_[id++] = udp_src(net::kPortLdap, "CLDAP amplification (udp/389)");
  predefined_[id++] = udp_src(net::kPortChargen, "chargen amplification (udp/19)");
  predefined_[id++] = udp_src(1900, "SSDP amplification (udp/1900)");
  predefined_[id++] = udp_src(161, "SNMP amplification (udp/161)");
  {
    MatchTemplate t;
    t.description = "non-initial fragments of amplification responses (udp port 0)";
    t.proto = net::IpProto::kUdp;
    t.src_port = filter::PortRange::Single(0);
    predefined_[id++] = t;
  }
  {
    MatchTemplate t;
    t.description = "all UDP towards the victim";
    t.proto = net::IpProto::kUdp;
    predefined_[id++] = t;
  }
}

std::uint16_t RulePortal::define_custom_rule(bgp::Asn member, MatchTemplate rule) {
  const std::uint16_t id = next_custom_id_++;
  custom_[id] = {member, std::move(rule)};
  return id;
}

const MatchTemplate* RulePortal::lookup(std::uint16_t id, bgp::Asn member) const {
  if (const auto it = predefined_.find(id); it != predefined_.end()) return &it->second;
  if (const auto it = custom_.find(id); it != custom_.end() && it->second.first == member) {
    return &it->second.second;
  }
  return nullptr;
}

}  // namespace stellar::core
