#include "core/controller.hpp"

#include <algorithm>

#include "obs/journal.hpp"
#include "obs/trace.hpp"

namespace stellar::core {

std::string ConfigChange::str() const {
  return std::string(op == Op::kInstall ? "install" : "remove") + " port " +
         std::to_string(port) + " " + rule.str();
}

BlackholingController::BlackholingController(sim::EventQueue& queue,
                                             std::shared_ptr<bgp::Endpoint> transport,
                                             Config config, PortDirectory directory,
                                             const RulePortal* portal)
    : queue_(queue),
      config_(config),
      directory_(std::move(directory)),
      portal_(portal) {
  // One-shot transport: hand out the given endpoint on the first dial; a
  // zero-retry policy keeps the classic fail-safe-only behaviour.
  auto handed_out = std::make_shared<std::shared_ptr<bgp::Endpoint>>(std::move(transport));
  bgp::ReconnectPolicy one_shot;
  one_shot.max_retries = 0;
  init_session([handed_out]() { return std::exchange(*handed_out, nullptr); }, one_shot);
}

BlackholingController::BlackholingController(sim::EventQueue& queue, TransportFactory factory,
                                             bgp::ReconnectPolicy policy, Config config,
                                             PortDirectory directory, const RulePortal* portal)
    : queue_(queue),
      config_(config),
      directory_(std::move(directory)),
      portal_(portal) {
  init_session(std::move(factory), policy);
}

BlackholingController::~BlackholingController() { *alive_ = false; }

void BlackholingController::init_session(TransportFactory factory,
                                         bgp::ReconnectPolicy policy) {
  bgp::SessionConfig session_config;
  session_config.local_asn = config_.ixp_asn;  // iBGP with the route server.
  session_config.router_id = net::IPv4Address(10, 99, 0, 2);
  session_config.add_path_rx = config_.use_add_path;  // See all paths, bypass best-path.
  reconnector_ = std::make_unique<bgp::ReconnectingSession>(queue_, std::move(factory),
                                                            session_config, policy);
  reconnector_->set_update_handler([this](const bgp::UpdateMessage& u) { on_update(u); });
  // Fail-safe (paper §4.1.2): if the signaling path dies, fall back to
  // simple forwarding of all traffic — stale filters must not strand a
  // member once it can no longer withdraw them.
  reconnector_->set_state_handler([this](bgp::SessionState state) {
    if (state != bgp::SessionState::kClosed) return;
    c_failsafe_flushes_.inc();
    obs::journal().append(queue_.now().count(), obs::EventKind::kFailsafeFlush, "controller",
                          "desired=" + std::to_string(desired_.size()));
    rib_.clear();       // Bypasses on_update's dirty tracking...
    need_full_ = true;  // ...so the next epoch must be a full rescan.
    process();  // Emits removals for everything previously desired.
  });
  // Each re-establishment resyncs the RIB (the route server replays it and
  // answers our ROUTE-REFRESH), then the reconciliation audit squares the
  // data plane with the recomputed desired set.
  reconnector_->set_established_handler([this](bgp::Session& session) {
    if (reconnector_->stats().reconnects == 0) return;  // First dial: nothing to heal.
    session.request_route_refresh(bgp::kAfiIPv4);
    queue_.schedule_after(sim::Seconds(config_.reconcile_delay_s),
                          [this, alive = alive_] {
                            if (!*alive) return;
                            reconcile();
                          });
  });
  reconnector_->start();
  processor_ = std::make_unique<sim::PeriodicTask>(
      queue_, sim::Seconds(config_.process_interval_s), [this] { process(); });
}

BlackholingController::ReconcileReport BlackholingController::reconcile() {
  ReconcileReport report;
  process();  // Bring desired_ up to date with the (resynced) RIB first.
  if (!installed_view_) return report;
  c_reconciliations_.inc();
  std::set<std::string> installed;
  for (auto& key : installed_view_()) installed.insert(std::move(key));

  // Orphans: realized in the data plane, no longer desired. The compilers
  // resolve removals by key alone, so no port/rule payload is needed.
  for (const auto& key : installed) {
    if (desired_.contains(key)) continue;
    ConfigChange change;
    change.op = ConfigChange::Op::kRemove;
    change.key = key;
    ++report.orphans_removed;
    c_orphans_removed_.inc();
    c_removals_emitted_.inc();
    if (sink_) sink_(change);
  }

  // Missing: desired but absent from the data plane (lost to a crash or a
  // dead-lettered install) — reissue the install.
  for (const auto& [key, change] : desired_) {
    if (installed.contains(key)) continue;
    ConfigChange install = change;
    install.op = ConfigChange::Op::kInstall;
    ++report.missing_reinstalled;
    c_missing_reinstalled_.inc();
    c_installs_emitted_.inc();
    if (sink_) sink_(install);
  }
  obs::journal().append(queue_.now().count(), obs::EventKind::kReconciliation, "controller",
                        "orphans=" + std::to_string(report.orphans_removed) +
                            " missing=" + std::to_string(report.missing_reinstalled));
  return report;
}

void BlackholingController::on_update(const bgp::UpdateMessage& update) {
  c_updates_processed_.inc();
  // Signal-carrying updates get a trace mark per announced prefix: the
  // moment the signal reached the controller's BGP front-end.
  if (!update.attrs.extended_communities.empty() || !update.attrs.large_communities.empty()) {
    const double now = queue_.now().count();
    for (const auto& nlri : update.announced) {
      obs::tracer().mark(nlri.prefix.str(), "controller_rx", now);
    }
  }
  // The BGP processor stores announced routes in the RIB; peer 0 (the route
  // server session) with ADD-PATH path-ids distinguishing member paths.
  rib_.apply_update(0, update);
  // Every touched prefix joins the current diff epoch: all deltas that land
  // between two process() rounds coalesce into one change-set emission.
  for (const auto& nlri : update.withdrawn) dirty_.insert(nlri.prefix);
  for (const auto& nlri : update.announced) dirty_.insert(nlri.prefix);
}

std::vector<std::pair<std::string, BlackholingController::DesiredRule>>
BlackholingController::derive_rules(const bgp::Route& route) {
  std::vector<std::pair<std::string, DesiredRule>> out;
  const bool ext_namespace_usable = config_.ixp_asn <= 0xffff;
  const bool has_ext =
      ext_namespace_usable &&
      HasStellarSignal(static_cast<std::uint16_t>(config_.ixp_asn),
                       route.attrs.extended_communities);
  const bool has_large =
      HasStellarSignalLarge(config_.ixp_asn, route.attrs.large_communities);
  if (!has_ext && !has_large) return out;

  // Stats are per signaled route, not per processing round — and a route is
  // invalid at most once, no matter how many of its rules fail to translate
  // (counting each bad rule used to double-count invalid_signals).
  const bool first_seen = stats_counted_.insert({route.prefix, route.path_id}).second;
  bool invalid_counted = false;
  const auto count_invalid_once = [&] {
    if (first_seen && !invalid_counted) {
      c_invalid_signals_.inc();
      invalid_counted = true;
    }
  };

  // Merge both namespaces: rules union, any shaping action applies.
  Signal merged;
  if (has_ext) {
    auto decoded = DecodeSignal(static_cast<std::uint16_t>(config_.ixp_asn),
                                route.attrs.extended_communities);
    if (!decoded.ok()) {
      count_invalid_once();
      return out;
    }
    merged = std::move(*decoded);
  }
  if (has_large) {
    auto decoded = DecodeSignalLarge(config_.ixp_asn, route.attrs.large_communities);
    if (!decoded.ok()) {
      count_invalid_once();
      return out;
    }
    merged.rules.insert(merged.rules.end(), decoded->rules.begin(), decoded->rules.end());
    std::sort(merged.rules.begin(), merged.rules.end());
    merged.rules.erase(std::unique(merged.rules.begin(), merged.rules.end()),
                       merged.rules.end());
    if (!merged.shape_rate_mbps) merged.shape_rate_mbps = decoded->shape_rate_mbps;
  }
  const auto& signal = merged;
  if (signal.rules.empty()) {
    count_invalid_once();
    return out;
  }
  if (first_seen) {
    c_signals_decoded_.inc();
    obs::tracer().mark(route.prefix.str(), "controller_decode", queue_.now().count());
  }

  // The signaling member is the path's origin (the route server has already
  // verified the origin matches the announcing session and IRR ownership).
  const auto member = route.attrs.origin_asn();
  if (!member) {
    count_invalid_once();
    return out;
  }
  const auto entry = directory_(*member);
  if (!entry) {
    count_invalid_once();
    return out;
  }

  const bool shaping = signal.is_shaping();
  for (std::size_t i = 0; i < signal.rules.size(); ++i) {
    const SignalRule& sr = signal.rules[i];
    filter::MatchCriteria criteria;
    if (sr.kind == RuleKind::kPredefined) {
      const MatchTemplate* tmpl =
          portal_ != nullptr ? portal_->lookup(sr.value, *member) : nullptr;
      if (tmpl == nullptr) {
        count_invalid_once();
        continue;
      }
      criteria = tmpl->bind(route.prefix);
    } else {
      auto converted = ToMatchCriteria(sr, route.prefix);
      if (!converted.ok()) {
        count_invalid_once();
        continue;
      }
      criteria = *converted;
    }
    DesiredRule desired;
    desired.member = *member;
    desired.port = entry->port;
    desired.rule.match = criteria;
    desired.rule.action = shaping ? filter::FilterAction::kShape : filter::FilterAction::kDrop;
    desired.rule.shape_rate_mbps = shaping ? *signal.shape_rate_mbps : 0.0;
    desired.trace = route.prefix.str();

    const std::string key = route.prefix.str() + "|path" + std::to_string(route.path_id) +
                            "|rule" + std::to_string(i) + "|" + sr.str();
    out.emplace_back(key, std::move(desired));
  }
  return out;
}

void BlackholingController::process() {
  // One diff epoch. Quiet epochs (no RIB churn since the last round) are
  // free; churny epochs coalesce all accumulated per-prefix deltas into one
  // change-set. Admission control is sort-order-sensitive, so whenever it
  // could bind the epoch falls back to the full O(RIB) rescan — the two
  // paths produce the same desired state by construction.
  if (!need_full_ && dirty_.empty()) return;
  if (need_full_) {
    process_full();
  } else {
    process_incremental();
  }
}

std::size_t BlackholingController::emit_transition(const std::string& key,
                                                   const DesiredRule* next) {
  const auto it = desired_.find(key);
  if (next == nullptr) {
    if (it == desired_.end()) return 0;
    ConfigChange change = it->second;
    change.op = ConfigChange::Op::kRemove;
    if (--port_counts_[change.port] <= 0) port_counts_.erase(change.port);
    desired_.erase(it);
    c_removals_emitted_.inc();
    if (sink_) sink_(change);
    return 1;
  }
  if (it != desired_.end() && it->second.rule == next->rule) return 0;
  std::size_t emitted = 0;
  if (it != desired_.end()) {
    // Modified in place (e.g. shape -> drop escalation): remove then install.
    ConfigChange removal = it->second;
    removal.op = ConfigChange::Op::kRemove;
    if (--port_counts_[removal.port] <= 0) port_counts_.erase(removal.port);
    c_removals_emitted_.inc();
    if (sink_) sink_(removal);
    ++emitted;
  }
  ConfigChange change;
  change.op = ConfigChange::Op::kInstall;
  change.member = next->member;
  change.port = next->port;
  change.rule = next->rule;
  change.key = key;
  change.trace = next->trace;
  desired_[key] = change;
  ++port_counts_[change.port];
  c_installs_emitted_.inc();
  if (sink_) sink_(change);
  return emitted + 1;
}

void BlackholingController::process_full() {
  // Recompute the full desired state from the current RIB, then diff against
  // what we previously emitted. Equivalent to the paper's RIB-snapshot
  // differencing, but naturally idempotent.
  c_epochs_full_.inc();
  need_full_ = false;
  dirty_.clear();
  rejected_ports_.clear();
  std::map<std::string, DesiredRule> target;
  std::map<filter::PortId, int> rules_per_port;
  rib_.for_each([&](const bgp::Route& route) {
    for (auto& [key, desired] : derive_rules(route)) {
      // Admission control: cap concurrent rules per member port. The first
      // budget-many rules in RIB order win; the rest are rejected.
      int& count = rules_per_port[desired.port];
      if (count >= config_.max_rules_per_port) {
        if (!desired_.contains(key)) c_admission_rejected_.inc();
        rejected_ports_.insert(desired.port);
        continue;
      }
      if (target.emplace(key, std::move(desired)).second) ++count;
    }
  });

  std::size_t changes = 0;
  // Removals: previously desired, no longer signaled.
  std::vector<std::string> stale;
  for (const auto& [key, change] : desired_) {
    if (!target.contains(key)) stale.push_back(key);
  }
  for (const auto& key : stale) changes += emit_transition(key, nullptr);
  // Installs and modifications.
  for (const auto& [key, desired] : target) changes += emit_transition(key, &desired);
  if (changes > 0) h_epoch_changes_.observe(static_cast<double>(changes));
}

void BlackholingController::process_incremental() {
  // Phase 1 (dry): derive the coalesced delta for every dirty prefix without
  // emitting anything, and decide whether admission control could bind.
  struct Delta {
    std::map<std::string, DesiredRule> next;  ///< Desired rules after the epoch.
    std::vector<std::string> old_keys;        ///< Currently desired keys of the prefix.
  };
  std::vector<Delta> deltas;
  deltas.reserve(dirty_.size());
  for (const auto& prefix : dirty_) {
    Delta d;
    rib_.visit_prefix(prefix, [&](const bgp::RouteView& view) {
      for (auto& [key, desired] : derive_rules(view.materialize())) {
        d.next.emplace(std::move(key), std::move(desired));
      }
    });
    // Change keys are "<prefix>|path..." and '|' sorts above every prefix
    // character, so the prefix's desired keys form one contiguous map range.
    const std::string range = prefix.str() + "|";
    for (auto it = desired_.lower_bound(range);
         it != desired_.end() && it->first.starts_with(range); ++it) {
      d.old_keys.push_back(it->first);
    }
    deltas.push_back(std::move(d));
  }

  // Safety check: project per-port occupancy after the epoch. The epoch may
  // apply incrementally only if no touched port overflows its budget and no
  // touched port had rejections in the last full pass (a rejected rule could
  // be waiting in the RIB for a freed slot).
  std::map<filter::PortId, int> occupancy = port_counts_;
  std::set<filter::PortId> touched;
  for (const auto& d : deltas) {
    for (const auto& key : d.old_keys) {
      const ConfigChange& cur = desired_.at(key);
      touched.insert(cur.port);
      const auto next = d.next.find(key);
      if (next == d.next.end()) {
        --occupancy[cur.port];
      } else if (next->second.port != cur.port) {
        --occupancy[cur.port];
        ++occupancy[next->second.port];
        touched.insert(next->second.port);
      }
    }
    for (const auto& [key, desired] : d.next) {
      touched.insert(desired.port);
      if (!desired_.contains(key)) ++occupancy[desired.port];
    }
  }
  for (const filter::PortId port : touched) {
    if (rejected_ports_.contains(port) || occupancy[port] > config_.max_rules_per_port) {
      process_full();  // Global admission must decide this epoch.
      return;
    }
  }

  // Phase 2: emit the batched change-set, removals before installs per
  // prefix, superseded add->remove churn already annihilated in the delta.
  c_epochs_incremental_.inc();
  std::size_t changes = 0;
  for (const auto& d : deltas) {
    for (const auto& key : d.old_keys) {
      if (!d.next.contains(key)) changes += emit_transition(key, nullptr);
    }
    for (const auto& [key, desired] : d.next) changes += emit_transition(key, &desired);
  }
  dirty_.clear();
  if (changes > 0) h_epoch_changes_.observe(static_cast<double>(changes));
}

}  // namespace stellar::core
