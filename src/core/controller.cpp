#include "core/controller.hpp"

#include <algorithm>

#include "obs/journal.hpp"
#include "obs/trace.hpp"

namespace stellar::core {

std::string ConfigChange::str() const {
  return std::string(op == Op::kInstall ? "install" : "remove") + " port " +
         std::to_string(port) + " " + rule.str();
}

BlackholingController::BlackholingController(sim::EventQueue& queue,
                                             std::shared_ptr<bgp::Endpoint> transport,
                                             Config config, PortDirectory directory,
                                             const RulePortal* portal)
    : queue_(queue),
      config_(config),
      directory_(std::move(directory)),
      portal_(portal) {
  // One-shot transport: hand out the given endpoint on the first dial; a
  // zero-retry policy keeps the classic fail-safe-only behaviour.
  auto handed_out = std::make_shared<std::shared_ptr<bgp::Endpoint>>(std::move(transport));
  bgp::ReconnectPolicy one_shot;
  one_shot.max_retries = 0;
  init_session([handed_out]() { return std::exchange(*handed_out, nullptr); }, one_shot);
}

BlackholingController::BlackholingController(sim::EventQueue& queue, TransportFactory factory,
                                             bgp::ReconnectPolicy policy, Config config,
                                             PortDirectory directory, const RulePortal* portal)
    : queue_(queue),
      config_(config),
      directory_(std::move(directory)),
      portal_(portal) {
  init_session(std::move(factory), policy);
}

BlackholingController::~BlackholingController() { *alive_ = false; }

void BlackholingController::init_session(TransportFactory factory,
                                         bgp::ReconnectPolicy policy) {
  bgp::SessionConfig session_config;
  session_config.local_asn = config_.ixp_asn;  // iBGP with the route server.
  session_config.router_id = net::IPv4Address(10, 99, 0, 2);
  session_config.add_path_rx = config_.use_add_path;  // See all paths, bypass best-path.
  reconnector_ = std::make_unique<bgp::ReconnectingSession>(queue_, std::move(factory),
                                                            session_config, policy);
  reconnector_->set_update_handler([this](const bgp::UpdateMessage& u) { on_update(u); });
  // Fail-safe (paper §4.1.2): if the signaling path dies, fall back to
  // simple forwarding of all traffic — stale filters must not strand a
  // member once it can no longer withdraw them.
  reconnector_->set_state_handler([this](bgp::SessionState state) {
    if (state != bgp::SessionState::kClosed) return;
    c_failsafe_flushes_.inc();
    obs::journal().append(queue_.now().count(), obs::EventKind::kFailsafeFlush, "controller",
                          "desired=" + std::to_string(desired_.size()));
    rib_.clear();
    process();  // Emits removals for everything previously desired.
  });
  // Each re-establishment resyncs the RIB (the route server replays it and
  // answers our ROUTE-REFRESH), then the reconciliation audit squares the
  // data plane with the recomputed desired set.
  reconnector_->set_established_handler([this](bgp::Session& session) {
    if (reconnector_->stats().reconnects == 0) return;  // First dial: nothing to heal.
    session.request_route_refresh(bgp::kAfiIPv4);
    queue_.schedule_after(sim::Seconds(config_.reconcile_delay_s),
                          [this, alive = alive_] {
                            if (!*alive) return;
                            reconcile();
                          });
  });
  reconnector_->start();
  processor_ = std::make_unique<sim::PeriodicTask>(
      queue_, sim::Seconds(config_.process_interval_s), [this] { process(); });
}

BlackholingController::ReconcileReport BlackholingController::reconcile() {
  ReconcileReport report;
  process();  // Bring desired_ up to date with the (resynced) RIB first.
  if (!installed_view_) return report;
  c_reconciliations_.inc();
  std::set<std::string> installed;
  for (auto& key : installed_view_()) installed.insert(std::move(key));

  // Orphans: realized in the data plane, no longer desired. The compilers
  // resolve removals by key alone, so no port/rule payload is needed.
  for (const auto& key : installed) {
    if (desired_.contains(key)) continue;
    ConfigChange change;
    change.op = ConfigChange::Op::kRemove;
    change.key = key;
    ++report.orphans_removed;
    c_orphans_removed_.inc();
    c_removals_emitted_.inc();
    if (sink_) sink_(change);
  }

  // Missing: desired but absent from the data plane (lost to a crash or a
  // dead-lettered install) — reissue the install.
  for (const auto& [key, change] : desired_) {
    if (installed.contains(key)) continue;
    ConfigChange install = change;
    install.op = ConfigChange::Op::kInstall;
    ++report.missing_reinstalled;
    c_missing_reinstalled_.inc();
    c_installs_emitted_.inc();
    if (sink_) sink_(install);
  }
  obs::journal().append(queue_.now().count(), obs::EventKind::kReconciliation, "controller",
                        "orphans=" + std::to_string(report.orphans_removed) +
                            " missing=" + std::to_string(report.missing_reinstalled));
  return report;
}

void BlackholingController::on_update(const bgp::UpdateMessage& update) {
  c_updates_processed_.inc();
  // Signal-carrying updates get a trace mark per announced prefix: the
  // moment the signal reached the controller's BGP front-end.
  if (!update.attrs.extended_communities.empty() || !update.attrs.large_communities.empty()) {
    const double now = queue_.now().count();
    for (const auto& nlri : update.announced) {
      obs::tracer().mark(nlri.prefix.str(), "controller_rx", now);
    }
  }
  // The BGP processor stores announced routes in the RIB; peer 0 (the route
  // server session) with ADD-PATH path-ids distinguishing member paths.
  rib_.apply_update(0, update);
}

std::vector<std::pair<std::string, BlackholingController::DesiredRule>>
BlackholingController::derive_rules(const bgp::Route& route) {
  std::vector<std::pair<std::string, DesiredRule>> out;
  const bool ext_namespace_usable = config_.ixp_asn <= 0xffff;
  const bool has_ext =
      ext_namespace_usable &&
      HasStellarSignal(static_cast<std::uint16_t>(config_.ixp_asn),
                       route.attrs.extended_communities);
  const bool has_large =
      HasStellarSignalLarge(config_.ixp_asn, route.attrs.large_communities);
  if (!has_ext && !has_large) return out;

  // Stats are per signaled route, not per processing round — and a route is
  // invalid at most once, no matter how many of its rules fail to translate
  // (counting each bad rule used to double-count invalid_signals).
  const bool first_seen = stats_counted_.insert({route.prefix, route.path_id}).second;
  bool invalid_counted = false;
  const auto count_invalid_once = [&] {
    if (first_seen && !invalid_counted) {
      c_invalid_signals_.inc();
      invalid_counted = true;
    }
  };

  // Merge both namespaces: rules union, any shaping action applies.
  Signal merged;
  if (has_ext) {
    auto decoded = DecodeSignal(static_cast<std::uint16_t>(config_.ixp_asn),
                                route.attrs.extended_communities);
    if (!decoded.ok()) {
      count_invalid_once();
      return out;
    }
    merged = std::move(*decoded);
  }
  if (has_large) {
    auto decoded = DecodeSignalLarge(config_.ixp_asn, route.attrs.large_communities);
    if (!decoded.ok()) {
      count_invalid_once();
      return out;
    }
    merged.rules.insert(merged.rules.end(), decoded->rules.begin(), decoded->rules.end());
    std::sort(merged.rules.begin(), merged.rules.end());
    merged.rules.erase(std::unique(merged.rules.begin(), merged.rules.end()),
                       merged.rules.end());
    if (!merged.shape_rate_mbps) merged.shape_rate_mbps = decoded->shape_rate_mbps;
  }
  const auto& signal = merged;
  if (signal.rules.empty()) {
    count_invalid_once();
    return out;
  }
  if (first_seen) {
    c_signals_decoded_.inc();
    obs::tracer().mark(route.prefix.str(), "controller_decode", queue_.now().count());
  }

  // The signaling member is the path's origin (the route server has already
  // verified the origin matches the announcing session and IRR ownership).
  const auto member = route.attrs.origin_asn();
  if (!member) {
    count_invalid_once();
    return out;
  }
  const auto entry = directory_(*member);
  if (!entry) {
    count_invalid_once();
    return out;
  }

  const bool shaping = signal.is_shaping();
  for (std::size_t i = 0; i < signal.rules.size(); ++i) {
    const SignalRule& sr = signal.rules[i];
    filter::MatchCriteria criteria;
    if (sr.kind == RuleKind::kPredefined) {
      const MatchTemplate* tmpl =
          portal_ != nullptr ? portal_->lookup(sr.value, *member) : nullptr;
      if (tmpl == nullptr) {
        count_invalid_once();
        continue;
      }
      criteria = tmpl->bind(route.prefix);
    } else {
      auto converted = ToMatchCriteria(sr, route.prefix);
      if (!converted.ok()) {
        count_invalid_once();
        continue;
      }
      criteria = *converted;
    }
    DesiredRule desired;
    desired.member = *member;
    desired.port = entry->port;
    desired.rule.match = criteria;
    desired.rule.action = shaping ? filter::FilterAction::kShape : filter::FilterAction::kDrop;
    desired.rule.shape_rate_mbps = shaping ? *signal.shape_rate_mbps : 0.0;
    desired.trace = route.prefix.str();

    const std::string key = route.prefix.str() + "|path" + std::to_string(route.path_id) +
                            "|rule" + std::to_string(i) + "|" + sr.str();
    out.emplace_back(key, std::move(desired));
  }
  return out;
}

void BlackholingController::process() {
  // Recompute the full desired state from the current RIB, then diff against
  // what we previously emitted. Equivalent to the paper's RIB-snapshot
  // differencing, but naturally idempotent.
  std::map<std::string, DesiredRule> target;
  std::map<filter::PortId, int> rules_per_port;
  rib_.for_each([&](const bgp::Route& route) {
    for (auto& [key, desired] : derive_rules(route)) {
      // Admission control: cap concurrent rules per member port. Rules we
      // already run keep their slot; new ones beyond the budget are rejected.
      int& count = rules_per_port[desired.port];
      if (count >= config_.max_rules_per_port) {
        if (!desired_.contains(key)) c_admission_rejected_.inc();
        continue;
      }
      if (target.emplace(key, std::move(desired)).second) ++count;
    }
  });

  // Removals: previously desired, no longer signaled.
  for (auto it = desired_.begin(); it != desired_.end();) {
    if (target.contains(it->first)) {
      ++it;
      continue;
    }
    ConfigChange change = it->second;
    change.op = ConfigChange::Op::kRemove;
    c_removals_emitted_.inc();
    if (sink_) sink_(change);
    it = desired_.erase(it);
  }

  // Installs and modifications.
  for (auto& [key, desired] : target) {
    const auto it = desired_.find(key);
    if (it != desired_.end() && it->second.rule == desired.rule) continue;
    if (it != desired_.end()) {
      // Modified in place (e.g. shape -> drop escalation): remove then install.
      ConfigChange removal = it->second;
      removal.op = ConfigChange::Op::kRemove;
      c_removals_emitted_.inc();
      if (sink_) sink_(removal);
    }
    ConfigChange change;
    change.op = ConfigChange::Op::kInstall;
    change.member = desired.member;
    change.port = desired.port;
    change.rule = desired.rule;
    change.key = key;
    change.trace = desired.trace;
    desired_[key] = change;
    c_installs_emitted_.inc();
    if (sink_) sink_(change);
  }
}

}  // namespace stellar::core
