#include "core/controller.hpp"

#include <algorithm>

namespace stellar::core {

std::string ConfigChange::str() const {
  return std::string(op == Op::kInstall ? "install" : "remove") + " port " +
         std::to_string(port) + " " + rule.str();
}

BlackholingController::BlackholingController(sim::EventQueue& queue,
                                             std::shared_ptr<bgp::Endpoint> transport,
                                             Config config, PortDirectory directory,
                                             const RulePortal* portal)
    : queue_(queue),
      config_(config),
      directory_(std::move(directory)),
      portal_(portal) {
  bgp::SessionConfig session_config;
  session_config.local_asn = config_.ixp_asn;  // iBGP with the route server.
  session_config.router_id = net::IPv4Address(10, 99, 0, 2);
  session_config.add_path_rx = config_.use_add_path;  // See all paths, bypass best-path.
  session_ = std::make_unique<bgp::Session>(queue_, std::move(transport), session_config);
  session_->set_update_handler([this](const bgp::UpdateMessage& u) { on_update(u); });
  // Fail-safe (paper §4.1.2): if the signaling path dies, fall back to
  // simple forwarding of all traffic — stale filters must not strand a
  // member once it can no longer withdraw them.
  session_->set_state_handler([this](bgp::SessionState state) {
    if (state != bgp::SessionState::kClosed) return;
    ++stats_.failsafe_flushes;
    rib_.clear();
    process();  // Emits removals for everything previously desired.
  });
  session_->start();
  processor_ = std::make_unique<sim::PeriodicTask>(
      queue_, sim::Seconds(config_.process_interval_s), [this] { process(); });
}

void BlackholingController::on_update(const bgp::UpdateMessage& update) {
  ++stats_.updates_processed;
  // The BGP processor stores announced routes in the RIB; peer 0 (the route
  // server session) with ADD-PATH path-ids distinguishing member paths.
  rib_.apply_update(0, update);
}

std::vector<std::pair<std::string, BlackholingController::DesiredRule>>
BlackholingController::derive_rules(const bgp::Route& route) {
  std::vector<std::pair<std::string, DesiredRule>> out;
  const bool ext_namespace_usable = config_.ixp_asn <= 0xffff;
  const bool has_ext =
      ext_namespace_usable &&
      HasStellarSignal(static_cast<std::uint16_t>(config_.ixp_asn),
                       route.attrs.extended_communities);
  const bool has_large =
      HasStellarSignalLarge(config_.ixp_asn, route.attrs.large_communities);
  if (!has_ext && !has_large) return out;

  // Stats are per signaled route, not per processing round.
  const bool first_seen = stats_counted_.insert({route.prefix, route.path_id}).second;

  // Merge both namespaces: rules union, any shaping action applies.
  Signal merged;
  if (has_ext) {
    auto decoded = DecodeSignal(static_cast<std::uint16_t>(config_.ixp_asn),
                                route.attrs.extended_communities);
    if (!decoded.ok()) {
      if (first_seen) ++stats_.invalid_signals;
      return out;
    }
    merged = std::move(*decoded);
  }
  if (has_large) {
    auto decoded = DecodeSignalLarge(config_.ixp_asn, route.attrs.large_communities);
    if (!decoded.ok()) {
      if (first_seen) ++stats_.invalid_signals;
      return out;
    }
    merged.rules.insert(merged.rules.end(), decoded->rules.begin(), decoded->rules.end());
    std::sort(merged.rules.begin(), merged.rules.end());
    merged.rules.erase(std::unique(merged.rules.begin(), merged.rules.end()),
                       merged.rules.end());
    if (!merged.shape_rate_mbps) merged.shape_rate_mbps = decoded->shape_rate_mbps;
  }
  const auto& signal = merged;
  if (signal.rules.empty()) {
    if (first_seen) ++stats_.invalid_signals;
    return out;
  }
  if (first_seen) ++stats_.signals_decoded;

  // The signaling member is the path's origin (the route server has already
  // verified the origin matches the announcing session and IRR ownership).
  const auto member = route.attrs.origin_asn();
  if (!member) {
    if (first_seen) ++stats_.invalid_signals;
    return out;
  }
  const auto entry = directory_(*member);
  if (!entry) {
    if (first_seen) ++stats_.invalid_signals;
    return out;
  }

  const bool shaping = signal.is_shaping();
  for (std::size_t i = 0; i < signal.rules.size(); ++i) {
    const SignalRule& sr = signal.rules[i];
    filter::MatchCriteria criteria;
    if (sr.kind == RuleKind::kPredefined) {
      const MatchTemplate* tmpl =
          portal_ != nullptr ? portal_->lookup(sr.value, *member) : nullptr;
      if (tmpl == nullptr) {
        if (first_seen) ++stats_.invalid_signals;
        continue;
      }
      criteria = tmpl->bind(route.prefix);
    } else {
      auto converted = ToMatchCriteria(sr, route.prefix);
      if (!converted.ok()) {
        if (first_seen) ++stats_.invalid_signals;
        continue;
      }
      criteria = *converted;
    }
    DesiredRule desired;
    desired.member = *member;
    desired.port = entry->port;
    desired.rule.match = criteria;
    desired.rule.action = shaping ? filter::FilterAction::kShape : filter::FilterAction::kDrop;
    desired.rule.shape_rate_mbps = shaping ? *signal.shape_rate_mbps : 0.0;

    const std::string key = route.prefix.str() + "|path" + std::to_string(route.path_id) +
                            "|rule" + std::to_string(i) + "|" + sr.str();
    out.emplace_back(key, std::move(desired));
  }
  return out;
}

void BlackholingController::process() {
  // Recompute the full desired state from the current RIB, then diff against
  // what we previously emitted. Equivalent to the paper's RIB-snapshot
  // differencing, but naturally idempotent.
  std::map<std::string, DesiredRule> target;
  std::map<filter::PortId, int> rules_per_port;
  rib_.for_each([&](const bgp::Route& route) {
    for (auto& [key, desired] : derive_rules(route)) {
      // Admission control: cap concurrent rules per member port. Rules we
      // already run keep their slot; new ones beyond the budget are rejected.
      int& count = rules_per_port[desired.port];
      if (count >= config_.max_rules_per_port) {
        if (!desired_.contains(key)) ++stats_.admission_rejected;
        continue;
      }
      if (target.emplace(key, std::move(desired)).second) ++count;
    }
  });

  // Removals: previously desired, no longer signaled.
  for (auto it = desired_.begin(); it != desired_.end();) {
    if (target.contains(it->first)) {
      ++it;
      continue;
    }
    ConfigChange change = it->second;
    change.op = ConfigChange::Op::kRemove;
    ++stats_.removals_emitted;
    if (sink_) sink_(change);
    it = desired_.erase(it);
  }

  // Installs and modifications.
  for (auto& [key, desired] : target) {
    const auto it = desired_.find(key);
    if (it != desired_.end() && it->second.rule == desired.rule) continue;
    if (it != desired_.end()) {
      // Modified in place (e.g. shape -> drop escalation): remove then install.
      ConfigChange removal = it->second;
      removal.op = ConfigChange::Op::kRemove;
      ++stats_.removals_emitted;
      if (sink_) sink_(removal);
    }
    ConfigChange change;
    change.op = ConfigChange::Op::kInstall;
    change.member = desired.member;
    change.port = desired.port;
    change.rule = desired.rule;
    change.key = key;
    desired_[key] = change;
    ++stats_.installs_emitted;
    if (sink_) sink_(change);
  }
}

}  // namespace stellar::core
