// OpenFlow-style flow table — the data-plane target of the SDN realization
// (paper §4.2.2: "SDN hardware, in principle, offers both the ability to
// configure via OpenFlow or P4, and realize filters with the match-action
// abstraction efficiently. Moreover, with per flow counters it is possible to
// gather statistics"). Stellar's demo realization on the SDX platform [25]
// corresponds to SdnConfigCompiler driving this table.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "filter/qos.hpp"
#include "filter/rule.hpp"
#include "net/flow.hpp"
#include "util/result.hpp"

namespace stellar::core {

/// One flow entry: match + action + counters, identified by a cookie.
struct FlowEntry {
  std::uint64_t cookie = 0;
  std::uint16_t priority = 0;  ///< Higher wins.
  filter::MatchCriteria match;
  filter::FilterAction action = filter::FilterAction::kForward;
  double meter_rate_mbps = 0.0;  ///< For kShape: attached meter band.
  std::uint64_t packet_count = 0;
  std::uint64_t byte_count = 0;
};

class FlowTable {
 public:
  explicit FlowTable(std::size_t capacity) : capacity_(capacity) {}

  /// Adds an entry; fails when the table is full ("table-full" error, the
  /// OpenFlow OFPFMFC_TABLE_FULL condition).
  util::Result<void> add(FlowEntry entry);

  /// Removes by cookie; returns false if absent.
  bool remove(std::uint64_t cookie);

  /// Highest-priority matching entry (ties: earliest installed), or nullptr.
  [[nodiscard]] const FlowEntry* match(const net::FlowKey& flow) const;

  /// Applies the table to one bin of flow demand, updating per-entry
  /// counters; semantics mirror the QoS engine (drop / meter / forward, then
  /// a proportional congestion cut at `port_capacity_mbps`).
  filter::PortBinResult apply(std::span<const net::FlowSample> demands,
                              double port_capacity_mbps, double bin_s);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] const FlowEntry* entry(std::uint64_t cookie) const;

 private:
  [[nodiscard]] FlowEntry* find(std::uint64_t cookie);

  std::size_t capacity_;
  std::vector<FlowEntry> entries_;
};

}  // namespace stellar::core
