#include "core/stellar.hpp"

namespace stellar::core {

StellarSystem::StellarSystem(ixp::Ixp& ixp, Config config) : ixp_(ixp) {
  config.controller.ixp_asn = ixp.config().asn;
  compiler_ = std::make_unique<QosConfigCompiler>(ixp.edge_router());
  manager_ = std::make_unique<NetworkManager>(ixp.queue(), *compiler_, config.manager);

  BlackholingController::PortDirectory directory =
      [&ixp](bgp::Asn asn) -> std::optional<BlackholingController::PortDirectoryEntry> {
    ixp::MemberRouter* member = ixp.member(asn);
    if (member == nullptr) return std::nullopt;
    return BlackholingController::PortDirectoryEntry{member->info().port,
                                                     member->info().port_capacity_mbps};
  };

  controller_ = std::make_unique<BlackholingController>(
      ixp.queue(), ixp.route_server().accept_controller(), config.controller,
      std::move(directory), &portal_);
  controller_->set_change_sink([this](ConfigChange change) { manager_->enqueue(std::move(change)); });
}

std::vector<StellarSystem::TelemetryRecord> StellarSystem::telemetry(bgp::Asn member) const {
  std::vector<TelemetryRecord> out;
  for (const auto& [key, change] : controller_->desired()) {
    if (change.member != member) continue;
    TelemetryRecord record;
    record.key = key;
    record.port = change.port;
    record.rule = change.rule;
    if (const auto id = compiler_->rule_id(key)) {
      record.counters = ixp_.edge_router().counters(*id);
    }
    out.push_back(std::move(record));
  }
  return out;
}

void SignalAdvancedBlackholing(ixp::MemberRouter& member, const ixp::RouteServer& route_server,
                               const net::Prefix4& prefix, const Signal& signal,
                               bool also_propagate_to_members) {
  std::vector<bgp::Community> communities;
  if (!also_propagate_to_members) communities.push_back(route_server.announce_to_none());
  member.announce(prefix, std::move(communities),
                  EncodeSignal(static_cast<std::uint16_t>(route_server.config().asn), signal));
}

void SignalAdvancedBlackholingLarge(ixp::MemberRouter& member,
                                    const ixp::RouteServer& route_server,
                                    const net::Prefix4& prefix, const Signal& signal,
                                    bool also_propagate_to_members) {
  bgp::UpdateMessage update;
  update.attrs.origin = bgp::Origin::kIgp;
  update.attrs.as_path = {{bgp::AsPathSegment::Type::kSequence, {member.info().asn}}};
  update.attrs.next_hop = member.info().router_ip;
  if (!also_propagate_to_members) {
    update.attrs.communities.push_back(route_server.announce_to_none());
  }
  update.attrs.large_communities = EncodeSignalLarge(route_server.config().asn, signal);
  update.announced.push_back(bgp::Nlri4{0, prefix});
  member.session()->announce(std::move(update));
}

void WithdrawAdvancedBlackholing(ixp::MemberRouter& member, const net::Prefix4& prefix) {
  member.withdraw(prefix);
}

}  // namespace stellar::core
