#include "core/stellar.hpp"

#include <set>

namespace stellar::core {

StellarSystem::StellarSystem(ixp::Ixp& ixp, Config config) : ixp_(ixp) {
  config.controller.ixp_asn = ixp.config().asn;
  compiler_ = std::make_unique<QosConfigCompiler>(ixp.edge_router());
  ConfigCompiler* active_compiler = compiler_.get();
  if (config.compiler_decorator) {
    decorated_compiler_ = config.compiler_decorator(*compiler_);
    if (decorated_compiler_) active_compiler = decorated_compiler_.get();
  }
  manager_ = std::make_unique<NetworkManager>(ixp.queue(), *active_compiler, config.manager);

  BlackholingController::PortDirectory directory =
      [&ixp](bgp::Asn asn) -> std::optional<BlackholingController::PortDirectoryEntry> {
    ixp::MemberRouter* member = ixp.member(asn);
    if (member == nullptr) return std::nullopt;
    return BlackholingController::PortDirectoryEntry{member->info().port,
                                                     member->info().port_capacity_mbps};
  };

  if (config.controller_reconnect) {
    controller_ = std::make_unique<BlackholingController>(
        ixp.queue(), [&ixp] { return ixp.route_server().accept_controller(); },
        *config.controller_reconnect, config.controller, std::move(directory), &portal_);
  } else {
    controller_ = std::make_unique<BlackholingController>(
        ixp.queue(), ixp.route_server().accept_controller(), config.controller,
        std::move(directory), &portal_);
  }
  controller_->set_change_sink([this](ConfigChange change) { manager_->enqueue(std::move(change)); });
  // Reconciliation's view of the data plane: rules the compiler has realized,
  // projected over what is still in flight through the rate limiter — a
  // queued install/remove is not an inconsistency, just latency.
  controller_->set_installed_view([this] {
    std::set<std::string> keys;
    for (auto& key : compiler_->installed_keys()) keys.insert(std::move(key));
    for (const auto& change : manager_->in_flight()) {
      if (change.op == ConfigChange::Op::kInstall) {
        keys.insert(change.key);
      } else {
        keys.erase(change.key);
      }
    }
    return std::vector<std::string>(keys.begin(), keys.end());
  });
}

std::vector<StellarSystem::TelemetryRecord> StellarSystem::telemetry(bgp::Asn member) const {
  std::vector<TelemetryRecord> out;
  for (const auto& [key, change] : controller_->desired()) {
    if (change.member != member) continue;
    TelemetryRecord record;
    record.key = key;
    record.port = change.port;
    record.rule = change.rule;
    if (const auto id = compiler_->rule_id(key)) {
      record.counters = ixp_.edge_router().counters(*id);
    }
    out.push_back(std::move(record));
  }
  return out;
}

void SignalAdvancedBlackholing(ixp::MemberRouter& member, const ixp::RouteServer& route_server,
                               const net::Prefix4& prefix, const Signal& signal,
                               bool also_propagate_to_members) {
  std::vector<bgp::Community> communities;
  if (!also_propagate_to_members) communities.push_back(route_server.announce_to_none());
  // Invalid signals (fractional/overflowing rate) are caller bugs: value()
  // throws instead of announcing a silently-mangled action.
  member.announce(
      prefix, std::move(communities),
      EncodeSignal(static_cast<std::uint16_t>(route_server.config().asn), signal).value());
}

void SignalAdvancedBlackholingLarge(ixp::MemberRouter& member,
                                    const ixp::RouteServer& route_server,
                                    const net::Prefix4& prefix, const Signal& signal,
                                    bool also_propagate_to_members) {
  bgp::UpdateMessage update;
  update.attrs.origin = bgp::Origin::kIgp;
  update.attrs.as_path = {{bgp::AsPathSegment::Type::kSequence, {member.info().asn}}};
  update.attrs.next_hop = member.info().router_ip;
  if (!also_propagate_to_members) {
    update.attrs.communities.push_back(route_server.announce_to_none());
  }
  update.attrs.large_communities = EncodeSignalLarge(route_server.config().asn, signal).value();
  update.announced.push_back(bgp::Nlri4{0, prefix});
  member.session()->announce(std::move(update));
}

void WithdrawAdvancedBlackholing(ixp::MemberRouter& member, const net::Prefix4& prefix) {
  member.withdraw(prefix);
}

}  // namespace stellar::core
