#include "core/signal.hpp"

#include <algorithm>
#include <cmath>

namespace stellar::core {

namespace {

/// The wire action field is a 32-bit integral Mbps rate; anything a uint32
/// cannot represent exactly must be rejected at encode time instead of being
/// silently truncated into a different (often drop-all) action.
util::Result<std::uint32_t> ValidatedRateMbps(double rate) {
  if (std::isnan(rate) || rate < 0.0) {
    return util::MakeError("stellar.signal", "shape rate must be a non-negative Mbps value");
  }
  if (rate > 4294967295.0) {
    return util::MakeError("stellar.signal", "shape rate overflows the 32-bit wire field");
  }
  if (rate != std::floor(rate)) {
    return util::MakeError("stellar.signal",
                           "shape rate must be an integral Mbps value (wire field is integer)");
  }
  return static_cast<std::uint32_t>(rate);
}

}  // namespace

std::string_view ToString(RuleKind kind) {
  switch (kind) {
    case RuleKind::kDropAll: return "drop-all";
    case RuleKind::kProtocol: return "protocol";
    case RuleKind::kUdpSrcPort: return "udp-src-port";
    case RuleKind::kUdpDstPort: return "udp-dst-port";
    case RuleKind::kTcpSrcPort: return "tcp-src-port";
    case RuleKind::kTcpDstPort: return "tcp-dst-port";
    case RuleKind::kPredefined: return "predefined";
  }
  return "?";
}

std::string SignalRule::str() const {
  return std::string(ToString(kind)) + ":" + std::to_string(value);
}

util::Result<std::vector<bgp::ExtendedCommunity>> EncodeSignal(std::uint16_t ixp_asn,
                                                               const Signal& signal) {
  std::vector<bgp::ExtendedCommunity> out;
  out.reserve(signal.rules.size() + 1);
  for (const auto& rule : signal.rules) {
    const std::uint32_t local_admin =
        (std::uint32_t{static_cast<std::uint8_t>(rule.kind)} << 24) | rule.value;
    out.push_back(
        bgp::ExtendedCommunity::TwoOctetAs(kStellarMatchSubtype, ixp_asn, local_admin));
  }
  if (signal.shape_rate_mbps.has_value()) {
    auto rate = ValidatedRateMbps(*signal.shape_rate_mbps);
    if (!rate.ok()) return rate.error();
    if (*rate > 0) {
      out.push_back(
          bgp::ExtendedCommunity::TwoOctetAs(kStellarActionSubtype, ixp_asn, *rate));
    }
  }
  return out;
}

util::Result<Signal> DecodeSignal(std::uint16_t ixp_asn,
                                  std::span<const bgp::ExtendedCommunity> ecs) {
  Signal signal;
  for (const auto& ec : ecs) {
    if ((ec.type() & 0x3f) != bgp::ExtendedCommunity::kTypeTwoOctetAs) continue;
    if (ec.as_number() != ixp_asn) continue;
    if (ec.subtype() == kStellarMatchSubtype) {
      const std::uint32_t admin = ec.local_admin();
      const auto kind_byte = static_cast<std::uint8_t>(admin >> 24);
      if (kind_byte > static_cast<std::uint8_t>(RuleKind::kPredefined) ||
          (kind_byte > 5 && kind_byte < 10)) {
        return util::MakeError("stellar.signal",
                               "unknown rule kind " + std::to_string(kind_byte));
      }
      if ((admin & 0x00ff0000u) != 0) {
        return util::MakeError("stellar.signal", "reserved byte set in match community");
      }
      SignalRule rule;
      rule.kind = static_cast<RuleKind>(kind_byte);
      rule.value = static_cast<std::uint16_t>(admin & 0xffff);
      signal.rules.push_back(rule);
    } else if (ec.subtype() == kStellarActionSubtype) {
      const auto rate = static_cast<double>(ec.local_admin());
      if (signal.shape_rate_mbps.has_value() && *signal.shape_rate_mbps != rate) {
        return util::MakeError("stellar.signal",
                               "conflicting duplicate action communities (" +
                                   std::to_string(static_cast<std::uint32_t>(
                                       *signal.shape_rate_mbps)) +
                                   " Mbps vs " + std::to_string(ec.local_admin()) + " Mbps)");
      }
      signal.shape_rate_mbps = rate;
    }
  }
  std::sort(signal.rules.begin(), signal.rules.end());
  signal.rules.erase(std::unique(signal.rules.begin(), signal.rules.end()),
                     signal.rules.end());
  return signal;
}

bool HasStellarSignal(std::uint16_t ixp_asn, std::span<const bgp::ExtendedCommunity> ecs) {
  return std::any_of(ecs.begin(), ecs.end(), [&](const bgp::ExtendedCommunity& ec) {
    return (ec.type() & 0x3f) == bgp::ExtendedCommunity::kTypeTwoOctetAs &&
           ec.as_number() == ixp_asn &&
           (ec.subtype() == kStellarMatchSubtype || ec.subtype() == kStellarActionSubtype);
  });
}

util::Result<std::vector<bgp::LargeCommunity>> EncodeSignalLarge(std::uint32_t ixp_asn,
                                                                 const Signal& signal) {
  std::vector<bgp::LargeCommunity> out;
  out.reserve(signal.rules.size() + 1);
  for (const auto& rule : signal.rules) {
    out.push_back(bgp::LargeCommunity{
        ixp_asn,
        (kStellarLargeMatchFunction << 24) | static_cast<std::uint32_t>(rule.kind),
        rule.value});
  }
  if (signal.shape_rate_mbps.has_value()) {
    auto rate = ValidatedRateMbps(*signal.shape_rate_mbps);
    if (!rate.ok()) return rate.error();
    if (*rate > 0) {
      out.push_back(bgp::LargeCommunity{ixp_asn, kStellarLargeActionFunction << 24, *rate});
    }
  }
  return out;
}

util::Result<Signal> DecodeSignalLarge(std::uint32_t ixp_asn,
                                       std::span<const bgp::LargeCommunity> lcs) {
  Signal signal;
  for (const auto& lc : lcs) {
    if (lc.global_admin != ixp_asn) continue;
    const std::uint32_t function = lc.data1 >> 24;
    if (function == kStellarLargeMatchFunction) {
      const std::uint32_t kind = lc.data1 & 0x00ffffff;
      if (kind > static_cast<std::uint32_t>(RuleKind::kPredefined) ||
          (kind > 5 && kind < 10)) {
        return util::MakeError("stellar.signal",
                               "unknown rule kind " + std::to_string(kind));
      }
      if (lc.data2 > 0xffff) {
        return util::MakeError("stellar.signal", "rule value out of 16-bit range");
      }
      signal.rules.push_back(
          {static_cast<RuleKind>(kind), static_cast<std::uint16_t>(lc.data2)});
    } else if (function == kStellarLargeActionFunction) {
      const auto rate = static_cast<double>(lc.data2);
      if (signal.shape_rate_mbps.has_value() && *signal.shape_rate_mbps != rate) {
        return util::MakeError(
            "stellar.signal",
            "conflicting duplicate action communities (" +
                std::to_string(static_cast<std::uint32_t>(*signal.shape_rate_mbps)) +
                " Mbps vs " + std::to_string(lc.data2) + " Mbps)");
      }
      signal.shape_rate_mbps = rate;
    }
  }
  std::sort(signal.rules.begin(), signal.rules.end());
  signal.rules.erase(std::unique(signal.rules.begin(), signal.rules.end()),
                     signal.rules.end());
  return signal;
}

bool HasStellarSignalLarge(std::uint32_t ixp_asn, std::span<const bgp::LargeCommunity> lcs) {
  return std::any_of(lcs.begin(), lcs.end(), [&](const bgp::LargeCommunity& lc) {
    const std::uint32_t function = lc.data1 >> 24;
    return lc.global_admin == ixp_asn && (function == kStellarLargeMatchFunction ||
                                          function == kStellarLargeActionFunction);
  });
}

util::Result<filter::MatchCriteria> ToMatchCriteria(const SignalRule& rule,
                                                    const net::Prefix4& victim) {
  filter::MatchCriteria m;
  m.dst_prefix = victim;
  switch (rule.kind) {
    case RuleKind::kDropAll:
      break;
    case RuleKind::kProtocol:
      if (rule.value > 0xff) {
        return util::MakeError("stellar.signal", "protocol value out of range");
      }
      m.proto = static_cast<net::IpProto>(rule.value);
      break;
    case RuleKind::kUdpSrcPort:
      m.proto = net::IpProto::kUdp;
      m.src_port = filter::PortRange::Single(rule.value);
      break;
    case RuleKind::kUdpDstPort:
      m.proto = net::IpProto::kUdp;
      m.dst_port = filter::PortRange::Single(rule.value);
      break;
    case RuleKind::kTcpSrcPort:
      m.proto = net::IpProto::kTcp;
      m.src_port = filter::PortRange::Single(rule.value);
      break;
    case RuleKind::kTcpDstPort:
      m.proto = net::IpProto::kTcp;
      m.dst_port = filter::PortRange::Single(rule.value);
      break;
    case RuleKind::kPredefined:
      return util::MakeError("stellar.signal",
                             "predefined rules must be resolved via the portal");
  }
  return m;
}

}  // namespace stellar::core
