// The blackholing controller (paper §4.4, Fig. 7): passive iBGP speaker
// behind the route server, consuming every accepted path via ADD-PATH,
// tracking signaled blackholing rules in a RIB, and turning RIB differences
// into abstract (hardware-independent) configuration changes.
//
// Admission control lives here (paper §4.1.2: "management has to do
// 'admission control' (limit the number of blackholing rules) to ensure that
// the hardware resource limitations of the IXP's forwarding hardware are
// respected").
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "bgp/reconnect.hpp"
#include "bgp/rib.hpp"
#include "bgp/session.hpp"
#include "core/portal.hpp"
#include "core/signal.hpp"
#include "filter/qos.hpp"
#include "obs/metrics.hpp"
#include "sim/event_queue.hpp"

namespace stellar::core {

/// One abstract configuration change, the unit flowing from the controller
/// through the token-bucket queue into a compiler.
struct ConfigChange {
  enum class Op : std::uint8_t { kInstall, kRemove };

  Op op = Op::kInstall;
  bgp::Asn member = 0;  ///< The victim member whose port the rule protects.
  filter::PortId port = 0;
  filter::FilterRule rule;
  /// Stable identity across install/remove: derived from the signaling
  /// route's (prefix, path-id) and the rule's position in the signal.
  std::string key;
  /// Set by the network manager when the change enters its queue.
  double enqueued_at_s = 0.0;
  /// Apply attempts consumed so far (network-manager retry bookkeeping).
  int attempt = 0;
  /// Signal-path trace id (the signaling route's prefix); empty for changes
  /// not born from a signal (e.g. reconciliation orphan removals). Stages
  /// downstream stamp obs::tracer() marks against this id.
  std::string trace;

  [[nodiscard]] std::string str() const;
};

class BlackholingController {
 public:
  struct PortDirectoryEntry {
    filter::PortId port = 0;
    double capacity_mbps = 0.0;
  };
  /// Resolves a member ASN to its IXP port (nullopt: not a member).
  using PortDirectory = std::function<std::optional<PortDirectoryEntry>(bgp::Asn)>;
  using ChangeSink = std::function<void(ConfigChange)>;
  /// Fresh transport per dial (RouteServer::accept_controller), for
  /// self-healing reconnects after a session loss.
  using TransportFactory = std::function<std::shared_ptr<bgp::Endpoint>()>;
  /// Change keys currently (or imminently) realized in the data plane:
  /// compiler-installed rules projected over the manager's in-flight queue.
  /// The reconciliation audit diffs this against desired().
  using InstalledView = std::function<std::vector<std::string>()>;

  struct Config {
    /// The IXP's ASN. Signals are accepted in the two-octet-AS extended
    /// community namespace (when the ASN fits 16 bits) and in the RFC 8092
    /// large-community namespace (always).
    bgp::Asn ixp_asn = 64500;
    /// RIB-diff processing cadence.
    double process_interval_s = 0.5;
    /// Admission control: max concurrently desired rules per member port.
    int max_rules_per_port = 64;
    /// Negotiate ADD-PATH on the route-server session. Disabling it loses
    /// the ability to honor diverging rules for one prefix from different
    /// members (paper §4.3) — kept switchable for the ablation bench.
    bool use_add_path = true;
    /// Settle time between a session re-establishment (with its ROUTE-REFRESH
    /// resync) and the automatic reconciliation audit.
    double reconcile_delay_s = 5.0;
  };

  /// `transport` is the endpoint returned by RouteServer::accept_controller().
  /// One-shot session: a closed signaling path stays closed (fail-safe only).
  BlackholingController(sim::EventQueue& queue, std::shared_ptr<bgp::Endpoint> transport,
                        Config config, PortDirectory directory, const RulePortal* portal);

  /// Self-healing variant: dials through `factory` and re-dials per `policy`
  /// after unexpected session loss; each re-establishment triggers a
  /// ROUTE-REFRESH resync followed by a reconciliation audit.
  BlackholingController(sim::EventQueue& queue, TransportFactory factory,
                        bgp::ReconnectPolicy policy, Config config, PortDirectory directory,
                        const RulePortal* portal);
  ~BlackholingController();
  BlackholingController(const BlackholingController&) = delete;
  BlackholingController& operator=(const BlackholingController&) = delete;

  void set_change_sink(ChangeSink sink) { sink_ = std::move(sink); }
  void set_installed_view(InstalledView view) { installed_view_ = std::move(view); }

  /// Recomputes the desired rule set from the RIB and emits the differences.
  /// Called periodically; exposed for tests and for immediate reaction.
  void process();

  /// Post-resync reconciliation audit: diffs the data plane (installed view)
  /// against the desired set, removing orphans and reinstalling missing
  /// rules. Runs automatically after reconnect resyncs; exposed for tests
  /// and for quiescence checks.
  struct ReconcileReport {
    std::uint64_t orphans_removed = 0;
    std::uint64_t missing_reinstalled = 0;
  };
  ReconcileReport reconcile();

  struct Stats {
    std::uint64_t updates_processed = 0;
    std::uint64_t signals_decoded = 0;
    std::uint64_t invalid_signals = 0;      ///< Malformed or unauthorized.
    std::uint64_t admission_rejected = 0;   ///< Over the per-port rule budget.
    std::uint64_t installs_emitted = 0;
    std::uint64_t removals_emitted = 0;
    /// Times the fail-safe flushed all rules after losing the route server.
    std::uint64_t failsafe_flushes = 0;
    // Reconciliation audit outcomes (post-resync convergence observability).
    std::uint64_t reconciliations = 0;
    std::uint64_t orphans_removed = 0;
    std::uint64_t missing_reinstalled = 0;
    // Diff-epoch shape: how many process() rounds ran the O(RIB) full rescan
    // vs the O(dirty prefixes) incremental delta.
    std::uint64_t epochs_full = 0;
    std::uint64_t epochs_incremental = 0;
  };

  /// Thin read over this controller's obs registry cells.
  [[nodiscard]] const Stats& stats() const {
    stats_.updates_processed = c_updates_processed_.value();
    stats_.signals_decoded = c_signals_decoded_.value();
    stats_.invalid_signals = c_invalid_signals_.value();
    stats_.admission_rejected = c_admission_rejected_.value();
    stats_.installs_emitted = c_installs_emitted_.value();
    stats_.removals_emitted = c_removals_emitted_.value();
    stats_.failsafe_flushes = c_failsafe_flushes_.value();
    stats_.reconciliations = c_reconciliations_.value();
    stats_.orphans_removed = c_orphans_removed_.value();
    stats_.missing_reinstalled = c_missing_reinstalled_.value();
    stats_.epochs_full = c_epochs_full_.value();
    stats_.epochs_incremental = c_epochs_incremental_.value();
    return stats_;
  }
  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] const bgp::Rib& rib() const { return rib_; }
  [[nodiscard]] bgp::Session& session() { return *reconnector_->session(); }
  /// Recovery state machine around the session (reconnect/damping stats).
  [[nodiscard]] bgp::ReconnectingSession& reconnector() { return *reconnector_; }
  /// Currently desired (admitted) rules, keyed by change identity.
  [[nodiscard]] const std::map<std::string, ConfigChange>& desired() const { return desired_; }

 private:
  struct DesiredRule {
    bgp::Asn member;
    filter::PortId port;
    filter::FilterRule rule;
    std::string trace;  ///< Signal-path trace id (the signaling prefix).
  };

  void on_update(const bgp::UpdateMessage& update);
  /// Derives the rules a single RIB route asks for.
  [[nodiscard]] std::vector<std::pair<std::string, DesiredRule>> derive_rules(
      const bgp::Route& route);
  void init_session(TransportFactory factory, bgp::ReconnectPolicy policy);
  /// Full O(RIB) recompute of the desired set (the paper's snapshot diff).
  void process_full();
  /// Batched per-epoch delta over the prefixes dirtied since the last round.
  /// Falls back to process_full() whenever admission control could bind —
  /// admission is sort-order-sensitive, so only a global pass decides it.
  void process_incremental();
  /// Emits the removal/install/modify changes moving `key` to `next`
  /// (nullptr: no longer desired), maintaining desired_ and port_counts_.
  /// Returns the number of changes emitted (0, 1, or 2).
  std::size_t emit_transition(const std::string& key, const DesiredRule* next);

  sim::EventQueue& queue_;
  Config config_;
  PortDirectory directory_;
  const RulePortal* portal_;
  std::unique_ptr<bgp::ReconnectingSession> reconnector_;
  std::unique_ptr<sim::PeriodicTask> processor_;
  bgp::Rib rib_;
  /// Signal routes already counted in stats (process() re-derives every
  /// round; stats must count each signaled route once).
  std::set<std::pair<net::Prefix4, bgp::PathId>> stats_counted_;
  /// key -> change currently believed installed (or queued to install).
  std::map<std::string, ConfigChange> desired_;
  /// Prefixes touched by updates since the last process() round: the unit of
  /// the batched diff epoch. All per-prefix deltas within one epoch coalesce
  /// into a single change-set emission.
  std::set<net::Prefix4> dirty_;
  /// Force the next epoch through the full rescan (initial sync, fail-safe
  /// flush, any RIB mutation that bypasses on_update()).
  bool need_full_ = true;
  /// Desired-rule count per port, mirrored from desired_ so the incremental
  /// path can detect a port nearing its admission budget without a rescan.
  std::map<filter::PortId, int> port_counts_;
  /// Ports that had at least one admission rejection during the last full
  /// pass: a rejected rule may be waiting in the RIB, so any churn on these
  /// ports must re-run global admission.
  std::set<filter::PortId> rejected_ports_;
  ChangeSink sink_;
  InstalledView installed_view_;
  /// Invalidates scheduled reconciliations when the controller dies.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  obs::Counter c_updates_processed_ =
      obs::registry().counter("core.controller.updates_processed");
  obs::Counter c_signals_decoded_ = obs::registry().counter("core.controller.signals_decoded");
  obs::Counter c_invalid_signals_ = obs::registry().counter("core.controller.invalid_signals");
  obs::Counter c_admission_rejected_ =
      obs::registry().counter("core.controller.admission_rejected");
  obs::Counter c_installs_emitted_ =
      obs::registry().counter("core.controller.installs_emitted");
  obs::Counter c_removals_emitted_ =
      obs::registry().counter("core.controller.removals_emitted");
  obs::Counter c_failsafe_flushes_ =
      obs::registry().counter("core.controller.failsafe_flushes");
  obs::Counter c_reconciliations_ = obs::registry().counter("core.controller.reconciliations");
  obs::Counter c_orphans_removed_ = obs::registry().counter("core.controller.orphans_removed");
  obs::Counter c_missing_reinstalled_ =
      obs::registry().counter("core.controller.missing_reinstalled");
  obs::Counter c_epochs_full_ = obs::registry().counter("core.controller.epochs_full");
  obs::Counter c_epochs_incremental_ =
      obs::registry().counter("core.controller.epochs_incremental");
  /// Changes emitted per non-empty diff epoch (batch size distribution).
  obs::Histogram h_epoch_changes_ = obs::registry().histogram(
      "core.controller.epoch_changes", obs::HistogramOptions{1.0, 2.0, 16});
  mutable Stats stats_;
};

}  // namespace stellar::core
