// Customer portal (paper §4.3: the blackholing-rule reference "can be
// predefined by the IXP or by the IXP member via a customer portal
// (self-service portal). Currently, the IXP offers a shared set of predefined
// blackholing rules for common attack patterns but custom blackholing rules
// can be defined as well").
//
// A portal entry is a match *template*: everything except the destination,
// which is always bound to the prefix the member announces the signal for —
// a member can never filter someone else's traffic.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "bgp/types.hpp"
#include "filter/rule.hpp"

namespace stellar::core {

struct MatchTemplate {
  std::string description;
  std::optional<net::IpProto> proto;
  std::optional<filter::PortRange> src_port;
  std::optional<filter::PortRange> dst_port;
  std::optional<net::Prefix4> src_prefix;
  std::optional<net::MacAddress> src_mac;

  /// Binds the template to a victim prefix.
  [[nodiscard]] filter::MatchCriteria bind(const net::Prefix4& victim) const;
};

class RulePortal {
 public:
  /// Loads the IXP's shared catalog of predefined rules for common
  /// amplification attack patterns (ids 1..N): NTP, DNS, memcached, LDAP,
  /// chargen, SSDP, fragments, all-UDP.
  RulePortal();

  /// Registers a member-defined rule; returns its id (usable in a
  /// kPredefined signal community by that member only).
  std::uint16_t define_custom_rule(bgp::Asn member, MatchTemplate rule);

  /// Resolves a rule id for a member: predefined ids are visible to all,
  /// custom ids only to their owner. nullptr if unknown/not visible.
  [[nodiscard]] const MatchTemplate* lookup(std::uint16_t id, bgp::Asn member) const;

  [[nodiscard]] std::size_t predefined_count() const { return predefined_.size(); }
  [[nodiscard]] const std::map<std::uint16_t, MatchTemplate>& predefined() const {
    return predefined_;
  }

 private:
  std::map<std::uint16_t, MatchTemplate> predefined_;
  std::map<std::uint16_t, std::pair<bgp::Asn, MatchTemplate>> custom_;
  std::uint16_t next_custom_id_ = 1000;  ///< Custom ids start above the catalog.
};

}  // namespace stellar::core
