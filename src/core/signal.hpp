// Advanced Blackholing signal codec over BGP extended communities
// (paper §4.2.1: "We choose BGP extended communities for signaling since
// extended communities provide a sufficiently large numbering space and allow
// us to define a distinct community namespace for blackholing rules").
//
// Wire mapping (two-octet-AS-specific extended community, RFC 4360 §3.1,
// AS = the IXP's ASN):
//   subtype 0x80 ("match"):  local_admin = kind(1 byte) | reserved | value(2 bytes)
//   subtype 0x81 ("action"): local_admin = shape rate in Mbps (0 = drop)
//
// The paper's §5.3 example "IXP:2:123 — 2 refers to UDP source traffic and
// 123 to port 123" maps to kind kUdpSrcPort (=2), value 123.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "bgp/types.hpp"
#include "filter/rule.hpp"
#include "util/result.hpp"

namespace stellar::core {

/// Stellar's extended-community subtypes inside the IXP namespace.
inline constexpr std::uint8_t kStellarMatchSubtype = 0x80;
inline constexpr std::uint8_t kStellarActionSubtype = 0x81;

/// Function selectors for the large-community encoding (data1 high byte).
inline constexpr std::uint32_t kStellarLargeMatchFunction = 0x80;
inline constexpr std::uint32_t kStellarLargeActionFunction = 0x81;

/// What a single match community selects. Values are the on-the-wire kind
/// byte; kUdpSrcPort = 2 matches the paper's "IXP:2:123" example.
enum class RuleKind : std::uint8_t {
  kDropAll = 0,      ///< Whole prefix (IXP-side RTBH; no member cooperation needed).
  kProtocol = 1,     ///< value = IP protocol number (e.g. 17 = all UDP).
  kUdpSrcPort = 2,   ///< value = UDP source port (amplification service port).
  kUdpDstPort = 3,
  kTcpSrcPort = 4,
  kTcpDstPort = 5,
  kPredefined = 10,  ///< value = rule id in the IXP's portal catalog.
};

[[nodiscard]] std::string_view ToString(RuleKind kind);

struct SignalRule {
  RuleKind kind = RuleKind::kDropAll;
  std::uint16_t value = 0;

  friend auto operator<=>(const SignalRule&, const SignalRule&) = default;
  [[nodiscard]] std::string str() const;
};

/// A full Advanced Blackholing signal: one or more match rules plus the
/// action. No action community (or rate 0) means drop; a rate means shape —
/// the telemetry mode of §5.3 ("shapes the traffic to a rate limit of
/// 200 Mbps for telemetry purposes").
struct Signal {
  std::vector<SignalRule> rules;
  std::optional<double> shape_rate_mbps;  ///< nullopt or 0 => drop.

  [[nodiscard]] bool is_shaping() const {
    return shape_rate_mbps.has_value() && *shape_rate_mbps > 0.0;
  }

  friend bool operator==(const Signal&, const Signal&) = default;
};

/// Encodes a signal into the extended communities to attach to the /32
/// announcement. The action field is a 32-bit integral Mbps rate on the wire,
/// so a set `shape_rate_mbps` must be a non-negative integral value that fits
/// in 32 bits; anything else (NaN, negative, fractional, overflowing) is an
/// error rather than a silent truncation.
[[nodiscard]] util::Result<std::vector<bgp::ExtendedCommunity>> EncodeSignal(
    std::uint16_t ixp_asn, const Signal& signal);

/// Extracts a Stellar signal from a route's extended communities.
/// Returns an empty-rules Signal if no Stellar communities are present.
/// Duplicate match communities deduplicate; duplicate action communities with
/// conflicting rates are an error (never silent last-wins).
[[nodiscard]] util::Result<Signal> DecodeSignal(std::uint16_t ixp_asn,
                                                std::span<const bgp::ExtendedCommunity> ecs);

/// True if any extended community belongs to the Stellar namespace of the IXP.
[[nodiscard]] bool HasStellarSignal(std::uint16_t ixp_asn,
                                    std::span<const bgp::ExtendedCommunity> ecs);

/// Large-community variant (RFC 8092) of the signal codec. Two-octet-AS
/// extended communities cannot carry a 4-byte IXP ASN in their AS field;
/// large communities give the full 32-bit namespace:
///   global_admin = IXP ASN,
///   data1        = function(8) << 24 | rule kind(8),
///   data2        = value (port / protocol / rate in Mbps).
/// Same rate-validity and duplicate-action semantics as the extended-community
/// codec above.
[[nodiscard]] util::Result<std::vector<bgp::LargeCommunity>> EncodeSignalLarge(
    std::uint32_t ixp_asn, const Signal& signal);
[[nodiscard]] util::Result<Signal> DecodeSignalLarge(
    std::uint32_t ixp_asn, std::span<const bgp::LargeCommunity> lcs);
[[nodiscard]] bool HasStellarSignalLarge(std::uint32_t ixp_asn,
                                         std::span<const bgp::LargeCommunity> lcs);

/// Expands a signal rule into data-plane match criteria against a victim
/// prefix. kPredefined rules are resolved by the caller via the portal and
/// rejected here.
[[nodiscard]] util::Result<filter::MatchCriteria> ToMatchCriteria(const SignalRule& rule,
                                                                  const net::Prefix4& victim);

}  // namespace stellar::core
