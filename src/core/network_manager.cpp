#include "core/network_manager.hpp"

#include <algorithm>
#include <cassert>

#include "obs/journal.hpp"
#include "obs/trace.hpp"

namespace stellar::core {

// ---------------------------------------------------------------------------
// QosConfigCompiler.

util::Result<void> QosConfigCompiler::apply(const ConfigChange& change) {
  if (change.op == ConfigChange::Op::kInstall) {
    auto id = router_.install_rule(change.port, change.rule);
    if (!id.ok()) return id.error();
    // Idempotent upsert: a reinstall for a known key (retry after a partial
    // failure, reconciliation replay) must not leak the old data-plane rule.
    if (const auto it = installed_.find(change.key); it != installed_.end()) {
      router_.remove_rule(it->second.first, it->second.second);
    }
    installed_[change.key] = {change.port, *id};
    return {};
  }
  const auto it = installed_.find(change.key);
  if (it == installed_.end()) {
    return util::MakeError("qos.unknown_rule", "no installed rule for key " + change.key);
  }
  const auto [port, rule_id] = it->second;
  installed_.erase(it);
  if (!router_.remove_rule(port, rule_id)) {
    return util::MakeError("qos.remove_failed", "rule id " + std::to_string(rule_id) +
                                                    " not present on port " +
                                                    std::to_string(port));
  }
  return {};
}

std::optional<filter::RuleId> QosConfigCompiler::rule_id(const std::string& key) const {
  const auto it = installed_.find(key);
  if (it == installed_.end()) return std::nullopt;
  return it->second.second;
}

// ---------------------------------------------------------------------------
// SdnConfigCompiler.

util::Result<void> SdnConfigCompiler::apply(const ConfigChange& change) {
  if (change.op == ConfigChange::Op::kInstall) {
    FlowEntry entry;
    entry.cookie = next_cookie_++;
    // Blackholing rules outrank the default forwarding pipeline; more
    // specific L4 matches outrank coarse protocol matches.
    entry.priority = static_cast<std::uint16_t>(
        100 + change.rule.match.l3l4_criteria_count());
    entry.match = change.rule.match;
    entry.action = change.rule.action;
    entry.meter_rate_mbps = change.rule.shape_rate_mbps;
    auto added = table_.add(std::move(entry));
    if (!added.ok()) return added.error();
    // Idempotent upsert: drop the superseded flow entry for this key.
    if (const auto it = cookies_.find(change.key); it != cookies_.end()) {
      table_.remove(it->second);
    }
    cookies_[change.key] = next_cookie_ - 1;
    return {};
  }
  const auto it = cookies_.find(change.key);
  if (it == cookies_.end()) {
    return util::MakeError("sdn.unknown_rule", "no flow entry for key " + change.key);
  }
  const std::uint64_t cookie = it->second;
  cookies_.erase(it);
  if (!table_.remove(cookie)) {
    return util::MakeError("sdn.remove_failed",
                           "cookie " + std::to_string(cookie) + " not in table");
  }
  return {};
}

// ---------------------------------------------------------------------------
// NetworkManager.

NetworkManager::NetworkManager(sim::EventQueue& queue, ConfigCompiler& compiler, Config config)
    : queue_(queue),
      compiler_(compiler),
      config_(std::move(config)),
      bucket_(config_.rate_per_s, config_.max_burst_size) {
  if (!config_.transient_classifier) {
    config_.transient_classifier = DefaultTransientClassifier;
  }
  stats_.waiting_times_s = util::RingLog<double>(config_.stats_retained_samples);
  stats_.failure_codes = util::RingLog<std::string>(config_.stats_retained_samples);
}

void NetworkManager::enqueue(ConfigChange change) {
  change.enqueued_at_s = queue_.now().count();
  change.attempt = 0;
  if (!change.trace.empty() && change.op == ConfigChange::Op::kInstall) {
    obs::tracer().mark(change.trace, "config_enqueued", change.enqueued_at_s);
  }
  if (config_.batch_apply) {
    coalesce_or_push(std::move(change));
  } else {
    pending_.push_back(std::move(change));
  }
  schedule_drain();
}

void NetworkManager::coalesce_or_push(ConfigChange change) {
  const auto idx = pending_index_.find(change.key);
  if (idx == pending_index_.end()) {
    pending_.push_back(std::move(change));
    pending_index_[pending_.back().key] = std::prev(pending_.end());
    return;
  }
  const auto node = idx->second;
  c_coalesced_.inc();
  if (node->op == ConfigChange::Op::kInstall && change.op == ConfigChange::Op::kRemove &&
      !believed_installed_.contains(change.key)) {
    // install -> remove for a rule the hardware never saw: both evaporate.
    pending_.erase(node);
    pending_index_.erase(idx);
    return;
  }
  // Otherwise the latest intent replaces the queued change in place:
  // remove -> install collapses to the install (compiler installs are
  // idempotent upserts), install -> install and remove -> remove keep the
  // newest payload. Queue position is preserved.
  *node = std::move(change);
}

std::vector<ConfigChange> NetworkManager::in_flight() const {
  std::vector<ConfigChange> out(pending_.begin(), pending_.end());
  for (const auto& [ticket, change] : backoff_changes_) out.push_back(change);
  return out;
}

void NetworkManager::handle_failure(ConfigChange change, const util::Error& error) {
  // Exactly-one accounting: each failed attempt increments `failed` plus one
  // class counter, and then either `retries` or one terminal counter
  // (`permanent` dead-letters directly, an exhausted transient increments
  // `retry_budget_exhausted`) — never both, so the Stats invariants hold.
  c_failed_.inc();
  stats_.failure_codes.push_back(error.code);
  const bool transient = config_.transient_classifier(error);
  if (transient) {
    c_transient_failures_.inc();
  } else {
    c_permanent_failures_.inc();
  }
  if (!transient || change.attempt >= config_.max_attempts) {
    // Permanent, or the attempt budget is spent: dead-letter the change so
    // operators can inspect what the hardware refused.
    if (transient) c_retry_budget_exhausted_.inc();
    c_dead_lettered_.inc();
    obs::journal().append(queue_.now().count(), obs::EventKind::kRuleDeadLettered, change.key,
                          error.code + " attempt=" + std::to_string(change.attempt));
    dead_letter_.push_back(std::move(change));
    return;
  }
  // Transient: re-enter the rate-limited queue after an exponential backoff.
  double backoff = config_.retry_backoff_s;
  for (int i = 1; i < change.attempt; ++i) backoff *= config_.retry_backoff_multiplier;
  backoff = std::min(backoff, config_.retry_backoff_max_s);
  c_retries_.inc();
  obs::journal().append(queue_.now().count(), obs::EventKind::kRuleRetry, change.key,
                        error.code + " attempt=" + std::to_string(change.attempt));
  const std::uint64_t ticket = next_backoff_ticket_++;
  backoff_changes_.emplace(ticket, std::move(change));
  queue_.schedule_after(sim::Seconds(backoff), [this, ticket] {
    const auto it = backoff_changes_.find(ticket);
    if (it == backoff_changes_.end()) return;
    ConfigChange retry = std::move(it->second);
    backoff_changes_.erase(it);
    if (config_.batch_apply && pending_index_.contains(retry.key)) {
      // A newer change for this key was queued while the retry sat out its
      // backoff; the newer intent supersedes the failed attempt.
      c_coalesced_.inc();
    } else if (config_.batch_apply) {
      pending_.push_back(std::move(retry));
      pending_index_[pending_.back().key] = std::prev(pending_.end());
    } else {
      pending_.push_back(std::move(retry));
    }
    schedule_drain();
  });
}

void NetworkManager::schedule_drain() {
  if (drain_scheduled_ || pending_.empty()) return;
  drain_scheduled_ = true;
  const double now = queue_.now().count();
  double when = bucket_.time_available(1.0, now);
  // Liveness guard: if a previous drain at this very timestamp could not
  // consume (floating-point refill shortfall), force strictly-later retry.
  if (when <= last_failed_drain_s_) when = last_failed_drain_s_ + 1e-3;
  queue_.schedule_at(sim::Seconds(when), [this] {
    drain_scheduled_ = false;
    if (pending_.empty()) return;
    const double now_s = queue_.now().count();
    if (!bucket_.try_consume(1.0, now_s)) {
      last_failed_drain_s_ = now_s;
      schedule_drain();  // Tokens not there yet; re-arm strictly later.
      return;
    }
    if (config_.batch_apply) {
      drain_batch(now_s);
    } else {
      drain_one(now_s);
    }
    schedule_drain();
  });
}

void NetworkManager::drain_one(double now_s) {
  ConfigChange change = std::move(pending_.front());
  pending_.pop_front();
  // Waiting time is recorded for the first attempt only: retries would
  // double-count a change and distort the Fig. 10b percentiles.
  if (change.attempt == 0) {
    stats_.waiting_times_s.push_back(now_s - change.enqueued_at_s);
    wait_hist_.observe(now_s - change.enqueued_at_s);
  }
  ++change.attempt;
  const auto applied = compiler_.apply(change);
  settle_apply(std::move(change), applied, now_s);
}

void NetworkManager::drain_batch(double now_s) {
  // One token admits every queued change of the front change's port, FIFO
  // within the port, through a single compiler invocation.
  const filter::PortId port = pending_.front().port;
  std::vector<ConfigChange> batch;
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->port != port) {
      ++it;
      continue;
    }
    pending_index_.erase(it->key);
    batch.push_back(std::move(*it));
    it = pending_.erase(it);
  }
  for (auto& change : batch) {
    if (change.attempt == 0) {
      stats_.waiting_times_s.push_back(now_s - change.enqueued_at_s);
      wait_hist_.observe(now_s - change.enqueued_at_s);
    }
    ++change.attempt;
  }
  c_batches_.inc();
  h_batch_size_.observe(static_cast<double>(batch.size()));
  const auto results = compiler_.apply_batch(batch);
  assert(results.size() == batch.size() && "apply_batch must return one result per change");
  for (std::size_t i = 0; i < batch.size(); ++i) {
    settle_apply(std::move(batch[i]), results[i], now_s);
  }
}

void NetworkManager::settle_apply(ConfigChange change, const util::Result<void>& applied,
                                  double now_s) {
  if (applied.ok()) {
    c_applied_.inc();
    const bool install = change.op == ConfigChange::Op::kInstall;
    if (install) {
      believed_installed_.insert(change.key);
    } else {
      believed_installed_.erase(change.key);
    }
    obs::journal().append(now_s,
                          install ? obs::EventKind::kRuleInstalled
                                  : obs::EventKind::kRuleRemoved,
                          change.key, change.str());
    if (install && !change.trace.empty()) {
      obs::tracer().mark(change.trace, "config_applied", now_s);
    }
  } else {
    handle_failure(std::move(change), applied.error());
  }
}

}  // namespace stellar::core
