#include "core/network_manager.hpp"

namespace stellar::core {

// ---------------------------------------------------------------------------
// QosConfigCompiler.

util::Result<void> QosConfigCompiler::apply(const ConfigChange& change) {
  if (change.op == ConfigChange::Op::kInstall) {
    auto id = router_.install_rule(change.port, change.rule);
    if (!id.ok()) return id.error();
    installed_[change.key] = {change.port, *id};
    return {};
  }
  const auto it = installed_.find(change.key);
  if (it == installed_.end()) {
    return util::MakeError("qos.unknown_rule", "no installed rule for key " + change.key);
  }
  const auto [port, rule_id] = it->second;
  installed_.erase(it);
  if (!router_.remove_rule(port, rule_id)) {
    return util::MakeError("qos.remove_failed", "rule id " + std::to_string(rule_id) +
                                                    " not present on port " +
                                                    std::to_string(port));
  }
  return {};
}

std::optional<filter::RuleId> QosConfigCompiler::rule_id(const std::string& key) const {
  const auto it = installed_.find(key);
  if (it == installed_.end()) return std::nullopt;
  return it->second.second;
}

// ---------------------------------------------------------------------------
// SdnConfigCompiler.

util::Result<void> SdnConfigCompiler::apply(const ConfigChange& change) {
  if (change.op == ConfigChange::Op::kInstall) {
    FlowEntry entry;
    entry.cookie = next_cookie_++;
    // Blackholing rules outrank the default forwarding pipeline; more
    // specific L4 matches outrank coarse protocol matches.
    entry.priority = static_cast<std::uint16_t>(
        100 + change.rule.match.l3l4_criteria_count());
    entry.match = change.rule.match;
    entry.action = change.rule.action;
    entry.meter_rate_mbps = change.rule.shape_rate_mbps;
    auto added = table_.add(std::move(entry));
    if (!added.ok()) return added.error();
    cookies_[change.key] = next_cookie_ - 1;
    return {};
  }
  const auto it = cookies_.find(change.key);
  if (it == cookies_.end()) {
    return util::MakeError("sdn.unknown_rule", "no flow entry for key " + change.key);
  }
  const std::uint64_t cookie = it->second;
  cookies_.erase(it);
  if (!table_.remove(cookie)) {
    return util::MakeError("sdn.remove_failed",
                           "cookie " + std::to_string(cookie) + " not in table");
  }
  return {};
}

// ---------------------------------------------------------------------------
// NetworkManager.

NetworkManager::NetworkManager(sim::EventQueue& queue, ConfigCompiler& compiler, Config config)
    : queue_(queue),
      compiler_(compiler),
      config_(config),
      bucket_(config.rate_per_s, config.max_burst_size) {}

void NetworkManager::enqueue(ConfigChange change) {
  change.enqueued_at_s = queue_.now().count();
  pending_.push_back(std::move(change));
  schedule_drain();
}

void NetworkManager::schedule_drain() {
  if (drain_scheduled_ || pending_.empty()) return;
  drain_scheduled_ = true;
  const double now = queue_.now().count();
  double when = bucket_.time_available(1.0, now);
  // Liveness guard: if a previous drain at this very timestamp could not
  // consume (floating-point refill shortfall), force strictly-later retry.
  if (when <= last_failed_drain_s_) when = last_failed_drain_s_ + 1e-3;
  queue_.schedule_at(sim::Seconds(when), [this] {
    drain_scheduled_ = false;
    if (pending_.empty()) return;
    const double now_s = queue_.now().count();
    if (!bucket_.try_consume(1.0, now_s)) {
      last_failed_drain_s_ = now_s;
      schedule_drain();  // Tokens not there yet; re-arm strictly later.
      return;
    }
    ConfigChange change = std::move(pending_.front());
    pending_.pop_front();
    stats_.waiting_times_s.push_back(now_s - change.enqueued_at_s);
    auto applied = compiler_.apply(change);
    if (applied.ok()) {
      ++stats_.applied;
    } else {
      ++stats_.failed;
      stats_.failure_codes.push_back(applied.error().code);
    }
    schedule_drain();
  });
}

}  // namespace stellar::core
