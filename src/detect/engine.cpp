#include "detect/engine.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/journal.hpp"

namespace stellar::detect {

AutoMitigator::AutoMitigator(ixp::MemberRouter& member, const ixp::RouteServer& route_server,
                             Config config)
    : member_(member), route_server_(route_server), cfg_(std::move(config)) {}

void AutoMitigator::observe_bin(std::span<const net::FlowSample> delivered, double t_s,
                                double bin_s) {
  ++stats_.bins_observed;
  const net::Prefix4 space = member_.info().address_space;

  // Phase 1: fold the bin into per-victim accumulators and sketches.
  for (const auto& sample : delivered) {
    if (!space.contains(sample.key.dst_ip)) continue;
    const std::uint32_t dst = sample.key.dst_ip.value();
    auto it = victims_.find(dst);
    if (it == victims_.end()) {
      if (victims_.size() >= cfg_.max_tracked_victims) continue;
      it = victims_.emplace(dst, VictimState(cfg_)).first;
    }
    VictimState& v = it->second;
    v.bin_bytes += sample.bytes;
    v.last_traffic_s = t_s;
    if (sample.key.proto == net::IpProto::kUdp) {
      v.bin_udp_bytes += sample.bytes;
      v.udp_src_ports.add(sample.key.src_port, sample.bytes);
      v.entropy.add(sample.key.src_port, sample.bytes);
    } else if (sample.key.proto == net::IpProto::kTcp) {
      v.bin_tcp_bytes += sample.bytes;
    }
    v.cms.add(FlowAggregateKey(dst, static_cast<std::uint8_t>(sample.key.proto),
                               sample.key.src_port),
              sample.bytes);
  }

  // Phase 2: run every tracked victim's detector (zero-volume bins included —
  // a mitigated or ended attack must be able to clear), then act.
  const bool decay = ++bins_since_decay_ >= cfg_.decay_every_bins;
  if (decay) bins_since_decay_ = 0;
  std::vector<std::uint32_t> evict;
  for (auto& [dst_bits, v] : victims_) {
    const net::IPv4Address dst(dst_bits);
    const double mbps = static_cast<double>(v.bin_bytes) * 8.0 / 1e6 / bin_s;
    const auto decision = v.detector.observe(t_s, mbps);

    if (decision.triggered_now) {
      const std::size_t budget =
          cfg_.tcam_budget_fn ? cfg_.tcam_budget_fn() : cfg_.synthesizer.max_rules;
      const TrafficProfile profile =
          build_profile(dst, v, decision.baseline_mbps, bin_s);
      const auto plan = RuleSynthesizer(cfg_.synthesizer).synthesize(profile, budget);
      if (plan.empty()) {
        ++stats_.empty_plans;
      } else {
        ++stats_.detections;
        stats_.last_detection_s = t_s;
        obs::journal().append(t_s, obs::EventKind::kDetectorTriggered, dst.str(),
                              "rules=" + std::to_string(plan.rules.size()));
        v.record = MitigationRecord{};
        v.record.triggered_at_s = t_s;
        v.record.rules = plan.rules;
        v.record.covered_share = plan.covered_share;
        v.record.fallback_proto = plan.fallback_proto;
        signal(dst, v, /*drop=*/cfg_.shape_rate_mbps <= 0.0, t_s);
      }
    } else if (v.record.phase == Phase::kShaping &&
               v.detector.state() == VolumeDetector::State::kTriggered &&
               t_s - v.record.shape_signaled_at_s >= cfg_.escalate_after_s) {
      // The attack survived the telemetry phase: escalate to drop, same rules.
      ++stats_.escalations;
      obs::journal().append(t_s, obs::EventKind::kMitigationEscalated, dst.str());
      signal(dst, v, /*drop=*/true, t_s);
    }

    // Withdrawal: rules stay while either the detector still sees the attack
    // in delivered traffic or the rule counters still match attack bytes.
    if (v.record.phase != Phase::kIdle && !decision.triggered_now) {
      const double matched = matched_rate_mbps(dst, v, bin_s);
      const bool quiet = v.detector.state() != VolumeDetector::State::kTriggered &&
                         matched < cfg_.matched_quiet_mbps;
      if (quiet) {
        if (v.quiet_since_s < 0.0) v.quiet_since_s = t_s;
        if (t_s - v.quiet_since_s >= cfg_.withdraw_quiet_s) {
          core::WithdrawAdvancedBlackholing(member_, net::Prefix4::HostRoute(dst));
          ++stats_.withdrawals;
          stats_.last_withdrawal_s = t_s;
          obs::journal().append(t_s, obs::EventKind::kDetectorCleared, dst.str(),
                                "quiet_s=" + std::to_string(t_s - v.quiet_since_s));
          obs::journal().append(t_s, obs::EventKind::kMitigationWithdrawn, dst.str());
          v.record = MitigationRecord{};
          v.last_matched.clear();
          v.quiet_since_s = -1.0;
        }
      } else {
        v.quiet_since_s = -1.0;
      }
    }

    // Bin bookkeeping: close the entropy bin, decay sketches, reset counters.
    v.entropy.rotate();
    if (decay) {
      v.udp_src_ports.halve();
      v.cms.halve();
    }
    v.bin_bytes = v.bin_udp_bytes = v.bin_tcp_bytes = 0;
    if (v.record.phase == Phase::kIdle &&
        t_s - v.last_traffic_s > cfg_.evict_idle_after_s) {
      evict.push_back(dst_bits);
    }
  }
  for (const std::uint32_t dst : evict) victims_.erase(dst);
}

TrafficProfile AutoMitigator::build_profile(net::IPv4Address dst, const VictimState& v,
                                            double baseline_mbps, double bin_s) const {
  TrafficProfile profile;
  profile.victim = dst;
  profile.total_mbps = static_cast<double>(v.bin_bytes) * 8.0 / 1e6 / bin_s;
  profile.udp_mbps = static_cast<double>(v.bin_udp_bytes) * 8.0 / 1e6 / bin_s;
  profile.tcp_mbps = static_cast<double>(v.bin_tcp_bytes) * 8.0 / 1e6 / bin_s;
  profile.baseline_mbps = baseline_mbps;
  profile.udp_window_bytes = v.udp_src_ports.total();
  profile.udp_src_port_entropy = v.entropy.normalized();
  profile.udp_src_ports = v.udp_src_ports.top(v.udp_src_ports.size());
  // Tighten each space-saving upper bound with the count-min estimate: both
  // overestimate, so the minimum is still an upper bound on the true count.
  for (auto& entry : profile.udp_src_ports) {
    const std::uint64_t cms_est = v.cms.estimate(
        FlowAggregateKey(dst.value(), static_cast<std::uint8_t>(net::IpProto::kUdp),
                         static_cast<std::uint16_t>(entry.key)));
    entry.count = std::min(entry.count, cms_est);
  }
  std::sort(profile.udp_src_ports.begin(), profile.udp_src_ports.end(),
            [](const auto& a, const auto& b) { return a.count > b.count; });
  return profile;
}

void AutoMitigator::signal(net::IPv4Address dst, VictimState& v, bool drop, double t_s) {
  core::Signal sig;
  sig.rules = v.record.rules;
  if (!drop) sig.shape_rate_mbps = cfg_.shape_rate_mbps;
  core::SignalAdvancedBlackholing(member_, route_server_, net::Prefix4::HostRoute(dst), sig);
  ++stats_.signals_sent;
  stats_.rules_emitted += sig.rules.size();
  if (drop) {
    v.record.phase = Phase::kDropping;
    v.record.drop_signaled_at_s = t_s;
  } else {
    v.record.phase = Phase::kShaping;
    v.record.shape_signaled_at_s = t_s;
  }
  // Re-announcing replaces the installed rules: the old counters disappear,
  // so the delta baseline must restart.
  v.last_matched.clear();
  v.quiet_since_s = -1.0;
}

double AutoMitigator::matched_rate_mbps(net::IPv4Address dst, VictimState& v, double bin_s) {
  if (!cfg_.telemetry_fn) return 0.0;
  std::uint64_t delta = 0;
  std::unordered_map<std::string, std::uint64_t> seen;
  for (const auto& record : cfg_.telemetry_fn()) {
    const auto& match = record.rule.match;
    if (!match.dst_prefix || !match.dst_prefix->contains(dst)) continue;
    const std::uint64_t now = record.counters.matched_bytes;
    const auto it = v.last_matched.find(record.key);
    if (it != v.last_matched.end() && now >= it->second) delta += now - it->second;
    seen[record.key] = now;
  }
  v.last_matched = std::move(seen);
  return static_cast<double>(delta) * 8.0 / 1e6 / bin_s;
}

std::optional<AutoMitigator::MitigationRecord> AutoMitigator::mitigation(
    net::IPv4Address dst) const {
  const auto it = victims_.find(dst.value());
  if (it == victims_.end() || it->second.record.phase == Phase::kIdle) return std::nullopt;
  return it->second.record;
}

AutoMitigator& EnableAutoMitigation(core::StellarSystem& system, bgp::Asn member_asn,
                                    AutoMitigator::Config config) {
  ixp::MemberRouter* member = system.ixp().member(member_asn);
  if (member == nullptr) {
    throw std::invalid_argument("EnableAutoMitigation: unknown member ASN");
  }
  if (!config.tcam_budget_fn) {
    config.tcam_budget_fn = [&system, member_asn]() -> std::size_t {
      std::size_t used = 0;
      for (const auto& [key, change] : system.controller().desired()) {
        if (change.member == member_asn) ++used;
      }
      const int limit = system.controller().config().max_rules_per_port;
      return used >= static_cast<std::size_t>(limit)
                 ? 0
                 : static_cast<std::size_t>(limit) - used;
    };
  }
  if (!config.telemetry_fn) {
    config.telemetry_fn = [&system, member_asn]() {
      return system.telemetry(member_asn);
    };
  }
  auto engine = std::make_shared<AutoMitigator>(*member, system.ixp().route_server(),
                                                std::move(config));
  AutoMitigator& ref = *engine;
  system.attach_observer(std::move(engine));
  return ref;
}

}  // namespace stellar::detect
