// AutoMitigator: the closed-loop engine that turns Stellar from a filtering
// primitive into an automated DoS defense (paper §6 future work; AITF-style
// real-time filter synthesis). It watches the delivered-traffic stream of one
// protected member, maintains O(1)-memory sketches per victim /32, detects
// volumetric anomalies against an EWMA/MAD baseline, synthesizes the minimal
// L3-L4 rule set, and signals it through the ordinary member signaling path —
// extended-community codec, route server, controller ownership validation,
// token-bucket config queue, QoS compile — exactly as a human operator would.
//
// Escalation follows the paper's Fig. 10c timeline: shape first (200 Mbps
// telemetry rate keeps an attack sample visible), then drop once the attack
// persists; withdraw only after the rule telemetry shows the attack is gone.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/stellar.hpp"
#include "detect/detector.hpp"
#include "detect/sketch.hpp"
#include "detect/synthesizer.hpp"
#include "ixp/member.hpp"
#include "ixp/route_server.hpp"

namespace stellar::detect {

class AutoMitigator : public core::TrafficObserver {
 public:
  /// Mitigation lifecycle of one victim /32.
  enum class Phase : std::uint8_t {
    kIdle,      ///< No rules signaled.
    kShaping,   ///< Shape signal active (telemetry phase).
    kDropping,  ///< Escalated to drop.
  };

  struct Config {
    VolumeDetector::Config detector{};
    RuleSynthesizer::Config synthesizer{};
    /// Telemetry shaping rate of the first escalation stage (paper §5.3 uses
    /// 200 Mbps). <= 0 signals drop immediately on detection.
    double shape_rate_mbps = 200.0;
    /// Shape -> drop once the detector has stayed triggered this long.
    double escalate_after_s = 60.0;
    /// Withdraw after the rules' matched rate stays below matched_quiet_mbps
    /// and the detector is clear for this long.
    double withdraw_quiet_s = 60.0;
    double matched_quiet_mbps = 5.0;
    /// Per-victim sketch sizing.
    std::size_t heavy_hitter_capacity = 64;
    std::size_t entropy_window_bins = 6;
    std::size_t sketch_width = 1024;
    std::size_t sketch_depth = 4;
    /// Sketches are halved (exponential decay) every this many bins so stale
    /// traffic cannot dominate a later synthesis.
    std::size_t decay_every_bins = 6;
    /// Victim-state table bound and idle eviction horizon.
    std::size_t max_tracked_victims = 64;
    double evict_idle_after_s = 600.0;
    /// Remaining admission-control rule budget for the member's port.
    /// Defaults to the synthesizer's max_rules when unset.
    std::function<std::size_t()> tcam_budget_fn;
    /// Rule telemetry source (StellarSystem::telemetry for this member);
    /// without it, withdrawal falls back to detector state alone.
    std::function<std::vector<core::StellarSystem::TelemetryRecord>()> telemetry_fn;
  };

  AutoMitigator(ixp::MemberRouter& member, const ixp::RouteServer& route_server,
                Config config);

  /// Feeds one bin of delivered traffic (any mix of destinations; samples
  /// outside the member's address space are ignored).
  void observe_bin(std::span<const net::FlowSample> delivered, double t_s,
                   double bin_s) override;

  struct Stats {
    std::uint64_t bins_observed = 0;
    std::uint64_t detections = 0;
    std::uint64_t escalations = 0;
    std::uint64_t withdrawals = 0;
    std::uint64_t signals_sent = 0;    ///< Announcements (shape + drop re-announcements).
    std::uint64_t rules_emitted = 0;   ///< Match rules across all signals.
    std::uint64_t empty_plans = 0;     ///< Detections the synthesizer could not cover.
    double last_detection_s = -1.0;
    double last_withdrawal_s = -1.0;
  };

  /// Introspection for benches and tests.
  struct MitigationRecord {
    Phase phase = Phase::kIdle;
    double triggered_at_s = -1.0;
    double shape_signaled_at_s = -1.0;
    double drop_signaled_at_s = -1.0;
    std::vector<core::SignalRule> rules;
    double covered_share = 0.0;
    bool fallback_proto = false;
  };

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::optional<MitigationRecord> mitigation(net::IPv4Address dst) const;
  [[nodiscard]] std::size_t tracked_victims() const { return victims_.size(); }
  [[nodiscard]] const Config& config() const { return cfg_; }

 private:
  struct VictimState {
    explicit VictimState(const Config& cfg)
        : detector(cfg.detector),
          udp_src_ports(cfg.heavy_hitter_capacity),
          entropy(cfg.entropy_window_bins),
          cms(cfg.sketch_width, cfg.sketch_depth) {}

    VolumeDetector detector;
    SpaceSaving udp_src_ports;
    WindowedEntropy entropy;
    CountMinSketch cms;

    // Current-bin accumulators, reset after every observe_bin.
    std::uint64_t bin_bytes = 0;
    std::uint64_t bin_udp_bytes = 0;
    std::uint64_t bin_tcp_bytes = 0;

    MitigationRecord record;
    /// Cumulative matched_bytes last seen per telemetry key (delta tracking).
    std::unordered_map<std::string, std::uint64_t> last_matched;
    double quiet_since_s = -1.0;
    double last_traffic_s = 0.0;
  };

  [[nodiscard]] TrafficProfile build_profile(net::IPv4Address dst, const VictimState& state,
                                             double baseline_mbps, double bin_s) const;
  void signal(net::IPv4Address dst, VictimState& state, bool drop, double t_s);
  /// Matched-byte rate (Mbps) of this victim's installed rules over the bin.
  [[nodiscard]] double matched_rate_mbps(net::IPv4Address dst, VictimState& state,
                                         double bin_s);

  ixp::MemberRouter& member_;
  const ixp::RouteServer& route_server_;
  Config cfg_;
  std::unordered_map<std::uint32_t, VictimState> victims_;  ///< Keyed by dst IPv4 bits.
  std::uint64_t bins_since_decay_ = 0;
  Stats stats_;
};

/// Wires an AutoMitigator for `member_asn` into `system`: resolves the member
/// router, derives the TCAM rule budget from the controller's admission
/// config, connects rule telemetry, and attaches the engine as a traffic
/// observer. Returns the engine for introspection; it stays owned by the
/// system's observer list.
AutoMitigator& EnableAutoMitigation(core::StellarSystem& system, bgp::Asn member_asn,
                                    AutoMitigator::Config config = {});

}  // namespace stellar::detect
