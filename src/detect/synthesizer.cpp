#include "detect/synthesizer.hpp"

#include <algorithm>

#include "net/ports.hpp"

namespace stellar::detect {

namespace {

bool IsKnownAmplifierPort(std::uint16_t port) {
  for (const auto& svc : net::kAmplificationServices) {
    if (svc.udp_port == port) return true;
  }
  return false;
}

}  // namespace

RuleSynthesizer::Plan RuleSynthesizer::synthesize(const TrafficProfile& profile,
                                                  std::size_t budget) const {
  Plan plan;
  if (budget == 0) return plan;
  const double attack_mbps = std::max(profile.total_mbps - profile.baseline_mbps, 0.0);
  if (attack_mbps <= 0.0) return plan;

  const std::size_t max_rules = std::min(budget, cfg_.max_rules);

  // Candidate amplification signatures: heavy-hitter UDP source ports with a
  // non-noise share of the windowed UDP bytes. Skipped entirely when the
  // source-port distribution is too dispersed to be a reflection signature.
  if (profile.udp_window_bytes > 0 &&
      profile.udp_src_port_entropy <= cfg_.max_signature_entropy) {
    std::vector<SpaceSaving::Entry> candidates;
    for (const auto& entry : profile.udp_src_ports) {
      const double share =
          static_cast<double>(entry.count) / static_cast<double>(profile.udp_window_bytes);
      if (share >= cfg_.min_port_share) candidates.push_back(entry);
    }
    if (cfg_.prefer_known_amplifiers) {
      std::stable_partition(candidates.begin(), candidates.end(), [](const auto& e) {
        return IsKnownAmplifierPort(static_cast<std::uint16_t>(e.key));
      });
    }
    double covered_mbps = 0.0;
    for (const auto& entry : candidates) {
      if (plan.rules.size() >= max_rules) break;
      const double share =
          static_cast<double>(entry.count) / static_cast<double>(profile.udp_window_bytes);
      plan.rules.push_back(
          {core::RuleKind::kUdpSrcPort, static_cast<std::uint16_t>(entry.key)});
      covered_mbps += share * profile.udp_mbps;
      if (covered_mbps >= cfg_.coverage_target * attack_mbps) break;
    }
    plan.covered_share = std::min(covered_mbps / attack_mbps, 1.0);
    if (!plan.rules.empty() && plan.covered_share >= cfg_.coverage_target) return plan;
  }

  // Fallback: one protocol-wide rule on the dominant protocol, if that
  // protocol actually carries the excess. Coarser collateral (all UDP towards
  // the victim is shaped/dropped), but a single TCAM entry.
  const bool udp_dominant = profile.udp_mbps >= profile.tcp_mbps;
  const double dominant_mbps = udp_dominant ? profile.udp_mbps : profile.tcp_mbps;
  if (dominant_mbps >= cfg_.coverage_target * attack_mbps) {
    plan.rules.clear();
    plan.rules.push_back({core::RuleKind::kProtocol,
                          static_cast<std::uint16_t>(udp_dominant ? net::IpProto::kUdp
                                                                  : net::IpProto::kTcp)});
    plan.covered_share = std::min(dominant_mbps / attack_mbps, 1.0);
    plan.fallback_proto = true;
    return plan;
  }

  // Neither signatures nor a single protocol explains the excess: return the
  // best-effort port signatures (possibly empty) rather than blackholing the
  // whole prefix — benign collateral is the invariant we refuse to break.
  return plan;
}

}  // namespace stellar::detect
