// Streaming sketches for attack detection (paper §6 leaves "combining
// Stellar with DDoS detection" as future work; AITF-style filter synthesis
// needs per-victim traffic profiles that fit in O(1) memory per port):
//   - CountMinSketch with conservative update: per-(dst, proto, src-port)
//     byte counting. Never underestimates; overestimation bounded by
//     eps * total with probability >= 1 - delta.
//   - SpaceSaving: deterministic heavy-hitter tracking with per-entry error
//     bounds (any key with true count > total/capacity is guaranteed present).
//   - WindowedEntropy: Shannon entropy of a byte-weighted distribution over a
//     sliding window of bins. Amplification floods collapse the UDP source
//     port entropy towards 0 (all bytes from one service port).
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

namespace stellar::detect {

/// Composite sketch key for per-(dst IP, proto, src port) byte counting:
/// dst in the high 32 bits, protocol next, source port in the low 16 bits.
[[nodiscard]] constexpr std::uint64_t FlowAggregateKey(std::uint32_t dst_ip,
                                                       std::uint8_t proto,
                                                       std::uint16_t src_port) {
  return (static_cast<std::uint64_t>(dst_ip) << 24) |
         (static_cast<std::uint64_t>(proto) << 16) | src_port;
}

/// Count-min sketch with conservative update (Estan & Varghese): on add, only
/// the cells that equal the current minimum estimate are raised, which keeps
/// the one-sided error (estimate >= true count) while tightening the
/// overestimation considerably on skewed streams.
class CountMinSketch {
 public:
  CountMinSketch(std::size_t width, std::size_t depth, std::uint64_t seed = 1);

  /// Sizes the sketch for estimate(k) <= count(k) + eps * total() with
  /// probability >= 1 - delta: width = ceil(e / eps), depth = ceil(ln(1/delta)).
  static CountMinSketch ForError(double eps, double delta, std::uint64_t seed = 1);

  void add(std::uint64_t key, std::uint64_t count);
  [[nodiscard]] std::uint64_t estimate(std::uint64_t key) const;

  /// Total count added since construction / last clear (halved by halve()).
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::size_t width() const { return width_; }
  [[nodiscard]] std::size_t depth() const { return depth_; }

  /// Exponential decay: halves every cell (and the total), so long-running
  /// engines forget stale traffic while preserving the no-underestimate
  /// property relative to the equally-decayed exact counts.
  void halve();
  void clear();

 private:
  [[nodiscard]] std::size_t cell(std::size_t row, std::uint64_t key) const;

  std::size_t width_;
  std::size_t depth_;
  std::uint64_t seed_;
  std::uint64_t total_ = 0;
  std::vector<std::uint64_t> table_;  ///< depth_ rows of width_ cells.
};

/// Space-saving heavy hitter tracker (Metwally et al.): at most `capacity`
/// monitored keys; when full, the minimum-count entry is evicted and its
/// count becomes the newcomer's error bound. Guarantees: reported count is in
/// [true, true + error], and every key with true count > total/capacity is
/// monitored.
class SpaceSaving {
 public:
  explicit SpaceSaving(std::size_t capacity);

  void add(std::uint64_t key, std::uint64_t count);

  struct Entry {
    std::uint64_t key = 0;
    std::uint64_t count = 0;  ///< Upper bound on the true count.
    std::uint64_t error = 0;  ///< count - error is a lower bound.
  };

  /// Top-k entries by count, descending (k > size() returns all).
  [[nodiscard]] std::vector<Entry> top(std::size_t k) const;
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t total() const { return total_; }

  void halve();
  void clear();

 private:
  std::size_t capacity_;
  std::uint64_t total_ = 0;
  std::vector<Entry> entries_;
  std::unordered_map<std::uint64_t, std::size_t> index_;  ///< key -> entries_ slot.
};

/// Byte-weighted Shannon entropy of a categorical distribution (e.g. UDP
/// source ports) over a sliding window of the last `window_bins` bins.
class WindowedEntropy {
 public:
  explicit WindowedEntropy(std::size_t window_bins);

  /// Adds weight to a category in the current bin.
  void add(std::uint16_t category, std::uint64_t weight);

  /// Closes the current bin and opens a new one; bins older than the window
  /// fall out of the aggregate.
  void rotate();

  /// Shannon entropy (bits) of the windowed distribution; 0 for empty/single.
  [[nodiscard]] double entropy_bits() const;

  /// Entropy normalized by log2(#distinct categories) into [0, 1]; an empty
  /// window or a single category yields 0 (fully concentrated).
  [[nodiscard]] double normalized() const;

  [[nodiscard]] std::size_t distinct() const { return aggregate_.size(); }
  [[nodiscard]] std::uint64_t total() const { return total_; }

  void clear();

 private:
  std::size_t window_bins_;
  std::deque<std::unordered_map<std::uint16_t, std::uint64_t>> bins_;
  std::unordered_map<std::uint16_t, std::uint64_t> aggregate_;
  std::uint64_t total_ = 0;
};

}  // namespace stellar::detect
