#include "detect/detector.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace stellar::detect {

VolumeDetector::VolumeDetector(Config config) : cfg_(config) {
  cooldown_until_ = -std::numeric_limits<double>::infinity();
}

void VolumeDetector::learn(double mbps) {
  if (bins_seen_ == 0) {
    baseline_ = mbps;
    mad_ = 0.0;
  } else {
    mad_ = (1.0 - cfg_.mad_alpha) * mad_ + cfg_.mad_alpha * std::abs(mbps - baseline_);
    baseline_ = (1.0 - cfg_.ewma_alpha) * baseline_ + cfg_.ewma_alpha * mbps;
  }
  ++bins_seen_;
}

VolumeDetector::Decision VolumeDetector::observe(double t_s, double mbps) {
  Decision d;
  const double dev = std::max(mad_, cfg_.mad_floor_mbps);
  const double excess = mbps - baseline_;
  d.baseline_mbps = baseline_;
  d.deviation_mbps = dev;
  d.score = excess / dev;

  switch (state_) {
    case State::kLearning:
      learn(mbps);
      if (bins_seen_ >= cfg_.warmup_bins) state_ = State::kNormal;
      break;

    case State::kNormal: {
      const bool anomalous =
          excess > cfg_.trigger_sigma * dev && excess > cfg_.min_attack_mbps;
      if (anomalous) {
        // Do not learn attack onset into the baseline.
        ++over_streak_;
        if (over_streak_ >= cfg_.trigger_bins && t_s >= cooldown_until_) {
          state_ = State::kTriggered;
          triggered_at_ = t_s;
          over_streak_ = 0;
          quiet_streak_ = 0;
          d.triggered_now = true;
        }
      } else {
        over_streak_ = 0;
        learn(mbps);
      }
      break;
    }

    case State::kTriggered: {
      // Baseline frozen: the pre-attack estimate is the reference the clear
      // threshold is measured against.
      const bool quiet = excess < cfg_.clear_sigma * dev;
      if (quiet) {
        ++quiet_streak_;
        if (quiet_streak_ >= cfg_.clear_bins && t_s - triggered_at_ >= cfg_.min_hold_s) {
          state_ = State::kNormal;
          quiet_streak_ = 0;
          cooldown_until_ = t_s + cfg_.cooldown_s;
          d.cleared_now = true;
        }
      } else {
        quiet_streak_ = 0;
      }
      break;
    }
  }

  d.state = state_;
  return d;
}

}  // namespace stellar::detect
