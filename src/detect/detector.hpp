// Per-victim volumetric anomaly detector: EWMA baseline with a MAD-style
// deviation estimate (the srtt/rttvar recursion of RFC 6298 applied to bin
// volume), distinct trigger/clear thresholds (hysteresis) and a cooldown
// timer — bursty benign traffic must never flap mitigation rules on and off.
#pragma once

#include <cstdint>

namespace stellar::detect {

class VolumeDetector {
 public:
  struct Config {
    double ewma_alpha = 0.25;       ///< Baseline learning rate.
    double mad_alpha = 0.25;        ///< Deviation learning rate.
    double trigger_sigma = 6.0;     ///< Deviations above baseline to trigger.
    double clear_sigma = 2.5;       ///< Deviations above baseline to clear (< trigger).
    double min_attack_mbps = 50.0;  ///< Absolute excess floor: tiny ports never trigger.
    double mad_floor_mbps = 1.0;    ///< Deviation floor so a flat baseline can't hair-trigger.
    int trigger_bins = 2;           ///< Consecutive anomalous bins required to trigger.
    int clear_bins = 3;             ///< Consecutive quiet bins required to clear.
    int warmup_bins = 3;            ///< Bins of pure learning before detection arms.
    double min_hold_s = 40.0;       ///< Earliest clear after a trigger.
    double cooldown_s = 60.0;       ///< No re-trigger for this long after a clear.
  };

  enum class State : std::uint8_t {
    kLearning,   ///< Warming up the baseline; detection not armed yet.
    kNormal,     ///< Baseline tracking; watching for anomalies.
    kTriggered,  ///< Attack declared; baseline frozen.
  };

  struct Decision {
    State state = State::kLearning;
    bool triggered_now = false;  ///< This observation crossed into kTriggered.
    bool cleared_now = false;    ///< This observation crossed back to kNormal.
    double baseline_mbps = 0.0;
    double deviation_mbps = 0.0;  ///< Current MAD estimate (floored).
    double score = 0.0;           ///< (x - baseline) / deviation.
  };

  explicit VolumeDetector(Config config);
  VolumeDetector() : VolumeDetector(Config{}) {}

  /// Feeds one bin's volume. Observations must be in nondecreasing time order.
  Decision observe(double t_s, double mbps);

  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] double baseline_mbps() const { return baseline_; }
  [[nodiscard]] double triggered_at_s() const { return triggered_at_; }

 private:
  void learn(double mbps);

  Config cfg_;
  State state_ = State::kLearning;
  int bins_seen_ = 0;
  double baseline_ = 0.0;
  double mad_ = 0.0;
  int over_streak_ = 0;
  int quiet_streak_ = 0;
  double triggered_at_ = 0.0;
  double cooldown_until_ = 0.0;
};

}  // namespace stellar::detect
