#include "detect/sketch.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace stellar::detect {

namespace {

/// splitmix64 finalizer: a cheap, well-mixed 64-bit hash.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

// -- CountMinSketch ----------------------------------------------------------

CountMinSketch::CountMinSketch(std::size_t width, std::size_t depth, std::uint64_t seed)
    : width_(std::max<std::size_t>(width, 1)),
      depth_(std::max<std::size_t>(depth, 1)),
      seed_(seed),
      table_(width_ * depth_, 0) {}

CountMinSketch CountMinSketch::ForError(double eps, double delta, std::uint64_t seed) {
  assert(eps > 0.0 && delta > 0.0 && delta < 1.0);
  const auto width = static_cast<std::size_t>(std::ceil(std::exp(1.0) / eps));
  const auto depth = static_cast<std::size_t>(std::ceil(std::log(1.0 / delta)));
  return CountMinSketch(width, depth, seed);
}

std::size_t CountMinSketch::cell(std::size_t row, std::uint64_t key) const {
  return row * width_ + static_cast<std::size_t>(Mix64(key ^ Mix64(seed_ + row)) % width_);
}

void CountMinSketch::add(std::uint64_t key, std::uint64_t count) {
  if (count == 0) return;
  // Conservative update: raise only the cells below the new lower bound
  // (current estimate + count); cells already above it stay untouched.
  std::uint64_t est = UINT64_MAX;
  for (std::size_t row = 0; row < depth_; ++row) {
    est = std::min(est, table_[cell(row, key)]);
  }
  const std::uint64_t target = est + count;
  for (std::size_t row = 0; row < depth_; ++row) {
    std::uint64_t& c = table_[cell(row, key)];
    c = std::max(c, target);
  }
  total_ += count;
}

std::uint64_t CountMinSketch::estimate(std::uint64_t key) const {
  std::uint64_t est = UINT64_MAX;
  for (std::size_t row = 0; row < depth_; ++row) {
    est = std::min(est, table_[cell(row, key)]);
  }
  return est;
}

void CountMinSketch::halve() {
  for (auto& c : table_) c /= 2;
  total_ /= 2;
}

void CountMinSketch::clear() {
  std::fill(table_.begin(), table_.end(), 0);
  total_ = 0;
}

// -- SpaceSaving -------------------------------------------------------------

SpaceSaving::SpaceSaving(std::size_t capacity) : capacity_(std::max<std::size_t>(capacity, 1)) {
  entries_.reserve(capacity_);
}

void SpaceSaving::add(std::uint64_t key, std::uint64_t count) {
  if (count == 0) return;
  total_ += count;
  if (const auto it = index_.find(key); it != index_.end()) {
    entries_[it->second].count += count;
    return;
  }
  if (entries_.size() < capacity_) {
    index_[key] = entries_.size();
    entries_.push_back({key, count, 0});
    return;
  }
  // Evict the minimum-count entry; its count becomes the newcomer's error
  // bound. capacity is small (tens of entries), so the linear min scan is
  // cheaper than maintaining a heap alongside the index.
  std::size_t min_slot = 0;
  for (std::size_t i = 1; i < entries_.size(); ++i) {
    if (entries_[i].count < entries_[min_slot].count) min_slot = i;
  }
  Entry& slot = entries_[min_slot];
  index_.erase(slot.key);
  index_[key] = min_slot;
  slot.error = slot.count;
  slot.count += count;
  slot.key = key;
}

std::vector<SpaceSaving::Entry> SpaceSaving::top(std::size_t k) const {
  std::vector<Entry> sorted = entries_;
  std::sort(sorted.begin(), sorted.end(), [](const Entry& a, const Entry& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.key < b.key;
  });
  if (sorted.size() > k) sorted.resize(k);
  return sorted;
}

void SpaceSaving::halve() {
  for (auto& e : entries_) {
    e.count /= 2;
    e.error /= 2;
  }
  total_ /= 2;
}

void SpaceSaving::clear() {
  entries_.clear();
  index_.clear();
  total_ = 0;
}

// -- WindowedEntropy ---------------------------------------------------------

WindowedEntropy::WindowedEntropy(std::size_t window_bins)
    : window_bins_(std::max<std::size_t>(window_bins, 1)) {
  bins_.emplace_back();
}

void WindowedEntropy::add(std::uint16_t category, std::uint64_t weight) {
  if (weight == 0) return;
  bins_.back()[category] += weight;
  aggregate_[category] += weight;
  total_ += weight;
}

void WindowedEntropy::rotate() {
  bins_.emplace_back();
  while (bins_.size() > window_bins_) {
    for (const auto& [category, weight] : bins_.front()) {
      auto it = aggregate_.find(category);
      it->second -= weight;
      total_ -= weight;
      if (it->second == 0) aggregate_.erase(it);
    }
    bins_.pop_front();
  }
}

double WindowedEntropy::entropy_bits() const {
  if (total_ == 0 || aggregate_.size() < 2) return 0.0;
  double h = 0.0;
  const auto total = static_cast<double>(total_);
  for (const auto& [category, weight] : aggregate_) {
    const double p = static_cast<double>(weight) / total;
    h -= p * std::log2(p);
  }
  return h;
}

double WindowedEntropy::normalized() const {
  if (aggregate_.size() < 2) return 0.0;
  return entropy_bits() / std::log2(static_cast<double>(aggregate_.size()));
}

void WindowedEntropy::clear() {
  bins_.clear();
  bins_.emplace_back();
  aggregate_.clear();
  total_ = 0;
}

}  // namespace stellar::detect
