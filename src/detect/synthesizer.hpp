// Rule synthesis: collapse a victim's traffic profile (heavy-hitter UDP
// source ports, protocol mix, source-port entropy) into the minimal set of
// L3-L4 Stellar match rules that covers the attack volume — amplification
// source-port signatures first (the paper's "IXP:2:123" idiom), falling back
// to a protocol-wide rule when the port signatures cannot explain the excess,
// all subject to the victim port's remaining TCAM rule budget.
#pragma once

#include <cstdint>
#include <vector>

#include "core/signal.hpp"
#include "detect/sketch.hpp"
#include "net/ip.hpp"

namespace stellar::detect {

/// What the engine's sketches say about one victim around the trigger time.
struct TrafficProfile {
  net::IPv4Address victim;
  double total_mbps = 0.0;     ///< Current bin volume towards the victim.
  double udp_mbps = 0.0;
  double tcp_mbps = 0.0;
  double baseline_mbps = 0.0;  ///< Detector's pre-attack baseline (benign estimate).
  /// Windowed per-UDP-source-port byte counts (SpaceSaving entries, counts
  /// already tightened against the count-min estimates), descending.
  std::vector<SpaceSaving::Entry> udp_src_ports;
  std::uint64_t udp_window_bytes = 0;  ///< Denominator for port shares.
  double udp_src_port_entropy = 1.0;   ///< Normalized [0,1]; low = concentrated.
};

class RuleSynthesizer {
 public:
  struct Config {
    /// Fraction of the attack excess the synthesized rules must explain for a
    /// port-signature plan to be accepted without the protocol fallback.
    double coverage_target = 0.85;
    /// Hard cap on rules per victim regardless of TCAM budget.
    std::size_t max_rules = 4;
    /// Ports below this share of windowed UDP bytes are noise, not signature.
    double min_port_share = 0.05;
    /// Rank well-known amplification service ports (net::kAmplificationServices)
    /// ahead of unknown ports with comparable volume.
    bool prefer_known_amplifiers = true;
    /// Entropy above which the UDP source ports are too dispersed for
    /// per-port signatures to be meaningful (go straight to the fallback).
    double max_signature_entropy = 0.7;
  };

  struct Plan {
    std::vector<core::SignalRule> rules;
    double covered_share = 0.0;   ///< Estimated fraction of attack excess matched.
    bool fallback_proto = false;  ///< Plan is a proto-wide rule, not port signatures.

    [[nodiscard]] bool empty() const { return rules.empty(); }
  };

  explicit RuleSynthesizer(Config config) : cfg_(config) {}
  RuleSynthesizer() : RuleSynthesizer(Config{}) {}

  /// `budget` is the number of rules the victim's port can still take
  /// (admission control headroom). Returns an empty plan when the budget is
  /// zero or the profile shows no attack excess.
  [[nodiscard]] Plan synthesize(const TrafficProfile& profile, std::size_t budget) const;

  [[nodiscard]] const Config& config() const { return cfg_; }

 private:
  Config cfg_;
};

}  // namespace stellar::detect
