#include "filter/rule.hpp"

namespace stellar::filter {

std::string PortRange::str() const {
  if (is_wildcard()) return "*";
  if (is_single()) return std::to_string(lo);
  return std::to_string(lo) + "-" + std::to_string(hi);
}

bool MatchCriteria::matches(const net::FlowKey& flow) const {
  if (src_mac && *src_mac != flow.src_mac) return false;
  if (src_prefix && !src_prefix->contains(flow.src_ip)) return false;
  if (dst_prefix && !dst_prefix->contains(flow.dst_ip)) return false;
  if (proto && *proto != flow.proto) return false;
  if (src_port && !src_port->contains(flow.src_port)) return false;
  if (dst_port && !dst_port->contains(flow.dst_port)) return false;
  return true;
}

namespace {
int PortCriteriaCost(const std::optional<PortRange>& range) {
  if (!range || range->is_wildcard()) return 0;
  return range->is_single() ? 1 : 2;
}
}  // namespace

Selectivity MatchCriteria::selectivity() const {
  if (dst_prefix && dst_prefix->length() == 32) return Selectivity::kDstHost;
  if (proto && dst_port && dst_port->is_single()) return Selectivity::kProtoDstPort;
  if (proto && src_port && src_port->is_single()) return Selectivity::kProtoSrcPort;
  if (src_mac) return Selectivity::kSrcMac;
  return Selectivity::kGeneric;
}

std::uint64_t MatchCriteria::selectivity_key() const {
  switch (selectivity()) {
    case Selectivity::kDstHost: return dst_prefix->address().value();
    case Selectivity::kProtoDstPort:
      return (std::uint64_t{static_cast<std::uint8_t>(*proto)} << 16) | dst_port->lo;
    case Selectivity::kProtoSrcPort:
      return (std::uint64_t{static_cast<std::uint8_t>(*proto)} << 16) | src_port->lo;
    case Selectivity::kSrcMac: return src_mac->as_u64();
    case Selectivity::kGeneric: return 0;
  }
  return 0;
}

int MatchCriteria::l3l4_criteria_count() const {
  int n = 0;
  if (src_prefix) ++n;
  if (dst_prefix) ++n;
  if (proto) ++n;
  n += PortCriteriaCost(src_port);
  n += PortCriteriaCost(dst_port);
  return n;
}

std::string MatchCriteria::str() const {
  std::string out = "{";
  out += "Proto:";
  out += proto ? std::string(net::ToString(*proto)) : "*";
  out += "; Src-IP:" + (src_prefix ? src_prefix->str() : "*");
  out += "; Dst-IP:" + (dst_prefix ? dst_prefix->str() : "*");
  out += "; Src-Port:" + (src_port ? src_port->str() : "*");
  out += "; Dst-Port:" + (dst_port ? dst_port->str() : "*");
  if (src_mac) out += "; Src-MAC:" + src_mac->str();
  return out + "}";
}

std::string_view ToString(FilterAction a) {
  switch (a) {
    case FilterAction::kForward: return "forward";
    case FilterAction::kDrop: return "drop";
    case FilterAction::kShape: return "shape";
  }
  return "?";
}

std::string FilterRule::str() const {
  std::string out = std::string(ToString(action));
  if (action == FilterAction::kShape) {
    out += "@" + std::to_string(static_cast<int>(shape_rate_mbps)) + "Mbps";
  }
  return out + " " + match.str();
}

}  // namespace stellar::filter
