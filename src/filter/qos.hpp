// QoS policy engine — the filtering layer of Stellar (paper §4.5, Fig. 8).
//
// A policy is an ordered rule list applied on the *egress* port of the member
// under attack: classification tags each flow "drop", "shape" or "forward";
// dropped flows go to a zero-length queue, shaped flows share their rule's
// rate-limited queue, and everything surviving competes for the member port's
// capacity in the forwarding queue. The engine is fluid (per-time-bin byte
// volumes), which is the right granularity for Tbps-scale experiments and is
// what per-flow IPFIX sees anyway.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "filter/rule.hpp"
#include "net/flow.hpp"

namespace stellar::filter {

using RuleId = std::uint64_t;

struct InstalledRule {
  RuleId id = 0;
  FilterRule rule;
};

/// Telemetry counters for one rule (paper: "traffic statistics about the
/// discarded traffic should be made available").
struct RuleCounters {
  std::uint64_t matched_bytes = 0;    ///< Bytes classified into this rule.
  std::uint64_t dropped_bytes = 0;    ///< Discarded (drop rule or shaper excess).
  std::uint64_t delivered_bytes = 0;  ///< Passed on (shape rules only).

  RuleCounters& operator+=(const RuleCounters& o) {
    matched_bytes += o.matched_bytes;
    dropped_bytes += o.dropped_bytes;
    delivered_bytes += o.delivered_bytes;
    return *this;
  }
};

/// Ordered per-port rule list; first match wins (vendor ACL semantics).
///
/// Lookup is sublinear in the rule count: rules are bucketed by their most
/// selective exact criterion (dst /32 host route, proto + single L4 port,
/// source MAC — see MatchCriteria::selectivity()) into hash tables keyed on
/// the flow's corresponding header field, with a fallback scan list for
/// wildcard/range-only rules. A flow probes at most four buckets plus the
/// fallback list; the match is the candidate at the lowest rule-list
/// position, which is exactly what the linear first-match scan returns.
class QosPolicy {
 public:
  void add_rule(RuleId id, FilterRule rule);
  /// Returns false if the id is not installed.
  bool remove_rule(RuleId id);
  /// First matching rule, or nullptr for default-forward (indexed lookup).
  [[nodiscard]] const InstalledRule* classify(const net::FlowKey& flow) const;
  /// Reference linear first-match scan — the semantics `classify` must
  /// reproduce bit-identically. Kept for differential tests and benchmarks.
  [[nodiscard]] const InstalledRule* classify_linear(const net::FlowKey& flow) const;
  /// Classifies one bin of flow keys in a single pass (pass 1 of
  /// ApplyEgressQos); results are positionally aligned with `flows`.
  [[nodiscard]] std::vector<const InstalledRule*> classify_batch(
      std::span<const net::FlowKey> flows) const;
  [[nodiscard]] std::size_t rule_count() const { return rules_.size(); }
  [[nodiscard]] const std::vector<InstalledRule>& rules() const { return rules_; }

 private:
  static constexpr std::size_t kNoMatch = static_cast<std::size_t>(-1);

  [[nodiscard]] std::size_t classify_pos(const net::FlowKey& flow) const;
  void index_rule(std::size_t pos);
  void rebuild_index();

  std::vector<InstalledRule> rules_;
  /// Rule-list positions (ascending) bucketed by (selectivity tag | exact
  /// value); see bucket_key() in qos.cpp. Wildcard/range rules go to
  /// fallback_. Positions invalidate on removal, so remove_rule rebuilds.
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> buckets_;
  std::vector<std::uint32_t> fallback_;
};

/// Outcome of pushing one time bin of egress demand through a port.
struct PortBinResult {
  double offered_mbps = 0.0;             ///< Total demand arriving at the port policy.
  double delivered_mbps = 0.0;           ///< Left the member port.
  double rule_dropped_mbps = 0.0;        ///< Discarded by drop rules.
  double shaper_dropped_mbps = 0.0;      ///< Shaper-queue excess discarded.
  double congestion_dropped_mbps = 0.0;  ///< Forward-queue overflow (port saturated).

  /// Per-flow bytes that actually left the port (same keys as the demand,
  /// zero-byte entries elided).
  std::vector<net::FlowSample> delivered;

  /// Telemetry deltas for this bin, keyed by rule id.
  std::unordered_map<RuleId, RuleCounters> rule_counters;
};

/// Applies a port's egress policy to one bin of flow demands.
/// `port_capacity_mbps` bounds the forwarding queue; shaped survivors compete
/// with forwarded traffic for it (paper Fig. 8: shaping queue drains into the
/// forwarding queue). Congestion loss is proportional (fluid tail-drop).
[[nodiscard]] PortBinResult ApplyEgressQos(std::span<const net::FlowSample> demands,
                                           const QosPolicy& policy, double port_capacity_mbps,
                                           double bin_s);

}  // namespace stellar::filter
