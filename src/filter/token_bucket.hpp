// Token bucket: used twice in the system, exactly as the paper does —
//   1. the network manager's configuration-change queue (paper §4.4: "the
//      queue uses a Token Bucket algorithm [...] Maximum Burst Size (MBS) and
//      a reasonable long-term rate limit is never exceeded"), and
//   2. data-plane traffic shaping in the QoS engine.
//
// Header-only; purely arithmetic over explicit timestamps so it works under
// both the simulation clock and bench wall-clock sweeps.
#pragma once

#include <algorithm>
#include <cassert>
#include <limits>

namespace stellar::filter {

class TokenBucket {
 public:
  /// Sentinel returned by time_available() for requests that can never be
  /// satisfied (n > burst): "infinitely far in the future". A finite answer
  /// here would be a lie — try_consume at that time still fails — and used
  /// to wedge callers that sleep-then-consume in a tight retry loop.
  static constexpr double kNever = std::numeric_limits<double>::infinity();

  /// `rate` tokens accrue per second up to `burst` capacity. Starts full.
  TokenBucket(double rate_per_s, double burst)
      : rate_(rate_per_s), burst_(burst), tokens_(burst) {
    assert(rate_per_s > 0.0 && burst > 0.0);
  }

  /// Consumes `n` tokens at time `now_s` if available. Time must be
  /// monotonically non-decreasing across calls.
  ///
  /// The tolerance must absorb the rounding of `rate * (t2 - t1)` at large
  /// absolute timestamps (~1e-11 tokens at t ~ 1e5 s); a stricter epsilon
  /// deadlocks callers that sleep exactly until time_available() and then
  /// consume — the wait rounds to zero and never makes progress.
  bool try_consume(double n, double now_s) {
    refill(now_s);
    if (tokens_ + kEpsilon < n) return false;
    tokens_ -= n;
    return true;
  }

  /// Earliest absolute time at which `n` tokens will be available (may be
  /// `now_s` itself). Does not consume. A request above the burst capacity
  /// can never succeed and returns kNever in every build type (callers must
  /// treat a non-finite answer as "give up", not "sleep until").
  [[nodiscard]] double time_available(double n, double now_s) {
    refill(now_s);
    if (tokens_ + kEpsilon >= n) return now_s;
    if (n > burst_ + kEpsilon) return kNever;
    return now_s + (n - tokens_) / rate_;
  }

  [[nodiscard]] double tokens(double now_s) {
    refill(now_s);
    return tokens_;
  }
  [[nodiscard]] double rate() const { return rate_; }
  [[nodiscard]] double burst() const { return burst_; }

 private:
  static constexpr double kEpsilon = 1e-9;

  void refill(double now_s) {
    if (now_s > last_) {
      tokens_ = std::min(burst_, tokens_ + (now_s - last_) * rate_);
      last_ = now_s;
    }
  }

  double rate_;
  double burst_;
  double tokens_;
  double last_ = 0.0;
};

}  // namespace stellar::filter
