#include "filter/qos.hpp"

#include <algorithm>
#include <cassert>

namespace stellar::filter {

namespace {

/// Bucket key: selectivity tag in the top byte, exact criterion value in the
/// low bits. Values are at most 48 bits (MAC), so the tag never collides.
constexpr std::uint64_t BucketKey(Selectivity s, std::uint64_t value) {
  return (std::uint64_t{static_cast<std::uint8_t>(s)} + 1) << 56 | value;
}

constexpr std::uint64_t ProtoPortKey(net::IpProto proto, std::uint16_t port) {
  return (std::uint64_t{static_cast<std::uint8_t>(proto)} << 16) | port;
}

}  // namespace

void QosPolicy::add_rule(RuleId id, FilterRule rule) {
  rules_.push_back(InstalledRule{id, std::move(rule)});
  index_rule(rules_.size() - 1);
}

bool QosPolicy::remove_rule(RuleId id) {
  const auto it = std::find_if(rules_.begin(), rules_.end(),
                               [id](const InstalledRule& r) { return r.id == id; });
  if (it == rules_.end()) return false;
  rules_.erase(it);
  rebuild_index();
  return true;
}

void QosPolicy::index_rule(std::size_t pos) {
  const MatchCriteria& match = rules_[pos].rule.match;
  const Selectivity s = match.selectivity();
  auto& bucket = s == Selectivity::kGeneric
                     ? fallback_
                     : buckets_[BucketKey(s, match.selectivity_key())];
  // add_rule appends at the largest position, so buckets stay ascending.
  bucket.push_back(static_cast<std::uint32_t>(pos));
}

void QosPolicy::rebuild_index() {
  buckets_.clear();
  fallback_.clear();
  for (std::size_t pos = 0; pos < rules_.size(); ++pos) index_rule(pos);
}

std::size_t QosPolicy::classify_pos(const net::FlowKey& flow) const {
  std::size_t best = kNoMatch;
  // Buckets hold ascending positions, so each probe can stop at the first
  // full match (nothing later in the bucket can beat it) or as soon as the
  // position can no longer improve on the best from earlier probes.
  const auto scan = [&](const std::vector<std::uint32_t>& positions) {
    for (const std::uint32_t pos : positions) {
      if (pos >= best) break;
      if (rules_[pos].rule.match.matches(flow)) {
        best = pos;
        break;
      }
    }
  };
  const auto probe = [&](std::uint64_t key) {
    const auto it = buckets_.find(key);
    if (it != buckets_.end()) scan(it->second);
  };
  probe(BucketKey(Selectivity::kDstHost, flow.dst_ip.value()));
  probe(BucketKey(Selectivity::kProtoDstPort, ProtoPortKey(flow.proto, flow.dst_port)));
  probe(BucketKey(Selectivity::kProtoSrcPort, ProtoPortKey(flow.proto, flow.src_port)));
  probe(BucketKey(Selectivity::kSrcMac, flow.src_mac.as_u64()));
  scan(fallback_);
  return best;
}

const InstalledRule* QosPolicy::classify(const net::FlowKey& flow) const {
  const std::size_t pos = classify_pos(flow);
  return pos == kNoMatch ? nullptr : &rules_[pos];
}

const InstalledRule* QosPolicy::classify_linear(const net::FlowKey& flow) const {
  for (const auto& r : rules_) {
    if (r.rule.match.matches(flow)) return &r;
  }
  return nullptr;
}

std::vector<const InstalledRule*> QosPolicy::classify_batch(
    std::span<const net::FlowKey> flows) const {
  std::vector<const InstalledRule*> out;
  out.reserve(flows.size());
  for (const auto& flow : flows) out.push_back(classify(flow));
  return out;
}

PortBinResult ApplyEgressQos(std::span<const net::FlowSample> demands, const QosPolicy& policy,
                             double port_capacity_mbps, double bin_s) {
  assert(bin_s > 0.0);
  PortBinResult result;

  // Pass 1: classify, apply drop rules, and accumulate per-shaper demand.
  struct Classified {
    const net::FlowSample* sample;
    const InstalledRule* rule;  ///< nullptr or kForward => forwarding queue.
  };
  std::vector<Classified> survivors;
  survivors.reserve(demands.size());
  std::unordered_map<RuleId, double> shaper_demand_bytes;

  std::vector<net::FlowKey> keys;
  keys.reserve(demands.size());
  for (const auto& d : demands) keys.push_back(d.key);
  const std::vector<const InstalledRule*> classified = policy.classify_batch(keys);

  for (std::size_t i = 0; i < demands.size(); ++i) {
    const auto& d = demands[i];
    result.offered_mbps += d.mbps(bin_s);
    const InstalledRule* rule = classified[i];
    if (rule != nullptr) result.rule_counters[rule->id].matched_bytes += d.bytes;
    if (rule != nullptr && rule->rule.action == FilterAction::kDrop) {
      result.rule_dropped_mbps += d.mbps(bin_s);
      result.rule_counters[rule->id].dropped_bytes += d.bytes;
      continue;
    }
    if (rule != nullptr && rule->rule.action == FilterAction::kShape) {
      shaper_demand_bytes[rule->id] += static_cast<double>(d.bytes);
    }
    survivors.push_back(Classified{&d, rule});
  }

  // Pass 2: per-shaper admit fractions (each shaping queue drains at its
  // configured rate; excess is discarded at the shaper).
  std::unordered_map<RuleId, double> shaper_admit;  // Fraction of bytes passed.
  for (const auto& r : policy.rules()) {
    if (r.rule.action != FilterAction::kShape) continue;
    const auto it = shaper_demand_bytes.find(r.id);
    if (it == shaper_demand_bytes.end() || it->second <= 0.0) continue;
    const double allowed_bytes = r.rule.shape_rate_mbps * 1e6 / 8.0 * bin_s;
    shaper_admit[r.id] = std::min(1.0, allowed_bytes / it->second);
  }

  // Pass 3: demand entering the forwarding queue; then a proportional
  // congestion cut if it exceeds the port capacity.
  double forward_demand_bytes = 0.0;
  for (const auto& c : survivors) {
    double bytes = static_cast<double>(c.sample->bytes);
    if (c.rule != nullptr && c.rule->rule.action == FilterAction::kShape) {
      bytes *= shaper_admit[c.rule->id];
    }
    forward_demand_bytes += bytes;
  }
  const double capacity_bytes = port_capacity_mbps * 1e6 / 8.0 * bin_s;
  const double congestion_admit =
      forward_demand_bytes <= capacity_bytes || forward_demand_bytes == 0.0
          ? 1.0
          : capacity_bytes / forward_demand_bytes;

  for (const auto& c : survivors) {
    const double offered = static_cast<double>(c.sample->bytes);
    double after_shaper = offered;
    if (c.rule != nullptr && c.rule->rule.action == FilterAction::kShape) {
      after_shaper = offered * shaper_admit[c.rule->id];
      const double shaped_away = offered - after_shaper;
      result.shaper_dropped_mbps += shaped_away * 8.0 / 1e6 / bin_s;
      result.rule_counters[c.rule->id].dropped_bytes +=
          static_cast<std::uint64_t>(shaped_away);
    }
    const double delivered = after_shaper * congestion_admit;
    result.congestion_dropped_mbps += (after_shaper - delivered) * 8.0 / 1e6 / bin_s;
    result.delivered_mbps += delivered * 8.0 / 1e6 / bin_s;
    if (c.rule != nullptr && c.rule->rule.action == FilterAction::kShape) {
      result.rule_counters[c.rule->id].delivered_bytes +=
          static_cast<std::uint64_t>(delivered);
    }
    if (delivered >= 1.0) {
      net::FlowSample out = *c.sample;
      out.bytes = static_cast<std::uint64_t>(delivered);
      // Scale packet counts with the byte survival ratio.
      out.packets = offered > 0.0
                        ? static_cast<std::uint64_t>(static_cast<double>(c.sample->packets) *
                                                     delivered / offered)
                        : 0;
      result.delivered.push_back(std::move(out));
    }
  }
  return result;
}

}  // namespace stellar::filter
