#include "filter/cpu.hpp"

#include <algorithm>

namespace stellar::filter {

double ControlPlaneCpu::measure_interval(double updates, double interval_s,
                                         util::Rng& rng) const {
  const double rate = interval_s > 0.0 ? updates / interval_s : 0.0;
  const double noisy = expected_percent(rate) + rng.normal(0.0, config_.noise_stddev_percent);
  return std::clamp(noisy, 0.0, 100.0);
}

}  // namespace stellar::filter
