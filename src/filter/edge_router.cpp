#include "filter/edge_router.hpp"

#include <stdexcept>

namespace stellar::filter {

EdgeRouter::EdgeRouter(std::string name, TcamLimits tcam_limits, CpuModelConfig cpu_config)
    : name_(std::move(name)), tcam_(tcam_limits), cpu_(cpu_config) {}

void EdgeRouter::add_port(PortId port, double capacity_mbps) {
  if (capacity_mbps <= 0.0) throw std::invalid_argument("port capacity must be positive");
  ports_[port].capacity_mbps = capacity_mbps;
}

double EdgeRouter::port_capacity_mbps(PortId port) const {
  const auto it = ports_.find(port);
  if (it == ports_.end()) throw std::out_of_range("unknown port " + std::to_string(port));
  return it->second.capacity_mbps;
}

std::vector<PortId> EdgeRouter::ports() const {
  std::vector<PortId> out;
  out.reserve(ports_.size());
  for (const auto& [id, port] : ports_) out.push_back(id);
  return out;
}

util::Result<RuleId> EdgeRouter::install_rule(PortId port, FilterRule rule) {
  const auto it = ports_.find(port);
  if (it == ports_.end()) {
    install_failures_.inc();
    return util::MakeError("router.no_port", "unknown port " + std::to_string(port));
  }
  const TcamFailure failure = tcam_.allocate(port, rule.match);
  if (failure != TcamFailure::kNone) {
    install_failures_.inc();
    return util::MakeError(std::string(ToString(failure)),
                           "TCAM exhausted installing " + rule.str() + " on port " +
                               std::to_string(port));
  }
  const RuleId id = next_rule_id_++;
  rule_resources_.emplace(id, rule.match);
  it->second.policy.add_rule(id, std::move(rule));
  ++config_ops_;
  rules_installed_.inc();
  return id;
}

bool EdgeRouter::remove_rule(PortId port, RuleId id) {
  const auto it = ports_.find(port);
  if (it == ports_.end()) return false;
  if (!it->second.policy.remove_rule(id)) return false;
  const auto res = rule_resources_.find(id);
  if (res != rule_resources_.end()) {
    if (!tcam_.release(port, res->second)) tcam_release_errors_.inc();
    rule_resources_.erase(res);
  }
  ++config_ops_;
  rules_removed_.inc();
  return true;
}

const QosPolicy& EdgeRouter::policy(PortId port) const {
  static const QosPolicy kEmpty;
  const auto it = ports_.find(port);
  return it == ports_.end() ? kEmpty : it->second.policy;
}

PortBinResult EdgeRouter::deliver(PortId port, std::span<const net::FlowSample> demands,
                                  double bin_s) {
  const auto it = ports_.find(port);
  if (it == ports_.end()) throw std::out_of_range("unknown port " + std::to_string(port));
  PortBinResult result =
      ApplyEgressQos(demands, it->second.policy, it->second.capacity_mbps, bin_s);
  for (const auto& [id, delta] : result.rule_counters) counters_[id] += delta;
  return result;
}

RuleCounters EdgeRouter::counters(RuleId id) const {
  const auto it = counters_.find(id);
  return it == counters_.end() ? RuleCounters{} : it->second;
}

}  // namespace stellar::filter
