#include "filter/tcam.hpp"

#include <algorithm>

namespace stellar::filter {

std::string_view ToString(TcamFailure f) {
  switch (f) {
    case TcamFailure::kNone: return "OK";
    case TcamFailure::kL3L4PoolExhausted: return "F1";
    case TcamFailure::kMacPoolExhausted: return "F2";
    case TcamFailure::kPortL3L4LimitReached: return "F1-port";
    case TcamFailure::kPortMacLimitReached: return "F2-port";
  }
  return "?";
}

TcamFailure Tcam::allocate(PortId port, const MatchCriteria& match) {
  const std::int64_t l3l4 = match.l3l4_criteria_count();
  const std::int64_t mac = match.mac_criteria_count();
  // Look up without inserting: a rejected allocation must leave the TCAM
  // state (including the per-port map) untouched.
  const auto it = per_port_.find(port);
  const PortUsage usage = it == per_port_.end() ? PortUsage{} : it->second;

  if (limits_.l3l4_criteria_pool > 0 && l3l4_used_ + l3l4 > limits_.l3l4_criteria_pool) {
    return TcamFailure::kL3L4PoolExhausted;
  }
  if (limits_.per_port_l3l4_criteria > 0 &&
      usage.l3l4 + l3l4 > limits_.per_port_l3l4_criteria) {
    return TcamFailure::kPortL3L4LimitReached;
  }
  if (limits_.mac_filter_pool > 0 && mac_used_ + mac > limits_.mac_filter_pool) {
    return TcamFailure::kMacPoolExhausted;
  }
  if (limits_.per_port_mac_filters > 0 && usage.mac + mac > limits_.per_port_mac_filters) {
    return TcamFailure::kPortMacLimitReached;
  }

  l3l4_used_ += l3l4;
  mac_used_ += mac;
  PortUsage& slot = it == per_port_.end() ? per_port_[port] : it->second;
  slot.l3l4 += l3l4;
  slot.mac += mac;
  return TcamFailure::kNone;
}

bool Tcam::release(PortId port, const MatchCriteria& match) {
  const std::int64_t l3l4 = match.l3l4_criteria_count();
  const std::int64_t mac = match.mac_criteria_count();
  bool consistent = true;
  // Clamp at zero instead of underflowing: a double-release must not drive
  // the used counters negative and inflate the headroom fractions past 1.0.
  const auto take = [&consistent](std::int64_t& used, std::int64_t want) {
    const std::int64_t taken = std::min(used, want);
    if (taken != want) consistent = false;
    used -= taken;
  };
  const auto it = per_port_.find(port);
  if (it == per_port_.end()) {
    if (l3l4 > 0 || mac > 0) consistent = false;
  } else {
    take(it->second.l3l4, l3l4);
    take(it->second.mac, mac);
    if (it->second.l3l4 == 0 && it->second.mac == 0) per_port_.erase(it);
  }
  take(l3l4_used_, l3l4);
  take(mac_used_, mac);
  return consistent;
}

std::int64_t Tcam::l3l4_in_use(PortId port) const {
  const auto it = per_port_.find(port);
  return it == per_port_.end() ? 0 : it->second.l3l4;
}

std::int64_t Tcam::mac_in_use(PortId port) const {
  const auto it = per_port_.find(port);
  return it == per_port_.end() ? 0 : it->second.mac;
}

double Tcam::l3l4_headroom() const {
  if (limits_.l3l4_criteria_pool <= 0) return 1.0;
  return 1.0 - static_cast<double>(l3l4_used_) / static_cast<double>(limits_.l3l4_criteria_pool);
}

double Tcam::mac_headroom() const {
  if (limits_.mac_filter_pool <= 0) return 1.0;
  return 1.0 - static_cast<double>(mac_used_) / static_cast<double>(limits_.mac_filter_pool);
}

}  // namespace stellar::filter
