#include "filter/tcam.hpp"

#include <cassert>

namespace stellar::filter {

std::string_view ToString(TcamFailure f) {
  switch (f) {
    case TcamFailure::kNone: return "OK";
    case TcamFailure::kL3L4PoolExhausted: return "F1";
    case TcamFailure::kMacPoolExhausted: return "F2";
    case TcamFailure::kPortL3L4LimitReached: return "F1-port";
    case TcamFailure::kPortMacLimitReached: return "F2-port";
  }
  return "?";
}

TcamFailure Tcam::allocate(PortId port, const MatchCriteria& match) {
  const std::int64_t l3l4 = match.l3l4_criteria_count();
  const std::int64_t mac = match.mac_criteria_count();
  PortUsage& usage = per_port_[port];

  if (limits_.l3l4_criteria_pool > 0 && l3l4_used_ + l3l4 > limits_.l3l4_criteria_pool) {
    return TcamFailure::kL3L4PoolExhausted;
  }
  if (limits_.per_port_l3l4_criteria > 0 &&
      usage.l3l4 + l3l4 > limits_.per_port_l3l4_criteria) {
    return TcamFailure::kPortL3L4LimitReached;
  }
  if (limits_.mac_filter_pool > 0 && mac_used_ + mac > limits_.mac_filter_pool) {
    return TcamFailure::kMacPoolExhausted;
  }
  if (limits_.per_port_mac_filters > 0 && usage.mac + mac > limits_.per_port_mac_filters) {
    return TcamFailure::kPortMacLimitReached;
  }

  l3l4_used_ += l3l4;
  mac_used_ += mac;
  usage.l3l4 += l3l4;
  usage.mac += mac;
  return TcamFailure::kNone;
}

void Tcam::release(PortId port, const MatchCriteria& match) {
  const std::int64_t l3l4 = match.l3l4_criteria_count();
  const std::int64_t mac = match.mac_criteria_count();
  PortUsage& usage = per_port_[port];
  assert(usage.l3l4 >= l3l4 && usage.mac >= mac && l3l4_used_ >= l3l4 && mac_used_ >= mac);
  l3l4_used_ -= l3l4;
  mac_used_ -= mac;
  usage.l3l4 -= l3l4;
  usage.mac -= mac;
}

std::int64_t Tcam::l3l4_in_use(PortId port) const {
  const auto it = per_port_.find(port);
  return it == per_port_.end() ? 0 : it->second.l3l4;
}

std::int64_t Tcam::mac_in_use(PortId port) const {
  const auto it = per_port_.find(port);
  return it == per_port_.end() ? 0 : it->second.mac;
}

double Tcam::l3l4_headroom() const {
  if (limits_.l3l4_criteria_pool <= 0) return 1.0;
  return 1.0 - static_cast<double>(l3l4_used_) / static_cast<double>(limits_.l3l4_criteria_pool);
}

double Tcam::mac_headroom() const {
  if (limits_.mac_filter_pool <= 0) return 1.0;
  return 1.0 - static_cast<double>(mac_used_) / static_cast<double>(limits_.mac_filter_pool);
}

}  // namespace stellar::filter
