// Control-plane CPU model of the IXP edge router (paper §5.1, Fig. 10a).
//
// The ER's control plane runs a real-time OS with a hard CPU budget for
// configuration tasks (15% in the paper's production configuration). Each
// filter-rule add/remove costs a fixed slice of CPU time; the observable is
// "% CPU used for configuration during a measurement interval". The paper
// measures a median of 4.33 rule updates/s at the 15% cap — the default
// parameters are calibrated to that operating point.
#pragma once

#include "util/rng.hpp"

namespace stellar::filter {

struct CpuModelConfig {
  /// CPU percentage consumed per sustained update/s. Default calibrated so
  /// the hard limit of 15% sits at 4.33 updates/s: 15 / 4.33.
  double percent_per_update_rate = 15.0 / 4.33;
  /// Baseline configuration-task load with no updates.
  double idle_percent = 0.2;
  /// Measurement noise (scheduler jitter, unrelated config tasks).
  double noise_stddev_percent = 0.35;
  /// Hard real-time budget for configuration tasks.
  double hard_limit_percent = 15.0;
};

class ControlPlaneCpu {
 public:
  explicit ControlPlaneCpu(CpuModelConfig config = {}) : config_(config) {}

  /// CPU usage [%] observed over an interval in which `updates` rule updates
  /// were processed. Noisy (pass an Rng for the measurement scatter of
  /// Fig. 10a); clamped at 100%.
  [[nodiscard]] double measure_interval(double updates, double interval_s, util::Rng& rng) const;

  /// Deterministic expected CPU usage at a sustained update rate.
  [[nodiscard]] double expected_percent(double updates_per_s) const {
    return config_.idle_percent + config_.percent_per_update_rate * updates_per_s;
  }

  /// Largest sustained update rate within the hard CPU budget.
  [[nodiscard]] double max_update_rate() const {
    return (config_.hard_limit_percent - config_.idle_percent) / config_.percent_per_update_rate;
  }

  [[nodiscard]] const CpuModelConfig& config() const { return config_; }

 private:
  CpuModelConfig config_;
};

}  // namespace stellar::filter
