// L2-L4 match criteria and filter rules — the data-plane vocabulary of
// Advanced Blackholing (paper §3.2: "a combination of L2-L4 header
// information, including MAC and IP address, transport protocol, or TCP/UDP
// port").
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "net/flow.hpp"
#include "net/ip.hpp"
#include "net/mac.hpp"

namespace stellar::filter {

/// Identifies a member port on the IXP platform.
using PortId = std::uint32_t;

/// Inclusive L4 port range. A single port is [p, p].
struct PortRange {
  std::uint16_t lo = 0;
  std::uint16_t hi = 0xffff;

  static PortRange Single(std::uint16_t p) { return {p, p}; }
  static PortRange Any() { return {0, 0xffff}; }
  [[nodiscard]] bool contains(std::uint16_t p) const { return p >= lo && p <= hi; }
  [[nodiscard]] bool is_wildcard() const { return lo == 0 && hi == 0xffff; }
  [[nodiscard]] bool is_single() const { return lo == hi; }
  [[nodiscard]] std::string str() const;

  friend bool operator==(const PortRange&, const PortRange&) = default;
};

/// The single most selective *exact-valued* criterion a classification index
/// can bucket a rule under (TCAM-style indexed lookup, paper §4.1.2/Fig. 9).
/// Rules without one (wildcards, prefixes shorter than /32, port ranges) must
/// live on the index's fallback scan list.
enum class Selectivity : std::uint8_t {
  kDstHost,       ///< dst_prefix is a /32 host route: bucket by dst IP.
  kProtoDstPort,  ///< IP proto plus a single destination L4 port.
  kProtoSrcPort,  ///< IP proto plus a single source L4 port.
  kSrcMac,        ///< Exact source MAC (one member router).
  kGeneric,       ///< No exact criterion: fallback scan list.
};

/// A conjunction of optional L2-L4 predicates. Unset fields are wildcards.
struct MatchCriteria {
  std::optional<net::MacAddress> src_mac;  ///< L2: traffic from a specific member router.
  std::optional<net::Prefix4> src_prefix;
  std::optional<net::Prefix4> dst_prefix;
  std::optional<net::IpProto> proto;
  std::optional<PortRange> src_port;
  std::optional<PortRange> dst_port;

  [[nodiscard]] bool matches(const net::FlowKey& flow) const;

  /// Most selective exact criterion, in fixed priority order (host route >
  /// proto+dst-port > proto+src-port > MAC). Every flow that can match this
  /// rule carries the exact value in the corresponding header field, so an
  /// index bucketed on it never misses a candidate.
  [[nodiscard]] Selectivity selectivity() const;

  /// Bucket key within selectivity() — the exact value the index hashes on.
  /// Fits the criterion into the low bits of a 64-bit word (dst IP: 32 bits,
  /// proto|port: 24 bits, MAC: 48 bits). Zero (unspecified) for kGeneric.
  [[nodiscard]] std::uint64_t selectivity_key() const;

  /// Number of L3-L4 criteria this rule consumes in hardware (paper Fig. 9
  /// x-axis: "L3-L4 filter criteria"). Each set L3/L4 predicate costs one
  /// TCAM criterion; a port *range* that is not a single port or wildcard
  /// costs one per range-expansion step (modeled as 2, the typical prefix
  /// expansion cost for aligned ranges).
  [[nodiscard]] int l3l4_criteria_count() const;

  /// Number of MAC filter criteria consumed (Fig. 9 y-axis).
  [[nodiscard]] int mac_criteria_count() const { return src_mac ? 1 : 0; }

  [[nodiscard]] std::string str() const;

  friend bool operator==(const MatchCriteria&, const MatchCriteria&) = default;
};

enum class FilterAction : std::uint8_t {
  kForward,  ///< Explicit allow (used for exceptions ahead of broader rules).
  kDrop,     ///< Zero-length queue: immediate discard.
  kShape,    ///< Rate-limited queue: telemetry sample survives.
};

[[nodiscard]] std::string_view ToString(FilterAction a);

/// A concrete data-plane filter rule as installed on a port.
struct FilterRule {
  MatchCriteria match;
  FilterAction action = FilterAction::kDrop;
  double shape_rate_mbps = 0.0;  ///< Only meaningful for kShape.

  [[nodiscard]] std::string str() const;

  friend bool operator==(const FilterRule&, const FilterRule&) = default;
};

}  // namespace stellar::filter
