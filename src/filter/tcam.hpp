// Ternary Content-Addressable Memory resource model (paper §5.1: "the TCAM
// is used to implement matching header information in hardware. Its size and
// update behavior constitute the main resource bottleneck of Stellar").
//
// Two shared pools model the edge router's hardware limits, matching the two
// failure modes in Fig. 9:
//   F1 — the chip-wide pool of L3-L4 filter criteria for QoS policies is
//        exhausted,
//   F2 — the chip-wide pool of MAC (L2) filter entries is exhausted.
// Per-port limits (filters per port / line card) can additionally be set;
// both kinds of exhaustion are reported distinctly so admission control can
// react and the Fig. 9 bench can label the grid.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "filter/rule.hpp"
#include "util/result.hpp"

namespace stellar::filter {

struct TcamLimits {
  /// Chip-wide pool of L3-L4 filter criteria (F1 when exceeded).
  std::int64_t l3l4_criteria_pool = 0;
  /// Chip-wide pool of MAC filter entries (F2 when exceeded).
  std::int64_t mac_filter_pool = 0;
  /// Per-port caps; 0 disables the per-port check.
  std::int64_t per_port_l3l4_criteria = 0;
  std::int64_t per_port_mac_filters = 0;
};

/// Outcome classification for admission control and the Fig. 9 grid.
enum class TcamFailure : std::uint8_t {
  kNone,
  kL3L4PoolExhausted,     ///< F1
  kMacPoolExhausted,      ///< F2
  kPortL3L4LimitReached,
  kPortMacLimitReached,
};

[[nodiscard]] std::string_view ToString(TcamFailure f);

class Tcam {
 public:
  explicit Tcam(TcamLimits limits) : limits_(limits) {}

  /// Attempts to reserve the hardware resources `match` needs on `port`.
  /// On failure nothing is reserved and the failure kind is returned.
  /// When both pools would be exhausted, F1 (L3-L4) is reported — the
  /// scarcer, earlier-checked resource, matching Fig. 9's labeling.
  TcamFailure allocate(PortId port, const MatchCriteria& match);

  /// Releases a previous successful allocation for an identical criteria set.
  /// Releasing more than was allocated is a caller bug (double-release); the
  /// counters clamp at zero — never negative, in every build type — and false
  /// is returned so the caller can surface the accounting error.
  [[nodiscard]] bool release(PortId port, const MatchCriteria& match);

  [[nodiscard]] std::int64_t l3l4_in_use() const { return l3l4_used_; }
  [[nodiscard]] std::int64_t mac_in_use() const { return mac_used_; }
  [[nodiscard]] std::int64_t l3l4_in_use(PortId port) const;
  [[nodiscard]] std::int64_t mac_in_use(PortId port) const;
  /// Ports with live reservations. Rejected allocations and full releases
  /// must not grow this — the observable for per-port accounting leaks.
  [[nodiscard]] std::size_t ports_tracked() const { return per_port_.size(); }
  [[nodiscard]] const TcamLimits& limits() const { return limits_; }

  /// Headroom fractions for monitoring (1.0 = empty, 0.0 = full).
  [[nodiscard]] double l3l4_headroom() const;
  [[nodiscard]] double mac_headroom() const;

 private:
  struct PortUsage {
    std::int64_t l3l4 = 0;
    std::int64_t mac = 0;
  };

  TcamLimits limits_;
  std::int64_t l3l4_used_ = 0;
  std::int64_t mac_used_ = 0;
  std::unordered_map<PortId, PortUsage> per_port_;
};

}  // namespace stellar::filter
