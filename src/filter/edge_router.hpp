// Edge router model: member ports with capacities, a TCAM for filter
// resources, per-port QoS policies, cumulative telemetry counters, and a
// control-plane CPU model. "IXPs often deploy routers but configure them to
// act as switches" (paper footnote 5) — the ER forwards at L2 but exposes
// router-grade ACL/QoS features, which is exactly what Stellar exploits.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "filter/cpu.hpp"
#include "filter/qos.hpp"
#include "filter/tcam.hpp"
#include "obs/metrics.hpp"
#include "util/result.hpp"

namespace stellar::filter {

class EdgeRouter {
 public:
  EdgeRouter(std::string name, TcamLimits tcam_limits, CpuModelConfig cpu_config = {});

  void add_port(PortId port, double capacity_mbps);
  [[nodiscard]] bool has_port(PortId port) const { return ports_.contains(port); }
  [[nodiscard]] double port_capacity_mbps(PortId port) const;
  [[nodiscard]] std::vector<PortId> ports() const;

  /// Installs a rule on a port's egress policy after reserving TCAM
  /// resources. On success returns the rule id; on failure the error code is
  /// the TcamFailure name ("F1", "F2", ...).
  util::Result<RuleId> install_rule(PortId port, FilterRule rule);

  /// Removes a rule and releases its TCAM resources.
  bool remove_rule(PortId port, RuleId id);

  /// The port's egress policy (empty policy if none installed yet).
  [[nodiscard]] const QosPolicy& policy(PortId port) const;

  /// Pushes one bin of egress demand through the port, accumulating
  /// per-rule telemetry counters.
  PortBinResult deliver(PortId port, std::span<const net::FlowSample> demands, double bin_s);

  /// Cumulative counters for a rule since installation.
  [[nodiscard]] RuleCounters counters(RuleId id) const;

  [[nodiscard]] Tcam& tcam() { return tcam_; }
  [[nodiscard]] const Tcam& tcam() const { return tcam_; }
  [[nodiscard]] const ControlPlaneCpu& cpu() const { return cpu_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Total configuration operations performed (installs + removals) — the
  /// quantity the CPU model prices.
  [[nodiscard]] std::uint64_t config_ops() const { return config_ops_; }

  /// TCAM releases that found less reserved than they tried to return
  /// (double-release / accounting drift). Should stay zero; monitored so
  /// resource-model corruption is visible instead of silently clamped.
  /// Thin read over this router's obs registry cell.
  [[nodiscard]] std::uint64_t tcam_release_errors() const {
    return tcam_release_errors_.value();
  }

 private:
  struct Port {
    double capacity_mbps = 0.0;
    QosPolicy policy;
  };

  std::string name_;
  Tcam tcam_;
  ControlPlaneCpu cpu_;
  std::unordered_map<PortId, Port> ports_;
  std::unordered_map<RuleId, MatchCriteria> rule_resources_;  ///< For TCAM release.
  std::unordered_map<RuleId, RuleCounters> counters_;
  RuleId next_rule_id_ = 1;
  std::uint64_t config_ops_ = 0;
  obs::Counter rules_installed_ = obs::registry().counter("filter.edge_router.rules_installed");
  obs::Counter rules_removed_ = obs::registry().counter("filter.edge_router.rules_removed");
  obs::Counter install_failures_ =
      obs::registry().counter("filter.edge_router.install_failures");
  obs::Counter tcam_release_errors_ =
      obs::registry().counter("filter.edge_router.tcam_release_errors");
};

}  // namespace stellar::filter
