// Plain-text rendering of tables, bar charts, time series, and CDFs for the
// benchmark harness. Every figure/table bench prints through these so the
// output is comparable against the paper's plots at a glance.
#pragma once

#include <string>
#include <vector>

namespace stellar::util {

/// Fixed-width text table with a header row.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Render with column widths fitted to content, e.g.
  ///   port  | share [%]
  ///   ------+----------
  ///   443   | 55.2
  [[nodiscard]] std::string str() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (locale-independent).
std::string FormatDouble(double v, int precision = 2);

/// Horizontal bar chart: one labelled bar per entry, scaled to `width` chars.
///   443    | #################### 55.20
std::string BarChart(const std::vector<std::pair<std::string, double>>& entries,
                     int width = 50, int precision = 2);

/// Multi-series time-series rendering as aligned columns (t, s1, s2, ...).
std::string SeriesTable(const std::string& x_label, const std::vector<double>& xs,
                        const std::vector<std::pair<std::string, std::vector<double>>>& series,
                        int precision = 2);

}  // namespace stellar::util
