// Statistics utilities used by the evaluation harness: descriptive statistics,
// empirical CDFs, Welch's unequal-variances t-test (used in §2.3 of the paper
// with significance level 0.02), and ordinary least-squares linear regression
// with confidence intervals (used in Fig. 10a).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace stellar::util {

double Mean(std::span<const double> xs);

/// Unbiased sample variance (n-1 denominator). Requires xs.size() >= 2.
double SampleVariance(std::span<const double> xs);

double SampleStdDev(std::span<const double> xs);

/// Percentile in [0,100] with linear interpolation between order statistics.
/// Requires a non-empty input; the input need not be sorted.
double Percentile(std::span<const double> xs, double pct);

double Median(std::span<const double> xs);

/// Two-sided 95% confidence half-width of the mean (normal approximation).
double ConfidenceHalfWidth95(std::span<const double> xs);

/// Result of Welch's unequal-variances t-test.
struct WelchResult {
  double t_statistic = 0.0;
  double degrees_of_freedom = 0.0;  ///< Welch–Satterthwaite approximation.
  double p_value_one_tailed = 1.0;  ///< P(T >= t) under H0 (mean_a <= mean_b).
};

/// One-tailed Welch's t-test for H1: mean(a) > mean(b).
/// Both samples need at least two observations.
WelchResult WelchTTest(std::span<const double> a, std::span<const double> b);

/// CDF of Student's t distribution with `df` degrees of freedom.
double StudentTCdf(double t, double df);

/// Regularized incomplete beta function I_x(a, b), continued-fraction method.
double RegularizedIncompleteBeta(double a, double b, double x);

/// Ordinary least-squares fit y = intercept + slope * x.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
  double slope_stderr = 0.0;
  double intercept_stderr = 0.0;
  /// 95% confidence half-widths (t-distribution, n-2 dof).
  double slope_ci95 = 0.0;
  double intercept_ci95 = 0.0;

  [[nodiscard]] double predict(double x) const { return intercept + slope * x; }
};

/// Requires xs.size() == ys.size() >= 3 and non-constant xs.
LinearFit LinearRegression(std::span<const double> xs, std::span<const double> ys);

/// Empirical CDF: fraction of samples <= x.
class EmpiricalCdf {
 public:
  explicit EmpiricalCdf(std::vector<double> samples);

  /// P(X <= x).
  [[nodiscard]] double at(double x) const;
  /// Smallest sample value v with P(X <= v) >= q, q in (0, 1].
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] std::size_t size() const { return sorted_.size(); }
  [[nodiscard]] const std::vector<double>& sorted_samples() const { return sorted_; }

 private:
  std::vector<double> sorted_;
};

}  // namespace stellar::util
