#include "util/ascii.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace stellar::util {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TextTable::add_row: cell count != header count");
  }
  rows_.push_back(std::move(cells));
}

std::string TextTable::str() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out << " | ";
      out << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) out << ' ';
    }
    out << '\n';
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c != 0) out << "-+-";
    out << std::string(widths[c], '-');
  }
  out << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string BarChart(const std::vector<std::pair<std::string, double>>& entries, int width,
                     int precision) {
  double max_v = 0.0;
  std::size_t max_label = 0;
  for (const auto& [label, v] : entries) {
    max_v = std::max(max_v, v);
    max_label = std::max(max_label, label.size());
  }
  std::ostringstream out;
  for (const auto& [label, v] : entries) {
    out << label << std::string(max_label - label.size(), ' ') << " | ";
    const int bars = max_v > 0.0
                         ? static_cast<int>(std::lround(v / max_v * width))
                         : 0;
    if (bars > 0) out << std::string(static_cast<std::size_t>(bars), '#') << ' ';
    out << FormatDouble(v, precision) << '\n';
  }
  return out.str();
}

std::string SeriesTable(const std::string& x_label, const std::vector<double>& xs,
                        const std::vector<std::pair<std::string, std::vector<double>>>& series,
                        int precision) {
  for (const auto& [name, ys] : series) {
    if (ys.size() != xs.size()) {
      throw std::invalid_argument("SeriesTable: series '" + name + "' length mismatch");
    }
  }
  std::vector<std::string> headers{x_label};
  for (const auto& [name, ys] : series) headers.push_back(name);
  TextTable table(std::move(headers));
  for (std::size_t i = 0; i < xs.size(); ++i) {
    std::vector<std::string> row{FormatDouble(xs[i], precision)};
    for (const auto& [name, ys] : series) row.push_back(FormatDouble(ys[i], precision));
    table.add_row(std::move(row));
  }
  return table.str();
}

}  // namespace stellar::util
